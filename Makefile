GO ?= go

.PHONY: all build test race vet bench check

all: build

build:
	$(GO) build ./...

test:
	$(GO) test ./...

# The bench package exercises the parallel Figure-6 harness; run it under
# the race detector after touching sim, interp, dir1sw, or bench.
race:
	$(GO) test -race ./internal/bench/...

vet:
	$(GO) vet ./...

# One pass over the performance-tracking benchmarks (see EXPERIMENTS.md,
# "Simulator performance").
bench:
	$(GO) test -run xxx -bench 'Fig6|Scheduler|DirectoryLookup' -benchtime 1x ./...

check: build vet test race
