GO ?= go

.PHONY: all build test race vet staticdiff bench benchcmp protosweep check fuzz cover timeline serve-smoke

all: build

build:
	$(GO) build ./...

test:
	$(GO) test ./...

# The bench package exercises the parallel Figure-6 harness, sim hosts the
# epoch-parallel engine (producer goroutines + committer), and serve is the
# HTTP layer (shared caches, singleflight, worker pool); run all of it
# under the race detector after touching sim, interp, dir1sw, bench, or
# serve.
race:
	$(GO) test -race ./internal/sim/... ./internal/coherence/... ./internal/dir1sw/... \
		./internal/dirn/... ./internal/bench/... ./internal/serve/...

# Static checks: go vet over the Go code, then parcvet (the ParC static
# race detector and CICO annotation linter, cmd/parcvet) over the checked-in
# ParC sources and the Figure 6 benchmark ports. The annotated Jacobi must
# come out clean, the race demo must be flagged, and every benchmark's
# verdict must match its known racy/race-free classification.
vet:
	$(GO) vet ./...
	$(GO) run ./cmd/parcvet examples/parc/jacobi_wholefit.parc
	$(GO) run ./cmd/parcvet -q -expect-races examples/parc/race_demo.parc
	$(GO) run ./cmd/parcvet -q -bench all
	# Verdicts are static source properties: every protocol must agree with
	# the Dir1SW run above, byte for byte (cross-checked by diffing outputs).
	$(GO) run ./cmd/parcvet -q -bench all > /tmp/parcvet.dir1sw.out
	$(GO) run ./cmd/parcvet -q -protocol dirnnb:4 -bench all | diff /tmp/parcvet.dir1sw.out -
	$(GO) run ./cmd/parcvet -q -protocol dirnb:4 -bench all | diff /tmp/parcvet.dir1sw.out -

# Trace-free placement differential (cmd/staticdiff): static inference must
# annotate the checked-in ParC sources byte-identically to the trace-driven
# pipeline (both are exact), and every Figure 6 port must satisfy its
# conformance contract — exact ports place identically, widened ports keep
# the footprint covering. See DESIGN.md section 10.
staticdiff:
	$(GO) run ./cmd/staticdiff examples/parc/jacobi_wholefit.parc examples/parc/race_demo.parc
	$(GO) run ./cmd/staticdiff -bench all

# One pass over the performance-tracking benchmarks (see EXPERIMENTS.md,
# "Simulator performance"), then the Figure 6 harness with its
# machine-readable result rows — BENCH_fig6.json records cycles, normalized
# time, per-variant wall-clock, and engine per (benchmark, variant) so
# performance can be tracked across commits. -ab measures every benchmark
# on the sequential, lane-batched, and epoch-parallel engines (cycle counts
# must match bit-for-bit; the harness fails otherwise). BENCH_baseline.json
# at the repo root is the checked-in reference — refresh it alongside
# deliberate performance changes (see EXPERIMENTS.md).
bench:
	$(GO) test -run xxx -bench 'Fig6|Scheduler|DirectoryLookup|Interp|Lane' -benchtime 1x ./...
	$(GO) run ./cmd/fig6 -ab -json BENCH_fig6.json

# Bench-compare gate (cmd/benchcmp): the fresh BENCH_fig6.json against the
# checked-in baseline. Cycles must match exactly — within the new file every
# engine must agree per (benchmark, variant), and across files a changed
# cycle count means the simulated machine changed, which must ship with a
# deliberate baseline refresh. Wall clock gets a 20% per-cell tolerance.
benchcmp:
	$(GO) run ./cmd/benchcmp BENCH_baseline.json BENCH_fig6.json

# Cross-protocol smoke sweep: the Figure 6 suite under Dir1SW, Dir4NB, and
# Dir4B in one run. BENCH_protosweep.json carries one row per (benchmark,
# variant, protocol) so per-protocol cycles and CICO benefit can be tracked
# across commits (see EXPERIMENTS.md, "Cross-protocol comparison").
protosweep:
	$(GO) run ./cmd/fig6 -protosweep -json BENCH_protosweep.json

# Observability demo: one benchmark with the recorder and timeline on.
# TIMELINE_fig6.json is a Chrome trace-event file — open it in
# https://ui.perfetto.dev (or chrome://tracing); STATS_fig6.json is the full
# structured stats snapshot (internal/obs schema). Pick another benchmark
# with TIMELINE_BENCH=Barnes etc.
TIMELINE_BENCH ?= Ocean
timeline:
	$(GO) run ./cmd/fig6 -bench $(TIMELINE_BENCH) \
		-timeline TIMELINE_fig6.json -statsjson STATS_fig6.json

# Serving smoke: build the daemon, boot it on an ephemeral port, replay a
# corpus slice through cmd/cachierload (every HTTP response byte-checked
# against the in-process library result, cold and cached), SIGTERM it, and
# require a clean drain. BENCH_serve.json records latency percentiles,
# throughput, hit rate, and the cold/cached p50 speedup; -min-speedup makes
# the cache's advantage a hard floor. Raise SERVE_SEEDS for the full corpus
# (make serve-smoke SERVE_SEEDS=200).
SERVE_SEEDS ?= 25
SERVE_MIN_SPEEDUP ?= 10
serve-smoke:
	$(GO) build -o /tmp/cachierd ./cmd/cachierd
	$(GO) run ./cmd/cachierload -boot /tmp/cachierd -seeds $(SERVE_SEEDS) \
		-min-speedup $(SERVE_MIN_SPEEDUP) -json BENCH_serve.json

check: build vet staticdiff test race

# Native fuzzing over the conformance harness: FuzzPipeline explores the
# generator's seed space through the full trace/annotate/simulate pipeline,
# FuzzAnnotatedEquivalence hammers the annotated artifact itself, and
# FuzzParallelEquivalence and FuzzLanesEquivalence diff the epoch-parallel
# and lane-batched engines against the sequential scheduler on every surface
# (cycles, stats, snapshot, timeline).
# Raise FUZZTIME for long soaks (make fuzz FUZZTIME=10m).
FUZZTIME ?= 30s
fuzz:
	$(GO) test -run '^$$' -fuzz '^FuzzPipeline$$' -fuzztime $(FUZZTIME) ./internal/conformance
	$(GO) test -run '^$$' -fuzz '^FuzzAnnotatedEquivalence$$' -fuzztime $(FUZZTIME) ./internal/conformance
	$(GO) test -run '^$$' -fuzz '^FuzzParallelEquivalence$$' -fuzztime $(FUZZTIME) ./internal/conformance
	$(GO) test -run '^$$' -fuzz '^FuzzLanesEquivalence$$' -fuzztime $(FUZZTIME) ./internal/conformance
	$(GO) test -run '^$$' -fuzz '^FuzzProtocolEquivalence$$' -fuzztime $(FUZZTIME) ./internal/conformance

# Coverage with checked-in floors. The floors sit a few points under the
# current numbers (see EXPERIMENTS.md) so they trip on real regressions, not
# on noise. The observability layer carries its own, higher floor: every
# regression test in the repo leans on its snapshots, so its invariants must
# stay thoroughly exercised. The shared coherence machinery (directory,
# caches, cost model behind every protocol) carries the same higher floor —
# a hole there silently weakens all protocol conformance runs at once.
COVER_MIN ?= 75
OBS_COVER_MIN ?= 80
COHERENCE_COVER_MIN ?= 80
cover:
	$(GO) test ./... -coverprofile=cover.out
	@total=$$($(GO) tool cover -func=cover.out | tail -1 | awk '{print $$3}' | tr -d '%'); \
	awk -v t=$$total -v min=$(COVER_MIN) 'BEGIN { \
		if (t+0 < min+0) { printf "FAIL: total coverage %.1f%% is below the %d%% minimum\n", t, min; exit 1 } \
		printf "total coverage %.1f%% (minimum %d%%)\n", t, min }'
	$(GO) test ./internal/obs -coverprofile=cover-obs.out
	@total=$$($(GO) tool cover -func=cover-obs.out | tail -1 | awk '{print $$3}' | tr -d '%'); \
	awk -v t=$$total -v min=$(OBS_COVER_MIN) 'BEGIN { \
		if (t+0 < min+0) { printf "FAIL: internal/obs coverage %.1f%% is below the %d%% minimum\n", t, min; exit 1 } \
		printf "internal/obs coverage %.1f%% (minimum %d%%)\n", t, min }'
	$(GO) test ./internal/coherence -coverprofile=cover-coherence.out
	@total=$$($(GO) tool cover -func=cover-coherence.out | tail -1 | awk '{print $$3}' | tr -d '%'); \
	awk -v t=$$total -v min=$(COHERENCE_COVER_MIN) 'BEGIN { \
		if (t+0 < min+0) { printf "FAIL: internal/coherence coverage %.1f%% is below the %d%% minimum\n", t, min; exit 1 } \
		printf "internal/coherence coverage %.1f%% (minimum %d%%)\n", t, min }'
