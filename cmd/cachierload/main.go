// Command cachierload replays the conformance corpus against a live
// cachierd and cross-checks every HTTP response byte-for-byte against the
// in-process library result (serve.Eval* + serve.MarshalResponse). It is
// both the serving layer's differential test — any divergence is a bug, and
// exits nonzero — and its load benchmark.
//
// Usage:
//
//	cachierload -addr host:port [-seeds 200] [-nodes 4] [-concurrency 8]
//	            [-qps 0] [-static] [-min-speedup 0] [-json BENCH_serve.json]
//	cachierload -boot path/to/cachierd [...]
//
// The harness builds one request per class (vet, annotate, static,
// simulate) for each corpus seed plus the Jacobi worked example, computes
// the expected bytes in process, then replays everything twice: a cold pass
// (every response must be a miss/flight and byte-identical to the library)
// and a cached pass (must be hits, still byte-identical — the cache must
// never change a body). Snapshot GETs are cross-checked the same way.
//
// -boot spawns the given cachierd binary on an ephemeral port, runs the
// load, then SIGTERMs it and requires a clean exit — covering graceful
// drain end to end. -json writes latency percentiles (exact, from sorted
// samples), throughput, hit rate, and the cold/hit p50 speedup; -min-speedup
// makes the speedup a hard floor. SIGINT truncates the run but still writes
// the report with "truncated": true.
package main

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"flag"
	"fmt"
	"io"
	"net/http"
	"os"
	"os/exec"
	"os/signal"
	"path/filepath"
	"sort"
	"strings"
	"sync"
	"syscall"
	"time"

	"cachier/internal/bench"
	"cachier/internal/parcgen"
	"cachier/internal/serve"
)

func main() {
	ctx, stop := signal.NotifyContext(context.Background(), syscall.SIGINT, syscall.SIGTERM)
	defer stop()
	if err := run(ctx, os.Args[1:], os.Stdout, os.Stderr); err != nil {
		fmt.Fprintln(os.Stderr, "cachierload:", err)
		os.Exit(1)
	}
}

// request is one replayable unit: the endpoint, the marshaled body, the
// expected response bytes, and any snapshots the response must publish.
type request struct {
	class string // "vet", "annotate", "static", "simulate"
	name  string // program label, for divergence reports
	body  []byte
	want  []byte
	snaps map[string][]byte // expected GET /v1/snapshot/{id} bodies
}

// classStats aggregates one request class's outcomes. The unexported sample
// slices accumulate raw latencies; percentiles are computed once a pass
// completes.
type classStats struct {
	Requests    int           `json:"requests"`
	Divergences int           `json:"divergences"`
	ColdUS      latencyReport `json:"cold_us"`
	CachedUS    latencyReport `json:"cached_us"`

	coldSamples   []int64
	cachedSamples []int64
}

type latencyReport struct {
	P50 int64 `json:"p50"`
	P95 int64 `json:"p95"`
	P99 int64 `json:"p99"`
}

// report is BENCH_serve.json.
type report struct {
	Addr              string                 `json:"addr"`
	Seeds             int                    `json:"seeds"`
	Programs          int                    `json:"programs"`
	Concurrency       int                    `json:"concurrency"`
	RequestsCold      int                    `json:"requests_cold"`
	RequestsCached    int                    `json:"requests_cached"`
	Divergences       int                    `json:"divergences"`
	HitRate           float64                `json:"hit_rate"`
	ColdUS            latencyReport          `json:"cold_us"`
	CachedUS          latencyReport          `json:"cached_us"`
	ColdHitSpeedupP50 float64                `json:"cold_hit_speedup_p50"`
	ThroughputRPS     float64                `json:"throughput_rps"`
	WallSeconds       float64                `json:"wall_seconds"`
	Classes           map[string]*classStats `json:"classes"`
	Truncated         bool                   `json:"truncated"`
}

func run(ctx context.Context, args []string, stdout, stderr io.Writer) error {
	fs := flag.NewFlagSet("cachierload", flag.ContinueOnError)
	fs.SetOutput(stderr)
	var (
		addr        = fs.String("addr", "", "server address (host:port); required unless -boot")
		boot        = fs.String("boot", "", "spawn this cachierd binary on an ephemeral port and tear it down after")
		seeds       = fs.Int("seeds", 200, "number of conformance corpus seeds to replay")
		nodes       = fs.Int("nodes", 4, "simulated machine size for corpus programs")
		concurrency = fs.Int("concurrency", 8, "concurrent in-flight requests")
		qps         = fs.Float64("qps", 0, "request rate limit (0 = unlimited)")
		static      = fs.Bool("static", true, "include the /v1/static class")
		minSpeedup  = fs.Float64("min-speedup", 0, "fail unless cached p50 is at least this many times faster than cold")
		jsonPath    = fs.String("json", "", "write the benchmark report to this file")
	)
	if err := fs.Parse(args); err != nil {
		return err
	}
	if fs.NArg() > 0 {
		return fmt.Errorf("unexpected arguments: %v", fs.Args())
	}
	if (*addr == "") == (*boot == "") {
		return errors.New("exactly one of -addr and -boot is required")
	}
	if *seeds < 1 || *concurrency < 1 {
		return errors.New("-seeds and -concurrency must be positive")
	}

	base := "http://" + *addr
	var daemon *exec.Cmd
	if *boot != "" {
		var err error
		daemon, base, err = bootDaemon(ctx, *boot, stderr)
		if err != nil {
			return err
		}
	}

	fmt.Fprintf(stdout, "cachierload: building %d-seed request set (nodes=%d, static=%v)\n", *seeds, *nodes, *static)
	reqs, err := buildRequests(ctx, *seeds, *nodes, *static)
	if err != nil && !errors.Is(err, context.Canceled) {
		return err
	}
	truncated := errors.Is(err, context.Canceled)

	rep := &report{
		Addr:        base,
		Seeds:       *seeds,
		Programs:    *seeds + 1,
		Concurrency: *concurrency,
		Classes:     map[string]*classStats{},
		Truncated:   truncated,
	}
	start := time.Now()
	var coldUS, cachedUS []int64
	hits := 0
	if !truncated {
		fmt.Fprintf(stdout, "cachierload: cold pass (%d requests, concurrency %d)\n", len(reqs), *concurrency)
		coldUS, _, err = replay(ctx, base, reqs, *concurrency, *qps, "cold", rep, stderr)
		if err != nil {
			if !errors.Is(err, context.Canceled) {
				return err
			}
			rep.Truncated = true
		}
		rep.RequestsCold = len(coldUS)
	}
	if !rep.Truncated {
		fmt.Fprintf(stdout, "cachierload: cached pass\n")
		cachedUS, hits, err = replay(ctx, base, reqs, *concurrency, *qps, "cached", rep, stderr)
		if err != nil {
			if !errors.Is(err, context.Canceled) {
				return err
			}
			rep.Truncated = true
		}
		rep.RequestsCached = len(cachedUS)
	}
	wall := time.Since(start)

	rep.ColdUS = percentiles(coldUS)
	rep.CachedUS = percentiles(cachedUS)
	for _, cs := range rep.Classes {
		rep.Divergences += cs.Divergences
	}
	if rep.RequestsCached > 0 {
		rep.HitRate = float64(hits) / float64(rep.RequestsCached)
	}
	if rep.CachedUS.P50 > 0 {
		rep.ColdHitSpeedupP50 = float64(rep.ColdUS.P50) / float64(rep.CachedUS.P50)
	}
	rep.WallSeconds = wall.Seconds()
	if wall > 0 {
		rep.ThroughputRPS = float64(rep.RequestsCold+rep.RequestsCached) / wall.Seconds()
	}

	if *jsonPath != "" {
		data, err := json.MarshalIndent(rep, "", "  ")
		if err != nil {
			return err
		}
		if err := os.WriteFile(*jsonPath, append(data, '\n'), 0o644); err != nil {
			return err
		}
	}
	fmt.Fprintf(stdout, "cachierload: %d+%d requests, %d divergences, hit rate %.3f, cold p50 %dus, cached p50 %dus (%.1fx), %.1f req/s\n",
		rep.RequestsCold, rep.RequestsCached, rep.Divergences, rep.HitRate,
		rep.ColdUS.P50, rep.CachedUS.P50, rep.ColdHitSpeedupP50, rep.ThroughputRPS)

	if daemon != nil {
		if err := stopDaemon(daemon); err != nil {
			return err
		}
		fmt.Fprintln(stdout, "cachierload: daemon drained cleanly")
	}

	switch {
	case rep.Truncated:
		return errors.New("interrupted (report truncated)")
	case rep.Divergences > 0:
		return fmt.Errorf("%d divergences between HTTP responses and library results", rep.Divergences)
	case *minSpeedup > 0 && rep.ColdHitSpeedupP50 < *minSpeedup:
		return fmt.Errorf("cached p50 speedup %.1fx below the %.1fx floor", rep.ColdHitSpeedupP50, *minSpeedup)
	case rep.RequestsCached > 0 && hits < rep.RequestsCached:
		return fmt.Errorf("only %d/%d cached-pass responses were cache hits", hits, rep.RequestsCached)
	}
	return nil
}

// buildRequests computes the full request set and its expected bytes in
// process — the library side of the differential.
func buildRequests(ctx context.Context, seeds, nodes int, static bool) ([]*request, error) {
	programs := make([]struct{ name, src string }, 0, seeds+1)
	for s := 1; s <= seeds; s++ {
		programs = append(programs, struct{ name, src string }{fmt.Sprintf("seed%d", s), parcgen.Generate(int64(s))})
	}
	programs = append(programs, struct{ name, src string }{"jacobi", bench.JacobiUnannotated(bench.JacobiParams)})

	var reqs []*request
	for _, p := range programs {
		if err := ctx.Err(); err != nil {
			return reqs, err
		}
		machine := serve.MachineSpec{Nodes: nodes}
		annReq := &serve.AnnotateRequest{Source: p.src, Prefetch: true, Machine: machine}
		vetReq := &serve.VetRequest{Source: p.src, Nodes: nodes}
		simReq := &serve.SimulateRequest{Source: p.src, Configs: []serve.MachineSpec{
			{Nodes: nodes},
			{Nodes: nodes, Engine: serve.EngineLanes},
		}}

		add := func(class string, in, out any, snaps map[string][]byte, err error) error {
			if err != nil {
				return fmt.Errorf("%s/%s: %w", p.name, class, err)
			}
			body, err := json.Marshal(in)
			if err != nil {
				return err
			}
			want, err := serve.MarshalResponse(out)
			if err != nil {
				return err
			}
			reqs = append(reqs, &request{class: class, name: p.name, body: body, want: want, snaps: snaps})
			return nil
		}

		vr, err := serve.EvalVet(vetReq)
		if err := add("vet", vetReq, vr, nil, err); err != nil {
			return nil, err
		}
		ar, err := serve.EvalAnnotate(annReq)
		if err := add("annotate", annReq, ar, nil, err); err != nil {
			return nil, err
		}
		if static {
			sr, err := serve.EvalStatic(annReq)
			if err := add("static", annReq, sr, nil, err); err != nil {
				return nil, err
			}
		}
		mr, snaps, err := serve.EvalSimulate(simReq)
		if err := add("simulate", simReq, mr, snaps, err); err != nil {
			return nil, err
		}
	}
	return reqs, nil
}

// replay sends every request once at the given concurrency and rate,
// checking bytes and cache status. pass is "cold" (miss/flight expected) or
// "cached" (hit expected; hit count is returned).
func replay(ctx context.Context, base string, reqs []*request, concurrency int, qps float64, pass string, rep *report, stderr io.Writer) (latencies []int64, hits int, err error) {
	var (
		mu      sync.Mutex
		wg      sync.WaitGroup
		tickets = make(chan struct{}, concurrency)
	)
	var limiter <-chan time.Time
	if qps > 0 {
		t := time.NewTicker(time.Duration(float64(time.Second) / qps))
		defer t.Stop()
		limiter = t.C
	}
	client := &http.Client{Timeout: 5 * time.Minute}

	for _, r := range reqs {
		if err := ctx.Err(); err != nil {
			wg.Wait()
			return latencies, hits, err
		}
		if limiter != nil {
			select {
			case <-limiter:
			case <-ctx.Done():
				wg.Wait()
				return latencies, hits, ctx.Err()
			}
		}
		tickets <- struct{}{}
		wg.Add(1)
		go func(r *request) {
			defer wg.Done()
			defer func() { <-tickets }()
			us, hit, derr := sendOne(ctx, client, base, r, pass)
			mu.Lock()
			defer mu.Unlock()
			cs := rep.Classes[r.class]
			if cs == nil {
				cs = &classStats{}
				rep.Classes[r.class] = cs
			}
			if pass == "cold" {
				cs.Requests++
			}
			if derr != nil {
				cs.Divergences++
				fmt.Fprintf(stderr, "cachierload: DIVERGENCE %s/%s (%s): %v\n", r.name, r.class, pass, derr)
				return
			}
			latencies = append(latencies, us)
			if hit {
				hits++
			}
			if pass == "cold" {
				cs.coldSamples = append(cs.coldSamples, us)
			} else {
				cs.cachedSamples = append(cs.cachedSamples, us)
			}
		}(r)
	}
	wg.Wait()

	for _, cs := range rep.Classes {
		if pass == "cold" {
			cs.ColdUS = percentiles(cs.coldSamples)
		} else {
			cs.CachedUS = percentiles(cs.cachedSamples)
		}
	}
	return latencies, hits, ctx.Err()
}

// sendOne posts one request and cross-checks status, cache header, body
// bytes, and (cold pass) the referenced snapshots.
func sendOne(ctx context.Context, client *http.Client, base string, r *request, pass string) (us int64, hit bool, err error) {
	url := base + "/v1/" + r.class
	start := time.Now()
	req, err := http.NewRequestWithContext(ctx, "POST", url, bytes.NewReader(r.body))
	if err != nil {
		return 0, false, err
	}
	req.Header.Set("Content-Type", "application/json")
	resp, err := client.Do(req)
	if err != nil {
		return 0, false, err
	}
	body, err := io.ReadAll(resp.Body)
	resp.Body.Close()
	us = time.Since(start).Microseconds()
	if err != nil {
		return 0, false, err
	}
	if resp.StatusCode != http.StatusOK {
		return 0, false, fmt.Errorf("status %d: %s", resp.StatusCode, body)
	}
	if !bytes.Equal(body, r.want) {
		return 0, false, fmt.Errorf("response bytes diverge from library result (%d vs %d bytes)", len(body), len(r.want))
	}
	status := resp.Header.Get("X-Cachier-Cache")
	hit = status == "hit"
	if pass == "cached" && !hit {
		return 0, false, fmt.Errorf("cached-pass response was %q, want hit", status)
	}
	if pass == "cold" {
		for id, want := range r.snaps {
			sresp, err := client.Get(base + "/v1/snapshot/" + id)
			if err != nil {
				return 0, false, err
			}
			sbody, err := io.ReadAll(sresp.Body)
			sresp.Body.Close()
			if err != nil {
				return 0, false, err
			}
			if sresp.StatusCode != http.StatusOK {
				return 0, false, fmt.Errorf("snapshot %s: status %d", id, sresp.StatusCode)
			}
			if !bytes.Equal(sbody, want) {
				return 0, false, fmt.Errorf("snapshot %s diverges from library bytes", id)
			}
		}
	}
	return us, hit, nil
}

// percentiles computes exact p50/p95/p99 from the sample set (nearest-rank
// on the sorted samples).
func percentiles(us []int64) latencyReport {
	if len(us) == 0 {
		return latencyReport{}
	}
	s := append([]int64(nil), us...)
	sort.Slice(s, func(i, j int) bool { return s[i] < s[j] })
	rank := func(q float64) int64 {
		i := int(q*float64(len(s))+0.5) - 1
		if i < 0 {
			i = 0
		}
		if i >= len(s) {
			i = len(s) - 1
		}
		return s[i]
	}
	return latencyReport{P50: rank(0.50), P95: rank(0.95), P99: rank(0.99)}
}

// bootDaemon spawns a cachierd on an ephemeral port and waits for its
// address file.
func bootDaemon(ctx context.Context, bin string, stderr io.Writer) (*exec.Cmd, string, error) {
	dir, err := os.MkdirTemp("", "cachierload")
	if err != nil {
		return nil, "", err
	}
	addrFile := filepath.Join(dir, "addr")
	cmd := exec.Command(bin, "-addr", "127.0.0.1:0", "-addr-file", addrFile)
	cmd.Stderr = stderr
	if err := cmd.Start(); err != nil {
		return nil, "", err
	}
	deadline := time.Now().Add(30 * time.Second)
	for {
		if data, err := os.ReadFile(addrFile); err == nil && len(data) > 0 {
			return cmd, "http://" + strings.TrimSpace(string(data)), nil
		}
		if err := ctx.Err(); err != nil {
			cmd.Process.Kill()
			return nil, "", err
		}
		if time.Now().After(deadline) {
			cmd.Process.Kill()
			return nil, "", errors.New("booted daemon never wrote its address file")
		}
		time.Sleep(10 * time.Millisecond)
	}
}

// stopDaemon SIGTERMs the daemon and requires a clean (drained) exit.
func stopDaemon(cmd *exec.Cmd) error {
	if err := cmd.Process.Signal(syscall.SIGTERM); err != nil {
		return err
	}
	done := make(chan error, 1)
	go func() { done <- cmd.Wait() }()
	select {
	case err := <-done:
		if err != nil {
			return fmt.Errorf("daemon exited uncleanly after SIGTERM: %w", err)
		}
		return nil
	case <-time.After(60 * time.Second):
		cmd.Process.Kill()
		return errors.New("daemon did not exit within 60s of SIGTERM")
	}
}
