package main

import (
	"bytes"
	"context"
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"cachier/internal/serve"
)

// TestLoadAgainstServer replays a small corpus against an in-process server
// and checks the report: zero divergences, full hit rate on the cached
// pass, all classes present.
func TestLoadAgainstServer(t *testing.T) {
	ts := httptest.NewServer(serve.New(serve.DefaultConfig()).Handler())
	defer ts.Close()

	jsonPath := filepath.Join(t.TempDir(), "BENCH_serve.json")
	var out, errb bytes.Buffer
	err := run(context.Background(), []string{
		"-addr", strings.TrimPrefix(ts.URL, "http://"),
		"-seeds", "5", "-nodes", "4", "-concurrency", "4",
		"-json", jsonPath,
	}, &out, &errb)
	if err != nil {
		t.Fatalf("run: %v\nstdout:\n%s\nstderr:\n%s", err, &out, &errb)
	}

	data, err := os.ReadFile(jsonPath)
	if err != nil {
		t.Fatal(err)
	}
	var rep report
	if err := json.Unmarshal(data, &rep); err != nil {
		t.Fatalf("report is not JSON: %v", err)
	}
	// 6 programs (5 seeds + jacobi) × 4 classes.
	if rep.RequestsCold != 24 || rep.RequestsCached != 24 {
		t.Errorf("requests cold/cached = %d/%d, want 24/24", rep.RequestsCold, rep.RequestsCached)
	}
	if rep.Divergences != 0 {
		t.Errorf("divergences = %d, want 0", rep.Divergences)
	}
	if rep.HitRate != 1 {
		t.Errorf("hit rate = %v, want 1", rep.HitRate)
	}
	if rep.Truncated {
		t.Error("report marked truncated")
	}
	for _, class := range []string{"vet", "annotate", "static", "simulate"} {
		cs := rep.Classes[class]
		if cs == nil || cs.Requests != 6 {
			t.Errorf("class %s: %+v, want 6 requests", class, cs)
		}
	}
	if rep.ColdUS.P50 <= 0 || rep.CachedUS.P50 <= 0 {
		t.Errorf("latency percentiles missing: cold %+v cached %+v", rep.ColdUS, rep.CachedUS)
	}
}

// TestLoadDetectsDivergence points the harness at a server that corrupts
// one response and requires a nonzero exit plus a counted divergence.
func TestLoadDetectsDivergence(t *testing.T) {
	inner := serve.New(serve.DefaultConfig()).Handler()
	corrupt := http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if r.URL.Path == "/v1/vet" {
			rec := httptest.NewRecorder()
			inner.ServeHTTP(rec, r)
			body := bytes.Replace(rec.Body.Bytes(), []byte(`"findings"`), []byte(`"fudnings"`), 1)
			for k, vs := range rec.Header() {
				for _, v := range vs {
					w.Header().Add(k, v)
				}
			}
			w.WriteHeader(rec.Code)
			w.Write(body)
			return
		}
		inner.ServeHTTP(w, r)
	})
	ts := httptest.NewServer(corrupt)
	defer ts.Close()

	var out, errb bytes.Buffer
	err := run(context.Background(), []string{
		"-addr", strings.TrimPrefix(ts.URL, "http://"),
		"-seeds", "2", "-static=false", "-concurrency", "2",
	}, &out, &errb)
	if err == nil {
		t.Fatalf("corrupted server not detected\nstdout:\n%s", &out)
	}
	if !strings.Contains(err.Error(), "divergence") {
		t.Fatalf("error = %v, want a divergence report", err)
	}
	if !strings.Contains(errb.String(), "DIVERGENCE") {
		t.Fatalf("stderr missing divergence details:\n%s", &errb)
	}
}

// TestLoadTruncatesOnCancel: a pre-cancelled context still writes the
// report, marked truncated, and exits nonzero.
func TestLoadTruncatesOnCancel(t *testing.T) {
	ts := httptest.NewServer(serve.New(serve.DefaultConfig()).Handler())
	defer ts.Close()
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	jsonPath := filepath.Join(t.TempDir(), "BENCH_serve.json")
	var out, errb bytes.Buffer
	err := run(ctx, []string{
		"-addr", strings.TrimPrefix(ts.URL, "http://"),
		"-seeds", "3", "-json", jsonPath,
	}, &out, &errb)
	if err == nil || !strings.Contains(err.Error(), "interrupted") {
		t.Fatalf("err = %v, want interrupted", err)
	}
	data, err := os.ReadFile(jsonPath)
	if err != nil {
		t.Fatalf("truncated run did not write the report: %v", err)
	}
	var rep report
	if err := json.Unmarshal(data, &rep); err != nil {
		t.Fatalf("truncated report is not valid JSON: %v", err)
	}
	if !rep.Truncated {
		t.Error("truncated run not marked truncated")
	}
}

func TestLoadBadFlags(t *testing.T) {
	var buf bytes.Buffer
	for _, args := range [][]string{
		{},                           // neither -addr nor -boot
		{"-addr", "x", "-boot", "y"}, // both
		{"-addr", "x", "-seeds", "0"},
		{"-addr", "x", "stray"},
	} {
		if err := run(context.Background(), args, &buf, &buf); err == nil {
			t.Errorf("args %v accepted", args)
		}
	}
}

func TestPercentiles(t *testing.T) {
	var us []int64
	for i := int64(1); i <= 100; i++ {
		us = append(us, i)
	}
	got := percentiles(us)
	if got.P50 != 50 || got.P95 != 95 || got.P99 != 99 {
		t.Errorf("percentiles = %+v, want 50/95/99", got)
	}
	if p := percentiles(nil); p != (latencyReport{}) {
		t.Errorf("empty percentiles = %+v", p)
	}
	if p := percentiles([]int64{7}); p.P50 != 7 || p.P99 != 7 {
		t.Errorf("singleton percentiles = %+v", p)
	}
}
