package main

import (
	"bytes"
	"context"
	"encoding/json"
	"os"
	"path/filepath"
	"strings"
	"testing"
	"time"
)

// TestInterruptWritesTruncatedJSON: a cancelled run must still leave a
// valid -json file behind, marked with the truncation sentinel, and exit
// with an error.
func TestInterruptWritesTruncatedJSON(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	jsonPath := filepath.Join(t.TempDir(), "fig6.json")
	var out, errb bytes.Buffer
	err := run(ctx, []string{"-bench", "MatrixMultiply", "-json", jsonPath}, &out, &errb)
	if err == nil || !strings.Contains(err.Error(), "interrupted") {
		t.Fatalf("err = %v, want interrupted", err)
	}
	data, err := os.ReadFile(jsonPath)
	if err != nil {
		t.Fatalf("truncated JSON not written: %v", err)
	}
	var rows []jsonRow
	if err := json.Unmarshal(data, &rows); err != nil {
		t.Fatalf("truncated output is not a valid []jsonRow: %v\n%s", err, data)
	}
	last := rows[len(rows)-1]
	if last.Benchmark != "__truncated__" || last.Variant != "interrupted" {
		t.Fatalf("last row = %+v, want the truncation sentinel", last)
	}
}

// TestInterruptMidSuite: a signal arriving while the suite is already
// running (not just before it starts) must be honoured at the post-suite
// boundary — the rows measured so far are flushed with the sentinel and
// the run errors instead of silently completing. The cancel fires 10ms in;
// the smallest suite takes well over 100ms, so the margin is wide.
func TestInterruptMidSuite(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	go func() {
		time.Sleep(10 * time.Millisecond)
		cancel()
	}()
	jsonPath := filepath.Join(t.TempDir(), "fig6.json")
	var out, errb bytes.Buffer
	err := run(ctx, []string{"-bench", "MatrixMultiply", "-json", jsonPath}, &out, &errb)
	if err == nil || !strings.Contains(err.Error(), "interrupted") {
		t.Fatalf("err = %v, want interrupted", err)
	}
	data, err := os.ReadFile(jsonPath)
	if err != nil {
		t.Fatalf("truncated JSON not written: %v", err)
	}
	var rows []jsonRow
	if err := json.Unmarshal(data, &rows); err != nil {
		t.Fatalf("truncated output is not a valid []jsonRow: %v\n%s", err, data)
	}
	if last := rows[len(rows)-1]; last.Benchmark != "__truncated__" {
		t.Fatalf("last row = %+v, want the truncation sentinel", last)
	}
}

// TestInterruptWithoutJSON: cancellation without -json still errors but
// writes nothing.
func TestInterruptWithoutJSON(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	var out, errb bytes.Buffer
	err := run(ctx, []string{"-bench", "MatrixMultiply"}, &out, &errb)
	if err == nil || !strings.Contains(err.Error(), "interrupted") {
		t.Fatalf("err = %v, want interrupted", err)
	}
}

// TestRunSingleBenchmark is the happy-path smoke: the smallest benchmark
// completes, prints the Figure 6 table, and writes complete JSON with no
// sentinel.
func TestRunSingleBenchmark(t *testing.T) {
	jsonPath := filepath.Join(t.TempDir(), "fig6.json")
	var out, errb bytes.Buffer
	if err := run(context.Background(), []string{"-bench", "MatrixMultiply", "-json", jsonPath}, &out, &errb); err != nil {
		t.Fatalf("run: %v\nstderr:\n%s", err, &errb)
	}
	if !strings.Contains(out.String(), "Figure 6") || !strings.Contains(out.String(), "MatrixMultiply") {
		t.Fatalf("missing table output:\n%s", &out)
	}
	data, err := os.ReadFile(jsonPath)
	if err != nil {
		t.Fatal(err)
	}
	var rows []jsonRow
	if err := json.Unmarshal(data, &rows); err != nil {
		t.Fatal(err)
	}
	if len(rows) == 0 {
		t.Fatal("no JSON rows")
	}
	for _, r := range rows {
		if r.Benchmark == "__truncated__" {
			t.Fatal("complete run carries the truncation sentinel")
		}
	}
}

func TestBadFlags(t *testing.T) {
	var buf bytes.Buffer
	for _, args := range [][]string{
		{"-bogus"},
		{"-bench", "NoSuchBenchmark"},
		{"-protosweep", "-ab"},
		{"-protosweep", "-protocol", "dirnnb"},
	} {
		if err := run(context.Background(), args, &buf, &buf); err == nil {
			t.Errorf("args %v accepted", args)
		}
	}
}
