// Command fig6 regenerates the paper's Figure 6: normalized execution times
// of the five benchmarks, comparing the unannotated, hand-annotated, and
// Cachier-annotated versions (with and without prefetch) on the simulated
// Dir1SW machine. Each benchmark is traced on its training input and
// measured on a different test input, as in Section 6.
//
// With -stats, -statsjson, or -timeline the benchmarks run with the
// observability recorder attached (internal/obs): -stats prints each
// variant's protocol summary from the structured snapshot, -statsjson
// writes the Cachier variant's full snapshot as JSON, and -timeline writes
// the Cachier variant's per-epoch Perfetto/Chrome trace (load it in
// https://ui.perfetto.dev). An attached recorder never changes simulated
// results — the golden-stats tests pin that.
//
// Usage:
//
//	fig6 [-bench NAME] [-sharing] [-stats] [-source] [-json FILE]
//	     [-statsjson FILE] [-timeline FILE]
//	     [-cpuprofile FILE] [-memprofile FILE]
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"runtime"
	"runtime/pprof"
	"strings"
	"sync"
	"time"

	"cachier/internal/bench"
)

// jsonRow is one (benchmark, variant) measurement in the -json output: the
// simulated cycle count, the Figure 6 normalized time, and the wall-clock
// seconds the benchmark's full pipeline (trace, annotate, simulate all
// variants) took on the host. Wall-clock is per benchmark, repeated on each
// of its variant rows; benchmarks run concurrently, so it measures time to
// produce the row, not exclusive CPU time.
type jsonRow struct {
	Benchmark  string  `json:"benchmark"`
	Variant    string  `json:"variant"`
	Cycles     uint64  `json:"cycles"`
	Normalized float64 `json:"normalized"`
	WallSecs   float64 `json:"wall_seconds"`
}

func main() {
	var (
		only       = flag.String("bench", "", "run a single benchmark by name")
		sharing    = flag.Bool("sharing", false, "print the sharing-degree table (Section 6)")
		stats      = flag.Bool("stats", false, "print per-variant protocol statistics")
		source     = flag.Bool("source", false, "print each Cachier-annotated program")
		big        = flag.Bool("big", false, "near-paper-scale inputs (takes minutes)")
		jsonOut    = flag.String("json", "", "write machine-readable result rows to this file")
		statsJSON  = flag.String("statsjson", "", "write the Cachier variant's stats snapshot (JSON) to this file (per-benchmark suffix when running several)")
		timeline   = flag.String("timeline", "", "write the Cachier variant's Perfetto timeline (JSON) to this file (per-benchmark suffix when running several)")
		cpuprofile = flag.String("cpuprofile", "", "write a CPU profile of the benchmark runs to this file")
		memprofile = flag.String("memprofile", "", "write a heap profile (taken after the runs) to this file")
	)
	flag.Parse()

	// The recorder is attached only when an observability output was asked
	// for, so plain -json wall-clock rows keep measuring the bare simulator.
	observe := *stats || *statsJSON != "" || *timeline != ""

	var benches []*bench.Benchmark
	if *only != "" {
		b, err := bench.ByName(*only)
		if err != nil {
			fatal(err)
		}
		benches = []*bench.Benchmark{b}
	} else {
		benches = bench.All()
	}

	if *cpuprofile != "" {
		f, err := os.Create(*cpuprofile)
		if err != nil {
			fatal(err)
		}
		defer f.Close()
		if err := pprof.StartCPUProfile(f); err != nil {
			fatal(err)
		}
		defer pprof.StopCPUProfile()
	}

	// Benchmarks run concurrently (RunBenchmark bounds actual compute to
	// the machine's CPUs); rows keep the listing order.
	rows := make([]*bench.Row, len(benches))
	errs := make([]error, len(benches))
	walls := make([]time.Duration, len(benches))
	var wg sync.WaitGroup
	for i, b := range benches {
		if *big {
			b.UseBig()
		}
		fmt.Fprintf(os.Stderr, "running %s (%d nodes)...\n", b.Name, b.Nodes)
		wg.Add(1)
		go func(i int, b *bench.Benchmark) {
			defer wg.Done()
			start := time.Now()
			if observe {
				rows[i], errs[i] = bench.RunBenchmarkObserved(b, *timeline != "")
			} else {
				rows[i], errs[i] = bench.RunBenchmark(b)
			}
			walls[i] = time.Since(start)
		}(i, b)
	}
	wg.Wait()
	for _, err := range errs {
		if err != nil {
			fatal(err)
		}
	}

	fmt.Println("Figure 6: execution time normalized to the unannotated version")
	fmt.Print(bench.FormatRows(rows))

	if *jsonOut != "" {
		if err := writeJSON(*jsonOut, rows, walls); err != nil {
			fatal(err)
		}
	}

	if *sharing {
		fmt.Println("\nSharing degree of the unannotated runs (cf. Section 6):")
		for _, r := range rows {
			fmt.Printf("  %-16s %5.1f%% shared loads, %5.1f%% shared stores\n",
				r.Benchmark, 100*r.SharingLoads, 100*r.SharingStores)
		}
	}
	if *stats {
		for _, r := range rows {
			fmt.Printf("\n%s protocol statistics:\n", r.Benchmark)
			for _, v := range bench.Variants() {
				s := r.Snapshots[v]
				fmt.Printf("  %-17s cycles=%-10d misses=%-7d faults=%-6d traps=%-6d msgs=%d epochs=%d\n",
					v, s.Cycles, s.Protocol.Misses(), s.Protocol.WriteFaults,
					s.Protocol.Traps, s.Protocol.TotalMsgs(), len(s.Epochs))
			}
			if len(r.Reports) > 0 {
				fmt.Println("  conflicts flagged by Cachier:")
				for _, rep := range r.Reports {
					fmt.Printf("    %s on %s (epoch %d)\n", rep.Kind, rep.Var, rep.Epoch)
				}
			}
		}
	}
	if *statsJSON != "" {
		for _, r := range rows {
			path := perBenchPath(*statsJSON, r.Benchmark, len(rows))
			if err := writeTo(path, r.Snapshots[bench.VariantCachier].WriteJSON); err != nil {
				fatal(err)
			}
			fmt.Fprintf(os.Stderr, "fig6: wrote stats snapshot %s\n", path)
		}
	}
	if *timeline != "" {
		for _, r := range rows {
			path := perBenchPath(*timeline, r.Benchmark, len(rows))
			rec := r.Recorders[bench.VariantCachier]
			err := writeTo(path, func(w io.Writer) error {
				return rec.WriteTimeline(w, r.Benchmark)
			})
			if err != nil {
				fatal(err)
			}
			fmt.Fprintf(os.Stderr, "fig6: wrote timeline %s\n", path)
		}
	}
	if *source {
		for _, r := range rows {
			fmt.Printf("\n===== %s, Cachier-annotated =====\n%s\n", r.Benchmark, r.AnnotatedSource)
		}
	}

	if *memprofile != "" {
		f, err := os.Create(*memprofile)
		if err != nil {
			fatal(err)
		}
		defer f.Close()
		runtime.GC() // flush garbage so the profile shows live data
		if err := pprof.WriteHeapProfile(f); err != nil {
			fatal(err)
		}
	}
}

// writeJSON emits one row per (benchmark, variant) in listing order.
func writeJSON(path string, rows []*bench.Row, walls []time.Duration) error {
	var out []jsonRow
	for i, r := range rows {
		for _, v := range bench.Variants() {
			out = append(out, jsonRow{
				Benchmark:  r.Benchmark,
				Variant:    string(v),
				Cycles:     r.Cycles[v],
				Normalized: r.Normalized(v),
				WallSecs:   walls[i].Seconds(),
			})
		}
	}
	data, err := json.MarshalIndent(out, "", "  ")
	if err != nil {
		return err
	}
	return os.WriteFile(path, append(data, '\n'), 0o644)
}

// perBenchPath returns path unchanged when a single benchmark ran, or
// inserts the lower-case benchmark name before the extension when several
// did, so one -statsjson/-timeline flag fans out to one file per benchmark.
func perBenchPath(path, benchName string, n int) string {
	if n == 1 {
		return path
	}
	ext := filepath.Ext(path)
	return strings.TrimSuffix(path, ext) + "." + strings.ToLower(benchName) + ext
}

// writeTo creates path and streams fn's output into it.
func writeTo(path string, fn func(io.Writer) error) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	if err := fn(f); err != nil {
		f.Close()
		return err
	}
	return f.Close()
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "fig6:", err)
	os.Exit(1)
}
