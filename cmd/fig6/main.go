// Command fig6 regenerates the paper's Figure 6: normalized execution times
// of the five benchmarks, comparing the unannotated, hand-annotated, and
// Cachier-annotated versions (with and without prefetch) on the simulated
// Dir1SW machine. Each benchmark is traced on its training input and
// measured on a different test input, as in Section 6.
//
// Usage:
//
//	fig6 [-bench NAME] [-sharing] [-stats] [-source] [-json FILE]
//	     [-cpuprofile FILE] [-memprofile FILE]
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"runtime"
	"runtime/pprof"
	"sync"
	"time"

	"cachier/internal/bench"
)

// jsonRow is one (benchmark, variant) measurement in the -json output: the
// simulated cycle count, the Figure 6 normalized time, and the wall-clock
// seconds the benchmark's full pipeline (trace, annotate, simulate all
// variants) took on the host. Wall-clock is per benchmark, repeated on each
// of its variant rows; benchmarks run concurrently, so it measures time to
// produce the row, not exclusive CPU time.
type jsonRow struct {
	Benchmark  string  `json:"benchmark"`
	Variant    string  `json:"variant"`
	Cycles     uint64  `json:"cycles"`
	Normalized float64 `json:"normalized"`
	WallSecs   float64 `json:"wall_seconds"`
}

func main() {
	var (
		only       = flag.String("bench", "", "run a single benchmark by name")
		sharing    = flag.Bool("sharing", false, "print the sharing-degree table (Section 6)")
		stats      = flag.Bool("stats", false, "print per-variant protocol statistics")
		source     = flag.Bool("source", false, "print each Cachier-annotated program")
		big        = flag.Bool("big", false, "near-paper-scale inputs (takes minutes)")
		jsonOut    = flag.String("json", "", "write machine-readable result rows to this file")
		cpuprofile = flag.String("cpuprofile", "", "write a CPU profile of the benchmark runs to this file")
		memprofile = flag.String("memprofile", "", "write a heap profile (taken after the runs) to this file")
	)
	flag.Parse()

	var benches []*bench.Benchmark
	if *only != "" {
		b, err := bench.ByName(*only)
		if err != nil {
			fatal(err)
		}
		benches = []*bench.Benchmark{b}
	} else {
		benches = bench.All()
	}

	if *cpuprofile != "" {
		f, err := os.Create(*cpuprofile)
		if err != nil {
			fatal(err)
		}
		defer f.Close()
		if err := pprof.StartCPUProfile(f); err != nil {
			fatal(err)
		}
		defer pprof.StopCPUProfile()
	}

	// Benchmarks run concurrently (RunBenchmark bounds actual compute to
	// the machine's CPUs); rows keep the listing order.
	rows := make([]*bench.Row, len(benches))
	errs := make([]error, len(benches))
	walls := make([]time.Duration, len(benches))
	var wg sync.WaitGroup
	for i, b := range benches {
		if *big {
			b.UseBig()
		}
		fmt.Fprintf(os.Stderr, "running %s (%d nodes)...\n", b.Name, b.Nodes)
		wg.Add(1)
		go func(i int, b *bench.Benchmark) {
			defer wg.Done()
			start := time.Now()
			rows[i], errs[i] = bench.RunBenchmark(b)
			walls[i] = time.Since(start)
		}(i, b)
	}
	wg.Wait()
	for _, err := range errs {
		if err != nil {
			fatal(err)
		}
	}

	fmt.Println("Figure 6: execution time normalized to the unannotated version")
	fmt.Print(bench.FormatRows(rows))

	if *jsonOut != "" {
		if err := writeJSON(*jsonOut, rows, walls); err != nil {
			fatal(err)
		}
	}

	if *sharing {
		fmt.Println("\nSharing degree of the unannotated runs (cf. Section 6):")
		for _, r := range rows {
			fmt.Printf("  %-16s %5.1f%% shared loads, %5.1f%% shared stores\n",
				r.Benchmark, 100*r.SharingLoads, 100*r.SharingStores)
		}
	}
	if *stats {
		for _, r := range rows {
			fmt.Printf("\n%s protocol statistics:\n", r.Benchmark)
			for _, v := range bench.Variants() {
				s := r.Stats[v]
				fmt.Printf("  %-17s cycles=%-10d misses=%-7d faults=%-6d traps=%-6d msgs=%d\n",
					v, r.Cycles[v], s.Misses(), s.WriteFaults, s.Traps, s.TotalMsgs())
			}
			if len(r.Reports) > 0 {
				fmt.Println("  conflicts flagged by Cachier:")
				for _, rep := range r.Reports {
					fmt.Printf("    %s on %s (epoch %d)\n", rep.Kind, rep.Var, rep.Epoch)
				}
			}
		}
	}
	if *source {
		for _, r := range rows {
			fmt.Printf("\n===== %s, Cachier-annotated =====\n%s\n", r.Benchmark, r.AnnotatedSource)
		}
	}

	if *memprofile != "" {
		f, err := os.Create(*memprofile)
		if err != nil {
			fatal(err)
		}
		defer f.Close()
		runtime.GC() // flush garbage so the profile shows live data
		if err := pprof.WriteHeapProfile(f); err != nil {
			fatal(err)
		}
	}
}

// writeJSON emits one row per (benchmark, variant) in listing order.
func writeJSON(path string, rows []*bench.Row, walls []time.Duration) error {
	var out []jsonRow
	for i, r := range rows {
		for _, v := range bench.Variants() {
			out = append(out, jsonRow{
				Benchmark:  r.Benchmark,
				Variant:    string(v),
				Cycles:     r.Cycles[v],
				Normalized: r.Normalized(v),
				WallSecs:   walls[i].Seconds(),
			})
		}
	}
	data, err := json.MarshalIndent(out, "", "  ")
	if err != nil {
		return err
	}
	return os.WriteFile(path, append(data, '\n'), 0o644)
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "fig6:", err)
	os.Exit(1)
}
