// Command fig6 regenerates the paper's Figure 6: normalized execution times
// of the five benchmarks, comparing the unannotated, hand-annotated, and
// Cachier-annotated versions (with and without prefetch) on the simulated
// Dir1SW machine. Each benchmark is traced on its training input and
// measured on a different test input, as in Section 6.
//
// With -stats, -statsjson, or -timeline the benchmarks run with the
// observability recorder attached (internal/obs): -stats prints each
// variant's protocol summary from the structured snapshot, -statsjson
// writes the Cachier variant's full snapshot as JSON, and -timeline writes
// the Cachier variant's per-epoch Perfetto/Chrome trace (load it in
// https://ui.perfetto.dev). An attached recorder never changes simulated
// results — the golden-stats tests pin that.
//
// Usage:
//
//	fig6 [-bench NAME] [-sharing] [-stats] [-source] [-json FILE]
//	     [-big] [-paper] [-parallel N] [-lanes] [-ab]
//	     [-protocol SPEC] [-protosweep]
//	     [-statsjson FILE] [-timeline FILE]
//	     [-cpuprofile FILE] [-memprofile FILE]
//
// -parallel N simulates on the epoch-parallel engine with N workers (-1:
// one per CPU) and -lanes on the lane-batched engine (all nodes stepped as
// lanes of one goroutine with batched access resolution); results are
// bit-identical to the sequential engine either way, only host wall-clock
// changes. -ab runs the suite on all three engines — sequential, lanes,
// and parallel — and writes every measurement to -json, with engine and
// per-variant wall-clock on every row. -big selects near-paper-scale
// inputs, -paper the paper-scale ones (Section 6's problem sizes; expect
// minutes per benchmark).
//
// -protocol SPEC simulates under a different coherence protocol ("dir1sw",
// "dirnnb[:n]", "dirnb[:n]"; see internal/coherence). -protosweep runs the
// suite once per protocol in the standard sweep (Dir1SW, Dir4NB, Dir4B) and
// prints the cross-protocol CICO-benefit table; with -json every row
// carries its protocol.
//
// On SIGINT/SIGTERM the run stops at the next suite boundary and -json
// still receives valid JSON: the rows measured so far plus a sentinel row
// {"benchmark": "__truncated__", "variant": "interrupted"} marking the
// truncation (cmd/benchcmp treats the one-sided rows as notes).
package main

import (
	"context"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"os"
	"os/signal"
	"path/filepath"
	"runtime"
	"runtime/pprof"
	"strings"
	"sync"
	"syscall"
	"time"

	"cachier/internal/bench"
)

// jsonRow is one (benchmark, variant) measurement in the -json output.
// WallSecs is this variant's own sim.Run wall-clock on the host; Engine
// says which simulation engine produced it ("sequential", "parallel", or
// the conflict-fallback label) and Interp which interpreter ran the program
// (the harness always uses the bytecode VM). BenchWallSecs is the
// benchmark's full pipeline wall (trace, annotate, simulate all variants),
// repeated on each of its rows; benchmarks run concurrently, so it measures
// time to produce the row, not exclusive CPU time. Parallel and HostCPUs
// record the A/B context: configured workers and the host's CPU count.
type jsonRow struct {
	Benchmark     string  `json:"benchmark"`
	Variant       string  `json:"variant"`
	Protocol      string  `json:"protocol"`
	Nodes         int     `json:"nodes"`
	Cycles        uint64  `json:"cycles"`
	Normalized    float64 `json:"normalized"`
	Engine        string  `json:"engine"`
	Interp        string  `json:"interp"`
	Parallel      int     `json:"parallel"`
	HostCPUs      int     `json:"host_cpus"`
	WallSecs      float64 `json:"wall_seconds"`
	BenchWallSecs float64 `json:"bench_wall_seconds"`
}

// truncatedRow is the sentinel appended to a partial -json output when the
// run is interrupted. It keeps the file a valid []jsonRow — consumers that
// key rows by (benchmark, variant) see it as a one-sided note, and its
// presence is the machine-readable truncation marker.
func truncatedRow() jsonRow {
	return jsonRow{Benchmark: "__truncated__", Variant: "interrupted", Interp: "vm", HostCPUs: runtime.NumCPU()}
}

func main() {
	ctx, stop := signal.NotifyContext(context.Background(), syscall.SIGINT, syscall.SIGTERM)
	defer stop()
	go func() {
		// After the first signal the run winds down at the next suite
		// boundary; restoring the default disposition here lets a second
		// ^C kill the process immediately instead of being swallowed.
		<-ctx.Done()
		stop()
	}()
	if err := run(ctx, os.Args[1:], os.Stdout, os.Stderr); err != nil {
		fmt.Fprintln(os.Stderr, "fig6:", err)
		os.Exit(1)
	}
}

func run(ctx context.Context, args []string, stdout, stderr io.Writer) error {
	fs := flag.NewFlagSet("fig6", flag.ContinueOnError)
	fs.SetOutput(stderr)
	var (
		only       = fs.String("bench", "", "run a single benchmark by name")
		sharing    = fs.Bool("sharing", false, "print the sharing-degree table (Section 6)")
		stats      = fs.Bool("stats", false, "print per-variant protocol statistics")
		source     = fs.Bool("source", false, "print each Cachier-annotated program")
		big        = fs.Bool("big", false, "near-paper-scale inputs (takes minutes)")
		paper      = fs.Bool("paper", false, "paper-scale inputs (Section 6 problem sizes; takes minutes per benchmark)")
		parallel   = fs.Int("parallel", 0, "epoch-parallel simulation workers (0 sequential, -1 one per CPU); results are bit-identical")
		lanes      = fs.Bool("lanes", false, "simulate on the lane-batched engine; results are bit-identical")
		protocol   = fs.String("protocol", "", `coherence protocol spec: "dir1sw" (the default), "dirnnb[:n]", or "dirnb[:n]"`)
		protosweep = fs.Bool("protosweep", false, "run the suite once per protocol (dir1sw, dirnnb:4, dirnb:4) and print the cross-protocol table")
		ab         = fs.Bool("ab", false, "A/B: run the suite on the sequential, lane-batched, AND epoch-parallel (-parallel workers, -1 if unset) engines, emitting all in -json")
		jsonOut    = fs.String("json", "", "write machine-readable result rows to this file")
		statsJSON  = fs.String("statsjson", "", "write the Cachier variant's stats snapshot (JSON) to this file (per-benchmark suffix when running several)")
		timeline   = fs.String("timeline", "", "write the Cachier variant's Perfetto timeline (JSON) to this file (per-benchmark suffix when running several)")
		cpuprofile = fs.String("cpuprofile", "", "write a CPU profile of the benchmark runs to this file")
		memprofile = fs.String("memprofile", "", "write a heap profile (taken after the runs) to this file")
	)
	if err := fs.Parse(args); err != nil {
		return err
	}

	if *protosweep {
		if *ab || *statsJSON != "" || *timeline != "" {
			return fmt.Errorf("-protosweep cannot combine with -ab, -statsjson, or -timeline")
		}
		if *protocol != "" {
			return fmt.Errorf("-protosweep runs its own protocol list; drop -protocol")
		}
	}

	// The recorder is attached only when an observability output was asked
	// for, so plain -json wall-clock rows keep measuring the bare simulator.
	observe := *stats || *statsJSON != "" || *timeline != ""

	var benches []*bench.Benchmark
	if *only != "" {
		b, err := bench.ByName(*only)
		if err != nil {
			return err
		}
		benches = []*bench.Benchmark{b}
	} else {
		benches = bench.All()
	}

	if *cpuprofile != "" {
		f, err := os.Create(*cpuprofile)
		if err != nil {
			return err
		}
		defer f.Close()
		if err := pprof.StartCPUProfile(f); err != nil {
			return err
		}
		defer pprof.StopCPUProfile()
	}

	for _, b := range benches {
		if *paper {
			b.UsePaper()
		} else if *big {
			b.UseBig()
		}
	}

	var jsonRows []jsonRow
	// interrupted flushes the rows measured so far (plus the truncation
	// sentinel) to -json and reports why the run stopped. Suite boundaries
	// call it so ^C during a long -paper or -protosweep run still leaves a
	// valid, marked JSON file behind.
	interrupted := func() error {
		if *jsonOut != "" {
			if werr := writeJSON(*jsonOut, append(jsonRows, truncatedRow())); werr != nil {
				return fmt.Errorf("interrupted, and writing truncated %s failed: %w", *jsonOut, werr)
			}
			return fmt.Errorf("interrupted; wrote truncated %s (%d rows + sentinel)", *jsonOut, len(jsonRows))
		}
		return fmt.Errorf("interrupted: %w", ctx.Err())
	}

	// runSuite measures every benchmark on one engine configuration.
	// Benchmarks run concurrently (RunBenchmark bounds actual compute to
	// the machine's CPUs); rows keep the listing order.
	runSuite := func(workers int, useLanes bool, proto string) ([]*bench.Row, []time.Duration, error) {
		rows := make([]*bench.Row, len(benches))
		errs := make([]error, len(benches))
		walls := make([]time.Duration, len(benches))
		var wg sync.WaitGroup
		for i, b := range benches {
			b.Parallel = workers
			b.Lanes = useLanes
			b.Protocol = proto
			fmt.Fprintf(stderr, "running %s (%d nodes, parallel=%d, lanes=%v, protocol=%s)...\n", b.Name, b.Nodes, workers, useLanes, protoLabel(proto))
			wg.Add(1)
			go func(i int, b *bench.Benchmark) {
				defer wg.Done()
				start := time.Now()
				if observe {
					rows[i], errs[i] = bench.RunBenchmarkObserved(b, *timeline != "")
				} else {
					rows[i], errs[i] = bench.RunBenchmark(b)
				}
				walls[i] = time.Since(start)
			}(i, b)
		}
		wg.Wait()
		for _, err := range errs {
			if err != nil {
				return nil, nil, err
			}
		}
		return rows, walls, nil
	}

	if ctx.Err() != nil {
		return interrupted()
	}
	rows, walls, err := runSuite(*parallel, *lanes, *protocol)
	if err != nil {
		return err
	}
	jsonRows = collectRows(rows, walls, *parallel)
	// A signal that arrived while the suite was running is honoured here:
	// the rows measured so far are flushed with the truncation sentinel and
	// the exit is nonzero, instead of silently completing the run.
	if ctx.Err() != nil {
		return interrupted()
	}

	// A/B mode: re-run the whole suite on the lane-batched and
	// epoch-parallel engines. The cycle counts are bit-identical by design
	// (the conformance corpus pins that); only the host wall-clock differs.
	if *ab {
		workers := *parallel
		if workers == 0 {
			workers = -1
		}
		if ctx.Err() != nil {
			return interrupted()
		}
		laneRows, laneWalls, err := runSuite(0, true, *protocol)
		if err != nil {
			return err
		}
		jsonRows = append(jsonRows, collectRows(laneRows, laneWalls, 0)...)
		if ctx.Err() != nil {
			return interrupted()
		}
		abRows, abWalls, err := runSuite(workers, false, *protocol)
		if err != nil {
			return err
		}
		jsonRows = append(jsonRows, collectRows(abRows, abWalls, workers)...)
		fmt.Fprintln(stdout, "Engine A/B: per-variant simulation wall-clock, sequential vs lanes vs parallel")
		fmt.Fprintf(stdout, "%-16s %-17s | %10s %10s %10s | %7s %7s | %s\n",
			"benchmark", "variant", "seq", "lanes", "par", "lanes", "par", "engines")
		for i, r := range rows {
			for _, v := range bench.Variants() {
				seqW := r.Walls[v].Seconds()
				laneW := laneRows[i].Walls[v].Seconds()
				parW := abRows[i].Walls[v].Seconds()
				laneR, parR := 0.0, 0.0
				if laneW > 0 {
					laneR = seqW / laneW
				}
				if parW > 0 {
					parR = seqW / parW
				}
				if r.Cycles[v] != laneRows[i].Cycles[v] || r.Cycles[v] != abRows[i].Cycles[v] {
					return fmt.Errorf("A/B cycle divergence on %s/%s: seq %d, lanes %d, parallel %d",
						r.Benchmark, v, r.Cycles[v], laneRows[i].Cycles[v], abRows[i].Cycles[v])
				}
				fmt.Fprintf(stdout, "%-16s %-17s | %9.3fs %9.3fs %9.3fs | %6.2fx %6.2fx | %s / %s / %s\n",
					r.Benchmark, v, seqW, laneW, parW, laneR, parR,
					r.Engines[v], laneRows[i].Engines[v], abRows[i].Engines[v])
			}
		}
		fmt.Fprintln(stdout)
	}

	fmt.Fprintln(stdout, "Figure 6: execution time normalized to the unannotated version")
	fmt.Fprint(stdout, bench.FormatRows(rows))

	// Protocol sweep: re-run the whole suite under each remaining protocol
	// (the run above covered the sweep's first spec, Dir1SW) and print the
	// cross-protocol comparison. "benefit" is the Cachier variant's saving
	// over the same protocol's unannotated run — the paper's question
	// "how much of CICO's benefit survives more sharing pointers?".
	if *protosweep {
		allRows := [][]*bench.Row{rows}
		for _, spec := range bench.SweepSpecs()[1:] {
			if ctx.Err() != nil {
				return interrupted()
			}
			r2, w2, err := runSuite(*parallel, *lanes, spec)
			if err != nil {
				return err
			}
			jsonRows = append(jsonRows, collectRows(r2, w2, *parallel)...)
			allRows = append(allRows, r2)
		}
		fmt.Fprintln(stdout, "\nProtocol sweep: unannotated vs Cachier cycles per protocol")
		fmt.Fprintf(stdout, "%-16s %-8s | %10s %10s %8s\n", "benchmark", "protocol", "none", "cachier", "benefit")
		for i := range rows {
			for _, rs := range allRows {
				r := rs[i]
				fmt.Fprintf(stdout, "%-16s %-8s | %10d %10d %7.1f%%\n",
					r.Benchmark, r.Protocol,
					r.Cycles[bench.VariantNone], r.Cycles[bench.VariantCachier],
					100*(1-r.Normalized(bench.VariantCachier)))
			}
		}
	}

	if *jsonOut != "" {
		if err := writeJSON(*jsonOut, jsonRows); err != nil {
			return err
		}
	}

	if *sharing {
		fmt.Fprintln(stdout, "\nSharing degree of the unannotated runs (cf. Section 6):")
		for _, r := range rows {
			fmt.Fprintf(stdout, "  %-16s %5.1f%% shared loads, %5.1f%% shared stores\n",
				r.Benchmark, 100*r.SharingLoads, 100*r.SharingStores)
		}
	}
	if *stats {
		for _, r := range rows {
			fmt.Fprintf(stdout, "\n%s protocol statistics:\n", r.Benchmark)
			for _, v := range bench.Variants() {
				s := r.Snapshots[v]
				fmt.Fprintf(stdout, "  %-17s cycles=%-10d misses=%-7d faults=%-6d traps=%-6d msgs=%d epochs=%d\n",
					v, s.Cycles, s.Protocol.Misses(), s.Protocol.WriteFaults,
					s.Protocol.Traps, s.Protocol.TotalMsgs(), len(s.Epochs))
			}
			if len(r.Reports) > 0 {
				fmt.Fprintln(stdout, "  conflicts flagged by Cachier:")
				for _, rep := range r.Reports {
					fmt.Fprintf(stdout, "    %s on %s (epoch %d)\n", rep.Kind, rep.Var, rep.Epoch)
				}
			}
		}
	}
	if *statsJSON != "" {
		for _, r := range rows {
			path := perBenchPath(*statsJSON, r.Benchmark, len(rows))
			if err := writeTo(path, r.Snapshots[bench.VariantCachier].WriteJSON); err != nil {
				return err
			}
			fmt.Fprintf(stderr, "fig6: wrote stats snapshot %s\n", path)
		}
	}
	if *timeline != "" {
		for _, r := range rows {
			path := perBenchPath(*timeline, r.Benchmark, len(rows))
			rec := r.Recorders[bench.VariantCachier]
			err := writeTo(path, func(w io.Writer) error {
				return rec.WriteTimeline(w, r.Benchmark)
			})
			if err != nil {
				return err
			}
			fmt.Fprintf(stderr, "fig6: wrote timeline %s\n", path)
		}
	}
	if *source {
		for _, r := range rows {
			fmt.Fprintf(stdout, "\n===== %s, Cachier-annotated =====\n%s\n", r.Benchmark, r.AnnotatedSource)
		}
	}

	if *memprofile != "" {
		f, err := os.Create(*memprofile)
		if err != nil {
			return err
		}
		defer f.Close()
		runtime.GC() // flush garbage so the profile shows live data
		if err := pprof.WriteHeapProfile(f); err != nil {
			return err
		}
	}
	return nil
}

// collectRows flattens one suite run into JSON rows, one per (benchmark,
// variant) in listing order.
func collectRows(rows []*bench.Row, walls []time.Duration, workers int) []jsonRow {
	var out []jsonRow
	for i, r := range rows {
		for _, v := range bench.Variants() {
			out = append(out, jsonRow{
				Benchmark:     r.Benchmark,
				Variant:       string(v),
				Protocol:      r.Protocol,
				Nodes:         r.Nodes,
				Cycles:        r.Cycles[v],
				Normalized:    r.Normalized(v),
				Engine:        r.Engines[v],
				Interp:        "vm",
				Parallel:      workers,
				HostCPUs:      runtime.NumCPU(),
				WallSecs:      r.Walls[v].Seconds(),
				BenchWallSecs: walls[i].Seconds(),
			})
		}
	}
	return out
}

// writeJSON emits the collected measurement rows.
func writeJSON(path string, rows []jsonRow) error {
	data, err := json.MarshalIndent(rows, "", "  ")
	if err != nil {
		return err
	}
	return os.WriteFile(path, append(data, '\n'), 0o644)
}

// perBenchPath returns path unchanged when a single benchmark ran, or
// inserts the lower-case benchmark name before the extension when several
// did, so one -statsjson/-timeline flag fans out to one file per benchmark.
func perBenchPath(path, benchName string, n int) string {
	if n == 1 {
		return path
	}
	ext := filepath.Ext(path)
	return strings.TrimSuffix(path, ext) + "." + strings.ToLower(benchName) + ext
}

// writeTo creates path and streams fn's output into it.
func writeTo(path string, fn func(io.Writer) error) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	if err := fn(f); err != nil {
		f.Close()
		return err
	}
	return f.Close()
}

// protoLabel names a protocol spec for progress lines; "" is the default
// machine.
func protoLabel(spec string) string {
	if spec == "" {
		return "dir1sw"
	}
	return spec
}
