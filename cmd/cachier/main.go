// Command cachier automatically inserts CICO annotations into a ParC
// shared-memory program, reproducing the paper's tool: it combines the
// dynamic information in an execution trace (produced by wwt -trace on the
// same source) with static analysis of the program, writes the annotated
// program, and reports the data races and false sharing it found.
//
// Usage:
//
//	cachier [flags] program.parc
//
//	-trace FILE     execution trace of the unannotated program (required,
//	                unless -self traces internally)
//	-self           run the tracing simulation internally instead of
//	                reading a trace file
//	-o FILE         write the annotated program here (default stdout)
//	-style STYLE    "performance" (default) or "programmer" (Section 4.1)
//	-prefetch       also insert prefetch annotations
//	-cache BYTES    cache capacity assumed by placement (default 262144)
//	-nodes N        nodes for -self tracing (default 32)
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"

	"cachier/internal/core"
	"cachier/internal/parc"
	"cachier/internal/sim"
	"cachier/internal/trace"
)

func main() {
	var (
		traceFile = flag.String("trace", "", "execution trace file(s) from wwt -trace, comma-separated for a training set")
		selfTrace = flag.Bool("self", false, "trace internally instead of reading a file")
		out       = flag.String("o", "", "output file (default stdout)")
		style     = flag.String("style", "performance", `"performance" or "programmer"`)
		prefetch  = flag.Bool("prefetch", false, "insert prefetch annotations")
		report    = flag.Bool("report", false, "print the CICO communication cost report")
		cache     = flag.Int("cache", 256*1024, "cache capacity for placement decisions")
		nodes     = flag.Int("nodes", 32, "nodes for -self tracing")
	)
	flag.Parse()
	if flag.NArg() != 1 {
		fmt.Fprintln(os.Stderr, "usage: cachier [flags] program.parc")
		flag.Usage()
		os.Exit(2)
	}
	srcBytes, err := os.ReadFile(flag.Arg(0))
	if err != nil {
		fatal(err)
	}
	src := string(srcBytes)

	var traces []*trace.Trace
	switch {
	case *selfTrace:
		prog, err := parc.Parse(src)
		if err != nil {
			fatal(err)
		}
		cfg := sim.DefaultConfig()
		cfg.Nodes = *nodes
		cfg.Mode = sim.ModeTrace
		res, err := sim.Run(prog, cfg)
		if err != nil {
			fatal(fmt.Errorf("tracing: %w", err))
		}
		traces = []*trace.Trace{res.Trace}
	case *traceFile != "":
		// Comma-separated files form a training set (Section 4.5's
		// alternative to a single input data set).
		for _, name := range strings.Split(*traceFile, ",") {
			f, err := os.Open(name)
			if err != nil {
				fatal(err)
			}
			tr, err := trace.Read(f)
			if err != nil {
				fatal(err)
			}
			f.Close()
			traces = append(traces, tr)
		}
	default:
		fatal(fmt.Errorf("either -trace FILE[,FILE...] or -self is required"))
	}

	opts := core.DefaultOptions()
	opts.Prefetch = *prefetch
	opts.CacheSize = *cache
	switch *style {
	case "performance":
		opts.Style = core.StylePerformance
	case "programmer":
		opts.Style = core.StyleProgrammer
	default:
		fatal(fmt.Errorf("unknown style %q", *style))
	}

	res, err := core.AnnotateMulti(src, traces, opts)
	if err != nil {
		fatal(err)
	}
	if *out == "" {
		fmt.Print(res.Source)
	} else if err := os.WriteFile(*out, []byte(res.Source), 0o644); err != nil {
		fatal(err)
	}
	fmt.Fprintf(os.Stderr, "cachier: inserted %d annotation statement(s) (%s CICO)\n",
		res.Annotations, opts.Style)
	for _, r := range res.Reports {
		loc := ""
		if r.Pos.IsValid() {
			loc = fmt.Sprintf(" at %s", r.Pos)
		}
		fmt.Fprintf(os.Stderr, "cachier: %s on %s%s (first seen epoch %d, %d address(es))\n",
			r.Kind, r.Var, loc, r.Epoch, r.Addrs)
	}
	if *report {
		fmt.Fprint(os.Stderr, res.Cost.String())
	}
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "cachier:", err)
	os.Exit(1)
}
