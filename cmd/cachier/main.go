// Command cachier automatically inserts CICO annotations into a ParC
// shared-memory program, reproducing the paper's tool: it combines the
// dynamic information in an execution trace (produced by wwt -trace on the
// same source) with static analysis of the program, writes the annotated
// program, and reports the data races and false sharing it found.
//
// Usage:
//
//	cachier [flags] program.parc
//
//	-trace FILE     execution trace of the unannotated program (required,
//	                unless -self traces internally)
//	-self           run the tracing simulation internally instead of
//	                reading a trace file
//	-o FILE         write the annotated program here (default stdout)
//	-style STYLE    "performance" (default) or "programmer" (Section 4.1)
//	-prefetch       also insert prefetch annotations
//	-cache BYTES    cache capacity assumed by placement (default 262144)
//	-nodes N        nodes for -self tracing (default 32)
//	-stats FILE     simulate the annotated program and write its structured
//	                stats snapshot (internal/obs JSON) to FILE
//	-protocol SPEC  coherence protocol for -self tracing and -stats
//	                simulation: dir1sw (default), dirnnb[:n], dirnb[:n];
//	                annotation itself is protocol-independent
//	-static         infer the trace statically (internal/staticanno) instead
//	                of simulating or reading one; no trace input needed
//	-static=verify  run both pipelines — trace-driven (from -trace or -self)
//	                and static — and diff the annotated outputs in every
//	                style; placement divergence is a nonzero exit
package main

import (
	"flag"
	"fmt"
	"io"
	"os"
	"strings"

	"cachier/internal/core"
	"cachier/internal/obs"
	"cachier/internal/parc"
	"cachier/internal/sim"
	"cachier/internal/staticanno"
	"cachier/internal/trace"
)

// staticMode is the tri-state -static flag: off, on (annotate from the
// statically inferred trace), or verify (run both pipelines and diff).
type staticMode int

const (
	staticOff staticMode = iota
	staticOn
	staticVerify
)

func (m *staticMode) String() string {
	switch *m {
	case staticOn:
		return "true"
	case staticVerify:
		return "verify"
	}
	return "false"
}

func (m *staticMode) Set(s string) error {
	switch s {
	case "", "true", "on", "1":
		*m = staticOn
	case "false", "off", "0":
		*m = staticOff
	case "verify":
		*m = staticVerify
	default:
		return fmt.Errorf(`want "true", "false", or "verify"`)
	}
	return nil
}

// IsBoolFlag lets plain -static (no value) mean -static=true.
func (m *staticMode) IsBoolFlag() bool { return true }

func main() {
	if err := run(os.Args[1:], os.Stdout, os.Stderr); err != nil {
		if err != flag.ErrHelp {
			fmt.Fprintln(os.Stderr, "cachier:", err)
		}
		os.Exit(1)
	}
}

// run is the whole program behind an error seam, so golden tests drive it
// with in-memory writers exactly as main drives it with the real streams.
func run(args []string, stdout, stderr io.Writer) error {
	fs := flag.NewFlagSet("cachier", flag.ContinueOnError)
	fs.SetOutput(stderr)
	var (
		traceFile = fs.String("trace", "", "execution trace file(s) from wwt -trace, comma-separated for a training set")
		selfTrace = fs.Bool("self", false, "trace internally instead of reading a file")
		out       = fs.String("o", "", "output file (default stdout)")
		style     = fs.String("style", "performance", `"performance" or "programmer"`)
		prefetch  = fs.Bool("prefetch", false, "insert prefetch annotations")
		report    = fs.Bool("report", false, "print the CICO communication cost report")
		cache     = fs.Int("cache", 256*1024, "cache capacity for placement decisions")
		nodes     = fs.Int("nodes", 32, "nodes for -self tracing")
		stats     = fs.String("stats", "", "simulate the annotated program and write its stats snapshot (JSON) to this file")
		protocol  = fs.String("protocol", "", `coherence protocol for -self/-stats simulations: "dir1sw" (default), "dirnnb[:n]", or "dirnb[:n]"`)
	)
	var static staticMode
	fs.Var(&static, "static", `infer the trace statically: "true", or "verify" to diff against the trace-driven placement`)
	if err := fs.Parse(args); err != nil {
		return err
	}
	if fs.NArg() != 1 {
		fmt.Fprintln(stderr, "usage: cachier [flags] program.parc")
		fs.Usage()
		return fmt.Errorf("expected one program, got %d arguments", fs.NArg())
	}
	srcBytes, err := os.ReadFile(fs.Arg(0))
	if err != nil {
		return err
	}
	src := string(srcBytes)

	staticCfg := staticanno.DefaultConfig()
	staticCfg.Nodes = *nodes

	var traces []*trace.Trace
	switch {
	case static == staticOn:
		// Trace-free mode: synthesize the trace from the program alone.
		prog, err := parc.Parse(src)
		if err != nil {
			return err
		}
		if err := parc.Check(prog); err != nil {
			return err
		}
		inf, err := staticanno.Infer(prog, staticCfg)
		if err != nil {
			return fmt.Errorf("static inference: %w", err)
		}
		reportInexact(stderr, inf)
		traces = []*trace.Trace{inf.Trace}
	case *selfTrace:
		prog, err := parc.Parse(src)
		if err != nil {
			return err
		}
		cfg := sim.DefaultConfig()
		cfg.Nodes = *nodes
		cfg.Protocol = *protocol
		cfg.Mode = sim.ModeTrace
		res, err := sim.Run(prog, cfg)
		if err != nil {
			return fmt.Errorf("tracing: %w", err)
		}
		traces = []*trace.Trace{res.Trace}
	case *traceFile != "":
		// Comma-separated files form a training set (Section 4.5's
		// alternative to a single input data set).
		for _, name := range strings.Split(*traceFile, ",") {
			f, err := os.Open(name)
			if err != nil {
				return err
			}
			tr, err := trace.Read(f)
			if err != nil {
				f.Close()
				return err
			}
			f.Close()
			traces = append(traces, tr)
		}
	default:
		return fmt.Errorf("either -trace FILE[,FILE...], -self, or -static is required")
	}

	if static == staticVerify {
		if len(traces) != 1 {
			return fmt.Errorf("-static=verify compares against a single trace, got %d", len(traces))
		}
		diffs, inf, err := staticanno.Compare(src, traces[0], staticCfg)
		if err != nil {
			return fmt.Errorf("static verify: %w", err)
		}
		reportInexact(stderr, inf)
		diverged := 0
		for _, d := range diffs {
			if d.Match {
				fmt.Fprintf(stderr, "cachier: %s: static and trace-driven placements match (%d annotation(s))\n",
					d.Name, d.Traced.Annotations)
				continue
			}
			diverged++
			fmt.Fprintf(stderr, "cachier: %s: placements DIVERGE (-trace-driven, +static):\n%s",
				d.Name, d.Diff)
		}
		if diverged > 0 {
			return fmt.Errorf("static placement diverges from trace-driven in %d of %d style(s)", diverged, len(diffs))
		}
		return nil
	}

	opts := core.DefaultOptions()
	opts.Prefetch = *prefetch
	opts.CacheSize = *cache
	switch *style {
	case "performance":
		opts.Style = core.StylePerformance
	case "programmer":
		opts.Style = core.StyleProgrammer
	default:
		return fmt.Errorf("unknown style %q", *style)
	}

	res, err := core.AnnotateMulti(src, traces, opts)
	if err != nil {
		return err
	}
	if *out == "" {
		fmt.Fprint(stdout, res.Source)
	} else if err := os.WriteFile(*out, []byte(res.Source), 0o644); err != nil {
		return err
	}
	fmt.Fprintf(stderr, "cachier: inserted %d annotation statement(s) (%s CICO)\n",
		res.Annotations, opts.Style)
	for _, r := range res.Reports {
		loc := ""
		if r.Pos.IsValid() {
			loc = fmt.Sprintf(" at %s", r.Pos)
		}
		fmt.Fprintf(stderr, "cachier: %s on %s%s (first seen epoch %d, %d address(es))\n",
			r.Kind, r.Var, loc, r.Epoch, r.Addrs)
	}
	if *report {
		fmt.Fprint(stderr, res.Cost.String())
	}
	if *stats != "" {
		if err := writeStats(*stats, res.Source, *nodes, *cache, *protocol, stderr); err != nil {
			return err
		}
	}
	return nil
}

// reportInexact warns when static inference had to over-approximate, so the
// user knows the annotations cover a superset of any real execution.
func reportInexact(stderr io.Writer, inf *staticanno.Result) {
	if inf.Exact {
		return
	}
	fmt.Fprintln(stderr, "cachier: static inference is approximate; annotations cover a superset of the dynamic footprint:")
	for _, n := range inf.Notes {
		fmt.Fprintln(stderr, "cachier:   ", n)
	}
}

// writeStats simulates the annotated program on the selected coherence
// protocol (Dir1SW by default) with the observability recorder attached and
// writes the structured stats snapshot (internal/obs) — the same schema
// fig6 -statsjson and tracestat -json emit.
func writeStats(path, source string, nodes, cache int, protocol string, stderr io.Writer) error {
	prog, err := parc.Parse(source)
	if err != nil {
		return fmt.Errorf("annotated program does not parse: %w", err)
	}
	cfg := sim.DefaultConfig()
	cfg.Nodes = nodes
	cfg.CacheSize = cache
	cfg.Protocol = protocol
	cfg.Recorder = obs.New(cfg.Nodes, cfg.BlockSize)
	res, err := sim.Run(prog, cfg)
	if err != nil {
		return fmt.Errorf("simulating annotated program: %w", err)
	}
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	if err := res.Snapshot.WriteJSON(f); err != nil {
		f.Close()
		return err
	}
	if err := f.Close(); err != nil {
		return err
	}
	fmt.Fprintf(stderr, "cachier: wrote stats snapshot %s (%d simulated cycles)\n", path, res.Cycles)
	return nil
}
