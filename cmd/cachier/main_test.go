package main

import (
	"bytes"
	"flag"
	"os"
	"path/filepath"
	"testing"

	"cachier/internal/obs"
	"cachier/internal/parc"
	"cachier/internal/sim"
	"cachier/internal/trace"
)

var update = flag.Bool("update", false, "rewrite golden files")

func checkGolden(t *testing.T, name string, got []byte) {
	t.Helper()
	path := filepath.Join("testdata", name)
	if *update {
		if err := os.WriteFile(path, got, 0o644); err != nil {
			t.Fatal(err)
		}
		return
	}
	want, err := os.ReadFile(path)
	if err != nil {
		t.Fatalf("%v (run with -update to create it)", err)
	}
	if !bytes.Equal(got, want) {
		t.Errorf("%s mismatch (re-run with -update if the change is intended)\n--- got ---\n%s\n--- want ---\n%s",
			name, got, want)
	}
}

// TestGoldenSelf pins the annotated program and the stderr summary (placement
// counts, race/false-sharing reports, cost report) for the fixture under
// -self tracing.
func TestGoldenSelf(t *testing.T) {
	var stdout, stderr bytes.Buffer
	args := []string{"-self", "-nodes", "4", "-prefetch", "-report",
		filepath.Join("testdata", "fixture.parc")}
	if err := run(args, &stdout, &stderr); err != nil {
		t.Fatalf("run: %v\nstderr: %s", err, stderr.String())
	}
	checkGolden(t, "annotated.golden", stdout.Bytes())
	checkGolden(t, "summary.golden", stderr.Bytes())

	// The emitted program must be accepted by the front end unchanged.
	prog, err := parc.Parse(stdout.String())
	if err != nil {
		t.Fatalf("annotated output does not parse: %v", err)
	}
	if err := parc.Check(prog); err != nil {
		t.Fatalf("annotated output does not check: %v", err)
	}
}

// TestTraceFileMatchesSelf feeds the same execution through the -trace file
// path and expects byte-identical annotated output.
func TestTraceFileMatchesSelf(t *testing.T) {
	src, err := os.ReadFile(filepath.Join("testdata", "fixture.parc"))
	if err != nil {
		t.Fatal(err)
	}
	prog, err := parc.Parse(string(src))
	if err != nil {
		t.Fatal(err)
	}
	cfg := sim.DefaultConfig()
	cfg.Nodes = 4
	cfg.Mode = sim.ModeTrace
	res, err := sim.Run(prog, cfg)
	if err != nil {
		t.Fatal(err)
	}
	tracePath := filepath.Join(t.TempDir(), "fixture.trace")
	f, err := os.Create(tracePath)
	if err != nil {
		t.Fatal(err)
	}
	if err := trace.Write(f, res.Trace); err != nil {
		t.Fatal(err)
	}
	if err := f.Close(); err != nil {
		t.Fatal(err)
	}

	var fromFile, fromSelf, stderr bytes.Buffer
	fixture := filepath.Join("testdata", "fixture.parc")
	if err := run([]string{"-trace", tracePath, "-prefetch", fixture}, &fromFile, &stderr); err != nil {
		t.Fatalf("-trace run: %v", err)
	}
	if err := run([]string{"-self", "-nodes", "4", "-prefetch", fixture}, &fromSelf, &stderr); err != nil {
		t.Fatalf("-self run: %v", err)
	}
	if !bytes.Equal(fromFile.Bytes(), fromSelf.Bytes()) {
		t.Errorf("-trace and -self annotate differently:\n--- file ---\n%s\n--- self ---\n%s",
			fromFile.String(), fromSelf.String())
	}
}

// TestStatsSnapshot runs the full annotate-then-simulate path behind -stats
// and checks the emitted snapshot decodes, is internally consistent, and
// reflects the inserted annotations (the annotated fixture must execute
// CICO directives).
func TestStatsSnapshot(t *testing.T) {
	statsPath := filepath.Join(t.TempDir(), "stats.json")
	var stdout, stderr bytes.Buffer
	args := []string{"-self", "-nodes", "4", "-stats", statsPath,
		filepath.Join("testdata", "fixture.parc")}
	if err := run(args, &stdout, &stderr); err != nil {
		t.Fatalf("run: %v\nstderr: %s", err, stderr.String())
	}
	f, err := os.Open(statsPath)
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()
	snap, err := obs.ReadSnapshot(f)
	if err != nil {
		t.Fatal(err)
	}
	if err := snap.CheckConsistency(); err != nil {
		t.Error(err)
	}
	if snap.Nodes != 4 || snap.Cycles == 0 {
		t.Errorf("snapshot nodes=%d cycles=%d", snap.Nodes, snap.Cycles)
	}
	if snap.Protocol.CheckOutX+snap.Protocol.CheckOutS == 0 {
		t.Error("annotated program executed no check-out directives")
	}
	if len(snap.Vars) == 0 {
		t.Error("no per-variable directive attribution in snapshot")
	}
}

func TestRunArgErrors(t *testing.T) {
	fixture := filepath.Join("testdata", "fixture.parc")
	var stdout, stderr bytes.Buffer
	if err := run(nil, &stdout, &stderr); err == nil {
		t.Error("no arguments: want error, got nil")
	}
	if err := run([]string{fixture}, &stdout, &stderr); err == nil {
		t.Error("neither -trace nor -self: want error, got nil")
	}
	if err := run([]string{"-self", "-style", "bogus", fixture}, &stdout, &stderr); err == nil {
		t.Error("unknown style: want error, got nil")
	}
}
