package main

import (
	"bytes"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

const partitionSrc = `
const N = 64;
shared float A[N] label "A";
shared float B[N] label "B";
func main() {
    var chunk int = N / nprocs();
    var lo int = pid() * chunk;
    for i = lo to lo + chunk - 1 {
        A[i] = float(i);
    }
    barrier;
    for i = lo to lo + chunk - 1 {
        B[i] = A[i] * 2.0;
    }
    barrier;
}`

func writeProg(t *testing.T, src string) string {
	t.Helper()
	path := filepath.Join(t.TempDir(), "prog.parc")
	if err := os.WriteFile(path, []byte(src), 0o644); err != nil {
		t.Fatal(err)
	}
	return path
}

func runCachier(t *testing.T, args ...string) (string, string, error) {
	t.Helper()
	var stdout, stderr bytes.Buffer
	err := run(args, &stdout, &stderr)
	return stdout.String(), stderr.String(), err
}

// TestStaticAnnotate: -static needs no trace input at all and produces an
// annotated program.
func TestStaticAnnotate(t *testing.T) {
	prog := writeProg(t, partitionSrc)
	stdout, stderr, err := runCachier(t, "-static", "-nodes", "4", prog)
	if err != nil {
		t.Fatalf("err=%v\nstderr:\n%s", err, stderr)
	}
	if !strings.Contains(stdout, "check_in") {
		t.Errorf("static annotation placed nothing:\n%s", stdout)
	}
	if !strings.Contains(stderr, "inserted") {
		t.Errorf("missing insertion summary:\n%s", stderr)
	}
}

// TestStaticMatchesSelf: on a race-free enumerable program, -static and
// -self must print byte-identical annotated output.
func TestStaticMatchesSelf(t *testing.T) {
	prog := writeProg(t, partitionSrc)
	fromStatic, _, err := runCachier(t, "-static", "-nodes", "4", "-prefetch", prog)
	if err != nil {
		t.Fatal(err)
	}
	fromSelf, _, err := runCachier(t, "-self", "-nodes", "4", "-prefetch", prog)
	if err != nil {
		t.Fatal(err)
	}
	if fromStatic != fromSelf {
		t.Errorf("-static and -self annotate differently:\n--- static ---\n%s\n--- self ---\n%s",
			fromStatic, fromSelf)
	}
}

// TestStaticVerifySelf: -static=verify -self runs both pipelines; on a
// race-free enumerable program they must agree in every style.
func TestStaticVerifySelf(t *testing.T) {
	prog := writeProg(t, partitionSrc)
	_, stderr, err := runCachier(t, "-static=verify", "-self", "-nodes", "4", prog)
	if err != nil {
		t.Fatalf("verify should pass: %v\nstderr:\n%s", err, stderr)
	}
	if strings.Count(stderr, "placements match") != 3 {
		t.Errorf("expected all three styles to match:\n%s", stderr)
	}
}

// TestStaticVerifyNeedsTrace: verify mode compares against a trace, so a
// trace source is required.
func TestStaticVerifyNeedsTrace(t *testing.T) {
	prog := writeProg(t, partitionSrc)
	_, _, err := runCachier(t, "-static=verify", prog)
	if err == nil || !strings.Contains(err.Error(), "required") {
		t.Errorf("expected missing-trace error, got %v", err)
	}
}

// TestStaticFlagRejectsGarbage pins the tri-state flag's parsing.
func TestStaticFlagRejectsGarbage(t *testing.T) {
	prog := writeProg(t, partitionSrc)
	if _, _, err := runCachier(t, "-static=sometimes", prog); err == nil {
		t.Error("expected flag parse error")
	}
}

// TestStaticInexactWarning: approximate inference must be called out on
// stderr rather than silently over-annotating.
func TestStaticInexactWarning(t *testing.T) {
	prog := writeProg(t, `
const N = 8;
shared float A[N] label "A";
shared int idx label "idx";
func main() {
    if pid() == 0 {
        A[idx] = 1.0;
    }
    barrier;
}`)
	_, stderr, err := runCachier(t, "-static", "-nodes", "2", prog)
	if err != nil {
		t.Fatalf("err=%v\nstderr:\n%s", err, stderr)
	}
	if !strings.Contains(stderr, "approximate") {
		t.Errorf("expected inexactness warning:\n%s", stderr)
	}
}
