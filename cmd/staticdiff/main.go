// Command staticdiff compares trace-driven and trace-free CICO annotation
// placement (the differential the paper's tool cannot run: it only had the
// trace). For each input program it simulates a miss trace, infers one
// statically (internal/staticanno), annotates from both in every style, and
// reports whether the outputs are byte-identical, whether the inference was
// exact, and how the miss-block footprints compare under the CICO cost
// model. It exits nonzero if any program violates its guarantee: an exact
// inference must place identically, and every inference — exact or widened
// — must cover the simulated footprint.
//
// Usage:
//
//	staticdiff [-nodes N] [-diverge-ok] [-v] file.parc ...
//	staticdiff -bench all|Name
//	staticdiff -fidelity
package main

import (
	"flag"
	"fmt"
	"io"
	"os"

	"cachier/internal/bench"
	"cachier/internal/cico"
	"cachier/internal/conformance"
	"cachier/internal/parc"
	"cachier/internal/sim"
	"cachier/internal/staticanno"
	"cachier/internal/trace"
)

func main() {
	os.Exit(run(os.Args[1:], os.Stdout))
}

func run(args []string, out io.Writer) int {
	fs := flag.NewFlagSet("staticdiff", flag.ContinueOnError)
	nodes := fs.Int("nodes", 4, "simulated nodes for .parc file inputs")
	benchName := fs.String("bench", "", "diff a Figure 6 port (`all` for the suite) at its own geometry")
	fidelity := fs.Bool("fidelity", false, "run the bench static-fidelity harness (measured cycles, see EXPERIMENTS.md)")
	divergeOK := fs.Bool("diverge-ok", false, "allow exact-inference placement divergence (racy inputs, where a trace is one schedule's story)")
	verbose := fs.Bool("v", false, "print unified diffs for diverging styles")
	if err := fs.Parse(args); err != nil {
		return 2
	}

	if *fidelity {
		rows, err := bench.StaticFidelity()
		if err != nil {
			fmt.Fprintln(os.Stderr, "staticdiff:", err)
			return 1
		}
		fmt.Fprint(out, bench.FormatStaticRows(rows))
		return 0
	}

	type job struct {
		name  string
		src   string
		nodes int
		racy  bool
	}
	var jobs []job
	if *benchName != "" {
		ports := bench.All()
		if *benchName != "all" {
			b, err := bench.ByName(*benchName)
			if err != nil {
				fmt.Fprintln(os.Stderr, "staticdiff:", err)
				return 2
			}
			ports = []*bench.Benchmark{b}
		}
		for _, b := range ports {
			jobs = append(jobs, job{name: b.Name, src: b.Source(b.Train), nodes: b.Nodes, racy: b.Racy})
		}
	}
	for _, path := range fs.Args() {
		src, err := os.ReadFile(path)
		if err != nil {
			fmt.Fprintln(os.Stderr, "staticdiff:", err)
			return 2
		}
		jobs = append(jobs, job{name: path, src: string(src), nodes: *nodes, racy: *divergeOK})
	}
	if len(jobs) == 0 {
		fmt.Fprintln(os.Stderr, "staticdiff: no inputs (give .parc files or -bench)")
		return 2
	}

	fmt.Fprintf(out, "%-34s %6s %6s %7s %7s | %7s %8s %8s\n",
		"program", "nodes", "exact", "styles", "covers", "blocks", "+static", "-static")
	bad := 0
	for _, j := range jobs {
		if err := diffOne(out, j.name, j.src, j.nodes, j.racy, *verbose); err != nil {
			fmt.Fprintf(os.Stderr, "staticdiff: %s: %v\n", j.name, err)
			bad++
		}
	}
	if bad > 0 {
		return 1
	}
	return 0
}

// diffOne runs the differential on one program and prints its row; the
// returned error reports a violated guarantee (or a pipeline failure).
func diffOne(out io.Writer, name, src string, nodes int, racy, verbose bool) error {
	prog, err := parc.Parse(src)
	if err != nil {
		return err
	}
	if err := parc.Check(prog); err != nil {
		return err
	}
	cfg := sim.DefaultConfig()
	cfg.Nodes = nodes
	cfg.Mode = sim.ModeTrace
	cfg.SelfCheck = false
	traceRes, err := sim.Run(prog, cfg)
	if err != nil {
		return fmt.Errorf("trace run: %w", err)
	}
	scfg := staticanno.Config{
		Nodes: nodes, CacheSize: cfg.CacheSize,
		Assoc: cfg.Assoc, BlockSize: cfg.BlockSize,
	}
	diffs, inf, err := staticanno.Compare(src, traceRes.Trace, scfg)
	if err != nil {
		return fmt.Errorf("static compare: %w", err)
	}
	matched := 0
	for _, d := range diffs {
		if d.Match {
			matched++
		}
	}
	coverErr := conformance.StaticCoversResult(inf, traceRes.Trace)
	both, staticOnly, tracedOnly := footprintOverlap(inf.Trace, traceRes.Trace)
	fmt.Fprintf(out, "%-34s %6d %6v %4d/%d %7v | %7d %8d %8d\n",
		name, nodes, inf.Exact, matched, len(diffs), coverErr == nil,
		both, staticOnly, tracedOnly)
	if verbose {
		for _, n := range inf.Notes {
			fmt.Fprintf(out, "  note: %s\n", n)
		}
		for _, d := range diffs {
			if !d.Match {
				fmt.Fprintf(out, "  %s (-trace-driven, +static):\n%s", d.Name, d.Diff)
			}
		}
	}
	if coverErr != nil {
		return fmt.Errorf("covering violated: %w", coverErr)
	}
	if inf.Exact && matched != len(diffs) && !racy {
		return fmt.Errorf("exact inference but %d/%d styles diverge", matched, len(diffs))
	}
	return nil
}

// footprintOverlap compares the two traces' miss-block footprints (all
// nodes pooled): blocks both miss on, blocks only the static trace misses
// on (the over-approximation's extra CICO check-outs), and blocks only the
// simulation misses on (zero whenever the covering guarantee holds, which
// pools per node and so is the stricter test).
func footprintOverlap(static, traced *trace.Trace) (both, staticOnly, tracedOnly uint64) {
	return cico.FootprintOverlap(missBlocks(static), missBlocks(traced))
}

func missBlocks(tr *trace.Trace) map[uint64]bool {
	bs := uint64(tr.BlockSize)
	blocks := make(map[uint64]bool)
	for _, e := range tr.Epochs {
		for _, m := range e.Misses {
			blocks[m.Addr/bs] = true
		}
	}
	return blocks
}
