package main

import (
	"strings"
	"testing"
)

// TestExamples runs the differential over the checked-in ParC sources; both
// must be exact with byte-identical placement in every style (race_demo
// races, but the replay reproduces the simulator's deterministic schedule).
func TestExamples(t *testing.T) {
	var out strings.Builder
	code := run([]string{
		"../../examples/parc/jacobi_wholefit.parc",
		"../../examples/parc/race_demo.parc",
	}, &out)
	if code != 0 {
		t.Fatalf("exit %d\n%s", code, out.String())
	}
	for _, line := range strings.Split(strings.TrimSpace(out.String()), "\n")[1:] {
		if !strings.Contains(line, "true") || !strings.Contains(line, "3/3") {
			t.Errorf("expected exact 3/3 row, got: %s", line)
		}
	}
}

// TestBenchPort runs one inexact Figure 6 port end to end: Mp3d widens, so
// placement divergence is allowed, but the covering guarantee must hold and
// the command must exit zero.
func TestBenchPort(t *testing.T) {
	var out strings.Builder
	code := run([]string{"-bench", "Mp3d"}, &out)
	if code != 0 {
		t.Fatalf("exit %d\n%s", code, out.String())
	}
	if !strings.Contains(out.String(), "Mp3d") || !strings.Contains(out.String(), "false") {
		t.Errorf("unexpected output:\n%s", out.String())
	}
}

// TestBadUsage covers the error paths.
func TestBadUsage(t *testing.T) {
	var out strings.Builder
	if code := run(nil, &out); code != 2 {
		t.Errorf("no inputs: exit %d, want 2", code)
	}
	if code := run([]string{"no-such-file.parc"}, &out); code != 2 {
		t.Errorf("missing file: exit %d, want 2", code)
	}
	if code := run([]string{"-bench", "NoSuchBench"}, &out); code != 2 {
		t.Errorf("unknown bench: exit %d, want 2", code)
	}
}
