// Command benchcmp compares two Figure-6 result files (cmd/fig6 -json
// rows, e.g. the checked-in BENCH_baseline.json against a fresh
// BENCH_fig6.json) and fails when the new run regresses:
//
//   - Cycles are simulated-machine results and must be exact. Within the
//     new file, every engine measuring the same (benchmark, variant,
//     protocol) cell must report identical cycles — the engines are
//     different schedules of the same machine, so any drift is a
//     correctness bug, not noise. Across the two files, a cell present in
//     both must report identical cycles; a deliberate model change must
//     ship a refreshed baseline in the same commit.
//   - Wall clock is host time and noisy, so it gets a tolerance: a cell
//     whose wall time grew by more than -wall (default 0.20, i.e. +20%)
//     over the baseline fails the run.
//   - Cells present in only one of the two files are reported as notes and
//     accepted: a new cell is a new engine or protocol label, and a
//     baseline-only cell is coverage that moved (a renamed label shows up
//     as one of each). Only cells present in both are compared.
//
// Usage:
//
//	benchcmp [-wall 0.20] BENCH_baseline.json BENCH_fig6.json
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"os"
	"sort"
)

// row mirrors cmd/fig6's jsonRow (the fields benchcmp compares).
type row struct {
	Benchmark string  `json:"benchmark"`
	Variant   string  `json:"variant"`
	Protocol  string  `json:"protocol"`
	Cycles    uint64  `json:"cycles"`
	Engine    string  `json:"engine"`
	WallSecs  float64 `json:"wall_seconds"`
}

// cellKey identifies one simulated measurement: engines are schedules of
// the same machine, so cycles key on the cell without the engine.
type cellKey struct {
	Benchmark, Variant, Protocol string
}

// runKey identifies one host measurement (cell × engine) for wall-clock
// comparison.
type runKey struct {
	cellKey
	Engine string
}

func (k cellKey) String() string {
	s := k.Benchmark + "/" + k.Variant
	if k.Protocol != "" {
		s += "/" + k.Protocol
	}
	return s
}

func (k runKey) String() string {
	return k.cellKey.String() + "[" + k.Engine + "]"
}

func load(path string) ([]row, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	var rows []row
	if err := json.Unmarshal(data, &rows); err != nil {
		return nil, fmt.Errorf("%s: %w", path, err)
	}
	if len(rows) == 0 {
		return nil, fmt.Errorf("%s: no rows", path)
	}
	return rows, nil
}

// index collapses rows to per-run wall clocks (last measurement wins, as
// in a re-run) and checks within-file cross-engine cycle agreement.
func index(path string, rows []row) (map[runKey]row, map[cellKey]uint64, error) {
	runs := make(map[runKey]row)
	cycles := make(map[cellKey]uint64)
	firstEngine := make(map[cellKey]string)
	for _, r := range rows {
		ck := cellKey{r.Benchmark, r.Variant, r.Protocol}
		runs[runKey{ck, r.Engine}] = r
		if want, ok := cycles[ck]; ok {
			if r.Cycles != want {
				return nil, nil, fmt.Errorf(
					"%s: %s: engine %q reports %d cycles, engine %q reported %d — engines diverged on the same machine",
					path, ck, r.Engine, r.Cycles, firstEngine[ck], want)
			}
			continue
		}
		cycles[ck] = r.Cycles
		firstEngine[ck] = r.Engine
	}
	return runs, cycles, nil
}

// run compares oldPath against newPath, printing the report to stdout and
// failures to stderr. It returns an error when the comparison regresses
// (the process exit seam for main and for tests).
func run(args []string, stdout, stderr io.Writer) error {
	fs := flag.NewFlagSet("benchcmp", flag.ContinueOnError)
	fs.SetOutput(stderr)
	wallTol := fs.Float64("wall", 0.20, "allowed fractional wall-clock growth per cell before failing")
	fs.Usage = func() {
		fmt.Fprintf(stderr, "usage: benchcmp [-wall frac] old.json new.json\n")
		fs.PrintDefaults()
	}
	if err := fs.Parse(args); err != nil {
		return err
	}
	if fs.NArg() != 2 {
		fs.Usage()
		return fmt.Errorf("expected 2 file arguments, got %d", fs.NArg())
	}
	oldPath, newPath := fs.Arg(0), fs.Arg(1)
	oldRows, err := load(oldPath)
	if err != nil {
		return err
	}
	newRows, err := load(newPath)
	if err != nil {
		return err
	}
	oldRuns, oldCycles, err := index(oldPath, oldRows)
	if err != nil {
		return err
	}
	newRuns, newCycles, err := index(newPath, newRows)
	if err != nil {
		return err
	}

	var failures []string

	// Exact-cycle comparison per cell across the two files. One-sided
	// cells — a new engine/protocol label, or a baseline row the new run
	// no longer produces — are noted and accepted; only shared cells are
	// held to exact equality.
	cells := make([]cellKey, 0, len(oldCycles))
	for ck := range oldCycles {
		cells = append(cells, ck)
	}
	sort.Slice(cells, func(i, j int) bool { return cells[i].String() < cells[j].String() })
	compared := 0
	for _, ck := range cells {
		got, ok := newCycles[ck]
		if !ok {
			fmt.Fprintf(stdout, "note: %s: cell only in %s (label retired or not measured)\n", ck, oldPath)
			continue
		}
		compared++
		if got != oldCycles[ck] {
			failures = append(failures, fmt.Sprintf(
				"%s: cycles changed %d -> %d (model change? refresh the baseline deliberately)",
				ck, oldCycles[ck], got))
		}
	}
	newCells := make([]cellKey, 0, len(newCycles))
	for ck := range newCycles {
		if _, ok := oldCycles[ck]; !ok {
			newCells = append(newCells, ck)
		}
	}
	sort.Slice(newCells, func(i, j int) bool { return newCells[i].String() < newCells[j].String() })
	for _, ck := range newCells {
		fmt.Fprintf(stdout, "note: %s: new cell (no baseline)\n", ck)
	}
	if compared == 0 {
		// Disjoint files compare nothing; that is almost certainly the
		// wrong pair of files, not a clean bill of health.
		return fmt.Errorf("no cell appears in both %s and %s", oldPath, newPath)
	}

	// Wall-clock comparison per run, with tolerance.
	runs := make([]runKey, 0, len(oldRuns))
	for rk := range oldRuns {
		runs = append(runs, rk)
	}
	sort.Slice(runs, func(i, j int) bool { return runs[i].String() < runs[j].String() })
	for _, rk := range runs {
		old := oldRuns[rk]
		cur, ok := newRuns[rk]
		if !ok {
			// The engine label is part of the measurement ("sequential
			// (conflict fallback)" vs "parallel" are different schedules);
			// a label change shows up as a missing run, reported softly.
			fmt.Fprintf(stdout, "note: %s: no matching run in %s\n", rk, newPath)
			continue
		}
		if old.WallSecs <= 0 {
			continue
		}
		ratio := cur.WallSecs / old.WallSecs
		status := "ok"
		if ratio > 1+*wallTol {
			status = "REGRESSED"
			failures = append(failures, fmt.Sprintf(
				"%s: wall %.4fs -> %.4fs (%.2fx > allowed %.2fx)",
				rk, old.WallSecs, cur.WallSecs, ratio, 1+*wallTol))
		}
		fmt.Fprintf(stdout, "%-48s %9.4fs -> %9.4fs  %5.2fx  %s\n",
			rk, old.WallSecs, cur.WallSecs, ratio, status)
	}
	for rk := range newRuns {
		if _, ok := oldRuns[rk]; !ok {
			fmt.Fprintf(stdout, "note: %s: new run (no baseline)\n", rk)
		}
	}

	if len(failures) > 0 {
		fmt.Fprintf(stderr, "\nbenchcmp: %d failure(s):\n", len(failures))
		for _, f := range failures {
			fmt.Fprintf(stderr, "  %s\n", f)
		}
		return fmt.Errorf("%d failure(s)", len(failures))
	}
	fmt.Fprintf(stdout, "benchcmp: %d cells compared: OK\n", compared)
	return nil
}

func main() {
	if err := run(os.Args[1:], os.Stdout, os.Stderr); err != nil {
		fmt.Fprintln(os.Stderr, "benchcmp:", err)
		os.Exit(1)
	}
}
