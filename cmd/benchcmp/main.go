// Command benchcmp compares two Figure-6 result files (cmd/fig6 -json
// rows, e.g. the checked-in BENCH_baseline.json against a fresh
// BENCH_fig6.json) and fails when the new run regresses:
//
//   - Cycles are simulated-machine results and must be exact. Within the
//     new file, every engine measuring the same (benchmark, variant,
//     protocol) cell must report identical cycles — the engines are
//     different schedules of the same machine, so any drift is a
//     correctness bug, not noise. Across the two files, a cell present in
//     both must report identical cycles; a deliberate model change must
//     ship a refreshed baseline in the same commit.
//   - Wall clock is host time and noisy, so it gets a tolerance: a cell
//     whose wall time grew by more than -wall (default 0.20, i.e. +20%)
//     over the baseline fails the run.
//   - A cell present in the baseline but missing from the new file is a
//     coverage regression and fails; new cells (a new engine or protocol)
//     are reported and accepted.
//
// Usage:
//
//	benchcmp [-wall 0.20] BENCH_baseline.json BENCH_fig6.json
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"sort"
)

// row mirrors cmd/fig6's jsonRow (the fields benchcmp compares).
type row struct {
	Benchmark string  `json:"benchmark"`
	Variant   string  `json:"variant"`
	Protocol  string  `json:"protocol"`
	Cycles    uint64  `json:"cycles"`
	Engine    string  `json:"engine"`
	WallSecs  float64 `json:"wall_seconds"`
}

// cellKey identifies one simulated measurement: engines are schedules of
// the same machine, so cycles key on the cell without the engine.
type cellKey struct {
	Benchmark, Variant, Protocol string
}

// runKey identifies one host measurement (cell × engine) for wall-clock
// comparison.
type runKey struct {
	cellKey
	Engine string
}

func (k cellKey) String() string {
	s := k.Benchmark + "/" + k.Variant
	if k.Protocol != "" {
		s += "/" + k.Protocol
	}
	return s
}

func (k runKey) String() string {
	return k.cellKey.String() + "[" + k.Engine + "]"
}

func load(path string) ([]row, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	var rows []row
	if err := json.Unmarshal(data, &rows); err != nil {
		return nil, fmt.Errorf("%s: %w", path, err)
	}
	if len(rows) == 0 {
		return nil, fmt.Errorf("%s: no rows", path)
	}
	return rows, nil
}

// index collapses rows to per-run wall clocks (last measurement wins, as
// in a re-run) and checks within-file cross-engine cycle agreement.
func index(path string, rows []row) (map[runKey]row, map[cellKey]uint64, error) {
	runs := make(map[runKey]row)
	cycles := make(map[cellKey]uint64)
	firstEngine := make(map[cellKey]string)
	for _, r := range rows {
		ck := cellKey{r.Benchmark, r.Variant, r.Protocol}
		runs[runKey{ck, r.Engine}] = r
		if want, ok := cycles[ck]; ok {
			if r.Cycles != want {
				return nil, nil, fmt.Errorf(
					"%s: %s: engine %q reports %d cycles, engine %q reported %d — engines diverged on the same machine",
					path, ck, r.Engine, r.Cycles, firstEngine[ck], want)
			}
			continue
		}
		cycles[ck] = r.Cycles
		firstEngine[ck] = r.Engine
	}
	return runs, cycles, nil
}

func main() {
	wallTol := flag.Float64("wall", 0.20, "allowed fractional wall-clock growth per cell before failing")
	flag.Usage = func() {
		fmt.Fprintf(flag.CommandLine.Output(), "usage: benchcmp [-wall frac] old.json new.json\n")
		flag.PrintDefaults()
	}
	flag.Parse()
	if flag.NArg() != 2 {
		flag.Usage()
		os.Exit(2)
	}
	oldRows, err := load(flag.Arg(0))
	if err != nil {
		fatal(err)
	}
	newRows, err := load(flag.Arg(1))
	if err != nil {
		fatal(err)
	}
	oldRuns, oldCycles, err := index(flag.Arg(0), oldRows)
	if err != nil {
		fatal(err)
	}
	newRuns, newCycles, err := index(flag.Arg(1), newRows)
	if err != nil {
		fatal(err)
	}

	var failures []string

	// Exact-cycle comparison per cell across the two files.
	cells := make([]cellKey, 0, len(oldCycles))
	for ck := range oldCycles {
		cells = append(cells, ck)
	}
	sort.Slice(cells, func(i, j int) bool { return cells[i].String() < cells[j].String() })
	for _, ck := range cells {
		got, ok := newCycles[ck]
		if !ok {
			failures = append(failures, fmt.Sprintf("%s: cell missing from %s", ck, flag.Arg(1)))
			continue
		}
		if got != oldCycles[ck] {
			failures = append(failures, fmt.Sprintf(
				"%s: cycles changed %d -> %d (model change? refresh the baseline deliberately)",
				ck, oldCycles[ck], got))
		}
	}

	// Wall-clock comparison per run, with tolerance.
	runs := make([]runKey, 0, len(oldRuns))
	for rk := range oldRuns {
		runs = append(runs, rk)
	}
	sort.Slice(runs, func(i, j int) bool { return runs[i].String() < runs[j].String() })
	for _, rk := range runs {
		old := oldRuns[rk]
		cur, ok := newRuns[rk]
		if !ok {
			// The engine label is part of the measurement ("sequential
			// (conflict fallback)" vs "parallel" are different schedules);
			// a label change shows up as a missing run, which the cycle
			// check above has not already flagged, so report it softly.
			fmt.Printf("note: %s: no matching run in %s\n", rk, flag.Arg(1))
			continue
		}
		if old.WallSecs <= 0 {
			continue
		}
		ratio := cur.WallSecs / old.WallSecs
		status := "ok"
		if ratio > 1+*wallTol {
			status = "REGRESSED"
			failures = append(failures, fmt.Sprintf(
				"%s: wall %.4fs -> %.4fs (%.2fx > allowed %.2fx)",
				rk, old.WallSecs, cur.WallSecs, ratio, 1+*wallTol))
		}
		fmt.Printf("%-48s %9.4fs -> %9.4fs  %5.2fx  %s\n",
			rk, old.WallSecs, cur.WallSecs, ratio, status)
	}
	for rk := range newRuns {
		if _, ok := oldRuns[rk]; !ok {
			fmt.Printf("note: %s: new run (no baseline)\n", rk)
		}
	}

	if len(failures) > 0 {
		fmt.Fprintf(os.Stderr, "\nbenchcmp: %d failure(s):\n", len(failures))
		for _, f := range failures {
			fmt.Fprintf(os.Stderr, "  %s\n", f)
		}
		os.Exit(1)
	}
	fmt.Printf("benchcmp: %d cells, %d runs compared: OK\n", len(cells), len(runs))
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "benchcmp:", err)
	os.Exit(1)
}
