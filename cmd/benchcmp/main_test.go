package main

import (
	"bytes"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

func writeRows(t *testing.T, dir, name, content string) string {
	t.Helper()
	path := filepath.Join(dir, name)
	if err := os.WriteFile(path, []byte(content), 0o644); err != nil {
		t.Fatal(err)
	}
	return path
}

const baseRows = `[
 {"benchmark":"Ocean","variant":"cachier","protocol":"","cycles":1000,"engine":"sequential","wall_seconds":0.5},
 {"benchmark":"Ocean","variant":"none","protocol":"","cycles":2000,"engine":"sequential","wall_seconds":0.8}
]`

func runCmp(t *testing.T, args ...string) (stdout, stderr string, err error) {
	t.Helper()
	var out, errb bytes.Buffer
	err = run(args, &out, &errb)
	return out.String(), errb.String(), err
}

func TestIdenticalFilesPass(t *testing.T) {
	dir := t.TempDir()
	old := writeRows(t, dir, "old.json", baseRows)
	cur := writeRows(t, dir, "new.json", baseRows)
	stdout, _, err := runCmp(t, old, cur)
	if err != nil {
		t.Fatalf("identical files failed: %v", err)
	}
	if !strings.Contains(stdout, "2 cells compared: OK") {
		t.Errorf("missing OK summary in:\n%s", stdout)
	}
}

func TestCycleChangeFails(t *testing.T) {
	dir := t.TempDir()
	old := writeRows(t, dir, "old.json", baseRows)
	cur := writeRows(t, dir, "new.json", strings.Replace(baseRows, "1000", "1001", 1))
	_, stderr, err := runCmp(t, old, cur)
	if err == nil {
		t.Fatal("changed cycles passed")
	}
	if !strings.Contains(stderr, "cycles changed 1000 -> 1001") {
		t.Errorf("missing cycle failure in:\n%s", stderr)
	}
}

// A row present only in the baseline (retired label) or only in the new
// file (new engine/protocol) must be reported as a note, not a failure.
func TestOneSidedCellsAreNotes(t *testing.T) {
	dir := t.TempDir()
	old := writeRows(t, dir, "old.json", `[
 {"benchmark":"Ocean","variant":"cachier","protocol":"","cycles":1000,"engine":"sequential","wall_seconds":0.5},
 {"benchmark":"Ocean","variant":"none","protocol":"dirnnb:4","cycles":3000,"engine":"sequential","wall_seconds":0.2}
]`)
	cur := writeRows(t, dir, "new.json", `[
 {"benchmark":"Ocean","variant":"cachier","protocol":"","cycles":1000,"engine":"lanes","wall_seconds":0.4},
 {"benchmark":"Ocean","variant":"cachier","protocol":"dirnb:4","cycles":4000,"engine":"sequential","wall_seconds":0.3}
]`)
	stdout, _, err := runCmp(t, old, cur)
	if err != nil {
		t.Fatalf("one-sided cells failed the run: %v", err)
	}
	for _, want := range []string{
		"note: Ocean/none/dirnnb:4: cell only in",
		"note: Ocean/cachier/dirnb:4: new cell (no baseline)",
		"note: Ocean/cachier[sequential]: no matching run in",
		"note: Ocean/cachier[lanes]: new run (no baseline)",
	} {
		if !strings.Contains(stdout, want) {
			t.Errorf("missing %q in:\n%s", want, stdout)
		}
	}
	if !strings.Contains(stdout, "1 cells compared: OK") {
		t.Errorf("expected exactly the shared cell compared, got:\n%s", stdout)
	}
}

// Fully disjoint files compare nothing and must fail loudly rather than
// report success.
func TestDisjointFilesFail(t *testing.T) {
	dir := t.TempDir()
	old := writeRows(t, dir, "old.json", baseRows)
	cur := writeRows(t, dir, "new.json", `[
 {"benchmark":"Barnes","variant":"hand","protocol":"","cycles":1,"engine":"sequential","wall_seconds":0.1}
]`)
	_, _, err := runCmp(t, old, cur)
	if err == nil || !strings.Contains(err.Error(), "no cell appears in both") {
		t.Fatalf("disjoint files: err = %v", err)
	}
}

func TestWallRegressionFails(t *testing.T) {
	dir := t.TempDir()
	old := writeRows(t, dir, "old.json", baseRows)
	cur := writeRows(t, dir, "new.json", strings.Replace(baseRows, `"wall_seconds":0.5`, `"wall_seconds":0.9`, 1))
	_, stderr, err := runCmp(t, old, cur)
	if err == nil {
		t.Fatal("wall regression passed")
	}
	if !strings.Contains(stderr, "wall 0.5000s -> 0.9000s") {
		t.Errorf("missing wall failure in:\n%s", stderr)
	}
	// The same growth passes under a loose tolerance.
	if _, _, err := runCmp(t, "-wall", "1.0", old, cur); err != nil {
		t.Errorf("loose tolerance still failed: %v", err)
	}
}

func TestWithinFileEngineDivergenceFails(t *testing.T) {
	dir := t.TempDir()
	old := writeRows(t, dir, "old.json", baseRows)
	cur := writeRows(t, dir, "new.json", `[
 {"benchmark":"Ocean","variant":"cachier","protocol":"","cycles":1000,"engine":"sequential","wall_seconds":0.5},
 {"benchmark":"Ocean","variant":"cachier","protocol":"","cycles":1009,"engine":"lanes","wall_seconds":0.4},
 {"benchmark":"Ocean","variant":"none","protocol":"","cycles":2000,"engine":"sequential","wall_seconds":0.8}
]`)
	_, _, err := runCmp(t, old, cur)
	if err == nil || !strings.Contains(err.Error(), "engines diverged") {
		t.Fatalf("engine divergence: err = %v", err)
	}
}
