// Command wwt runs a ParC program on the reproduction's Wisconsin Wind
// Tunnel equivalent: an execution-driven simulation of a Dir1SW
// shared-memory machine. In -trace mode it flushes the shared-data caches
// at every barrier and writes the miss trace Cachier consumes; otherwise it
// executes CICO annotations as memory-system directives and reports
// execution time and protocol statistics.
//
// Usage:
//
//	wwt [flags] program.parc
//
//	-nodes N        simulated processors (default 32)
//	-cache BYTES    per-node cache size (default 262144)
//	-assoc N        cache associativity (default 4)
//	-block BYTES    cache block size (default 32)
//	-trace FILE     trace mode: write the miss trace to FILE
//	-ignore-cico    ignore CICO statements (unannotated baseline)
//	-no-prefetch    ignore prefetch annotations only
//	-stats          print detailed protocol statistics
//	-statsjson FILE write the full stats snapshot as JSON
//	-timeline FILE  write a Chrome-trace/Perfetto timeline as JSON
//	-poststore      KSR-1 post-store semantics for check-ins (ablation)
//	-fullmap        full-map hardware directory instead of Dir1SW (ablation)
//	-protocol SPEC  coherence protocol: dir1sw (default), dirnnb[:n], dirnb[:n]
//	-parallel N     epoch-parallel engine with N workers (-1: one per CPU);
//	                results are bit-identical to the sequential engine
//	-lanes          lane-batched engine: step all nodes as vector lanes in
//	                one goroutine; results are bit-identical to sequential
package main

import (
	"flag"
	"fmt"
	"os"
	"path/filepath"

	"cachier/internal/obs"
	"cachier/internal/parc"
	"cachier/internal/sim"
	"cachier/internal/trace"
)

func main() {
	var (
		nodes      = flag.Int("nodes", 32, "simulated processors")
		cacheSize  = flag.Int("cache", 256*1024, "per-node cache size in bytes")
		assoc      = flag.Int("assoc", 4, "cache associativity")
		block      = flag.Int("block", 32, "cache block size in bytes")
		traceFile  = flag.String("trace", "", "trace mode: write miss trace to this file")
		ignore     = flag.Bool("ignore-cico", false, "ignore CICO statements")
		noPrefetch = flag.Bool("no-prefetch", false, "ignore prefetch annotations")
		stats      = flag.Bool("stats", false, "print detailed protocol statistics")
		statsJSON  = flag.String("statsjson", "", "write the full stats snapshot as JSON to this file")
		timeline   = flag.String("timeline", "", "write a Chrome-trace/Perfetto timeline as JSON to this file")
		postStore  = flag.Bool("poststore", false, "KSR-1 post-store semantics for check-ins")
		fullMap    = flag.Bool("fullmap", false, "full-map hardware directory instead of Dir1SW")
		protocol   = flag.String("protocol", "", `coherence protocol spec: "dir1sw" (default), "dirnnb[:n]", or "dirnb[:n]"`)
		parallel   = flag.Int("parallel", 0, "epoch-parallel engine workers (0 sequential, -1 one per CPU); results are bit-identical")
		lanes      = flag.Bool("lanes", false, "lane-batched engine (DESIGN.md \u00a79); results are bit-identical")
	)
	flag.Parse()
	if flag.NArg() != 1 {
		fmt.Fprintln(os.Stderr, "usage: wwt [flags] program.parc")
		flag.Usage()
		os.Exit(2)
	}
	src, err := os.ReadFile(flag.Arg(0))
	if err != nil {
		fatal(err)
	}
	prog, err := parc.Parse(string(src))
	if err != nil {
		fatal(err)
	}
	cfg := sim.DefaultConfig()
	cfg.Nodes = *nodes
	cfg.CacheSize = *cacheSize
	cfg.Assoc = *assoc
	cfg.BlockSize = *block
	cfg.IgnoreDirectives = *ignore
	cfg.DisablePrefetch = *noPrefetch
	cfg.PostStore = *postStore
	cfg.FullMap = *fullMap
	cfg.Protocol = *protocol
	cfg.Parallel = *parallel
	cfg.Lanes = *lanes
	if *traceFile != "" {
		cfg.Mode = sim.ModeTrace
	}
	if *stats || *statsJSON != "" || *timeline != "" {
		cfg.Recorder = obs.New(cfg.Nodes, cfg.BlockSize)
		if *timeline != "" {
			cfg.Recorder.EnableTimeline()
		}
	}
	res, err := sim.Run(prog, cfg)
	if err != nil {
		fatal(err)
	}
	for _, line := range res.Output {
		fmt.Println(line)
	}
	fmt.Printf("execution time: %d cycles on %d nodes (%d barriers, %s)\n",
		res.Cycles, *nodes, res.Barriers, res.Protocol)
	if *parallel != 0 || *lanes {
		fmt.Printf("engine: %s\n", res.Engine)
	}
	s := res.Stats
	fmt.Printf("misses: %d read, %d write, %d write faults; %d traps\n",
		s.ReadMisses, s.WriteMisses, s.WriteFaults, s.Traps)
	if *stats {
		snap := res.Snapshot
		p := &snap.Protocol
		fmt.Printf("accesses: %d reads, %d writes, %d hits\n", p.Reads, p.Writes, p.Hits)
		fmt.Printf("messages: %d requests, %d data, %d control (%d total)\n",
			p.ReqMsgs, p.DataMsgs, p.CtlMsgs, p.TotalMsgs())
		fmt.Printf("coherence: %d invalidations, %d writebacks\n", p.Invalidations, p.Writebacks)
		fmt.Printf("directives: %d co_x, %d co_s, %d ci, %d pf_x, %d pf_s (%d wasted)\n",
			p.CheckOutX, p.CheckOutS, p.CheckIns, p.PrefetchX, p.PrefetchS, p.WastedDirs)
		fmt.Printf("interp: %d ops, %d handoffs, %d work cycles\n",
			snap.Interp.Ops, snap.Interp.Handoffs, snap.Interp.WorkCycles)
		for _, tr := range snap.Directory.Transitions {
			fmt.Printf("  dir %-9s -> %-9s %d\n", tr.From, tr.To, tr.Count)
		}
		for _, tc := range snap.Directory.TrapCauses {
			fmt.Printf("  trap %-19s %d\n", tc.Cause, tc.Count)
		}
		loads, stores := res.SharingDegree()
		fmt.Printf("sharing degree: %.1f%% of loads, %.1f%% of stores\n", 100*loads, 100*stores)
		for _, vd := range snap.Vars {
			fmt.Printf("  %-12s co_x=%-8d co_s=%-8d ci=%-8d pf=%d\n",
				vd.Name, vd.CheckOutX, vd.CheckOutS, vd.CheckIns, vd.PrefetchX+vd.PrefetchS)
		}
	}
	if *statsJSON != "" {
		writeFile(*statsJSON, func(w *os.File) error { return res.Snapshot.WriteJSON(w) })
		fmt.Printf("stats snapshot: %s\n", *statsJSON)
	}
	if *timeline != "" {
		label := filepath.Base(flag.Arg(0))
		writeFile(*timeline, func(w *os.File) error {
			return cfg.Recorder.WriteTimeline(w, label)
		})
		fmt.Printf("timeline: %s\n", *timeline)
	}
	if *traceFile != "" {
		f, err := os.Create(*traceFile)
		if err != nil {
			fatal(err)
		}
		if err := trace.Write(f, res.Trace); err != nil {
			fatal(err)
		}
		if err := f.Close(); err != nil {
			fatal(err)
		}
		fmt.Printf("trace: %d epochs written to %s\n", len(res.Trace.Epochs), *traceFile)
	}
}

// writeFile creates path and streams write into it, failing the command on
// any error.
func writeFile(path string, write func(*os.File) error) {
	f, err := os.Create(path)
	if err != nil {
		fatal(err)
	}
	if err := write(f); err != nil {
		fatal(err)
	}
	if err := f.Close(); err != nil {
		fatal(err)
	}
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "wwt:", err)
	os.Exit(1)
}
