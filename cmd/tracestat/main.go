// Command tracestat summarizes an execution trace produced by wwt -trace:
// per-epoch miss counts by kind, attribution of misses to the labelled
// shared regions (the paper's address-to-data-structure mapping), and the
// data races and false sharing Cachier's analysis finds in the trace.
//
// Usage:
//
//	tracestat [-races] [-vars] trace-file
package main

import (
	"flag"
	"fmt"
	"io"
	"os"
	"sort"

	"cachier/internal/core"
	"cachier/internal/trace"
)

func main() {
	if err := run(os.Args[1:], os.Stdout, os.Stderr); err != nil {
		if err != flag.ErrHelp {
			fmt.Fprintln(os.Stderr, "tracestat:", err)
		}
		os.Exit(1)
	}
}

// run is the whole program behind an error seam, so golden tests drive it
// with in-memory writers exactly as main drives it with the real streams.
func run(args []string, stdout, stderr io.Writer) error {
	fs := flag.NewFlagSet("tracestat", flag.ContinueOnError)
	fs.SetOutput(stderr)
	races := fs.Bool("races", false, "list data races and false sharing per epoch")
	vars := fs.Bool("vars", false, "attribute misses to labelled regions")
	if err := fs.Parse(args); err != nil {
		return err
	}
	if fs.NArg() != 1 {
		fmt.Fprintln(stderr, "usage: tracestat [flags] trace-file")
		fs.Usage()
		return fmt.Errorf("expected one trace file, got %d arguments", fs.NArg())
	}
	f, err := os.Open(fs.Arg(0))
	if err != nil {
		return err
	}
	tr, err := trace.Read(f)
	f.Close()
	if err != nil {
		return err
	}

	fmt.Fprintf(stdout, "trace: %d nodes, %d-byte blocks, %d epochs, %d labelled regions\n",
		tr.Nodes, tr.BlockSize, len(tr.Epochs), len(tr.Labels))

	labelOf := makeLabeler(tr.Labels)
	var totR, totW, totF int
	for _, ep := range tr.Epochs {
		var r, w, fl int
		for _, m := range ep.Misses {
			switch m.Kind {
			case trace.ReadMiss:
				r++
			case trace.WriteMiss:
				w++
			case trace.WriteFault:
				fl++
			}
		}
		totR, totW, totF = totR+r, totW+w, totF+fl
		fmt.Fprintf(stdout, "epoch %2d (barrier pc %4d): %6d read misses, %6d write misses, %6d write faults\n",
			ep.Index, ep.BarrierPC, r, w, fl)
	}
	fmt.Fprintf(stdout, "total: %d read misses, %d write misses, %d write faults\n", totR, totW, totF)

	if *vars {
		counts := map[string]int{}
		for _, ep := range tr.Epochs {
			for _, m := range ep.Misses {
				counts[labelOf(m.Addr)]++
			}
		}
		names := make([]string, 0, len(counts))
		for n := range counts {
			names = append(names, n)
		}
		sort.Slice(names, func(i, j int) bool { return counts[names[i]] > counts[names[j]] })
		fmt.Fprintln(stdout, "\nmisses by labelled region:")
		for _, n := range names {
			fmt.Fprintf(stdout, "  %-16s %d\n", n, counts[n])
		}
	}

	if *races {
		epochs := core.ProcessTrace(tr)
		conflicts := core.FindAllConflicts(epochs, tr.BlockSize)
		fmt.Fprintln(stdout, "\nconflicts (potential data races and false sharing):")
		any := false
		for i, c := range conflicts {
			byVar := map[string][2]int{}
			for a := range c.Race {
				v := byVar[labelOf(a)]
				v[0]++
				byVar[labelOf(a)] = v
			}
			for a := range c.FalseShare {
				v := byVar[labelOf(a)]
				v[1]++
				byVar[labelOf(a)] = v
			}
			names := make([]string, 0, len(byVar))
			for n := range byVar {
				names = append(names, n)
			}
			sort.Strings(names)
			for _, n := range names {
				v := byVar[n]
				any = true
				fmt.Fprintf(stdout, "  epoch %2d: %-16s %d raced address(es), %d falsely shared\n",
					i, n, v[0], v[1])
			}
		}
		if !any {
			fmt.Fprintln(stdout, "  none")
		}
	}
	return nil
}

// makeLabeler maps addresses to region labels using the trace's labelling
// information (Section 4.3's labelling macro output).
func makeLabeler(labels []trace.Label) func(uint64) string {
	type span struct {
		name     string
		base, hi uint64
	}
	spans := make([]span, 0, len(labels))
	for _, l := range labels {
		elems := 1
		for _, d := range l.Dims {
			elems *= d
		}
		spans = append(spans, span{l.Name, l.Base, l.Base + uint64(elems*l.Elem)})
	}
	sort.Slice(spans, func(i, j int) bool { return spans[i].base < spans[j].base })
	return func(addr uint64) string {
		i := sort.Search(len(spans), func(i int) bool { return spans[i].hi > addr })
		if i < len(spans) && addr >= spans[i].base {
			return spans[i].name
		}
		return "(unlabelled)"
	}
}
