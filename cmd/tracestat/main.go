// Command tracestat summarizes an execution trace produced by wwt -trace:
// per-epoch miss counts by kind, attribution of misses to the labelled
// shared regions (the paper's address-to-data-structure mapping), and the
// data races and false sharing Cachier's analysis finds in the trace.
//
// The trace is folded into the observability layer's stats tree
// (internal/obs), so the text report and the -json export use the same
// snapshot schema as fig6 -statsjson and wwt -statsjson.
//
// Usage:
//
//	tracestat [-races] [-vars] [-json FILE] trace-file
package main

import (
	"flag"
	"fmt"
	"io"
	"os"
	"sort"

	"cachier/internal/core"
	"cachier/internal/obs"
	"cachier/internal/trace"
)

func main() {
	if err := run(os.Args[1:], os.Stdout, os.Stderr); err != nil {
		if err != flag.ErrHelp {
			fmt.Fprintln(os.Stderr, "tracestat:", err)
		}
		os.Exit(1)
	}
}

// run is the whole program behind an error seam, so golden tests drive it
// with in-memory writers exactly as main drives it with the real streams.
func run(args []string, stdout, stderr io.Writer) error {
	fs := flag.NewFlagSet("tracestat", flag.ContinueOnError)
	fs.SetOutput(stderr)
	races := fs.Bool("races", false, "list data races and false sharing per epoch")
	vars := fs.Bool("vars", false, "attribute misses to labelled regions")
	jsonOut := fs.String("json", "", "write the trace's stats snapshot (JSON) to this file")
	if err := fs.Parse(args); err != nil {
		return err
	}
	if fs.NArg() != 1 {
		fmt.Fprintln(stderr, "usage: tracestat [flags] trace-file")
		fs.Usage()
		return fmt.Errorf("expected one trace file, got %d arguments", fs.NArg())
	}
	f, err := os.Open(fs.Arg(0))
	if err != nil {
		return err
	}
	tr, err := trace.Read(f)
	f.Close()
	if err != nil {
		return err
	}

	snap := replayTrace(tr)
	if *jsonOut != "" {
		out, err := os.Create(*jsonOut)
		if err != nil {
			return err
		}
		if err := snap.WriteJSON(out); err != nil {
			out.Close()
			return err
		}
		if err := out.Close(); err != nil {
			return err
		}
	}

	fmt.Fprintf(stdout, "trace: %d nodes, %d-byte blocks, %d epochs, %d labelled regions\n",
		tr.Nodes, tr.BlockSize, len(tr.Epochs), len(tr.Labels))

	labelOf := makeLabeler(tr.Labels)
	var totR, totW, totF uint64
	for _, ep := range snap.Epochs {
		var r, w, fl uint64
		for _, ne := range ep.Nodes {
			r += ne.ReadMisses
			w += ne.WriteMisses
			fl += ne.WriteFaults
		}
		totR, totW, totF = totR+r, totW+w, totF+fl
		fmt.Fprintf(stdout, "epoch %2d (barrier pc %4d): %6d read misses, %6d write misses, %6d write faults\n",
			ep.Index, barrierPCOf(tr, ep.Index), r, w, fl)
	}
	fmt.Fprintf(stdout, "total: %d read misses, %d write misses, %d write faults\n", totR, totW, totF)

	if *vars {
		counts := map[string]int{}
		for _, ep := range tr.Epochs {
			for _, m := range ep.Misses {
				counts[labelOf(m.Addr)]++
			}
		}
		names := make([]string, 0, len(counts))
		for n := range counts {
			names = append(names, n)
		}
		sort.Slice(names, func(i, j int) bool { return counts[names[i]] > counts[names[j]] })
		fmt.Fprintln(stdout, "\nmisses by labelled region:")
		for _, n := range names {
			fmt.Fprintf(stdout, "  %-16s %d\n", n, counts[n])
		}
	}

	if *races {
		epochs := core.ProcessTrace(tr)
		conflicts := core.FindAllConflicts(epochs, tr.BlockSize)
		fmt.Fprintln(stdout, "\nconflicts (potential data races and false sharing):")
		any := false
		for i, c := range conflicts {
			byVar := map[string][2]int{}
			for a := range c.Race {
				v := byVar[labelOf(a)]
				v[0]++
				byVar[labelOf(a)] = v
			}
			for a := range c.FalseShare {
				v := byVar[labelOf(a)]
				v[1]++
				byVar[labelOf(a)] = v
			}
			names := make([]string, 0, len(byVar))
			for n := range byVar {
				names = append(names, n)
			}
			sort.Strings(names)
			for _, n := range names {
				v := byVar[n]
				any = true
				fmt.Fprintf(stdout, "  epoch %2d: %-16s %d raced address(es), %d falsely shared\n",
					i, n, v[0], v[1])
			}
		}
		if !any {
			fmt.Fprintln(stdout, "  none")
		}
	}
	return nil
}

// barrierPCOf preserves the trace's own barrier PC for the final epoch when
// it differs from the snapshot's convention (both use -1 for program end, so
// in practice they agree; the trace remains the source of truth).
func barrierPCOf(tr *trace.Trace, index int) int {
	if index >= 0 && index < len(tr.Epochs) {
		return tr.Epochs[index].BarrierPC
	}
	return -1
}

// replayTrace folds the trace into an observability recorder: each miss is
// an access, each epoch boundary a barrier whose per-node arrival times are
// the trace's virtual times. The resulting snapshot carries per-epoch,
// per-node miss and working-set detail plus barrier-imbalance stalls; the
// protocol block holds only what a trace records (misses — traced runs have
// no CICO directives or traps).
func replayTrace(tr *trace.Trace) *obs.Snapshot {
	rec := obs.New(tr.Nodes, tr.BlockSize)
	bs := uint64(tr.BlockSize)
	var p obs.ProtocolStats
	var cycles uint64
	last := make([]uint64, tr.Nodes)
	for i, ep := range tr.Epochs {
		for _, m := range ep.Misses {
			var k obs.AccessKind
			switch m.Kind {
			case trace.ReadMiss:
				k = obs.ReadMiss
				p.ReadMisses++
				p.Reads++
			case trace.WriteMiss:
				k = obs.WriteMiss
				p.WriteMisses++
				p.Writes++
			default:
				k = obs.WriteFault
				p.WriteFaults++
				p.Writes++
			}
			rec.Access(m.Node, k, m.Addr/bs, 0, false, 0)
		}
		var release uint64
		for _, vt := range ep.VT {
			if vt > release {
				release = vt
			}
		}
		if release > cycles {
			cycles = release
		}
		if i == len(tr.Epochs)-1 {
			copy(last, ep.VT)
			rec.Finish(ep.VT)
		} else {
			rec.BarrierEnd(ep.BarrierPC, ep.VT, release)
		}
	}
	barriers := len(tr.Epochs) - 1
	if len(tr.Epochs) == 0 {
		rec.Finish(last)
		barriers = 0
	}
	return rec.Snapshot(cycles, last, barriers, p)
}

// makeLabeler maps addresses to region labels using the trace's labelling
// information (Section 4.3's labelling macro output).
func makeLabeler(labels []trace.Label) func(uint64) string {
	type span struct {
		name     string
		base, hi uint64
	}
	spans := make([]span, 0, len(labels))
	for _, l := range labels {
		elems := 1
		for _, d := range l.Dims {
			elems *= d
		}
		spans = append(spans, span{l.Name, l.Base, l.Base + uint64(elems*l.Elem)})
	}
	sort.Slice(spans, func(i, j int) bool { return spans[i].base < spans[j].base })
	return func(addr uint64) string {
		i := sort.Search(len(spans), func(i int) bool { return spans[i].hi > addr })
		if i < len(spans) && addr >= spans[i].base {
			return spans[i].name
		}
		return "(unlabelled)"
	}
}
