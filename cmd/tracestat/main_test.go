package main

import (
	"bytes"
	"flag"
	"os"
	"path/filepath"
	"testing"

	"cachier/internal/obs"
	"cachier/internal/parc"
	"cachier/internal/sim"
	"cachier/internal/trace"
)

var update = flag.Bool("update", false, "rewrite golden files")

// writeFixtureTrace traces testdata/fixture.parc on a small deterministic
// machine and writes the trace to a temp file, as wwt -trace would.
func writeFixtureTrace(t *testing.T) string {
	t.Helper()
	src, err := os.ReadFile(filepath.Join("testdata", "fixture.parc"))
	if err != nil {
		t.Fatal(err)
	}
	prog, err := parc.Parse(string(src))
	if err != nil {
		t.Fatal(err)
	}
	cfg := sim.DefaultConfig()
	cfg.Nodes = 4
	cfg.Mode = sim.ModeTrace
	res, err := sim.Run(prog, cfg)
	if err != nil {
		t.Fatal(err)
	}
	path := filepath.Join(t.TempDir(), "fixture.trace")
	f, err := os.Create(path)
	if err != nil {
		t.Fatal(err)
	}
	if err := trace.Write(f, res.Trace); err != nil {
		t.Fatal(err)
	}
	if err := f.Close(); err != nil {
		t.Fatal(err)
	}
	return path
}

func checkGolden(t *testing.T, name string, got []byte) {
	t.Helper()
	path := filepath.Join("testdata", name)
	if *update {
		if err := os.WriteFile(path, got, 0o644); err != nil {
			t.Fatal(err)
		}
		return
	}
	want, err := os.ReadFile(path)
	if err != nil {
		t.Fatalf("%v (run with -update to create it)", err)
	}
	if !bytes.Equal(got, want) {
		t.Errorf("%s mismatch (re-run with -update if the change is intended)\n--- got ---\n%s\n--- want ---\n%s",
			name, got, want)
	}
}

// TestGolden pins the full -races -vars report for the fixture trace. The
// trace is regenerated in-process each run, so this also guards trace
// determinism through the Write/Read round trip. The text report is printed
// from the obs snapshot, and -json exports that same snapshot, so the two
// golden files lock both faces of the one stats tree.
func TestGolden(t *testing.T) {
	path := writeFixtureTrace(t)
	jsonPath := filepath.Join(t.TempDir(), "snapshot.json")
	var stdout, stderr bytes.Buffer
	if err := run([]string{"-races", "-vars", "-json", jsonPath, path}, &stdout, &stderr); err != nil {
		t.Fatalf("run: %v\nstderr: %s", err, stderr.String())
	}
	if stderr.Len() != 0 {
		t.Errorf("unexpected stderr: %s", stderr.String())
	}
	checkGolden(t, "tracestat.golden", stdout.Bytes())

	snapData, err := os.ReadFile(jsonPath)
	if err != nil {
		t.Fatal(err)
	}
	checkGolden(t, "snapshot.golden.json", snapData)
	snap, err := obs.ReadSnapshot(bytes.NewReader(snapData))
	if err != nil {
		t.Fatal(err)
	}
	if err := snap.CheckConsistency(); err != nil {
		t.Error(err)
	}
	if snap.Nodes != 4 {
		t.Errorf("snapshot nodes = %d, want 4", snap.Nodes)
	}
}

func TestRunArgErrors(t *testing.T) {
	var stdout, stderr bytes.Buffer
	if err := run(nil, &stdout, &stderr); err == nil {
		t.Error("no arguments: want error, got nil")
	}
	if err := run([]string{"does-not-exist.trace"}, &stdout, &stderr); err == nil {
		t.Error("missing file: want error, got nil")
	}
}
