package main

import (
	"bytes"
	"context"
	"encoding/json"
	"net/http"
	"os"
	"path/filepath"
	"strings"
	"testing"
	"time"

	"cachier/internal/parcgen"
	"cachier/internal/serve"
)

// startDaemon runs the daemon in a goroutine on an ephemeral port and
// returns its base URL, the cancel that triggers drain, and a channel with
// run's error.
func startDaemon(t *testing.T, extra ...string) (base string, stop context.CancelFunc, done chan error, out *bytes.Buffer) {
	t.Helper()
	dir := t.TempDir()
	addrFile := filepath.Join(dir, "addr")
	ctx, cancel := context.WithCancel(context.Background())
	out = &bytes.Buffer{}
	done = make(chan error, 1)
	args := append([]string{"-addr", "127.0.0.1:0", "-addr-file", addrFile}, extra...)
	go func() { done <- run(ctx, args, out, out) }()

	deadline := time.Now().Add(10 * time.Second)
	for {
		data, err := os.ReadFile(addrFile)
		if err == nil && len(data) > 0 {
			base = "http://" + strings.TrimSpace(string(data))
			break
		}
		if time.Now().After(deadline) {
			cancel()
			t.Fatalf("daemon never wrote its address file; output:\n%s", out)
		}
		time.Sleep(5 * time.Millisecond)
	}
	return base, cancel, done, out
}

// TestDaemonLifecycle boots the daemon, serves one real request, and shuts
// it down gracefully, checking the response matches the library result and
// the metrics dump lands.
func TestDaemonLifecycle(t *testing.T) {
	dump := filepath.Join(t.TempDir(), "metrics.json")
	base, stop, done, out := startDaemon(t, "-metrics-dump", dump)

	req := &serve.VetRequest{Source: parcgen.Generate(5), Nodes: 4}
	want, err := serve.EvalVet(req)
	if err != nil {
		t.Fatal(err)
	}
	wantBytes, err := serve.MarshalResponse(want)
	if err != nil {
		t.Fatal(err)
	}
	body, err := json.Marshal(req)
	if err != nil {
		t.Fatal(err)
	}
	resp, err := http.Post(base+"/v1/vet", "application/json", bytes.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	got := new(bytes.Buffer)
	got.ReadFrom(resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status %d: %s", resp.StatusCode, got)
	}
	if !bytes.Equal(got.Bytes(), wantBytes) {
		t.Fatalf("daemon response diverges from library result")
	}

	stop()
	select {
	case err := <-done:
		if err != nil {
			t.Fatalf("run: %v\noutput:\n%s", err, out)
		}
	case <-time.After(15 * time.Second):
		t.Fatalf("daemon did not shut down; output:\n%s", out)
	}

	data, err := os.ReadFile(dump)
	if err != nil {
		t.Fatalf("metrics dump: %v", err)
	}
	var snap map[string]uint64
	if err := json.Unmarshal(data, &snap); err != nil {
		t.Fatalf("metrics dump is not JSON: %v", err)
	}
	if snap[`requests_total{endpoint="vet",code="200"}`] != 1 {
		t.Fatalf("metrics dump missing the served request: %v", snap)
	}
	for _, want := range []string{"listening on", "draining", "stopped"} {
		if !strings.Contains(out.String(), want) {
			t.Errorf("daemon output missing %q:\n%s", want, out)
		}
	}
}

func TestDaemonBadFlags(t *testing.T) {
	if err := run(context.Background(), []string{"-bogus"}, new(bytes.Buffer), new(bytes.Buffer)); err == nil {
		t.Fatal("bad flag accepted")
	}
	if err := run(context.Background(), []string{"stray"}, new(bytes.Buffer), new(bytes.Buffer)); err == nil {
		t.Fatal("stray argument accepted")
	}
	if err := run(context.Background(), []string{"-addr", "999.999.999.999:0"}, new(bytes.Buffer), new(bytes.Buffer)); err == nil {
		t.Fatal("unlistenable address accepted")
	}
}

// TestDaemonDrainRefusesNewWork checks the daemon's healthz flips to 503
// during shutdown (the drain is externally observable, not just internal).
func TestDaemonDrainRefusesNewWork(t *testing.T) {
	base, stop, done, out := startDaemon(t)
	resp, err := http.Get(base + "/healthz")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("healthz before drain: %d", resp.StatusCode)
	}
	stop()
	select {
	case err := <-done:
		if err != nil {
			t.Fatalf("run: %v\noutput:\n%s", err, out)
		}
	case <-time.After(15 * time.Second):
		t.Fatalf("daemon did not shut down; output:\n%s", out)
	}
	// The listener is closed after drain; the port must refuse connections.
	if _, err := http.Get(base + "/healthz"); err == nil {
		t.Fatal("daemon still serving after shutdown")
	}
}
