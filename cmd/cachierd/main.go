// Command cachierd serves the Cachier pipeline over HTTP: trace-driven and
// static CICO annotation, vetting, and batched simulation, with content-
// addressed caching and explicit backpressure (see internal/serve).
//
// Usage:
//
//	cachierd [-addr :8080] [-addr-file path] [-workers N] [-queue N]
//	         [-timeout 60s] [-cache-entries N] [-drain-timeout 30s]
//	         [-metrics-dump path]
//
// The daemon runs until SIGTERM or SIGINT, then drains: new requests get
// 503, in-flight requests finish (bounded by -drain-timeout), the listener
// shuts down, and — when -metrics-dump is set — the final metrics snapshot
// is written as JSON so a supervisor can scrape the lifetime counters.
//
// -addr-file writes the listener's resolved address (useful with -addr
// 127.0.0.1:0 in test harnesses that need a race-free ephemeral port).
package main

import (
	"context"
	"encoding/json"
	"errors"
	"flag"
	"fmt"
	"io"
	"net"
	"net/http"
	"os"
	"os/signal"
	"syscall"
	"time"

	"cachier/internal/serve"
)

func main() {
	ctx, stop := signal.NotifyContext(context.Background(), syscall.SIGTERM, syscall.SIGINT)
	defer stop()
	if err := run(ctx, os.Args[1:], os.Stdout, os.Stderr); err != nil {
		fmt.Fprintln(os.Stderr, "cachierd:", err)
		os.Exit(1)
	}
}

func run(ctx context.Context, args []string, stdout, stderr io.Writer) error {
	fs := flag.NewFlagSet("cachierd", flag.ContinueOnError)
	fs.SetOutput(stderr)
	var (
		addr         = fs.String("addr", ":8080", "listen address (host:port; port 0 picks an ephemeral port)")
		addrFile     = fs.String("addr-file", "", "write the resolved listen address to this file")
		workers      = fs.Int("workers", 0, "max concurrent heavy pipeline executions (0 = GOMAXPROCS)")
		queue        = fs.Int("queue", 64, "max queued executions before 429 (negative = no queue)")
		timeout      = fs.Duration("timeout", 60*time.Second, "per-request deadline")
		cacheEntries = fs.Int("cache-entries", 512, "entries per content-addressed cache")
		drainTimeout = fs.Duration("drain-timeout", 30*time.Second, "max wait for in-flight requests on shutdown")
		metricsDump  = fs.String("metrics-dump", "", "write a final JSON metrics snapshot to this file on shutdown")
	)
	if err := fs.Parse(args); err != nil {
		return err
	}
	if fs.NArg() > 0 {
		return fmt.Errorf("unexpected arguments: %v", fs.Args())
	}

	srv := serve.New(serve.Config{
		Workers:        *workers,
		QueueDepth:     *queue,
		RequestTimeout: *timeout,
		CacheEntries:   *cacheEntries,
	})

	ln, err := net.Listen("tcp", *addr)
	if err != nil {
		return err
	}
	resolved := ln.Addr().String()
	if *addrFile != "" {
		if err := os.WriteFile(*addrFile, []byte(resolved+"\n"), 0o644); err != nil {
			ln.Close()
			return err
		}
	}
	fmt.Fprintf(stdout, "cachierd: listening on %s\n", resolved)

	hs := &http.Server{Handler: srv.Handler()}
	errc := make(chan error, 1)
	go func() { errc <- hs.Serve(ln) }()

	select {
	case err := <-errc:
		return err // listener failed before any shutdown signal
	case <-ctx.Done():
	}

	fmt.Fprintln(stdout, "cachierd: draining")
	dctx, cancel := context.WithTimeout(context.Background(), *drainTimeout)
	defer cancel()
	if err := srv.Drain(dctx); err != nil {
		fmt.Fprintf(stderr, "cachierd: %v (shutting down anyway)\n", err)
	}
	if err := hs.Shutdown(dctx); err != nil && !errors.Is(err, context.DeadlineExceeded) {
		return err
	}
	<-errc // Serve has returned http.ErrServerClosed

	if *metricsDump != "" {
		data, err := json.MarshalIndent(srv.Metrics().Snapshot(), "", "  ")
		if err != nil {
			return err
		}
		if err := os.WriteFile(*metricsDump, append(data, '\n'), 0o644); err != nil {
			return err
		}
	}
	fmt.Fprintln(stdout, "cachierd: stopped")
	return nil
}
