// Command parcvet statically checks ParC programs for the two properties
// Cachier assumes of its input and promises of its output: that the
// program is free of data races (paper Section 3's epoch model relies on
// barrier-synchronized sharing), and that its CICO annotations follow the
// check-out/check-in protocol.
//
// Usage:
//
//	parcvet [flags] program.parc...
//	parcvet -bench NAME|all
//
//	-nprocs N       SPMD nodes to model (default 4; -bench uses each
//	                benchmark's own machine size)
//	-bench NAME     vet a built-in Figure 6 benchmark port ("all" runs the
//	                whole suite and checks each verdict against its known
//	                racy/race-free classification)
//	-expect-races   invert the file verdict: succeed only if every file
//	                has at least one race (for known-racy demos)
//	-protocol SPEC  coherence protocol the program targets: dir1sw
//	                (default), dirnnb[:n], dirnb[:n]. Validated and
//	                otherwise a no-op — races and CICO protocol misuse are
//	                source properties, so verdicts are identical under
//	                every protocol (make vet checks this stays true)
//	-json           print one JSON array of diagnostics on stdout instead
//	                of text (file, line, col, severity, kind, var, epoch,
//	                nodes, msg per finding), for CI and tooling
//	-q              print only errors, not warnings or infos
//
// Exit status: 0 clean (or expectations met), 1 findings of error
// severity (or expectations violated), 2 usage or parse errors.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"os"

	"cachier/internal/bench"
	"cachier/internal/coherence"
	"cachier/internal/vet"
)

// jsonDiag is one finding in -json output. The schema is part of the CLI
// contract (see the golden test): kind is the vet rule name, severity one of
// "info"/"warning"/"error", epoch -1 for non-epochal findings, and nodes the
// racing node pair (omitted when no node is involved).
type jsonDiag struct {
	Program  string `json:"program"`
	File     string `json:"file"`
	Line     int    `json:"line"`
	Col      int    `json:"col"`
	Severity string `json:"severity"`
	Kind     string `json:"kind"`
	Var      string `json:"var,omitempty"`
	Epoch    int    `json:"epoch"`
	Nodes    []int  `json:"nodes,omitempty"`
	Msg      string `json:"msg"`
}

// diags converts a report's findings for one program, honoring -q.
func diags(program string, rep *vet.Report, quiet bool) []jsonDiag {
	var out []jsonDiag
	for _, f := range rep.Findings {
		if quiet && f.Severity != vet.SevError {
			continue
		}
		d := jsonDiag{
			Program:  program,
			File:     f.Pos.File,
			Line:     f.Pos.Line,
			Col:      f.Pos.Col,
			Severity: f.Severity.String(),
			Kind:     f.Rule,
			Var:      f.Var,
			Epoch:    f.Epoch,
			Msg:      f.Msg,
		}
		if f.Nodes[0] >= 0 {
			if f.Nodes[1] >= 0 {
				d.Nodes = []int{f.Nodes[0], f.Nodes[1]}
			} else {
				d.Nodes = []int{f.Nodes[0]}
			}
		}
		out = append(out, d)
	}
	return out
}

// emitJSON writes the collected diagnostics as one indented JSON array.
// An empty run still prints "[]" so consumers always get valid JSON.
func emitJSON(w io.Writer, ds []jsonDiag) {
	if ds == nil {
		ds = []jsonDiag{}
	}
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	enc.Encode(ds)
}

func main() {
	os.Exit(run(os.Args[1:], os.Stdout, os.Stderr))
}

// run is the whole program behind a status-code seam so tests can drive it
// with in-memory writers.
func run(args []string, stdout, stderr io.Writer) int {
	fs := flag.NewFlagSet("parcvet", flag.ContinueOnError)
	fs.SetOutput(stderr)
	var (
		nprocs      = fs.Int("nprocs", 4, "SPMD nodes to model")
		benchName   = fs.String("bench", "", `vet a built-in benchmark port by name, or "all"`)
		expectRaces = fs.Bool("expect-races", false, "succeed only if every file has at least one race")
		protocol    = fs.String("protocol", "", "coherence protocol the program targets (validated; verdicts are protocol-independent)")
		jsonOut     = fs.Bool("json", false, "print diagnostics as one JSON array on stdout")
		quiet       = fs.Bool("q", false, "print only error-severity findings")
	)
	if err := fs.Parse(args); err != nil {
		return 2
	}
	// Vet's analyses are static source properties — which protocol will run
	// the program cannot change a verdict — but the spec is validated so a
	// typo fails loudly here rather than later at simulation time.
	if _, err := coherence.ParseSpec(*protocol); err != nil {
		fmt.Fprintln(stderr, "parcvet:", err)
		return 2
	}
	if *benchName != "" {
		if fs.NArg() != 0 {
			fmt.Fprintln(stderr, "parcvet: -bench takes no file arguments")
			return 2
		}
		return runBench(*benchName, *quiet, *jsonOut, stdout, stderr)
	}
	if fs.NArg() == 0 {
		fmt.Fprintln(stderr, "usage: parcvet [flags] program.parc...")
		fs.Usage()
		return 2
	}
	status := 0
	var all []jsonDiag
	for _, file := range fs.Args() {
		srcBytes, err := os.ReadFile(file)
		if err != nil {
			fmt.Fprintln(stderr, "parcvet:", err)
			return 2
		}
		rep, err := vet.AnalyzeSource(file, string(srcBytes), vet.Options{Nprocs: *nprocs})
		if err != nil {
			fmt.Fprintln(stderr, "parcvet:", err)
			return 2
		}
		if *jsonOut {
			all = append(all, diags(file, rep, *quiet)...)
		} else {
			printReport(stdout, rep, *quiet)
		}
		if *expectRaces {
			if len(rep.Races()) == 0 {
				fmt.Fprintf(stderr, "parcvet: %s: expected at least one data race, found none\n", file)
				status = 1
			}
			continue
		}
		if len(rep.Errors()) > 0 {
			status = 1
		}
	}
	if *jsonOut {
		emitJSON(stdout, all)
	}
	return status
}

// runBench vets the built-in benchmark ports at their training inputs. For
// "all", the exit status reports whether every port's verdict matches its
// known classification: MatMul and Mp3d race, the rest are clean.
func runBench(name string, quiet, jsonOut bool, stdout, stderr io.Writer) int {
	var targets []*bench.Benchmark
	if name == "all" {
		targets = bench.All()
	} else {
		b, err := bench.ByName(name)
		if err != nil {
			fmt.Fprintln(stderr, "parcvet:", err)
			return 2
		}
		targets = []*bench.Benchmark{b}
	}
	status := 0
	var all []jsonDiag
	for _, b := range targets {
		src := b.Source(b.Train)
		rep, err := vet.AnalyzeSource(b.Name+".parc", src, vet.Options{Nprocs: b.Nodes})
		if err != nil {
			fmt.Fprintln(stderr, "parcvet:", err)
			return 2
		}
		verdict := "race-free"
		if len(rep.Races()) > 0 {
			verdict = "racy"
		}
		want := "race-free"
		if b.Racy {
			want = "racy"
		}
		if jsonOut {
			all = append(all, diags(b.Name, rep, quiet)...)
		} else {
			fmt.Fprintf(stdout, "%s: %s (expected %s)\n", b.Name, verdict, want)
			printReport(stdout, rep, quiet)
		}
		if verdict != want {
			status = 1
		}
	}
	if jsonOut {
		emitJSON(stdout, all)
	}
	return status
}

func printReport(w io.Writer, rep *vet.Report, quiet bool) {
	for _, f := range rep.Findings {
		if quiet && f.Severity != vet.SevError {
			continue
		}
		fmt.Fprintln(w, f)
	}
}
