// Command parcvet statically checks ParC programs for the two properties
// Cachier assumes of its input and promises of its output: that the
// program is free of data races (paper Section 3's epoch model relies on
// barrier-synchronized sharing), and that its CICO annotations follow the
// check-out/check-in protocol.
//
// Usage:
//
//	parcvet [flags] program.parc...
//	parcvet -bench NAME|all
//
//	-nprocs N       SPMD nodes to model (default 4; -bench uses each
//	                benchmark's own machine size)
//	-bench NAME     vet a built-in Figure 6 benchmark port ("all" runs the
//	                whole suite and checks each verdict against its known
//	                racy/race-free classification)
//	-expect-races   invert the file verdict: succeed only if every file
//	                has at least one race (for known-racy demos)
//	-protocol SPEC  coherence protocol the program targets: dir1sw
//	                (default), dirnnb[:n], dirnb[:n]. Validated and
//	                otherwise a no-op — races and CICO protocol misuse are
//	                source properties, so verdicts are identical under
//	                every protocol (make vet checks this stays true)
//	-q              print only errors, not warnings or infos
//
// Exit status: 0 clean (or expectations met), 1 findings of error
// severity (or expectations violated), 2 usage or parse errors.
package main

import (
	"flag"
	"fmt"
	"io"
	"os"

	"cachier/internal/bench"
	"cachier/internal/coherence"
	"cachier/internal/vet"
)

func main() {
	os.Exit(run(os.Args[1:], os.Stdout, os.Stderr))
}

// run is the whole program behind a status-code seam so tests can drive it
// with in-memory writers.
func run(args []string, stdout, stderr io.Writer) int {
	fs := flag.NewFlagSet("parcvet", flag.ContinueOnError)
	fs.SetOutput(stderr)
	var (
		nprocs      = fs.Int("nprocs", 4, "SPMD nodes to model")
		benchName   = fs.String("bench", "", `vet a built-in benchmark port by name, or "all"`)
		expectRaces = fs.Bool("expect-races", false, "succeed only if every file has at least one race")
		protocol    = fs.String("protocol", "", "coherence protocol the program targets (validated; verdicts are protocol-independent)")
		quiet       = fs.Bool("q", false, "print only error-severity findings")
	)
	if err := fs.Parse(args); err != nil {
		return 2
	}
	// Vet's analyses are static source properties — which protocol will run
	// the program cannot change a verdict — but the spec is validated so a
	// typo fails loudly here rather than later at simulation time.
	if _, err := coherence.ParseSpec(*protocol); err != nil {
		fmt.Fprintln(stderr, "parcvet:", err)
		return 2
	}
	if *benchName != "" {
		if fs.NArg() != 0 {
			fmt.Fprintln(stderr, "parcvet: -bench takes no file arguments")
			return 2
		}
		return runBench(*benchName, *quiet, stdout, stderr)
	}
	if fs.NArg() == 0 {
		fmt.Fprintln(stderr, "usage: parcvet [flags] program.parc...")
		fs.Usage()
		return 2
	}
	status := 0
	for _, file := range fs.Args() {
		srcBytes, err := os.ReadFile(file)
		if err != nil {
			fmt.Fprintln(stderr, "parcvet:", err)
			return 2
		}
		rep, err := vet.AnalyzeSource(file, string(srcBytes), vet.Options{Nprocs: *nprocs})
		if err != nil {
			fmt.Fprintln(stderr, "parcvet:", err)
			return 2
		}
		printReport(stdout, rep, *quiet)
		if *expectRaces {
			if len(rep.Races()) == 0 {
				fmt.Fprintf(stderr, "parcvet: %s: expected at least one data race, found none\n", file)
				status = 1
			}
			continue
		}
		if len(rep.Errors()) > 0 {
			status = 1
		}
	}
	return status
}

// runBench vets the built-in benchmark ports at their training inputs. For
// "all", the exit status reports whether every port's verdict matches its
// known classification: MatMul and Mp3d race, the rest are clean.
func runBench(name string, quiet bool, stdout, stderr io.Writer) int {
	var targets []*bench.Benchmark
	if name == "all" {
		targets = bench.All()
	} else {
		b, err := bench.ByName(name)
		if err != nil {
			fmt.Fprintln(stderr, "parcvet:", err)
			return 2
		}
		targets = []*bench.Benchmark{b}
	}
	status := 0
	for _, b := range targets {
		src := b.Source(b.Train)
		rep, err := vet.AnalyzeSource(b.Name+".parc", src, vet.Options{Nprocs: b.Nodes})
		if err != nil {
			fmt.Fprintln(stderr, "parcvet:", err)
			return 2
		}
		verdict := "race-free"
		if len(rep.Races()) > 0 {
			verdict = "racy"
		}
		want := "race-free"
		if b.Racy {
			want = "racy"
		}
		fmt.Fprintf(stdout, "%s: %s (expected %s)\n", b.Name, verdict, want)
		printReport(stdout, rep, quiet)
		if verdict != want {
			status = 1
		}
	}
	return status
}

func printReport(w io.Writer, rep *vet.Report, quiet bool) {
	for _, f := range rep.Findings {
		if quiet && f.Severity != vet.SevError {
			continue
		}
		fmt.Fprintln(w, f)
	}
}
