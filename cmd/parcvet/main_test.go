package main

import (
	"bytes"
	"encoding/json"
	"flag"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

var update = flag.Bool("update", false, "rewrite golden files")

func write(t *testing.T, name, src string) string {
	t.Helper()
	path := filepath.Join(t.TempDir(), name)
	if err := os.WriteFile(path, []byte(src), 0o644); err != nil {
		t.Fatal(err)
	}
	return path
}

func TestRunCleanFile(t *testing.T) {
	path := write(t, "clean.parc", `
const N = 64;
shared float A[N] label "A";
func main() {
    var chunk int = N / nprocs();
    for i = pid() * chunk to pid() * chunk + chunk - 1 {
        A[i] = 1.0;
    }
    barrier;
}`)
	var out, errOut strings.Builder
	if code := run([]string{path}, &out, &errOut); code != 0 {
		t.Fatalf("exit %d for a clean program\nstdout:\n%s\nstderr:\n%s", code, out.String(), errOut.String())
	}
	if out.Len() != 0 {
		t.Fatalf("unexpected output for a clean program:\n%s", out.String())
	}
}

func TestRunRacyFile(t *testing.T) {
	path := write(t, "racy.parc", `
shared float total label "t";
func main() {
    total = total + 1.0;
    barrier;
}`)
	var out, errOut strings.Builder
	if code := run([]string{path}, &out, &errOut); code != 1 {
		t.Fatalf("exit %d for a racy program, want 1", code)
	}
	if !strings.Contains(out.String(), "race-write-write") {
		t.Fatalf("output missing the race finding:\n%s", out.String())
	}
	if !strings.Contains(out.String(), path+":") {
		t.Fatalf("findings should carry file:line:col locations:\n%s", out.String())
	}

	// The same file under -expect-races succeeds.
	out.Reset()
	errOut.Reset()
	if code := run([]string{"-expect-races", path}, &out, &errOut); code != 0 {
		t.Fatalf("exit %d with -expect-races on a racy program, want 0", code)
	}
}

func TestRunExpectRacesFailsOnClean(t *testing.T) {
	path := write(t, "clean.parc", `
shared int x label "x";
func main() {
    if pid() == 0 {
        x = 1;
    }
    barrier;
}`)
	var out, errOut strings.Builder
	if code := run([]string{"-expect-races", path}, &out, &errOut); code != 1 {
		t.Fatalf("exit %d with -expect-races on a clean program, want 1", code)
	}
}

func TestRunParseErrorExitsTwo(t *testing.T) {
	path := write(t, "broken.parc", "func main() {")
	var out, errOut strings.Builder
	if code := run([]string{path}, &out, &errOut); code != 2 {
		t.Fatalf("exit %d for a parse error, want 2", code)
	}
	if errOut.Len() == 0 {
		t.Fatal("parse error should be reported on stderr")
	}
}

func TestRunMissingArgs(t *testing.T) {
	var out, errOut strings.Builder
	if code := run(nil, &out, &errOut); code != 2 {
		t.Fatalf("exit %d with no arguments, want 2", code)
	}
}

// TestRunBenchAll pins the headline classification: the suite verdicts all
// match, so the exit status is 0 and both racy ports appear as such.
func TestRunBenchAll(t *testing.T) {
	var out, errOut strings.Builder
	if code := run([]string{"-q", "-bench", "all"}, &out, &errOut); code != 0 {
		t.Fatalf("exit %d for -bench all, want 0\n%s%s", code, out.String(), errOut.String())
	}
	text := out.String()
	for _, want := range []string{
		"Mp3d: racy (expected racy)",
		"MatrixMultiply: racy (expected racy)",
		"Barnes: race-free (expected race-free)",
		"Ocean: race-free (expected race-free)",
		"Tomcatv: race-free (expected race-free)",
	} {
		if !strings.Contains(text, want) {
			t.Errorf("missing %q in:\n%s", want, text)
		}
	}
}

// TestProtocolIndependentVerdicts pins the -protocol contract: vet's
// verdicts are static source properties, so the same inputs produce
// byte-identical reports and exit codes under every coherence protocol —
// and an unknown spec is rejected up front with a usage error.
func TestProtocolIndependentVerdicts(t *testing.T) {
	racy := write(t, "racy.parc", `
shared float total label "t";
func main() {
    total = total + 1.0;
    barrier;
}`)
	clean := write(t, "clean.parc", `
shared int x label "x";
func main() {
    if pid() == 0 {
        x = 1;
    }
    barrier;
}`)
	type outcome struct {
		code int
		out  string
	}
	for _, args := range [][]string{{racy}, {clean}, {"-q", "-bench", "all"}} {
		var base *outcome
		for _, proto := range []string{"", "dir1sw", "dirnnb:1", "dirnnb:4", "dirnb:4"} {
			full := args
			if proto != "" {
				full = append([]string{"-protocol", proto}, args...)
			}
			var out, errOut strings.Builder
			code := run(full, &out, &errOut)
			got := outcome{code: code, out: out.String()}
			if base == nil {
				base = &got
				continue
			}
			if got != *base {
				t.Errorf("args %v under -protocol %s diverge: exit %d vs %d\n%s----\n%s",
					args, proto, got.code, base.code, got.out, base.out)
			}
		}
	}
	var out, errOut strings.Builder
	if code := run([]string{"-protocol", "mesi", racy}, &out, &errOut); code != 2 {
		t.Fatalf("exit %d for unknown protocol spec, want 2", code)
	}
	if !strings.Contains(errOut.String(), "unknown") {
		t.Fatalf("stderr should name the bad spec:\n%s", errOut.String())
	}
}

// TestJSONGolden pins the -json output schema against a checked-in golden
// file. The fixture produces findings of every severity, so the golden also
// documents the severity vocabulary; run with -update to regenerate.
func TestJSONGolden(t *testing.T) {
	fixture := filepath.Join("testdata", "json_demo.parc")
	var out, errOut bytes.Buffer
	code := run([]string{"-json", fixture}, &out, &errOut)
	if code != 1 {
		t.Fatalf("exit %d for the racy fixture, want 1\nstderr:\n%s", code, errOut.String())
	}

	// The output must be a valid JSON array of diagnostics before any
	// golden comparison — the schema is the CLI contract.
	var ds []jsonDiag
	if err := json.Unmarshal(out.Bytes(), &ds); err != nil {
		t.Fatalf("-json output is not a JSON array of diagnostics: %v\n%s", err, out.String())
	}
	if len(ds) == 0 {
		t.Fatal("-json output is empty for a fixture with findings")
	}
	severities := map[string]bool{}
	for _, d := range ds {
		if d.File != fixture || d.Program != fixture {
			t.Errorf("diagnostic file/program = %q/%q, want %q", d.File, d.Program, fixture)
		}
		if d.Line <= 0 || d.Col <= 0 {
			t.Errorf("diagnostic %q has no position: line %d col %d", d.Kind, d.Line, d.Col)
		}
		severities[d.Severity] = true
	}
	for _, sev := range []string{"info", "warning", "error"} {
		if !severities[sev] {
			t.Errorf("fixture produced no %s-severity finding; the golden should cover all severities", sev)
		}
	}

	goldenPath := filepath.Join("testdata", "json_demo.golden.json")
	if *update {
		if err := os.WriteFile(goldenPath, out.Bytes(), 0o644); err != nil {
			t.Fatal(err)
		}
		return
	}
	want, err := os.ReadFile(goldenPath)
	if err != nil {
		t.Fatalf("%v (run with -update to create it)", err)
	}
	if !bytes.Equal(out.Bytes(), want) {
		t.Errorf("-json output diverged from golden (re-run with -update if intended)\n--- got ---\n%s\n--- want ---\n%s",
			out.String(), want)
	}
}

// TestJSONQuiet checks that -q filters the JSON stream down to errors and
// that a clean program still yields a valid (empty) JSON array.
func TestJSONQuiet(t *testing.T) {
	fixture := filepath.Join("testdata", "json_demo.parc")
	var out, errOut bytes.Buffer
	if code := run([]string{"-json", "-q", fixture}, &out, &errOut); code != 1 {
		t.Fatalf("exit %d, want 1", code)
	}
	var ds []jsonDiag
	if err := json.Unmarshal(out.Bytes(), &ds); err != nil {
		t.Fatal(err)
	}
	if len(ds) == 0 {
		t.Fatal("-q dropped the error findings too")
	}
	for _, d := range ds {
		if d.Severity != "error" {
			t.Errorf("-q leaked a %s finding: %s", d.Severity, d.Msg)
		}
	}

	clean := write(t, "clean.parc", `
shared int x label "x";
func main() {
    if pid() == 0 {
        x = 1;
    }
    barrier;
}`)
	out.Reset()
	if code := run([]string{"-json", clean}, &out, &errOut); code != 0 {
		t.Fatalf("exit %d for a clean program, want 0", code)
	}
	if strings.TrimSpace(out.String()) != "[]" {
		t.Fatalf("clean program should print an empty JSON array, got:\n%s", out.String())
	}
}

func TestRunBenchUnknown(t *testing.T) {
	var out, errOut strings.Builder
	if code := run([]string{"-bench", "nosuch"}, &out, &errOut); code != 2 {
		t.Fatalf("exit %d for unknown benchmark, want 2", code)
	}
}
