// Package cachier is a from-scratch Go reproduction of "Cachier: A Tool for
// Automatically Inserting CICO Annotations" (Chilimbi & Larus, ICPP 1994).
//
// The system comprises a small SPMD shared-memory language (ParC), an
// execution-driven simulator of a Dir1SW cache-coherent machine in the
// style of the Wisconsin Wind Tunnel, and Cachier itself: a tool that
// combines a barrier-flushed miss trace with static program analysis to
// insert check-in/check-out (CICO) annotations, which the simulated memory
// system consumes as directives.
//
// See README.md for usage, DESIGN.md for the system inventory, and
// EXPERIMENTS.md for the paper-versus-reproduction results. The top-level
// bench_test.go regenerates every table and figure:
//
//	go test -bench=. -benchmem
package cachier
