package serve

import (
	"bytes"
	"context"
	"fmt"
	"net/http"
	"sync"
	"testing"
	"time"

	"cachier/internal/parcgen"
)

// gate lets a test hold every heavy pipeline execution open: the executing
// goroutine announces itself on entered and then blocks until release is
// closed.
type gate struct {
	entered chan struct{}
	release chan struct{}
}

func newGate(n int) *gate {
	return &gate{entered: make(chan struct{}, n), release: make(chan struct{})}
}

func (g *gate) hook() func() {
	return func() {
		g.entered <- struct{}{}
		<-g.release
	}
}

func (g *gate) waitEntered(t *testing.T) {
	t.Helper()
	select {
	case <-g.entered:
	case <-time.After(10 * time.Second):
		t.Fatal("no pipeline execution entered the gate")
	}
}

// TestSingleflightCollapse submits the same program from many goroutines at
// once while the pipeline execution is held open. Exactly one vet execution
// must run, and every response must be byte-identical and successful.
func TestSingleflightCollapse(t *testing.T) {
	const n = 16
	s, ts := newTestServer(t, DefaultConfig())
	g := newGate(n)
	s.eval.slow = g.hook()

	src := parcgen.Generate(11)
	req := &VetRequest{Source: src, Nodes: testNodes}

	var wg sync.WaitGroup
	codes := make([]int, n)
	bodies := make([][]byte, n)
	for i := 0; i < n; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			codes[i], _, bodies[i] = post(t, ts.URL+"/v1/vet", req)
		}(i)
	}
	// The leader is inside the pipeline; give the followers a moment to
	// pile onto its flight, then let it finish.
	g.waitEntered(t)
	time.Sleep(50 * time.Millisecond)
	close(g.release)
	wg.Wait()

	for i := 0; i < n; i++ {
		if codes[i] != http.StatusOK {
			t.Fatalf("request %d: status %d: %s", i, codes[i], bodies[i])
		}
		if !bytes.Equal(bodies[i], bodies[0]) {
			t.Fatalf("request %d: body diverges from request 0", i)
		}
	}
	snap := s.metrics.Snapshot()
	if got := snap[`pipeline_executions_total{phase="vet"}`]; got != 1 {
		t.Fatalf("vet executed %d times, want exactly 1", got)
	}
	// Any extra attempts past the gate would have shown up here too.
	if got := snap[`cache_misses_total{cache="response"}`]; got < 1 {
		t.Fatalf("expected at least one response-cache miss, got %d", got)
	}
}

// TestQueueFullBackpressure saturates a 1-worker, 0-queue server and checks
// that the overflow request is rejected immediately with 429 + Retry-After
// while the occupying request still completes.
func TestQueueFullBackpressure(t *testing.T) {
	s, ts := newTestServer(t, Config{Workers: 1, QueueDepth: -1})
	g := newGate(4)
	s.eval.slow = g.hook()

	type reply struct {
		code int
		body []byte
	}
	first := make(chan reply, 1)
	go func() {
		code, _, body := post(t, ts.URL+"/v1/vet", &VetRequest{Source: parcgen.Generate(21), Nodes: testNodes})
		first <- reply{code, body}
	}()
	g.waitEntered(t) // the only worker slot is now held open

	// A different program cannot join the first request's flight, needs a
	// pool slot, and the queue bound is zero: explicit 429 on arrival.
	body, err := MarshalResponse(&VetRequest{Source: parcgen.Generate(22), Nodes: testNodes})
	if err != nil {
		t.Fatal(err)
	}
	resp, err := http.Post(ts.URL+"/v1/vet", "application/json", bytes.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusTooManyRequests {
		t.Fatalf("overflow request: status %d, want 429", resp.StatusCode)
	}
	if resp.Header.Get("Retry-After") == "" {
		t.Fatal("429 response missing Retry-After")
	}

	close(g.release)
	r := <-first
	if r.code != http.StatusOK {
		t.Fatalf("occupying request: status %d: %s", r.code, r.body)
	}
	snap := s.metrics.Snapshot()
	if got := snap[`requests_total{endpoint="vet",code="429"}`]; got != 1 {
		t.Fatalf("429 counter = %d, want 1", got)
	}
}

// TestGracefulDrain holds a request in flight, starts Drain, and checks the
// three-way contract: new requests get 503, the in-flight request completes
// with 200, and Drain returns only after it does.
func TestGracefulDrain(t *testing.T) {
	s, ts := newTestServer(t, DefaultConfig())
	g := newGate(1)
	s.eval.slow = g.hook()

	type reply struct {
		code int
		body []byte
	}
	inflight := make(chan reply, 1)
	go func() {
		code, _, body := post(t, ts.URL+"/v1/vet", &VetRequest{Source: parcgen.Generate(31), Nodes: testNodes})
		inflight <- reply{code, body}
	}()
	g.waitEntered(t)

	drained := make(chan error, 1)
	go func() { drained <- s.Drain(context.Background()) }()
	for !s.Draining() {
		time.Sleep(time.Millisecond)
	}

	// New work is refused while draining.
	code, hdr, body := post(t, ts.URL+"/v1/vet", &VetRequest{Source: parcgen.Generate(32), Nodes: testNodes})
	if code != http.StatusServiceUnavailable {
		t.Fatalf("request during drain: status %d: %s", code, body)
	}
	if hdr.Get("Retry-After") == "" {
		t.Fatal("503 response missing Retry-After")
	}

	// Drain must still be waiting on the in-flight request.
	select {
	case err := <-drained:
		t.Fatalf("Drain returned before the in-flight request finished: %v", err)
	case <-time.After(50 * time.Millisecond):
	}

	close(g.release)
	r := <-inflight
	if r.code != http.StatusOK {
		t.Fatalf("in-flight request: status %d: %s", r.code, r.body)
	}
	select {
	case err := <-drained:
		if err != nil {
			t.Fatalf("Drain: %v", err)
		}
	case <-time.After(10 * time.Second):
		t.Fatal("Drain did not return after the in-flight request finished")
	}

	// A bounded Drain on an already-drained server returns immediately.
	ctx, cancel := context.WithTimeout(context.Background(), time.Second)
	defer cancel()
	if err := s.Drain(ctx); err != nil {
		t.Fatalf("second Drain: %v", err)
	}
}

// TestConcurrentMixedLoad hammers one server with distinct programs and a
// simulate fan-out from many goroutines; under -race this is the data-race
// probe for the shared caches and the batch path. Every response must match
// the library result bytes.
func TestConcurrentMixedLoad(t *testing.T) {
	_, ts := newTestServer(t, Config{Workers: 2, QueueDepth: 256})
	const seeds = 6
	var wg sync.WaitGroup
	errc := make(chan error, seeds*4)
	for i := 0; i < seeds; i++ {
		src := parcgen.Generate(int64(100 + i))
		vreq := &VetRequest{Source: src, Nodes: testNodes}
		sreq := &SimulateRequest{Source: src, Configs: []MachineSpec{
			{Nodes: testNodes},
			{Nodes: testNodes, Engine: EngineLanes},
		}}
		wantVet, err := EvalVet(vreq)
		if err != nil {
			t.Fatal(err)
		}
		wantVetBytes, _ := MarshalResponse(wantVet)
		wantSim, _, err := EvalSimulate(sreq)
		if err != nil {
			t.Fatal(err)
		}
		wantSimBytes, _ := MarshalResponse(wantSim)
		// Two rounds each so both cold and cached paths are exercised
		// concurrently.
		for round := 0; round < 2; round++ {
			wg.Add(2)
			go func() {
				defer wg.Done()
				code, _, body := post(t, ts.URL+"/v1/vet", vreq)
				if code != http.StatusOK || !bytes.Equal(body, wantVetBytes) {
					errc <- fmt.Errorf("vet: status %d or body divergence", code)
				}
			}()
			go func() {
				defer wg.Done()
				code, _, body := post(t, ts.URL+"/v1/simulate", sreq)
				if code != http.StatusOK || !bytes.Equal(body, wantSimBytes) {
					errc <- fmt.Errorf("simulate: status %d or body divergence", code)
				}
			}()
		}
	}
	wg.Wait()
	close(errc)
	for err := range errc {
		t.Error(err)
	}
}
