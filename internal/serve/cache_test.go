package serve

import (
	"context"
	"errors"
	"fmt"
	"sync"
	"sync/atomic"
	"testing"
	"time"
)

func TestLRUEviction(t *testing.T) {
	c := newLRU(3)
	for i := 0; i < 3; i++ {
		c.put(fmt.Sprint(i), i)
	}
	c.get("0") // refresh 0; 1 is now the least recently used
	c.put("3", 3)
	if _, ok := c.get("1"); ok {
		t.Error("LRU entry 1 survived eviction")
	}
	for _, k := range []string{"0", "2", "3"} {
		if _, ok := c.get(k); !ok {
			t.Errorf("entry %s evicted unexpectedly", k)
		}
	}
	if got := c.len(); got != 3 {
		t.Errorf("len = %d, want 3", got)
	}
	// Updating an existing key must not grow or evict.
	c.put("2", 22)
	if v, _ := c.get("2"); v != 22 {
		t.Errorf("updated entry = %v, want 22", v)
	}
	if got := c.len(); got != 3 {
		t.Errorf("len after update = %d, want 3", got)
	}
}

func TestFlightGroupCollapses(t *testing.T) {
	g := newFlightGroup()
	var runs atomic.Int64
	release := make(chan struct{})
	const n = 8
	var wg sync.WaitGroup
	sharedCount := atomic.Int64{}
	for i := 0; i < n; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			v, shared, err := g.do("k", func() (any, error) {
				runs.Add(1)
				<-release
				return "result", nil
			})
			if err != nil || v != "result" {
				t.Errorf("do: %v, %v", v, err)
			}
			if shared {
				sharedCount.Add(1)
			}
		}()
	}
	// Wait until the leader is inside fn, then give followers time to join.
	for runs.Load() == 0 {
		time.Sleep(time.Millisecond)
	}
	time.Sleep(20 * time.Millisecond)
	close(release)
	wg.Wait()
	if got := runs.Load(); got != 1 {
		t.Errorf("fn ran %d times, want 1", got)
	}
	if got := sharedCount.Load(); got != n-1 {
		t.Errorf("%d callers shared, want %d", got, n-1)
	}
	// Completed flights are forgotten: the next call runs fn again.
	_, shared, _ := g.do("k", func() (any, error) { runs.Add(1); return nil, nil })
	if shared || runs.Load() != 2 {
		t.Errorf("post-completion call shared=%v runs=%d, want a fresh execution", shared, runs.Load())
	}
}

func TestFlightGroupErrorSharing(t *testing.T) {
	g := newFlightGroup()
	boom := errors.New("boom")
	_, _, err := g.do("k", func() (any, error) { return nil, boom })
	if !errors.Is(err, boom) {
		t.Errorf("leader error = %v, want boom", err)
	}
}

func TestPoolBackpressure(t *testing.T) {
	p := newPool(1, 1)
	ctx := context.Background()
	if err := p.acquire(ctx); err != nil {
		t.Fatalf("first acquire: %v", err)
	}
	if got := p.busy(); got != 1 {
		t.Errorf("busy = %d, want 1", got)
	}

	// One caller may queue; it blocks until the slot frees.
	queued := make(chan error, 1)
	go func() { queued <- p.acquire(ctx) }()
	for p.depth() == 0 {
		time.Sleep(time.Millisecond)
	}

	// The queue is now full: the next caller fails fast.
	if err := p.acquire(ctx); !errors.Is(err, errBusy) {
		t.Fatalf("overflow acquire = %v, want errBusy", err)
	}

	p.release()
	if err := <-queued; err != nil {
		t.Fatalf("queued acquire: %v", err)
	}
	p.release()
}

func TestPoolContextCancellation(t *testing.T) {
	p := newPool(1, 4)
	if err := p.acquire(context.Background()); err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	done := make(chan error, 1)
	go func() { done <- p.acquire(ctx) }()
	for p.depth() == 0 {
		time.Sleep(time.Millisecond)
	}
	cancel()
	if err := <-done; !errors.Is(err, context.Canceled) {
		t.Fatalf("cancelled acquire = %v, want context.Canceled", err)
	}
	if got := p.depth(); got != 0 {
		t.Errorf("depth after cancellation = %d, want 0", got)
	}
	p.release()
}
