package serve

import (
	"crypto/sha256"
	"encoding/hex"
	"fmt"

	"cachier/internal/parc"
)

// ProgramInfo is the parsed, checked, canonicalized form of a submitted
// ParC source — the content address every cache key in the service derives
// from. Two sources that differ only in formatting (whitespace, comments,
// string quoting) canonicalize to the same printed text and therefore the
// same hash; any semantic difference survives parc.Print and changes it.
type ProgramInfo struct {
	// Hash is the hex sha256 of the canonical printed form.
	Hash string
	// Canonical is parc.Print of the checked AST. Annotation rewrites this
	// text, so annotated responses are canonically formatted regardless of
	// the submitted formatting.
	Canonical string
	// Prog is the AST parsed back from Canonical, so statement IDs and
	// positions always refer to the canonical text. It is shared by
	// read-only analyses (vet); phases that execute the program take a
	// private copy via FreshProg.
	Prog *parc.Program
}

// FreshProg re-parses the canonical text into a private AST. The simulator
// and the static inferrer back-fill memory-layout state (SharedDecl.BaseAddr
// via memory.New) into the AST they run, so concurrently executing phases
// must each get their own copy; the shared Prog is for read-only analyses.
func (pi *ProgramInfo) FreshProg() (*parc.Program, error) {
	prog, err := parc.Parse(pi.Canonical)
	if err != nil {
		return nil, fmt.Errorf("serve: canonical form does not re-parse: %w", err)
	}
	if err := parc.Check(prog); err != nil {
		return nil, fmt.Errorf("serve: canonical form does not check: %w", err)
	}
	return prog, nil
}

// CanonicalProgram parses and checks src, canonicalizes it, and content-
// addresses the result. Errors are front-end diagnostics suitable for a
// 400 response.
func CanonicalProgram(src string) (*ProgramInfo, error) {
	prog, err := parc.Parse(src)
	if err != nil {
		return nil, err
	}
	if err := parc.Check(prog); err != nil {
		return nil, err
	}
	canon := parc.Print(prog)
	// Reparse so the cached AST's statement IDs agree with the canonical
	// text that core.Annotate will parse for rewriting.
	cprog, err := parc.Parse(canon)
	if err != nil {
		return nil, fmt.Errorf("serve: canonical form does not re-parse: %w", err)
	}
	if err := parc.Check(cprog); err != nil {
		return nil, fmt.Errorf("serve: canonical form does not check: %w", err)
	}
	sum := sha256.Sum256([]byte(canon))
	return &ProgramInfo{Hash: hex.EncodeToString(sum[:]), Canonical: canon, Prog: cprog}, nil
}

// contentID derives a short content-addressed identifier (e.g. a snapshot
// ID) from its parts.
func contentID(parts ...string) string {
	h := sha256.New()
	for _, p := range parts {
		h.Write([]byte(p))
		h.Write([]byte{0})
	}
	return hex.EncodeToString(h.Sum(nil))[:32]
}

// cacheKey joins key parts with an unambiguous separator.
func cacheKey(parts ...string) string {
	out := make([]byte, 0, 64)
	for i, p := range parts {
		if i > 0 {
			out = append(out, 0)
		}
		out = append(out, p...)
	}
	return string(out)
}
