package serve

import (
	"context"
	"errors"
	"fmt"
	"io"
	"net/http"
	"runtime"
	"sync"
	"sync/atomic"
	"time"

	"cachier/internal/obs"
)

// Config sizes the server's concurrency and caches.
type Config struct {
	// Workers bounds concurrently executing heavy pipeline phases
	// (trace/annotate/simulate/vet). Default: GOMAXPROCS.
	Workers int
	// QueueDepth bounds how many phase executions may wait for a worker
	// slot before new arrivals are rejected with 429. Default 64.
	QueueDepth int
	// RequestTimeout is the per-request deadline, covering queue wait and
	// pipeline execution. Default 60s.
	RequestTimeout time.Duration
	// CacheEntries is each content-addressed cache's entry capacity.
	// Default 512.
	CacheEntries int
	// MaxBodyBytes bounds a request body. Default 4 MiB.
	MaxBodyBytes int64
}

// DefaultConfig returns the production defaults.
func DefaultConfig() Config {
	return Config{
		Workers:        runtime.GOMAXPROCS(0),
		QueueDepth:     64,
		RequestTimeout: 60 * time.Second,
		CacheEntries:   512,
		MaxBodyBytes:   4 << 20,
	}
}

func (c Config) withDefaults() Config {
	d := DefaultConfig()
	if c.Workers <= 0 {
		c.Workers = d.Workers
	}
	if c.QueueDepth == 0 {
		c.QueueDepth = d.QueueDepth
	}
	if c.QueueDepth < 0 {
		c.QueueDepth = 0
	}
	if c.RequestTimeout <= 0 {
		c.RequestTimeout = d.RequestTimeout
	}
	if c.CacheEntries <= 0 {
		c.CacheEntries = d.CacheEntries
	}
	if c.MaxBodyBytes <= 0 {
		c.MaxBodyBytes = d.MaxBodyBytes
	}
	return c
}

// Server is the annotation-as-a-service front end: an http.Handler exposing
// the pipeline endpoints over the cached, pooled evaluator. Create one with
// New, mount Handler on an http.Server, and call Drain before exit.
type Server struct {
	cfg      Config
	eval     *evaluator
	resp     *lruCache // (endpoint, program hash, options) → response bytes
	metrics  *obs.Metrics
	mux      *http.ServeMux
	draining atomic.Bool
	inflight sync.WaitGroup
}

// New builds a Server with its caches, worker pool, and routes.
func New(cfg Config) *Server {
	cfg = cfg.withDefaults()
	m := obs.NewMetrics()
	p := newPool(cfg.Workers, cfg.QueueDepth)
	s := &Server{
		cfg: cfg,
		eval: &evaluator{
			programs: newLRU(cfg.CacheEntries),
			vets:     newLRU(cfg.CacheEntries),
			traces:   newLRU(cfg.CacheEntries),
			annos:    newLRU(cfg.CacheEntries),
			sims:     newLRU(cfg.CacheEntries),
			snaps:    newLRU(cfg.CacheEntries),
			flight:   newFlightGroup(),
			pool:     p,
			metrics:  m,
		},
		resp:    newLRU(4 * cfg.CacheEntries),
		metrics: m,
		mux:     http.NewServeMux(),
	}
	m.RegisterGauge("queue_depth", p.depth)
	m.RegisterGauge("workers_busy", p.busy)
	s.routes()
	return s
}

// Handler returns the server's root handler.
func (s *Server) Handler() http.Handler { return s.mux }

// Metrics exposes the server's metrics registry (also rendered at
// /metrics); tests and cmd/cachierd's shutdown dump read it directly.
func (s *Server) Metrics() *obs.Metrics { return s.metrics }

// Drain stops accepting new requests (everything but /metrics answers 503)
// and waits for in-flight requests to complete or ctx to expire. Call it
// before http.Server.Shutdown so clients see explicit draining rather than
// connection resets.
func (s *Server) Drain(ctx context.Context) error {
	s.draining.Store(true)
	done := make(chan struct{})
	go func() {
		s.inflight.Wait()
		close(done)
	}()
	select {
	case <-done:
		return nil
	case <-ctx.Done():
		return fmt.Errorf("serve: drain: %w", ctx.Err())
	}
}

// Draining reports whether Drain has been called.
func (s *Server) Draining() bool { return s.draining.Load() }

func (s *Server) routes() {
	s.mux.HandleFunc("POST /v1/annotate", s.postHandler("annotate", s.buildAnnotate(false)))
	s.mux.HandleFunc("POST /v1/static", s.postHandler("static", s.buildAnnotate(true)))
	s.mux.HandleFunc("POST /v1/vet", s.postHandler("vet", s.buildVet))
	s.mux.HandleFunc("POST /v1/simulate", s.postHandler("simulate", s.buildSimulate))
	s.mux.HandleFunc("GET /v1/snapshot/{id}", s.handleSnapshot)
	s.mux.HandleFunc("GET /healthz", s.handleHealthz)
	s.mux.HandleFunc("GET /metrics", s.handleMetrics)
}

// builder turns a decoded request body into a response cache key and a
// compute closure. Key derivation is cheap (at most a cached parse); the
// closure is the expensive part that caching and singleflight collapse.
type builder func(ctx context.Context, body []byte) (key string, compute func(context.Context) ([]byte, error), err error)

// postHandler wires one POST endpoint: draining check, body bound, timing,
// response cache + singleflight, error mapping, and counters.
func (s *Server) postHandler(endpoint string, build builder) http.HandlerFunc {
	return func(w http.ResponseWriter, r *http.Request) {
		start := time.Now()
		if s.draining.Load() {
			s.finish(w, endpoint, start, "", nil, &apiError{code: http.StatusServiceUnavailable, msg: "server is draining"})
			return
		}
		s.inflight.Add(1)
		defer s.inflight.Done()

		ctx, cancel := context.WithTimeout(r.Context(), s.cfg.RequestTimeout)
		defer cancel()

		body, err := io.ReadAll(http.MaxBytesReader(w, r.Body, s.cfg.MaxBodyBytes))
		if err != nil {
			s.finish(w, endpoint, start, "", nil, &apiError{code: http.StatusRequestEntityTooLarge, msg: err.Error()})
			return
		}
		key, compute, err := build(ctx, body)
		if err != nil {
			s.finish(w, endpoint, start, "", nil, err)
			return
		}
		key = cacheKey(endpoint, key)
		if data, ok := s.resp.get(key); ok {
			s.metrics.Inc(`cache_hits_total{cache="response"}`)
			s.finish(w, endpoint, start, "hit", data.([]byte), nil)
			return
		}
		s.metrics.Inc(`cache_misses_total{cache="response"}`)
		v, shared, err := s.eval.flight.do(cacheKey("resp", key), func() (any, error) {
			data, err := compute(ctx)
			if err != nil {
				return nil, err
			}
			s.resp.put(key, data)
			return data, nil
		})
		status := "miss"
		if shared {
			status = "flight"
			s.metrics.Inc("singleflight_shared_total")
		}
		if err != nil {
			s.finish(w, endpoint, start, "", nil, err)
			return
		}
		s.finish(w, endpoint, start, status, v.([]byte), nil)
	}
}

// finish writes the response (success or mapped error) and records metrics.
func (s *Server) finish(w http.ResponseWriter, endpoint string, start time.Time, cacheStatus string, data []byte, err error) {
	code := http.StatusOK
	if err != nil {
		var ae *apiError
		switch {
		case errors.As(err, &ae):
			code = ae.code
		case errors.Is(err, errBusy):
			code = http.StatusTooManyRequests
		case errors.Is(err, context.DeadlineExceeded), errors.Is(err, context.Canceled):
			code = http.StatusServiceUnavailable
		default:
			code = http.StatusInternalServerError
		}
		data, _ = MarshalResponse(&ErrorResponse{Error: err.Error()})
	}
	w.Header().Set("Content-Type", "application/json")
	if cacheStatus != "" {
		w.Header().Set("X-Cachier-Cache", cacheStatus)
	}
	if code == http.StatusTooManyRequests || code == http.StatusServiceUnavailable {
		w.Header().Set("Retry-After", "1")
	}
	w.WriteHeader(code)
	w.Write(data)
	s.metrics.Inc(fmt.Sprintf("requests_total{endpoint=%q,code=\"%d\"}", endpoint, code))
	s.metrics.Observe(fmt.Sprintf("latency_us{endpoint=%q}", endpoint), uint64(time.Since(start).Microseconds()))
}

// buildAnnotate serves /v1/annotate (trace-driven) and /v1/static.
func (s *Server) buildAnnotate(static bool) builder {
	return func(ctx context.Context, body []byte) (string, func(context.Context) ([]byte, error), error) {
		var req AnnotateRequest
		if err := unmarshalRequest(body, &req); err != nil {
			return "", nil, err
		}
		_, styleName, err := parseStyle(req.Style)
		if err != nil {
			return "", nil, err
		}
		machine, err := req.Machine.resolved()
		if err != nil {
			return "", nil, err
		}
		pi, err := s.eval.program(req.Source)
		if err != nil {
			return "", nil, err
		}
		key := cacheKey(pi.Hash, styleName, fmt.Sprintf("p%v.s%v", req.Prefetch, static), machine.key())
		return key, func(ctx context.Context) ([]byte, error) {
			resp, err := s.eval.annotate(ctx, &req, static)
			if err != nil {
				return nil, err
			}
			return MarshalResponse(resp)
		}, nil
	}
}

func (s *Server) buildVet(ctx context.Context, body []byte) (string, func(context.Context) ([]byte, error), error) {
	var req VetRequest
	if err := unmarshalRequest(body, &req); err != nil {
		return "", nil, err
	}
	nodes := req.Nodes
	if nodes == 0 {
		nodes = defaultNodes()
	}
	if nodes < 1 || nodes > 1024 {
		return "", nil, &apiError{code: 400, msg: fmt.Sprintf("nodes %d out of range [1,1024]", nodes)}
	}
	pi, err := s.eval.program(req.Source)
	if err != nil {
		return "", nil, err
	}
	key := cacheKey(pi.Hash, fmt.Sprint(nodes))
	return key, func(ctx context.Context) ([]byte, error) {
		fs, err := s.eval.vet(ctx, pi, nodes)
		if err != nil {
			return nil, err
		}
		return MarshalResponse(&VetResponse{ProgramHash: pi.Hash, Nodes: nodes, Findings: fs})
	}, nil
}

func (s *Server) buildSimulate(ctx context.Context, body []byte) (string, func(context.Context) ([]byte, error), error) {
	var req SimulateRequest
	if err := unmarshalRequest(body, &req); err != nil {
		return "", nil, err
	}
	pi, err := s.eval.program(req.Source)
	if err != nil {
		return "", nil, err
	}
	configs := req.Configs
	if len(configs) == 0 {
		configs = []MachineSpec{{}}
	}
	keyParts := []string{pi.Hash}
	for _, c := range configs {
		rc, err := c.resolved()
		if err != nil {
			return "", nil, err
		}
		keyParts = append(keyParts, rc.key())
	}
	return cacheKey(keyParts...), func(ctx context.Context) ([]byte, error) {
		resp, _, err := s.eval.simulate(ctx, &req)
		if err != nil {
			return nil, err
		}
		return MarshalResponse(resp)
	}, nil
}

func (s *Server) handleSnapshot(w http.ResponseWriter, r *http.Request) {
	start := time.Now()
	if s.draining.Load() {
		s.finish(w, "snapshot", start, "", nil, &apiError{code: http.StatusServiceUnavailable, msg: "server is draining"})
		return
	}
	s.inflight.Add(1)
	defer s.inflight.Done()
	id := r.PathValue("id")
	if v, ok := s.eval.snaps.get(id); ok {
		s.metrics.Inc(`cache_hits_total{cache="snapshot"}`)
		s.finish(w, "snapshot", start, "hit", v.([]byte), nil)
		return
	}
	s.finish(w, "snapshot", start, "", nil,
		&apiError{code: http.StatusNotFound, msg: fmt.Sprintf("unknown snapshot %q (snapshots are published by /v1/simulate and bounded by the cache)", id)})
}

func (s *Server) handleHealthz(w http.ResponseWriter, r *http.Request) {
	w.Header().Set("Content-Type", "application/json")
	if s.draining.Load() {
		w.WriteHeader(http.StatusServiceUnavailable)
		io.WriteString(w, "{\n  \"status\": \"draining\"\n}\n")
		return
	}
	io.WriteString(w, "{\n  \"status\": \"ok\"\n}\n")
}

func (s *Server) handleMetrics(w http.ResponseWriter, r *http.Request) {
	w.Header().Set("Content-Type", "text/plain; version=0.0.4")
	s.metrics.WriteText(w)
}

// unmarshalRequest decodes a JSON request body as a 400 on failure.
func unmarshalRequest(body []byte, v any) error {
	if err := jsonUnmarshal(body, v); err != nil {
		return &apiError{code: 400, msg: fmt.Sprintf("bad request body: %v", err)}
	}
	return nil
}
