package serve

import (
	"bytes"
	"context"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"cachier/internal/bench"
	"cachier/internal/parcgen"
)

var update = flag.Bool("update", false, "rewrite golden files")

// goldenSeed is the fixed corpus seed the API goldens pin; testNodes is the
// conformance harness's machine size (generated programs partition by 4).
const (
	goldenSeed = 7
	testNodes  = 4
)

func checkGolden(t *testing.T, name string, got []byte) {
	t.Helper()
	path := filepath.Join("testdata", name)
	if *update {
		if err := os.WriteFile(path, got, 0o644); err != nil {
			t.Fatal(err)
		}
		return
	}
	want, err := os.ReadFile(path)
	if err != nil {
		t.Fatalf("%v (run with -update to create it)", err)
	}
	if !bytes.Equal(got, want) {
		t.Errorf("%s mismatch (re-run with -update if the change is intended)\n--- got ---\n%s\n--- want ---\n%s",
			name, got, want)
	}
}

// jacobiSource is the unannotated Jacobi worked example on its default
// 4-node instance.
func jacobiSource() string {
	return bench.JacobiUnannotated(bench.JacobiParams)
}

func newTestServer(t *testing.T, cfg Config) (*Server, *httptest.Server) {
	t.Helper()
	s := New(cfg)
	ts := httptest.NewServer(s.Handler())
	t.Cleanup(ts.Close)
	return s, ts
}

// post sends one JSON request and returns the status, headers, and body.
func post(t *testing.T, url string, req any) (int, http.Header, []byte) {
	t.Helper()
	body, err := json.Marshal(req)
	if err != nil {
		t.Fatal(err)
	}
	resp, err := http.Post(url, "application/json", bytes.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	data, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	return resp.StatusCode, resp.Header, data
}

func get(t *testing.T, url string) (int, []byte) {
	t.Helper()
	resp, err := http.Get(url)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	data, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	return resp.StatusCode, data
}

// TestGoldenEndpoints pins one golden response per endpoint for the fixed
// corpus seed and for the Jacobi example, and checks the full serving
// contract on each: the HTTP body must equal the in-process library result
// byte for byte, and an immediately repeated request must be a cache hit
// with an identical body.
func TestGoldenEndpoints(t *testing.T) {
	_, ts := newTestServer(t, DefaultConfig())
	sources := []struct {
		name string
		src  string
	}{
		{"seed7", parcgen.Generate(goldenSeed)},
		{"jacobi", jacobiSource()},
	}
	for _, sc := range sources {
		machine := MachineSpec{Nodes: testNodes}
		annReq := &AnnotateRequest{Source: sc.src, Prefetch: true, Machine: machine}
		simReq := &SimulateRequest{Source: sc.src, Configs: []MachineSpec{
			{Nodes: testNodes},
			{Nodes: testNodes, Engine: EngineLanes},
			{Nodes: testNodes, Protocol: "dirnnb:4"},
		}}
		vetReq := &VetRequest{Source: sc.src, Nodes: testNodes}

		wantAnn, err := EvalAnnotate(annReq)
		if err != nil {
			t.Fatalf("%s: EvalAnnotate: %v", sc.name, err)
		}
		wantStatic, err := EvalStatic(annReq)
		if err != nil {
			t.Fatalf("%s: EvalStatic: %v", sc.name, err)
		}
		wantVet, err := EvalVet(vetReq)
		if err != nil {
			t.Fatalf("%s: EvalVet: %v", sc.name, err)
		}
		wantSim, wantSnaps, err := EvalSimulate(simReq)
		if err != nil {
			t.Fatalf("%s: EvalSimulate: %v", sc.name, err)
		}

		cases := []struct {
			endpoint string
			req      any
			want     any
		}{
			{"annotate", annReq, wantAnn},
			{"static", annReq, wantStatic},
			{"vet", vetReq, wantVet},
			{"simulate", simReq, wantSim},
		}
		for _, c := range cases {
			t.Run(c.endpoint+"_"+sc.name, func(t *testing.T) {
				wantBytes, err := MarshalResponse(c.want)
				if err != nil {
					t.Fatal(err)
				}
				url := ts.URL + "/v1/" + c.endpoint
				code, hdr, body := post(t, url, c.req)
				if code != http.StatusOK {
					t.Fatalf("status %d: %s", code, body)
				}
				if !bytes.Equal(body, wantBytes) {
					t.Fatalf("HTTP body diverges from library result\n--- http ---\n%s\n--- library ---\n%s", body, wantBytes)
				}
				if got := hdr.Get("X-Cachier-Cache"); got != "miss" && got != "flight" {
					t.Fatalf("cold response cache status %q", got)
				}
				checkGolden(t, fmt.Sprintf("%s_%s.golden.json", c.endpoint, sc.name), body)

				// Cached repeat: byte-identical body, hit status.
				code2, hdr2, body2 := post(t, url, c.req)
				if code2 != http.StatusOK {
					t.Fatalf("repeat status %d", code2)
				}
				if hdr2.Get("X-Cachier-Cache") != "hit" {
					t.Fatalf("repeat cache status %q, want hit", hdr2.Get("X-Cachier-Cache"))
				}
				if !bytes.Equal(body, body2) {
					t.Fatalf("cached response differs from cold response")
				}
			})
		}

		// Every snapshot the simulate response references must be served
		// byte-identically to the library's snapshot bytes.
		t.Run("snapshot_"+sc.name, func(t *testing.T) {
			for _, r := range wantSim.Results {
				code, body := get(t, ts.URL+"/v1/snapshot/"+r.SnapshotID)
				if code != http.StatusOK {
					t.Fatalf("snapshot %s: status %d: %s", r.SnapshotID, code, body)
				}
				if !bytes.Equal(body, wantSnaps[r.SnapshotID]) {
					t.Fatalf("snapshot %s diverges from library bytes", r.SnapshotID)
				}
			}
		})
	}
}

// TestFormattingInvariantCache pins the content-addressing contract at the
// HTTP layer: a formatting-only rewrite of the program (comments, blank
// lines) is a response-cache hit on first submission, because every key
// derives from the canonical AST print.
func TestFormattingInvariantCache(t *testing.T) {
	_, ts := newTestServer(t, DefaultConfig())
	src := parcgen.Generate(3)
	reformatted := "// a formatting-only rewrite\n\n" + src + "\n/* trailing comment */\n"

	url := ts.URL + "/v1/vet"
	code, _, body := post(t, url, &VetRequest{Source: src, Nodes: testNodes})
	if code != http.StatusOK {
		t.Fatalf("status %d: %s", code, body)
	}
	code2, hdr2, body2 := post(t, url, &VetRequest{Source: reformatted, Nodes: testNodes})
	if code2 != http.StatusOK {
		t.Fatalf("status %d: %s", code2, body2)
	}
	if hdr2.Get("X-Cachier-Cache") != "hit" {
		t.Fatalf("reformatted submission cache status %q, want hit", hdr2.Get("X-Cachier-Cache"))
	}
	if !bytes.Equal(body, body2) {
		t.Fatalf("reformatted submission changed the response")
	}
}

// TestErrorResponses covers the 4xx surface: malformed JSON, programs the
// front end rejects, bad machine specs, unknown snapshots.
func TestErrorResponses(t *testing.T) {
	_, ts := newTestServer(t, DefaultConfig())
	checkErr := func(name string, code, wantCode int, body []byte) {
		t.Helper()
		if code != wantCode {
			t.Fatalf("%s: status %d, want %d (%s)", name, code, wantCode, body)
		}
		var er ErrorResponse
		if err := json.Unmarshal(body, &er); err != nil || er.Error == "" {
			t.Fatalf("%s: body is not an error response: %s", name, body)
		}
	}

	resp, err := http.Post(ts.URL+"/v1/annotate", "application/json", strings.NewReader("{nope"))
	if err != nil {
		t.Fatal(err)
	}
	data, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	checkErr("malformed body", resp.StatusCode, 400, data)

	code, _, body := post(t, ts.URL+"/v1/annotate", &AnnotateRequest{Source: "func main() { nope"})
	checkErr("parse error", code, 400, body)

	code, _, body = post(t, ts.URL+"/v1/annotate", &AnnotateRequest{Source: parcgen.Generate(1), Style: "bogus"})
	checkErr("bad style", code, 400, body)

	code, _, body = post(t, ts.URL+"/v1/simulate", &SimulateRequest{
		Source:  parcgen.Generate(1),
		Configs: []MachineSpec{{Nodes: testNodes, Engine: "warp"}},
	})
	checkErr("bad engine", code, 400, body)

	code, _, body = post(t, ts.URL+"/v1/simulate", &SimulateRequest{
		Source:  parcgen.Generate(1),
		Configs: []MachineSpec{{Nodes: testNodes, Protocol: "dir9000"}},
	})
	checkErr("bad protocol", code, 400, body)

	code, body = get(t, ts.URL+"/v1/snapshot/deadbeef")
	checkErr("unknown snapshot", code, 404, body)
}

// TestHealthzAndMetrics covers the operational endpoints, including the
// draining flip.
func TestHealthzAndMetrics(t *testing.T) {
	s, ts := newTestServer(t, DefaultConfig())
	code, body := get(t, ts.URL+"/healthz")
	if code != http.StatusOK || !bytes.Contains(body, []byte(`"ok"`)) {
		t.Fatalf("healthz: %d %s", code, body)
	}

	// One request so the counters are non-empty.
	post(t, ts.URL+"/v1/vet", &VetRequest{Source: parcgen.Generate(2), Nodes: testNodes})
	code, body = get(t, ts.URL+"/metrics")
	if code != http.StatusOK {
		t.Fatalf("metrics: %d", code)
	}
	for _, want := range []string{
		`requests_total{endpoint="vet",code="200"} 1`,
		`pipeline_executions_total{phase="vet"} 1`,
		"queue_depth 0",
	} {
		if !bytes.Contains(body, []byte(want)) {
			t.Fatalf("metrics missing %q:\n%s", want, body)
		}
	}

	if err := s.Drain(context.Background()); err != nil {
		t.Fatal(err)
	}
	code, body = get(t, ts.URL+"/healthz")
	if code != http.StatusServiceUnavailable || !bytes.Contains(body, []byte("draining")) {
		t.Fatalf("draining healthz: %d %s", code, body)
	}
}
