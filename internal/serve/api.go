// Package serve wraps the whole Cachier pipeline — parse → vet → trace →
// annotate → simulate → stats — in a long-running HTTP service:
//
//	POST /v1/annotate      trace-driven CICO annotation of a ParC program
//	POST /v1/static        trace-free (statically inferred) annotation
//	POST /v1/vet           static race detection + CICO lint
//	POST /v1/simulate      simulation of the program as given, batched over
//	                       one or more machine configs
//	GET  /v1/snapshot/{id} structured stats snapshot of a simulate result
//	GET  /healthz          liveness (503 while draining)
//	GET  /metrics          Prometheus-style text metrics
//
// The pipeline itself is deterministic, so every response is a pure
// function of the request. The server exploits that with content-addressed
// caching (program hash → AST/vet/trace, (program, config) hash →
// annotation/simulation), singleflight collapsing of concurrent identical
// submissions, a bounded worker pool with per-request deadlines, and
// explicit backpressure (429 + Retry-After at the queue bound). Cached
// responses are byte-identical to cold ones — the cache status travels in
// the X-Cachier-Cache header, never in the body.
//
// The Eval* functions are the in-process library path: they compute exactly
// the response a server would send, with no caches or pools, and are what
// cmd/cachierload replays the conformance corpus against.
package serve

import (
	"encoding/json"
	"fmt"

	"cachier/internal/coherence"
	"cachier/internal/core"
	"cachier/internal/sim"
)

// MachineSpec selects the simulated machine for a request. Zero values mean
// the simulator's defaults (32 nodes, 256 KB 4-way caches, 32-byte blocks,
// Dir1SW, sequential engine).
type MachineSpec struct {
	Nodes     int    `json:"nodes,omitempty"`
	CacheSize int    `json:"cache_size,omitempty"`
	Assoc     int    `json:"assoc,omitempty"`
	BlockSize int    `json:"block_size,omitempty"`
	Protocol  string `json:"protocol,omitempty"` // "dir1sw", "dirnnb[:n]", "dirnb[:n]"
	Engine    string `json:"engine,omitempty"`   // "sequential", "lanes", "parallel"
}

// Engine names accepted by MachineSpec.Engine.
const (
	EngineSequential = "sequential"
	EngineLanes      = "lanes"
	EngineParallel   = "parallel"
)

// resolved fills defaults and validates the spec; the returned spec is
// fully explicit, so its JSON form is a canonical cache-key component.
func (m MachineSpec) resolved() (MachineSpec, error) {
	d := sim.DefaultConfig()
	if m.Nodes == 0 {
		m.Nodes = d.Nodes
	}
	if m.CacheSize == 0 {
		m.CacheSize = d.CacheSize
	}
	if m.Assoc == 0 {
		m.Assoc = d.Assoc
	}
	if m.BlockSize == 0 {
		m.BlockSize = d.BlockSize
	}
	if m.Nodes < 1 || m.Nodes > 1024 {
		return m, &apiError{code: 400, msg: fmt.Sprintf("nodes %d out of range [1,1024]", m.Nodes)}
	}
	if m.CacheSize < m.BlockSize || m.BlockSize < 8 {
		return m, &apiError{code: 400, msg: "cache_size/block_size out of range"}
	}
	spec, err := coherence.ParseSpec(m.Protocol)
	if err != nil {
		return m, &apiError{code: 400, msg: err.Error()}
	}
	m.Protocol = specString(spec)
	switch m.Engine {
	case "":
		m.Engine = EngineSequential
	case EngineSequential, EngineLanes, EngineParallel:
	default:
		return m, &apiError{code: 400, msg: fmt.Sprintf("unknown engine %q", m.Engine)}
	}
	return m, nil
}

// specString canonicalizes a parsed protocol spec ("dirnnb" → "dirnnb:4").
func specString(s coherence.Spec) string {
	if s.Name == coherence.SpecDir1SW {
		return s.Name
	}
	return fmt.Sprintf("%s:%d", s.Name, s.N)
}

// simConfig builds the simulator config for a resolved spec.
func (m MachineSpec) simConfig(mode sim.Mode) sim.Config {
	cfg := sim.DefaultConfig()
	cfg.Nodes = m.Nodes
	cfg.CacheSize = m.CacheSize
	cfg.Assoc = m.Assoc
	cfg.BlockSize = m.BlockSize
	cfg.Protocol = m.Protocol
	cfg.Mode = mode
	switch m.Engine {
	case EngineLanes:
		cfg.Lanes = true
	case EngineParallel:
		cfg.Parallel = sim.ParallelAuto
	}
	return cfg
}

// key is the spec's canonical cache-key form (the spec must be resolved).
func (m MachineSpec) key() string {
	return fmt.Sprintf("n%d.c%d.a%d.b%d.%s.%s", m.Nodes, m.CacheSize, m.Assoc, m.BlockSize, m.Protocol, m.Engine)
}

// AnnotateRequest asks for CICO annotation of Source. The same shape serves
// /v1/annotate (trace-driven: the program is traced on Machine, then
// annotated) and /v1/static (the trace is inferred statically; no
// simulation runs).
type AnnotateRequest struct {
	Source   string      `json:"source"`
	Style    string      `json:"style,omitempty"` // "performance" (default) or "programmer"
	Prefetch bool        `json:"prefetch,omitempty"`
	Machine  MachineSpec `json:"machine"`
}

// ConflictReport is one data race or false sharing flag from placement.
type ConflictReport struct {
	Kind  string `json:"kind"`
	Var   string `json:"var"`
	Pos   string `json:"pos,omitempty"`
	Epoch int    `json:"epoch"`
	Addrs int    `json:"addrs"`
}

// CostSummary is the CICO cost model's communication summary.
type CostSummary struct {
	CoX       uint64 `json:"co_x"`
	CoS       uint64 `json:"co_s"`
	CI        uint64 `json:"ci"`
	ModelCost uint64 `json:"model_cost"`
}

// AnnotateResponse is the annotated program plus placement metadata.
// Annotated is canonically formatted (the service canonicalizes Source
// before the pipeline; formatting-only changes to Source are cache hits).
type AnnotateResponse struct {
	ProgramHash string           `json:"program_hash"`
	Style       string           `json:"style"`
	Prefetch    bool             `json:"prefetch"`
	Static      bool             `json:"static"`
	Annotated   string           `json:"annotated"`
	Annotations int              `json:"annotations"`
	Reports     []ConflictReport `json:"reports,omitempty"`
	Cost        CostSummary      `json:"cost"`
	// Exact and Notes are set by /v1/static: Exact means the inferred
	// trace reconstructs the simulation's exactly, so placement matches
	// the trace-driven pipeline byte for byte; otherwise the annotations
	// cover a superset of the dynamic footprint (see internal/staticanno).
	Exact *bool    `json:"exact,omitempty"`
	Notes []string `json:"notes,omitempty"`
}

// VetRequest asks for static race detection and CICO lint of Source.
type VetRequest struct {
	Source string `json:"source"`
	Nodes  int    `json:"nodes,omitempty"` // abstract machine size (default 32)
}

// VetFinding mirrors cmd/parcvet's JSON diagnostic schema.
type VetFinding struct {
	File     string `json:"file,omitempty"`
	Line     int    `json:"line"`
	Col      int    `json:"col"`
	Severity string `json:"severity"`
	Kind     string `json:"kind"`
	Var      string `json:"var,omitempty"`
	Epoch    int    `json:"epoch"`
	Nodes    []int  `json:"nodes,omitempty"`
	Msg      string `json:"msg"`
}

// VetResponse is the vet verdict; an empty Findings list means clean.
type VetResponse struct {
	ProgramHash string       `json:"program_hash"`
	Nodes       int          `json:"nodes"`
	Findings    []VetFinding `json:"findings"`
}

// SimulateRequest simulates Source exactly as given (CICO directives are
// honoured) on each config — the batched fan-out for one program × many
// machines/protocols/engines. An empty Configs list means one default
// machine.
type SimulateRequest struct {
	Source  string        `json:"source"`
	Configs []MachineSpec `json:"configs,omitempty"`
}

// SimResult is one config's simulation outcome. SnapshotID content-
// addresses the run's structured stats snapshot for GET /v1/snapshot/{id}.
type SimResult struct {
	Config     MachineSpec     `json:"config"`
	Cycles     uint64          `json:"cycles"`
	Barriers   int             `json:"barriers"`
	Engine     string          `json:"engine"`
	Protocol   string          `json:"protocol"`
	Stats      coherence.Stats `json:"stats"`
	Output     []string        `json:"output,omitempty"`
	SnapshotID string          `json:"snapshot_id"`
}

// SimulateResponse carries one result per requested config, in order.
type SimulateResponse struct {
	ProgramHash string      `json:"program_hash"`
	Results     []SimResult `json:"results"`
}

// ErrorResponse is the body of every non-2xx response.
type ErrorResponse struct {
	Error string `json:"error"`
}

// apiError carries an HTTP status through the pipeline; anything else is a
// 500.
type apiError struct {
	code int
	msg  string
}

func (e *apiError) Error() string { return e.msg }

// badRequest wraps a front-end diagnostic as a 400.
func badRequest(err error) error {
	if err == nil {
		return nil
	}
	return &apiError{code: 400, msg: err.Error()}
}

// MarshalResponse renders a response body exactly as the server does:
// indented JSON with a trailing newline. cmd/cachierload marshals its
// in-process library results through this same function, so equivalence
// checks compare bytes, not structures.
func MarshalResponse(v any) ([]byte, error) {
	data, err := json.MarshalIndent(v, "", "  ")
	if err != nil {
		return nil, err
	}
	return append(data, '\n'), nil
}

// jsonUnmarshal is encoding/json's Unmarshal behind a name the HTTP layer
// shares.
func jsonUnmarshal(data []byte, v any) error { return json.Unmarshal(data, v) }

// defaultNodes is the default abstract machine size for /v1/vet.
func defaultNodes() int { return sim.DefaultConfig().Nodes }

// parseStyle maps the request's style string to core's enum.
func parseStyle(s string) (core.Style, string, error) {
	switch s {
	case "", "performance":
		return core.StylePerformance, "performance", nil
	case "programmer":
		return core.StyleProgrammer, "programmer", nil
	}
	return 0, "", &apiError{code: 400, msg: fmt.Sprintf("unknown style %q", s)}
}
