// Bounded LRU cache, singleflight group, and admission-bounded worker pool:
// the three concurrency primitives behind the service. All are dependency-
// free so the serving layer stays inside the standard library.
package serve

import (
	"container/list"
	"context"
	"errors"
	"sync"
	"sync/atomic"
)

// lruCache is a mutex-guarded LRU map with a fixed entry capacity. Values
// are immutable once inserted (the pipeline caches parsed programs, traces,
// and marshaled response bytes — none are ever mutated after publication),
// so readers share them without copying.
type lruCache struct {
	mu    sync.Mutex
	cap   int
	order *list.List // front = most recently used; values are *lruEntry
	items map[string]*list.Element
}

type lruEntry struct {
	key string
	val any
}

func newLRU(capacity int) *lruCache {
	if capacity <= 0 {
		capacity = 1
	}
	return &lruCache{cap: capacity, order: list.New(), items: make(map[string]*list.Element)}
}

func (c *lruCache) get(key string) (any, bool) {
	c.mu.Lock()
	defer c.mu.Unlock()
	el, ok := c.items[key]
	if !ok {
		return nil, false
	}
	c.order.MoveToFront(el)
	return el.Value.(*lruEntry).val, true
}

func (c *lruCache) put(key string, val any) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if el, ok := c.items[key]; ok {
		el.Value.(*lruEntry).val = val
		c.order.MoveToFront(el)
		return
	}
	c.items[key] = c.order.PushFront(&lruEntry{key: key, val: val})
	for c.order.Len() > c.cap {
		last := c.order.Back()
		c.order.Remove(last)
		delete(c.items, last.Value.(*lruEntry).key)
	}
}

func (c *lruCache) len() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.order.Len()
}

// flightGroup collapses concurrent calls with the same key into one
// execution: the first caller (the leader) runs fn, everyone else blocks on
// the leader's result and shares it. Completed flights are forgotten, so a
// later identical call runs again (the pipeline caches sit in front of the
// group to make that cheap).
type flightGroup struct {
	mu sync.Mutex
	m  map[string]*flightCall
}

type flightCall struct {
	done chan struct{}
	val  any
	err  error
}

func newFlightGroup() *flightGroup {
	return &flightGroup{m: make(map[string]*flightCall)}
}

// do returns fn's result and whether this caller shared a leader's
// execution rather than running fn itself.
func (g *flightGroup) do(key string, fn func() (any, error)) (val any, shared bool, err error) {
	g.mu.Lock()
	if call, ok := g.m[key]; ok {
		g.mu.Unlock()
		<-call.done
		return call.val, true, call.err
	}
	call := &flightCall{done: make(chan struct{})}
	g.m[key] = call
	g.mu.Unlock()

	call.val, call.err = fn()
	close(call.done)

	g.mu.Lock()
	delete(g.m, key)
	g.mu.Unlock()
	return call.val, false, call.err
}

// errBusy is returned by pool.acquire when the wait queue is at its bound;
// the HTTP layer maps it to 429 + Retry-After. Backpressure is explicit and
// immediate — the server never buffers unbounded work.
var errBusy = errors.New("serve: queue full")

// pool is an admission-bounded worker pool: at most `workers` heavy pipeline
// computations run at once, at most `maxQueue` more may wait for a slot, and
// anything beyond that is rejected with errBusy on arrival.
type pool struct {
	sem      chan struct{}
	waiters  atomic.Int64
	maxQueue int64
}

func newPool(workers, maxQueue int) *pool {
	if workers <= 0 {
		workers = 1
	}
	if maxQueue < 0 {
		maxQueue = 0
	}
	return &pool{sem: make(chan struct{}, workers), maxQueue: int64(maxQueue)}
}

// acquire takes a worker slot, waiting in the bounded queue if all slots are
// busy. It fails fast with errBusy when the queue bound is hit and with the
// context's error if the caller's deadline expires while queued.
func (p *pool) acquire(ctx context.Context) error {
	select {
	case p.sem <- struct{}{}:
		return nil
	default:
	}
	if p.waiters.Add(1) > p.maxQueue {
		p.waiters.Add(-1)
		return errBusy
	}
	defer p.waiters.Add(-1)
	select {
	case p.sem <- struct{}{}:
		return nil
	case <-ctx.Done():
		return ctx.Err()
	}
}

func (p *pool) release() { <-p.sem }

// depth reports how many callers are currently waiting for a slot.
func (p *pool) depth() int64 { return p.waiters.Load() }

// busy reports how many slots are currently held.
func (p *pool) busy() int64 { return int64(len(p.sem)) }
