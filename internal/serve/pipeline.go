package serve

import (
	"context"
	"fmt"

	"cachier/internal/core"
	"cachier/internal/obs"
	"cachier/internal/sim"
	"cachier/internal/staticanno"
	"cachier/internal/trace"
	"cachier/internal/vet"
)

// evaluator runs the pipeline phases with optional content-addressed
// caches, singleflight collapsing, and a worker pool. The zero evaluator
// (no caches, no pool) is the pure in-process library path behind Eval*;
// the server's evaluator shares the same code with everything switched on,
// which is what guarantees cached and cold responses are byte-identical to
// the library result.
type evaluator struct {
	// programs: raw source string → *ProgramInfo. Keyed by the submitted
	// text, but the ProgramInfo (and every downstream key) is content-
	// addressed on the canonical form, so differently-formatted copies of
	// one program converge on the same downstream entries.
	programs *lruCache
	// vets: (program hash, nodes) → []VetFinding.
	vets *lruCache
	// traces: (program hash, machine) → *trace.Trace.
	traces *lruCache
	// annos: (program hash, options) → *AnnotateResponse.
	annos *lruCache
	// sims: (program hash, config) → *simDoc (result + snapshot bytes).
	sims *lruCache
	// snaps: snapshot ID → snapshot JSON bytes, served by /v1/snapshot.
	snaps *lruCache

	flight  *flightGroup
	pool    *pool
	metrics *obs.Metrics

	// slow, when non-nil, runs inside every heavy phase execution; tests
	// use it to hold computations open while probing concurrency behaviour.
	slow func()
}

// simDoc is a cached simulation: the structured result plus its snapshot's
// JSON bytes.
type simDoc struct {
	res  SimResult
	snap []byte
}

func (e *evaluator) count(name string) {
	if e.metrics != nil {
		e.metrics.Inc(name)
	}
}

// cached wraps one phase: LRU lookup, then singleflight on a miss, with the
// leader publishing into the cache. kind labels the metrics.
func (e *evaluator) cached(kind, key string, fn func() (any, error)) (any, error) {
	if e.programs == nil { // library path: no caches at all
		return fn()
	}
	var c *lruCache
	switch kind {
	case "program":
		c = e.programs
	case "vet":
		c = e.vets
	case "trace":
		c = e.traces
	case "annotate":
		c = e.annos
	case "simulate":
		c = e.sims
	default:
		return fn()
	}
	if v, ok := c.get(key); ok {
		e.count(fmt.Sprintf("cache_hits_total{cache=%q}", kind))
		return v, nil
	}
	e.count(fmt.Sprintf("cache_misses_total{cache=%q}", kind))
	v, shared, err := e.flight.do(cacheKey(kind, key), fn)
	if shared {
		e.count("singleflight_shared_total")
	}
	if err == nil && !shared {
		c.put(key, v)
	}
	return v, err
}

// heavy runs one expensive pipeline execution under the worker pool (when
// there is one), honouring the request deadline while queued.
func (e *evaluator) heavy(ctx context.Context, phase string, fn func() (any, error)) (any, error) {
	if e.pool != nil {
		if err := e.pool.acquire(ctx); err != nil {
			return nil, err
		}
		defer e.pool.release()
	}
	e.count(fmt.Sprintf("pipeline_executions_total{phase=%q}", phase))
	if e.slow != nil {
		e.slow()
	}
	return fn()
}

// program parses, checks, and canonicalizes src (cached).
func (e *evaluator) program(src string) (*ProgramInfo, error) {
	v, err := e.cached("program", src, func() (any, error) {
		pi, err := CanonicalProgram(src)
		if err != nil {
			return nil, badRequest(err)
		}
		return pi, nil
	})
	if err != nil {
		return nil, err
	}
	return v.(*ProgramInfo), nil
}

// vet runs the static race detector and CICO lint (cached).
func (e *evaluator) vet(ctx context.Context, pi *ProgramInfo, nodes int) ([]VetFinding, error) {
	v, err := e.cached("vet", cacheKey(pi.Hash, fmt.Sprint(nodes)), func() (any, error) {
		return e.heavy(ctx, "vet", func() (any, error) {
			rep := vet.Analyze(pi.Prog, vet.Options{Nprocs: nodes})
			out := make([]VetFinding, 0, len(rep.Findings))
			for _, f := range rep.Findings {
				vf := VetFinding{
					File:     f.Pos.File,
					Line:     f.Pos.Line,
					Col:      f.Pos.Col,
					Severity: f.Severity.String(),
					Kind:     f.Rule,
					Var:      f.Var,
					Epoch:    f.Epoch,
					Msg:      f.Msg,
				}
				if f.Nodes[1] >= 0 {
					vf.Nodes = []int{f.Nodes[0], f.Nodes[1]}
				} else if f.Nodes[0] >= 0 {
					vf.Nodes = []int{f.Nodes[0]}
				}
				out = append(out, vf)
			}
			return out, nil
		})
	})
	if err != nil {
		return nil, err
	}
	return v.([]VetFinding), nil
}

// trace simulates the unannotated canonical program in trace mode on the
// given machine (cached). Tracing always uses the sequential engine — every
// engine is bit-identical, so the cheapest deterministic one wins.
func (e *evaluator) trace(ctx context.Context, pi *ProgramInfo, m MachineSpec) (*trace.Trace, error) {
	traceSpec := m
	traceSpec.Engine = EngineSequential
	v, err := e.cached("trace", cacheKey(pi.Hash, traceSpec.key()), func() (any, error) {
		return e.heavy(ctx, "trace", func() (any, error) {
			prog, err := pi.FreshProg()
			if err != nil {
				return nil, err
			}
			res, err := sim.Run(prog, traceSpec.simConfig(sim.ModeTrace))
			if err != nil {
				return nil, fmt.Errorf("tracing: %w", err)
			}
			return res.Trace, nil
		})
	})
	if err != nil {
		return nil, err
	}
	return v.(*trace.Trace), nil
}

// annotate runs the full annotation pipeline, trace-driven or static
// (cached on the canonical program + all options).
func (e *evaluator) annotate(ctx context.Context, req *AnnotateRequest, static bool) (*AnnotateResponse, error) {
	style, styleName, err := parseStyle(req.Style)
	if err != nil {
		return nil, err
	}
	machine, err := req.Machine.resolved()
	if err != nil {
		return nil, err
	}
	pi, err := e.program(req.Source)
	if err != nil {
		return nil, err
	}
	key := cacheKey(pi.Hash, styleName, fmt.Sprintf("p%v.s%v", req.Prefetch, static), machine.key())
	v, err := e.cached("annotate", key, func() (any, error) {
		var tr *trace.Trace
		var inf *staticanno.Result
		if static {
			v, err := e.heavy(ctx, "static", func() (any, error) {
				cfg := staticanno.Config{
					Nodes:     machine.Nodes,
					CacheSize: machine.CacheSize,
					Assoc:     machine.Assoc,
					BlockSize: machine.BlockSize,
				}
				prog, err := pi.FreshProg()
				if err != nil {
					return nil, err
				}
				inf, err := staticanno.Infer(prog, cfg)
				if err != nil {
					return nil, badRequest(fmt.Errorf("static inference: %w", err))
				}
				return inf, nil
			})
			if err != nil {
				return nil, err
			}
			inf = v.(*staticanno.Result)
			tr = inf.Trace
		} else {
			tr, err = e.trace(ctx, pi, machine)
			if err != nil {
				return nil, err
			}
		}
		return e.heavy(ctx, "annotate", func() (any, error) {
			opts := core.DefaultOptions()
			opts.Style = style
			opts.Prefetch = req.Prefetch
			opts.CacheSize = machine.CacheSize
			res, err := core.Annotate(pi.Canonical, tr, opts)
			if err != nil {
				return nil, fmt.Errorf("annotate: %w", err)
			}
			resp := &AnnotateResponse{
				ProgramHash: pi.Hash,
				Style:       styleName,
				Prefetch:    req.Prefetch,
				Static:      static,
				Annotated:   res.Source,
				Annotations: res.Annotations,
				Cost: CostSummary{
					CoX:       res.Cost.TotalCoX,
					CoS:       res.Cost.TotalCoS,
					CI:        res.Cost.TotalCI,
					ModelCost: res.Cost.ModelCost,
				},
			}
			for _, r := range res.Reports {
				cr := ConflictReport{Kind: r.Kind, Var: r.Var, Epoch: r.Epoch, Addrs: r.Addrs}
				if r.Pos.IsValid() {
					cr.Pos = r.Pos.String()
				}
				resp.Reports = append(resp.Reports, cr)
			}
			if inf != nil {
				exact := inf.Exact
				resp.Exact = &exact
				resp.Notes = inf.Notes
			}
			return resp, nil
		})
	})
	if err != nil {
		return nil, err
	}
	return v.(*AnnotateResponse), nil
}

// simulate runs Source as given on every requested config. Each config is
// cached and pooled independently, so a batch fans out through the worker
// pool and repeated configs are near-free.
func (e *evaluator) simulate(ctx context.Context, req *SimulateRequest) (*SimulateResponse, map[string][]byte, error) {
	pi, err := e.program(req.Source)
	if err != nil {
		return nil, nil, err
	}
	configs := req.Configs
	if len(configs) == 0 {
		configs = []MachineSpec{{}}
	}
	if len(configs) > 64 {
		return nil, nil, &apiError{code: 400, msg: fmt.Sprintf("batch of %d configs exceeds the 64-config bound", len(configs))}
	}
	resolved := make([]MachineSpec, len(configs))
	for i, c := range configs {
		if resolved[i], err = c.resolved(); err != nil {
			return nil, nil, err
		}
	}

	docs := make([]*simDoc, len(resolved))
	errs := make([]error, len(resolved))
	run := func(i int, m MachineSpec) {
		v, err := e.cached("simulate", cacheKey(pi.Hash, m.key()), func() (any, error) {
			return e.heavy(ctx, "simulate", func() (any, error) {
				return e.runSim(pi, m)
			})
		})
		if err != nil {
			errs[i] = err
			return
		}
		docs[i] = v.(*simDoc)
	}
	if e.pool == nil || len(resolved) == 1 {
		for i, m := range resolved {
			run(i, m)
		}
	} else {
		// Batched fan-out: each config takes its own worker-pool slot, so
		// one wide batch shares the machine with other requests instead of
		// monopolizing the handler.
		done := make(chan struct{}, len(resolved))
		for i, m := range resolved {
			go func(i int, m MachineSpec) {
				run(i, m)
				done <- struct{}{}
			}(i, m)
		}
		for range resolved {
			<-done
		}
	}
	results := make([]SimResult, len(resolved))
	snaps := make(map[string][]byte, len(resolved))
	for i, doc := range docs {
		if errs[i] != nil {
			return nil, nil, errs[i]
		}
		results[i] = doc.res
		snaps[doc.res.SnapshotID] = doc.snap
		if e.snaps != nil {
			// Re-publish on every hit: the snapshot may have been evicted
			// independently of the cached sim result.
			e.snaps.put(doc.res.SnapshotID, doc.snap)
		}
	}
	return &SimulateResponse{ProgramHash: pi.Hash, Results: results}, snaps, nil
}

// runSim executes one simulation with the observability recorder attached
// and packages the deterministic result + snapshot bytes.
func (e *evaluator) runSim(pi *ProgramInfo, m MachineSpec) (*simDoc, error) {
	prog, err := pi.FreshProg()
	if err != nil {
		return nil, err
	}
	cfg := m.simConfig(sim.ModePerf)
	cfg.Recorder = obs.New(cfg.Nodes, cfg.BlockSize)
	res, err := sim.Run(prog, cfg)
	if err != nil {
		// Simulation faults (deadlock, unlock fault) are properties of the
		// submitted program, not of the server.
		return nil, &apiError{code: 422, msg: fmt.Sprintf("simulation: %v", err)}
	}
	snap, err := res.Snapshot.MarshalIndentJSON()
	if err != nil {
		return nil, fmt.Errorf("marshal snapshot: %w", err)
	}
	return &simDoc{
		res: SimResult{
			Config:     m,
			Cycles:     res.Cycles,
			Barriers:   res.Barriers,
			Engine:     res.Engine,
			Protocol:   res.Protocol,
			Stats:      res.Stats,
			Output:     res.Output,
			SnapshotID: contentID(pi.Hash, m.key()),
		},
		snap: snap,
	}, nil
}

// EvalAnnotate computes /v1/annotate's response in process, uncached.
func EvalAnnotate(req *AnnotateRequest) (*AnnotateResponse, error) {
	return (&evaluator{}).annotate(context.Background(), req, false)
}

// EvalStatic computes /v1/static's response in process, uncached.
func EvalStatic(req *AnnotateRequest) (*AnnotateResponse, error) {
	return (&evaluator{}).annotate(context.Background(), req, true)
}

// EvalVet computes /v1/vet's response in process, uncached.
func EvalVet(req *VetRequest) (*VetResponse, error) {
	nodes := req.Nodes
	if nodes == 0 {
		nodes = sim.DefaultConfig().Nodes
	}
	if nodes < 1 || nodes > 1024 {
		return nil, &apiError{code: 400, msg: fmt.Sprintf("nodes %d out of range [1,1024]", nodes)}
	}
	e := &evaluator{}
	pi, err := e.program(req.Source)
	if err != nil {
		return nil, err
	}
	fs, err := e.vet(context.Background(), pi, nodes)
	if err != nil {
		return nil, err
	}
	return &VetResponse{ProgramHash: pi.Hash, Nodes: nodes, Findings: fs}, nil
}

// EvalSimulate computes /v1/simulate's response in process, uncached, and
// returns the snapshot bodies a server would serve from /v1/snapshot/{id}.
func EvalSimulate(req *SimulateRequest) (*SimulateResponse, map[string][]byte, error) {
	return (&evaluator{}).simulate(context.Background(), req)
}
