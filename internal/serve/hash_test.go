package serve

import (
	"strings"
	"testing"

	"cachier/internal/parcgen"
)

func mustHash(t *testing.T, src string) string {
	t.Helper()
	pi, err := CanonicalProgram(src)
	if err != nil {
		t.Fatalf("CanonicalProgram: %v\nsource:\n%s", err, src)
	}
	return pi.Hash
}

// reformat rewrites src without changing its meaning: comments, blank
// lines, and trailing whitespace.
func reformat(src string) string {
	var b strings.Builder
	b.WriteString("// reformatted copy\n\n")
	for _, line := range strings.Split(src, "\n") {
		b.WriteString(line)
		if strings.TrimSpace(line) != "" {
			b.WriteString(" // note")
		}
		b.WriteString("\n")
	}
	b.WriteString("/* trailing\n   block comment */\n")
	return b.String()
}

// TestHashFormattingInvariance: formatting-only rewrites of corpus programs
// hash identically, and canonicalization is a fixed point (reprinting the
// canonical text does not move the hash).
func TestHashFormattingInvariance(t *testing.T) {
	for seed := int64(1); seed <= 20; seed++ {
		src := parcgen.Generate(seed)
		h := mustHash(t, src)
		if got := mustHash(t, reformat(src)); got != h {
			t.Errorf("seed %d: reformatted source hashes %s, want %s", seed, got, h)
		}
		pi, err := CanonicalProgram(src)
		if err != nil {
			t.Fatal(err)
		}
		if got := mustHash(t, pi.Canonical); got != h {
			t.Errorf("seed %d: canonical text re-hashes to %s, want %s (canonicalization is not a fixed point)", seed, got, h)
		}
	}
}

// TestHashSemanticSensitivity: a semantic mutation (an integer literal
// perturbed by parcgen.Mutate, which re-validates the program) must change
// the content hash. This is the property that makes content-addressed cache
// reuse safe.
func TestHashSemanticSensitivity(t *testing.T) {
	mutated := 0
	for seed := int64(1); seed <= 40; seed++ {
		src := parcgen.Generate(seed)
		m := parcgen.Mutate(src, seed)
		if m == "" {
			continue // no literal could be perturbed into a valid program
		}
		mutated++
		if m == src {
			t.Fatalf("seed %d: Mutate returned the input unchanged", seed)
		}
		if mustHash(t, m) == mustHash(t, src) {
			t.Errorf("seed %d: semantic mutation did not change the hash\n--- original ---\n%s\n--- mutated ---\n%s", seed, src, m)
		}
	}
	// The property test is vacuous if Mutate never fires on the corpus.
	if mutated < 10 {
		t.Fatalf("only %d/40 corpus programs were mutable; property test is too weak", mutated)
	}
}

// TestHashRejectsInvalid: programs the front end rejects never get a hash.
func TestHashRejectsInvalid(t *testing.T) {
	for _, src := range []string{
		"",
		"func main() {",
		"shared int x;\nfunc main() { y = 1; }",
	} {
		if _, err := CanonicalProgram(src); err == nil {
			t.Errorf("CanonicalProgram accepted invalid source %q", src)
		}
	}
}

// TestMutateValidity: every non-empty Mutate result must itself be a valid
// program (parse + check), i.e. Mutate stays inside the language.
func TestMutateValidity(t *testing.T) {
	for seed := int64(1); seed <= 40; seed++ {
		src := parcgen.Generate(seed)
		m := parcgen.Mutate(src, seed)
		if m == "" {
			continue
		}
		if _, err := CanonicalProgram(m); err != nil {
			t.Errorf("seed %d: Mutate produced an invalid program: %v", seed, err)
		}
	}
}
