package obs_test

import (
	"bytes"
	"flag"
	"os"
	"path/filepath"
	"testing"

	"cachier/internal/obs"
	"cachier/internal/parc"
	"cachier/internal/sim"
)

var update = flag.Bool("update", false, "rewrite golden timeline files")

// jacobi2Src is a self-contained two-node row-partitioned relaxation: node 0
// seeds the grid, then each node repeatedly checks out its half of the rows,
// relaxes them in place, and checks them back in. Small enough that the
// exported timeline is a reviewable golden file, yet it exercises every
// event kind: epochs, barriers, directive instants, and trap instants.
const jacobi2Src = `
const N = 8;
const STEPS = 2;
const HALF = N / 2;

shared float U[N][N] label "U";

func main() {
    var lo int = pid() * HALF;
    var hi int = lo + HALF - 1;
    if pid() == 0 {
        rndseed(11);
        check_out_x U[0:N - 1][0:N - 1];
        for i = 0 to N - 1 {
            for j = 0 to N - 1 {
                U[i][j] = rnd();
            }
        }
        check_in U[0:N - 1][0:N - 1];
    }
    barrier;
    for t = 1 to STEPS {
        check_out_x U[lo:hi][0:N - 1];
        for i = lo to hi {
            for j = 1 to N - 2 {
                U[i][j] = 0.5 * (U[i][j - 1] + U[i][j + 1]);
            }
        }
        check_in U[lo:hi][0:N - 1];
        barrier;
    }
}
`

// runJacobi2 simulates the two-node program with timeline recording on.
func runJacobi2(t *testing.T) (*sim.Result, *obs.Recorder) {
	t.Helper()
	prog, err := parc.Parse(jacobi2Src)
	if err != nil {
		t.Fatal(err)
	}
	cfg := sim.DefaultConfig()
	cfg.Nodes = 2
	cfg.Recorder = obs.New(cfg.Nodes, cfg.BlockSize)
	cfg.Recorder.EnableTimeline()
	res, err := sim.Run(prog, cfg)
	if err != nil {
		t.Fatal(err)
	}
	return res, cfg.Recorder
}

// TestTimelineGolden locks the Perfetto export of the two-node Jacobi run
// byte for byte (refresh with
// `go test ./internal/obs -run TimelineGolden -update`).
func TestTimelineGolden(t *testing.T) {
	res, rec := runJacobi2(t)
	if err := res.Snapshot.CheckConsistency(); err != nil {
		t.Fatal(err)
	}
	tl := rec.Timeline("jacobi2")
	if tl == nil {
		t.Fatal("no timeline")
	}
	if err := tl.Validate(); err != nil {
		t.Fatal(err)
	}

	// Schema sanity beyond Validate: both node tracks are present and each
	// carries the same epoch structure — the program has three barriers
	// (one after initialisation, one per step), so each node opens epochs
	// 0 through 3.
	opens := map[int]int{}
	for _, e := range tl.TraceEvents {
		if e.Phase == "B" && e.TID >= 0 {
			opens[e.TID]++
		}
	}
	// 4 epoch spans + 3 barrier-wait spans per node.
	if opens[0] != 7 || opens[1] != 7 {
		t.Errorf("span opens per node = %v, want 7 per node", opens)
	}

	var buf bytes.Buffer
	if err := rec.WriteTimeline(&buf, "jacobi2"); err != nil {
		t.Fatal(err)
	}
	path := filepath.Join("testdata", "jacobi2.timeline.golden.json")
	if *update {
		if err := os.MkdirAll(filepath.Dir(path), 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(path, buf.Bytes(), 0o644); err != nil {
			t.Fatal(err)
		}
		t.Logf("wrote %s (%d bytes)", path, buf.Len())
		return
	}
	want, err := os.ReadFile(path)
	if err != nil {
		t.Fatalf("%v (run with -update to regenerate)", err)
	}
	if !bytes.Equal(buf.Bytes(), want) {
		t.Errorf("timeline differs from %s (run with -update to regenerate)\ngot %d bytes, want %d",
			path, buf.Len(), len(want))
	}

	// Round trip: the golden file must decode through the public reader,
	// still validate, and re-encode to the same bytes.
	back, err := obs.ReadTimeline(bytes.NewReader(want))
	if err != nil {
		t.Fatal(err)
	}
	if err := back.Validate(); err != nil {
		t.Fatalf("decoded golden timeline invalid: %v", err)
	}
	var buf2 bytes.Buffer
	if err := back.WriteJSON(&buf2); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(buf2.Bytes(), want) {
		t.Error("golden timeline does not round-trip through ReadTimeline/WriteJSON")
	}
}

// TestTimelineDeterminism: two identical simulations export identical
// timelines.
func TestTimelineDeterminism(t *testing.T) {
	var runs [2][]byte
	for i := range runs {
		_, rec := runJacobi2(t)
		var buf bytes.Buffer
		if err := rec.WriteTimeline(&buf, "jacobi2"); err != nil {
			t.Fatal(err)
		}
		runs[i] = buf.Bytes()
	}
	if !bytes.Equal(runs[0], runs[1]) {
		t.Error("identical runs exported different timelines")
	}
}
