package obs

import "math/bits"

// histBuckets is the fixed bucket count: bucket 0 holds zero values and
// bucket i (i >= 1) holds values v with 2^(i-1) <= v < 2^i, so the last
// bucket covers everything up to 2^63.
const histBuckets = 65

// Histogram is a fixed-shape power-of-two histogram of uint64 samples. The
// fixed bucket layout keeps Observe allocation-free and the JSON encoding
// deterministic (trailing empty buckets are trimmed at snapshot time by
// Compact).
//
// Invariants (asserted by the package's property tests):
//
//	Count == sum(Buckets)
//	Count == 0  =>  Sum == Min == Max == 0
//	Count > 0   =>  Min <= Max, Min <= Sum/Count <= Max
type Histogram struct {
	Count   uint64   `json:"count"`
	Sum     uint64   `json:"sum"`
	Min     uint64   `json:"min"`
	Max     uint64   `json:"max"`
	Buckets []uint64 `json:"buckets,omitempty"`
}

// bucketOf returns the bucket index for a sample.
func bucketOf(v uint64) int {
	if v == 0 {
		return 0
	}
	return bits.Len64(v)
}

// Observe adds one sample.
func (h *Histogram) Observe(v uint64) {
	if h.Buckets == nil {
		h.Buckets = make([]uint64, histBuckets)
	}
	if h.Count == 0 || v < h.Min {
		h.Min = v
	}
	if v > h.Max {
		h.Max = v
	}
	h.Count++
	h.Sum += v
	h.Buckets[bucketOf(v)]++
}

// Mean returns the sample mean (0 for an empty histogram).
func (h *Histogram) Mean() float64 {
	if h.Count == 0 {
		return 0
	}
	return float64(h.Sum) / float64(h.Count)
}

// Merge folds another histogram into h.
func (h *Histogram) Merge(o *Histogram) {
	if o.Count == 0 {
		return
	}
	if h.Buckets == nil {
		h.Buckets = make([]uint64, histBuckets)
	}
	if h.Count == 0 || o.Min < h.Min {
		h.Min = o.Min
	}
	if o.Max > h.Max {
		h.Max = o.Max
	}
	h.Count += o.Count
	h.Sum += o.Sum
	for i, c := range o.Buckets {
		h.Buckets[i] += c
	}
}

// Compact trims trailing empty buckets so the JSON form is short and
// independent of the fixed internal capacity. An empty histogram compacts
// to no buckets at all.
func (h *Histogram) Compact() {
	n := len(h.Buckets)
	for n > 0 && h.Buckets[n-1] == 0 {
		n--
	}
	if n == 0 {
		h.Buckets = nil
		return
	}
	h.Buckets = h.Buckets[:n:n]
}
