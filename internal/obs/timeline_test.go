package obs

import (
	"strings"
	"testing"
)

// tev abbreviates hand-building timeline events in validator tests.
func tev(name, phase string, ts uint64, tid int, scope string) TimelineEvent {
	return TimelineEvent{Name: name, Phase: phase, TS: ts, TID: tid, Scope: scope}
}

func TestTimelineValidate(t *testing.T) {
	valid := &Timeline{TraceEvents: []TimelineEvent{
		{Name: "process_name", Phase: "M"},
		tev("epoch 0", "B", 0, 0, ""),
		tev("trap", "i", 5, 0, "t"),
		tev("epoch 0", "E", 10, 0, ""),
		tev("barrier 0", "B", 10, 0, ""),
		tev("barrier 0", "E", 20, 0, ""),
		tev("epoch 0", "B", 0, 1, ""),
		tev("epoch 0", "E", 8, 1, ""),
	}}
	if err := valid.Validate(); err != nil {
		t.Errorf("valid timeline rejected: %v", err)
	}

	cases := []struct {
		name   string
		events []TimelineEvent
		want   string
	}{
		{"backwards timestamp", []TimelineEvent{
			tev("epoch 0", "B", 10, 0, ""),
			tev("epoch 0", "E", 5, 0, ""),
		}, "goes backwards"},
		{"mismatched close", []TimelineEvent{
			tev("epoch 0", "B", 0, 0, ""),
			tev("epoch 1", "E", 5, 0, ""),
		}, "closes span"},
		{"close without open", []TimelineEvent{
			tev("epoch 0", "E", 5, 0, ""),
		}, "no open span"},
		{"unclosed span", []TimelineEvent{
			tev("epoch 0", "B", 0, 0, ""),
		}, "never closed"},
		{"instant without scope", []TimelineEvent{
			tev("trap", "i", 5, 0, ""),
		}, "without a scope"},
		{"unknown phase", []TimelineEvent{
			tev("x", "X", 0, 0, ""),
		}, "unknown phase"},
	}
	for _, c := range cases {
		tl := &Timeline{TraceEvents: c.events}
		err := tl.Validate()
		if err == nil {
			t.Errorf("%s: accepted", c.name)
			continue
		}
		if !strings.Contains(err.Error(), c.want) {
			t.Errorf("%s: error %q does not mention %q", c.name, err, c.want)
		}
	}

	// Tracks are independent: an open span on (0,0) does not leak to (0,1),
	// and per-track timestamps may interleave globally.
	independent := &Timeline{TraceEvents: []TimelineEvent{
		tev("epoch 0", "B", 100, 0, ""),
		tev("epoch 0", "B", 0, 1, ""),
		tev("epoch 0", "E", 50, 1, ""),
		tev("epoch 0", "E", 200, 0, ""),
	}}
	if err := independent.Validate(); err != nil {
		t.Errorf("independent tracks rejected: %v", err)
	}
}

// TestRecorderTimelineStructure drives the scripted run and checks the
// exporter's guarantees directly: metadata first, one named track per node,
// schema-valid streams, stable label default.
func TestRecorderTimelineStructure(t *testing.T) {
	r := New(2, 32)
	r.EnableTimeline()
	drive(r)
	tl := r.Timeline("")
	if tl == nil {
		t.Fatal("no timeline")
	}
	if err := tl.Validate(); err != nil {
		t.Fatal(err)
	}
	if tl.TraceEvents[0].Phase != "M" || tl.TraceEvents[0].Args["name"] != "sim" {
		t.Errorf("first event = %+v, want process_name metadata with default label", tl.TraceEvents[0])
	}
	names := map[int]string{}
	var instants int
	for _, e := range tl.TraceEvents {
		if e.Phase == "M" && e.Name == "thread_name" {
			names[e.TID] = e.Args["name"]
		}
		if e.Phase == "i" {
			instants++
		}
	}
	if names[0] != "node 0" || names[1] != "node 1" {
		t.Errorf("thread names = %v", names)
	}
	// The script records 2 traps (one access, one directive) and 2
	// directives; all four become instants.
	if instants != 4 {
		t.Errorf("instants = %d, want 4", instants)
	}
	// Without EnableTimeline there is no timeline.
	r2 := New(2, 32)
	drive(r2)
	if r2.Timeline("x") != nil {
		t.Error("timeline without EnableTimeline")
	}
}
