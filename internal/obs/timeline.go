package obs

import (
	"encoding/json"
	"fmt"
	"io"
)

// TimelineEvent is one Chrome-trace/Perfetto JSON event. The recorder
// emits duration pairs (Phase "B"/"E") for epoch compute and barrier-wait
// intervals on one track per node, instant events (Phase "i") for protocol
// traps and CICO directives, and metadata events (Phase "M") naming the
// process and node tracks. Timestamps are simulated cycles, presented as
// microseconds (the trace format's unit), so one cycle renders as 1 us.
type TimelineEvent struct {
	Name  string            `json:"name"`
	Phase string            `json:"ph"`
	TS    uint64            `json:"ts"`
	PID   int               `json:"pid"`
	TID   int               `json:"tid"`
	Scope string            `json:"s,omitempty"`    // instant scope: "t" (thread)
	Args  map[string]string `json:"args,omitempty"` // metadata payload
}

// Timeline is a complete exported timeline in the Chrome trace-event JSON
// object format Perfetto and chrome://tracing both load.
type Timeline struct {
	TraceEvents     []TimelineEvent `json:"traceEvents"`
	DisplayTimeUnit string          `json:"displayTimeUnit,omitempty"`
}

func epochName(i int) string   { return fmt.Sprintf("epoch %d", i) }
func barrierName(i int) string { return fmt.Sprintf("barrier %d", i) }

// Timeline builds the exported timeline, labelling the process track. It
// returns nil when the recorder is nil or EnableTimeline was never called.
// Event order is deterministic: metadata first, then each node's stream in
// node order (each stream is chronological by construction).
func (r *Recorder) Timeline(label string) *Timeline {
	if r == nil || !r.timeline {
		return nil
	}
	if label == "" {
		label = "sim"
	}
	t := &Timeline{DisplayTimeUnit: "ms"}
	t.TraceEvents = append(t.TraceEvents, TimelineEvent{
		Name: "process_name", Phase: "M", Args: map[string]string{"name": label},
	})
	for n := 0; n < r.nodes; n++ {
		t.TraceEvents = append(t.TraceEvents, TimelineEvent{
			Name: "thread_name", Phase: "M", TID: n,
			Args: map[string]string{"name": fmt.Sprintf("node %d", n)},
		})
	}
	for n := 0; n < r.nodes; n++ {
		t.TraceEvents = append(t.TraceEvents, r.tl[n]...)
	}
	return t
}

// WriteTimeline writes the timeline as indented JSON (with a trailing
// newline, so golden files are byte-stable). It fails if the timeline was
// never enabled.
func (r *Recorder) WriteTimeline(w io.Writer, label string) error {
	t := r.Timeline(label)
	if t == nil {
		return fmt.Errorf("obs: timeline not enabled on this recorder")
	}
	return t.WriteJSON(w)
}

// WriteJSON writes the timeline as indented JSON with a trailing newline.
func (t *Timeline) WriteJSON(w io.Writer) error {
	data, err := json.MarshalIndent(t, "", "  ")
	if err != nil {
		return err
	}
	_, err = w.Write(append(data, '\n'))
	return err
}

// ReadTimeline decodes a timeline previously written by WriteJSON.
func ReadTimeline(rd io.Reader) (*Timeline, error) {
	var t Timeline
	if err := json.NewDecoder(rd).Decode(&t); err != nil {
		return nil, fmt.Errorf("obs: decoding timeline: %w", err)
	}
	return &t, nil
}

// Validate checks the trace-event schema invariants the exporter
// guarantees: per track (pid, tid), timestamps are non-decreasing, "B" and
// "E" events pair up with stack discipline and matching names, every span
// is closed, and instants carry a scope. Tests and the conformance harness
// run this over every emitted timeline.
func (t *Timeline) Validate() error {
	type track struct{ pid, tid int }
	lastTS := map[track]uint64{}
	stacks := map[track][]TimelineEvent{}
	for i, e := range t.TraceEvents {
		k := track{e.PID, e.TID}
		switch e.Phase {
		case "M":
			continue
		case "B", "E", "i":
		default:
			return fmt.Errorf("event %d: unknown phase %q", i, e.Phase)
		}
		if ts, ok := lastTS[k]; ok && e.TS < ts {
			return fmt.Errorf("event %d (%s %q): timestamp %d goes backwards (track %v was at %d)",
				i, e.Phase, e.Name, e.TS, k, ts)
		}
		lastTS[k] = e.TS
		switch e.Phase {
		case "B":
			stacks[k] = append(stacks[k], e)
		case "E":
			st := stacks[k]
			if len(st) == 0 {
				return fmt.Errorf("event %d: E %q on track %v with no open span", i, e.Name, k)
			}
			open := st[len(st)-1]
			if open.Name != e.Name {
				return fmt.Errorf("event %d: E %q closes span %q", i, e.Name, open.Name)
			}
			stacks[k] = st[:len(st)-1]
		case "i":
			if e.Scope == "" {
				return fmt.Errorf("event %d: instant %q without a scope", i, e.Name)
			}
		}
	}
	for k, st := range stacks {
		if len(st) > 0 {
			return fmt.Errorf("track %v: span %q never closed", k, st[len(st)-1].Name)
		}
	}
	return nil
}
