// Package obs is the simulator's observability layer: a structured metrics
// and event recorder threaded through the whole stack (sim, dir1sw, interp,
// the CICO directive path) that turns end-of-run cycle totals into
// per-node, per-epoch data a test can pin.
//
// The design constraint is the measured path: the Figure 6 harness doubles
// as the repository's wall-clock benchmark, so recording must cost nothing
// when it is off. A nil *Recorder IS the disabled recorder — every method
// nil-checks its receiver and returns immediately, which the compiler
// inlines to a test-and-branch at the call site. Enabling a recorder never
// changes simulated results either: the recorder only observes, and the
// conformance harness re-runs programs with a recorder attached and demands
// bit-identical cycles and protocol statistics.
//
// Data collected, by layer:
//
//   - sim: per-node, per-epoch access outcomes (hits, misses by type,
//     upgrades), directory traps, invalidations, miss-stall and
//     barrier-stall cycles, per-epoch working sets (distinct cache blocks
//     touched), scheduler handoffs, and work cycles charged;
//   - dir1sw: directory state-transition counts and trap causes;
//   - interp/VM: dispatched ops (see Context.CountOps);
//   - CICO directives: check-out/check-in/prefetch events with block
//     counts, both in aggregate and per labelled shared variable.
//
// Snapshot() folds all of it into a deterministic, sorted, JSON-stable
// stats tree (snapshot.go); EnableTimeline() additionally records a
// per-node epoch/barrier timeline exportable as Chrome-trace/Perfetto JSON
// (timeline.go).
package obs

import "sort"

// AccessKind classifies a shared-data access outcome, mirroring the
// protocol's classification (obs deliberately does not import dir1sw; the
// simulator maps between the two).
type AccessKind uint8

// Access outcomes.
const (
	Hit AccessKind = iota
	ReadMiss
	WriteMiss
	WriteFault // write found the block cached read-only (upgrade)
	nAccessKinds
)

// DirKind classifies a CICO directive.
type DirKind uint8

// Directive kinds, in source-syntax order.
const (
	DirCheckOutX DirKind = iota
	DirCheckOutS
	DirCheckIn
	DirPrefetchX
	DirPrefetchS
	nDirKinds
)

func (k DirKind) String() string {
	switch k {
	case DirCheckOutX:
		return "check_out_x"
	case DirCheckOutS:
		return "check_out_s"
	case DirCheckIn:
		return "check_in"
	case DirPrefetchX:
		return "prefetch_x"
	case DirPrefetchS:
		return "prefetch_s"
	}
	return "directive?"
}

// TrapCause classifies why the directory trapped to software. Dir1SW's
// whole case rests on which of these the annotations remove, so the causes
// are first-class observables.
type TrapCause uint8

// Trap causes.
const (
	// TrapUpgrade: a write (or check_out_x) found other sharers and had to
	// broadcast invalidations because the counter cannot name them.
	TrapUpgrade TrapCause = iota
	// TrapWriteBroadcast: a write miss to a Shared block with other
	// sharers; same broadcast, entered through the miss path.
	TrapWriteBroadcast
	// TrapDowngrade: a read miss to a block held Exclusive elsewhere; the
	// owner's copy is retrieved and downgraded in software.
	TrapDowngrade
	// TrapSteal: a write miss to a block held Exclusive elsewhere; the
	// owner's copy is retrieved and invalidated in software.
	TrapSteal
	nTrapCauses
)

func (c TrapCause) String() string {
	switch c {
	case TrapUpgrade:
		return "upgrade-broadcast"
	case TrapWriteBroadcast:
		return "write-broadcast"
	case TrapDowngrade:
		return "exclusive-downgrade"
	case TrapSteal:
		return "exclusive-steal"
	}
	return "trap?"
}

// DirState is a directory entry state, for transition counting.
type DirState uint8

// Directory states.
const (
	StateIdle DirState = iota
	StateShared
	StateExclusive
	nDirStates
)

func (s DirState) String() string {
	switch s {
	case StateIdle:
		return "idle"
	case StateShared:
		return "shared"
	case StateExclusive:
		return "exclusive"
	}
	return "state?"
}

// nodeEpoch accumulates one node's activity within the current epoch.
type nodeEpoch struct {
	access   [nAccessKinds]uint64
	traps    uint64
	invals   uint64
	stall    uint64 // cycles lost to misses, faults, and prefetch waits
	dirOps   uint64 // directive executions
	dirBlks  uint64 // blocks those directives covered
	workSet  map[uint64]struct{}
	barStall uint64 // set when the epoch closes
}

// Recorder collects metrics and (optionally) timeline events for one
// simulation run. A nil *Recorder is the disabled recorder: every method is
// safe to call on it and does nothing. A Recorder belongs to a single run
// and, like the simulator's Machine, is not safe for concurrent use across
// runs.
type Recorder struct {
	nodes     int
	blockSize uint64

	epoch  int
	cur    []nodeEpoch  // per-node accumulators for the current epoch
	epochs []EpochStats // finished epochs

	dirTrans [nDirStates][nDirStates]uint64
	traps    [nTrapCauses]uint64
	dirAgg   [nDirKinds]DirectiveStats
	vars     map[string]*VarStats

	handoffs uint64 // scheduler context switches
	workCyc  uint64 // local-computation cycles charged via Work
	ops      []uint64

	nodeDone []bool

	timeline bool
	tl       [][]TimelineEvent // per-node event streams, chronological
}

// New builds an enabled Recorder for a machine with the given node count
// and cache block size.
func New(nodes, blockSize int) *Recorder {
	if nodes <= 0 {
		nodes = 1
	}
	if blockSize <= 0 {
		blockSize = 1
	}
	r := &Recorder{
		nodes:     nodes,
		blockSize: uint64(blockSize),
		cur:       make([]nodeEpoch, nodes),
		vars:      make(map[string]*VarStats),
		ops:       make([]uint64, nodes),
		nodeDone:  make([]bool, nodes),
	}
	for i := range r.cur {
		r.cur[i].workSet = make(map[uint64]struct{})
	}
	return r
}

// Enabled reports whether recording is on; the nil receiver is the
// disabled recorder.
func (r *Recorder) Enabled() bool { return r != nil }

// Reset discards everything recorded so far and returns the Recorder to its
// fresh post-New (and, if enabled, post-EnableTimeline) state. The simulator
// calls it when an epoch-parallel run hits a speculation conflict and is
// discarded: the sequential re-run must feed a recorder indistinguishable
// from a fresh one, or snapshots would double-count the abandoned attempt.
func (r *Recorder) Reset() {
	if r == nil {
		return
	}
	timeline := r.timeline
	fresh := New(r.nodes, int(r.blockSize))
	*r = *fresh
	if timeline {
		r.EnableTimeline()
	}
}

// EnableTimeline turns on per-node timeline event collection. Must be
// called before the run starts (it opens each node's first epoch span).
func (r *Recorder) EnableTimeline() {
	if r == nil || r.timeline {
		return
	}
	r.timeline = true
	r.tl = make([][]TimelineEvent, r.nodes)
	for n := 0; n < r.nodes; n++ {
		r.tl[n] = append(r.tl[n], TimelineEvent{Name: epochName(0), Phase: "B", TS: 0, TID: n})
	}
}

// Access records one shared-data access by node: its outcome, the cache
// block it touched, the stall cycles it cost, whether it trapped, and the
// node's clock after the access completed.
func (r *Recorder) Access(node int, kind AccessKind, block uint64, cycles uint64, trap bool, now uint64) {
	if r == nil {
		return
	}
	ne := &r.cur[node]
	ne.access[kind]++
	ne.workSet[block] = struct{}{}
	if kind != Hit {
		ne.stall += cycles
	}
	if trap {
		r.trapAt(node, now)
	}
}

// trapAt counts a per-node trap and, with the timeline on, drops an
// instant on the node's track.
func (r *Recorder) trapAt(node int, now uint64) {
	r.cur[node].traps++
	if r.timeline {
		r.tl[node] = append(r.tl[node], TimelineEvent{Name: "trap", Phase: "i", TS: now, TID: node, Scope: "t"})
	}
}

// Directive records one CICO directive execution by node covering the
// given number of cache blocks, ending at the node's clock now.
func (r *Recorder) Directive(node int, kind DirKind, blocks uint64, now uint64) {
	if r == nil {
		return
	}
	ne := &r.cur[node]
	ne.dirOps++
	ne.dirBlks += blocks
	r.dirAgg[kind].Events++
	r.dirAgg[kind].Blocks += blocks
	if r.timeline {
		r.tl[node] = append(r.tl[node], TimelineEvent{Name: kind.String(), Phase: "i", TS: now, TID: node, Scope: "t"})
	}
}

// DirectiveTrap records that a directive's block operation trapped, at the
// node's clock now.
func (r *Recorder) DirectiveTrap(node int, now uint64) {
	if r == nil {
		return
	}
	r.trapAt(node, now)
}

// VarDirective attributes a directive's blocks to a labelled shared
// variable (the simulator resolves the address to a region name).
func (r *Recorder) VarDirective(name string, kind DirKind, blocks uint64) {
	if r == nil {
		return
	}
	v := r.vars[name]
	if v == nil {
		v = &VarStats{Name: name}
		r.vars[name] = v
	}
	switch kind {
	case DirCheckOutX:
		v.CheckOutX += blocks
	case DirCheckOutS:
		v.CheckOutS += blocks
	case DirCheckIn:
		v.CheckIns += blocks
	case DirPrefetchX:
		v.PrefetchX += blocks
	case DirPrefetchS:
		v.PrefetchS += blocks
	}
}

// DirTransition records a directory entry state change (dir1sw calls this
// at every transition, including exclusive-to-exclusive ownership
// handoffs).
func (r *Recorder) DirTransition(from, to DirState) {
	if r == nil {
		return
	}
	r.dirTrans[from][to]++
}

// Trap records a software trap's cause (dir1sw calls this at the trap
// site; the per-node count comes from Access/DirectiveTrap).
func (r *Recorder) Trap(cause TrapCause) {
	if r == nil {
		return
	}
	r.traps[cause]++
}

// Invalidations records n sharer copies invalidated on behalf of the
// requesting node.
func (r *Recorder) Invalidations(node int, n uint64) {
	if r == nil {
		return
	}
	r.cur[node].invals += n
}

// Handoff records one scheduler context switch.
func (r *Recorder) Handoff() {
	if r == nil {
		return
	}
	r.handoffs++
}

// Work records local-computation cycles charged to a node.
func (r *Recorder) Work(node int, cycles uint64) {
	if r == nil {
		return
	}
	r.workCyc += cycles
}

// NodeDone closes a node's timeline when its program finishes at the given
// clock; later barriers and Finish leave the node alone.
func (r *Recorder) NodeDone(node int, now uint64) {
	if r == nil || r.nodeDone[node] {
		return
	}
	r.nodeDone[node] = true
	if r.timeline {
		r.tl[node] = append(r.tl[node], TimelineEvent{Name: epochName(r.epoch), Phase: "E", TS: now, TID: node})
	}
}

// BarrierEnd closes the current epoch at a global barrier: arrivals holds
// each node's arrival clock (its current clock, for nodes that already
// finished), release the synchronized clock every participant leaves with,
// and barrierPC the barrier statement's ID.
func (r *Recorder) BarrierEnd(barrierPC int, arrivals []uint64, release uint64) {
	if r == nil {
		return
	}
	r.closeEpoch(barrierPC, arrivals, release, false)
}

// Finish closes the final (partial) epoch at program completion; clocks
// holds each node's completion clock. Like the trace format, the final
// epoch carries barrier PC -1.
func (r *Recorder) Finish(clocks []uint64) {
	if r == nil {
		return
	}
	var max uint64
	for _, c := range clocks {
		if c > max {
			max = c
		}
	}
	r.closeEpoch(-1, clocks, max, true)
}

func (r *Recorder) closeEpoch(barrierPC int, arrivals []uint64, release uint64, final bool) {
	ep := EpochStats{
		Index:     r.epoch,
		BarrierPC: barrierPC,
		Release:   release,
		Nodes:     make([]NodeEpochStats, r.nodes),
	}
	for n := range r.cur {
		ne := &r.cur[n]
		stall := uint64(0)
		if !final && !r.nodeDone[n] && release > arrivals[n] {
			stall = release - arrivals[n]
		}
		ne.barStall = stall
		ws := uint64(len(ne.workSet))
		ep.Nodes[n] = NodeEpochStats{
			Hits:            ne.access[Hit],
			ReadMisses:      ne.access[ReadMiss],
			WriteMisses:     ne.access[WriteMiss],
			WriteFaults:     ne.access[WriteFault],
			Traps:           ne.traps,
			Invalidations:   ne.invals,
			StallCycles:     ne.stall,
			BarrierStall:    stall,
			DirectiveOps:    ne.dirOps,
			DirectiveBlocks: ne.dirBlks,
			WorkingSet:      ws,
		}
		ep.WorkingSet.Observe(ws)
		if r.timeline && !r.nodeDone[n] {
			tl := r.tl[n]
			tl = append(tl,
				TimelineEvent{Name: epochName(r.epoch), Phase: "E", TS: arrivals[n], TID: n})
			if !final {
				tl = append(tl,
					TimelineEvent{Name: barrierName(r.epoch), Phase: "B", TS: arrivals[n], TID: n},
					TimelineEvent{Name: barrierName(r.epoch), Phase: "E", TS: release, TID: n},
					TimelineEvent{Name: epochName(r.epoch + 1), Phase: "B", TS: release, TID: n})
			}
			r.tl[n] = tl
		}
		// Reset for the next epoch; the map is reused to stay allocation-
		// light across epochs.
		ne.access = [nAccessKinds]uint64{}
		ne.traps, ne.invals, ne.stall = 0, 0, 0
		ne.dirOps, ne.dirBlks, ne.barStall = 0, 0, 0
		clear(ne.workSet)
	}
	r.epochs = append(r.epochs, ep)
	r.epoch++
}

// SetOps records a node's dispatched-op count (the simulator folds each
// interpreter context's counter in at completion).
func (r *Recorder) SetOps(node int, ops uint64) {
	if r == nil {
		return
	}
	r.ops[node] = ops
}

// Var returns the per-variable directive tally recorded for a labelled
// shared variable; the zero VarStats if the variable saw no directives.
func (r *Recorder) Var(name string) VarStats {
	if r == nil {
		return VarStats{Name: name}
	}
	if v := r.vars[name]; v != nil {
		return *v
	}
	return VarStats{Name: name}
}

// sortedVars returns the per-variable tallies ordered by name.
func (r *Recorder) sortedVars() []VarStats {
	out := make([]VarStats, 0, len(r.vars))
	for _, v := range r.vars {
		out = append(out, *v)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Name < out[j].Name })
	return out
}
