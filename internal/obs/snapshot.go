package obs

import (
	"encoding/json"
	"fmt"
	"io"
)

// ProtocolStats is the memory-system counter block of a Snapshot. It
// mirrors dir1sw.Stats field for field (dir1sw converts; obs cannot import
// it without a cycle) with stable JSON names, and is the single form the
// CLIs print protocol statistics from.
type ProtocolStats struct {
	Reads  uint64 `json:"reads"`
	Writes uint64 `json:"writes"`

	Hits        uint64 `json:"hits"`
	ReadMisses  uint64 `json:"read_misses"`
	WriteMisses uint64 `json:"write_misses"`
	WriteFaults uint64 `json:"write_faults"`

	Traps         uint64 `json:"traps"`
	Invalidations uint64 `json:"invalidations"`
	Writebacks    uint64 `json:"writebacks"`

	// DirEvents counts directory state transitions performed by the
	// protocol; omitted on snapshots replayed without a live directory
	// (tracestat) and on pre-protocol golden files.
	DirEvents uint64 `json:"dir_events,omitempty"`

	ReqMsgs  uint64 `json:"req_msgs"`
	DataMsgs uint64 `json:"data_msgs"`
	CtlMsgs  uint64 `json:"ctl_msgs"`

	CheckOutX  uint64 `json:"check_out_x"`
	CheckOutS  uint64 `json:"check_out_s"`
	CheckIns   uint64 `json:"check_ins"`
	PrefetchX  uint64 `json:"prefetch_x"`
	PrefetchS  uint64 `json:"prefetch_s"`
	WastedDirs uint64 `json:"wasted_directives"`

	PostStores     uint64 `json:"post_stores"`
	PrefetchHits   uint64 `json:"prefetch_hits"`
	PrefetchStalls uint64 `json:"prefetch_stalls"`
}

// Misses returns all misses including write faults.
func (p *ProtocolStats) Misses() uint64 { return p.ReadMisses + p.WriteMisses + p.WriteFaults }

// TotalMsgs returns all messages sent.
func (p *ProtocolStats) TotalMsgs() uint64 { return p.ReqMsgs + p.DataMsgs + p.CtlMsgs }

// Transition is one directory state-transition count; only transitions
// that occurred appear in a snapshot, ordered (from, to).
type Transition struct {
	From  string `json:"from"`
	To    string `json:"to"`
	Count uint64 `json:"count"`
}

// TrapStats is one trap cause's count; only causes that occurred appear,
// in cause-declaration order.
type TrapStats struct {
	Cause string `json:"cause"`
	Count uint64 `json:"count"`
}

// DirectoryStats is the dir1sw-level detail of a Snapshot.
type DirectoryStats struct {
	Transitions []Transition `json:"transitions,omitempty"`
	TrapCauses  []TrapStats  `json:"trap_causes,omitempty"`
}

// DirectiveStats aggregates one directive kind across the run.
type DirectiveStats struct {
	Kind   string `json:"kind,omitempty"`
	Events uint64 `json:"events"`
	Blocks uint64 `json:"blocks"`
}

// InterpStats is the interpreter/scheduler block of a Snapshot.
type InterpStats struct {
	// Ops is the total dispatched-op count over all nodes: VM instructions
	// retired, or statements executed on the tree-walking reference.
	Ops uint64 `json:"ops"`
	// Handoffs counts scheduler context switches (the simulator's
	// yield slow path).
	Handoffs uint64 `json:"handoffs"`
	// WorkCycles is the total local-computation cycles charged.
	WorkCycles uint64 `json:"work_cycles"`
}

// NodeEpochStats is one node's activity within one epoch.
type NodeEpochStats struct {
	Hits            uint64 `json:"hits"`
	ReadMisses      uint64 `json:"read_misses"`
	WriteMisses     uint64 `json:"write_misses"`
	WriteFaults     uint64 `json:"write_faults"`
	Traps           uint64 `json:"traps"`
	Invalidations   uint64 `json:"invalidations"`
	StallCycles     uint64 `json:"stall_cycles"`
	BarrierStall    uint64 `json:"barrier_stall"`
	DirectiveOps    uint64 `json:"directive_ops"`
	DirectiveBlocks uint64 `json:"directive_blocks"`
	// WorkingSet is the number of distinct cache blocks the node touched
	// with loads and stores during the epoch (the paper's Figures 5-6
	// per-epoch working-set analysis).
	WorkingSet uint64 `json:"working_set"`
}

// EpochStats is one epoch's record: the interval between two global
// barriers (the final epoch, ending at program completion, has BarrierPC
// -1, like the trace format).
type EpochStats struct {
	Index     int    `json:"index"`
	BarrierPC int    `json:"barrier_pc"`
	Release   uint64 `json:"release"`
	// Nodes is indexed by node ID.
	Nodes []NodeEpochStats `json:"nodes"`
	// WorkingSet is the distribution of per-node working-set sizes (in
	// cache blocks) across the epoch's nodes.
	WorkingSet Histogram `json:"working_set"`
}

// NodeTotals is one node's whole-run aggregate.
type NodeTotals struct {
	Node          int    `json:"node"`
	Cycles        uint64 `json:"cycles"`
	Hits          uint64 `json:"hits"`
	ReadMisses    uint64 `json:"read_misses"`
	WriteMisses   uint64 `json:"write_misses"`
	WriteFaults   uint64 `json:"write_faults"`
	Traps         uint64 `json:"traps"`
	Invalidations uint64 `json:"invalidations"`
	StallCycles   uint64 `json:"stall_cycles"`
	BarrierStall  uint64 `json:"barrier_stall"`
	Ops           uint64 `json:"ops"`
}

// VarStats tallies the CICO directive blocks applied to one labelled
// shared variable.
type VarStats struct {
	Name      string `json:"name"`
	CheckOutX uint64 `json:"check_out_x"`
	CheckOutS uint64 `json:"check_out_s"`
	CheckIns  uint64 `json:"check_ins"`
	PrefetchX uint64 `json:"prefetch_x"`
	PrefetchS uint64 `json:"prefetch_s"`
}

// CheckOuts returns all check-outs (exclusive + shared) of the variable.
func (v VarStats) CheckOuts() uint64 { return v.CheckOutX + v.CheckOutS }

// VarByName returns the named variable's directive tally, or the zero
// VarStats if the variable saw no directives.
func (s *Snapshot) VarByName(name string) VarStats {
	for _, v := range s.Vars {
		if v.Name == name {
			return v
		}
	}
	return VarStats{Name: name}
}

// Snapshot is the full deterministic stats tree for one run: same program,
// same configuration, same snapshot, byte for byte, which is what lets the
// golden-stats regression tests pin protocol behaviour rather than only
// cycle totals. All map-shaped data is emitted as name-sorted slices.
type Snapshot struct {
	Nodes     int    `json:"nodes"`
	BlockSize int    `json:"block_size"`
	Cycles    uint64 `json:"cycles"`
	Barriers  int    `json:"barriers"`

	// ProtocolName identifies the coherence protocol that produced the run
	// ("Dir1SW", "Dir4NB", "Dir4B", ...). Empty on snapshots replayed
	// without a live directory and on pre-protocol golden files.
	ProtocolName string `json:"protocol_name,omitempty"`

	Protocol   ProtocolStats    `json:"protocol"`
	Directory  DirectoryStats   `json:"directory"`
	Interp     InterpStats      `json:"interp"`
	Directives []DirectiveStats `json:"directives,omitempty"`
	PerNode    []NodeTotals     `json:"per_node"`
	Epochs     []EpochStats     `json:"epochs"`
	Vars       []VarStats       `json:"vars,omitempty"`
}

// Snapshot folds everything recorded so far, plus the run results the
// simulator owns (cycles, per-node clocks, barrier count, protocol
// counters), into the stats tree. The recorder must have been finished
// (Finish) for the final epoch to appear.
func (r *Recorder) Snapshot(cycles uint64, nodeCycles []uint64, barriers int, protocol ProtocolStats) *Snapshot {
	if r == nil {
		return nil
	}
	s := &Snapshot{
		Nodes:     r.nodes,
		BlockSize: int(r.blockSize),
		Cycles:    cycles,
		Barriers:  barriers,
		Protocol:  protocol,
		Interp:    InterpStats{Handoffs: r.handoffs, WorkCycles: r.workCyc},
		Epochs:    append([]EpochStats(nil), r.epochs...),
		Vars:      r.sortedVars(),
	}
	for from := DirState(0); from < nDirStates; from++ {
		for to := DirState(0); to < nDirStates; to++ {
			if c := r.dirTrans[from][to]; c > 0 {
				s.Directory.Transitions = append(s.Directory.Transitions,
					Transition{From: from.String(), To: to.String(), Count: c})
			}
		}
	}
	for cause := TrapCause(0); cause < nTrapCauses; cause++ {
		if c := r.traps[cause]; c > 0 {
			s.Directory.TrapCauses = append(s.Directory.TrapCauses,
				TrapStats{Cause: cause.String(), Count: c})
		}
	}
	for k := DirKind(0); k < nDirKinds; k++ {
		if agg := r.dirAgg[k]; agg.Events > 0 {
			agg.Kind = k.String()
			s.Directives = append(s.Directives, agg)
		}
	}
	s.PerNode = make([]NodeTotals, r.nodes)
	for n := 0; n < r.nodes; n++ {
		t := &s.PerNode[n]
		t.Node = n
		if n < len(nodeCycles) {
			t.Cycles = nodeCycles[n]
		}
		t.Ops = r.ops[n]
		s.Interp.Ops += r.ops[n]
	}
	for ei := range s.Epochs {
		ep := &s.Epochs[ei]
		ep.WorkingSet.Compact()
		for n := range ep.Nodes {
			ne := &ep.Nodes[n]
			t := &s.PerNode[n]
			t.Hits += ne.Hits
			t.ReadMisses += ne.ReadMisses
			t.WriteMisses += ne.WriteMisses
			t.WriteFaults += ne.WriteFaults
			t.Traps += ne.Traps
			t.Invalidations += ne.Invalidations
			t.StallCycles += ne.StallCycles
			t.BarrierStall += ne.BarrierStall
		}
	}
	return s
}

// CheckConsistency cross-checks the independently-recorded layers of the
// snapshot against each other: the per-epoch per-node counters (recorded by
// the simulator, access by access) must sum to the protocol totals
// (counted by dir1sw), the directory's trap-cause counts must account for
// every trap, the per-kind directive block counts must match the protocol's
// directive counters, and per-variable attributions can never exceed the
// directive totals. The conformance harness and the golden-stats tests run
// this on every snapshot they produce.
func (s *Snapshot) CheckConsistency() error {
	var hits, rm, wm, wf, traps, invals uint64
	for _, ep := range s.Epochs {
		for _, ne := range ep.Nodes {
			hits += ne.Hits
			rm += ne.ReadMisses
			wm += ne.WriteMisses
			wf += ne.WriteFaults
			traps += ne.Traps
			invals += ne.Invalidations
		}
		var wsSum uint64
		for _, ne := range ep.Nodes {
			wsSum += ne.WorkingSet
		}
		if ep.WorkingSet.Count != uint64(len(ep.Nodes)) || ep.WorkingSet.Sum != wsSum {
			return fmt.Errorf("obs: epoch %d working-set histogram (count=%d sum=%d) does not match nodes (count=%d sum=%d)",
				ep.Index, ep.WorkingSet.Count, ep.WorkingSet.Sum, len(ep.Nodes), wsSum)
		}
	}
	p := &s.Protocol
	if hits != p.Hits || rm != p.ReadMisses || wm != p.WriteMisses || wf != p.WriteFaults {
		return fmt.Errorf("obs: per-epoch access sums (hit=%d rm=%d wm=%d wf=%d) disagree with protocol (hit=%d rm=%d wm=%d wf=%d)",
			hits, rm, wm, wf, p.Hits, p.ReadMisses, p.WriteMisses, p.WriteFaults)
	}
	if hits+rm+wm+wf != p.Reads+p.Writes {
		return fmt.Errorf("obs: access outcomes (%d) do not sum to accesses (%d)",
			hits+rm+wm+wf, p.Reads+p.Writes)
	}
	if traps != p.Traps {
		return fmt.Errorf("obs: per-epoch trap sum %d disagrees with protocol traps %d", traps, p.Traps)
	}
	if invals != p.Invalidations {
		return fmt.Errorf("obs: per-epoch invalidation sum %d disagrees with protocol %d", invals, p.Invalidations)
	}
	var causes uint64
	for _, tc := range s.Directory.TrapCauses {
		causes += tc.Count
	}
	if causes != p.Traps {
		return fmt.Errorf("obs: trap causes sum to %d, protocol took %d traps", causes, p.Traps)
	}
	// Live-directory snapshots record every SetState twice: the protocol
	// counts DirEvents, the recorder tallies the (from, to) transition.
	// DirEvents == 0 marks a replayed or legacy snapshot with no directory.
	if p.DirEvents > 0 {
		var trans uint64
		for _, tr := range s.Directory.Transitions {
			trans += tr.Count
		}
		if trans != p.DirEvents {
			return fmt.Errorf("obs: directory transitions sum to %d, protocol counted %d events", trans, p.DirEvents)
		}
	}
	dirWant := map[string]uint64{
		DirCheckOutX.String(): p.CheckOutX,
		DirCheckOutS.String(): p.CheckOutS,
		DirCheckIn.String():   p.CheckIns,
		DirPrefetchX.String(): p.PrefetchX,
		DirPrefetchS.String(): p.PrefetchS,
	}
	var dirBlocks uint64
	for _, d := range s.Directives {
		if d.Blocks != dirWant[d.Kind] {
			return fmt.Errorf("obs: directive %s covers %d blocks, protocol counted %d",
				d.Kind, d.Blocks, dirWant[d.Kind])
		}
		dirBlocks += d.Blocks
	}
	if total := p.CheckOutX + p.CheckOutS + p.CheckIns + p.PrefetchX + p.PrefetchS; dirBlocks != total {
		return fmt.Errorf("obs: directive kinds cover %d blocks, protocol counted %d", dirBlocks, total)
	}
	var varBlocks uint64
	for _, v := range s.Vars {
		varBlocks += v.CheckOutX + v.CheckOutS + v.CheckIns + v.PrefetchX + v.PrefetchS
	}
	if varBlocks > dirBlocks {
		return fmt.Errorf("obs: per-variable attributions (%d blocks) exceed directive totals (%d)", varBlocks, dirBlocks)
	}
	return nil
}

// MarshalIndentJSON returns the snapshot's canonical JSON form: indented,
// trailing newline, deterministic for identical runs. Golden files store
// exactly these bytes.
func (s *Snapshot) MarshalIndentJSON() ([]byte, error) {
	data, err := json.MarshalIndent(s, "", "  ")
	if err != nil {
		return nil, err
	}
	return append(data, '\n'), nil
}

// WriteJSON writes the canonical JSON form to w.
func (s *Snapshot) WriteJSON(w io.Writer) error {
	data, err := s.MarshalIndentJSON()
	if err != nil {
		return err
	}
	_, err = w.Write(data)
	return err
}

// ReadSnapshot decodes a snapshot previously written by WriteJSON.
func ReadSnapshot(rd io.Reader) (*Snapshot, error) {
	var s Snapshot
	dec := json.NewDecoder(rd)
	if err := dec.Decode(&s); err != nil {
		return nil, fmt.Errorf("obs: decoding snapshot: %w", err)
	}
	return &s, nil
}
