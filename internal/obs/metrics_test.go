package obs

import (
	"strings"
	"sync"
	"testing"
)

func TestMetricsCounters(t *testing.T) {
	m := NewMetrics()
	if got := m.Counter("missing"); got != 0 {
		t.Errorf("unset counter = %d, want 0", got)
	}
	m.Inc(`requests_total{endpoint="vet"}`)
	m.Add(`requests_total{endpoint="vet"}`, 2)
	if got := m.Counter(`requests_total{endpoint="vet"}`); got != 3 {
		t.Errorf("counter = %d, want 3", got)
	}
}

func TestMetricsGauges(t *testing.T) {
	m := NewMetrics()
	v := int64(5)
	m.RegisterGauge("queue_depth", func() int64 { return v })
	if got := m.Snapshot()["queue_depth"]; got != 5 {
		t.Errorf("gauge = %d, want 5", got)
	}
	v = -3 // negative gauges clamp to zero in the snapshot
	if got, ok := m.Snapshot()["queue_depth"]; !ok || got != 0 {
		t.Errorf("negative gauge = %d (present %v), want 0", got, ok)
	}
}

func TestMetricsHistograms(t *testing.T) {
	m := NewMetrics()
	for v := uint64(1); v <= 100; v++ {
		m.Observe(`latency_us{endpoint="vet"}`, v)
	}
	snap := m.Snapshot()
	if got := snap[`latency_us_count{endpoint="vet"}`]; got != 100 {
		t.Errorf("count = %d, want 100", got)
	}
	if got := snap[`latency_us_sum{endpoint="vet"}`]; got != 5050 {
		t.Errorf("sum = %d, want 5050", got)
	}
	// Power-of-two buckets: the p50 estimate is the enclosing bucket's
	// upper bound; it must be monotone in q and never exceed the max.
	p50 := snap[`latency_us_p50{endpoint="vet"}`]
	p95 := snap[`latency_us_p95{endpoint="vet"}`]
	p99 := snap[`latency_us_p99{endpoint="vet"}`]
	if p50 < 50 || p50 > 100 {
		t.Errorf("p50 = %d, want within [50,100]", p50)
	}
	if p50 > p95 || p95 > p99 {
		t.Errorf("quantiles not monotone: p50=%d p95=%d p99=%d", p50, p95, p99)
	}
	if p99 > 100 {
		t.Errorf("p99 = %d exceeds the observed max 100", p99)
	}
}

func TestQuantileEdgeCases(t *testing.T) {
	if got := quantile(&Histogram{}, 0.5); got != 0 {
		t.Errorf("empty histogram quantile = %d, want 0", got)
	}
	h := &Histogram{}
	h.Observe(0)
	if got := quantile(h, 0.99); got != 0 {
		t.Errorf("all-zero histogram p99 = %d, want 0", got)
	}
	h2 := &Histogram{}
	h2.Observe(7)
	if got := quantile(h2, 0.5); got != 7 {
		t.Errorf("singleton p50 = %d, want clamped to max 7", got)
	}
}

func TestSuffixed(t *testing.T) {
	for _, c := range []struct{ name, suffix, want string }{
		{"lat", "_p50", "lat_p50"},
		{`lat{e="x"}`, "_p50", `lat_p50{e="x"}`},
	} {
		if got := suffixed(c.name, c.suffix); got != c.want {
			t.Errorf("suffixed(%q,%q) = %q, want %q", c.name, c.suffix, got, c.want)
		}
	}
}

func TestWriteTextSortedAndStable(t *testing.T) {
	m := NewMetrics()
	m.Inc("b_total")
	m.Inc("a_total")
	m.RegisterGauge("c_gauge", func() int64 { return 1 })
	var sb1, sb2 strings.Builder
	if err := m.WriteText(&sb1); err != nil {
		t.Fatal(err)
	}
	if err := m.WriteText(&sb2); err != nil {
		t.Fatal(err)
	}
	if sb1.String() != sb2.String() {
		t.Error("exposition is not deterministic")
	}
	lines := strings.Split(strings.TrimSpace(sb1.String()), "\n")
	want := []string{"a_total 1", "b_total 1", "c_gauge 1"}
	if len(lines) != len(want) {
		t.Fatalf("lines = %q, want %q", lines, want)
	}
	for i := range want {
		if lines[i] != want[i] {
			t.Errorf("line %d = %q, want %q", i, lines[i], want[i])
		}
	}
}

func TestMetricsConcurrent(t *testing.T) {
	m := NewMetrics()
	var wg sync.WaitGroup
	for i := 0; i < 8; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for j := 0; j < 100; j++ {
				m.Inc("n")
				m.Observe("h", uint64(j))
				m.Snapshot()
			}
		}()
	}
	wg.Wait()
	if got := m.Counter("n"); got != 800 {
		t.Errorf("counter = %d, want 800", got)
	}
	if got := m.Snapshot()["h_count"]; got != 800 {
		t.Errorf("histogram count = %d, want 800", got)
	}
}
