package obs

import (
	"fmt"
	"io"
	"sort"
	"strings"
	"sync"
)

// Metrics is a small dependency-free metrics registry for the serving layer
// (internal/serve, cmd/cachierd): named monotonic counters, callback gauges,
// and power-of-two latency histograms built on this package's Histogram.
//
// Names are free-form and may carry Prometheus-style labels inline
// (`requests_total{endpoint="annotate",code="200"}`); the registry treats
// the whole string as the key, which keeps registration implicit and the
// text exposition deterministic (keys render in sorted order). All methods
// are safe for concurrent use.
type Metrics struct {
	mu       sync.Mutex
	counters map[string]uint64
	gauges   map[string]func() int64
	hists    map[string]*Histogram
}

// NewMetrics returns an empty registry.
func NewMetrics() *Metrics {
	return &Metrics{
		counters: make(map[string]uint64),
		gauges:   make(map[string]func() int64),
		hists:    make(map[string]*Histogram),
	}
}

// Inc adds 1 to the named counter, creating it at zero first.
func (m *Metrics) Inc(name string) { m.Add(name, 1) }

// Add adds delta to the named counter, creating it at zero first.
func (m *Metrics) Add(name string, delta uint64) {
	m.mu.Lock()
	m.counters[name] += delta
	m.mu.Unlock()
}

// Counter returns the named counter's current value (0 if never written).
func (m *Metrics) Counter(name string) uint64 {
	m.mu.Lock()
	defer m.mu.Unlock()
	return m.counters[name]
}

// RegisterGauge installs a callback gauge; the callback is invoked at
// exposition time and must itself be safe for concurrent use.
func (m *Metrics) RegisterGauge(name string, fn func() int64) {
	m.mu.Lock()
	m.gauges[name] = fn
	m.mu.Unlock()
}

// Observe adds one sample to the named histogram, creating it first.
func (m *Metrics) Observe(name string, v uint64) {
	m.mu.Lock()
	h := m.hists[name]
	if h == nil {
		h = &Histogram{}
		m.hists[name] = h
	}
	h.Observe(v)
	m.mu.Unlock()
}

// quantile estimates the q-quantile (0 < q <= 1) from the histogram's
// power-of-two buckets: the returned value is the upper bound of the bucket
// holding the q-th sample, clamped to the observed maximum — coarse, but
// monotone and cheap, which is all a /metrics page needs.
func quantile(h *Histogram, q float64) uint64 {
	if h.Count == 0 {
		return 0
	}
	rank := uint64(q * float64(h.Count))
	if rank == 0 {
		rank = 1
	}
	var seen uint64
	for i, c := range h.Buckets {
		seen += c
		if seen >= rank {
			if i == 0 {
				return 0
			}
			ub := (uint64(1) << uint(i)) - 1
			if ub > h.Max {
				ub = h.Max
			}
			return ub
		}
	}
	return h.Max
}

// Snapshot returns every counter, gauge, and histogram summary stat as one
// flat sorted-key map — the JSON dump cmd/cachierd writes on shutdown.
// Negative gauge values clamp to zero.
func (m *Metrics) Snapshot() map[string]uint64 {
	m.mu.Lock()
	defer m.mu.Unlock()
	out := make(map[string]uint64, len(m.counters)+len(m.gauges)+4*len(m.hists))
	for k, v := range m.counters {
		out[k] = v
	}
	for k, fn := range m.gauges {
		if v := fn(); v > 0 {
			out[k] = uint64(v)
		} else {
			out[k] = 0
		}
	}
	for k, h := range m.hists {
		out[suffixed(k, "_count")] = h.Count
		out[suffixed(k, "_sum")] = h.Sum
		out[suffixed(k, "_p50")] = quantile(h, 0.50)
		out[suffixed(k, "_p95")] = quantile(h, 0.95)
		out[suffixed(k, "_p99")] = quantile(h, 0.99)
	}
	return out
}

// suffixed appends a stat suffix to a metric name, keeping any inline label
// set at the end (`lat{e="x"}` + `_p50` → `lat_p50{e="x"}`).
func suffixed(name, suffix string) string {
	if i := strings.IndexByte(name, '{'); i >= 0 {
		return name[:i] + suffix + name[i:]
	}
	return name + suffix
}

// WriteText renders the registry in Prometheus text exposition format
// (untyped samples, one per line, sorted by name).
func (m *Metrics) WriteText(w io.Writer) error {
	snap := m.Snapshot()
	keys := make([]string, 0, len(snap))
	for k := range snap {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	for _, k := range keys {
		if _, err := fmt.Fprintf(w, "%s %d\n", k, snap[k]); err != nil {
			return err
		}
	}
	return nil
}
