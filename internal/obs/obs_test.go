package obs

import (
	"bytes"
	"math/rand"
	"testing"
)

// checkHistogram asserts the documented Histogram invariants.
func checkHistogram(t *testing.T, h *Histogram) {
	t.Helper()
	var sum uint64
	for _, c := range h.Buckets {
		sum += c
	}
	if sum != h.Count {
		t.Errorf("bucket sum %d != count %d", sum, h.Count)
	}
	if h.Count == 0 {
		if h.Sum != 0 || h.Min != 0 || h.Max != 0 {
			t.Errorf("empty histogram has sum=%d min=%d max=%d", h.Sum, h.Min, h.Max)
		}
		return
	}
	if h.Min > h.Max {
		t.Errorf("min %d > max %d", h.Min, h.Max)
	}
	if m := h.Mean(); m < float64(h.Min) || m > float64(h.Max) {
		t.Errorf("mean %f outside [%d, %d]", m, h.Min, h.Max)
	}
}

func TestHistogramProperties(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	for trial := 0; trial < 50; trial++ {
		var h Histogram
		var sum, min, max uint64
		n := rng.Intn(200)
		for i := 0; i < n; i++ {
			// Mix magnitudes so many buckets get hit, including zero.
			v := uint64(rng.Int63()) >> uint(rng.Intn(64))
			if rng.Intn(10) == 0 {
				v = 0
			}
			h.Observe(v)
			sum += v
			if i == 0 || v < min {
				min = v
			}
			if v > max {
				max = v
			}
		}
		checkHistogram(t, &h)
		if h.Count != uint64(n) || h.Sum != sum {
			t.Fatalf("count/sum = %d/%d, want %d/%d", h.Count, h.Sum, n, sum)
		}
		if n > 0 && (h.Min != min || h.Max != max) {
			t.Fatalf("min/max = %d/%d, want %d/%d", h.Min, h.Max, min, max)
		}
		h.Compact()
		checkHistogram(t, &h)
		if n == 0 && h.Buckets != nil {
			t.Error("empty histogram did not compact to nil buckets")
		}
		if len(h.Buckets) > 0 && h.Buckets[len(h.Buckets)-1] == 0 {
			t.Error("compact left a trailing empty bucket")
		}
	}
}

func TestHistogramBucketBoundaries(t *testing.T) {
	cases := []struct {
		v    uint64
		want int
	}{
		{0, 0}, {1, 1}, {2, 2}, {3, 2}, {4, 3}, {7, 3}, {8, 4},
		{1 << 62, 63}, {^uint64(0), 64},
	}
	for _, c := range cases {
		if got := bucketOf(c.v); got != c.want {
			t.Errorf("bucketOf(%d) = %d, want %d", c.v, got, c.want)
		}
	}
}

func TestHistogramMerge(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	var a, b, all Histogram
	for i := 0; i < 300; i++ {
		v := uint64(rng.Int63()) >> uint(rng.Intn(64))
		all.Observe(v)
		if i%2 == 0 {
			a.Observe(v)
		} else {
			b.Observe(v)
		}
	}
	a.Merge(&b)
	checkHistogram(t, &a)
	if a.Count != all.Count || a.Sum != all.Sum || a.Min != all.Min || a.Max != all.Max {
		t.Errorf("merged = {%d %d %d %d}, direct = {%d %d %d %d}",
			a.Count, a.Sum, a.Min, a.Max, all.Count, all.Sum, all.Min, all.Max)
	}
	var empty Histogram
	empty.Merge(&Histogram{})
	checkHistogram(t, &empty)
}

// drive replays a fixed scripted run against a recorder; the script touches
// every recording entry point across two epochs plus a final partial one.
func drive(r *Recorder) {
	r.Access(0, Hit, 1, 1, false, 10)
	r.Access(0, ReadMiss, 2, 80, false, 90)
	r.Access(1, WriteMiss, 2, 120, true, 120)
	r.Trap(TrapSteal)
	r.Invalidations(1, 1)
	r.DirTransition(StateIdle, StateShared)
	r.DirTransition(StateShared, StateExclusive)
	r.Directive(0, DirCheckOutX, 4, 130)
	r.VarDirective("U", DirCheckOutX, 4)
	r.DirectiveTrap(0, 130)
	r.Trap(TrapUpgrade)
	r.Work(0, 50)
	r.Handoff()
	r.BarrierEnd(3, []uint64{180, 150}, 260)
	r.Access(1, WriteFault, 7, 60, false, 320)
	r.Directive(1, DirCheckIn, 2, 330)
	r.VarDirective("V", DirCheckIn, 2)
	r.Handoff()
	r.BarrierEnd(3, []uint64{300, 330}, 410)
	r.Access(0, Hit, 7, 1, false, 411)
	r.NodeDone(0, 500)
	r.NodeDone(1, 520)
	r.Finish([]uint64{500, 520})
	r.SetOps(0, 1000)
	r.SetOps(1, 900)
}

func snapshotOf(r *Recorder) *Snapshot {
	return r.Snapshot(520, []uint64{500, 520}, 2, ProtocolStats{})
}

func TestSnapshotDeterminism(t *testing.T) {
	var data [2][]byte
	for i := range data {
		r := New(2, 32)
		r.EnableTimeline()
		drive(r)
		d, err := snapshotOf(r).MarshalIndentJSON()
		if err != nil {
			t.Fatal(err)
		}
		data[i] = d
	}
	if !bytes.Equal(data[0], data[1]) {
		t.Fatalf("identical recorder scripts produced different snapshots:\n%s\n----\n%s", data[0], data[1])
	}
}

func TestSnapshotShape(t *testing.T) {
	r := New(2, 32)
	r.EnableTimeline()
	drive(r)
	s := snapshotOf(r)
	if len(s.Epochs) != 3 {
		t.Fatalf("epochs = %d, want 3 (two barriers + final)", len(s.Epochs))
	}
	if s.Epochs[2].BarrierPC != -1 {
		t.Errorf("final epoch barrier PC = %d, want -1", s.Epochs[2].BarrierPC)
	}
	// Epoch 0, node 0: one hit + one read miss, 80 stall cycles, one
	// directive of 4 blocks, one directive trap; barrier stall 260-180.
	n0 := s.Epochs[0].Nodes[0]
	if n0.Hits != 1 || n0.ReadMisses != 1 || n0.StallCycles != 80 ||
		n0.DirectiveOps != 1 || n0.DirectiveBlocks != 4 || n0.Traps != 1 {
		t.Errorf("epoch 0 node 0 = %+v", n0)
	}
	if n0.BarrierStall != 80 {
		t.Errorf("barrier stall = %d, want 80", n0.BarrierStall)
	}
	// Working set: node 0 touched blocks {1, 2} in epoch 0.
	if n0.WorkingSet != 2 {
		t.Errorf("working set = %d, want 2", n0.WorkingSet)
	}
	checkHistogram(t, &s.Epochs[0].WorkingSet)
	// Vars are name-sorted.
	if len(s.Vars) != 2 || s.Vars[0].Name != "U" || s.Vars[1].Name != "V" {
		t.Errorf("vars = %+v", s.Vars)
	}
	if s.Vars[0].CheckOutX != 4 || s.Vars[0].CheckOuts() != 4 {
		t.Errorf("U = %+v", s.Vars[0])
	}
	if got := s.VarByName("V").CheckIns; got != 2 {
		t.Errorf("V check-ins = %d", got)
	}
	if s.VarByName("missing") != (VarStats{Name: "missing"}) {
		t.Error("missing var not zero")
	}
	// Per-node totals aggregate the epochs.
	if s.PerNode[0].Ops != 1000 || s.PerNode[1].Ops != 900 || s.Interp.Ops != 1900 {
		t.Errorf("ops = %+v / %+v / %d", s.PerNode[0], s.PerNode[1], s.Interp.Ops)
	}
	if s.PerNode[0].Hits != 2 || s.PerNode[1].Invalidations != 1 {
		t.Errorf("per-node totals = %+v", s.PerNode)
	}
	if s.Interp.Handoffs != 2 || s.Interp.WorkCycles != 50 {
		t.Errorf("interp = %+v", s.Interp)
	}
	// Directory detail: only recorded transitions and causes appear.
	if len(s.Directory.Transitions) != 2 || len(s.Directory.TrapCauses) != 2 {
		t.Errorf("directory = %+v", s.Directory)
	}
	// Round trip through the JSON codec.
	data, err := s.MarshalIndentJSON()
	if err != nil {
		t.Fatal(err)
	}
	back, err := ReadSnapshot(bytes.NewReader(data))
	if err != nil {
		t.Fatal(err)
	}
	data2, err := back.MarshalIndentJSON()
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(data, data2) {
		t.Error("snapshot does not round-trip through JSON")
	}
}

// TestCounterMonotonicity: replaying a prefix of a script can never yield
// larger aggregate counters than the full script — recording only adds.
func TestCounterMonotonicity(t *testing.T) {
	full := New(2, 32)
	drive(full)
	fullSnap := snapshotOf(full)

	prefix := New(2, 32)
	prefix.Access(0, Hit, 1, 1, false, 10)
	prefix.Access(0, ReadMiss, 2, 80, false, 90)
	prefix.Trap(TrapSteal)
	prefix.Handoff()
	prefix.Finish([]uint64{90, 0})
	preSnap := prefix.Snapshot(90, []uint64{90, 0}, 0, ProtocolStats{})

	total := func(s *Snapshot) (acc, traps, handoffs uint64) {
		for _, n := range s.PerNode {
			acc += n.Hits + n.ReadMisses + n.WriteMisses + n.WriteFaults
			traps += n.Traps
		}
		return acc, traps, s.Interp.Handoffs
	}
	fa, ft, fh := total(fullSnap)
	pa, pt, ph := total(preSnap)
	if pa > fa || pt > ft || ph > fh {
		t.Errorf("prefix counters (%d,%d,%d) exceed full script (%d,%d,%d)", pa, pt, ph, fa, ft, fh)
	}
}

// TestNilRecorder drives every method on the disabled (nil) recorder: all
// must be no-ops, none may panic.
func TestNilRecorder(t *testing.T) {
	var r *Recorder
	if r.Enabled() {
		t.Error("nil recorder reports enabled")
	}
	r.EnableTimeline()
	drive(r)
	if s := r.Snapshot(1, []uint64{1}, 0, ProtocolStats{}); s != nil {
		t.Errorf("nil recorder snapshot = %+v", s)
	}
	if tl := r.Timeline("x"); tl != nil {
		t.Errorf("nil recorder timeline = %+v", tl)
	}
	if err := r.WriteTimeline(&bytes.Buffer{}, "x"); err == nil {
		t.Error("nil recorder WriteTimeline did not fail")
	}
	if v := r.Var("U"); v != (VarStats{Name: "U"}) {
		t.Errorf("nil recorder var = %+v", v)
	}
}

// TestDisabledEquivalence: a nil recorder and an enabled one receive the
// same call sequence; the nil one must not influence anything (trivially) —
// and the enabled one must not be influenced by how many times Snapshot is
// called (it is a pure fold).
func TestRepeatedSnapshotsAgree(t *testing.T) {
	r := New(2, 32)
	drive(r)
	a, err := snapshotOf(r).MarshalIndentJSON()
	if err != nil {
		t.Fatal(err)
	}
	b, err := snapshotOf(r).MarshalIndentJSON()
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(a, b) {
		t.Error("repeated Snapshot() calls on one recorder disagree")
	}
}

func TestEnumStrings(t *testing.T) {
	for k := DirKind(0); k < nDirKinds; k++ {
		if k.String() == "directive?" {
			t.Errorf("DirKind %d has no name", k)
		}
	}
	for c := TrapCause(0); c < nTrapCauses; c++ {
		if c.String() == "trap?" {
			t.Errorf("TrapCause %d has no name", c)
		}
	}
	for s := DirState(0); s < nDirStates; s++ {
		if s.String() == "state?" {
			t.Errorf("DirState %d has no name", s)
		}
	}
}
