// Package dirn models the limited-pointer hardware directory protocols of
// the Agarwal taxonomy the Dir1SW work positions itself within ("An
// Evaluation of Directory Schemes for Cache Coherence", ISCA 1988): DirₙNB
// and DirₙB, each keeping n sharing pointers per block and handling every
// transition in hardware (no software traps).
//
// The two differ in how they survive pointer overflow — an (n+1)-th sharer
// arriving:
//
//   - DirₙNB (no broadcast) evicts: it invalidates one existing sharer's
//     copy to free a pointer, so the directory always knows every sharer
//     exactly and invalidations are always directed. Wide read sharing
//     thrashes (each new reader kills an old one), but writes never
//     broadcast.
//
//   - DirₙB (broadcast) sets a broadcast bit and stops tracking: reads keep
//     hitting, but the next write must broadcast invalidations to every
//     node, because the directory no longer knows who holds a copy. The bit
//     is sticky while the block stays Shared (the pointers cannot regain
//     precision) and clears when the entry leaves Shared.
//
// Both service exclusive-held blocks by hardware forwarding (downgrade or
// ownership handoff), like Dir1SW's full-map ablation. CICO check-ins still
// help — they shrink the sharer set before a write, avoiding directed
// invalidations, overflow evictions, and broadcasts — which is exactly the
// cross-protocol question the Figure-6 sweep answers.
//
// The model keeps the exact sharer set for both variants (as it does for
// Dir1SW) so invalidations can be delivered; the pointer limit is enforced
// behaviourally (evictions, broadcast bit) and as a checked invariant
// (CheckEntry: sharer count ≤ n for NB, or the broadcast bit set and the
// entry Shared for B). Pointer eviction and broadcast handling behave
// identically under the lane engine's batched access resolution
// (coherence/batch.go): both run inside generation-bumped miss paths, so
// no memoized access run ever spans them.
package dirn

import (
	"fmt"

	"cachier/internal/cache"
	"cachier/internal/coherence"
)

// NB returns the DirₙNB protocol with n sharing pointers. It panics if
// n < 1 (a directory needs at least one pointer).
func NB(n int) coherence.Protocol {
	if n < 1 {
		panic(fmt.Sprintf("dirn: DirnNB needs n >= 1 pointers, got %d", n))
	}
	return nb{n: n}
}

// B returns the DirₙB protocol with n sharing pointers. It panics if n < 1.
func B(n int) coherence.Protocol {
	if n < 1 {
		panic(fmt.Sprintf("dirn: DirnB needs n >= 1 pointers, got %d", n))
	}
	return broadcast{n: n}
}

type nb struct{ n int }

func (p nb) Name() string { return fmt.Sprintf("Dir%dNB", p.n) }

// enforce frees sharing pointers after keep joined the sharer set: while
// more than n nodes share the block, the lowest-numbered sharer other than
// keep loses its copy to a directed hardware invalidation. Returns the
// extra cost charged to the requester.
func (p nb) enforce(s *coherence.System, e *coherence.Entry, block uint64, keep int) (cost uint64) {
	co := s.Costs()
	for e.Sharers.Count() > p.n {
		victim := -1
		for _, m := range e.Sharers.Members() {
			if m != keep {
				victim = m
				break
			}
		}
		if victim < 0 {
			break
		}
		s.CancelInflight(victim, block)
		s.Cache(victim).Invalidate(block)
		s.NoteInvalidated(e, victim)
		e.Sharers.Remove(victim)
		s.Stats.Invalidations++
		s.Stats.CtlMsgs += 2 // directed invalidation + ack
		s.Recorder().Invalidations(keep, 1)
		cost += co.InvalMsg
	}
	return cost
}

func (p nb) FetchShared(s *coherence.System, e *coherence.Entry, block uint64, node int) (cost uint64, trap bool) {
	co := s.Costs()
	switch e.State {
	case coherence.Idle:
		s.SetState(e, coherence.Shared)
		e.Sharers.Add(node)
		s.Stats.DataMsgs++
		return co.CleanMiss(), false
	case coherence.Shared:
		e.Sharers.Add(node)
		s.Stats.DataMsgs++
		return co.CleanMiss() + p.enforce(s, e, block, node), false
	default: // Exclusive by another node: hardware forwarding + downgrade
		cost = downgradeOwner(s, e, block, node)
		return cost + p.enforce(s, e, block, node), false
	}
}

func (p nb) Upgrade(s *coherence.System, e *coherence.Entry, block uint64, node int) (cost uint64, trap bool) {
	return directedUpgrade(s, e, block, node), false
}

func (p nb) FetchExclusive(s *coherence.System, e *coherence.Entry, block uint64, node int) (cost uint64, trap bool) {
	return directedFetchExclusive(s, e, block, node), false
}

func (p nb) CheckEntry(s *coherence.System, e *coherence.Entry, block uint64) error {
	if c := e.Sharers.Count(); c > p.n {
		return fmt.Errorf("%d sharers exceed the %d-pointer bound", c, p.n)
	}
	if e.Bcast {
		return fmt.Errorf("broadcast bit set on a no-broadcast directory")
	}
	return nil
}

type broadcast struct{ n int }

func (p broadcast) Name() string { return fmt.Sprintf("Dir%dB", p.n) }

func (p broadcast) FetchShared(s *coherence.System, e *coherence.Entry, block uint64, node int) (cost uint64, trap bool) {
	co := s.Costs()
	switch e.State {
	case coherence.Idle:
		s.SetState(e, coherence.Shared)
		e.Sharers.Add(node)
		s.Stats.DataMsgs++
		return co.CleanMiss(), false
	case coherence.Shared:
		e.Sharers.Add(node)
		s.Stats.DataMsgs++
		if e.Sharers.Count() > p.n {
			e.Bcast = true // pointers overflow: stop tracking, mark for broadcast
		}
		return co.CleanMiss(), false
	default: // Exclusive by another node: hardware forwarding + downgrade
		cost = downgradeOwner(s, e, block, node)
		if e.Sharers.Count() > p.n {
			e.Bcast = true
		}
		return cost, false
	}
}

func (p broadcast) Upgrade(s *coherence.System, e *coherence.Entry, block uint64, node int) (cost uint64, trap bool) {
	if !e.Bcast {
		return directedUpgrade(s, e, block, node), false
	}
	// Overflowed: the directory no longer knows the sharers, so hardware
	// broadcasts invalidations to every other node and collects acks.
	co := s.Costs()
	others := invalidateSharers(s, e, block, node)
	s.SetState(e, coherence.Exclusive) // clears the broadcast bit
	e.Owner = node
	e.Sharers.Clear()
	s.Recorder().Invalidations(node, uint64(others))
	bcast := uint64(s.Nodes() - 1)
	s.Stats.CtlMsgs += 2 * bcast
	return co.Upgrade() + bcast*co.InvalMsg, false
}

func (p broadcast) FetchExclusive(s *coherence.System, e *coherence.Entry, block uint64, node int) (cost uint64, trap bool) {
	if e.State != coherence.Shared || !e.Bcast {
		return directedFetchExclusive(s, e, block, node), false
	}
	co := s.Costs()
	others := invalidateSharers(s, e, block, node)
	s.SetState(e, coherence.Exclusive)
	e.Owner = node
	e.Sharers.Clear()
	s.Recorder().Invalidations(node, uint64(others))
	s.Stats.DataMsgs++
	bcast := uint64(s.Nodes() - 1)
	s.Stats.CtlMsgs += 2 * bcast
	return co.CleanMiss() + bcast*co.InvalMsg, false
}

func (p broadcast) CheckEntry(s *coherence.System, e *coherence.Entry, block uint64) error {
	if e.Bcast && e.State != coherence.Shared {
		return fmt.Errorf("broadcast bit set on a %v entry", e.State)
	}
	if !e.Bcast {
		if c := e.Sharers.Count(); c > p.n {
			return fmt.Errorf("%d sharers exceed the %d-pointer bound without the broadcast bit", c, p.n)
		}
	}
	return nil
}

// downgradeOwner services a shared fetch of an Exclusive-held block in
// hardware: forward the request to the owner, write back if dirty,
// downgrade its copy, and register both nodes as sharers. Returns the
// 4-hop forwarding cost.
func downgradeOwner(s *coherence.System, e *coherence.Entry, block uint64, node int) (cost uint64) {
	co := s.Costs()
	owner := e.Owner
	s.CancelInflight(owner, block)
	if s.Cache(owner).Dirty(block) {
		s.Stats.Writebacks++
	}
	s.Cache(owner).SetState(block, cache.Shared)
	s.SetState(e, coherence.Shared)
	e.Sharers.Clear()
	e.Sharers.Add(owner)
	e.Sharers.Add(node)
	s.Stats.CtlMsgs += 2 // downgrade request + ack
	s.Stats.DataMsgs += 2
	return 4*co.NetHop + co.DirService + co.MemAccess
}

// invalidateSharers invalidates every sharer's copy except node's,
// returning how many copies were dropped. Message accounting is the
// caller's (directed vs broadcast).
func invalidateSharers(s *coherence.System, e *coherence.Entry, block uint64, node int) (others int) {
	for _, sh := range e.Sharers.Members() {
		if sh != node {
			s.CancelInflight(sh, block)
			s.Cache(sh).Invalidate(block)
			s.NoteInvalidated(e, sh)
			s.Stats.Invalidations++
			others++
		}
	}
	return others
}

// directedUpgrade is the in-pointer-bound write fault both variants share:
// the directory knows every sharer, so invalidations are directed and
// handled in hardware (the same transition Dir1SW's full-map ablation
// performs).
func directedUpgrade(s *coherence.System, e *coherence.Entry, block uint64, node int) (cost uint64) {
	co := s.Costs()
	others := invalidateSharers(s, e, block, node)
	s.SetState(e, coherence.Exclusive)
	e.Owner = node
	e.Sharers.Clear()
	s.Recorder().Invalidations(node, uint64(others))
	if others == 0 {
		return co.Upgrade()
	}
	s.Stats.CtlMsgs += 2 * uint64(others)
	return co.Upgrade() + uint64(others)*co.InvalMsg
}

// directedFetchExclusive is the write-miss path with exact sharer
// knowledge: directed invalidations from Shared, hardware ownership
// handoff from Exclusive.
func directedFetchExclusive(s *coherence.System, e *coherence.Entry, block uint64, node int) (cost uint64) {
	co := s.Costs()
	switch e.State {
	case coherence.Idle:
		s.SetState(e, coherence.Exclusive)
		e.Owner = node
		s.Stats.DataMsgs++
		return co.CleanMiss()
	case coherence.Shared:
		others := invalidateSharers(s, e, block, node)
		s.SetState(e, coherence.Exclusive)
		e.Owner = node
		e.Sharers.Clear()
		s.Recorder().Invalidations(node, uint64(others))
		s.Stats.DataMsgs++
		if others == 0 {
			return co.CleanMiss()
		}
		s.Stats.CtlMsgs += 2 * uint64(others)
		return co.CleanMiss() + uint64(others)*co.InvalMsg
	default: // Exclusive by another node: hardware ownership handoff
		owner := e.Owner
		s.CancelInflight(owner, block)
		if s.Cache(owner).Dirty(block) {
			s.Stats.Writebacks++
		}
		s.Cache(owner).Invalidate(block)
		s.NoteInvalidated(e, owner)
		s.Stats.Invalidations++
		s.SetState(e, coherence.Exclusive)
		e.Owner = node
		s.Recorder().Invalidations(node, 1)
		s.Stats.CtlMsgs += 2
		s.Stats.DataMsgs += 2
		return 4*co.NetHop + co.DirService + co.MemAccess
	}
}
