package dirn_test

import (
	"math/rand"
	"testing"

	"cachier/internal/coherence"
	"cachier/internal/dirn"
)

func mk(t *testing.T, nodes int, proto coherence.Protocol) *coherence.System {
	t.Helper()
	s, err := coherence.New(coherence.Config{
		Nodes:     nodes,
		CacheSize: 1024,
		Assoc:     2,
		BlockSize: 32,
		Costs:     coherence.DefaultCosts(),
		Probe:     true, // exercises CheckEntry after every operation
	}, proto)
	if err != nil {
		t.Fatal(err)
	}
	return s
}

func TestNames(t *testing.T) {
	if got := dirn.NB(4).Name(); got != "Dir4NB" {
		t.Errorf("NB(4).Name() = %q", got)
	}
	if got := dirn.B(2).Name(); got != "Dir2B" {
		t.Errorf("B(2).Name() = %q", got)
	}
}

func TestBadPointerCountPanics(t *testing.T) {
	for _, f := range []func(){func() { dirn.NB(0) }, func() { dirn.B(-1) }} {
		func() {
			defer func() {
				if recover() == nil {
					t.Error("n < 1 accepted")
				}
			}()
			f()
		}()
	}
}

// TestNBNeverTraps: every transition that traps under Dir1SW — upgrade with
// sharers, write steal, read of remote-exclusive — is hardware under DirnNB.
func TestNBNeverTraps(t *testing.T) {
	s := mk(t, 4, dirn.NB(1))
	for n := 0; n < 4; n++ {
		if r := s.Read(n, 64, 0); r.Trap {
			t.Errorf("node %d read trapped", n)
		}
	}
	if r := s.Write(0, 64, 1); r.Trap {
		t.Error("write trapped")
	}
	if r := s.Write(1, 64, 2); r.Trap {
		t.Error("steal trapped")
	}
	if r := s.Read(2, 64, 3); r.Trap {
		t.Error("read of exclusive trapped")
	}
	if s.Stats.Traps != 0 {
		t.Errorf("traps = %d", s.Stats.Traps)
	}
	if err := s.CheckCoherence(); err != nil {
		t.Error(err)
	}
	if err := s.ProbeError(); err != nil {
		t.Error(err)
	}
}

// TestNBOverflowEvicts: the (n+1)-th reader costs an existing sharer its
// copy — the lowest-numbered one other than the requester — and the sharer
// set never exceeds n.
func TestNBOverflowEvicts(t *testing.T) {
	s := mk(t, 4, dirn.NB(2))
	co := coherence.DefaultCosts()
	s.Read(0, 64, 0)
	s.Read(1, 64, 0)
	r := s.Read(2, 64, 0)
	if want := co.CleanMiss() + co.InvalMsg; r.Cycles != want {
		t.Errorf("overflowing read = %d cycles, want %d", r.Cycles, want)
	}
	if s.Stats.Invalidations != 1 {
		t.Errorf("invalidations = %d, want 1", s.Stats.Invalidations)
	}
	if _, _, sharers := s.DirView(2); len(sharers) != 2 || sharers[0] != 1 || sharers[1] != 2 {
		t.Errorf("sharers = %v, want [1 2] (node 0 evicted)", sharers)
	}
	// Node 0 lost its copy; node 1 kept its.
	if r := s.Read(0, 96, 0); r.Kind != coherence.ReadMiss {
		t.Errorf("unrelated read: %v", r.Kind)
	}
	if r := s.Read(1, 64, 0); r.Kind != coherence.Hit {
		t.Errorf("surviving sharer: %v, want hit", r.Kind)
	}
	if err := s.CheckCoherence(); err != nil {
		t.Error(err)
	}
}

// TestNBDowngradeOverflow: reading an exclusive-held block with n=1 leaves
// only the reader sharing — the downgraded owner's copy is immediately
// evicted to fit the single pointer.
func TestNBDowngradeOverflow(t *testing.T) {
	s := mk(t, 2, dirn.NB(1))
	co := coherence.DefaultCosts()
	s.Write(0, 64, 0)
	r := s.Read(1, 64, 1)
	if r.Trap {
		t.Error("hardware downgrade trapped")
	}
	if want := 4*co.NetHop + co.DirService + co.MemAccess + co.InvalMsg; r.Cycles != want {
		t.Errorf("downgrade+evict = %d cycles, want %d", r.Cycles, want)
	}
	if s.Stats.Writebacks != 1 {
		t.Errorf("writebacks = %d (dirty owner copy)", s.Stats.Writebacks)
	}
	if _, _, sharers := s.DirView(2); len(sharers) != 1 || sharers[0] != 1 {
		t.Errorf("sharers = %v, want [1]", sharers)
	}
	if err := s.CheckCoherence(); err != nil {
		t.Error(err)
	}
}

// TestNBDirectedWrite: a write with other sharers performs directed
// invalidations in hardware, at full-map cost, never a broadcast.
func TestNBDirectedWrite(t *testing.T) {
	s := mk(t, 8, dirn.NB(4))
	co := coherence.DefaultCosts()
	s.Read(0, 64, 0)
	s.Read(1, 64, 0)
	s.Read(2, 64, 0)
	before := s.Stats.CtlMsgs
	r := s.Write(0, 64, 1)
	if r.Trap {
		t.Error("directed upgrade trapped")
	}
	if want := co.Upgrade() + 2*co.InvalMsg; r.Cycles != want {
		t.Errorf("upgrade = %d cycles, want %d", r.Cycles, want)
	}
	if got := s.Stats.CtlMsgs - before; got != 4 {
		t.Errorf("control messages = %d, want 4 (directed)", got)
	}
	if s.Stats.Invalidations != 2 {
		t.Errorf("invalidations = %d", s.Stats.Invalidations)
	}
}

// TestBSetsBroadcastBitAndBroadcastsOnWrite: overflowing DirnB's pointers
// keeps every copy alive, but the next write pays a broadcast to all
// Nodes-1 — the directory no longer knows the sharers.
func TestBSetsBroadcastBitAndBroadcastsOnWrite(t *testing.T) {
	const nodes = 8
	s := mk(t, nodes, dirn.B(2))
	co := coherence.DefaultCosts()
	s.Read(0, 64, 0)
	s.Read(1, 64, 0)
	s.Read(2, 64, 0) // overflow: bit set, no eviction
	if s.Stats.Invalidations != 0 {
		t.Fatalf("overflow invalidated a copy: %d", s.Stats.Invalidations)
	}
	for n := 0; n < 3; n++ {
		if r := s.Read(n, 64, 1); r.Kind != coherence.Hit {
			t.Errorf("node %d lost its copy to overflow", n)
		}
	}
	before := s.Stats.CtlMsgs
	r := s.Write(0, 64, 2)
	if r.Trap {
		t.Error("broadcast upgrade trapped (DirnB broadcasts in hardware)")
	}
	if want := co.Upgrade() + (nodes-1)*co.InvalMsg; r.Cycles != want {
		t.Errorf("broadcast upgrade = %d cycles, want %d", r.Cycles, want)
	}
	if got := s.Stats.CtlMsgs - before; got != 2*(nodes-1) {
		t.Errorf("control messages = %d, want %d (broadcast)", got, 2*(nodes-1))
	}
	if s.Stats.Invalidations != 2 {
		t.Errorf("invalidations = %d, want 2 (the real sharers)", s.Stats.Invalidations)
	}
	if err := s.CheckCoherence(); err != nil {
		t.Error(err)
	}
}

// TestBDirectedUnderBound: while the pointers suffice, DirnB writes are
// directed exactly like DirnNB's.
func TestBDirectedUnderBound(t *testing.T) {
	s := mk(t, 8, dirn.B(4))
	co := coherence.DefaultCosts()
	s.Read(1, 64, 0)
	s.Read(2, 64, 0)
	before := s.Stats.CtlMsgs
	r := s.Write(3, 64, 1) // write miss with 2 sharers, under the bound
	if want := co.CleanMiss() + 2*co.InvalMsg; r.Cycles != want {
		t.Errorf("directed write miss = %d cycles, want %d", r.Cycles, want)
	}
	if got := s.Stats.CtlMsgs - before; got != 4 {
		t.Errorf("control messages = %d, want 4", got)
	}
}

// TestBBroadcastWriteMiss: a write miss to an overflowed block broadcasts
// too (the requester was never a sharer; everyone else might be).
func TestBBroadcastWriteMiss(t *testing.T) {
	const nodes = 8
	s := mk(t, nodes, dirn.B(1))
	co := coherence.DefaultCosts()
	s.Read(0, 64, 0)
	s.Read(1, 64, 0) // overflow at n=1
	r := s.Write(2, 64, 1)
	if want := co.CleanMiss() + (nodes-1)*co.InvalMsg; r.Cycles != want {
		t.Errorf("broadcast write miss = %d cycles, want %d", r.Cycles, want)
	}
	if s.Stats.Invalidations != 2 {
		t.Errorf("invalidations = %d, want 2", s.Stats.Invalidations)
	}
}

// TestBBitClearsWhenBlockGoesIdle: once every sharer checks the overflowed
// block in, the entry returns to Idle and the imprecision is forgotten —
// the next write is directed again.
func TestBBitClearsWhenBlockGoesIdle(t *testing.T) {
	s := mk(t, 8, dirn.B(1))
	co := coherence.DefaultCosts()
	s.Read(0, 64, 0)
	s.Read(1, 64, 0) // overflow
	s.CheckIn(0, 64)
	s.CheckIn(1, 64)
	if st, _, _ := s.DirView(2); st != coherence.Idle {
		t.Fatalf("state = %v after all check-ins", st)
	}
	if r := s.Write(0, 64, 1); r.Cycles != co.CleanMiss() {
		t.Errorf("write after idle = %d cycles, want clean miss %d (no broadcast)", r.Cycles, co.CleanMiss())
	}
}

// TestDirnRandomStorm: random operation sequences keep every variant's
// invariants — sharer count ≤ n for NB, broadcast-bit consistency for B —
// checked by the probe after every access and by CheckCoherence after every
// step.
func TestDirnRandomStorm(t *testing.T) {
	protos := []coherence.Protocol{dirn.NB(1), dirn.NB(2), dirn.NB(4), dirn.B(1), dirn.B(2), dirn.B(4)}
	for _, proto := range protos {
		for seed := int64(0); seed < 100; seed++ {
			rng := rand.New(rand.NewSource(seed))
			s, err := coherence.New(coherence.Config{
				Nodes: 4, CacheSize: 256, Assoc: 2, BlockSize: 32,
				Costs: coherence.DefaultCosts(), Probe: true,
			}, proto)
			if err != nil {
				t.Fatal(err)
			}
			now := uint64(0)
			for i := 0; i < 60; i++ {
				node := rng.Intn(4)
				addr := uint64(rng.Intn(16)) * 32
				op := rng.Intn(8)
				switch op {
				case 0, 1:
					s.Read(node, addr, now)
				case 2, 3:
					s.Write(node, addr, now)
				case 4:
					s.CheckOutX(node, addr, now)
				case 5:
					s.CheckOutS(node, addr, now)
				case 6:
					s.CheckIn(node, addr)
				case 7:
					s.Prefetch(node, addr, now, rng.Intn(2) == 0)
				}
				now += uint64(rng.Intn(200))
				if err := s.CheckCoherence(); err != nil {
					t.Fatalf("%s seed %d step %d op %d: %v", proto.Name(), seed, i, op, err)
				}
				if err := s.ProbeError(); err != nil {
					t.Fatalf("%s seed %d step %d op %d: %v", proto.Name(), seed, i, op, err)
				}
			}
		}
	}
}
