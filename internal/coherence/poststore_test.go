package coherence_test

import (
	"testing"

	"cachier/internal/coherence"
	"cachier/internal/dir1sw"
)

func postStoreSys(t *testing.T) *coherence.System {
	t.Helper()
	cfg := dir1sw.DefaultConfig()
	cfg.Nodes = 4
	cfg.CacheSize = 1024
	cfg.PostStore = true
	return dir1sw.MustNew(cfg)
}

func TestPostStoreRefillsInvalidatedReaders(t *testing.T) {
	s := postStoreSys(t)
	// Nodes 1..3 read the block; node 0's write invalidates them.
	s.Read(1, 64, 0)
	s.Read(2, 64, 0)
	s.Read(3, 64, 0)
	s.Write(0, 64, 10)
	if s.Stats.Invalidations != 3 {
		t.Fatalf("invalidations = %d", s.Stats.Invalidations)
	}
	// Node 0 checks the dirty block in: post-store pushes fresh read-only
	// copies back to the previous holders.
	s.CheckIn(0, 64)
	if s.Stats.PostStores != 3 {
		t.Fatalf("post-stores = %d, want 3", s.Stats.PostStores)
	}
	for n := 1; n <= 3; n++ {
		if r := s.Read(n, 64, 20); r.Kind != coherence.Hit {
			t.Errorf("node %d read after post-store: %v, want hit", n, r.Kind)
		}
	}
	if err := s.CheckCoherence(); err != nil {
		t.Error(err)
	}
}

func TestPostStoreOnlyForDirtyCheckIns(t *testing.T) {
	s := postStoreSys(t)
	s.Read(1, 64, 0)
	s.Write(0, 64, 5) // invalidates node 1
	s.Write(1, 64, 10)
	// Node 1 now owns it dirty; node 0 was invalidated in the steal.
	s.Read(2, 64, 15) // downgrade: node 1's copy becomes shared & clean at dir
	// A shared check-in (not dirty-exclusive) must not post-store.
	s.CheckIn(1, 64)
	if s.Stats.PostStores != 0 {
		t.Errorf("post-stores = %d for a shared check-in", s.Stats.PostStores)
	}
}

func TestPostStoreDisabledByDefault(t *testing.T) {
	cfg := dir1sw.DefaultConfig()
	cfg.Nodes = 4
	cfg.CacheSize = 1024
	s := dir1sw.MustNew(cfg)
	s.Read(1, 64, 0)
	s.Write(0, 64, 10)
	s.CheckIn(0, 64)
	if s.Stats.PostStores != 0 {
		t.Errorf("post-stores = %d with PostStore off", s.Stats.PostStores)
	}
	// The reader misses again, as plain Dir1SW dictates.
	if r := s.Read(1, 64, 20); r.Kind != coherence.ReadMiss {
		t.Errorf("read = %v, want miss", r.Kind)
	}
}

func TestPostStoreProducerConsumerSavesMisses(t *testing.T) {
	// Producer writes + checks in each round; consumers re-read. With
	// post-store the consumers' re-reads all hit.
	run := func(postStore bool) (misses uint64) {
		cfg := dir1sw.DefaultConfig()
		cfg.Nodes = 4
		cfg.CacheSize = 1024
		cfg.PostStore = postStore
		s := dir1sw.MustNew(cfg)
		now := uint64(0)
		for round := 0; round < 5; round++ {
			for n := 1; n <= 3; n++ {
				s.Read(n, 64, now)
				now += 10
			}
			s.Write(0, 64, now)
			s.CheckIn(0, 64)
			now += 10
		}
		return s.Stats.ReadMisses
	}
	with := run(true)
	without := run(false)
	if with >= without {
		t.Errorf("post-store did not reduce read misses: %d vs %d", with, without)
	}
}
