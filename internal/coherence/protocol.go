package coherence

import (
	"fmt"
	"strconv"
	"strings"
)

// Protocol is a directory cache-coherence protocol's state machine: the
// transitions, cycle costs, trap decisions, and message accounting of the
// three operations whose behaviour differs between directory organizations.
// Everything else — hits, installs, evictions, check-ins, prefetch
// bookkeeping, flushes — is protocol-independent and lives in System.
//
// Hooks receive the System (for caches, costs, stats, the recorder, and the
// SetState/CancelInflight/NoteInvalidated helpers) and the block's directory
// Entry, already allocated. Each hook must leave the entry in the state its
// return implies; the caller installs the cache line, classifies the access,
// and counts Traps from the returned trap flag. A hook must mirror every
// Stats.Invalidations increment with a Recorder.Invalidations call (the
// snapshot consistency checker crosses the two).
//
// Hooks run only inside generation-bumped public operations (System.gen,
// see batch.go): every cache line a hook installs, invalidates, or
// downgrades — on any node — is already covered by the bump the calling
// Read/Write/directive performed, so the lane engine's access memo never
// survives a protocol-side mutation. Hooks must route all cross-node cache
// mutation through the System helpers rather than caching System state
// across calls.
type Protocol interface {
	// Name identifies the protocol in results, snapshots, and goldens
	// (e.g. "Dir1SW", "Dir4NB").
	Name() string

	// FetchShared acquires a read-only copy of block for node; the caller
	// installs it Shared.
	FetchShared(s *System, e *Entry, block uint64, node int) (cost uint64, trap bool)

	// FetchExclusive acquires a writable copy of block for node (the block
	// is not in node's cache); the caller installs it Exclusive.
	FetchExclusive(s *System, e *Entry, block uint64, node int) (cost uint64, trap bool)

	// Upgrade makes node's Shared copy of block Exclusive, invalidating any
	// other sharers; the caller flips the cache line.
	Upgrade(s *System, e *Entry, block uint64, node int) (cost uint64, trap bool)

	// CheckEntry validates protocol-specific invariants on a directory entry
	// (e.g. a pointer-count bound, broadcast-bit consistency). It is called
	// by the per-access probe and the barrier-time CheckCoherence sweep; the
	// generic cache/directory invariants have already been checked. Return
	// nil when the protocol adds no constraints.
	CheckEntry(s *System, e *Entry, block uint64) error
}

// Protocol spec names accepted by ParseSpec (case-insensitive).
const (
	SpecDir1SW = "dir1sw" // Dir1SW: one pointer + counter, software traps
	SpecDirnNB = "dirnnb" // DirₙNB: n pointers, invalidate-on-overflow, no broadcast
	SpecDirnB  = "dirnb"  // DirₙB: n pointers, broadcast bit on overflow
)

// defaultPointers is the pointer count a dirnnb/dirnb spec gets when the
// ":n" suffix is omitted.
const defaultPointers = 4

// Spec is a parsed protocol selector.
type Spec struct {
	Name string // SpecDir1SW, SpecDirnNB, or SpecDirnB
	N    int    // sharing-pointer count; meaningful for the dirn variants
}

// ParseSpec parses a protocol spec string: "dir1sw" (also the meaning of
// ""), "dirnnb[:n]", or "dirnb[:n]" with n ≥ 1 sharing pointers (default
// 4). Specs are case-insensitive.
func ParseSpec(spec string) (Spec, error) {
	s := strings.ToLower(strings.TrimSpace(spec))
	if s == "" {
		return Spec{Name: SpecDir1SW}, nil
	}
	name, arg, hasArg := strings.Cut(s, ":")
	switch name {
	case SpecDir1SW:
		if hasArg {
			return Spec{}, fmt.Errorf("coherence: protocol %q takes no parameter", name)
		}
		return Spec{Name: SpecDir1SW}, nil
	case SpecDirnNB, SpecDirnB:
		n := defaultPointers
		if hasArg {
			v, err := strconv.Atoi(arg)
			if err != nil || v < 1 {
				return Spec{}, fmt.Errorf("coherence: protocol %q needs a pointer count ≥ 1, got %q", name, arg)
			}
			n = v
		}
		return Spec{Name: name, N: n}, nil
	}
	return Spec{}, fmt.Errorf("coherence: unknown protocol %q (want dir1sw, dirnnb[:n], or dirnb[:n])", spec)
}

// String renders the spec in canonical form, parseable by ParseSpec.
func (sp Spec) String() string {
	if sp.Name == SpecDir1SW || sp.Name == "" {
		return SpecDir1SW
	}
	return fmt.Sprintf("%s:%d", sp.Name, sp.N)
}
