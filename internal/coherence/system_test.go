package coherence_test

// The behavioural tests for the shared memory system drive it through the
// Dir1SW protocol (the paper's, and the machinery's original home): hits,
// misses, directives, prefetch bookkeeping, evictions, flushes, and the
// coherence checker are protocol-independent, and Dir1SW's trap behaviour
// makes the expected costs easy to pin. Protocol-specific behaviour is
// tested in internal/dir1sw and internal/dirn.

import (
	"testing"
	"testing/quick"

	"cachier/internal/coherence"
	"cachier/internal/dir1sw"
)

func sys(t *testing.T, nodes int) *coherence.System {
	t.Helper()
	cfg := dir1sw.DefaultConfig()
	cfg.Nodes = nodes
	cfg.CacheSize = 1024 // small: 1024B = 8 sets x 4 ways x 32B
	s, err := dir1sw.New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	return s
}

func TestReadMissThenHit(t *testing.T) {
	s := sys(t, 2)
	co := coherence.DefaultCosts()
	r := s.Read(0, 64, 0)
	if r.Kind != coherence.ReadMiss || r.Trap {
		t.Fatalf("first read: %+v", r)
	}
	if r.Cycles != co.CleanMiss() {
		t.Errorf("clean miss cost %d", r.Cycles)
	}
	r = s.Read(0, 72, 10) // same 32B block
	if r.Kind != coherence.Hit || r.Cycles != co.CacheHit {
		t.Errorf("second read: %+v", r)
	}
	if s.Stats.ReadMisses != 1 || s.Stats.Hits != 1 {
		t.Errorf("stats: %+v", s.Stats)
	}
}

func TestWriteFaultUpgrade(t *testing.T) {
	s := sys(t, 2)
	co := coherence.DefaultCosts()
	s.Read(0, 64, 0)
	r := s.Write(0, 64, 10)
	if r.Kind != coherence.WriteFault {
		t.Fatalf("write after read: %+v", r)
	}
	if r.Trap {
		t.Error("sole-sharer upgrade should not trap (Dir1SW pointer check)")
	}
	if r.Cycles != co.Upgrade() {
		t.Errorf("upgrade cost %d", r.Cycles)
	}
	// Now exclusive: further writes hit.
	if r := s.Write(0, 64, 20); r.Kind != coherence.Hit {
		t.Errorf("write to exclusive: %+v", r)
	}
}

func TestWriteFaultWithOtherSharersTraps(t *testing.T) {
	s := sys(t, 4)
	s.Read(0, 64, 0)
	s.Read(1, 64, 0)
	s.Read(2, 64, 0)
	r := s.Write(0, 64, 10)
	if r.Kind != coherence.WriteFault || !r.Trap {
		t.Fatalf("upgrade with sharers: %+v", r)
	}
	if s.Stats.Invalidations != 2 {
		t.Errorf("invalidations = %d, want 2", s.Stats.Invalidations)
	}
	// Other sharers lost their copies.
	if r := s.Read(1, 64, 20); r.Kind != coherence.ReadMiss {
		t.Errorf("node 1 after invalidation: %+v", r)
	}
	if err := s.CheckCoherence(); err != nil {
		t.Error(err)
	}
}

func TestReadFromExclusiveTrapsAndDowngrades(t *testing.T) {
	s := sys(t, 2)
	s.Write(0, 64, 0)
	r := s.Read(1, 64, 10)
	if r.Kind != coherence.ReadMiss || !r.Trap {
		t.Fatalf("read of remote-exclusive: %+v", r)
	}
	if s.Stats.Writebacks != 1 {
		t.Errorf("writebacks = %d (dirty owner copy must be written back)", s.Stats.Writebacks)
	}
	// Both nodes now share.
	if r := s.Read(0, 64, 20); r.Kind != coherence.Hit {
		t.Errorf("owner post-downgrade: %+v", r)
	}
	if err := s.CheckCoherence(); err != nil {
		t.Error(err)
	}
}

func TestWriteToRemoteExclusiveTraps(t *testing.T) {
	s := sys(t, 2)
	s.Write(0, 64, 0)
	r := s.Write(1, 64, 10)
	if r.Kind != coherence.WriteMiss || !r.Trap {
		t.Fatalf("write steal: %+v", r)
	}
	if r := s.Write(0, 64, 20); r.Kind != coherence.WriteMiss {
		t.Errorf("node 0 lost its copy, expected write miss: %+v", r)
	}
	if err := s.CheckCoherence(); err != nil {
		t.Error(err)
	}
}

func TestCheckOutXAvoidsWriteFault(t *testing.T) {
	// The canonical CICO win: read-then-write with a prior check_out_x does
	// not pay the upgrade (paper Section 4.1).
	plain := sys(t, 2)
	plain.Read(0, 64, 0)
	plain.Write(0, 64, 10)
	if plain.Stats.WriteFaults != 1 {
		t.Fatalf("baseline write faults = %d", plain.Stats.WriteFaults)
	}

	cico := sys(t, 2)
	cico.CheckOutX(0, 64, 0)
	cico.Read(0, 64, 10)
	cico.Write(0, 64, 20)
	if cico.Stats.WriteFaults != 0 {
		t.Errorf("annotated write faults = %d, want 0", cico.Stats.WriteFaults)
	}
	if cico.Stats.Hits != 2 {
		t.Errorf("annotated hits = %d, want 2", cico.Stats.Hits)
	}
}

func TestCheckInAvoidsInvalidationTrap(t *testing.T) {
	// Producer writes, checks in; consumer writes. Without the check-in the
	// consumer's write traps to retrieve the producer's exclusive copy.
	plain := sys(t, 2)
	plain.Write(0, 64, 0)
	r := plain.Write(1, 64, 10)
	if !r.Trap {
		t.Fatal("baseline should trap")
	}

	cico := sys(t, 2)
	cico.Write(0, 64, 0)
	cico.CheckIn(0, 64)
	r = cico.Write(1, 64, 10)
	if r.Trap {
		t.Error("write after check-in should not trap")
	}
	if r.Kind != coherence.WriteMiss {
		t.Errorf("kind = %v", r.Kind)
	}
	if cico.Stats.Writebacks != 1 {
		t.Errorf("check-in of dirty block should write back, got %d", cico.Stats.Writebacks)
	}
}

func TestCheckInShared(t *testing.T) {
	s := sys(t, 3)
	s.Read(0, 64, 0)
	s.Read(1, 64, 0)
	s.CheckIn(0, 64)
	// Only node 1 remains a sharer; node 2's write invalidates one copy.
	s.Write(2, 64, 10)
	if s.Stats.Invalidations != 1 {
		t.Errorf("invalidations = %d, want 1", s.Stats.Invalidations)
	}
	if err := s.CheckCoherence(); err != nil {
		t.Error(err)
	}
}

func TestWastedDirectives(t *testing.T) {
	s := sys(t, 2)
	s.CheckIn(0, 64) // nothing cached
	s.Write(0, 64, 0)
	s.CheckOutX(0, 64, 10) // already exclusive
	s.CheckOutS(0, 64, 20) // already cached
	if s.Stats.WastedDirs != 3 {
		t.Errorf("wasted directives = %d, want 3", s.Stats.WastedDirs)
	}
}

func TestPrefetchOverlapsLatency(t *testing.T) {
	s := sys(t, 2)
	co := coherence.DefaultCosts()
	r := s.Prefetch(0, 64, 0, false)
	if r.Cycles != co.PrefetchIssue {
		t.Fatalf("prefetch issue cost %d", r.Cycles)
	}
	// Access long after arrival: full hit.
	r = s.Read(0, 64, 10_000)
	if r.Kind != coherence.Hit || r.Cycles != co.CacheHit {
		t.Errorf("post-arrival read: %+v", r)
	}
	if s.Stats.PrefetchHits != 1 {
		t.Errorf("prefetch hits = %d", s.Stats.PrefetchHits)
	}

	// Access before arrival: partial stall.
	s2 := sys(t, 2)
	s2.Prefetch(0, 64, 0, false)
	lat := co.CleanMiss()
	r = s2.Read(0, 64, lat/2)
	want := lat - lat/2 + co.CacheHit
	if r.Cycles != want {
		t.Errorf("partial stall = %d, want %d", r.Cycles, want)
	}
}

func TestPrefetchSharedDoesNotSatisfyWrite(t *testing.T) {
	s := sys(t, 2)
	s.Prefetch(0, 64, 0, false)
	r := s.Write(0, 64, 10_000)
	if r.Kind == coherence.Hit {
		t.Errorf("shared prefetch satisfied a write: %+v", r)
	}
	if err := s.CheckCoherence(); err != nil {
		t.Error(err)
	}
}

func TestPrefetchInvalidatedBeforeUse(t *testing.T) {
	s := sys(t, 2)
	s.Prefetch(0, 64, 0, true)
	// Node 1 steals the block before node 0 consumes the prefetch.
	s.Write(1, 64, 5)
	r := s.Read(0, 64, 10_000)
	if r.Kind != coherence.ReadMiss {
		t.Errorf("read after stolen prefetch: %+v", r)
	}
	if err := s.CheckCoherence(); err != nil {
		t.Error(err)
	}
}

func TestEvictionNotifiesDirectory(t *testing.T) {
	cfg := dir1sw.DefaultConfig()
	cfg.Nodes = 2
	cfg.CacheSize = 128 // 1 set x 4 ways
	cfg.Assoc = 4
	s := dir1sw.MustNew(cfg)
	// Fill the single set, then one more insert evicts the LRU block.
	for i := 0; i < 5; i++ {
		s.Read(0, uint64(64+32*i), 0)
	}
	if s.Cache(0).Resident() != 4 {
		t.Fatalf("resident = %d", s.Cache(0).Resident())
	}
	if err := s.CheckCoherence(); err != nil {
		t.Error(err)
	}
	// The evicted block's directory entry must be Idle again so a writer
	// does not pay an invalidation for a phantom copy.
	s.Write(1, 64, 0)
	if s.Stats.Invalidations != 0 {
		t.Errorf("phantom invalidation after eviction: %d", s.Stats.Invalidations)
	}
}

func TestFlushNode(t *testing.T) {
	s := sys(t, 2)
	s.Read(0, 64, 0)
	s.Write(0, 128, 0)
	s.FlushNode(0)
	if s.Cache(0).Resident() != 0 {
		t.Error("cache not empty after flush")
	}
	if s.Stats.Writebacks != 1 {
		t.Errorf("writebacks = %d (dirty line must be written back)", s.Stats.Writebacks)
	}
	// After the flush another node accesses both blocks without traps.
	if r := s.Write(1, 64, 10); r.Trap {
		t.Error("trap after flush")
	}
	if r := s.Write(1, 128, 10); r.Trap {
		t.Error("trap after flush of dirty block")
	}
	if err := s.CheckCoherence(); err != nil {
		t.Error(err)
	}
}

// Property test: random operation sequences never violate coherence, and
// reads/writes always produce sensible kinds.
func TestCoherenceUnderRandomOps(t *testing.T) {
	type op struct {
		Node  uint8
		Addr  uint16
		Which uint8
	}
	f := func(ops []op) bool {
		cfg := dir1sw.DefaultConfig()
		cfg.Nodes = 4
		cfg.CacheSize = 256 // tiny: forces evictions
		cfg.Assoc = 2
		s := dir1sw.MustNew(cfg)
		now := uint64(0)
		for _, o := range ops {
			node := int(o.Node) % 4
			addr := uint64(o.Addr) % 2048
			switch o.Which % 7 {
			case 0, 1:
				s.Read(node, addr, now)
			case 2, 3:
				s.Write(node, addr, now)
			case 4:
				s.CheckOutX(node, addr, now)
			case 5:
				s.CheckIn(node, addr)
			case 6:
				s.Prefetch(node, addr, now, o.Which%2 == 0)
			}
			now += 13
		}
		return s.CheckCoherence() == nil
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 150}); err != nil {
		t.Error(err)
	}
}

func TestDirView(t *testing.T) {
	s := sys(t, 3)
	s.Read(1, 64, 0)
	s.Read(2, 64, 0)
	if st, _, sh := s.DirView(2); st != coherence.Shared || len(sh) != 2 {
		t.Errorf("after two reads: state %v sharers %v", st, sh)
	}
	s.Write(0, 64, 10)
	if st, owner, sh := s.DirView(2); st != coherence.Exclusive || owner != 0 || len(sh) != 0 {
		t.Errorf("after write: state %v owner %d sharers %v", st, owner, sh)
	}
}

func TestBadConfig(t *testing.T) {
	cfg := dir1sw.DefaultConfig()
	cfg.Nodes = 0
	if _, err := dir1sw.New(cfg); err == nil {
		t.Error("zero nodes accepted")
	}
	cfg = dir1sw.DefaultConfig()
	cfg.CacheSize = 100
	if _, err := dir1sw.New(cfg); err == nil {
		t.Error("bad cache size accepted")
	}
	if _, err := coherence.New(coherence.Config{Nodes: 2, CacheSize: 1024, Assoc: 2, BlockSize: 32}, nil); err == nil {
		t.Error("nil protocol accepted")
	}
}
