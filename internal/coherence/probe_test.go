package coherence_test

import (
	"strings"
	"testing"

	"cachier/internal/cache"
	"cachier/internal/coherence"
	"cachier/internal/dir1sw"
)

func probeSys(t *testing.T) *coherence.System {
	t.Helper()
	return dir1sw.MustNew(dir1sw.Config{
		Nodes:     4,
		CacheSize: 1024,
		Assoc:     2,
		BlockSize: 32,
		Costs:     coherence.DefaultCosts(),
		Probe:     true,
	})
}

// TestProbeCleanRun: a legal access sequence — misses, faults, upgrades,
// broadcast invalidations, directives, evictions — never trips the probe.
func TestProbeCleanRun(t *testing.T) {
	s := probeSys(t)
	var now uint64
	// Build real sharing: everyone reads block 0, then node 1 writes it
	// (write fault + broadcast), then node 2 steals it exclusive.
	for n := 0; n < 4; n++ {
		now += s.Read(n, 0, now).Cycles
	}
	now += s.Write(1, 8, now).Cycles
	now += s.Write(2, 16, now).Cycles
	// Directives over another block, prefetch then consume.
	now += s.CheckOutX(0, 64, now).Cycles
	now += s.CheckIn(0, 64).Cycles
	now += s.Prefetch(3, 64, now, false).Cycles
	now += s.Read(3, 64, now).Cycles
	// Force evictions: walk far past the 1 KB cache on node 0.
	for i := uint64(0); i < 64; i++ {
		now += s.Write(0, 4096+i*32, now).Cycles
	}
	if err := s.ProbeError(); err != nil {
		t.Fatalf("probe tripped on a legal sequence: %v", err)
	}
	if err := s.CheckCoherence(); err != nil {
		t.Fatalf("CheckCoherence disagrees with probe: %v", err)
	}
}

// TestProbeDetectsViolation: corrupting a cache state behind the directory's
// back is caught by the very next operation on that block, and the error is
// latched.
func TestProbeDetectsViolation(t *testing.T) {
	s := probeSys(t)
	var now uint64
	now += s.Read(0, 0, now).Cycles
	now += s.Read(1, 0, now).Cycles
	// Corrupt: promote node 1's shared copy to exclusive without telling the
	// directory (simulates the class of protocol bug the probe exists for).
	s.Cache(1).SetState(0, cache.Exclusive)
	s.Read(2, 0, now)
	err := s.ProbeError()
	if err == nil {
		t.Fatal("probe missed a directory/cache disagreement")
	}
	if !strings.Contains(err.Error(), "block 0") {
		t.Errorf("error does not name the block: %v", err)
	}
	// Latched: later clean operations do not clear it.
	s.Read(3, 4096, now)
	if s.ProbeError() == nil {
		t.Error("probe error was not latched")
	}
}

// TestProbeOffByDefault: without Config.Probe the probe never engages.
func TestProbeOffByDefault(t *testing.T) {
	s := dir1sw.MustNew(dir1sw.Config{Nodes: 2, CacheSize: 1024, Assoc: 2, BlockSize: 32, Costs: coherence.DefaultCosts()})
	s.Read(0, 0, 0)
	s.Cache(0).SetState(0, cache.Exclusive)
	s.Read(1, 0, 0)
	if s.ProbeError() != nil {
		t.Fatal("probe ran despite being disabled")
	}
}
