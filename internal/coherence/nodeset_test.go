package coherence

import "testing"

func TestNodeSet(t *testing.T) {
	s := NewNodeSet(70)
	if s.Count() != 0 || s.Sole() != -1 {
		t.Error("empty set wrong")
	}
	s.Add(3)
	s.Add(65)
	if !s.Has(3) || !s.Has(65) || s.Has(4) {
		t.Error("membership wrong")
	}
	if s.Count() != 2 || s.Sole() != -1 {
		t.Error("count/sole wrong")
	}
	got := s.Members()
	if len(got) != 2 || got[0] != 3 || got[1] != 65 {
		t.Errorf("members = %v", got)
	}
	s.Remove(3)
	if s.Sole() != 65 {
		t.Errorf("sole = %d", s.Sole())
	}
	s.Clear()
	if s.Count() != 0 {
		t.Error("clear failed")
	}
}
