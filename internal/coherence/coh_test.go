package coherence_test

import (
	"math/rand"
	"testing"

	"cachier/internal/coherence"
	"cachier/internal/dir1sw"
)

// randomStorm drives a system with long random sequences of every operation
// (including explicit check-outs consuming in-flight prefetches — a stale
// pending entry once resurrected an unregistered shared copy after an
// eviction) and validates the coherence invariants after every step.
func randomStorm(t *testing.T, seeds int64, mk func() *coherence.System) {
	t.Helper()
	for seed := int64(0); seed < seeds; seed++ {
		rng := rand.New(rand.NewSource(seed))
		s := mk()
		now := uint64(0)
		for i := 0; i < 60; i++ {
			node := rng.Intn(4)
			addr := uint64(rng.Intn(16)) * 32
			op := rng.Intn(8)
			switch op {
			case 0, 1:
				s.Read(node, addr, now)
			case 2, 3:
				s.Write(node, addr, now)
			case 4:
				s.CheckOutX(node, addr, now)
			case 5:
				s.CheckOutS(node, addr, now)
			case 6:
				s.CheckIn(node, addr)
			case 7:
				s.Prefetch(node, addr, now, rng.Intn(2) == 0)
			}
			now += uint64(rng.Intn(200))
			if err := s.CheckCoherence(); err != nil {
				t.Fatalf("seed %d step %d op %d node %d addr %d: %v", seed, i, op, node, addr, err)
			}
		}
	}
}

func stormConfig() dir1sw.Config {
	cfg := dir1sw.DefaultConfig()
	cfg.Nodes = 4
	cfg.CacheSize = 256
	cfg.Assoc = 2
	return cfg
}

func TestCoherenceRandomDirectiveStorm(t *testing.T) {
	randomStorm(t, 500, func() *coherence.System {
		return dir1sw.MustNew(stormConfig())
	})
}

func TestCoherenceRandomOpsWithPostStore(t *testing.T) {
	randomStorm(t, 300, func() *coherence.System {
		cfg := stormConfig()
		cfg.PostStore = true
		return dir1sw.MustNew(cfg)
	})
}
