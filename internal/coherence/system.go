package coherence

import (
	"fmt"
	"math/bits"

	"cachier/internal/cache"
	"cachier/internal/obs"
)

// DirState is a directory entry's state. All supported protocols share the
// three-state directory (Idle / Shared / Exclusive); they differ in how and
// at what cost they move entries between the states.
type DirState int

const (
	Idle DirState = iota
	Shared
	Exclusive
)

func (d DirState) String() string {
	switch d {
	case Idle:
		return "idle"
	case Shared:
		return "shared"
	case Exclusive:
		return "exclusive"
	}
	return fmt.Sprintf("DirState(%d)", int(d))
}

// Entry is one block's directory entry. Protocol hooks mutate State, Owner,
// Sharers, and Bcast directly (always moving State through System.SetState
// so transitions are recorded); pastHolders belongs to the protocol-
// independent post-store machinery.
type Entry struct {
	State   DirState
	Owner   int // valid when Exclusive
	Sharers NodeSet

	// Bcast is the broadcast bit a limited-pointer broadcast protocol
	// (DirₙB) sets when its sharing pointers overflow: the sharer set is no
	// longer precise in hardware, so the next write broadcasts. Only
	// meaningful while State == Shared; SetState clears it on any
	// transition out of Shared.
	Bcast bool

	// pastHolders tracks nodes whose copy of the block was invalidated —
	// the KSR-1's "allocated but invalid" set that a post-store refills.
	// Only maintained when the PostStore option is on.
	pastHolders NodeSet
}

// AccessKind classifies the outcome of a shared-memory access.
type AccessKind int

// Access outcomes.
const (
	Hit AccessKind = iota
	ReadMiss
	WriteMiss
	WriteFault
)

func (k AccessKind) String() string {
	switch k {
	case Hit:
		return "hit"
	case ReadMiss:
		return "read-miss"
	case WriteMiss:
		return "write-miss"
	case WriteFault:
		return "write-fault"
	}
	return fmt.Sprintf("AccessKind(%d)", int(k))
}

// Result reports the outcome of one access or directive.
type Result struct {
	Cycles uint64 // stall cycles charged to the issuing processor
	Kind   AccessKind
	Trap   bool // a software trap was taken
}

// Config configures a System. Protocol-specific options (Dir1SW's full-map
// ablation, the dirn pointer counts) belong to the Protocol value passed to
// New, not here.
type Config struct {
	Nodes     int
	CacheSize int
	Assoc     int
	BlockSize int
	Costs     Costs

	// PostStore emulates the Kendall Square KSR-1's post-store instruction
	// (paper Section 1): a check-in of a dirty block additionally
	// broadcasts read-only copies to every node that previously had the
	// block and lost it to an invalidation, instead of merely returning the
	// block to Idle. Off by default — Dir1SW has no such operation — and
	// exposed for the ablation study. Only meaningful with protocols whose
	// directory tolerates an unbounded sharer set (Dir1SW); the simulator
	// rejects the combination otherwise.
	PostStore bool

	// AddrSpace is the size in bytes of the laid-out shared address space
	// (memory.Layout.TotalBytes). When non-zero, directory entries for
	// blocks inside it live in a dense slice indexed by block number; only
	// out-of-layout addresses fall back to a map. Zero keeps the map for
	// everything.
	AddrSpace uint64

	// Probe validates the coherence invariants — the generic cache/directory
	// ones plus the protocol's CheckEntry — on every block each public
	// operation touches (see probe.go) and latches the first violation for
	// ProbeError. O(nodes) per access — meant for differential testing, not
	// performance runs.
	Probe bool

	// Recorder receives directory state transitions, trap causes, and
	// per-requester invalidation counts for the observability layer. nil
	// (the default) disables recording at the cost of an untaken branch
	// per event; recording never changes protocol behaviour.
	Recorder *obs.Recorder
}

// pending tracks an in-flight prefetch for one node.
type pending struct {
	arrival uint64
	state   cache.State // state the block will install in
}

// System is the full memory system: one shared-data cache per node plus the
// directory, with the per-transition behaviour supplied by a Protocol. All
// methods are deterministic and must be called from a single goroutine at a
// time (the simulator guarantees this).
type System struct {
	cfg   Config
	proto Protocol

	caches []*cache.Cache
	// blockShift is log2(BlockSize) when the block size is a power of two
	// (every real configuration), letting BlockOf shift instead of paying a
	// 64-bit divide on every access; blockShift < 0 falls back to division.
	blockShift int
	// dense holds directory entries for blocks inside the known shared
	// address space (Config.AddrSpace), indexed by block number; dir is the
	// fallback for everything else. Entries are zero-initialized to Idle and
	// get their sharer sets on first touch.
	dense []Entry
	dir   map[uint64]*Entry
	// inflight[n] maps block -> pending prefetch for node n.
	inflight []map[uint64]pending

	// CheckCoherence scratch, reused across calls (the check runs at every
	// barrier): one view per cached block, stored in flat parallel arrays to
	// keep the aggregation pass allocation-free. View i's sharer and
	// exclusive-holder bitsets live at words [i*w, (i+1)*w) of checkHold and
	// checkExcl, where w = words per NodeSet. Dense-range blocks find their
	// view via checkSlot (value = view index + 1, reset between calls);
	// out-of-layout blocks go through checkIdx.
	checkBlocks []uint64
	checkHold   []uint64
	checkExcl   []uint64
	checkSlot   []int32
	checkIdx    map[uint64]int

	// probeErr latches the first violation the per-access probe found.
	probeErr error

	// gen counts machine-wide state changes (any cache or directory
	// mutation beyond reinforcing a most-recently-used line); memos holds
	// the per-node access-run memo the lane engine's batched resolution
	// uses. Both live in batch.go; memos stays nil until EnableAccessMemo.
	gen      uint64
	memos    [][]accessMemo
	memoMask uint64

	// rec is the observability recorder (nil when disabled).
	rec *obs.Recorder

	Stats Stats
}

// maxDenseBlocks bounds the dense directory's size (entries are ~64 bytes);
// a larger configured address space falls back to the map.
const maxDenseBlocks = 1 << 24

// New builds a System running the given protocol.
func New(cfg Config, proto Protocol) (*System, error) {
	if cfg.Nodes <= 0 {
		return nil, fmt.Errorf("coherence: need at least one node, got %d", cfg.Nodes)
	}
	if proto == nil {
		return nil, fmt.Errorf("coherence: nil protocol")
	}
	s := &System{cfg: cfg, proto: proto, dir: make(map[uint64]*Entry), rec: cfg.Recorder, blockShift: -1}
	if b := cfg.BlockSize; b > 0 && b&(b-1) == 0 {
		s.blockShift = bits.TrailingZeros(uint(b))
	}
	if cfg.AddrSpace > 0 && cfg.BlockSize > 0 {
		if blocks := (cfg.AddrSpace + uint64(cfg.BlockSize) - 1) / uint64(cfg.BlockSize); blocks <= maxDenseBlocks {
			s.dense = make([]Entry, blocks)
		}
	}
	for i := 0; i < cfg.Nodes; i++ {
		c, err := cache.New(cfg.CacheSize, cfg.Assoc, cfg.BlockSize)
		if err != nil {
			return nil, err
		}
		s.caches = append(s.caches, c)
		s.inflight = append(s.inflight, make(map[uint64]pending))
	}
	return s, nil
}

// MustNew is New but panics on error.
func MustNew(cfg Config, proto Protocol) *System {
	s, err := New(cfg, proto)
	if err != nil {
		panic(err)
	}
	return s
}

// Nodes returns the node count.
func (s *System) Nodes() int { return s.cfg.Nodes }

// BlockSize returns the block size in bytes.
func (s *System) BlockSize() int { return s.cfg.BlockSize }

// CacheCapacity returns each node's cache capacity in bytes.
func (s *System) CacheCapacity() int { return s.cfg.CacheSize }

// Cache exposes a node's cache (protocol hooks, the simulator, and tests).
func (s *System) Cache(node int) *cache.Cache { return s.caches[node] }

// Costs returns the cost model.
func (s *System) Costs() Costs { return s.cfg.Costs }

// Recorder returns the observability recorder; nil (recording disabled) is
// a valid receiver for every obs.Recorder method.
func (s *System) Recorder() *obs.Recorder { return s.rec }

// Protocol returns the protocol the system runs.
func (s *System) Protocol() Protocol { return s.proto }

// BlockOf returns the block number for an address.
func (s *System) BlockOf(addr uint64) uint64 {
	if s.blockShift >= 0 {
		return addr >> uint(s.blockShift)
	}
	return addr / uint64(s.cfg.BlockSize)
}

func (s *System) entryFor(block uint64) *Entry {
	if block < uint64(len(s.dense)) {
		e := &s.dense[block]
		if e.Sharers.words == nil {
			s.initEntry(e)
		}
		return e
	}
	e := s.dir[block]
	if e == nil {
		e = &Entry{State: Idle}
		s.initEntry(e)
		s.dir[block] = e
	}
	return e
}

// initEntry gives a fresh directory entry its sharer sets.
func (s *System) initEntry(e *Entry) {
	e.Sharers = NewNodeSet(s.cfg.Nodes)
	if s.cfg.PostStore {
		e.pastHolders = NewNodeSet(s.cfg.Nodes)
	}
}

// NoteInvalidated records that a node lost its copy to an invalidation, for
// post-store's "allocated but invalid" set. Protocol hooks call it for every
// copy they invalidate.
func (s *System) NoteInvalidated(e *Entry, node int) {
	if s.cfg.PostStore {
		e.pastHolders.Add(node)
	}
}

// DirView returns the entry's directory view, for tests.
func (s *System) DirView(block uint64) (state DirState, owner int, sharers []int) {
	e := s.entryFor(block)
	return e.State, e.Owner, e.Sharers.Members()
}

// obsState maps a directory state to its observability-layer enum.
func obsState(st DirState) obs.DirState {
	switch st {
	case Shared:
		return obs.StateShared
	case Exclusive:
		return obs.StateExclusive
	}
	return obs.StateIdle
}

// SetState moves a directory entry to a new state, recording the
// transition. Exclusive-to-exclusive ownership handoffs are recorded too
// (callers invoke it even when the state enum is unchanged but the owner
// moves). Leaving Shared drops any broadcast bit: the sharer set is empty
// or precisely one owner again.
func (s *System) SetState(e *Entry, to DirState) {
	s.rec.DirTransition(obsState(e.State), obsState(to))
	s.Stats.DirEvents++
	e.State = to
	if to != Shared {
		e.Bcast = false
	}
}

// evict reconciles the directory with a cache eviction. Every supported
// protocol requires replacement notification so its sharer accounting stays
// exact.
func (s *System) evict(node int, v cache.Victim) {
	if s.cfg.Probe {
		defer s.probeAfter("evict", v.Block)
	}
	e := s.entryFor(v.Block)
	switch e.State {
	case Shared:
		e.Sharers.Remove(node)
		s.Stats.CtlMsgs++ // replacement notification
		if e.Sharers.Count() == 0 {
			s.SetState(e, Idle)
		}
	case Exclusive:
		if e.Owner == node {
			s.SetState(e, Idle)
			if v.Dirty {
				s.Stats.Writebacks++
				s.Stats.DataMsgs++
			} else {
				s.Stats.CtlMsgs++
			}
		}
	}
}

// install puts a block into a node's cache, reconciling any victim.
func (s *System) install(node int, block uint64, st cache.State) {
	if v, evicted := s.caches[node].Insert(block, st); evicted {
		s.evict(node, v)
	}
}

// CancelInflight drops a node's in-flight prefetch of block, if any. Called
// by protocol hooks when another node's access invalidates or downgrades
// the block before the prefetched data was consumed.
func (s *System) CancelInflight(node int, block uint64) {
	delete(s.inflight[node], block)
}

// checkInflight resolves an in-flight prefetch for (node, block). It returns
// the stall cycles needed to wait for the data (0 if already arrived) and
// whether a prefetch covered this block.
func (s *System) checkInflight(node int, block uint64, now uint64, needExclusive bool) (stall uint64, covered bool) {
	p, ok := s.inflight[node][block]
	if !ok {
		return 0, false
	}
	if needExclusive && p.state != cache.Exclusive {
		// A shared prefetch cannot satisfy a write; drop it and fall through
		// to the normal write path. The directory already lists this node as
		// a sharer, which the write path will upgrade.
		delete(s.inflight[node], block)
		s.install(node, block, p.state)
		return 0, false
	}
	delete(s.inflight[node], block)
	s.install(node, block, p.state)
	if p.arrival > now {
		stall = p.arrival - now
		s.Stats.PrefetchStalls += stall
	}
	s.Stats.PrefetchHits++
	return stall, true
}

// fetchShared acquires a read-only copy for node via the protocol; the
// caller installs it.
func (s *System) fetchShared(node int, block uint64) (cost uint64, trap bool) {
	e := s.entryFor(block)
	s.Stats.ReqMsgs++
	return s.proto.FetchShared(s, e, block, node)
}

// fetchExclusive acquires a writable copy for node via the protocol; the
// caller installs it.
func (s *System) fetchExclusive(node int, block uint64) (cost uint64, trap bool) {
	e := s.entryFor(block)
	s.Stats.ReqMsgs++
	return s.proto.FetchExclusive(s, e, block, node)
}

// upgrade makes node's shared copy exclusive via the protocol.
func (s *System) upgrade(node int, block uint64) (cost uint64, trap bool) {
	e := s.entryFor(block)
	s.Stats.ReqMsgs++
	return s.proto.Upgrade(s, e, block, node)
}

// Read performs a shared-data read by node at addr, at local time now.
func (s *System) Read(node int, addr uint64, now uint64) Result {
	s.Stats.Reads++
	block := s.BlockOf(addr)
	if s.cfg.Probe {
		defer s.probeAfter("read", block)
	}
	c := s.caches[node]
	if st := c.Touch(block); st != cache.Invalid {
		s.Stats.Hits++
		return Result{Cycles: s.cfg.Costs.CacheHit, Kind: Hit}
	}
	// Everything below installs, evicts, or moves directory state.
	s.gen++
	if stall, ok := s.checkInflight(node, block, now, false); ok {
		s.Stats.Hits++
		c.Touch(block)
		return Result{Cycles: stall + s.cfg.Costs.CacheHit, Kind: Hit}
	}
	cost, trap := s.fetchShared(node, block)
	s.Stats.ReadMisses++
	if trap {
		s.Stats.Traps++
	}
	s.install(node, block, cache.Shared)
	return Result{Cycles: cost, Kind: ReadMiss, Trap: trap}
}

// Write performs a shared-data write by node at addr, at local time now.
func (s *System) Write(node int, addr uint64, now uint64) Result {
	s.Stats.Writes++
	block := s.BlockOf(addr)
	if s.cfg.Probe {
		defer s.probeAfter("write", block)
	}
	c := s.caches[node]
	co := s.cfg.Costs
	switch c.Touch(block) {
	case cache.Exclusive:
		s.Stats.Hits++
		c.MarkDirty(block)
		return Result{Cycles: co.CacheHit, Kind: Hit}
	case cache.Shared:
		// Write fault: upgrade the shared copy (paper Section 4.1). The
		// explicit check_out_x directive exists to avoid exactly this.
		s.gen++
		cost, trap := s.upgrade(node, block)
		s.Stats.WriteFaults++
		if trap {
			s.Stats.Traps++
		}
		c.SetState(block, cache.Exclusive)
		c.MarkDirty(block)
		return Result{Cycles: cost, Kind: WriteFault, Trap: trap}
	}
	// Invalid: everything below installs, evicts, or moves directory state.
	s.gen++
	if stall, ok := s.checkInflight(node, block, now, true); ok {
		s.Stats.Hits++
		c.Touch(block)
		c.MarkDirty(block)
		return Result{Cycles: stall + co.CacheHit, Kind: Hit}
	}
	cost, trap := s.fetchExclusive(node, block)
	s.Stats.WriteMisses++
	if trap {
		s.Stats.Traps++
	}
	s.install(node, block, cache.Exclusive)
	c.MarkDirty(block)
	return Result{Cycles: cost, Kind: WriteMiss, Trap: trap}
}

// CheckOutX explicitly checks out addr's block exclusive. It is the
// directive counterpart of a write miss/fault, issued early so that later
// reads-then-writes find the block already writable.
func (s *System) CheckOutX(node int, addr uint64, now uint64) Result {
	s.Stats.CheckOutX++
	s.gen++
	block := s.BlockOf(addr)
	if s.cfg.Probe {
		defer s.probeAfter("check_out_x", block)
	}
	c := s.caches[node]
	co := s.cfg.Costs
	st := c.Touch(block)
	if st == cache.Invalid {
		// Consume any in-flight prefetch first: a directive must never
		// leave a pending entry shadowing a live cache line (the pending's
		// directory registration could be dropped by a later eviction and
		// then wrongly resurrected).
		if stall, ok := s.checkInflight(node, block, now, true); ok {
			return Result{Cycles: co.DirectiveOverhead + stall, Kind: Hit}
		}
		st = c.Lookup(block) // a shared prefetch may just have installed
	}
	switch st {
	case cache.Exclusive:
		s.Stats.WastedDirs++
		return Result{Cycles: co.DirectiveOverhead, Kind: Hit}
	case cache.Shared:
		cost, trap := s.upgrade(node, block)
		if trap {
			s.Stats.Traps++
		}
		c.SetState(block, cache.Exclusive)
		return Result{Cycles: co.DirectiveOverhead + cost, Kind: WriteFault, Trap: trap}
	}
	cost, trap := s.fetchExclusive(node, block)
	if trap {
		s.Stats.Traps++
	}
	s.install(node, block, cache.Exclusive)
	return Result{Cycles: co.DirectiveOverhead + cost, Kind: WriteMiss, Trap: trap}
}

// CheckOutS explicitly checks out addr's block shared. Under Dir1SW this is
// usually redundant (misses perform an implicit check-out), which is why
// Performance CICO omits it (paper Section 4.1); it still exists as a
// directive for Programmer CICO runs.
func (s *System) CheckOutS(node int, addr uint64, now uint64) Result {
	s.Stats.CheckOutS++
	s.gen++
	block := s.BlockOf(addr)
	if s.cfg.Probe {
		defer s.probeAfter("check_out_s", block)
	}
	c := s.caches[node]
	co := s.cfg.Costs
	if st := c.Touch(block); st != cache.Invalid {
		s.Stats.WastedDirs++
		return Result{Cycles: co.DirectiveOverhead, Kind: Hit}
	}
	if stall, ok := s.checkInflight(node, block, now, false); ok {
		return Result{Cycles: co.DirectiveOverhead + stall, Kind: Hit}
	}
	cost, trap := s.fetchShared(node, block)
	if trap {
		s.Stats.Traps++
	}
	s.install(node, block, cache.Shared)
	return Result{Cycles: co.DirectiveOverhead + cost, Kind: ReadMiss, Trap: trap}
}

// CheckIn relinquishes node's copy of addr's block, returning it toward
// Idle so that other nodes' subsequent accesses avoid invalidations and
// traps (the annotation's whole purpose as a directive).
func (s *System) CheckIn(node int, addr uint64) Result {
	s.Stats.CheckIns++
	s.gen++
	block := s.BlockOf(addr)
	if s.cfg.Probe {
		defer s.probeAfter("check_in", block)
	}
	c := s.caches[node]
	co := s.cfg.Costs
	st, dirty := c.Invalidate(block)
	if st == cache.Invalid {
		s.Stats.WastedDirs++
		return Result{Cycles: co.DirectiveOverhead, Kind: Hit}
	}
	e := s.entryFor(block)
	cost := co.DirectiveOverhead
	switch e.State {
	case Shared:
		e.Sharers.Remove(node)
		s.Stats.CtlMsgs++
		if e.Sharers.Count() == 0 {
			s.SetState(e, Idle)
		}
	case Exclusive:
		if e.Owner == node {
			s.SetState(e, Idle)
			if dirty {
				s.Stats.Writebacks++
				s.Stats.DataMsgs++
				cost += co.WritebackLocal
			} else {
				s.Stats.CtlMsgs++
			}
			if s.cfg.PostStore && dirty {
				s.postStore(e, block, node)
			}
		}
	}
	return Result{Cycles: cost, Kind: Hit}
}

// postStore pushes read-only copies of a just-checked-in block to every
// node that previously lost it to an invalidation (the KSR-1 semantics:
// refill copies that are "allocated but in the invalid state"). The pushes
// are asynchronous — the issuing processor does not stall — but each data
// message is counted, and recipients become directory sharers.
func (s *System) postStore(e *Entry, block uint64, node int) {
	for _, h := range e.pastHolders.Members() {
		if h == node {
			continue
		}
		// Skip nodes with an in-flight prefetch or a live copy.
		if _, busy := s.inflight[h][block]; busy {
			continue
		}
		if s.caches[h].Lookup(block) != cache.Invalid {
			continue
		}
		s.install(h, block, cache.Shared)
		if e.State == Idle {
			s.SetState(e, Shared)
		}
		e.Sharers.Add(h)
		s.Stats.DataMsgs++
		s.Stats.PostStores++
	}
	e.pastHolders.Clear()
}

// Prefetch initiates a non-blocking transfer of addr's block; exclusive
// selects prefetch_x vs prefetch_s. The directory transitions immediately;
// the data arrives at now + miss latency, and a later Read/Write stalls only
// for the remaining time.
func (s *System) Prefetch(node int, addr uint64, now uint64, exclusive bool) Result {
	if exclusive {
		s.Stats.PrefetchX++
	} else {
		s.Stats.PrefetchS++
	}
	s.gen++
	block := s.BlockOf(addr)
	if s.cfg.Probe {
		defer s.probeAfter("prefetch", block)
	}
	c := s.caches[node]
	co := s.cfg.Costs
	if st := c.Lookup(block); st == cache.Exclusive || (st == cache.Shared && !exclusive) {
		s.Stats.WastedDirs++
		return Result{Cycles: co.PrefetchIssue, Kind: Hit}
	}
	if _, busy := s.inflight[node][block]; busy {
		s.Stats.WastedDirs++
		return Result{Cycles: co.PrefetchIssue, Kind: Hit}
	}
	var cost uint64
	var trap bool
	var st cache.State
	if exclusive {
		if c.Lookup(block) == cache.Shared {
			cost, trap = s.upgrade(node, block)
			c.SetState(block, cache.Exclusive)
			if trap {
				s.Stats.Traps++
			}
			// Upgrades carry no data; model them as immediate.
			return Result{Cycles: co.PrefetchIssue, Kind: Hit, Trap: trap}
		}
		cost, trap = s.fetchExclusive(node, block)
		st = cache.Exclusive
	} else {
		cost, trap = s.fetchShared(node, block)
		st = cache.Shared
	}
	if trap {
		s.Stats.Traps++
	}
	s.inflight[node][block] = pending{arrival: now + cost, state: st}
	return Result{Cycles: co.PrefetchIssue, Kind: Hit, Trap: trap}
}

// FlushNode invalidates every line in a node's cache, writing back dirty
// blocks and reconciling the directory. The WWT-style tracer calls this for
// all nodes at every barrier (paper Section 3.3).
func (s *System) FlushNode(node int) {
	s.gen++
	s.caches[node].FlushAll(func(block uint64, st cache.State, dirty bool) {
		e := s.entryFor(block)
		switch e.State {
		case Shared:
			e.Sharers.Remove(node)
			if e.Sharers.Count() == 0 {
				s.SetState(e, Idle)
			}
		case Exclusive:
			if e.Owner == node {
				s.SetState(e, Idle)
				if dirty {
					s.Stats.Writebacks++
				}
			}
		}
	})
	// Drop in-flight prefetches too; their directory transitions already
	// happened, so release them as if installed then flushed.
	for block := range s.inflight[node] {
		e := s.entryFor(block)
		switch e.State {
		case Shared:
			e.Sharers.Remove(node)
			if e.Sharers.Count() == 0 {
				s.SetState(e, Idle)
			}
		case Exclusive:
			if e.Owner == node {
				s.SetState(e, Idle)
			}
		}
		delete(s.inflight[node], block)
	}
}

// CheckCoherence validates the protocol invariants: at most one exclusive
// copy per block; cache states consistent with the directory; plus whatever
// the protocol's CheckEntry adds (pointer-count bounds, broadcast-bit
// consistency). It returns an error describing the first violation found.
// Tests and the simulator's self-checks call this.
//
// The walk is driven by the caches' resident lines, O(resident) rather than
// O(touched blocks × nodes): a directory entry with no cached copy passes
// the generic invariants vacuously (Idle and Shared place no requirement
// without holders, and an Exclusive entry only constrains copies that
// exist), so only blocks that are actually cached somewhere need
// inspection. Protocol invariants constrain only the entry itself, so an
// uncached block's entry cannot newly violate them either (it last changed
// while probed or cached).
func (s *System) CheckCoherence() error {
	// Reset the slot scratch from the previous call's touched blocks, then
	// rebuild the view list. The reset is O(previously cached blocks).
	for _, b := range s.checkBlocks {
		if b < uint64(len(s.checkSlot)) {
			s.checkSlot[b] = 0
		}
	}
	if len(s.checkSlot) < len(s.dense) {
		s.checkSlot = make([]int32, len(s.dense))
	}
	if len(s.checkIdx) > 0 {
		clear(s.checkIdx)
	}
	w := (len(s.caches) + 63) / 64 // bitset words per view
	blocks := s.checkBlocks[:0]
	hold := s.checkHold[:0]
	excl := s.checkExcl[:0]
	// grow extends a bitset arena by one zeroed view (w words).
	grow := func(a []uint64, n int) []uint64 {
		if n <= cap(a) {
			a = a[:n]
			for j := n - w; j < n; j++ {
				a[j] = 0
			}
			return a
		}
		for j := 0; j < w; j++ {
			a = append(a, 0)
		}
		return a
	}
	addView := func(block uint64) int {
		i := len(blocks)
		blocks = append(blocks, block)
		hold = grow(hold, (i+1)*w)
		excl = grow(excl, (i+1)*w)
		return i
	}
	for n, c := range s.caches {
		wi, bit := n/64, uint64(1)<<(n%64)
		c.ForEach(func(block uint64, st cache.State, _ bool) {
			var i int
			if block < uint64(len(s.checkSlot)) {
				if v := s.checkSlot[block]; v > 0 {
					i = int(v) - 1
				} else {
					i = addView(block)
					s.checkSlot[block] = int32(i) + 1
				}
			} else {
				var ok bool
				if i, ok = s.checkIdx[block]; !ok {
					i = addView(block)
					if s.checkIdx == nil {
						s.checkIdx = make(map[uint64]int)
					}
					s.checkIdx[block] = i
				}
			}
			if st == cache.Exclusive {
				excl[i*w+wi] |= bit
			} else {
				hold[i*w+wi] |= bit
			}
		})
	}
	s.checkBlocks, s.checkHold, s.checkExcl = blocks, hold, excl
	for i, block := range blocks {
		// Wrapping the arena windows in NodeSet reuses its ascending-order
		// Members() for error formatting; the happy path only pops counts.
		holders := NodeSet{words: hold[i*w : (i+1)*w]}
		exclusive := NodeSet{words: excl[i*w : (i+1)*w]}
		ne := exclusive.Count()
		nh := holders.Count()
		if ne > 1 {
			return fmt.Errorf("block %d exclusive in %d caches", block, ne)
		}
		if ne == 1 && nh > 0 {
			return fmt.Errorf("block %d exclusive in node %d but shared in %v", block, exclusive.Sole(), holders.Members())
		}
		e := s.entryFor(block)
		switch e.State {
		case Idle:
			return fmt.Errorf("block %d idle in directory but cached by %v/%v", block, holders.Members(), exclusive.Members())
		case Shared:
			if ne > 0 {
				return fmt.Errorf("block %d shared in directory but exclusive in node %d", block, exclusive.Sole())
			}
			for hw, word := range holders.words {
				for word != 0 {
					h := hw*64 + bits.TrailingZeros64(word)
					if !e.Sharers.Has(h) {
						return fmt.Errorf("block %d cached shared by node %d missing from sharer set", block, h)
					}
					word &= word - 1
				}
			}
		case Exclusive:
			if ne == 1 && exclusive.Sole() != e.Owner {
				return fmt.Errorf("block %d owned by %d per directory but exclusive in %d", block, e.Owner, exclusive.Sole())
			}
			if nh > 0 {
				return fmt.Errorf("block %d exclusive in directory but shared in %v", block, holders.Members())
			}
		}
		if err := s.proto.CheckEntry(s, e, block); err != nil {
			return fmt.Errorf("block %d: %s: %w", block, s.proto.Name(), err)
		}
	}
	return nil
}
