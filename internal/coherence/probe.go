package coherence

import (
	"fmt"

	"cachier/internal/cache"
)

// The per-access invariant probe (Config.Probe) re-validates the coherence
// invariants on every block a public operation touches — the accessed block
// and any eviction victim — rather than waiting for the barrier-time
// CheckCoherence sweep. A violation is latched in probeErr with the
// operation that exposed it, so a differential harness can pin the fault to
// the access that introduced it instead of the barrier that noticed it.
//
// The generic pass checks the cache→directory direction only: every cached
// copy must be justified by the directory (at most one exclusive copy
// anywhere, no shared copy alongside an exclusive one, shared holders
// contained in the sharer set, an exclusive copy only in the registered
// owner). The converse — every directory registration has a cached copy —
// is deliberately NOT asserted: an in-flight prefetch legitimately
// registers the requester in the directory before any data reaches its
// cache, and a just-fetched block is registered between the directory
// transition and the install. The protocol's own CheckEntry invariants
// (pointer-count bound for DirₙNB, broadcast-bit consistency for DirₙB)
// run after the generic pass.

// ProbeError returns the first invariant violation the per-access probe
// observed, or nil. The error is latched: once set it persists for the life
// of the System.
func (s *System) ProbeError() error { return s.probeErr }

// probeAfter validates block's invariants after op completes; only called on
// paths where cfg.Probe is known true or cheap to test.
func (s *System) probeAfter(op string, block uint64) {
	if !s.cfg.Probe || s.probeErr != nil {
		return
	}
	if err := s.checkBlock(block); err != nil {
		s.probeErr = fmt.Errorf("coherence probe (%s): after %s of block %d: %w", s.proto.Name(), op, block, err)
	}
}

// checkBlock is the single-block core of CheckCoherence: O(nodes) per call,
// generic invariants first, then the protocol's CheckEntry.
func (s *System) checkBlock(block uint64) error {
	var holders []int
	exclCount, exclNode := 0, -1
	for n, c := range s.caches {
		switch c.Lookup(block) {
		case cache.Exclusive:
			exclCount++
			exclNode = n
		case cache.Shared:
			holders = append(holders, n)
		}
	}
	if exclCount > 1 {
		return fmt.Errorf("exclusive in %d caches", exclCount)
	}
	if exclCount == 1 && len(holders) > 0 {
		return fmt.Errorf("exclusive in node %d but shared in %v", exclNode, holders)
	}
	e := s.entryFor(block)
	switch e.State {
	case Idle:
		if exclCount > 0 || len(holders) > 0 {
			return fmt.Errorf("idle in directory but cached by %v/%d", holders, exclNode)
		}
	case Shared:
		if exclCount > 0 {
			return fmt.Errorf("shared in directory but exclusive in node %d", exclNode)
		}
		for _, h := range holders {
			if !e.Sharers.Has(h) {
				return fmt.Errorf("cached shared by node %d missing from sharer set", h)
			}
		}
	case Exclusive:
		if exclCount == 1 && exclNode != e.Owner {
			return fmt.Errorf("owned by %d per directory but exclusive in %d", e.Owner, exclNode)
		}
		if len(holders) > 0 {
			return fmt.Errorf("exclusive in directory but shared in %v", holders)
		}
	}
	return s.proto.CheckEntry(s, e, block)
}
