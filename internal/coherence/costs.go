// Package coherence holds the protocol-independent half of the simulated
// memory system: one shared-data cache per node, the dense directory slab
// with its per-block entries and sharer bitsets, in-flight prefetch
// tracking, eviction/installation reconciliation, the CICO directive
// surface, the barrier-time coherence checker, the per-access invariant
// probe, and the observability seams. What varies between directory
// protocols — the state-machine transitions a miss/upgrade performs, the
// cycle cost and trap behaviour of each, and any protocol-specific
// invariants — is supplied by a Protocol implementation (see protocol.go):
// internal/dir1sw for the paper's Dir1SW (and its full-map ablation),
// internal/dirn for the hardware DirₙNB/DirₙB variants.
package coherence

import "cachier/internal/obs"

// Costs parameterizes the cycle cost model. The defaults are loosely scaled
// to the WWT/Dir1SW publications (single-cycle cache hits, ~100-cycle clean
// remote misses, expensive software traps); the reproduction's experiments
// depend on the relative ordering of these costs, not their absolute values.
type Costs struct {
	CacheHit   uint64 // cost of a cache hit
	NetHop     uint64 // one-way network message latency
	DirService uint64 // directory controller occupancy per request
	MemAccess  uint64 // memory read/write for a block transfer
	Trap       uint64 // software trap entry/exit on the directory node
	InvalMsg   uint64 // per-sharer ack-processing cost added to a trap (invalidations pipeline; this is directory occupancy per ack, not a serialized message)

	DirectiveOverhead uint64 // address generation/issue cost of an explicit CICO directive
	PrefetchIssue     uint64 // issue cost of a non-blocking prefetch
	WritebackLocal    uint64 // local cost of pushing a dirty block out on check-in
}

// DefaultCosts returns the model's default cost parameters.
func DefaultCosts() Costs {
	return Costs{
		CacheHit:          1,
		NetHop:            25,
		DirService:        10,
		MemAccess:         20,
		Trap:              250,
		InvalMsg:          24,
		DirectiveOverhead: 4,
		PrefetchIssue:     3,
		WritebackLocal:    6,
	}
}

// CleanMiss is the latency of a miss serviced entirely in hardware:
// request hop, directory service, memory access, data reply hop.
func (c Costs) CleanMiss() uint64 { return 2*c.NetHop + c.DirService + c.MemAccess }

// Upgrade is the latency of a hardware shared-to-exclusive upgrade
// (request + ack, no data transfer).
func (c Costs) Upgrade() uint64 { return 2*c.NetHop + c.DirService }

// Stats aggregates protocol activity. Message counts let the experiments
// show CICO's traffic reduction as well as its latency reduction.
type Stats struct {
	Reads  uint64 // shared-data read accesses
	Writes uint64 // shared-data write accesses

	Hits        uint64
	ReadMisses  uint64
	WriteMisses uint64
	WriteFaults uint64 // writes that found the block Shared (upgrades)

	Traps         uint64 // software traps taken
	Invalidations uint64 // sharer copies invalidated
	Writebacks    uint64 // dirty blocks written back (evict, flush, check-in, trap)

	ReqMsgs  uint64 // request messages (miss, upgrade, directive)
	DataMsgs uint64 // block-transfer messages
	CtlMsgs  uint64 // invalidations, acks, replacement notifications

	CheckOutX  uint64
	CheckOutS  uint64
	CheckIns   uint64
	PrefetchX  uint64
	PrefetchS  uint64
	WastedDirs uint64 // directives that found nothing to do

	PostStores     uint64 // read-only copies pushed by KSR-1-style post-store check-ins
	PrefetchHits   uint64 // accesses fully covered by an earlier prefetch
	PrefetchStalls uint64 // cycles stalled waiting for in-flight prefetches

	// DirEvents counts directory entry transitions (including same-state
	// ownership handoffs), incremented by System.SetState independent of the
	// observability recorder. The Snapshot consistency checker demands the
	// recorder's transition tallies sum to exactly this.
	DirEvents uint64
}

// TotalMsgs returns all messages sent.
func (s *Stats) TotalMsgs() uint64 { return s.ReqMsgs + s.DataMsgs + s.CtlMsgs }

// Misses returns all misses including write faults.
func (s *Stats) Misses() uint64 { return s.ReadMisses + s.WriteMisses + s.WriteFaults }

// Protocol converts the counters to the observability layer's snapshot
// form (obs cannot import coherence without a cycle, so the mirror type
// lives there and the conversion lives here).
func (s *Stats) Protocol() obs.ProtocolStats {
	return obs.ProtocolStats{
		Reads:  s.Reads,
		Writes: s.Writes,

		Hits:        s.Hits,
		ReadMisses:  s.ReadMisses,
		WriteMisses: s.WriteMisses,
		WriteFaults: s.WriteFaults,

		Traps:         s.Traps,
		Invalidations: s.Invalidations,
		Writebacks:    s.Writebacks,

		ReqMsgs:  s.ReqMsgs,
		DataMsgs: s.DataMsgs,
		CtlMsgs:  s.CtlMsgs,

		CheckOutX:  s.CheckOutX,
		CheckOutS:  s.CheckOutS,
		CheckIns:   s.CheckIns,
		PrefetchX:  s.PrefetchX,
		PrefetchS:  s.PrefetchS,
		WastedDirs: s.WastedDirs,

		PostStores:     s.PostStores,
		PrefetchHits:   s.PrefetchHits,
		PrefetchStalls: s.PrefetchStalls,

		DirEvents: s.DirEvents,
	}
}
