package coherence

import "math/bits"

// NodeSet is a set of node IDs. A directory entry's sharer list is
// conceptually a handful of hardware pointers (one for Dir1SW, n for the
// DirₙNB/DirₙB variants); the model keeps the exact set so it can deliver
// invalidations, and each protocol charges cost wherever its hardware would
// have had to trap, evict, or broadcast.
type NodeSet struct {
	words []uint64
}

// NewNodeSet returns an empty set sized for nodes 0..n-1.
func NewNodeSet(n int) NodeSet {
	return NodeSet{words: make([]uint64, (n+63)/64)}
}

// Add inserts node i.
func (s NodeSet) Add(i int) { s.words[i/64] |= 1 << (i % 64) }

// Remove deletes node i.
func (s NodeSet) Remove(i int) { s.words[i/64] &^= 1 << (i % 64) }

// Has reports whether node i is a member.
func (s NodeSet) Has(i int) bool { return s.words[i/64]&(1<<(i%64)) != 0 }

// Count returns the number of members.
func (s NodeSet) Count() int {
	n := 0
	for _, w := range s.words {
		n += bits.OnesCount64(w)
	}
	return n
}

// Clear empties the set.
func (s NodeSet) Clear() {
	for i := range s.words {
		s.words[i] = 0
	}
}

// Members returns the set's node IDs in ascending order.
func (s NodeSet) Members() []int {
	var out []int
	for wi, w := range s.words {
		for w != 0 {
			b := bits.TrailingZeros64(w)
			out = append(out, wi*64+b)
			w &^= 1 << b
		}
	}
	return out
}

// First returns the smallest member, or -1 when the set is empty. The lane
// engine's epoch bucket pops released nodes in processor-ID order with it.
func (s NodeSet) First() int {
	for wi, w := range s.words {
		if w != 0 {
			return wi*64 + bits.TrailingZeros64(w)
		}
	}
	return -1
}

// Sole returns the single member if Count()==1, else -1.
func (s NodeSet) Sole() int {
	m := -1
	for wi, w := range s.words {
		if w == 0 {
			continue
		}
		if m >= 0 || w&(w-1) != 0 {
			return -1
		}
		m = wi*64 + bits.TrailingZeros64(w)
	}
	return m
}
