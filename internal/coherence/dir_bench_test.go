package coherence_test

import (
	"testing"

	"cachier/internal/dir1sw"
)

// BenchmarkDirectoryLookup drives a pseudo-random read/write mix over a
// 4 MB shared space (128K blocks), the access pattern whose per-block
// directory lookups the dense slice serves without map hashing.
func BenchmarkDirectoryLookup(b *testing.B) {
	cfg := dir1sw.DefaultConfig()
	cfg.AddrSpace = 1 << 22
	s, err := dir1sw.New(cfg)
	if err != nil {
		b.Fatal(err)
	}
	rng := uint64(1)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		rng = rng*6364136223846793005 + 1442695040888963407
		node := int(rng>>33) % cfg.Nodes
		addr := (rng >> 8) % cfg.AddrSpace
		if rng&1 == 0 {
			s.Read(node, addr, uint64(i))
		} else {
			s.Write(node, addr, uint64(i))
		}
	}
}

// BenchmarkBatchedDirectoryLookup measures the lane engine's memoized
// access path (batch.go ReadFast/WriteFast) against the plain per-access
// protocol walk on the pattern it exists for: short runs of repeat
// same-block accesses by one node between coherence-state changes, the
// shape a lane's inner loop produces. The first access of each run takes
// the slow path and arms the memo; the rest are served as pure cache hits
// without touching the directory.
func BenchmarkBatchedDirectoryLookup(b *testing.B) {
	for _, mode := range []struct {
		name string
		fast bool
	}{{"plain", false}, {"memo", true}} {
		b.Run(mode.name, func(b *testing.B) {
			cfg := dir1sw.DefaultConfig()
			cfg.AddrSpace = 1 << 22
			s, err := dir1sw.New(cfg)
			if err != nil {
				b.Fatal(err)
			}
			if mode.fast {
				s.EnableAccessMemo()
			}
			const run = 8 // same-block repeats per pick
			rng := uint64(1)
			var (
				node int
				addr uint64
			)
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if i%run == 0 {
					rng = rng*6364136223846793005 + 1442695040888963407
					node = int(rng>>33) % cfg.Nodes
					addr = (rng >> 8) % cfg.AddrSpace
				}
				if mode.fast {
					if rng&1 == 0 {
						s.ReadFast(node, addr, uint64(i))
					} else {
						s.WriteFast(node, addr, uint64(i))
					}
				} else {
					if rng&1 == 0 {
						s.Read(node, addr, uint64(i))
					} else {
						s.Write(node, addr, uint64(i))
					}
				}
			}
		})
	}
}
