package coherence_test

import (
	"testing"

	"cachier/internal/dir1sw"
)

// BenchmarkDirectoryLookup drives a pseudo-random read/write mix over a
// 4 MB shared space (128K blocks), the access pattern whose per-block
// directory lookups the dense slice serves without map hashing.
func BenchmarkDirectoryLookup(b *testing.B) {
	cfg := dir1sw.DefaultConfig()
	cfg.AddrSpace = 1 << 22
	s, err := dir1sw.New(cfg)
	if err != nil {
		b.Fatal(err)
	}
	rng := uint64(1)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		rng = rng*6364136223846793005 + 1442695040888963407
		node := int(rng>>33) % cfg.Nodes
		addr := (rng >> 8) % cfg.AddrSpace
		if rng&1 == 0 {
			s.Read(node, addr, uint64(i))
		} else {
			s.Write(node, addr, uint64(i))
		}
	}
}
