package coherence

// Batched access resolution for the lane engine (sim.Config.Lanes).
//
// The lane stepper issues shared accesses one at a time, but real programs
// issue them in runs against the same cache block (stencil sweeps, row
// walks): grouping a run by BlockOf and resolving the block once is the
// SPMD "uniform" observation applied to the memory system. The memo below
// implements that grouping without buffering: each node remembers the last
// block it resolved per cache set, and as long as no machine-wide state has
// changed since (directory transitions, installs, evictions, invalidations
// — everything System.gen counts), a repeat access to that block is served
// as a pure cache hit with no cache or directory walk at all.
//
// Correctness argument, relied on by the conformance corpus:
//
//   - A memo entry is only written immediately after Read/Write returned,
//     at which point the block is resident and most-recently used in the
//     node's set (every Read path ends with a hit-Touch or an install;
//     every Write path additionally leaves the line Exclusive and dirty).
//   - If s.gen is unchanged since, no operation has mutated any cache or
//     directory state anywhere (Read/Write bump it on every path past a
//     pure hit; directives, prefetches, and flushes bump unconditionally),
//     so replaying the access would again be a pure hit: Stats.Reads/Writes
//     and Stats.Hits advance, Cycles = Costs.CacheHit, Kind = Hit.
//   - Skipping the hit's Touch is unobservable: the line is already the
//     set's most-recently-used, so re-stamping it cannot change any future
//     LRU victim choice, and the per-cache hit counters are not part of any
//     simulated result. Skipping Write's MarkDirty is likewise a no-op —
//     the memo's write bit is only set when the line is already dirty.
//   - Any slow-path access to a *different* block in the same set
//     overwrites the memo entry, so the memoized block is always the set's
//     true MRU line while its generation is current.
//
// The memo is enabled only by the lane engine; the sequential engine stays
// the memo-free oracle the conformance harness diffs against.

// accessMemo is one node's most recent resolution for one cache set.
type accessMemo struct {
	block uint64
	gen   uint64
	flags uint8
}

const (
	memoRead  uint8 = 1 << 0 // repeat reads of block are pure hits
	memoWrite uint8 = 1 << 1 // repeat writes too (Exclusive + dirty)
)

// EnableAccessMemo switches on batched access resolution: ReadFast and
// WriteFast serve same-block access runs from the memo instead of walking
// the cache and directory. Simulated results are bit-identical to calling
// Read/Write for every access. Idempotent.
func (s *System) EnableAccessMemo() {
	if s.memos != nil {
		return
	}
	// cache.New validated the geometry, so nsets is a power of two.
	nsets := s.cfg.CacheSize / (s.cfg.Assoc * s.cfg.BlockSize)
	s.memoMask = uint64(nsets - 1)
	s.memos = make([][]accessMemo, s.cfg.Nodes)
	for i := range s.memos {
		s.memos[i] = make([]accessMemo, nsets)
	}
}

// ReadFast is Read with batched resolution: a repeat read of the node's
// last-resolved block in this set, with no intervening state change, skips
// the cache and directory entirely. Falls back to Read (and primes the
// memo) otherwise. Requires EnableAccessMemo; behaviour is bit-identical
// to Read either way.
func (s *System) ReadFast(node int, addr uint64, now uint64) Result {
	if s.memos == nil {
		return s.Read(node, addr, now)
	}
	block := s.BlockOf(addr)
	m := &s.memos[node][block&s.memoMask]
	if m.gen == s.gen && m.block == block && m.flags&memoRead != 0 {
		s.Stats.Reads++
		s.Stats.Hits++
		return Result{Cycles: s.cfg.Costs.CacheHit, Kind: Hit}
	}
	r := s.Read(node, addr, now)
	// Every Read path leaves the block resident and MRU, so the next read
	// of it is a pure hit until s.gen moves.
	m.block, m.gen, m.flags = block, s.gen, memoRead
	return r
}

// WriteFast is Write with batched resolution; see ReadFast.
func (s *System) WriteFast(node int, addr uint64, now uint64) Result {
	if s.memos == nil {
		return s.Write(node, addr, now)
	}
	block := s.BlockOf(addr)
	m := &s.memos[node][block&s.memoMask]
	if m.gen == s.gen && m.block == block && m.flags&memoWrite != 0 {
		s.Stats.Writes++
		s.Stats.Hits++
		return Result{Cycles: s.cfg.Costs.CacheHit, Kind: Hit}
	}
	r := s.Write(node, addr, now)
	// Every Write path leaves the block Exclusive, dirty, and MRU, so both
	// repeat reads and repeat writes are pure hits until s.gen moves.
	m.block, m.gen, m.flags = block, s.gen, memoRead|memoWrite
	return r
}
