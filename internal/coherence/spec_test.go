package coherence

import "testing"

func TestParseSpec(t *testing.T) {
	cases := []struct {
		in   string
		want Spec
		str  string
	}{
		{"", Spec{Name: SpecDir1SW}, "dir1sw"},
		{"dir1sw", Spec{Name: SpecDir1SW}, "dir1sw"},
		{"Dir1SW", Spec{Name: SpecDir1SW}, "dir1sw"},
		{"dirnnb", Spec{Name: SpecDirnNB, N: 4}, "dirnnb:4"},
		{"dirnnb:1", Spec{Name: SpecDirnNB, N: 1}, "dirnnb:1"},
		{"DirnB:8", Spec{Name: SpecDirnB, N: 8}, "dirnb:8"},
		{" dirnb ", Spec{Name: SpecDirnB, N: 4}, "dirnb:4"},
	}
	for _, c := range cases {
		got, err := ParseSpec(c.in)
		if err != nil {
			t.Errorf("ParseSpec(%q): %v", c.in, err)
			continue
		}
		if got != c.want {
			t.Errorf("ParseSpec(%q) = %+v, want %+v", c.in, got, c.want)
		}
		if got.String() != c.str {
			t.Errorf("ParseSpec(%q).String() = %q, want %q", c.in, got.String(), c.str)
		}
	}
	for _, bad := range []string{"mesi", "dir1sw:2", "dirnnb:0", "dirnnb:-1", "dirnb:x"} {
		if _, err := ParseSpec(bad); err == nil {
			t.Errorf("ParseSpec(%q) accepted", bad)
		}
	}
}

func TestDirStateString(t *testing.T) {
	for st, want := range map[DirState]string{Idle: "idle", Shared: "shared", Exclusive: "exclusive"} {
		if st.String() != want {
			t.Errorf("%d -> %q, want %q", int(st), st.String(), want)
		}
	}
}

func TestStatsAggregates(t *testing.T) {
	s := Stats{ReqMsgs: 3, DataMsgs: 4, CtlMsgs: 5, ReadMisses: 1, WriteMisses: 2, WriteFaults: 3}
	if s.TotalMsgs() != 12 {
		t.Errorf("TotalMsgs = %d", s.TotalMsgs())
	}
	if s.Misses() != 6 {
		t.Errorf("Misses = %d", s.Misses())
	}
}

func TestAccessKindStrings(t *testing.T) {
	for k, want := range map[AccessKind]string{
		Hit: "hit", ReadMiss: "read-miss", WriteMiss: "write-miss", WriteFault: "write-fault",
	} {
		if k.String() != want {
			t.Errorf("%d -> %q, want %q", int(k), k.String(), want)
		}
	}
}

func TestCostArithmetic(t *testing.T) {
	c := Costs{NetHop: 25, DirService: 10, MemAccess: 20, Trap: 250, InvalMsg: 8}
	if got := c.CleanMiss(); got != 2*25+10+20 {
		t.Errorf("CleanMiss = %d", got)
	}
	if got := c.Upgrade(); got != 2*25+10 {
		t.Errorf("Upgrade = %d", got)
	}
}
