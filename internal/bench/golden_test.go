package bench

import (
	"bytes"
	"fmt"
	"hash/fnv"
	"testing"

	"cachier/internal/parc"
	"cachier/internal/sim"
	"cachier/internal/trace"
)

// The golden tables below freeze the simulator's observable results — cycle
// counts, sharing degrees, and trace encodings — as produced by the original
// straight-line implementation (linear-scan scheduler, map directory,
// sequential harness). The optimized simulator must reproduce them
// bit-for-bit: performance work is only allowed to change how fast the
// answer arrives, never the answer.

var goldenFig6 = []struct {
	Benchmark                      string
	None, Hand, Cachier, CachierPF uint64
	ShLoads, ShStores              string
}{
	{Benchmark: "Barnes", None: 1566278, Hand: 1530430, Cachier: 1048152, CachierPF: 1047192, ShLoads: "0.869623", ShStores: "0.190066"},
	{Benchmark: "Ocean", None: 331882, Hand: 331955, Cachier: 261081, CachierPF: 261081, ShLoads: "1.000000", ShStores: "1.000000"},
	{Benchmark: "Mp3d", None: 349387, Hand: 391877, Cachier: 285670, CachierPF: 279640, ShLoads: "1.000000", ShStores: "1.000000"},
	{Benchmark: "MatrixMultiply", None: 1925355, Hand: 853754, Cachier: 848099, CachierPF: 873354, ShLoads: "1.000000", ShStores: "1.000000"},
	{Benchmark: "Tomcatv", None: 3002574, Hand: 2976854, Cachier: 2565938, CachierPF: 2362428, ShLoads: "0.857143", ShStores: "0.429940"},
}

var goldenTraces = []struct {
	Benchmark   string
	TraceCycles uint64
	Epochs      int
	TraceHash   uint64
}{
	{Benchmark: "Barnes", TraceCycles: 878402, Epochs: 8, TraceHash: 0x538959d0d951608c},
	{Benchmark: "Ocean", TraceCycles: 272724, Epochs: 8, TraceHash: 0x5b12d8ea8e6f3c0},
	{Benchmark: "Mp3d", TraceCycles: 322148, Epochs: 5, TraceHash: 0x588be1eaeaf77c16},
	{Benchmark: "MatrixMultiply", TraceCycles: 2178471, Epochs: 3, TraceHash: 0x8052ce3c1bea3204},
	{Benchmark: "Tomcatv", TraceCycles: 2318414, Epochs: 6, TraceHash: 0xe16c53812b1bc487},
}

// TestFigure6Golden runs the full (parallel) harness and checks every cycle
// count and sharing degree against the frozen sequential-implementation
// results.
func TestFigure6Golden(t *testing.T) {
	if testing.Short() {
		t.Skip("simulation-heavy")
	}
	rows, err := Figure6()
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != len(goldenFig6) {
		t.Fatalf("Figure6 returned %d rows, want %d", len(rows), len(goldenFig6))
	}
	for i, want := range goldenFig6 {
		r := rows[i]
		if r.Benchmark != want.Benchmark {
			t.Fatalf("row %d is %s, want %s (order must be stable)", i, r.Benchmark, want.Benchmark)
		}
		got := map[Variant]uint64{
			VariantNone:            want.None,
			VariantHand:            want.Hand,
			VariantCachier:         want.Cachier,
			VariantCachierPrefetch: want.CachierPF,
		}
		for _, v := range Variants() {
			if r.Cycles[v] != got[v] {
				t.Errorf("%s/%s: %d cycles, golden %d", r.Benchmark, v, r.Cycles[v], got[v])
			}
		}
		if l := fmt.Sprintf("%.6f", r.SharingLoads); l != want.ShLoads {
			t.Errorf("%s: sharing loads %s, golden %s", r.Benchmark, l, want.ShLoads)
		}
		if s := fmt.Sprintf("%.6f", r.SharingStores); s != want.ShStores {
			t.Errorf("%s: sharing stores %s, golden %s", r.Benchmark, s, want.ShStores)
		}
	}
}

// TestTraceDeterminism traces every benchmark twice and requires the runs to
// agree with each other — byte-identical trace encodings, equal cycle
// counts — and with the frozen goldens.
func TestTraceDeterminism(t *testing.T) {
	if testing.Short() {
		t.Skip("simulation-heavy")
	}
	for _, want := range goldenTraces {
		b, err := ByName(want.Benchmark)
		if err != nil {
			t.Fatal(err)
		}
		cfg := machineConfig(b.Nodes)
		cfg.Mode = sim.ModeTrace
		prog, err := parc.Parse(b.Source(b.Train))
		if err != nil {
			t.Fatal(err)
		}

		type run struct {
			cycles uint64
			epochs int
			enc    []byte
		}
		var runs [2]run
		for i := range runs {
			res, err := sim.Run(prog, cfg)
			if err != nil {
				t.Fatalf("%s run %d: %v", b.Name, i, err)
			}
			var buf bytes.Buffer
			if err := trace.Write(&buf, res.Trace); err != nil {
				t.Fatal(err)
			}
			runs[i] = run{cycles: res.Cycles, epochs: len(res.Trace.Epochs), enc: buf.Bytes()}
		}
		if runs[0].cycles != runs[1].cycles {
			t.Errorf("%s: cycle counts differ between runs: %d vs %d", b.Name, runs[0].cycles, runs[1].cycles)
		}
		if !bytes.Equal(runs[0].enc, runs[1].enc) {
			t.Errorf("%s: trace encodings differ between runs", b.Name)
		}
		if runs[0].cycles != want.TraceCycles {
			t.Errorf("%s: %d trace cycles, golden %d", b.Name, runs[0].cycles, want.TraceCycles)
		}
		if runs[0].epochs != want.Epochs {
			t.Errorf("%s: %d epochs, golden %d", b.Name, runs[0].epochs, want.Epochs)
		}
		h := fnv.New64a()
		h.Write(runs[0].enc)
		if got := h.Sum64(); got != want.TraceHash {
			t.Errorf("%s: trace hash %#x, golden %#x", b.Name, got, want.TraceHash)
		}
	}
}
