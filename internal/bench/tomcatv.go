package bench

// Tomcatv ports the SPEC Tomcatv mesh-generation kernel in its parallelized
// form: each processor iterates a stencil over its own band of the mesh,
// with almost all references landing in processor-private working arrays.
// Around 90% of its time is computation (Section 6), so CICO annotations
// have little to work with and the paper's Figure 6 shows it essentially
// flat; the reproduction must preserve that non-result.
func Tomcatv() *Benchmark {
	return &Benchmark{
		Name:     "Tomcatv",
		Nodes:    32,
		Source:   tomcatvSource,
		Hand:     tomcatvHand,
		Train:    Params{N: 256, Steps: 2, Seed: 3},
		Test:     Params{N: 256, Steps: 2, Seed: 51},
		BigTrain: Params{N: 512, Steps: 3, Seed: 3},
		BigTest:  Params{N: 512, Steps: 3, Seed: 51},
		// Paper scale: a 1024x1024 mesh (Section 6's Tomcatv grid).
		PaperTrain: Params{N: 1024, Steps: 2, Seed: 3},
		PaperTest:  Params{N: 1024, Steps: 2, Seed: 51},
	}
}

const tomcatvBody = `
const N = @N@;
const STEPS = @STEPS@;
const SEED = @SEED@;

shared float X[N][N] label "X";
shared float rxm[@NODES@] label "rxm";

func main() {
    var per int = N / nprocs();
    var lo int = pid() * per;
    var hi int = lo + per - 1;
    var r float;
    var rx float;
    var wx float[@N@][@PERROWS@];
    if pid() == 0 {
        rndseed(SEED);
        for i = 0 to N - 1 {
            for j = 0 to N - 1 {
                X[i][j] = rnd();
            }
        }
    }
    barrier;
    for t = 1 to STEPS {
        // Compute residuals into the private working array: the bulk of
        // the program, all private after the initial row reads.
        rx = 0.0;
        for i = max(lo, 1) to min(hi, N - 2) {
            for j = 1 to N - 2 {
                r = X[i - 1][j] + X[i + 1][j] + X[i][j - 1] + X[i][j + 1] - 4.0 * X[i][j];
                wx[j][i - lo] = r;
                // Heavy private smoothing work per cell.
                var acc float = r;
                var it int = 0;
                while it < 6 {
                    acc = acc * 0.5 + r * 0.25;
                    it += 1;
                }
                wx[j][i - lo] = acc;
                if acc > rx {
                    rx = acc;
                }
            }
        }
        // Phase barrier: residual reads of neighbour rows complete before
        // anyone writes the mesh back.
        barrier;
        // Apply the private corrections back to the owned band.
        for i = max(lo, 1) to min(hi, N - 2) {
            for j = 1 to N - 2 {
                X[i][j] = X[i][j] + wx[j][i - lo] * 0.1;
            }
        }
        rxm[pid()] = rx;
        barrier;
    }
}
`

func tomcatvRender(p Params, nodes int) string {
	per := p.N / nodes
	if per < 1 {
		per = 1
	}
	return subst(tomcatvBody, map[string]any{
		"N": p.N, "STEPS": p.Steps, "SEED": p.Seed,
		"NODES": nodes, "PERROWS": per,
	})
}

func tomcatvSource(p Params) string { return tomcatvRender(p, Tomcatv().Nodes) }

// tomcatvHand adds the only annotations a careful hand pass finds useful —
// checking the band in after the update sweep — which, like Cachier's own
// annotations, barely moves the needle on a compute-bound program.
func tomcatvHand(p Params) string {
	src := tomcatvRender(p, Tomcatv().Nodes)
	src = replaceOnce(src, "        rxm[pid()] = rx;",
		`        check_in X[lo][0:N - 1];
        check_in X[hi][0:N - 1];
        rxm[pid()] = rx;`)
	return src
}
