package bench

// MatMul is the paper's "unconventional" blocked matrix multiply
// (Section 4.4): each of P*P processors owns a block of B (rows Lkp:Ukp x
// columns Ljp:Ujp); A is read-shared; C is read-write shared and its
// elements race, because all processors in a column group accumulate into
// the same C elements. One processor initializes the matrices with random
// values, which is where checking them in after initialization pays off
// (Section 6).
func MatMul() *Benchmark {
	return &Benchmark{
		Name:     "MatrixMultiply",
		Nodes:    16,
		Source:   matMulSource,
		Hand:     matMulHand,
		Train:    Params{N: 32, P: 4, Seed: 11},
		Test:     Params{N: 32, P: 4, Seed: 97},
		BigTrain: Params{N: 64, P: 4, Seed: 11},
		BigTest:  Params{N: 64, P: 4, Seed: 97},
		// Paper scale: 256x256 matrices (Section 6).
		PaperTrain: Params{N: 256, P: 4, Seed: 11},
		PaperTest:  Params{N: 256, P: 4, Seed: 97},
		Racy:       true,
	}
}

const matMulBody = `
const N = @N@;
const P = @P@;
const BS = N / P;
const SEED = @SEED@;

shared float A[N][N] label "A";
shared float B[N][N] label "B";
shared float C[N][N] label "C";

func main() {
    var lkp int = (pid() / P) * BS;
    var ukp int = lkp + BS - 1;
    var ljp int = (pid() % P) * BS;
    var ujp int = ljp + BS - 1;
    var t float;
    if pid() == 0 {
        rndseed(SEED);
        for i = 0 to N - 1 {
            for j = 0 to N - 1 {
                A[i][j] = rnd();
                B[i][j] = rnd();
                C[i][j] = 0.0;
            }
        }
    }
    barrier;
    for i = 0 to N - 1 {
        for k = lkp to ukp {
            t = A[i][k];
            for j = ljp to ujp {
%CLOOP%
            }
        }
    }
    barrier;
}
`

func matMulRender(p Params, cloop string) string {
	src := subst(matMulBody, map[string]any{"N": p.N, "P": p.P, "SEED": p.Seed})
	return replaceMarker(src, "%CLOOP%", cloop)
}

func matMulSource(p Params) string {
	return matMulRender(p, `                C[i][j] = C[i][j] + t * B[k][j];`)
}

// matMulHand reproduces the paper's hand-annotated matrix multiply: the
// core annotations are right, but it carries "a few unnecessary
// annotations" (Section 6) — explicit check_out_s on A and B, which Dir1SW
// makes redundant and purely overhead — and its prefetch is
// "inappropriately placed": issued immediately before the use, so no
// latency is overlapped.
func matMulHand(p Params) string {
	src := matMulRender(p, `                check_out_x C[i][j];
                C[i][j] = C[i][j] + t * B[k][j];
                check_in C[i][j];`)
	// Unnecessary shared check-outs around the A and B reads, and a
	// prefetch issued right at the point of use.
	src = replaceOnce(src, "            t = A[i][k];",
		`            check_out_s A[i][k];
            t = A[i][k];
            prefetch_s B[k][ljp:ujp];
            check_out_s B[k][ljp:ujp];`)
	// The hand annotator did check the matrices in after initialization.
	src = replaceOnce(src, "    barrier;",
		`    if pid() == 0 {
        check_in A[0:N - 1][0:N - 1];
        check_in B[0:N - 1][0:N - 1];
        check_in C[0:N - 1][0:N - 1];
    }
    barrier;`)
	return src
}
