// Package bench contains the reproduction's benchmark suite: ParC ports of
// the five programs evaluated in the paper's Section 6 (Barnes, Ocean, Mp3d,
// Matrix Multiply, Tomcatv), hand-annotated variants reproducing the
// specific mistakes the paper attributes to hand annotation, the Jacobi
// program of Section 2.1, and the harness that regenerates Figure 6.
//
// The SPLASH originals are C programs on real inputs; these ports are
// scaled-down synthetic equivalents that preserve each program's sharing
// character (see DESIGN.md): Matrix Multiply's block race on the result
// matrix, Ocean's high-degree boundary sharing, Mp3d's dynamic indirect
// cell updates, Barnes' pointer-chasing over a shared tree with mostly
// private computation, and Tomcatv's compute-dominated profile.
package bench

import (
	"fmt"
	"strings"
)

// Params sizes a benchmark instance. Fields are interpreted per benchmark;
// Seed varies the synthetic input (the paper annotates with one data set
// and measures with another, Section 6).
type Params struct {
	N     int   // problem size (matrix dim, grid dim, particles, bodies)
	P     int   // partition factor where relevant (e.g. sqrt of workers)
	Steps int   // time steps / iterations
	Seed  int64 // input data seed
}

// Benchmark describes one target program.
type Benchmark struct {
	Name string
	// Nodes is the simulated machine size the benchmark expects.
	Nodes int
	// Source generates the unannotated ParC program.
	Source func(p Params) string
	// Hand generates the hand-annotated variant, including the flaws the
	// paper reports for the hand versions (Section 6).
	Hand func(p Params) string
	// Train and Test are the annotation-time and measurement-time inputs.
	Train Params
	Test  Params

	// BigTrain and BigTest are near-paper-scale inputs (cmd/fig6 -big);
	// they take minutes rather than seconds to simulate.
	BigTrain Params
	BigTest  Params

	// PaperTrain and PaperTest are the paper-scale inputs (cmd/fig6
	// -paper): the Section 6 problem sizes — 256x256 Matrix Multiply,
	// 1024-body Barnes, 1024x1024 Tomcatv — at full cost. Expect minutes
	// per benchmark on the pure-Go simulator.
	PaperTrain Params
	PaperTest  Params

	// Parallel selects the simulator's epoch-parallel engine for every run
	// of this benchmark (sim.Config.Parallel: 0 sequential, -1 one worker
	// per CPU). Results are bit-identical either way; only host wall-clock
	// changes.
	Parallel int

	// Lanes selects the simulator's lane-batched engine for every run of
	// this benchmark (sim.Config.Lanes). Results are bit-identical either
	// way; only host wall-clock changes.
	Lanes bool

	// Racy marks benchmarks whose ParC ports genuinely race (the paper
	// runs them anyway; Section 3.1's epoch model tolerates them). The
	// static race detector is expected to flag exactly these.
	Racy bool

	// Protocol is the coherence protocol spec every run of this benchmark
	// uses (sim.Config.Protocol); "" is Dir1SW, the paper's machine.
	Protocol string
}

// WithProtocol returns a copy of the benchmark that simulates under the
// given coherence protocol spec (see coherence.ParseSpec).
func (b *Benchmark) WithProtocol(spec string) *Benchmark {
	c := *b
	c.Protocol = spec
	return &c
}

// UseBig switches the benchmark to its near-paper-scale inputs.
func (b *Benchmark) UseBig() {
	b.Train, b.Test = b.BigTrain, b.BigTest
}

// UsePaper switches the benchmark to its paper-scale inputs.
func (b *Benchmark) UsePaper() {
	b.Train, b.Test = b.PaperTrain, b.PaperTest
}

// All returns the Figure 6 benchmark suite in the paper's presentation
// order.
func All() []*Benchmark {
	return []*Benchmark{
		Barnes(),
		Ocean(),
		Mp3d(),
		MatMul(),
		Tomcatv(),
	}
}

// ByName finds a benchmark by (case-insensitive) name.
func ByName(name string) (*Benchmark, error) {
	for _, b := range All() {
		if strings.EqualFold(b.Name, name) {
			return b, nil
		}
	}
	return nil, fmt.Errorf("bench: unknown benchmark %q", name)
}

// replaceMarker substitutes a structural marker (like a loop body slot) in
// a template; the marker must be present.
func replaceMarker(src, marker, with string) string {
	if !strings.Contains(src, marker) {
		panic("bench: missing marker " + marker)
	}
	return strings.Replace(src, marker, with, 1)
}

// replaceOnce replaces the first occurrence of old, panicking if absent;
// hand-annotated variants are built by patching the unannotated source so
// the two can never drift apart structurally.
func replaceOnce(src, old, with string) string {
	if !strings.Contains(src, old) {
		panic("bench: missing patch site " + old)
	}
	return strings.Replace(src, old, with, 1)
}

// subst renders a source template, replacing @NAME@ markers with values.
// Benchmarks keep their ParC sources readable as near-literal programs.
func subst(template string, vals map[string]any) string {
	out := template
	for k, v := range vals {
		out = strings.ReplaceAll(out, "@"+k+"@", fmt.Sprint(v))
	}
	if i := strings.Index(out, "@"); i >= 0 {
		end := i + 20
		if end > len(out) {
			end = len(out)
		}
		panic("bench: unreplaced template marker near: " + out[i:end])
	}
	return out
}
