package bench

import (
	"strings"
	"testing"

	"cachier/internal/core"
	"cachier/internal/parc"
	"cachier/internal/sim"
)

// TestJacobiPlacementRegimes: Section 2.1 derives two annotation regimes
// from the cache size — check the whole block out once when it fits, fall
// back to row-at-a-time when it does not. Cachier's cache-size-constrained
// placement (Section 4.2) must reproduce exactly that transition when
// annotating the *unannotated* Jacobi at different assumed cache sizes.
func TestJacobiPlacementRegimes(t *testing.T) {
	p := JacobiParams // N=32, P=2: per-processor block 16x16 = 2 KB
	src := JacobiUnannotated(p)
	cfg := sim.DefaultConfig()
	cfg.Nodes = p.P * p.P
	traceCfg := cfg
	traceCfg.Mode = sim.ModeTrace
	prog, err := parc.Parse(src)
	if err != nil {
		t.Fatal(err)
	}
	traced, err := sim.Run(prog, traceCfg)
	if err != nil {
		t.Fatal(err)
	}

	annotateAt := func(cacheBytes int) string {
		opts := core.DefaultOptions()
		opts.CacheSize = cacheBytes
		res, err := core.Annotate(src, traced.Trace, opts)
		if err != nil {
			t.Fatal(err)
		}
		return res.Source
	}

	// Regime 1: the 2 KB block fits comfortably — the write check-out
	// covers the whole block, hoisted above both relax loops.
	big := annotateAt(64 * 1024)
	if !strings.Contains(big, "check_out_x U[li:ui][lj:uj];") {
		t.Errorf("big cache: whole-block check-out missing:\n%s", big)
	}

	// Regime 2: with a cache that holds single rows (16 elements = 128 B)
	// but not the block, placement descends to row-at-a-time.
	small := annotateAt(512) // budget 256 B: row (128 B) fits, block does not
	if strings.Contains(small, "check_out_x U[li:ui][lj:uj];") {
		t.Errorf("small cache still hoists the whole block:\n%s", small)
	}
	if !strings.Contains(small, "check_out_x U[i][lj:uj];") {
		t.Errorf("small cache: row-level check-out missing:\n%s", small)
	}

	// Both annotated versions execute correctly.
	for _, s := range []string{big, small} {
		if _, err := sim.Run(parc.MustParse(s), cfg); err != nil {
			t.Errorf("annotated Jacobi failed: %v", err)
		}
	}
}
