package bench

import (
	"bytes"
	"os"
	"path/filepath"
	"testing"
)

// TestDir1SWRefactorGuard pins the protocol-interface refactor: Dir1SW
// selected explicitly through the protocol registry (sim.Config.Protocol =
// "dir1sw", the same resolution path DirnNB/DirnB use) must reproduce the
// frozen pre-refactor Figure 6 cycle counts exactly. Any drift here means
// the extraction of the coherence machinery changed Dir1SW's simulated
// behaviour, which the refactor forbids — hence Fatalf, not Errorf.
func TestDir1SWRefactorGuard(t *testing.T) {
	if testing.Short() {
		t.Skip("simulation-heavy")
	}
	rows, err := Figure6Protocol("dir1sw")
	if err != nil {
		t.Fatal(err)
	}
	for i, want := range goldenFig6 {
		r := rows[i]
		if r.Benchmark != want.Benchmark {
			t.Fatalf("row %d is %s, want %s", i, r.Benchmark, want.Benchmark)
		}
		if r.Protocol != "Dir1SW" {
			t.Fatalf("%s: protocol %q, want Dir1SW", r.Benchmark, r.Protocol)
		}
		golden := map[Variant]uint64{
			VariantNone:            want.None,
			VariantHand:            want.Hand,
			VariantCachier:         want.Cachier,
			VariantCachierPrefetch: want.CachierPF,
		}
		for _, v := range Variants() {
			if r.Cycles[v] != golden[v] {
				t.Fatalf("%s/%s: %d cycles under explicit dir1sw, pre-refactor golden %d — the protocol extraction drifted",
					r.Benchmark, v, r.Cycles[v], golden[v])
			}
		}
	}
}

// TestGoldenStatsSnapshotsDirn locks the DirnNB and DirnB stats trees the
// same way TestGoldenStatsSnapshots locks Dir1SW's: every Figure 6
// benchmark runs observed under each hardware protocol at the sweep's
// pointer count, every variant's snapshot must be internally consistent
// (including the transitions-sum-to-DirEvents rule), and the Cachier
// variant's snapshot must match its golden byte for byte (refresh with
// `go test ./internal/bench -run GoldenStatsSnapshotsDirn -update`).
func TestGoldenStatsSnapshotsDirn(t *testing.T) {
	if testing.Short() {
		t.Skip("simulation-heavy")
	}
	protos := []struct {
		suffix string // golden filename component
		spec   string // sim.Config.Protocol
		name   string // display name reported by the run
	}{
		{suffix: "dirnnb", spec: "dirnnb:4", name: "Dir4NB"},
		{suffix: "dirnb", spec: "dirnb:4", name: "Dir4B"},
	}
	for _, p := range protos {
		for _, want := range goldenFig6 {
			p, want := p, want
			t.Run(p.suffix+"/"+want.Benchmark, func(t *testing.T) {
				t.Parallel()
				b, err := ByName(want.Benchmark)
				if err != nil {
					t.Fatal(err)
				}
				row, err := RunBenchmarkObserved(b.WithProtocol(p.spec), false)
				if err != nil {
					t.Fatal(err)
				}
				if row.Protocol != p.name {
					t.Fatalf("protocol %q, want %q", row.Protocol, p.name)
				}
				for _, v := range Variants() {
					snap := row.Snapshots[v]
					if snap == nil {
						t.Fatalf("%s: no snapshot", v)
					}
					if snap.ProtocolName != p.name {
						t.Errorf("%s: snapshot protocol %q, want %q", v, snap.ProtocolName, p.name)
					}
					if snap.Protocol.DirEvents == 0 {
						t.Errorf("%s: snapshot has no directory events", v)
					}
					if snap.Protocol.Traps != 0 {
						t.Errorf("%s: %d traps — %s is all-hardware and never traps", v, snap.Protocol.Traps, p.name)
					}
					if err := snap.CheckConsistency(); err != nil {
						t.Errorf("%s: %v", v, err)
					}
				}
				data, err := row.Snapshots[VariantCachier].MarshalIndentJSON()
				if err != nil {
					t.Fatal(err)
				}
				path := statsGoldenPath(b.Name, p.suffix)
				if *updateStats {
					if err := os.MkdirAll(filepath.Dir(path), 0o755); err != nil {
						t.Fatal(err)
					}
					if err := os.WriteFile(path, data, 0o644); err != nil {
						t.Fatal(err)
					}
					t.Logf("wrote %s (%d bytes)", path, len(data))
					return
				}
				wantData, err := os.ReadFile(path)
				if err != nil {
					t.Fatalf("%v (run with -update to regenerate)", err)
				}
				if !bytes.Equal(data, wantData) {
					t.Errorf("snapshot differs from %s (run with -update to regenerate)\ngot %d bytes, want %d",
						path, len(data), len(wantData))
				}
			})
		}
	}
}
