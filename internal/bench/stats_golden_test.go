package bench

import (
	"bytes"
	"flag"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"cachier/internal/obs"
	"cachier/internal/parc"
	"cachier/internal/sim"
)

var updateStats = flag.Bool("update", false, "rewrite golden stats snapshots")

// statsGoldenPath returns the golden snapshot file for one benchmark under
// one protocol; proto "" is the default Dir1SW machine, anything else gets
// its own ".<proto>" suffixed golden (e.g. ocean.dirnnb.golden.json).
func statsGoldenPath(name, proto string) string {
	base := strings.ToLower(name)
	if proto != "" {
		base += "." + proto
	}
	return filepath.Join("testdata", "stats", base+".golden.json")
}

// TestGoldenStatsSnapshots locks the full structured stats tree, not just
// cycle totals: every Figure 6 benchmark runs through the observed harness
// and the Cachier variant's Snapshot must match testdata/stats byte for
// byte (refresh with `go test ./internal/bench -run GoldenStats -update`).
// Because the observed harness shares goldenFig6's frozen cycle counts, a
// pass here also proves an attached recorder changes no simulated result.
func TestGoldenStatsSnapshots(t *testing.T) {
	if testing.Short() {
		t.Skip("simulation-heavy")
	}
	for _, want := range goldenFig6 {
		want := want
		t.Run(want.Benchmark, func(t *testing.T) {
			t.Parallel()
			b, err := ByName(want.Benchmark)
			if err != nil {
				t.Fatal(err)
			}
			row, err := RunBenchmarkObserved(b, false)
			if err != nil {
				t.Fatal(err)
			}
			golden := map[Variant]uint64{
				VariantNone:            want.None,
				VariantHand:            want.Hand,
				VariantCachier:         want.Cachier,
				VariantCachierPrefetch: want.CachierPF,
			}
			for _, v := range Variants() {
				if row.Cycles[v] != golden[v] {
					t.Errorf("%s: recorder-observed run took %d cycles, golden %d",
						v, row.Cycles[v], golden[v])
				}
				snap := row.Snapshots[v]
				if snap == nil {
					t.Fatalf("%s: no snapshot from observed harness", v)
				}
				if snap.Cycles != row.Cycles[v] {
					t.Errorf("%s: snapshot cycles %d, result cycles %d", v, snap.Cycles, row.Cycles[v])
				}
				if err := snap.CheckConsistency(); err != nil {
					t.Errorf("%s: %v", v, err)
				}
			}

			data, err := row.Snapshots[VariantCachier].MarshalIndentJSON()
			if err != nil {
				t.Fatal(err)
			}
			path := statsGoldenPath(b.Name, "")
			if *updateStats {
				if err := os.MkdirAll(filepath.Dir(path), 0o755); err != nil {
					t.Fatal(err)
				}
				if err := os.WriteFile(path, data, 0o644); err != nil {
					t.Fatal(err)
				}
				t.Logf("wrote %s (%d bytes)", path, len(data))
				return
			}
			wantData, err := os.ReadFile(path)
			if err != nil {
				t.Fatalf("%v (run with -update to regenerate)", err)
			}
			if !bytes.Equal(data, wantData) {
				t.Errorf("snapshot differs from %s (run with -update to regenerate)\ngot %d bytes, want %d",
					path, len(data), len(wantData))
			}
			// The golden file must round-trip through the public decoder.
			snap, err := obs.ReadSnapshot(bytes.NewReader(wantData))
			if err != nil {
				t.Fatal(err)
			}
			if snap.Cycles != want.Cachier || snap.Nodes != b.Nodes {
				t.Errorf("decoded golden: cycles=%d nodes=%d, want cycles=%d nodes=%d",
					snap.Cycles, snap.Nodes, want.Cachier, b.Nodes)
			}
		})
	}
}

// BenchmarkRecorderOverhead measures the observability layer's wall-clock
// cost on a full benchmark simulation: disabled (nil recorder — the
// measured configuration, which must stay within noise of the pre-obs
// simulator), enabled, and enabled with the timeline on.
func BenchmarkRecorderOverhead(b *testing.B) {
	bm, err := ByName("Ocean")
	if err != nil {
		b.Fatal(err)
	}
	prog, err := parc.Parse(bm.Source(bm.Test))
	if err != nil {
		b.Fatal(err)
	}
	base := machineConfig(bm.Nodes)
	runOnce := func(b *testing.B, mk func() *obs.Recorder) {
		b.ReportAllocs()
		var cycles uint64
		for i := 0; i < b.N; i++ {
			cfg := base
			cfg.Recorder = mk()
			res, err := sim.Run(prog, cfg)
			if err != nil {
				b.Fatal(err)
			}
			if cycles == 0 {
				cycles = res.Cycles
			} else if res.Cycles != cycles {
				b.Fatalf("cycles changed across runs: %d vs %d", res.Cycles, cycles)
			}
		}
		b.ReportMetric(float64(cycles), "sim-cycles")
	}
	b.Run("disabled", func(b *testing.B) {
		runOnce(b, func() *obs.Recorder { return nil })
	})
	b.Run("enabled", func(b *testing.B) {
		runOnce(b, func() *obs.Recorder { return obs.New(base.Nodes, base.BlockSize) })
	})
	b.Run("timeline", func(b *testing.B) {
		runOnce(b, func() *obs.Recorder {
			r := obs.New(base.Nodes, base.BlockSize)
			r.EnableTimeline()
			return r
		})
	})
}
