package bench

// Ocean ports the SPLASH Ocean kernel: a red-black Gauss-Seidel relaxation
// with successive over-relaxation on a square grid, rows partitioned across
// processors. Each half-sweep reads the neighbouring processors' boundary
// rows, giving Ocean the highest degree of sharing in the suite (the paper
// quotes 88% shared loads / 68% shared stores), which is why CICO helps it
// most (Section 6: ~20% without prefetch, ~25% with).
func Ocean() *Benchmark {
	return &Benchmark{
		Name:     "Ocean",
		Nodes:    32,
		Source:   oceanSource,
		Hand:     oceanHand,
		Train:    Params{N: 64, Steps: 2, Seed: 5},
		Test:     Params{N: 64, Steps: 2, Seed: 71},
		BigTrain: Params{N: 96, Steps: 4, Seed: 5},
		BigTest:  Params{N: 96, Steps: 4, Seed: 71},
		// Paper scale: a 128x128 grid over more relaxation steps.
		PaperTrain: Params{N: 128, Steps: 6, Seed: 5},
		PaperTest:  Params{N: 128, Steps: 6, Seed: 71},
	}
}

const oceanBody = `
const N = @N@;
const STEPS = @STEPS@;
const SEED = @SEED@;
const OMEGA1K = 1200;

shared float G[N][N] label "G";
shared float err[@NODES@] label "err";

func rows() int {
    return N / nprocs();
}

func main() {
    var lo int = pid() * rows();
    var hi int = lo + rows() - 1;
    var w float = float(OMEGA1K) / 1000.0;
    var s float;
    var d float;
    if pid() == 0 {
        rndseed(SEED);
        for i = 0 to N - 1 {
            for j = 0 to N - 1 {
                G[i][j] = rnd();
            }
        }
    }
    barrier;
    for t = 1 to STEPS {
        // Red half-sweep.
        for i = max(lo, 1) to min(hi, N - 2) {
            for j = 1 to N - 2 {
                if (i + j) % 2 == 0 {
%REDBODY%
                }
            }
        }
        barrier;
        // Black half-sweep.
        for i = max(lo, 1) to min(hi, N - 2) {
            for j = 1 to N - 2 {
                if (i + j) % 2 == 1 {
%BLACKBODY%
                }
            }
        }
        barrier;
        // Local error contribution (one shared write per processor).
        err[pid()] = d;
        barrier;
    }
}
`

const oceanUpdate = `                    s = G[i - 1][j] + G[i + 1][j] + G[i][j - 1] + G[i][j + 1];
                    d = w * (s / 4.0 - G[i][j]);
                    G[i][j] = G[i][j] + d;`

func oceanRender(p Params, nodes int, red, black string) string {
	src := subst(oceanBody, map[string]any{
		"N": p.N, "STEPS": p.Steps, "SEED": p.Seed, "NODES": nodes,
	})
	src = replaceMarker(src, "%REDBODY%", red)
	src = replaceMarker(src, "%BLACKBODY%", black)
	return src
}

func oceanSource(p Params) string {
	return oceanRender(p, Ocean().Nodes, oceanUpdate, oceanUpdate)
}

// oceanHand is the hand-annotated Ocean: row-level annotations that check
// the processor's rows out exclusive each time step and check the shared
// boundary rows back in after the sweeps. Its gap to Cachier (about 7% in
// the paper, Section 6) comes from re-checking-out the whole row block every
// step (unnecessary annotations: the interior stays cached across steps) and
// from never checking in the grid after initialization, so the first sweep
// pays traps against the initializing processor's exclusive copies.
func oceanHand(p Params) string {
	src := oceanRender(p, Ocean().Nodes, oceanUpdate, oceanUpdate)
	src = replaceOnce(src, "        // Red half-sweep.",
		`        if t == 1 {
            check_out_x G[lo:hi][0:N - 1];
        }
        // Red half-sweep.`)
	// Boundary rows are checked in after each half-sweep.
	src = replaceOnce(src, "        // Black half-sweep.",
		`        check_in G[lo][0:N - 1];
        check_in G[hi][0:N - 1];
        // Black half-sweep.`)
	src = replaceOnce(src, "        // Local error contribution",
		`        check_in G[lo][0:N - 1];
        check_in G[hi][0:N - 1];
        // Local error contribution`)
	return src
}
