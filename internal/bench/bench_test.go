package bench

import (
	"testing"

	"cachier/internal/obs"
	"cachier/internal/parc"
	"cachier/internal/sim"
)

func TestAllSourcesParse(t *testing.T) {
	for _, b := range All() {
		for name, gen := range map[string]func(Params) string{"plain": b.Source, "hand": b.Hand} {
			src := gen(b.Train)
			if _, err := parc.Parse(src); err != nil {
				t.Errorf("%s/%s: %v", b.Name, name, err)
			}
		}
	}
	extras := map[string]func(Params) string{
		"jacobi":       JacobiUnannotated,
		"jacobi-whole": JacobiWholeFit,
		"jacobi-row":   JacobiRowFit,
		"restructured": RestructuredMatMul,
	}
	for name, gen := range extras {
		if _, err := parc.Parse(gen(Params{N: 32, P: 2, Steps: 2, Seed: 1})); err != nil {
			t.Errorf("%s: %v", name, err)
		}
	}
}

func TestByName(t *testing.T) {
	b, err := ByName("mp3d")
	if err != nil || b.Name != "Mp3d" {
		t.Errorf("ByName: %v, %v", b, err)
	}
	if _, err := ByName("nonesuch"); err == nil {
		t.Error("unknown benchmark accepted")
	}
}

func TestSwapSeed(t *testing.T) {
	src := "const SEED = 11;\nx"
	got, err := swapSeed(src, 11, 97)
	if err != nil || got != "const SEED = 97;\nx" {
		t.Errorf("swapSeed = %q, %v", got, err)
	}
	if _, err := swapSeed(src, 99, 1); err == nil {
		t.Error("missing seed constant not reported")
	}
}

func TestHandVariantsRunCorrectly(t *testing.T) {
	// Hand-annotated programs must execute without runtime errors: the
	// annotations are semantically inert even when badly placed.
	if testing.Short() {
		t.Skip("simulation-heavy")
	}
	for _, b := range All() {
		cfg := machineConfig(b.Nodes)
		if _, err := runVariant(b.Hand(b.Test), cfg); err != nil {
			t.Errorf("%s hand variant: %v", b.Name, err)
		}
	}
}

// TestFigure6Shape is experiment E1: the qualitative results of the paper's
// Figure 6 must reproduce. Absolute factors differ from the paper (our
// substrate is a from-scratch simulator and the workloads are scaled down;
// see EXPERIMENTS.md) but who wins — and the hand-annotation failure on
// Mp3d — must hold.
func TestFigure6Shape(t *testing.T) {
	if testing.Short() {
		t.Skip("simulation-heavy")
	}
	rows, err := Figure6()
	if err != nil {
		t.Fatal(err)
	}
	byName := map[string]*Row{}
	for _, r := range rows {
		byName[r.Benchmark] = r
	}

	// Cachier beats the unannotated program on every benchmark with real
	// communication.
	for _, name := range []string{"Barnes", "Ocean", "Mp3d", "MatrixMultiply"} {
		r := byName[name]
		if c := r.Normalized(VariantCachier); c >= 0.95 {
			t.Errorf("%s: cachier normalized %0.3f, want < 0.95", name, c)
		}
	}
	// Cachier at least matches hand annotation everywhere (Section 6:
	// "Cachier-annotated versions consistently outperformed the
	// hand-annotated versions").
	for _, r := range rows {
		if c, h := r.Normalized(VariantCachier), r.Normalized(VariantHand); c > h*1.02 {
			t.Errorf("%s: cachier %0.3f worse than hand %0.3f", r.Benchmark, c, h)
		}
	}
	// The paper's standout: hand-annotated Mp3d is WORSE than no
	// annotations at all (premature and missing check-ins).
	if h := byName["Mp3d"].Normalized(VariantHand); h <= 1.0 {
		t.Errorf("Mp3d hand normalized %0.3f, want > 1.0", h)
	}
	// Tomcatv is the least affected benchmark: it computes rather than
	// communicates, so no variant moves it much relative to the others.
	tc := byName["Tomcatv"].Normalized(VariantCachier)
	for _, name := range []string{"Barnes", "Ocean", "MatrixMultiply"} {
		if byName[name].Normalized(VariantCachier) >= tc {
			t.Errorf("Tomcatv's improvement (%.3f) should be the smallest; %s got %.3f",
				tc, name, byName[name].Normalized(VariantCachier))
		}
	}
	// Annotated runs cut write faults (the check-out-exclusive effect) and
	// traps (the check-in effect) on the high-sharing benchmarks.
	for _, name := range []string{"Ocean", "Mp3d", "MatrixMultiply"} {
		r := byName[name]
		if r.Stats[VariantCachier].WriteFaults >= r.Stats[VariantNone].WriteFaults {
			t.Errorf("%s: write faults not reduced (%d -> %d)", name,
				r.Stats[VariantNone].WriteFaults, r.Stats[VariantCachier].WriteFaults)
		}
		if r.Stats[VariantCachier].Traps >= r.Stats[VariantNone].Traps {
			t.Errorf("%s: traps not reduced (%d -> %d)", name,
				r.Stats[VariantNone].Traps, r.Stats[VariantCachier].Traps)
		}
	}
	// Cachier flags the Matrix Multiply data race (Section 4.4).
	foundRace := false
	for _, rep := range byName["MatrixMultiply"].Reports {
		if rep.Kind == "data race" && rep.Var == "C" {
			foundRace = true
		}
	}
	if !foundRace {
		t.Error("MatrixMultiply data race on C not reported")
	}
}

// TestSharingDegreeOrdering is experiment E6: Section 6 explains the win
// ordering by sharing degree — Ocean and Mp3d share the most, Barnes the
// least among the gainers. We check the ordering of measured degrees.
func TestSharingDegreeOrdering(t *testing.T) {
	if testing.Short() {
		t.Skip("simulation-heavy")
	}
	degree := func(b *Benchmark) (float64, float64) {
		res, err := runVariant(b.Source(b.Test), machineConfig(b.Nodes))
		if err != nil {
			t.Fatal(err)
		}
		return res.SharingDegree()
	}
	oceanL, oceanS := degree(Ocean())
	mp3dL, mp3dS := degree(Mp3d())
	barnesL, barnesS := degree(Barnes())
	if oceanL < barnesL || mp3dL < barnesL {
		t.Errorf("load sharing ordering violated: ocean %.2f mp3d %.2f barnes %.2f",
			oceanL, mp3dL, barnesL)
	}
	if oceanS < barnesS || mp3dS < barnesS {
		t.Errorf("store sharing ordering violated: ocean %.2f mp3d %.2f barnes %.2f",
			oceanS, mp3dS, barnesS)
	}
	// Barnes stores are barely shared (paper quotes 1.3%): ours must stay
	// far below the high-sharing pair.
	if barnesS > oceanS/2 {
		t.Errorf("barnes store sharing %.2f not clearly below ocean %.2f", barnesS, oceanS)
	}
}

func runDirective(t *testing.T, src string, nodes int) *sim.Result {
	t.Helper()
	prog, err := parc.Parse(src)
	if err != nil {
		t.Fatal(err)
	}
	cfg := machineConfig(nodes)
	cfg.Recorder = obs.New(cfg.Nodes, cfg.BlockSize)
	res, err := sim.Run(prog, cfg)
	if err != nil {
		t.Fatal(err)
	}
	return res
}

func TestFormatRowsAndSorting(t *testing.T) {
	rows := []*Row{
		{Benchmark: "A", Nodes: 4, SharingLoads: 0.2,
			Cycles: map[Variant]uint64{VariantNone: 100, VariantHand: 90, VariantCachier: 80, VariantCachierPrefetch: 70}},
		{Benchmark: "B", Nodes: 8, SharingLoads: 0.9,
			Cycles: map[Variant]uint64{VariantNone: 200, VariantHand: 210, VariantCachier: 150, VariantCachierPrefetch: 140}},
	}
	out := FormatRows(rows)
	if !containsAll(out, "A", "B", "0.800", "1.050") {
		t.Errorf("table missing values:\n%s", out)
	}
	SortRowsBySharing(rows)
	if rows[0].Benchmark != "B" {
		t.Errorf("sorting by sharing degree failed: %s first", rows[0].Benchmark)
	}
	// Zero baseline normalizes to zero, not a division panic.
	empty := &Row{Benchmark: "Z", Cycles: map[Variant]uint64{}}
	if empty.Normalized(VariantCachier) != 0 {
		t.Error("zero baseline not handled")
	}
}

func containsAll(s string, subs ...string) bool {
	for _, sub := range subs {
		if !contains(s, sub) {
			return false
		}
	}
	return true
}

func contains(s, sub string) bool {
	for i := 0; i+len(sub) <= len(s); i++ {
		if s[i:i+len(sub)] == sub {
			return true
		}
	}
	return false
}
