package bench

import (
	"testing"

	"cachier/internal/vet"
)

// vetBench runs the static race detector over a benchmark's unannotated
// source at its training input.
func vetBench(t *testing.T, b *Benchmark) *vet.Report {
	t.Helper()
	src := b.Source(b.Train)
	rep, err := vet.AnalyzeSource(b.Name+".parc", src, vet.Options{Nprocs: b.Nodes})
	if err != nil {
		t.Fatalf("%s: %v", b.Name, err)
	}
	return rep
}

// TestVetClassifiesBenchmarks checks the headline property from the issue:
// parcvet flags the two genuinely racy ports (MatMul, Mp3d) with usable
// source locations and passes the race-free ones with zero findings.
func TestVetClassifiesBenchmarks(t *testing.T) {
	for _, b := range All() {
		b := b
		t.Run(b.Name, func(t *testing.T) {
			rep := vetBench(t, b)
			races := rep.Races()
			if len(rep.Findings) > 0 {
				t.Logf("%s findings:\n%s", b.Name, rep)
			}
			if b.Racy {
				if len(races) == 0 {
					t.Fatalf("%s is marked racy but vet found no races:\n%s", b.Name, rep)
				}
				for _, f := range races {
					if !f.Pos.IsValid() {
						t.Errorf("%s: race finding lacks a source location: %s", b.Name, f)
					}
				}
				return
			}
			if len(rep.Findings) != 0 {
				t.Fatalf("%s is race-free but vet reported findings:\n%s", b.Name, rep)
			}
		})
	}
}

// TestVetJacobiClean covers the Section 2.1 Jacobi worked example in all
// three variants: the unannotated program must produce zero findings, and
// the two annotation regimes must pass the protocol lint with no errors.
func TestVetJacobiClean(t *testing.T) {
	p := JacobiParams
	nodes := p.P * p.P
	variants := map[string]string{
		"unannotated": JacobiUnannotated(p),
		"wholefit":    JacobiWholeFit(p),
		"rowfit":      JacobiRowFit(p),
	}
	for name, src := range variants {
		rep, err := vet.AnalyzeSource("jacobi_"+name+".parc", src, vet.Options{Nprocs: nodes})
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		if name == "unannotated" {
			if len(rep.Findings) != 0 {
				t.Errorf("unannotated Jacobi should vet clean:\n%s", rep)
			}
			continue
		}
		if len(rep.Races()) != 0 || len(rep.LintErrors()) != 0 {
			t.Errorf("%s Jacobi should have no races or lint errors:\n%s", name, rep)
		}
	}
}

// TestVetHandAnnotations lints the paper's hand-annotated variants. The
// Mp3d hand version is documented (Section 6) to check blocks in too
// early — the lint must catch that as a use-after-check-in error.
func TestVetHandAnnotations(t *testing.T) {
	mp3d, err := ByName("Mp3d")
	if err != nil {
		t.Fatal(err)
	}
	src := mp3d.Hand(mp3d.Train)
	rep, err := vet.AnalyzeSource("mp3d_hand.parc", src, vet.Options{Nprocs: mp3d.Nodes})
	if err != nil {
		t.Fatal(err)
	}
	if len(rep.LintErrors()) == 0 {
		t.Fatalf("mp3d hand annotations check blocks in too early; lint should flag it:\n%s", rep)
	}
}
