package bench

// RestructuredMatMul is the Section 5 rewrite of the unconventional matrix
// multiply, produced by a programmer reading Cachier's annotations: each
// processor copies the C elements it will update into a private array,
// accumulates locally, and copies back under per-block locks. The original
// program performs N^3 (racy) check-outs of C; the restructured one performs
// N^2*P/2, of which only the lock-protected copy-back half (N^2*P/4) still
// races on cache blocks — the closed forms in internal/cico, verified by
// experiment E4.
func RestructuredMatMul(p Params) string {
	return subst(restructuredBody, map[string]any{
		"N": p.N, "P": p.P, "SEED": p.Seed, "BS": p.N / p.P,
	})
}

const restructuredBody = `
const N = @N@;
const P = @P@;
const BS = N / P;
const SEED = @SEED@;
const NLOCKS = 64;

shared float A[N][N] label "A";
shared float B[N][N] label "B";
shared float C[N][N] label "C";

func main() {
    var lkp int = (pid() / P) * BS;
    var ukp int = lkp + BS - 1;
    var ljp int = (pid() % P) * BS;
    var ujp int = ljp + BS - 1;
    var t float;
    var cp float[@N@][@BS@];
    if pid() == 0 {
        rndseed(SEED);
        for i = 0 to N - 1 {
            for j = 0 to N - 1 {
                A[i][j] = rnd();
                B[i][j] = rnd();
                C[i][j] = 0.0;
            }
        }
        check_in A[0:N - 1][0:N - 1];
        check_in B[0:N - 1][0:N - 1];
        check_in C[0:N - 1][0:N - 1];
    }
    barrier;
    // Copy-in: fetch this processor's slice of C block by block.
    for i = 0 to N - 1 {
        for j = ljp to ujp step 4 {
            check_out_s C[i][j];
            for j2 = 0 to 3 {
                cp[i][j - ljp + j2] = C[i][j + j2];
            }
            check_in C[i][j];
        }
    }
    // Local accumulation: no shared writes at all.
    for i = 0 to N - 1 {
        for k = lkp to ukp {
            t = A[i][k];
            for j = ljp to ujp {
                cp[i][j - ljp] = cp[i][j - ljp] + t * B[k][j];
            }
        }
    }
    // Copy-back under per-block locks: the only remaining block races.
    for i = 0 to N - 1 {
        for j = ljp to ujp step 4 {
            lock((i * (N / 4) + j / 4) % NLOCKS);
            check_out_x C[i][j];
            for j2 = 0 to 3 {
                C[i][j + j2] = C[i][j + j2] + cp[i][j - ljp + j2];
            }
            check_in C[i][j];
            unlock((i * (N / 4) + j / 4) % NLOCKS);
        }
    }
    barrier;
}
`
