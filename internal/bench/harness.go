package bench

import (
	"fmt"
	"runtime"
	"sort"
	"strings"
	"sync"
	"time"

	"cachier/internal/core"
	"cachier/internal/dir1sw"
	"cachier/internal/obs"
	"cachier/internal/parc"
	"cachier/internal/sim"
)

// workTokens bounds the package's concurrent compute (simulations and
// annotation passes) to the machine's parallelism. Tokens are held only
// while computing, never while waiting on other goroutines, so nested
// fan-out (Figure6 → RunBenchmark → variants) cannot deadlock.
var workTokens = make(chan struct{}, runtime.NumCPU())

func acquireWork() { workTokens <- struct{}{} }
func releaseWork() { <-workTokens }

// Variant names one bar of Figure 6.
type Variant string

// Figure 6 variants. The paper plots unannotated, hand-annotated, and
// Cachier-annotated execution times, and discusses with/without-prefetch
// Cachier numbers in the text.
const (
	VariantNone            Variant = "none"
	VariantHand            Variant = "hand"
	VariantCachier         Variant = "cachier"
	VariantCachierPrefetch Variant = "cachier+prefetch"
)

// Variants lists the comparison variants in presentation order.
func Variants() []Variant {
	return []Variant{VariantNone, VariantHand, VariantCachier, VariantCachierPrefetch}
}

// Row is one benchmark's Figure 6 result.
type Row struct {
	Benchmark string
	Nodes     int
	// Protocol is the coherence protocol's display name ("Dir1SW",
	// "Dir4NB", ...); every variant of a row runs under the same protocol.
	Protocol string
	Cycles   map[Variant]uint64
	Stats    map[Variant]dir1sw.Stats

	// Walls is each variant's simulation wall-clock on the host (just the
	// measured sim.Run, not tracing or annotation); Engines is the engine
	// that produced it ("sequential", "parallel", or the conflict-fallback
	// label). Both are filled on every run.
	Walls   map[Variant]time.Duration
	Engines map[Variant]string

	// Snapshots and Recorders hold each variant's structured stats tree and
	// the recorder that produced it (for timeline export); both are nil
	// unless the row came from RunBenchmarkObserved.
	Snapshots map[Variant]*obs.Snapshot
	Recorders map[Variant]*obs.Recorder

	// SharingLoads and SharingStores are the unannotated run's sharing
	// degrees (Section 6's discussion of why Ocean and Mp3d gain most).
	SharingLoads  float64
	SharingStores float64

	// AnnotatedSource is the Cachier (no-prefetch) annotated program.
	AnnotatedSource string
	// Reports are the data races / false sharing Cachier flagged.
	Reports []core.ConflictReport
}

// Normalized returns the variant's execution time relative to the
// unannotated run (Figure 6's y-axis).
func (r *Row) Normalized(v Variant) float64 {
	base := r.Cycles[VariantNone]
	if base == 0 {
		return 0
	}
	return float64(r.Cycles[v]) / float64(base)
}

// swapSeed rewrites the generated source's SEED constant so a program
// annotated from the training input can be measured on the test input
// (the paper uses different data sets for tracing and measurement,
// Section 6).
func swapSeed(src string, train, test int64) (string, error) {
	from := fmt.Sprintf("const SEED = %d;", train)
	to := fmt.Sprintf("const SEED = %d;", test)
	if !strings.Contains(src, from) {
		return "", fmt.Errorf("bench: training seed constant %q not found", from)
	}
	return strings.Replace(src, from, to, 1), nil
}

// machineConfig returns the simulated machine for a benchmark: the paper's
// 256 KB 4-way 32 B-block caches on the benchmark's node count.
func machineConfig(nodes int) sim.Config {
	cfg := sim.DefaultConfig()
	cfg.Nodes = nodes
	// The per-barrier coherence self-check is an assertion, not a model
	// feature: it never alters results (the conformance and fuzz suites run
	// with it on and cross-check this harness's protocol behaviour), and the
	// Figure 6 harness doubles as the wall-clock benchmark, so it runs with
	// assertions off like any measured build.
	cfg.SelfCheck = false
	return cfg
}

// runVariant parses and simulates one program variant in directive mode.
func runVariant(src string, cfg sim.Config) (*sim.Result, error) {
	prog, err := parc.Parse(src)
	if err != nil {
		return nil, err
	}
	return sim.Run(prog, cfg)
}

// RunBenchmark produces one Figure 6 row: trace the unannotated program on
// the training input, have Cachier annotate it (with and without prefetch),
// and measure all variants on the test input.
//
// Independent stages run concurrently under the package worker pool: the two
// annotation passes (which only read the shared trace), then the four
// variant simulations. Each sim.Run builds its own machine, so results are
// identical to the sequential schedule.
func RunBenchmark(b *Benchmark) (*Row, error) {
	return runBenchmark(b, false, false)
}

// RunBenchmarkObserved is RunBenchmark with an obs.Recorder attached to
// every measured variant, filling Row.Snapshots (and Row.Recorders, with
// per-node timelines when timeline is set). Simulated results are
// bit-identical to RunBenchmark's — the recorder only observes — so the
// golden-stats tests use this entry point and still check Figure 6 cycles.
func RunBenchmarkObserved(b *Benchmark, timeline bool) (*Row, error) {
	return runBenchmark(b, true, timeline)
}

func runBenchmark(b *Benchmark, observe, timeline bool) (*Row, error) {
	cfg := machineConfig(b.Nodes)
	cfg.Parallel = b.Parallel
	cfg.Lanes = b.Lanes
	cfg.Protocol = b.Protocol

	// 1. Trace the unannotated program on the training input; both
	// annotation passes need it.
	trainSrc := b.Source(b.Train)
	traceCfg := cfg
	traceCfg.Mode = sim.ModeTrace
	trainProg, err := parc.Parse(trainSrc)
	if err != nil {
		return nil, fmt.Errorf("%s: parsing: %w", b.Name, err)
	}
	acquireWork()
	traceRes, err := sim.Run(trainProg, traceCfg)
	releaseWork()
	if err != nil {
		return nil, fmt.Errorf("%s: tracing: %w", b.Name, err)
	}

	// 2. Cachier annotates (Performance CICO, as in the evaluation), with
	// and without prefetch, concurrently.
	var (
		annotated, annotatedPF *core.Result
		annErr, annPFErr       error
		wg                     sync.WaitGroup
	)
	wg.Add(2)
	go func() {
		defer wg.Done()
		acquireWork()
		defer releaseWork()
		opts := core.DefaultOptions()
		opts.CacheSize = cfg.CacheSize
		annotated, annErr = core.Annotate(trainSrc, traceRes.Trace, opts)
	}()
	go func() {
		defer wg.Done()
		acquireWork()
		defer releaseWork()
		opts := core.DefaultOptions()
		opts.CacheSize = cfg.CacheSize
		opts.Prefetch = true
		annotatedPF, annPFErr = core.Annotate(trainSrc, traceRes.Trace, opts)
	}()
	wg.Wait()
	if annErr != nil {
		return nil, fmt.Errorf("%s: annotating: %w", b.Name, annErr)
	}
	if annPFErr != nil {
		return nil, fmt.Errorf("%s: annotating with prefetch: %w", b.Name, annPFErr)
	}

	// 3. Measure every variant on the test input.
	cachierSrc, err := swapSeed(annotated.Source, b.Train.Seed, b.Test.Seed)
	if err != nil {
		return nil, fmt.Errorf("%s: %w", b.Name, err)
	}
	cachierPFSrc, err := swapSeed(annotatedPF.Source, b.Train.Seed, b.Test.Seed)
	if err != nil {
		return nil, fmt.Errorf("%s: %w", b.Name, err)
	}
	sources := map[Variant]string{
		VariantNone:            b.Source(b.Test),
		VariantHand:            b.Hand(b.Test),
		VariantCachier:         cachierSrc,
		VariantCachierPrefetch: cachierPFSrc,
	}
	row := &Row{
		Benchmark:       b.Name,
		Nodes:           b.Nodes,
		Cycles:          make(map[Variant]uint64),
		Stats:           make(map[Variant]dir1sw.Stats),
		Walls:           make(map[Variant]time.Duration),
		Engines:         make(map[Variant]string),
		AnnotatedSource: annotated.Source,
		Reports:         annotated.Reports,
	}
	if observe {
		row.Snapshots = make(map[Variant]*obs.Snapshot)
		row.Recorders = make(map[Variant]*obs.Recorder)
	}
	variants := Variants()
	results := make([]*sim.Result, len(variants))
	recs := make([]*obs.Recorder, len(variants))
	errs := make([]error, len(variants))
	walls := make([]time.Duration, len(variants))
	for i, v := range variants {
		wg.Add(1)
		go func(i int, v Variant) {
			defer wg.Done()
			acquireWork()
			defer releaseWork()
			vcfg := cfg
			if observe {
				recs[i] = obs.New(cfg.Nodes, cfg.BlockSize)
				if timeline {
					recs[i].EnableTimeline()
				}
				vcfg.Recorder = recs[i]
			}
			start := time.Now()
			results[i], errs[i] = runVariant(sources[v], vcfg)
			walls[i] = time.Since(start)
		}(i, v)
	}
	wg.Wait()
	for i, v := range variants {
		if errs[i] != nil {
			return nil, fmt.Errorf("%s/%s: %w", b.Name, v, errs[i])
		}
		row.Protocol = results[i].Protocol
		row.Cycles[v] = results[i].Cycles
		row.Stats[v] = results[i].Stats
		row.Walls[v] = walls[i]
		row.Engines[v] = results[i].Engine
		if observe {
			row.Snapshots[v] = results[i].Snapshot
			row.Recorders[v] = recs[i]
		}
		if v == VariantNone {
			row.SharingLoads, row.SharingStores = results[i].SharingDegree()
		}
	}
	return row, nil
}

// Figure6 runs the whole suite. Benchmarks run concurrently under the
// package worker pool; rows keep the All() order and the first error in
// that order wins, so output is independent of goroutine scheduling.
func Figure6() ([]*Row, error) {
	return Figure6Protocol("")
}

// Figure6Protocol runs the whole suite under one coherence protocol spec
// ("" is Dir1SW); the protocol sweep (cmd/fig6 -protosweep) calls this once
// per spec.
func Figure6Protocol(spec string) ([]*Row, error) {
	bs := All()
	rows := make([]*Row, len(bs))
	errs := make([]error, len(bs))
	var wg sync.WaitGroup
	for i, b := range bs {
		wg.Add(1)
		go func(i int, b *Benchmark) {
			defer wg.Done()
			rows[i], errs[i] = RunBenchmark(b.WithProtocol(spec))
		}(i, b)
	}
	wg.Wait()
	for _, err := range errs {
		if err != nil {
			return nil, err
		}
	}
	return rows, nil
}

// SweepSpecs lists the protocol specs the cross-protocol sweep covers: the
// paper's Dir1SW plus the Agarwal-taxonomy hardware points DirnNB and DirnB
// at the default pointer count.
func SweepSpecs() []string {
	return []string{"dir1sw", "dirnnb:4", "dirnb:4"}
}

// FormatRows renders rows as the Figure 6 table: normalized execution time
// per variant (unannotated = 1.00).
func FormatRows(rows []*Row) string {
	var sb strings.Builder
	fmt.Fprintf(&sb, "%-16s %6s | %8s %8s %8s %8s | %7s %7s\n",
		"benchmark", "nodes", "none", "hand", "cachier", "cach+pf", "shload", "shstore")
	for _, r := range rows {
		fmt.Fprintf(&sb, "%-16s %6d | %8.3f %8.3f %8.3f %8.3f | %6.1f%% %6.1f%%\n",
			r.Benchmark, r.Nodes,
			r.Normalized(VariantNone), r.Normalized(VariantHand),
			r.Normalized(VariantCachier), r.Normalized(VariantCachierPrefetch),
			100*r.SharingLoads, 100*r.SharingStores)
	}
	return sb.String()
}

// SortRowsBySharing orders rows by descending load-sharing degree, the
// ordering Section 6 uses to explain where CICO helps most.
func SortRowsBySharing(rows []*Row) {
	sort.Slice(rows, func(i, j int) bool {
		return rows[i].SharingLoads > rows[j].SharingLoads
	})
}
