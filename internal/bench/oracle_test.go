package bench

import (
	"testing"

	"cachier/internal/oracle"
	"cachier/internal/parc"
	"cachier/internal/sim"
	"cachier/internal/testutil"
)

// runBoth simulates one program and runs the sequential oracle on it with a
// matching memory layout, failing the test on any execution error.
func runBoth(t *testing.T, src string, nodes int) (*sim.Result, *oracle.Result) {
	t.Helper()
	prog, err := parc.Parse(src)
	if err != nil {
		t.Fatal(err)
	}
	cfg := sim.DefaultConfig()
	cfg.Nodes = nodes
	got, err := sim.Run(prog, cfg)
	if err != nil {
		t.Fatalf("sim: %v", err)
	}
	want, err := oracle.Run(prog, oracle.Config{Nprocs: nodes, BlockSize: cfg.BlockSize})
	if err != nil {
		t.Fatalf("oracle: %v", err)
	}
	return got, want
}

// TestSuiteAgainstOracle cross-checks the benchmark suite against the
// sequential oracle, tying the conformance machinery to the real Figure 6
// programs rather than only to generated ones.
//
// Barnes, Ocean, Tomcatv, and Jacobi are element-race-free, so their final
// shared memory must be bit-identical to the oracle's. MatrixMultiply and
// Mp3d carry the paper's documented data races (column groups accumulating
// into the same C elements; indirect cell updates), so for them only the
// barrier structure is pinned — but the oracle must still run them cleanly,
// which exercises its abort-free scheduling on the suite's largest programs.
func TestSuiteAgainstOracle(t *testing.T) {
	raceFree := map[string]bool{"Barnes": true, "Ocean": true, "Tomcatv": true}
	for _, b := range All() {
		b := b
		t.Run(b.Name, func(t *testing.T) {
			t.Parallel()
			got, want := runBoth(t, b.Source(b.Test), b.Nodes)
			if got.Barriers != want.Barriers {
				t.Errorf("%d barriers, oracle saw %d", got.Barriers, want.Barriers)
			}
			err := testutil.DiffSharedMemory(got.Layout, got.Store, want.Store)
			if raceFree[b.Name] && err != nil {
				t.Errorf("memory diverges from oracle: %v", err)
			}
			if !raceFree[b.Name] && err == nil {
				t.Errorf("expected the documented data races to show up against the sequential oracle, but memory matches exactly")
			}
		})
	}
	t.Run("Jacobi", func(t *testing.T) {
		t.Parallel()
		p := JacobiParams
		got, want := runBoth(t, JacobiUnannotated(p), p.P*p.P)
		if got.Barriers != want.Barriers {
			t.Errorf("%d barriers, oracle saw %d", got.Barriers, want.Barriers)
		}
		if err := testutil.DiffSharedMemory(got.Layout, got.Store, want.Store); err != nil {
			t.Errorf("memory diverges from oracle: %v", err)
		}
	})
}
