package bench

// Jacobi is the Section 2.1 worked example: an N x N relaxation on a torus,
// block-partitioned over P^2 processors, where each processor first copies
// its four boundary strips into private arrays and then relaxes its own
// block in place. The paper derives closed-form check-out counts for two
// annotation regimes; JacobiWholeFit and JacobiRowFit are those two
// annotated programs, and the E2 experiment verifies the simulator's
// measured per-variable check-out counts against the formulas in
// internal/cico.
//
// Layout note: the paper assumes column-major storage, making columns
// contiguous; ParC arrays are row-major, so the roles of rows and columns
// are transposed throughout (the formulas are symmetric under transpose).
// The second regime is therefore "individual rows fit in the cache".

// JacobiParams is the default instance: 4 processors (P=2), a 32x32 grid,
// 3 time steps, b=4 elements per block.
var JacobiParams = Params{N: 32, P: 2, Steps: 3, Seed: 7}

const jacobiBody = `
const N = @N@;
const P = @P@;
const B = N / P;
const T = @T@;
const SEED = @SEED@;

shared float U[N][N] label "U";

func main() {
    var pr int = pid() / P;
    var pc int = pid() % P;
    var li int = pr * B;
    var ui int = li + B - 1;
    var lj int = pc * B;
    var uj int = lj + B - 1;
    var rowup int = (li - 1 + N) % N;
    var rowdn int = (ui + 1) % N;
    var coll int = (lj - 1 + N) % N;
    var colr int = (uj + 1) % N;
    var tn float[B];
    var bn float[B];
    var lc float[B];
    var rc float[B];
    var up float;
    var dn float;
    var lf float;
    var rt float;
    if pid() == 0 {
        rndseed(SEED);
        for i = 0 to N - 1 {
            for j = 0 to N - 1 {
                U[i][j] = rnd();
            }
        }
    }
    barrier;
%PRE%
    for t = 1 to T {
        // Copy boundary rows & columns to local arrays (Section 2.1).
%COBOUND%
        for j = lj to uj {
            tn[j - lj] = U[rowup][j];
            bn[j - lj] = U[rowdn][j];
        }
        for i = li to ui {
            lc[i - li] = U[i][coll];
            rc[i - li] = U[i][colr];
        }
%CIBOUND%
        // All boundary copies are taken before anyone writes this step.
        barrier;
        // Relax the owned block in place.
        for i = li to ui {
%COROW%
            for j = lj to uj {
                if i == li {
                    up = tn[j - lj];
                } else {
                    up = U[i - 1][j];
                }
                if i == ui {
                    dn = bn[j - lj];
                } else {
                    dn = U[i + 1][j];
                }
                if j == lj {
                    lf = lc[i - li];
                } else {
                    lf = U[i][j - 1];
                }
                if j == uj {
                    rt = rc[i - li];
                } else {
                    rt = U[i][j + 1];
                }
                U[i][j] = 0.25 * (up + dn + lf + rt);
            }
%CIROW%
        }
        barrier;
    }
%POST%
}
`

const jacobiBoundCo = `        check_out_s U[rowup][lj:uj];
        check_out_s U[rowdn][lj:uj];
        check_out_s U[li:ui][coll];
        check_out_s U[li:ui][colr];`

const jacobiBoundCi = `        check_in U[rowup][lj:uj];
        check_in U[rowdn][lj:uj];
        check_in U[li:ui][coll];
        check_in U[li:ui][colr];`

func jacobiRender(p Params, pre, coBound, ciBound, coRow, ciRow, post string) string {
	src := subst(jacobiBody, map[string]any{
		"N": p.N, "P": p.P, "T": p.Steps, "SEED": p.Seed,
	})
	src = replaceMarker(src, "%PRE%", pre)
	src = replaceMarker(src, "%COBOUND%", coBound)
	src = replaceMarker(src, "%CIBOUND%", ciBound)
	src = replaceMarker(src, "%COROW%", coRow)
	src = replaceMarker(src, "%CIROW%", ciRow)
	return replaceMarker(src, "%POST%", post)
}

// JacobiUnannotated is the plain program.
func JacobiUnannotated(p Params) string {
	return jacobiRender(p, "", "", "", "", "", "")
}

// JacobiWholeFit is the Section 2.1 first regime: the processor's block
// fits in its cache, so the block is checked out exclusive once before the
// time loop and checked in after it; only boundary strips are re-checked-out
// each step. Total check-outs of U across P^2 processors and T steps:
// 2NPT(1+b)/b + N^2/b.
func JacobiWholeFit(p Params) string {
	return jacobiRender(p,
		"    check_out_x U[li:ui][lj:uj];",
		jacobiBoundCo, jacobiBoundCi,
		"", "",
		"    check_in U[li:ui][lj:uj];",
	)
}

// JacobiRowFit is the second regime: the block does not fit but single rows
// do, so every row is checked out exclusive each time step around its inner
// loop. Total check-outs: (2NP(1+b)/b + N^2/b) * T.
func JacobiRowFit(p Params) string {
	return jacobiRender(p,
		"",
		jacobiBoundCo, jacobiBoundCi,
		"            check_out_x U[i][lj:uj];",
		"            check_in U[i][lj:uj];",
		"",
	)
}
