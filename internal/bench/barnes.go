package bench

// Barnes ports the SPLASH Barnes-Hut N-body benchmark: a gravitational
// simulation whose core data structure is a space-partitioning tree
// traversed with data-dependent "pointer" chasing (array indices here, as a
// Fortran-style port would use). One processor rebuilds the quadtree each
// step; all processors then walk it to compute forces on their own bodies
// and update them. Sharing is low compared to Ocean/Mp3d (the paper quotes
// 25.5% shared loads, 1.3% shared stores), so the CICO win is smaller
// (~11%), and the irregular structure is what defeats both static-analysis
// tools and hand annotators (Section 6).
func Barnes() *Benchmark {
	return &Benchmark{
		Name:     "Barnes",
		Nodes:    32,
		Source:   barnesSource,
		Hand:     barnesHand,
		Train:    Params{N: 256, Steps: 2, Seed: 17},
		Test:     Params{N: 256, Steps: 2, Seed: 131},
		BigTrain: Params{N: 1024, Steps: 3, Seed: 17},
		BigTest:  Params{N: 1024, Steps: 3, Seed: 131},
		// Paper scale: 1024 bodies; more steps than -big for a longer run.
		PaperTrain: Params{N: 1024, Steps: 4, Seed: 17},
		PaperTest:  Params{N: 1024, Steps: 4, Seed: 131},
	}
}

const barnesBody = `
const NB = @NB@;
const MAXN = NB * 4;
const STEPS = @STEPS@;
const SEED = @SEED@;
const STK = 512;

// Bodies: position, velocity, mass, partitioned across processors.
shared float bx[NB] label "bx";
shared float by[NB] label "by";
shared float bvx[NB] label "bvx";
shared float bvy[NB] label "bvy";
shared float bm[NB] label "bm";

// Quadtree nodes: geometric cell (center + half size), aggregated mass and
// mass-weighted position sums (normalized to centers after the build), the
// four child links (-1 = empty), and the body held by a leaf (-1 = internal).
shared float cx[MAXN] label "cx";
shared float cy[MAXN] label "cy";
shared float chs[MAXN] label "chs";
shared float nm[MAXN] label "nm";
shared float nx[MAXN] label "nx";
shared float ny[MAXN] label "ny";
shared int child[MAXN][4] label "child";
shared int leafbody[MAXN] label "leafbody";
shared int nnodes;

// alloc creates a fresh node for the quadrant q of parent p (or the root
// when p < 0) and returns its index.
func alloc(p int, q int) int {
    var idx int = nnodes;
    nnodes = idx + 1;
    if p < 0 {
        cx[idx] = 0.5;
        cy[idx] = 0.5;
        chs[idx] = 0.5;
    } else {
        var h float = chs[p] / 2.0;
        chs[idx] = h;
        if q % 2 == 1 {
            cx[idx] = cx[p] + h;
        } else {
            cx[idx] = cx[p] - h;
        }
        if q / 2 == 1 {
            cy[idx] = cy[p] + h;
        } else {
            cy[idx] = cy[p] - h;
        }
    }
    nm[idx] = 0.0;
    nx[idx] = 0.0;
    ny[idx] = 0.0;
    leafbody[idx] = -1;
    for q2 = 0 to 3 {
        child[idx][q2] = -1;
    }
    return idx;
}

// quad returns which quadrant of node n the point (x, y) falls in.
func quad(n int, x float, y float) int {
    var q int = 0;
    if x > cx[n] {
        q = q + 1;
    }
    if y > cy[n] {
        q = q + 2;
    }
    return q;
}

// addmass accumulates body b's mass into node n's aggregates.
func addmass(n int, b int) {
    nm[n] = nm[n] + bm[b];
    nx[n] = nx[n] + bx[b] * bm[b];
    ny[n] = ny[n] + by[b] * bm[b];
}

// insert places body b into the tree, accumulating mass at every node it
// passes through and splitting leaves as needed.
func insert(b int) {
    var n int = 0;
    var done int = 0;
    while done == 0 {
        addmass(n, b);
        var q int = quad(n, bx[b], by[b]);
        var ch int = child[n][q];
        if ch == -1 {
            var leaf int = alloc(n, q);
            leafbody[leaf] = b;
            addmass(leaf, b);
            child[n][q] = leaf;
            done = 1;
        } else if leafbody[ch] >= 0 {
            if chs[ch] < 0.0001 {
                // Cell too small to split further: absorb into the leaf.
                addmass(ch, b);
                done = 1;
            } else {
                // Split the leaf: push its body one level down, then keep
                // descending with b.
                var ob int = leafbody[ch];
                leafbody[ch] = -1;
                var oq int = quad(ch, bx[ob], by[ob]);
                var nl int = alloc(ch, oq);
                leafbody[nl] = ob;
                addmass(nl, ob);
                child[ch][oq] = nl;
                n = ch;
            }
        } else {
            n = ch;
        }
    }
}

// buildtree rebuilds the quadtree from scratch and normalizes the
// aggregates into centers of mass.
func buildtree() {
    nnodes = 0;
    var root int = alloc(-1, 0);
    for b = 0 to NB - 1 {
        insert(b);
    }
    for n = 0 to nnodes - 1 {
        if nm[n] > 0.0 {
            nx[n] = nx[n] / nm[n];
            ny[n] = ny[n] / nm[n];
        }
    }
}

func main() {
    var per int = NB / nprocs();
    var lo int = pid() * per;
    var hi int = lo + per - 1;
    var fax float[@PERB@];
    var fay float[@PERB@];
    var stack int[STK];
    var sp int;
    var theta2 float = 0.04;
    var eps2 float = 0.0001;
    var dt float = 0.01;
    if pid() == 0 {
        rndseed(SEED);
        for b = 0 to NB - 1 {
            bx[b] = rnd();
            by[b] = rnd();
            bvx[b] = (rnd() - 0.5) * 0.1;
            bvy[b] = (rnd() - 0.5) * 0.1;
            bm[b] = rnd() + 0.1;
        }
    }
    barrier;
    for t = 1 to STEPS {
        if pid() == 0 {
            buildtree();
        }
        barrier;
        // Force computation: walk the shared tree for each owned body.
        for i = lo to hi {
            var fx float = 0.0;
            var fy float = 0.0;
            var xi float = bx[i];
            var yi float = by[i];
            stack[0] = 0;
            sp = 1;
            while sp > 0 {
                sp = sp - 1;
                var n int = stack[sp];
                var lb int = leafbody[n];
                var dx float = nx[n] - xi;
                var dy float = ny[n] - yi;
                var d2 float = dx * dx + dy * dy + eps2;
                if lb >= 0 {
                    if lb != i {
                        var im float = bm[lb] / (d2 * sqrt(d2));
                        fx = fx + dx * im;
                        fy = fy + dy * im;
                    }
                } else if 4.0 * chs[n] * chs[n] < theta2 * d2 {
                    // Far enough: use the cell's aggregate mass.
                    var am float = nm[n] / (d2 * sqrt(d2));
                    fx = fx + dx * am;
                    fy = fy + dy * am;
                } else {
                    for q = 0 to 3 {
                        var c int = child[n][q];
                        if c >= 0 && sp < STK {
                            stack[sp] = c;
                            sp = sp + 1;
                        }
                    }
                }
            }
            fax[i - lo] = fx;
            fay[i - lo] = fy;
        }
        barrier;
        // Update owned bodies; reflect at the unit-box walls.
        for i = lo to hi {
            bvx[i] = bvx[i] + fax[i - lo] * dt;
            bvy[i] = bvy[i] + fay[i - lo] * dt;
            bx[i] = bx[i] + bvx[i] * dt;
            by[i] = by[i] + bvy[i] * dt;
            if bx[i] < 0.0 {
                bx[i] = 0.0 - bx[i];
                bvx[i] = 0.0 - bvx[i];
            }
            if bx[i] > 1.0 {
                bx[i] = 2.0 - bx[i];
                bvx[i] = 0.0 - bvx[i];
            }
            if by[i] < 0.0 {
                by[i] = 0.0 - by[i];
                bvy[i] = 0.0 - bvy[i];
            }
            if by[i] > 1.0 {
                by[i] = 2.0 - by[i];
                bvy[i] = 0.0 - bvy[i];
            }
        }
        barrier;
    }
}
`

func barnesRender(p Params, nodes int) string {
	per := p.N / nodes
	if per < 1 {
		per = 1
	}
	return subst(barnesBody, map[string]any{
		"NB": p.N, "STEPS": p.Steps, "SEED": p.Seed, "PERB": per,
	})
}

func barnesSource(p Params) string { return barnesRender(p, Barnes().Nodes) }

// barnesHand reproduces the paper's hand-annotated Barnes: the annotator
// checked the updated bodies in after the update phase, but "missed a few
// annotations" (Section 6) — notably the tree arrays, which the building
// processor leaves exclusive in its cache, so every other processor's first
// walk of each tree block traps against it.
func barnesHand(p Params) string {
	src := barnesRender(p, Barnes().Nodes)
	src = replaceOnce(src, "        barrier;\n    }\n}",
		`        check_in bx[lo:hi];
        check_in by[lo:hi];
        check_in bvx[lo:hi];
        check_in bvy[lo:hi];
        barrier;
    }
}`)
	return src
}
