package bench

// Static-annotation fidelity: how close trace-free inference
// (internal/staticanno) comes to the trace-driven pipeline on the Figure 6
// ports, measured where it matters — simulated execution time of the
// annotated program on the test input. For benchmarks the inference pins
// exactly the annotated sources are byte-identical and the cycle counts
// match trivially; for the inexact ones the gap quantifies what the
// over-approximated footprint costs.

import (
	"fmt"
	"strings"
	"sync"

	"cachier/internal/core"
	"cachier/internal/parc"
	"cachier/internal/sim"
	"cachier/internal/staticanno"
)

// StaticRow is one benchmark's static-vs-trace fidelity measurement.
type StaticRow struct {
	Benchmark string
	Nodes     int
	// Exact reports the inference folded every branch, bound, and subscript
	// to per-node constants (see staticanno.Result).
	Exact bool
	// StylesMatched counts annotation styles (of StylesTotal) whose static
	// and trace-driven outputs are byte-identical.
	StylesMatched, StylesTotal int
	// CyclesTrace and CyclesStatic are the simulated execution times of the
	// trace-annotated and statically annotated programs on the test input,
	// under the benchmark's machine (the Figure 6 measurement).
	CyclesTrace, CyclesStatic uint64
	// Notes are the inference's reasons for being inexact, if any.
	Notes []string
}

// Gap is the static variant's execution time relative to the trace-driven
// one; 1.0 means the trace-free pipeline lost nothing.
func (r *StaticRow) Gap() float64 {
	if r.CyclesTrace == 0 {
		return 0
	}
	return float64(r.CyclesStatic) / float64(r.CyclesTrace)
}

// RunStaticFidelity traces b on the training input, annotates it from the
// simulated trace and from static inference (both in the harness's
// Performance-CICO configuration), and measures both annotated programs on
// the test input.
func RunStaticFidelity(b *Benchmark) (*StaticRow, error) {
	cfg := machineConfig(b.Nodes)
	trainSrc := b.Source(b.Train)
	traceCfg := cfg
	traceCfg.Mode = sim.ModeTrace
	trainProg, err := parc.Parse(trainSrc)
	if err != nil {
		return nil, fmt.Errorf("%s: parsing: %w", b.Name, err)
	}
	acquireWork()
	traceRes, err := sim.Run(trainProg, traceCfg)
	releaseWork()
	if err != nil {
		return nil, fmt.Errorf("%s: tracing: %w", b.Name, err)
	}

	scfg := staticanno.Config{
		Nodes: b.Nodes, CacheSize: cfg.CacheSize,
		Assoc: cfg.Assoc, BlockSize: cfg.BlockSize,
	}
	diffs, inf, err := staticanno.Compare(trainSrc, traceRes.Trace, scfg)
	if err != nil {
		return nil, fmt.Errorf("%s: static compare: %w", b.Name, err)
	}
	row := &StaticRow{
		Benchmark: b.Name, Nodes: b.Nodes,
		Exact: inf.Exact, StylesTotal: len(diffs), Notes: inf.Notes,
	}
	for _, d := range diffs {
		if d.Match {
			row.StylesMatched++
		}
	}

	// Annotate both ways exactly as RunBenchmark's Cachier variant does,
	// then measure on the test input.
	opts := core.DefaultOptions()
	opts.CacheSize = cfg.CacheSize
	traced, err := core.Annotate(trainSrc, traceRes.Trace, opts)
	if err != nil {
		return nil, fmt.Errorf("%s: trace-driven annotate: %w", b.Name, err)
	}
	static, err := core.Annotate(trainSrc, inf.Trace, opts)
	if err != nil {
		return nil, fmt.Errorf("%s: static annotate: %w", b.Name, err)
	}
	for _, m := range []struct {
		cycles *uint64
		res    *core.Result
	}{{&row.CyclesTrace, traced}, {&row.CyclesStatic, static}} {
		src, err := swapSeed(m.res.Source, b.Train.Seed, b.Test.Seed)
		if err != nil {
			return nil, fmt.Errorf("%s: %w", b.Name, err)
		}
		acquireWork()
		simRes, err := runVariant(src, cfg)
		releaseWork()
		if err != nil {
			return nil, fmt.Errorf("%s: measuring: %w", b.Name, err)
		}
		*m.cycles = simRes.Cycles
	}
	return row, nil
}

// StaticFidelity runs the whole suite, rows in All() order.
func StaticFidelity() ([]*StaticRow, error) {
	bs := All()
	rows := make([]*StaticRow, len(bs))
	errs := make([]error, len(bs))
	var wg sync.WaitGroup
	for i, b := range bs {
		wg.Add(1)
		go func(i int, b *Benchmark) {
			defer wg.Done()
			rows[i], errs[i] = RunStaticFidelity(b)
		}(i, b)
	}
	wg.Wait()
	for _, err := range errs {
		if err != nil {
			return nil, err
		}
	}
	return rows, nil
}

// FormatStaticRows renders the static-fidelity table (EXPERIMENTS.md,
// "Static annotation fidelity").
func FormatStaticRows(rows []*StaticRow) string {
	var sb strings.Builder
	fmt.Fprintf(&sb, "%-16s %6s %6s %7s | %12s %12s %6s\n",
		"benchmark", "nodes", "exact", "styles", "trace-cyc", "static-cyc", "gap")
	for _, r := range rows {
		fmt.Fprintf(&sb, "%-16s %6d %6v %4d/%d | %12d %12d %6.3f\n",
			r.Benchmark, r.Nodes, r.Exact, r.StylesMatched, r.StylesTotal,
			r.CyclesTrace, r.CyclesStatic, r.Gap())
	}
	return sb.String()
}
