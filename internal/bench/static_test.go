package bench

import "testing"

// TestStaticFidelity pins the trace-free pipeline's behaviour on every
// Figure 6 port. The race-free, enumerable ports (Ocean; MatrixMultiply is
// racy but the replay reproduces the simulator's deterministic schedule)
// must be exact with byte-identical annotations and therefore identical
// measured cycles. Barnes and Mp3d widen on data-dependent control and
// their placements legitimately diverge — the asserted divergence — while
// Tomcatv widens but still lands on the identical placement.
func TestStaticFidelity(t *testing.T) {
	rows, err := StaticFidelity()
	if err != nil {
		t.Fatal(err)
	}
	want := map[string]struct {
		exact    bool
		matchAll bool
	}{
		"Barnes":         {exact: false, matchAll: false},
		"Ocean":          {exact: true, matchAll: true},
		"Mp3d":           {exact: false, matchAll: false},
		"MatrixMultiply": {exact: true, matchAll: true},
		"Tomcatv":        {exact: false, matchAll: true},
	}
	if len(rows) != len(want) {
		t.Fatalf("got %d rows, want %d", len(rows), len(want))
	}
	for _, r := range rows {
		w, ok := want[r.Benchmark]
		if !ok {
			t.Errorf("%s: unexpected row", r.Benchmark)
			continue
		}
		if r.Exact != w.exact {
			t.Errorf("%s: exact = %v, want %v (notes: %v)", r.Benchmark, r.Exact, w.exact, r.Notes)
		}
		if got := r.StylesMatched == r.StylesTotal; got != w.matchAll {
			t.Errorf("%s: %d/%d styles matched, want matchAll=%v",
				r.Benchmark, r.StylesMatched, r.StylesTotal, w.matchAll)
		}
		if r.CyclesTrace == 0 || r.CyclesStatic == 0 {
			t.Errorf("%s: zero measured cycles (trace %d, static %d)",
				r.Benchmark, r.CyclesTrace, r.CyclesStatic)
		}
		// Byte-identical annotated sources must measure byte-identically.
		if w.matchAll && r.CyclesStatic != r.CyclesTrace {
			t.Errorf("%s: matched placement but cycles differ: trace %d, static %d",
				r.Benchmark, r.CyclesTrace, r.CyclesStatic)
		}
		if !w.exact && len(r.Notes) == 0 {
			t.Errorf("%s: inexact with no notes", r.Benchmark)
		}
	}
	t.Logf("\n%s", FormatStaticRows(rows))
}
