package bench

// Mp3d ports the SPLASH Mp3d kernel: rarefied fluid flow of idealized
// molecules through a discretized space. Particles are partitioned across
// processors; every step each particle moves, lands in a space cell computed
// from its position (data-dependent indirection), and collides with the
// cell's state — shared cells are read-modify-written by whichever
// processors' particles land there, an unstructured racy pattern that defies
// static analysis. The paper reports Mp3d as Cachier's biggest win: 25% over
// unannotated and 45% over the hand-annotated version, whose author both
// checked blocks in too early and neglected check-ins elsewhere (Section 6).
func Mp3d() *Benchmark {
	return &Benchmark{
		Name:     "Mp3d",
		Nodes:    32,
		Source:   mp3dSource,
		Hand:     mp3dHand,
		Train:    Params{N: 1600, Steps: 3, Seed: 9},
		Test:     Params{N: 1600, Steps: 3, Seed: 203},
		BigTrain: Params{N: 6400, Steps: 6, Seed: 9},
		BigTest:  Params{N: 6400, Steps: 6, Seed: 203},
		// Paper scale: 10,000 particles (the Mp3d runs Section 6 reports).
		PaperTrain: Params{N: 10000, Steps: 8, Seed: 9},
		PaperTest:  Params{N: 10000, Steps: 8, Seed: 203},
		Racy:       true,
	}
}

const mp3dBody = `
const NP = @NP@;
const NC = @NC@;
const STEPS = @STEPS@;
const SEED = @SEED@;

shared float px[NP] label "px";
shared float pv[NP] label "pv";
shared float cell[NC] label "cell";

func main() {
    var per int = NP / nprocs();
    var lo int = pid() * per;
    var hi int = lo + per - 1;
    var c int;
    var x float;
    var v float;
    if pid() == 0 {
        rndseed(SEED);
        for i = 0 to NP - 1 {
            px[i] = rnd() * float(NC);
            pv[i] = rnd() * 3.0 + 0.5;
        }
        for i = 0 to NC - 1 {
            cell[i] = 0.0;
        }
    }
    barrier;
    for t = 1 to STEPS {
        for i = lo to hi {
            x = px[i] + pv[i];
            if x >= float(NC) {
                x = x - float(NC);
            }
            px[i] = x;
            c = int(x);
%COLLIDE%
        }
        barrier;
    }
}
`

const mp3dCollide = `            cell[c] = cell[c] + 1.0;
            pv[i] = pv[i] + (cell[c] - pv[i]) * 0.01;`

func mp3dRender(p Params, collide string) string {
	cells := p.N / 8
	if cells < 32 {
		cells = 32
	}
	src := subst(mp3dBody, map[string]any{
		"NP": p.N, "NC": cells, "STEPS": p.Steps, "SEED": p.Seed,
	})
	return replaceMarker(src, "%COLLIDE%", collide)
}

func mp3dSource(p Params) string { return mp3dRender(p, mp3dCollide) }

// mp3dHand is the paper's flawed hand annotation, reproducing both failure
// modes Section 6 reports: blocks checked in too early — the particle
// position right after it is written even though the same processor moves
// it again next step, and the velocity before the collision update that
// rewrites it two lines later — while the contended cell array, whose
// blocks actually ping-pong between processors, gets no annotations at all
// ("neglecting to check-in blocks at other places").
func mp3dHand(p Params) string {
	handCollide := `            check_in px[i];
            cell[c] = cell[c] + 1.0;
            check_in pv[i];
            pv[i] = pv[i] + (cell[c] - pv[i]) * 0.01;`
	return mp3dRender(p, handCollide)
}
