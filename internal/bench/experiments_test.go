package bench

import (
	"math"
	"testing"

	"cachier/internal/cico"
	"cachier/internal/core"
	"cachier/internal/obs"
	"cachier/internal/parc"
	"cachier/internal/sim"
)

// TestJacobiCostModelWholeFit is experiment E2, first regime: the simulator's
// measured per-variable check-out counts for the Section 2.1 annotated
// Jacobi must equal the paper's closed form 2NPT(1+b)/b + N^2/b exactly.
func TestJacobiCostModelWholeFit(t *testing.T) {
	p := JacobiParams
	res := runDirective(t, JacobiWholeFit(p), p.P*p.P)
	want := cico.JacobiWholeMatrixCheckouts(int64(p.N), int64(p.P), int64(p.Steps), 4)
	got := res.Snapshot.VarByName("U").CheckOuts()
	if int64(got) != want {
		t.Errorf("whole-fit check-outs = %d, formula = %d", got, want)
	}
}

// TestJacobiCostModelRowFit is E2's second regime: (2NP(1+b)/b + N^2/b)*T.
// (The paper's column regime transposes to rows under ParC's row-major
// layout; the formula is symmetric.)
func TestJacobiCostModelRowFit(t *testing.T) {
	p := JacobiParams
	res := runDirective(t, JacobiRowFit(p), p.P*p.P)
	want := cico.JacobiColumnCheckouts(int64(p.N), int64(p.P), int64(p.Steps), 4)
	got := res.Snapshot.VarByName("U").CheckOuts()
	if int64(got) != want {
		t.Errorf("row-fit check-outs = %d, formula = %d", got, want)
	}
}

// TestJacobiRegimesOrdering: Section 2.1's closing point — re-checking the
// matrix out every step (row regime) costs T times more per column than
// checking the whole block out once.
func TestJacobiRegimesOrdering(t *testing.T) {
	p := JacobiParams
	whole := runDirective(t, JacobiWholeFit(p), p.P*p.P).Snapshot.VarByName("U").CheckOuts()
	row := runDirective(t, JacobiRowFit(p), p.P*p.P).Snapshot.VarByName("U").CheckOuts()
	if row <= whole {
		t.Errorf("row regime (%d) should check out more than whole-fit (%d)", row, whole)
	}
}

// TestJacobiSemantics: both annotated regimes compute the same grid as the
// unannotated program.
func TestJacobiSemantics(t *testing.T) {
	p := JacobiParams
	base := runDirective(t, JacobiUnannotated(p), p.P*p.P)
	for name, gen := range map[string]func(Params) string{
		"whole": JacobiWholeFit, "row": JacobiRowFit,
	} {
		res := runDirective(t, gen(p), p.P*p.P)
		for i := 0; i < p.N; i++ {
			for j := 0; j < p.N; j++ {
				a1, _ := base.Layout.AddrOf("U", i, j)
				a2, _ := res.Layout.AddrOf("U", i, j)
				if base.Store.Load(a1) != res.Store.Load(a2) {
					t.Fatalf("%s: U[%d][%d] differs from unannotated run", name, i, j)
				}
			}
		}
	}
}

// TestRestructuredMatMulCheckouts is experiment E4: the Section 5
// restructured program's measured check-outs of C match the paper's counts
// (N^2*P/2 total, N^2*P/4 of them exclusive under locks), against N^3 for
// the annotated original.
func TestRestructuredMatMulCheckouts(t *testing.T) {
	p := Params{N: 32, P: 4, Seed: 11}
	res := runDirective(t, RestructuredMatMul(p), p.P*p.P)
	c := res.Snapshot.VarByName("C")
	wantTotal := cico.MatMulRestructuredCCheckouts(int64(p.N), int64(p.P), 4)
	wantRacy := cico.MatMulRestructuredRacyCheckouts(int64(p.N), int64(p.P), 4)
	if int64(c.CheckOuts()) != wantTotal {
		t.Errorf("restructured C check-outs = %d, want %d", c.CheckOuts(), wantTotal)
	}
	if int64(c.CheckOutX) != wantRacy {
		t.Errorf("restructured C exclusive check-outs = %d, want %d", c.CheckOutX, wantRacy)
	}
}

// TestOriginalMatMulCheckouts completes E4: the Cachier-annotated original
// performs exactly N^3 exclusive check-outs of C — one per inner-loop
// update, all racing on cache blocks.
func TestOriginalMatMulCheckouts(t *testing.T) {
	if testing.Short() {
		t.Skip("simulation-heavy")
	}
	b := MatMul()
	cfg := machineConfig(b.Nodes)
	traceCfg := cfg
	traceCfg.Mode = sim.ModeTrace
	prog, _ := parc.Parse(b.Source(b.Train))
	tr, err := sim.Run(prog, traceCfg)
	if err != nil {
		t.Fatal(err)
	}
	ann, err := core.Annotate(b.Source(b.Train), tr.Trace, core.DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	cfg.Recorder = obs.New(cfg.Nodes, cfg.BlockSize)
	res, err := runVariant(ann.Source, cfg)
	if err != nil {
		t.Fatal(err)
	}
	n := int64(b.Train.N)
	if got := int64(res.Snapshot.VarByName("C").CheckOutX); got != cico.MatMulOriginalCCheckouts(n) {
		t.Errorf("original C check-outs = %d, want N^3 = %d", got, n*n*n)
	}
}

// TestRestructuredBeatsOriginal: Section 5's rewrite outperforms even the
// Cachier-annotated original — the whole point of exposing the block race
// to the programmer.
func TestRestructuredBeatsOriginal(t *testing.T) {
	if testing.Short() {
		t.Skip("simulation-heavy")
	}
	b := MatMul()
	row, err := RunBenchmark(b)
	if err != nil {
		t.Fatal(err)
	}
	restr, err := runVariant(RestructuredMatMul(b.Test), machineConfig(b.Nodes))
	if err != nil {
		t.Fatal(err)
	}
	if restr.Cycles >= row.Cycles[VariantCachier] {
		t.Errorf("restructured (%d cycles) does not beat annotated original (%d)",
			restr.Cycles, row.Cycles[VariantCachier])
	}
}

// TestInputSensitivity is experiment E5 (Section 4.5): annotating with one
// input data set and measuring on another costs little compared to
// annotating with the measurement input itself — even for the dynamic
// Barnes and Mp3d. The paper reports < 2%; our synthetic inputs vary more
// than SPLASH's, so the reproduction asserts < 5% and records the measured
// numbers in EXPERIMENTS.md.
func TestInputSensitivity(t *testing.T) {
	if testing.Short() {
		t.Skip("simulation-heavy")
	}
	for _, b := range []*Benchmark{Barnes(), Mp3d()} {
		cfg := machineConfig(b.Nodes)
		traceCfg := cfg
		traceCfg.Mode = sim.ModeTrace

		annotateWith := func(train Params) string {
			src := b.Source(train)
			prog, err := parc.Parse(src)
			if err != nil {
				t.Fatal(err)
			}
			trRes, err := sim.Run(prog, traceCfg)
			if err != nil {
				t.Fatal(err)
			}
			ann, err := core.Annotate(src, trRes.Trace, core.DefaultOptions())
			if err != nil {
				t.Fatal(err)
			}
			out, err := swapSeed(ann.Source, train.Seed, b.Test.Seed)
			if err != nil {
				t.Fatal(err)
			}
			return out
		}

		crossSrc := annotateWith(b.Train) // annotated from the training input
		sameSrc := annotateWith(b.Test)   // annotated from the test input itself

		cross, err := runVariant(crossSrc, cfg)
		if err != nil {
			t.Fatal(err)
		}
		same, err := runVariant(sameSrc, cfg)
		if err != nil {
			t.Fatal(err)
		}
		diff := math.Abs(float64(cross.Cycles)-float64(same.Cycles)) / float64(same.Cycles)
		t.Logf("%s: same-input %d cycles, cross-input %d cycles, diff %.2f%%",
			b.Name, same.Cycles, cross.Cycles, 100*diff)
		if diff > 0.05 {
			t.Errorf("%s: cross-input annotation costs %.1f%%, want < 5%%", b.Name, 100*diff)
		}
	}
}
