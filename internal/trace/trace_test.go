package trace

import (
	"bytes"
	"math/rand"
	"reflect"
	"strings"
	"testing"
	"testing/quick"
)

func sample() *Trace {
	b := NewBuilder(2, 32, []Label{
		{Name: "A", Base: 32, Elem: 8, Dims: []int{4, 4}},
		{Name: "x", Base: 160, Elem: 8},
	})
	b.AddMiss(ReadMiss, 32, 5, 0)
	b.AddMiss(WriteMiss, 40, 6, 1)
	b.AddMiss(WriteFault, 48, 7, 0)
	b.EndEpoch(12, []uint64{100, 110}, false)
	b.AddMiss(ReadMiss, 160, 9, 1)
	b.EndEpoch(-1, []uint64{250, 260}, true)
	return b.Trace()
}

func TestBuilderDedup(t *testing.T) {
	b := NewBuilder(1, 32, nil)
	b.AddMiss(ReadMiss, 32, 5, 0)
	b.AddMiss(ReadMiss, 32, 5, 0) // duplicate
	b.AddMiss(ReadMiss, 32, 6, 0) // different PC: kept
	b.AddMiss(WriteMiss, 32, 5, 0)
	b.EndEpoch(-1, []uint64{1}, true)
	if n := len(b.Trace().Epochs[0].Misses); n != 3 {
		t.Errorf("got %d misses, want 3", n)
	}
}

func TestBuilderEpochBoundaries(t *testing.T) {
	tr := sample()
	if len(tr.Epochs) != 2 {
		t.Fatalf("epochs = %d", len(tr.Epochs))
	}
	if tr.Epochs[0].BarrierPC != 12 || tr.Epochs[1].BarrierPC != -1 {
		t.Errorf("barrier PCs: %d %d", tr.Epochs[0].BarrierPC, tr.Epochs[1].BarrierPC)
	}
	if tr.Epochs[0].Index != 0 || tr.Epochs[1].Index != 1 {
		t.Error("epoch indices wrong")
	}
	if tr.Epochs[0].VT[1] != 110 {
		t.Errorf("VT = %v", tr.Epochs[0].VT)
	}
	// Dedup state resets across epochs: the same miss may reappear.
	b := NewBuilder(1, 32, nil)
	b.AddMiss(ReadMiss, 32, 5, 0)
	b.EndEpoch(3, []uint64{10}, false)
	b.AddMiss(ReadMiss, 32, 5, 0)
	b.EndEpoch(-1, []uint64{20}, true)
	if len(b.Trace().Epochs[1].Misses) != 1 {
		t.Error("miss in new epoch dropped by stale dedup")
	}
}

func TestWriteReadRoundTrip(t *testing.T) {
	tr := sample()
	var buf bytes.Buffer
	if err := Write(&buf, tr); err != nil {
		t.Fatal(err)
	}
	got, err := Read(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(tr, got) {
		t.Errorf("round trip mismatch:\nwant %+v\ngot  %+v", tr, got)
	}
}

func TestRoundTripProperty(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		nodes := 1 + rng.Intn(8)
		b := NewBuilder(nodes, 32, []Label{{Name: "V", Base: 32, Elem: 8, Dims: []int{64}}})
		epochs := 1 + rng.Intn(4)
		for e := 0; e < epochs; e++ {
			for i := 0; i < rng.Intn(20); i++ {
				b.AddMiss(Kind(rng.Intn(3)), 32+uint64(rng.Intn(64))*8, rng.Intn(100), rng.Intn(nodes))
			}
			vt := make([]uint64, nodes)
			for n := range vt {
				vt[n] = uint64(rng.Intn(10_000))
			}
			b.EndEpoch(pick(rng, e == epochs-1), vt, e == epochs-1)
		}
		tr := b.Trace()
		var buf bytes.Buffer
		if err := Write(&buf, tr); err != nil {
			return false
		}
		got, err := Read(&buf)
		if err != nil {
			return false
		}
		return reflect.DeepEqual(tr, got)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Error(err)
	}
}

func pick(rng *rand.Rand, final bool) int {
	if final {
		return -1
	}
	return rng.Intn(50)
}

func TestSortMissesDeterministic(t *testing.T) {
	tr := sample()
	tr.SortMisses()
	ms := tr.Epochs[0].Misses
	for i := 1; i < len(ms); i++ {
		a, b := ms[i-1], ms[i]
		if a.Node > b.Node {
			t.Errorf("misses not sorted by node: %+v before %+v", a, b)
		}
	}
}

func TestReadErrors(t *testing.T) {
	cases := []struct {
		name string
		src  string
	}{
		{"empty", ""},
		{"bad header", "not-a-trace\n"},
		{"missing nodes", "cachier-trace v1\nblock 32\n"},
		{"bad miss kind", "cachier-trace v1\nnodes 1\nblock 32\nepoch 0 barrierpc 1\nmiss z 0 0 0\nend\n"},
		{"miss node range", "cachier-trace v1\nnodes 1\nblock 32\nepoch 0 barrierpc 1\nmiss r 0 0 5\nend\n"},
		{"unterminated epoch", "cachier-trace v1\nnodes 1\nblock 32\nepoch 0 barrierpc 1\nmiss r 0 0 0\n"},
		{"garbage line", "cachier-trace v1\nnodes 1\nwat\n"},
		{"bad vt node", "cachier-trace v1\nnodes 1\nblock 32\nepoch 0 barrierpc 1\nvt 9 3\nend\n"},
	}
	for _, c := range cases {
		if _, err := Read(strings.NewReader(c.src)); err == nil {
			t.Errorf("%s: expected error", c.name)
		}
	}
}

func TestKindString(t *testing.T) {
	if ReadMiss.String() != "r" || WriteMiss.String() != "w" || WriteFault.String() != "f" {
		t.Error("kind strings wrong")
	}
	if _, err := parseKind("x"); err == nil {
		t.Error("parseKind accepted junk")
	}
}
