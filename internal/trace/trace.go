// Package trace defines the execution-trace model and file format that links
// the simulator to Cachier, mirroring the paper's Figure 3: per-epoch
// sections carrying each node's barrier PC and barrier virtual time followed
// by the epoch's shared-data cache misses (type, address, PC, node). The
// trace also carries the labelling information used to map raw addresses
// back to program data structures (Section 4.3).
//
// As in the paper, only accesses that miss in the (barrier-flushed)
// shared-data caches appear, there is no ordering among misses within an
// epoch, and epochs are ordered by barrier virtual time.
package trace

import (
	"bufio"
	"fmt"
	"io"
	"sort"
	"strings"
)

// Kind is the miss type recorded in the trace.
type Kind int

// Miss kinds. A write fault is a write that found the block cached
// read-only (Section 4, "trace processing").
const (
	ReadMiss Kind = iota
	WriteMiss
	WriteFault
)

func (k Kind) String() string {
	switch k {
	case ReadMiss:
		return "r"
	case WriteMiss:
		return "w"
	case WriteFault:
		return "f"
	}
	return "?"
}

func parseKind(s string) (Kind, error) {
	switch s {
	case "r":
		return ReadMiss, nil
	case "w":
		return WriteMiss, nil
	case "f":
		return WriteFault, nil
	}
	return 0, fmt.Errorf("trace: unknown miss kind %q", s)
}

// Miss is one recorded shared-data cache miss.
type Miss struct {
	Kind Kind
	Addr uint64 // element byte address
	PC   int    // statement ID of the referencing statement
	Node int
}

// Epoch is the trace section between two global barriers.
type Epoch struct {
	Index     int
	BarrierPC int      // statement ID of the barrier ending this epoch; -1 for program end
	VT        []uint64 // per-node barrier virtual times (cycles)
	Misses    []Miss
}

// Label names a contiguous shared-memory region, standing in for the
// paper's labelling macro.
type Label struct {
	Name string
	Base uint64
	Elem int   // element size in bytes
	Dims []int // per-dimension element counts (empty for scalars)
}

// Trace is a complete program execution trace.
type Trace struct {
	Nodes     int
	BlockSize int
	Labels    []Label
	Epochs    []Epoch
}

// Builder accumulates a trace during simulation, deduplicating misses within
// an epoch the way the paper's per-epoch hash table does.
type Builder struct {
	tr   Trace
	cur  *Epoch
	seen map[Miss]bool
}

// NewBuilder starts a trace for the given machine geometry.
func NewBuilder(nodes, blockSize int, labels []Label) *Builder {
	b := &Builder{tr: Trace{Nodes: nodes, BlockSize: blockSize, Labels: labels}}
	b.startEpoch()
	return b
}

func (b *Builder) startEpoch() {
	b.tr.Epochs = append(b.tr.Epochs, Epoch{
		Index: len(b.tr.Epochs),
		VT:    make([]uint64, b.tr.Nodes),
	})
	b.cur = &b.tr.Epochs[len(b.tr.Epochs)-1]
	b.seen = make(map[Miss]bool)
}

// AddMiss records a miss in the current epoch. Duplicate
// (kind, addr, pc, node) tuples are dropped.
func (b *Builder) AddMiss(kind Kind, addr uint64, pc, node int) {
	m := Miss{Kind: kind, Addr: addr, PC: pc, Node: node}
	if b.seen[m] {
		return
	}
	b.seen[m] = true
	b.cur.Misses = append(b.cur.Misses, m)
}

// EndEpoch closes the current epoch at a barrier: barrierPC is the barrier
// statement's ID (-1 for program termination) and vt the per-node arrival
// times. A new epoch begins unless final is true.
func (b *Builder) EndEpoch(barrierPC int, vt []uint64, final bool) {
	b.cur.BarrierPC = barrierPC
	copy(b.cur.VT, vt)
	if !final {
		b.startEpoch()
	}
}

// Trace returns the built trace.
func (b *Builder) Trace() *Trace { return &b.tr }

// SortMisses orders each epoch's misses deterministically (by node, kind,
// address, PC). Within an epoch the order carries no timing meaning.
func (t *Trace) SortMisses() {
	for i := range t.Epochs {
		ms := t.Epochs[i].Misses
		sort.Slice(ms, func(a, b int) bool {
			if ms[a].Node != ms[b].Node {
				return ms[a].Node < ms[b].Node
			}
			if ms[a].Kind != ms[b].Kind {
				return ms[a].Kind < ms[b].Kind
			}
			if ms[a].Addr != ms[b].Addr {
				return ms[a].Addr < ms[b].Addr
			}
			return ms[a].PC < ms[b].PC
		})
	}
}

// Write serializes the trace in the line-oriented text format.
func Write(w io.Writer, t *Trace) error {
	bw := bufio.NewWriter(w)
	fmt.Fprintf(bw, "cachier-trace v1\n")
	fmt.Fprintf(bw, "nodes %d\n", t.Nodes)
	fmt.Fprintf(bw, "block %d\n", t.BlockSize)
	for _, l := range t.Labels {
		fmt.Fprintf(bw, "label %s base %d elem %d dims", l.Name, l.Base, l.Elem)
		for _, d := range l.Dims {
			fmt.Fprintf(bw, " %d", d)
		}
		fmt.Fprintln(bw)
	}
	for _, e := range t.Epochs {
		fmt.Fprintf(bw, "epoch %d barrierpc %d\n", e.Index, e.BarrierPC)
		for n, vt := range e.VT {
			fmt.Fprintf(bw, "vt %d %d\n", n, vt)
		}
		for _, m := range e.Misses {
			fmt.Fprintf(bw, "miss %s %d %d %d\n", m.Kind, m.Addr, m.PC, m.Node)
		}
		fmt.Fprintln(bw, "end")
	}
	return bw.Flush()
}

// Read parses a trace written by Write.
func Read(r io.Reader) (*Trace, error) {
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 0, 64*1024), 16*1024*1024)
	lineNo := 0
	next := func() (string, bool) {
		for sc.Scan() {
			lineNo++
			line := strings.TrimSpace(sc.Text())
			if line != "" {
				return line, true
			}
		}
		return "", false
	}
	fail := func(format string, args ...any) error {
		return fmt.Errorf("trace: line %d: %s", lineNo, fmt.Sprintf(format, args...))
	}

	line, ok := next()
	if !ok || line != "cachier-trace v1" {
		return nil, fail("missing header")
	}
	t := &Trace{}
	for {
		line, ok = next()
		if !ok {
			break
		}
		f := strings.Fields(line)
		switch f[0] {
		case "nodes":
			if len(f) != 2 {
				return nil, fail("bad nodes line")
			}
			if _, err := fmt.Sscanf(f[1], "%d", &t.Nodes); err != nil {
				return nil, fail("bad node count %q", f[1])
			}
		case "block":
			if len(f) != 2 {
				return nil, fail("bad block line")
			}
			if _, err := fmt.Sscanf(f[1], "%d", &t.BlockSize); err != nil {
				return nil, fail("bad block size %q", f[1])
			}
		case "label":
			// label NAME base B elem E dims D1 D2 ...
			if len(f) < 7 || f[2] != "base" || f[4] != "elem" || f[6] != "dims" {
				return nil, fail("bad label line %q", line)
			}
			l := Label{Name: f[1]}
			if _, err := fmt.Sscanf(f[3], "%d", &l.Base); err != nil {
				return nil, fail("bad label base %q", f[3])
			}
			if _, err := fmt.Sscanf(f[5], "%d", &l.Elem); err != nil {
				return nil, fail("bad label elem %q", f[5])
			}
			for _, ds := range f[7:] {
				var d int
				if _, err := fmt.Sscanf(ds, "%d", &d); err != nil {
					return nil, fail("bad label dim %q", ds)
				}
				l.Dims = append(l.Dims, d)
			}
			t.Labels = append(t.Labels, l)
		case "epoch":
			if len(f) != 4 || f[2] != "barrierpc" {
				return nil, fail("bad epoch line %q", line)
			}
			e := Epoch{VT: make([]uint64, t.Nodes)}
			if _, err := fmt.Sscanf(f[1], "%d", &e.Index); err != nil {
				return nil, fail("bad epoch index %q", f[1])
			}
			if _, err := fmt.Sscanf(f[3], "%d", &e.BarrierPC); err != nil {
				return nil, fail("bad barrier pc %q", f[3])
			}
			for {
				line, ok = next()
				if !ok {
					return nil, fail("unterminated epoch")
				}
				if line == "end" {
					break
				}
				ef := strings.Fields(line)
				switch ef[0] {
				case "vt":
					var n int
					var vt uint64
					if len(ef) != 3 {
						return nil, fail("bad vt line %q", line)
					}
					if _, err := fmt.Sscanf(ef[1], "%d", &n); err != nil {
						return nil, fail("bad vt node %q", ef[1])
					}
					if _, err := fmt.Sscanf(ef[2], "%d", &vt); err != nil {
						return nil, fail("bad vt value %q", ef[2])
					}
					if n < 0 || n >= t.Nodes {
						return nil, fail("vt node %d out of range", n)
					}
					e.VT[n] = vt
				case "miss":
					if len(ef) != 5 {
						return nil, fail("bad miss line %q", line)
					}
					k, err := parseKind(ef[1])
					if err != nil {
						return nil, fail("%v", err)
					}
					var m Miss
					m.Kind = k
					if _, err := fmt.Sscanf(ef[2], "%d", &m.Addr); err != nil {
						return nil, fail("bad miss addr %q", ef[2])
					}
					if _, err := fmt.Sscanf(ef[3], "%d", &m.PC); err != nil {
						return nil, fail("bad miss pc %q", ef[3])
					}
					if _, err := fmt.Sscanf(ef[4], "%d", &m.Node); err != nil {
						return nil, fail("bad miss node %q", ef[4])
					}
					if m.Node < 0 || m.Node >= t.Nodes {
						return nil, fail("miss node %d out of range", m.Node)
					}
					e.Misses = append(e.Misses, m)
				default:
					return nil, fail("unexpected line %q in epoch", line)
				}
			}
			t.Epochs = append(t.Epochs, e)
		default:
			return nil, fail("unexpected line %q", line)
		}
	}
	if err := sc.Err(); err != nil {
		return nil, err
	}
	if t.Nodes <= 0 {
		return nil, fmt.Errorf("trace: missing or invalid nodes header")
	}
	return t, nil
}
