package interp

import (
	"reflect"
	"testing"

	"cachier/internal/memory"
	"cachier/internal/parc"
	"cachier/internal/parcgen"
)

// execAll runs every node of prog to completion, sequentially, against one
// shared store, recording every Machine callback. With tree set it forces
// the tree-walking reference implementation; otherwise the bytecode VM
// runs. Node errors are collected rather than fatal so the two engines can
// be compared on failing programs too.
func execAll(t *testing.T, src string, nprocs int, tree bool) (*mockMachine, *Store, *memory.Layout, []string) {
	t.Helper()
	prog, err := parc.Parse(src)
	if err != nil {
		t.Skipf("parse: %v", err)
	}
	if err := parc.Check(prog); err != nil {
		t.Skipf("check: %v", err)
	}
	layout, err := memory.New(prog, 32)
	if err != nil {
		t.Skipf("layout: %v", err)
	}
	store := NewStore(layout.TotalBytes())
	m := &mockMachine{}
	var errs []string
	for node := 0; node < nprocs; node++ {
		ctx := NewContext(prog, store, m, node, nprocs)
		if tree {
			ctx.UseTreeWalker()
		}
		if err := ctx.Run(); err != nil {
			errs = append(errs, err.Error())
		}
	}
	return m, store, layout, errs
}

// diffEngines compares every observable of a VM run against a tree-walker
// run of the same source: the full Machine event record (accesses,
// directives, barriers, locks, work, prints), any runtime errors, and the
// final shared store word-for-word.
func diffEngines(t *testing.T, src string, nprocs int) {
	t.Helper()
	vmM, vmS, layout, vmErrs := execAll(t, src, nprocs, false)
	twM, twS, _, twErrs := execAll(t, src, nprocs, true)

	if !reflect.DeepEqual(vmErrs, twErrs) {
		t.Fatalf("runtime errors diverge:\nVM:   %q\ntree: %q\n%s", vmErrs, twErrs, src)
	}
	if !reflect.DeepEqual(vmM.accesses, twM.accesses) {
		t.Fatalf("access streams diverge (VM %d events, tree %d)\n%s",
			len(vmM.accesses), len(twM.accesses), src)
	}
	if !reflect.DeepEqual(vmM.directives, twM.directives) {
		t.Fatalf("directive streams diverge:\nVM:   %+v\ntree: %+v\n%s",
			vmM.directives, twM.directives, src)
	}
	if !reflect.DeepEqual(vmM.barriers, twM.barriers) ||
		!reflect.DeepEqual(vmM.locks, twM.locks) ||
		!reflect.DeepEqual(vmM.unlocks, twM.unlocks) {
		t.Fatalf("sync streams diverge\n%s", src)
	}
	if vmM.work != twM.work {
		t.Fatalf("work charged diverges: VM %d, tree %d\n%s", vmM.work, twM.work, src)
	}
	if !reflect.DeepEqual(vmM.printed, twM.printed) {
		t.Fatalf("print output diverges:\nVM:   %q\ntree: %q\n%s", vmM.printed, twM.printed, src)
	}
	for addr := uint64(0); addr < layout.TotalBytes(); addr += parc.ElemSize {
		if vmS.Load(addr) != twS.Load(addr) {
			t.Fatalf("store diverges at address %#x: VM %#x, tree %#x\n%s",
				addr, vmS.Load(addr), twS.Load(addr), src)
		}
	}
}

// FuzzVMEquivalence pins the bytecode VM to the tree-walking reference
// implementation over parcgen's program space: same Machine event stream,
// same errors, same final memory, on every generated program. This is the
// interp-level half of the differential safety net; the conformance
// harness adds the machine-level half (identical cycle counts and protocol
// stats under the full scheduler).
func FuzzVMEquivalence(f *testing.F) {
	for seed := int64(0); seed < 25; seed++ {
		f.Add(seed)
	}
	f.Fuzz(func(t *testing.T, seed int64) {
		diffEngines(t, parcgen.Generate(seed), 4)
	})
}

// TestVMEquivalenceCorpus is the deterministic always-on slice of the fuzz
// target: 200 seeds through both engines on every `go test`.
func TestVMEquivalenceCorpus(t *testing.T) {
	for seed := int64(0); seed < 200; seed++ {
		diffEngines(t, parcgen.Generate(seed), 4)
	}
}

// interpBenchSrc is scalar- and loop-heavy on purpose: private work
// dominates, so the benchmark measures the interpreter engine rather than
// the mock machine's event recording.
const interpBenchSrc = `
shared float out[4];
func kernel(n int) float {
    var acc float = 0.0;
    for i = 1 to n {
        var x float = float(i);
        acc += x * x / (x + 1.0);
        if i % 3 == 0 { acc -= 1.0; }
    }
    return acc;
}
func main() {
    var t float = 0.0;
    for r = 0 to 49 { t += kernel(200); }
    out[pid()] = t;
}
`

// BenchmarkInterp compares the two execution engines on the same
// compute-bound program (see EXPERIMENTS.md, "Simulator performance").
func BenchmarkInterp(b *testing.B) {
	prog := parc.MustParse(interpBenchSrc)
	if err := parc.Check(prog); err != nil {
		b.Fatal(err)
	}
	layout, err := memory.New(prog, 32)
	if err != nil {
		b.Fatal(err)
	}
	for _, eng := range []struct {
		name string
		tree bool
	}{{"vm", false}, {"tree", true}} {
		b.Run(eng.name, func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				store := NewStore(layout.TotalBytes())
				ctx := NewContext(prog, store, &mockMachine{}, 0, 1)
				if eng.tree {
					ctx.UseTreeWalker()
				}
				if err := ctx.Run(); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}
