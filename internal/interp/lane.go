package interp

import (
	"cachier/internal/parc"
)

// This file is the lane-batched execution engine's interpreter half: a
// resumable form of the VM dispatch loop in vm.go. The sequential engine
// runs each node's Context on its own goroutine and parks it inside Machine
// calls; the lane engine (internal/sim/lanes.go) instead steps all P nodes
// as lanes of one goroutine, so the interpreter must be able to *return*
// whenever the machine parks or reschedules the lane, and to pick up
// exactly where it stopped on the next Resume.
//
// The stepper keeps the call stack explicitly (laneFrame), and every
// suspendable instruction — anything that can reach a Machine call: work
// charge flushes, shared accesses, barriers, locks, prints, directives,
// calls — is broken into numbered phases. lv.phase names the phase to
// re-enter; scalar scratch (term/off/addr/val/text) carries the
// instruction's partial state across the suspension. Instructions that
// cannot suspend are verbatim copies of the exec loop's cases.
//
// Observational equivalence with exec is the whole contract (see
// compile.go): the sequence of Machine calls, their arguments, and the
// flush boundaries are identical, because each phase issues exactly the
// calls exec issues at that point and nothing else. Data touches
// (memLoad/memStore) stay *after* the corresponding Access call returns
// control to the lane — the same point in the total order at which a
// sequential proc goroutine, resumed from its park, would perform them.

// LaneYielder is the lane engine's scheduling probe. After every Machine
// call (and every work-charge flush) the stepper asks whether its node is
// still the running lane; a false answer suspends the stepper at the
// current phase. A nil yielder never suspends: Resume then runs the
// program to completion, with Machine calls blocking internally exactly
// like the plain VM (run-to-completion mode, used inside the sequential
// and epoch-parallel engines).
type LaneYielder interface {
	LaneRunning(node int) bool
}

// LaneStatus is Resume's outcome.
type LaneStatus uint8

const (
	// LaneSuspended: the yielder parked the lane; call Resume again when it
	// is scheduled.
	LaneSuspended LaneStatus = iota
	// LaneDone: the program finished (Err reports how).
	LaneDone
)

// laneFrame is one activation on the explicit call stack.
type laneFrame struct {
	co *fnCode
	fr *vmFrame
	ip int32
}

// Instruction phases. phStart is the only phase in which per-instruction
// bookkeeping (op count, entry work charges) runs; every suspendable step
// records its continuation phase before issuing the call that may park the
// lane.
const (
	phStart    uint8 = iota // fresh instruction
	phBody                  // entry charges done; run the body
	phMem                   // mid subscript walk (lv.term, lv.off)
	phFlushR                // flush, then the first Access / machine call
	phAccR                  // issue the read Access / machine call
	phDataR                 // deferred load data touch
	phFlushW                // flush, then the write Access
	phAccW                  // issue the write Access
	phDataW                 // deferred store data touch
	phCallWork              // opCall overhead flushed; push the frame
	phFinal                 // main returned; final flush
)

// stepResult is an instruction handler's outcome.
type stepResult uint8

const (
	stepAdvance        stepResult = iota // instruction done, ip++
	stepSuspend                          // parked mid-instruction at lv.phase
	stepAdvanceSuspend                   // instruction done AND parked
	stepErr                              // runtime error in lv.err
	stepFrame                            // call stack changed; reload frame
)

// LaneVM executes one node's program as a resumable lane.
type LaneVM struct {
	c *Context
	y LaneYielder

	stack []laneFrame

	phase   uint8
	drain   bool  // a chargeUnits-style drain was parked mid-flush
	charged bool  // the current phase's pending-add already happened
	term    int   // subscript walk position
	off     int64 // accumulated element offset
	addr    uint64
	val     Value
	text    string

	err  error
	done bool
}

// NewLaneVM prepares a resumable lane for the context's program. It reports
// false when the program cannot run on the stepper — the context is pinned
// to the tree-walker, main did not compile, or some call site falls back to
// the tree-walker — and the caller should use Run (or another engine)
// instead. On success the context is committed to this LaneVM; do not also
// call Run.
func (c *Context) NewLaneVM(y LaneYielder) (*LaneVM, bool) {
	if c.treeWalk {
		return nil, false
	}
	main := c.prog.FuncMap["main"]
	if main == nil {
		return nil, false
	}
	pcm := c.prog.Artifact(func() any { return compileProgram(c.prog) }).(*progCode)
	if !pcm.laneable {
		return nil, false
	}
	co := pcm.fns[main]
	if c.pools == nil || len(c.pools) < pcm.nfns {
		c.pools = make([][]*vmFrame, pcm.nfns)
	}
	c.depth++
	lv := &LaneVM{c: c, y: y}
	lv.stack = append(lv.stack, laneFrame{co: co, fr: c.acquire(co)})
	return lv, true
}

// Err returns the program's terminal error once Resume reported LaneDone
// (nil on clean completion, or after Kill).
func (lv *LaneVM) Err() error { return lv.err }

// Kill marks the lane finished without an error of its own; the machine
// uses it when it terminates the processor from inside one of its own
// calls (a processor fault) and has already recorded the cause.
func (lv *LaneVM) Kill() { lv.done = true }

// RunToCompletion drives the lane until the program finishes; only
// meaningful with a nil yielder, where Resume cannot suspend.
func (lv *LaneVM) RunToCompletion() error {
	for lv.Resume() != LaneDone {
	}
	return lv.err
}

func (lv *LaneVM) running() bool {
	return lv.y == nil || lv.y.LaneRunning(lv.c.node)
}

func (lv *LaneVM) finish() LaneStatus {
	lv.done = true
	return LaneDone
}

func (lv *LaneVM) fail(err error) LaneStatus {
	// Error propagation in the recursive VM decrements depth at each level
	// as it unwinds (and skips the frame releases); mirror that here.
	lv.c.depth -= len(lv.stack)
	lv.err = err
	lv.done = true
	return LaneDone
}

// drainPending replays chargeUnits' flush cadence (vm.go): pending crossed
// the limit, so report exactly workFlushLimit cycles per Work call until it
// is below the limit again. Returns false when the yielder parked the lane
// mid-drain; Resume's preamble finishes the job on the next schedule.
func (lv *LaneVM) drainPending() bool {
	c := lv.c
	for c.pending >= workFlushLimit {
		c.pending -= workFlushLimit
		c.mach.Work(c.node, workFlushLimit)
		if !lv.running() {
			lv.drain = true
			return false
		}
	}
	return true
}

// flushPending replays Context.flush: one Work call for the whole pending
// amount. Returns false when the yielder parked the lane after the call.
func (lv *LaneVM) flushPending() bool {
	c := lv.c
	if c.pending > 0 {
		pend := c.pending
		c.pending = 0
		c.mach.Work(c.node, pend)
	}
	return lv.running()
}

// memWalk resumes (or starts) a memAccess subscript walk at phMem: per-term
// unit charges, index read, bounds check, in exactly memOff's order, with
// the postWork charges after the last check. The flattened element offset
// accumulates in lv.off. charged guards against re-adding a term's charge
// when a flush parked the lane between the add and the drain's end.
func (lv *LaneVM) memWalk(ma *memAccess, regs []Value, pc int32) stepResult {
	c := lv.c
	for lv.term < len(ma.terms) {
		t := &ma.terms[lv.term]
		if t.nwork != 0 && !lv.charged {
			lv.charged = true
			c.pending += uint64(t.nwork)
		}
		if c.pending >= workFlushLimit && !lv.drainPending() {
			return stepSuspend
		}
		lv.charged = false
		ix := regs[t.reg].AsInt()
		if t.size > 0 && uint64(ix) >= uint64(t.size) {
			lv.err = c.boundsErr(ma, t, ix, pc)
			return stepErr
		}
		lv.off += ix * t.stride
		lv.term++
	}
	if ma.postWork != 0 && !lv.charged {
		lv.charged = true
		c.pending += uint64(ma.postWork)
	}
	if c.pending >= workFlushLimit && !lv.drainPending() {
		return stepSuspend
	}
	lv.charged = false
	return stepAdvance
}

// loadShared is opLoadShared in phases: subscript walk, flush, read Access,
// deferred data load.
func (lv *LaneVM) loadShared(in *instr, regs []Value, ph uint8) stepResult {
	c := lv.c
	ma := in.aux.(*memAccess)
	if ph <= phBody {
		if ma.terms == nil {
			// Constant offset: exec charges nothing before the flush.
			lv.addr = ma.decl.BaseAddr + uint64(ma.constOff)*parc.ElemSize
			ph = phFlushR
		} else {
			lv.off = ma.constOff
			lv.term = 0
			ph = phMem
		}
		lv.phase = ph
	}
	if ph == phMem {
		if st := lv.memWalk(ma, regs, in.pc); st != stepAdvance {
			return st
		}
		lv.addr = ma.decl.BaseAddr + uint64(lv.off)*parc.ElemSize
		ph = phFlushR
		lv.phase = ph
	}
	if ph == phFlushR {
		ph = phAccR
		lv.phase = ph
		if !lv.flushPending() {
			return stepSuspend
		}
	}
	if ph == phAccR {
		lv.phase = phDataR
		c.mach.Access(c.node, false, lv.addr, int(in.pc))
		if !lv.running() {
			return stepSuspend
		}
	}
	// phDataR: the data touch happens when the lane is scheduled after the
	// Access — the same point a resumed sequential goroutine reads it.
	regs[in.a] = FromBits(c.memLoad(lv.addr), ma.isFloat)
	lv.phase = phStart
	return stepAdvance
}

// asgShared is opAsgShared in phases: subscript walk, then for compound
// assignment a flush + read Access + deferred load, then flush + write
// Access + deferred store.
func (lv *LaneVM) asgShared(in *instr, regs []Value, ph uint8) stepResult {
	c := lv.c
	ma := in.aux.(*memAccess)
	if ph <= phBody {
		if ma.terms == nil {
			lv.addr = ma.decl.BaseAddr + uint64(ma.constOff)*parc.ElemSize
			ph = phFlushR
		} else {
			lv.off = ma.constOff
			lv.term = 0
			ph = phMem
		}
		lv.phase = ph
	}
	if ph == phMem {
		if st := lv.memWalk(ma, regs, in.pc); st != stepAdvance {
			return st
		}
		lv.addr = ma.decl.BaseAddr + uint64(lv.off)*parc.ElemSize
		ph = phFlushR
		lv.phase = ph
	}
	if ph == phFlushR {
		if ma.assignOp == parc.OpSet {
			// Plain store: no read; the value needs only the RHS register.
			lv.val = applyOp(Value{}, ma.assignOp, regs[in.b], ma.isFloat)
			ph = phFlushW
		} else {
			ph = phAccR
			lv.phase = ph
			if !lv.flushPending() {
				return stepSuspend
			}
		}
		lv.phase = ph
	}
	if ph == phAccR {
		lv.phase = phDataR
		c.mach.Access(c.node, false, lv.addr, int(in.pc))
		if !lv.running() {
			return stepSuspend
		}
		ph = phDataR
	}
	if ph == phDataR {
		cur := FromBits(c.memLoad(lv.addr), ma.isFloat)
		lv.val = applyOp(cur, ma.assignOp, regs[in.b], ma.isFloat)
		ph = phFlushW
		lv.phase = ph
	}
	if ph == phFlushW {
		ph = phAccW
		lv.phase = ph
		// After a compound's read this is pending == 0, matching exec's
		// second (empty) flush; for a plain store it carries the real flush.
		if !lv.flushPending() {
			return stepSuspend
		}
	}
	if ph == phAccW {
		lv.phase = phDataW
		c.mach.Access(c.node, true, lv.addr, int(in.pc))
		if !lv.running() {
			return stepSuspend
		}
	}
	// phDataW: deferred store, after the write Access returned the lane.
	c.memStore(lv.addr, lv.val.Bits())
	lv.phase = phStart
	return stepAdvance
}

// privAccess is opLoadArr/opAsgArr in phases: only the subscript walk can
// suspend (its charges may flush); the data touch is frame-private.
func (lv *LaneVM) privAccess(in *instr, f *laneFrame, regs []Value, ph uint8) stepResult {
	c := lv.c
	ma := in.aux.(*memAccess)
	if ph <= phBody {
		lv.off = ma.constOff
		lv.term = 0
		lv.phase = phMem
	}
	if st := lv.memWalk(ma, regs, in.pc); st != stepAdvance {
		return st
	}
	lv.phase = phStart
	if in.op == opLoadArr {
		c.privReads++
		regs[in.a] = f.fr.arrays[ma.arr].data[lv.off]
		return stepAdvance
	}
	pa := &f.fr.arrays[ma.arr]
	if ma.assignOp != parc.OpSet {
		c.privReads++
	}
	c.privWrites++
	pa.data[lv.off] = applyOp(pa.data[lv.off], ma.assignOp, regs[in.b], ma.isFloat)
	return stepAdvance
}

// machineCall handles the flush-then-call instructions (barrier, lock,
// unlock, print, directives). The call completes the instruction; a park
// right after it suspends at the *next* instruction.
func (lv *LaneVM) machineCall(in *instr, regs []Value, ph uint8) stepResult {
	c := lv.c
	if ph <= phBody {
		if in.op == opPrint {
			// Format before the flush, exactly as exec does.
			p := in.aux.(*printPayload)
			vals := c.printBuf[:0]
			for _, r := range p.args {
				vals = append(vals, regs[r])
			}
			c.printBuf = vals
			lv.text = formatPrint(p.format, vals)
		}
		ph = phFlushR
		lv.phase = ph
	}
	if ph == phFlushR {
		ph = phAccR
		lv.phase = ph
		if !lv.flushPending() {
			return stepSuspend
		}
	}
	// phAccR: issue the machine call.
	lv.phase = phStart
	switch in.op {
	case opBarrier:
		c.mach.Barrier(c.node, int(in.pc))
	case opLock:
		c.mach.Lock(c.node, regs[in.a].AsInt(), int(in.pc))
	case opUnlock:
		c.mach.Unlock(c.node, regs[in.a].AsInt(), int(in.pc))
	case opPrint:
		c.mach.Print(c.node, lv.text)
	case opDirEmit:
		p := in.aux.(*dirPayload)
		c.mach.Directive(c.node, p.kind, c.expandRanges(p.decl), int(in.pc))
	case opDirNil:
		p := in.aux.(*dirPayload)
		c.mach.Directive(c.node, p.kind, nil, int(in.pc))
	}
	if !lv.running() {
		return stepAdvanceSuspend
	}
	return stepAdvance
}

// call is opCall in phases: the call-overhead charge (Context.work(2) — a
// single flush of the whole pending amount at the threshold, unlike
// chargeUnits' fixed-size drains), then depth check and frame push.
func (lv *LaneVM) call(in *instr, regs []Value, ph uint8) stepResult {
	c := lv.c
	p := in.aux.(*callPayload)
	if ph <= phBody {
		c.pending += 2
		if c.pending >= workFlushLimit {
			lv.phase = phCallWork
			pend := c.pending
			c.pending = 0
			c.mach.Work(c.node, pend)
			if !lv.running() {
				return stepSuspend
			}
		}
	}
	lv.phase = phStart
	co := p.code
	if co == nil {
		// NewLaneVM only accepts laneable programs; this is unreachable.
		lv.err = c.vmErr(in.pc, "vm: lane stepper reached a tree-walker call")
		return stepErr
	}
	if c.depth >= maxCallDepth {
		lv.err = c.vmErr(in.pc, "call depth exceeds %d (runaway recursion in %s?)", maxCallDepth, co.fn.Name)
		return stepErr
	}
	c.depth++
	fr := c.acquire(co)
	for i := range co.fn.Params {
		fr.regs[i] = coerce(regs[p.args[i]], co.fn.Params[i].Base)
	}
	lv.stack = append(lv.stack, laneFrame{co: co, fr: fr})
	return stepFrame
}

// Resume advances the lane until the yielder parks it or the program ends.
// It is exec's dispatch loop over an explicit frame stack; the private
// (non-suspending) cases are copied from exec verbatim, with ip held in the
// frame.
func (lv *LaneVM) Resume() LaneStatus {
	if lv.done {
		return LaneDone
	}
	c := lv.c
	count := c.countOps
	var nops uint64
	if count {
		defer func() { c.ops += nops }()
	}
	// Finish a parked work drain or the final flush before re-dispatching.
	if lv.drain {
		if !lv.drainPending() {
			return LaneSuspended
		}
		lv.drain = false
	}
	if lv.phase == phFinal {
		if !lv.flushPending() {
			return LaneSuspended
		}
		return lv.finish()
	}
frames:
	for {
		f := &lv.stack[len(lv.stack)-1]
		co := f.co
		ins := co.ins
		regs := f.fr.regs
		for {
			in := &ins[f.ip]
			ph := lv.phase
			if ph == phStart {
				if count {
					nops++
				}
				if in.nwork != 0 {
					if tot := c.pending + uint64(in.nwork); tot < workFlushLimit {
						c.pending = tot
					} else {
						c.pending = tot
						lv.phase = phBody
						if !lv.drainPending() {
							return LaneSuspended
						}
						lv.phase = phStart
					}
				}
			} else {
				// Re-entry mid-instruction: the handler consumes ph.
				lv.phase = phStart
			}
			switch in.op {
			case opNop:

			case opConst:
				regs[in.a] = in.imm

			case opCoerce:
				regs[in.a] = coerce(regs[in.b], parc.BaseType(in.n))

			case opJump:
				f.ip = in.n
				continue

			case opJz:
				if !regs[in.a].Truthy() {
					f.ip = in.n
					continue
				}

			case opSCAnd:
				if !regs[in.b].Truthy() {
					regs[in.a] = IntVal(0)
					f.ip = in.n
					continue
				}

			case opSCOr:
				if regs[in.b].Truthy() {
					regs[in.a] = IntVal(1)
					f.ip = in.n
					continue
				}

			case opTruthy:
				regs[in.a] = boolVal(regs[in.b].Truthy())

			case opNeg:
				if x := regs[in.b]; x.Float {
					regs[in.a] = FloatVal(-x.F)
				} else {
					regs[in.a] = IntVal(-x.I)
				}

			case opNot:
				if regs[in.b].Truthy() {
					regs[in.a] = IntVal(0)
				} else {
					regs[in.a] = IntVal(1)
				}

			case opAdd:
				x, y := regs[in.b], regs[in.c]
				if x.Float || y.Float {
					regs[in.a] = FloatVal(x.AsFloat() + y.AsFloat())
				} else {
					regs[in.a] = IntVal(x.I + y.I)
				}

			case opSub:
				x, y := regs[in.b], regs[in.c]
				if x.Float || y.Float {
					regs[in.a] = FloatVal(x.AsFloat() - y.AsFloat())
				} else {
					regs[in.a] = IntVal(x.I - y.I)
				}

			case opMul:
				x, y := regs[in.b], regs[in.c]
				if x.Float || y.Float {
					regs[in.a] = FloatVal(x.AsFloat() * y.AsFloat())
				} else {
					regs[in.a] = IntVal(x.I * y.I)
				}

			case opDiv:
				x, y := regs[in.b], regs[in.c]
				if x.Float || y.Float {
					regs[in.a] = FloatVal(x.AsFloat() / y.AsFloat())
				} else if y.I == 0 {
					return lv.fail(c.vmErr(in.pc, "integer division by zero"))
				} else {
					regs[in.a] = IntVal(x.I / y.I)
				}

			case opMod:
				x, y := regs[in.b], regs[in.c]
				if x.Float || y.Float {
					return lv.fail(c.vmErr(in.pc, "%% requires integer operands"))
				}
				if y.I == 0 {
					return lv.fail(c.vmErr(in.pc, "integer modulo by zero"))
				}
				regs[in.a] = IntVal(x.I % y.I)

			case opEq:
				regs[in.a] = boolVal(compare(regs[in.b], regs[in.c]) == 0)
			case opNe:
				regs[in.a] = boolVal(compare(regs[in.b], regs[in.c]) != 0)
			case opLt:
				regs[in.a] = boolVal(compare(regs[in.b], regs[in.c]) < 0)
			case opLe:
				regs[in.a] = boolVal(compare(regs[in.b], regs[in.c]) <= 0)
			case opGt:
				regs[in.a] = boolVal(compare(regs[in.b], regs[in.c]) > 0)
			case opGe:
				regs[in.a] = boolVal(compare(regs[in.b], regs[in.c]) >= 0)

			case opEqJf:
				if compare(regs[in.b], regs[in.c]) != 0 {
					f.ip = in.n
					continue
				}
			case opNeJf:
				if compare(regs[in.b], regs[in.c]) == 0 {
					f.ip = in.n
					continue
				}
			case opLtJf:
				if compare(regs[in.b], regs[in.c]) >= 0 {
					f.ip = in.n
					continue
				}
			case opLeJf:
				if compare(regs[in.b], regs[in.c]) > 0 {
					f.ip = in.n
					continue
				}
			case opGtJf:
				if compare(regs[in.b], regs[in.c]) <= 0 {
					f.ip = in.n
					continue
				}
			case opGeJf:
				if compare(regs[in.b], regs[in.c]) < 0 {
					f.ip = in.n
					continue
				}

			case opBuiltin:
				v, err := c.vmBuiltin(in, regs)
				if err != nil {
					return lv.fail(err)
				}
				regs[in.a] = v

			case opCall:
				switch lv.call(in, regs, ph) {
				case stepSuspend:
					return LaneSuspended
				case stepErr:
					return lv.fail(lv.err)
				case stepFrame:
					continue frames
				}

			case opRet:
				var v Value
				if in.a >= 0 {
					v = regs[in.a]
				}
				lv.stack = lv.stack[:len(lv.stack)-1]
				c.release(co, f.fr)
				c.depth--
				if len(lv.stack) == 0 {
					// main returned: the run ends with Context.flush.
					lv.phase = phFinal
					if !lv.flushPending() {
						return LaneSuspended
					}
					return lv.finish()
				}
				pf := &lv.stack[len(lv.stack)-1]
				dst := pf.co.ins[pf.ip].a
				if co.fn.Result != nil {
					pf.fr.regs[dst] = coerce(v, *co.fn.Result)
				} else {
					pf.fr.regs[dst] = Value{}
				}
				pf.ip++
				continue frames

			case opForPrep:
				p := in.aux.(*forPayload)
				st := int64(1)
				if p.step >= 0 {
					st = regs[p.step].AsInt()
				}
				if st == 0 {
					return lv.fail(c.vmErr(in.pc, "for %s: zero step", p.varName))
				}
				regs[p.base] = IntVal(regs[p.from].AsInt())
				regs[p.base+1] = IntVal(regs[p.to].AsInt())
				regs[p.base+2] = IntVal(st)

			case opForCheck:
				i, hi, st := regs[in.a].I, regs[in.a+1].I, regs[in.a+2].I
				if (st > 0 && i <= hi) || (st < 0 && i >= hi) {
					regs[in.b] = IntVal(i)
				} else {
					f.ip = in.n
					continue
				}

			case opForNext:
				st := regs[in.a+2].I
				i := regs[in.a].I + st
				regs[in.a].I = i
				if (st > 0 && i <= regs[in.a+1].I) || (st < 0 && i >= regs[in.a+1].I) {
					regs[in.b] = IntVal(i)
					f.ip = in.n + 1 // skip the entry check, straight to the body
					continue
				}
				// Loop finished: fall through to the exit label bound just after.

			case opAllocArr:
				p := in.aux.(*allocPayload)
				pa := &f.fr.arrays[p.arr]
				if cap(pa.cache) >= p.size {
					pa.data = pa.cache[:p.size]
				} else {
					pa.data = make([]Value, p.size)
					pa.cache = pa.data
				}
				zero := coerce(Value{}, p.base)
				for i := range pa.data {
					pa.data[i] = zero
				}
				pa.base = p.base
				pa.dims = p.dims

			case opArrNil:
				if f.fr.arrays[in.a].data == nil {
					return lv.fail(c.vmErr(in.pc, "%s", in.aux.(*failPayload).msg))
				}

			case opBounds:
				ix := int(regs[in.b].AsInt())
				if ix < 0 || ix >= int(in.n) {
					bp := in.aux.(*boundsPayload)
					return lv.fail(c.vmErr(in.pc, "%s: index %d out of range [0,%d) in dimension %d", bp.name, ix, int(in.n), bp.dim))
				}

			case opFail:
				return lv.fail(c.vmErr(in.pc, "%s", in.aux.(*failPayload).msg))

			case opDivGuardReg:
				if rhs := regs[in.b]; !rhs.Float && rhs.I == 0 && !regs[in.a].Float {
					return lv.fail(c.vmErr(in.pc, "integer division by zero in /="))
				}

			case opDivGuardInt:
				if rhs := regs[in.b]; !rhs.Float && rhs.I == 0 {
					return lv.fail(c.vmErr(in.pc, "integer division by zero in /="))
				}

			case opAsgLocal:
				cur := regs[in.a]
				regs[in.a] = applyOp(cur, parc.AssignOp(in.n), regs[in.b], cur.Float)

			case opLoadArr, opAsgArr:
				switch lv.privAccess(in, f, regs, ph) {
				case stepSuspend:
					return LaneSuspended
				case stepErr:
					return lv.fail(lv.err)
				}

			case opLoadShared:
				switch lv.loadShared(in, regs, ph) {
				case stepSuspend:
					return LaneSuspended
				case stepErr:
					return lv.fail(lv.err)
				}

			case opAsgShared:
				switch lv.asgShared(in, regs, ph) {
				case stepSuspend:
					return LaneSuspended
				case stepErr:
					return lv.fail(lv.err)
				}

			case opBarrier, opLock, opUnlock, opPrint, opDirEmit, opDirNil:
				switch lv.machineCall(in, regs, ph) {
				case stepSuspend:
					return LaneSuspended
				case stepAdvanceSuspend:
					f.ip++
					return LaneSuspended
				}

			case opDirBegin:
				c.dirLos = c.dirLos[:0]
				c.dirHis = c.dirHis[:0]

			case opDirDim:
				p := in.aux.(*dirPayload)
				lo := int(regs[in.a].AsInt())
				hi := lo
				if in.b >= 0 {
					hi = int(regs[in.b].AsInt())
				}
				lo = max(lo, 0)
				hi = min(hi, p.decl.DimSizes[in.c]-1)
				if lo > hi {
					f.ip = in.n // empty after clamping
					continue
				}
				c.dirLos = append(c.dirLos, lo)
				c.dirHis = append(c.dirHis, hi)

			default:
				return lv.fail(c.vmErr(in.pc, "vm: bad opcode %d", in.op))
			}
			f.ip++
		}
	}
}
