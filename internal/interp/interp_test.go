package interp

import (
	"strings"
	"testing"

	"cachier/internal/memory"
	"cachier/internal/parc"
)

// mockMachine records every callback for assertions. It executes each node
// to completion sequentially (no scheduling), which is fine for
// single-processor semantics tests.
type mockMachine struct {
	accesses   []mockAccess
	directives []mockDirective
	barriers   []int
	locks      []int64
	unlocks    []int64
	work       uint64
	printed    []string
}

type mockAccess struct {
	node  int
	write bool
	addr  uint64
	pc    int
}

type mockDirective struct {
	node   int
	kind   parc.AnnKind
	ranges []AddrRange
	pc     int
}

func (m *mockMachine) Access(node int, write bool, addr uint64, pc int) {
	m.accesses = append(m.accesses, mockAccess{node, write, addr, pc})
}
func (m *mockMachine) Directive(node int, kind parc.AnnKind, ranges []AddrRange, pc int) {
	// Ranges are only valid during the call; retain a copy.
	var cp []AddrRange
	if ranges != nil {
		cp = append([]AddrRange{}, ranges...)
	}
	m.directives = append(m.directives, mockDirective{node, kind, cp, pc})
}
func (m *mockMachine) Barrier(node int, pc int)          { m.barriers = append(m.barriers, pc) }
func (m *mockMachine) Lock(node int, id int64, pc int)   { m.locks = append(m.locks, id) }
func (m *mockMachine) Unlock(node int, id int64, pc int) { m.unlocks = append(m.unlocks, id) }
func (m *mockMachine) Work(node int, cycles uint64)      { m.work += cycles }
func (m *mockMachine) Print(node int, text string)       { m.printed = append(m.printed, text) }

// run executes src on a single simulated processor and returns the machine
// record, store, and layout.
func run(t *testing.T, src string) (*mockMachine, *Store, *memory.Layout, error) {
	t.Helper()
	prog, err := parc.Parse(src)
	if err != nil {
		t.Fatalf("parse: %v", err)
	}
	layout, err := memory.New(prog, 32)
	if err != nil {
		t.Fatal(err)
	}
	store := NewStore(layout.TotalBytes())
	m := &mockMachine{}
	ctx := NewContext(prog, store, m, 0, 1)
	return m, store, layout, ctx.Run()
}

func mustRun(t *testing.T, src string) (*mockMachine, *Store, *memory.Layout) {
	t.Helper()
	m, s, l, err := run(t, src)
	if err != nil {
		t.Fatalf("run: %v", err)
	}
	return m, s, l
}

func loadFloat(s *Store, l *memory.Layout, name string, ix ...int) float64 {
	addr, err := l.AddrOf(name, ix...)
	if err != nil {
		panic(err)
	}
	return FromBits(s.Load(addr), true).F
}

func loadInt(s *Store, l *memory.Layout, name string, ix ...int) int64 {
	addr, err := l.AddrOf(name, ix...)
	if err != nil {
		panic(err)
	}
	return FromBits(s.Load(addr), false).I
}

func TestArithmeticAndControlFlow(t *testing.T) {
	_, s, l := mustRun(t, `
shared int out[8];
func main() {
    out[0] = 1 + 2 * 3;
    out[1] = (1 + 2) * 3;
    out[2] = 17 % 5;
    out[3] = 17 / 5;
    if 1 < 2 && 2 < 3 { out[4] = 1; } else { out[4] = 2; }
    var i int = 0;
    var acc int = 0;
    while i < 5 { acc += i; i += 1; }
    out[5] = acc;
    var acc2 int = 0;
    for k = 1 to 10 step 3 { acc2 += k; }
    out[6] = acc2;
    var acc3 int = 0;
    for k = 5 to 1 step -2 { acc3 += k; }
    out[7] = acc3;
}
`)
	want := []int64{7, 9, 2, 3, 1, 10, 22, 9}
	for i, w := range want {
		if got := loadInt(s, l, "out", i); got != w {
			t.Errorf("out[%d] = %d, want %d", i, got, w)
		}
	}
}

func TestFloatsAndBuiltins(t *testing.T) {
	_, s, l := mustRun(t, `
shared float out[8];
func main() {
    out[0] = 1.5 + 2.25;
    out[1] = sqrt(16.0);
    out[2] = abs(-3.5);
    out[3] = min(2.0, 7.0);
    out[4] = max(2.0, 7.0);
    out[5] = float(7 / 2);
    out[6] = floor(2.9);
    out[7] = float(int(3.99));
}
`)
	want := []float64{3.75, 4, 3.5, 2, 7, 3, 2, 3}
	for i, w := range want {
		if got := loadFloat(s, l, "out", i); got != w {
			t.Errorf("out[%d] = %g, want %g", i, got, w)
		}
	}
}

func TestFunctionsAndRecursionReturn(t *testing.T) {
	_, s, l := mustRun(t, `
shared int out[3];
func fib(n int) int {
    if n < 2 { return n; }
    return fib(n - 1) + fib(n - 2);
}
func addTo(x int, y int) int { return x + y; }
func noret() int { }
func main() {
    out[0] = fib(10);
    out[1] = addTo(3, 4);
    out[2] = noret() + 9;
}
`)
	if got := loadInt(s, l, "out", 0); got != 55 {
		t.Errorf("fib(10) = %d", got)
	}
	if got := loadInt(s, l, "out", 1); got != 7 {
		t.Errorf("addTo = %d", got)
	}
	if got := loadInt(s, l, "out", 2); got != 9 {
		t.Errorf("zero-value fallthrough = %d", got)
	}
}

func TestPrivateArraysStayPrivate(t *testing.T) {
	m, s, l := mustRun(t, `
shared int out[1];
func main() {
    var buf int[10];
    for i = 0 to 9 { buf[i] = i * i; }
    var sum int = 0;
    for i = 0 to 9 { sum += buf[i]; }
    out[0] = sum;
}
`)
	if got := loadInt(s, l, "out", 0); got != 285 {
		t.Errorf("sum = %d", got)
	}
	// Only the single shared store should reach the machine.
	if len(m.accesses) != 1 || !m.accesses[0].write {
		t.Errorf("accesses = %+v", m.accesses)
	}
}

func TestSharedAccessesReported(t *testing.T) {
	m, _, l := mustRun(t, `
shared float A[4][4];
shared float x;
func main() {
    A[1][2] = 5.0;
    x = A[1][2] + 1.0;
    A[1][2] += 1.0;
}
`)
	a12, _ := l.AddrOf("A", 1, 2)
	xaddr, _ := l.AddrOf("x")
	type acc struct {
		write bool
		addr  uint64
	}
	var got []acc
	for _, a := range m.accesses {
		got = append(got, acc{a.write, a.addr})
	}
	want := []acc{
		{true, a12},  // A[1][2] = 5.0
		{false, a12}, // read A[1][2]
		{true, xaddr},
		{false, a12}, // compound read
		{true, a12},  // compound write
	}
	if len(got) != len(want) {
		t.Fatalf("got %d accesses %v, want %d", len(got), got, len(want))
	}
	for i := range want {
		if got[i] != want[i] {
			t.Errorf("access %d = %+v, want %+v", i, got[i], want[i])
		}
	}
}

func TestAccessPCMatchesStatement(t *testing.T) {
	m, _, _ := mustRun(t, `
shared int x;
func main() {
    x = 1;
}
`)
	prog := parc.MustParse(`
shared int x;
func main() {
    x = 1;
}
`)
	// Find the assignment's statement ID in an identically parsed program.
	var wantPC = -1
	parc.WalkProgram(prog, func(s parc.Stmt) bool {
		if _, ok := s.(*parc.AssignStmt); ok {
			wantPC = s.ID()
		}
		return true
	})
	if len(m.accesses) != 1 || m.accesses[0].pc != wantPC {
		t.Errorf("accesses = %+v, want pc %d", m.accesses, wantPC)
	}
}

func TestBarrierLockUnlockPrint(t *testing.T) {
	m, _, _ := mustRun(t, `
func main() {
    barrier;
    lock(3);
    unlock(3);
    barrier;
    print("v=%d f=%f g=%g pct=%%", 42, 1.5, 0.25);
}
`)
	if len(m.barriers) != 2 {
		t.Errorf("barriers = %v", m.barriers)
	}
	if len(m.locks) != 1 || m.locks[0] != 3 || len(m.unlocks) != 1 {
		t.Errorf("locks = %v unlocks = %v", m.locks, m.unlocks)
	}
	if len(m.printed) != 1 || m.printed[0] != "v=42 f=1.500000 g=0.25 pct=%" {
		t.Errorf("printed = %q", m.printed)
	}
}

func TestCICODirectiveRanges(t *testing.T) {
	m, _, l := mustRun(t, `
const N = 4;
shared float A[N][N];
func main() {
    check_out_x A[1][0:N-1];
    check_in A[1][2];
    check_out_s A[0:1][1:2];
}
`)
	if len(m.directives) != 3 {
		t.Fatalf("directives = %+v", m.directives)
	}
	a10, _ := l.AddrOf("A", 1, 0)
	a13, _ := l.AddrOf("A", 1, 3)
	d := m.directives[0]
	if d.kind != parc.AnnCheckOutX || len(d.ranges) != 1 || d.ranges[0].Lo != a10 || d.ranges[0].Hi != a13 {
		t.Errorf("row range: %+v", d)
	}
	// 2-D range: one contiguous run per row.
	d = m.directives[2]
	if d.kind != parc.AnnCheckOutS || len(d.ranges) != 2 {
		t.Fatalf("2-D range: %+v", d)
	}
	a01, _ := l.AddrOf("A", 0, 1)
	a02, _ := l.AddrOf("A", 0, 2)
	a11, _ := l.AddrOf("A", 1, 1)
	if d.ranges[0] != (AddrRange{a01, a02}) || d.ranges[1].Lo != a11 {
		t.Errorf("2-D runs: %+v", d.ranges)
	}
}

func TestCICOClampsOutOfRange(t *testing.T) {
	m, _, l := mustRun(t, `
const N = 4;
shared float A[N];
func main() {
    check_out_x A[-3:99];
    check_in A[7:9];
}
`)
	if len(m.directives) != 2 {
		t.Fatalf("directives = %+v", m.directives)
	}
	a0, _ := l.AddrOf("A", 0)
	a3, _ := l.AddrOf("A", 3)
	if r := m.directives[0].ranges; len(r) != 1 || r[0] != (AddrRange{a0, a3}) {
		t.Errorf("clamped range: %+v", r)
	}
	if r := m.directives[1].ranges; r != nil {
		t.Errorf("fully out-of-range annotation produced %+v", r)
	}
}

func TestSharedScalar(t *testing.T) {
	_, s, l := mustRun(t, `
shared int counter;
func main() {
    counter = 5;
    counter += 2;
}
`)
	if got := loadInt(s, l, "counter"); got != 7 {
		t.Errorf("counter = %d", got)
	}
}

func TestPidAndNprocs(t *testing.T) {
	prog := parc.MustParse(`
shared int out[4];
func main() {
    out[pid()] = 100 + pid() * nprocs();
}
`)
	layout, _ := memory.New(prog, 32)
	store := NewStore(layout.TotalBytes())
	for node := 0; node < 4; node++ {
		m := &mockMachine{}
		if err := NewContext(prog, store, m, node, 4).Run(); err != nil {
			t.Fatal(err)
		}
	}
	for i := 0; i < 4; i++ {
		addr, _ := layout.AddrOf("out", i)
		if got := FromBits(store.Load(addr), false).I; got != int64(100+i*4) {
			t.Errorf("out[%d] = %d", i, got)
		}
	}
}

func TestRndDeterministicPerNode(t *testing.T) {
	src := `
shared float out[2];
func main() {
    out[pid()] = rnd();
}
`
	prog := parc.MustParse(src)
	layout, _ := memory.New(prog, 32)
	vals := make([]float64, 2)
	for round := 0; round < 2; round++ {
		store := NewStore(layout.TotalBytes())
		for node := 0; node < 2; node++ {
			if err := NewContext(prog, store, &mockMachine{}, node, 2).Run(); err != nil {
				t.Fatal(err)
			}
		}
		a0, _ := layout.AddrOf("out", 0)
		a1, _ := layout.AddrOf("out", 1)
		v0 := FromBits(store.Load(a0), true).F
		v1 := FromBits(store.Load(a1), true).F
		if v0 == v1 {
			t.Error("nodes produced identical random values")
		}
		if v0 < 0 || v0 >= 1 || v1 < 0 || v1 >= 1 {
			t.Errorf("rnd out of [0,1): %g %g", v0, v1)
		}
		if round == 0 {
			vals[0], vals[1] = v0, v1
		} else if vals[0] != v0 || vals[1] != v1 {
			t.Error("rnd not deterministic across runs")
		}
	}
}

func TestRuntimeErrors(t *testing.T) {
	cases := []struct {
		name string
		src  string
		want string
	}{
		{"index oob", `shared int a[4]; func main() { a[4] = 1; }`, "out of range"},
		{"negative index", `shared int a[4]; func main() { var i int = -1; a[i] = 1; }`, "out of range"},
		{"div zero", `shared int a[4]; func main() { var z int = 0; a[0] = 1 / z; }`, "division by zero"},
		{"mod zero", `shared int a[4]; func main() { var z int = 0; a[0] = 1 % z; }`, "modulo by zero"},
		{"mod float", `shared int a[4]; func main() { a[0] = int(1.5 % 2.0); }`, "integer"},
		{"zero step", `func main() { var s int = 0; for i = 0 to 3 step s { } }`, "zero step"},
		{"compound div zero", `shared int a[4]; func main() { var z int = 0; a[0] = 4; a[0] /= z; }`, "division by zero"},
		{"recursion", `func r() { r(); } func main() { r(); }`, "call depth"},
	}
	for _, c := range cases {
		_, _, _, err := run(t, c.src)
		if err == nil {
			t.Errorf("%s: no error", c.name)
			continue
		}
		if !strings.Contains(err.Error(), c.want) {
			t.Errorf("%s: error %q does not contain %q", c.name, err, c.want)
		}
	}
}

func TestWorkCharged(t *testing.T) {
	m, _, _ := mustRun(t, `
func main() {
    var acc int = 0;
    for i = 0 to 999 { acc += i; }
    barrier;
}
`)
	if m.work == 0 {
		t.Error("no local work charged")
	}
	// 1000 iterations at several units each.
	if m.work < 2000 {
		t.Errorf("work = %d, implausibly small", m.work)
	}
}

func TestShortCircuitSkipsSharedAccess(t *testing.T) {
	m, _, _ := mustRun(t, `
shared int flag;
func main() {
    var x int = 0;
    if x != 0 && flag == 1 { x = 1; }
    if x == 0 || flag == 1 { x = 2; }
}
`)
	if len(m.accesses) != 0 {
		t.Errorf("short-circuit evaluated shared operand: %+v", m.accesses)
	}
}
