package interp

import "testing"

func TestCompoundOpsOnPrivateArrays(t *testing.T) {
	_, s, l := mustRun(t, `
shared float out[6];
func main() {
    var a float[4];
    a[0] = 10.0;
    a[0] += 2.5;
    a[1] = 10.0;
    a[1] -= 2.5;
    a[2] = 10.0;
    a[2] *= 2.0;
    a[3] = 10.0;
    a[3] /= 4.0;
    out[0] = a[0];
    out[1] = a[1];
    out[2] = a[2];
    out[3] = a[3];
    var b int[2];
    b[0] = 7;
    b[0] /= 2;
    b[1] = 7;
    b[1] *= -3;
    out[4] = float(b[0]);
    out[5] = float(b[1]);
}
`)
	want := []float64{12.5, 7.5, 20, 2.5, 3, -21}
	for i, w := range want {
		if got := loadFloat(s, l, "out", i); got != w {
			t.Errorf("out[%d] = %g, want %g", i, got, w)
		}
	}
}

func TestCompoundOpsOnSharedArrays(t *testing.T) {
	_, s, l := mustRun(t, `
shared float f[4];
shared int n[4];
func main() {
    f[0] = 8.0;
    f[0] /= 3.0;
    n[0] = 8;
    n[0] -= 3;
    n[1] = 8;
    n[1] *= 3;
    // Mixed: int destination truncates a float RHS.
    n[2] = 5;
    n[2] += int(2.9);
    // Float destination with int RHS promotes.
    f[1] = 1.5;
    f[1] += 2;
}
`)
	if got := loadFloat(s, l, "f", 0); got != 8.0/3.0 {
		t.Errorf("f[0] = %g", got)
	}
	if got := loadInt(s, l, "n", 0); got != 5 {
		t.Errorf("n[0] = %d", got)
	}
	if got := loadInt(s, l, "n", 1); got != 24 {
		t.Errorf("n[1] = %d", got)
	}
	if got := loadInt(s, l, "n", 2); got != 7 {
		t.Errorf("n[2] = %d", got)
	}
	if got := loadFloat(s, l, "f", 1); got != 3.5 {
		t.Errorf("f[1] = %g", got)
	}
}

func TestCompoundFloatDivByZeroIsIEEE(t *testing.T) {
	// Float division by zero follows IEEE (infinity), no runtime error.
	_, s, l := mustRun(t, `
shared float f[1];
func main() {
    var z float = 0.0;
    f[0] = 1.0;
    f[0] /= z;
}
`)
	if got := loadFloat(s, l, "f", 0); got <= 1e300 {
		t.Errorf("f[0] = %g, want +Inf", got)
	}
}

func TestPrivateScalarCompound(t *testing.T) {
	_, s, l := mustRun(t, `
shared int out;
func main() {
    var x int = 100;
    x += 5;
    x -= 3;
    x *= 2;
    x /= 4;
    out = x;
}
`)
	if got := loadInt(s, l, "out"); got != 51 {
		t.Errorf("out = %d", got)
	}
}
