package interp

import (
	"fmt"
	"math"

	"cachier/internal/parc"
)

// vmFrame is one compiled-function activation: registers (the first
// fn.NumScalars are the checker's scalar slots, synthetic counters and
// temporaries follow) and private array storage. Frames are pooled
// per-function on the Context, and released arrays keep their backing
// slice, so steady-state execution allocates nothing.
type vmFrame struct {
	regs   []Value
	arrays []privArray
}

func (c *Context) acquire(co *fnCode) *vmFrame {
	pool := &c.pools[co.idx]
	if n := len(*pool); n > 0 {
		fr := (*pool)[n-1]
		*pool = (*pool)[:n-1]
		return fr
	}
	fr := &vmFrame{
		regs:   make([]Value, co.nregs),
		arrays: make([]privArray, co.narrs),
	}
	copy(fr.regs[co.poolBase:], co.poolVals)
	return fr
}

// release returns a frame to its pool. Only the named-scalar and
// synthetic-counter prefix is cleared: constant-pool registers keep their
// values (they are never written after acquire), and temporaries are always
// written before they are read.
func (c *Context) release(co *fnCode, fr *vmFrame) {
	clear(fr.regs[:co.clearRegs])
	for i := range fr.arrays {
		fr.arrays[i].data = nil // keep cache capacity for the next activation
	}
	c.pools[co.idx] = append(c.pools[co.idx], fr)
}

// vmErr builds a RuntimeError at the given statement ID, recovering the
// source position the tree-walker would have had in curPos.
func (c *Context) vmErr(pc int32, format string, args ...any) error {
	var pos parc.Pos
	if s := c.prog.Stmts[int(pc)]; s != nil {
		pos = s.Position()
	}
	return &RuntimeError{Node: c.node, Pos: pos, PC: int(pc), Msg: fmt.Sprintf(format, args...)}
}

// chargeUnits replays n unit work charges, flushing at exactly the same
// boundary the tree-walker's per-unit work(1) calls would: pending crosses
// the limit one unit at a time, so every flush reports exactly
// workFlushLimit cycles.
func (c *Context) chargeUnits(n uint16) {
	tot := c.pending + uint64(n)
	for tot >= workFlushLimit {
		c.mach.Work(c.node, workFlushLimit)
		tot -= workFlushLimit
	}
	c.pending = tot
}

// memOff computes a memory access's flattened element offset, replaying the
// per-subscript work charges and bounds checks that were folded into the
// access op in exactly the tree-walker's order: for each term, its pending
// unit charges, then the index read, then the check; charges that followed
// the last folded check (constant subscripts) come after all checks.
// Callers handle the zero-term case inline; the single-subscript form —
// the bulk of array traffic — avoids the loop entirely.
func (c *Context) memOff(ma *memAccess, regs []Value, pc int32) (int64, error) {
	if len(ma.terms) == 1 {
		t := &ma.terms[0]
		if t.nwork != 0 {
			if tot := c.pending + uint64(t.nwork); tot < workFlushLimit {
				c.pending = tot
			} else {
				c.chargeUnits(t.nwork)
			}
		}
		ix := regs[t.reg].AsInt()
		if t.size > 0 && uint64(ix) >= uint64(t.size) {
			return 0, c.boundsErr(ma, t, ix, pc)
		}
		if ma.postWork != 0 {
			if tot := c.pending + uint64(ma.postWork); tot < workFlushLimit {
				c.pending = tot
			} else {
				c.chargeUnits(ma.postWork)
			}
		}
		return ma.constOff + ix*t.stride, nil
	}
	off := ma.constOff
	for i := range ma.terms {
		t := &ma.terms[i]
		if t.nwork != 0 {
			c.chargeUnits(t.nwork)
		}
		ix := regs[t.reg].AsInt()
		if t.size > 0 && uint64(ix) >= uint64(t.size) {
			return 0, c.boundsErr(ma, t, ix, pc)
		}
		off += ix * t.stride
	}
	if ma.postWork != 0 {
		c.chargeUnits(ma.postWork)
	}
	return off, nil
}

func (c *Context) boundsErr(ma *memAccess, t *idxTerm, ix int64, pc int32) error {
	return c.vmErr(pc, "%s: index %d out of range [0,%d) in dimension %d", ma.name, ix, t.size, t.dim)
}

// callCompiled invokes a compiled function, coercing arguments from the
// caller's registers per the parameter types.
func (c *Context) callCompiled(pc int32, p *callPayload, caller []Value) (Value, error) {
	co := p.code
	if c.depth >= maxCallDepth {
		return Value{}, c.vmErr(pc, "call depth exceeds %d (runaway recursion in %s?)", maxCallDepth, co.fn.Name)
	}
	c.depth++
	fr := c.acquire(co)
	for i := range co.fn.Params {
		fr.regs[i] = coerce(caller[p.args[i]], co.fn.Params[i].Base)
	}
	v, err := c.exec(co, fr)
	c.depth--
	if err != nil {
		return Value{}, err
	}
	c.release(co, fr)
	if co.fn.Result != nil {
		return coerce(v, *co.fn.Result), nil
	}
	return Value{}, nil
}

// runVM executes main through the compiled program. The caller has already
// verified that main compiled.
func (c *Context) runVM(pcm *progCode, main *fnCode) error {
	if c.pools == nil || len(c.pools) < pcm.nfns {
		c.pools = make([][]*vmFrame, pcm.nfns)
	}
	c.depth++
	fr := c.acquire(main)
	_, err := c.exec(main, fr)
	c.depth--
	if err != nil {
		return err
	}
	c.release(main, fr)
	c.flush()
	return nil
}

// exec is the VM dispatch loop. It mirrors the tree-walker's observable
// behaviour exactly; see the contract at the top of compile.go.
func (c *Context) exec(co *fnCode, fr *vmFrame) (Value, error) {
	ins := co.ins
	regs := fr.regs
	ip := 0
	// Dispatched-op counting for the observability layer: accumulate into a
	// local so the hot loop pays one register increment when enabled and a
	// single predictable untaken branch when disabled, folding into the
	// context only once per activation (the deferred add also covers every
	// error return).
	count := c.countOps
	var nops uint64
	if count {
		defer func() { c.ops += nops }()
	}
	for {
		in := &ins[ip]
		if count {
			nops++
		}
		if in.nwork != 0 {
			// Inlined chargeUnits fast path: stay below the flush limit.
			if tot := c.pending + uint64(in.nwork); tot < workFlushLimit {
				c.pending = tot
			} else {
				c.chargeUnits(in.nwork)
			}
		}
		switch in.op {
		case opNop:

		case opConst:
			regs[in.a] = in.imm

		case opCoerce:
			regs[in.a] = coerce(regs[in.b], parc.BaseType(in.n))

		case opJump:
			ip = int(in.n)
			continue

		case opJz:
			if !regs[in.a].Truthy() {
				ip = int(in.n)
				continue
			}

		case opSCAnd:
			if !regs[in.b].Truthy() {
				regs[in.a] = IntVal(0)
				ip = int(in.n)
				continue
			}

		case opSCOr:
			if regs[in.b].Truthy() {
				regs[in.a] = IntVal(1)
				ip = int(in.n)
				continue
			}

		case opTruthy:
			regs[in.a] = boolVal(regs[in.b].Truthy())

		case opNeg:
			if x := regs[in.b]; x.Float {
				regs[in.a] = FloatVal(-x.F)
			} else {
				regs[in.a] = IntVal(-x.I)
			}

		case opNot:
			if regs[in.b].Truthy() {
				regs[in.a] = IntVal(0)
			} else {
				regs[in.a] = IntVal(1)
			}

		case opAdd:
			x, y := regs[in.b], regs[in.c]
			if x.Float || y.Float {
				regs[in.a] = FloatVal(x.AsFloat() + y.AsFloat())
			} else {
				regs[in.a] = IntVal(x.I + y.I)
			}

		case opSub:
			x, y := regs[in.b], regs[in.c]
			if x.Float || y.Float {
				regs[in.a] = FloatVal(x.AsFloat() - y.AsFloat())
			} else {
				regs[in.a] = IntVal(x.I - y.I)
			}

		case opMul:
			x, y := regs[in.b], regs[in.c]
			if x.Float || y.Float {
				regs[in.a] = FloatVal(x.AsFloat() * y.AsFloat())
			} else {
				regs[in.a] = IntVal(x.I * y.I)
			}

		case opDiv:
			x, y := regs[in.b], regs[in.c]
			if x.Float || y.Float {
				regs[in.a] = FloatVal(x.AsFloat() / y.AsFloat())
			} else if y.I == 0 {
				return Value{}, c.vmErr(in.pc, "integer division by zero")
			} else {
				regs[in.a] = IntVal(x.I / y.I)
			}

		case opMod:
			x, y := regs[in.b], regs[in.c]
			if x.Float || y.Float {
				return Value{}, c.vmErr(in.pc, "%% requires integer operands")
			}
			if y.I == 0 {
				return Value{}, c.vmErr(in.pc, "integer modulo by zero")
			}
			regs[in.a] = IntVal(x.I % y.I)

		case opEq:
			regs[in.a] = boolVal(compare(regs[in.b], regs[in.c]) == 0)
		case opNe:
			regs[in.a] = boolVal(compare(regs[in.b], regs[in.c]) != 0)
		case opLt:
			regs[in.a] = boolVal(compare(regs[in.b], regs[in.c]) < 0)
		case opLe:
			regs[in.a] = boolVal(compare(regs[in.b], regs[in.c]) <= 0)
		case opGt:
			regs[in.a] = boolVal(compare(regs[in.b], regs[in.c]) > 0)
		case opGe:
			regs[in.a] = boolVal(compare(regs[in.b], regs[in.c]) >= 0)

		case opEqJf:
			if compare(regs[in.b], regs[in.c]) != 0 {
				ip = int(in.n)
				continue
			}
		case opNeJf:
			if compare(regs[in.b], regs[in.c]) == 0 {
				ip = int(in.n)
				continue
			}
		case opLtJf:
			if compare(regs[in.b], regs[in.c]) >= 0 {
				ip = int(in.n)
				continue
			}
		case opLeJf:
			if compare(regs[in.b], regs[in.c]) > 0 {
				ip = int(in.n)
				continue
			}
		case opGtJf:
			if compare(regs[in.b], regs[in.c]) <= 0 {
				ip = int(in.n)
				continue
			}
		case opGeJf:
			if compare(regs[in.b], regs[in.c]) < 0 {
				ip = int(in.n)
				continue
			}

		case opBuiltin:
			v, err := c.vmBuiltin(in, regs)
			if err != nil {
				return Value{}, err
			}
			regs[in.a] = v

		case opCall:
			p := in.aux.(*callPayload)
			c.work(2)
			if p.code != nil {
				v, err := c.callCompiled(in.pc, p, regs)
				if err != nil {
					return Value{}, err
				}
				regs[in.a] = v
			} else {
				// Callee did not compile: run it on the tree-walker.
				c.curPC = int(in.pc)
				if s := c.prog.Stmts[int(in.pc)]; s != nil {
					c.curPos = s.Position()
				} else {
					c.curPos = parc.Pos{}
				}
				args := make([]Value, len(p.args))
				for i, r := range p.args {
					args[i] = regs[r]
				}
				v, err := c.call(p.fn, args)
				if err != nil {
					return Value{}, err
				}
				regs[in.a] = v
			}

		case opRet:
			if in.a >= 0 {
				return regs[in.a], nil
			}
			return Value{}, nil

		case opForPrep:
			p := in.aux.(*forPayload)
			st := int64(1)
			if p.step >= 0 {
				st = regs[p.step].AsInt()
			}
			if st == 0 {
				return Value{}, c.vmErr(in.pc, "for %s: zero step", p.varName)
			}
			regs[p.base] = IntVal(regs[p.from].AsInt())
			regs[p.base+1] = IntVal(regs[p.to].AsInt())
			regs[p.base+2] = IntVal(st)

		case opForCheck:
			i, hi, st := regs[in.a].I, regs[in.a+1].I, regs[in.a+2].I
			if (st > 0 && i <= hi) || (st < 0 && i >= hi) {
				regs[in.b] = IntVal(i)
			} else {
				ip = int(in.n)
				continue
			}

		case opForNext:
			st := regs[in.a+2].I
			i := regs[in.a].I + st
			regs[in.a].I = i
			if (st > 0 && i <= regs[in.a+1].I) || (st < 0 && i >= regs[in.a+1].I) {
				regs[in.b] = IntVal(i)
				ip = int(in.n) + 1 // skip the entry check, straight to the body
				continue
			}
			// Loop finished: fall through to the exit label bound just after.

		case opAllocArr:
			p := in.aux.(*allocPayload)
			pa := &fr.arrays[p.arr]
			if cap(pa.cache) >= p.size {
				pa.data = pa.cache[:p.size]
			} else {
				pa.data = make([]Value, p.size)
				pa.cache = pa.data
			}
			zero := coerce(Value{}, p.base)
			for i := range pa.data {
				pa.data[i] = zero
			}
			pa.base = p.base
			pa.dims = p.dims

		case opArrNil:
			if fr.arrays[in.a].data == nil {
				return Value{}, c.vmErr(in.pc, "%s", in.aux.(*failPayload).msg)
			}

		case opBounds:
			ix := int(regs[in.b].AsInt())
			if ix < 0 || ix >= int(in.n) {
				bp := in.aux.(*boundsPayload)
				return Value{}, c.vmErr(in.pc, "%s: index %d out of range [0,%d) in dimension %d", bp.name, ix, int(in.n), bp.dim)
			}

		case opFail:
			return Value{}, c.vmErr(in.pc, "%s", in.aux.(*failPayload).msg)

		case opDivGuardReg:
			if rhs := regs[in.b]; !rhs.Float && rhs.I == 0 && !regs[in.a].Float {
				return Value{}, c.vmErr(in.pc, "integer division by zero in /=")
			}

		case opDivGuardInt:
			if rhs := regs[in.b]; !rhs.Float && rhs.I == 0 {
				return Value{}, c.vmErr(in.pc, "integer division by zero in /=")
			}

		case opAsgLocal:
			cur := regs[in.a]
			regs[in.a] = applyOp(cur, parc.AssignOp(in.n), regs[in.b], cur.Float)

		case opLoadArr:
			ma := in.aux.(*memAccess)
			off, err := c.memOff(ma, regs, in.pc)
			if err != nil {
				return Value{}, err
			}
			c.privReads++
			regs[in.a] = fr.arrays[ma.arr].data[off]

		case opAsgArr:
			ma := in.aux.(*memAccess)
			off, err := c.memOff(ma, regs, in.pc)
			if err != nil {
				return Value{}, err
			}
			pa := &fr.arrays[ma.arr]
			if ma.assignOp != parc.OpSet {
				c.privReads++
			}
			c.privWrites++
			pa.data[off] = applyOp(pa.data[off], ma.assignOp, regs[in.b], ma.isFloat)

		case opLoadShared:
			ma := in.aux.(*memAccess)
			off := ma.constOff
			if ma.terms != nil {
				var err error
				if off, err = c.memOff(ma, regs, in.pc); err != nil {
					return Value{}, err
				}
			}
			addr := ma.decl.BaseAddr + uint64(off)*parc.ElemSize
			c.flush()
			c.mach.Access(c.node, false, addr, int(in.pc))
			regs[in.a] = FromBits(c.memLoad(addr), ma.isFloat)

		case opAsgShared:
			ma := in.aux.(*memAccess)
			off := ma.constOff
			if ma.terms != nil {
				var err error
				if off, err = c.memOff(ma, regs, in.pc); err != nil {
					return Value{}, err
				}
			}
			addr := ma.decl.BaseAddr + uint64(off)*parc.ElemSize
			var cur Value
			if ma.assignOp != parc.OpSet {
				// Compound assignment reads the old value first.
				c.flush()
				c.mach.Access(c.node, false, addr, int(in.pc))
				cur = FromBits(c.memLoad(addr), ma.isFloat)
			}
			out := applyOp(cur, ma.assignOp, regs[in.b], ma.isFloat)
			c.flush()
			c.mach.Access(c.node, true, addr, int(in.pc))
			c.memStore(addr, out.Bits())

		case opBarrier:
			c.flush()
			c.mach.Barrier(c.node, int(in.pc))

		case opLock:
			c.flush()
			c.mach.Lock(c.node, regs[in.a].AsInt(), int(in.pc))

		case opUnlock:
			c.flush()
			c.mach.Unlock(c.node, regs[in.a].AsInt(), int(in.pc))

		case opPrint:
			p := in.aux.(*printPayload)
			vals := c.printBuf[:0]
			for _, r := range p.args {
				vals = append(vals, regs[r])
			}
			c.printBuf = vals
			text := formatPrint(p.format, vals)
			c.flush()
			c.mach.Print(c.node, text)

		case opDirBegin:
			c.dirLos = c.dirLos[:0]
			c.dirHis = c.dirHis[:0]

		case opDirDim:
			p := in.aux.(*dirPayload)
			lo := int(regs[in.a].AsInt())
			hi := lo
			if in.b >= 0 {
				hi = int(regs[in.b].AsInt())
			}
			lo = max(lo, 0)
			hi = min(hi, p.decl.DimSizes[in.c]-1)
			if lo > hi {
				ip = int(in.n) // empty after clamping
				continue
			}
			c.dirLos = append(c.dirLos, lo)
			c.dirHis = append(c.dirHis, hi)

		case opDirEmit:
			p := in.aux.(*dirPayload)
			ranges := c.expandRanges(p.decl)
			c.flush()
			c.mach.Directive(c.node, p.kind, ranges, int(in.pc))

		case opDirNil:
			p := in.aux.(*dirPayload)
			c.flush()
			c.mach.Directive(c.node, p.kind, nil, int(in.pc))

		default:
			return Value{}, c.vmErr(in.pc, "vm: bad opcode %d", in.op)
		}
		ip++
	}
}

// expandRanges builds the contiguous address ranges for a directive from
// the clamped per-dimension bounds in dirLos/dirHis, reusing the Context's
// scratch buffer; the Machine contract says ranges are only valid for the
// duration of the Directive call.
func (c *Context) expandRanges(decl *parc.SharedDecl) []AddrRange {
	if len(decl.DimSizes) == 0 {
		c.rangeBuf = append(c.rangeBuf[:0], AddrRange{Lo: decl.BaseAddr, Hi: decl.BaseAddr})
		return c.rangeBuf
	}
	los, his := c.dirLos, c.dirHis
	out := c.rangeBuf[:0]
	if cap(c.dirIdx) < len(los) {
		c.dirIdx = make([]int, len(los))
	}
	idx := c.dirIdx[:len(los)]
	copy(idx, los)
	last := len(los) - 1
	for {
		off := 0
		for d := 0; d < last; d++ {
			off = off*decl.DimSizes[d] + idx[d]
		}
		loOff := off*decl.DimSizes[last] + los[last]
		hiOff := off*decl.DimSizes[last] + his[last]
		out = append(out, AddrRange{
			Lo: decl.BaseAddr + uint64(loOff)*parc.ElemSize,
			Hi: decl.BaseAddr + uint64(hiOff)*parc.ElemSize,
		})
		d := last - 1
		for ; d >= 0; d-- {
			idx[d]++
			if idx[d] <= his[d] {
				break
			}
			idx[d] = los[d]
		}
		if d < 0 {
			break
		}
	}
	c.rangeBuf = out
	return out
}

// vmBuiltin executes a builtin call; semantics are byte-for-byte those of
// the tree-walker's evalBuiltin (min/max return their argument unchanged,
// the rnd stream advances identically).
func (c *Context) vmBuiltin(in *instr, regs []Value) (Value, error) {
	switch parc.BuiltinID(in.n) {
	case parc.BuiltinPid:
		return IntVal(int64(c.node)), nil
	case parc.BuiltinNprocs:
		return IntVal(int64(c.nprocs)), nil
	case parc.BuiltinMin:
		x, y := regs[in.b], regs[in.c]
		if compare(x, y) <= 0 {
			return x, nil
		}
		return y, nil
	case parc.BuiltinMax:
		x, y := regs[in.b], regs[in.c]
		if compare(x, y) >= 0 {
			return x, nil
		}
		return y, nil
	case parc.BuiltinAbs:
		x := regs[in.b]
		if x.Float {
			return FloatVal(math.Abs(x.F)), nil
		}
		if x.I < 0 {
			return IntVal(-x.I), nil
		}
		return x, nil
	case parc.BuiltinSqrt:
		return FloatVal(math.Sqrt(regs[in.b].AsFloat())), nil
	case parc.BuiltinSin:
		return FloatVal(math.Sin(regs[in.b].AsFloat())), nil
	case parc.BuiltinCos:
		return FloatVal(math.Cos(regs[in.b].AsFloat())), nil
	case parc.BuiltinFloor:
		return FloatVal(math.Floor(regs[in.b].AsFloat())), nil
	case parc.BuiltinFloat:
		return FloatVal(regs[in.b].AsFloat()), nil
	case parc.BuiltinInt:
		return IntVal(regs[in.b].AsInt()), nil
	case parc.BuiltinRnd:
		c.rng = c.rng*6364136223846793005 + 1442695040888963407
		return FloatVal(float64(c.rng>>11) / (1 << 53)), nil
	case parc.BuiltinRndseed:
		c.rng = uint64(regs[in.b].AsInt())*0x9E3779B97F4A7C15 + 0xD1B54A32D192ED03
		return IntVal(0), nil
	}
	return Value{}, c.vmErr(in.pc, "unknown builtin")
}
