package interp

import (
	"fmt"
	"math"
	"strings"

	"cachier/internal/parc"
)

// Memory is the context's view of shared-variable storage. The default
// view is the run's *Store; the simulator's epoch-parallel engine swaps in
// a speculative view (epoch-start shadow plus the node's private writes)
// via SetMemory. Every shared load and store the interpreter performs goes
// through this interface, bracketed by the corresponding Machine.Access
// call exactly as with the plain store.
type Memory interface {
	Load(addr uint64) uint64
	StoreWord(addr uint64, bits uint64)
}

// Context executes one simulated processor's SPMD instance of a ParC
// program.
type Context struct {
	prog   *parc.Program
	store  *Store
	mem    Memory // shared-data override; nil means the plain store
	mach   Machine
	node   int
	nprocs int

	rng     uint64
	pending uint64 // unreported local work cycles
	curPC   int    // statement ID currently executing (trace PC)
	curPos  parc.Pos
	depth   int // call depth, to catch runaway recursion

	privReads  uint64 // private-array loads (for sharing-degree statistics)
	privWrites uint64 // private-array stores

	// countOps enables the dispatched-op counter for the observability
	// layer. Off by default so the measured path pays only an untaken
	// branch per dispatch; see CountOps.
	countOps bool
	ops      uint64

	// Bytecode engine state (vm.go). The tree-walker below stays the
	// reference implementation; set treeWalk to force it. laneRun routes
	// Run through the resumable lane stepper (lane.go) in run-to-completion
	// mode instead of the recursive VM; see UseLaneVM.
	treeWalk bool
	laneRun  bool
	pools    [][]*vmFrame // per-function frame free-lists
	printBuf []Value      // print argument scratch
	rangeBuf []AddrRange  // directive range scratch (valid during the call only)
	dirLos   []int        // directive per-dimension clamped bounds
	dirHis   []int
	dirIdx   []int // cartesian walk scratch
}

// UseTreeWalker forces this context onto the reference tree-walking
// interpreter instead of the compiled bytecode VM. The two are
// observationally identical (the conformance corpus and FuzzVMEquivalence
// run them differentially); the tree-walker exists as the executable
// specification and for debugging the compiler.
func (c *Context) UseTreeWalker() { c.treeWalk = true }

// UseLaneVM asks Run to execute on the resumable lane stepper (lane.go,
// with a nil yielder: run-to-completion) instead of the recursive VM. The
// two are observationally identical; the epoch-parallel engine uses this
// when lanes are requested so that both composed engines exercise the same
// interpreter. Ignored — Run falls back to the recursive VM or tree-walker
// — when the program is not laneable.
func (c *Context) UseLaneVM() { c.laneRun = true }

// PrivateAccesses returns how many private-array loads and stores this
// context performed; the simulator uses them to compute sharing degrees
// comparable to the SPLASH numbers quoted in the paper's Section 6.
func (c *Context) PrivateAccesses() (reads, writes uint64) {
	return c.privReads, c.privWrites
}

// CountOps enables the dispatched-op counter: VM instructions retired, or
// statements executed on the tree-walking reference. The simulator turns
// it on when an obs.Recorder is attached; counting never affects execution.
func (c *Context) CountOps(on bool) { c.countOps = on }

// OpsDispatched returns the dispatched-op count accumulated since CountOps
// was enabled.
func (c *Context) OpsDispatched() uint64 { return c.ops }

// maxCallDepth bounds recursion; ParC benchmarks are loop-based, so any
// deep recursion is almost certainly a bug in the program under test.
const maxCallDepth = 10_000

// NewContext builds an execution context for one processor.
func NewContext(prog *parc.Program, store *Store, mach Machine, node, nprocs int) *Context {
	return &Context{
		prog:   prog,
		store:  store,
		mach:   mach,
		node:   node,
		nprocs: nprocs,
		rng:    uint64(node)*0x9E3779B97F4A7C15 + 0xD1B54A32D192ED03,
	}
}

// SetMemory replaces the context's shared-data view; nil restores the run's
// plain store. Must be called before Run.
func (c *Context) SetMemory(m Memory) {
	c.mem = m
}

// memLoad and memStore route shared-data traffic: the common (sequential)
// case has no override and stays a direct, inlinable *Store call; only a
// context the parallel engine rewired pays interface dispatch.
func (c *Context) memLoad(addr uint64) uint64 {
	if c.mem != nil {
		return c.mem.Load(addr)
	}
	return c.store.Load(addr)
}

func (c *Context) memStore(addr uint64, bits uint64) {
	if c.mem != nil {
		c.mem.StoreWord(addr, bits)
		return
	}
	c.store.StoreWord(addr, bits)
}

// Run executes main to completion, flushing any residual work. Programs are
// compiled to bytecode once (cached on the Program itself) and run on the
// register VM; functions the compiler cannot lower — and whole programs,
// when main is one of them or UseTreeWalker was called — execute on the
// reference tree-walker with identical observable behaviour.
func (c *Context) Run() error {
	main := c.prog.FuncMap["main"]
	if main == nil {
		return fmt.Errorf("interp: program has no main")
	}
	if c.laneRun && !c.treeWalk {
		if lv, ok := c.NewLaneVM(nil); ok {
			return lv.RunToCompletion()
		}
	}
	if !c.treeWalk {
		pcm := c.prog.Artifact(func() any { return compileProgram(c.prog) }).(*progCode)
		if co := pcm.fns[main]; co != nil {
			return c.runVM(pcm, co)
		}
	}
	if _, err := c.call(main, nil); err != nil {
		return err
	}
	c.flush()
	return nil
}

func (c *Context) errf(format string, args ...any) error {
	return &RuntimeError{Node: c.node, Pos: c.curPos, PC: c.curPC, Msg: fmt.Sprintf(format, args...)}
}

func (c *Context) work(n uint64) {
	c.pending += n
	if c.pending >= workFlushLimit {
		c.flush()
	}
}

func (c *Context) flush() {
	if c.pending > 0 {
		c.mach.Work(c.node, c.pending)
		c.pending = 0
	}
}

// frame is one function activation. Scalars and private arrays live in
// exact-size slices; the checker assigns every parameter, local, and loop
// variable a slot (parc.FuncDecl.NumScalars/NumArrays), so name lookups on
// checked references are a single index. Locals are function-scoped and
// slots start zero-valued: a resolved read before the declaration executes
// yields the zero value rather than a runtime "undefined variable" error.
//
// dyn holds loop variables of statements synthesized after checking
// (Cachier's rewriter generates annotation loops with fresh __cicoN
// counters directly into a checked AST); it is nil until such a loop runs.
type frame struct {
	fn      *parc.FuncDecl
	scalars []Value
	arrays  []privArray
	dyn     map[string]Value
}

type privArray struct {
	base parc.BaseType
	dims []int
	data []Value

	// cache retains the backing slice across VM frame reuse so re-executed
	// declarations allocate only on first use; data stays the source of
	// truth (nil means "declaration never executed this activation").
	cache []Value
}

// setDyn binds a runtime-created scalar name (generated loop counters).
func (fr *frame) setDyn(name string, v Value) {
	if fr.dyn == nil {
		fr.dyn = make(map[string]Value)
	}
	fr.dyn[name] = v
}

type ctrl int

const (
	ctrlNext ctrl = iota
	ctrlReturn
)

func (c *Context) call(f *parc.FuncDecl, args []Value) (Value, error) {
	if c.depth >= maxCallDepth {
		return Value{}, c.errf("call depth exceeds %d (runaway recursion in %s?)", maxCallDepth, f.Name)
	}
	c.depth++
	defer func() { c.depth-- }()
	fr := &frame{fn: f, scalars: make([]Value, f.NumScalars), arrays: make([]privArray, f.NumArrays)}
	for i, p := range f.Params {
		fr.scalars[i] = coerce(args[i], p.Base)
	}
	ct, v, err := c.execBlock(f.Body, fr)
	if err != nil {
		return Value{}, err
	}
	if ct == ctrlReturn {
		if f.Result != nil {
			return coerce(v, *f.Result), nil
		}
		return Value{}, nil
	}
	if f.Result != nil {
		// Falling off the end of a value-returning function yields the zero
		// value of the result type, as the checker cannot prove all paths
		// return.
		return coerce(Value{}, *f.Result), nil
	}
	return Value{}, nil
}

func (c *Context) execBlock(b *parc.Block, fr *frame) (ctrl, Value, error) {
	for _, s := range b.Stmts {
		ct, v, err := c.execStmt(s, fr)
		if err != nil || ct == ctrlReturn {
			return ct, v, err
		}
	}
	return ctrlNext, Value{}, nil
}

func (c *Context) execStmt(s parc.Stmt, fr *frame) (ctrl, Value, error) {
	c.curPC = s.ID()
	c.curPos = s.Position()
	c.work(1)
	if c.countOps {
		c.ops++
	}
	switch n := s.(type) {
	case *parc.Block:
		return c.execBlock(n, fr)

	case *parc.VarDeclStmt:
		if n.Slot == 0 {
			return ctrlNext, Value{}, c.errf("declaration of %q was not checked", n.Name)
		}
		if len(n.DimSizes) > 0 {
			size := 1
			for _, d := range n.DimSizes {
				size *= d
			}
			data := make([]Value, size)
			// Zero-initialize with typed zeros.
			zero := coerce(Value{}, n.Base)
			for i := range data {
				data[i] = zero
			}
			fr.arrays[n.Slot-1] = privArray{base: n.Base, dims: n.DimSizes, data: data}
			return ctrlNext, Value{}, nil
		}
		v := coerce(Value{}, n.Base)
		if n.Init != nil {
			iv, err := c.eval(n.Init, fr)
			if err != nil {
				return ctrlNext, Value{}, err
			}
			v = coerce(iv, n.Base)
		}
		fr.scalars[n.Slot-1] = v
		return ctrlNext, Value{}, nil

	case *parc.AssignStmt:
		return ctrlNext, Value{}, c.execAssign(n, fr)

	case *parc.IfStmt:
		cond, err := c.eval(n.Cond, fr)
		if err != nil {
			return ctrlNext, Value{}, err
		}
		if cond.Truthy() {
			return c.execBlock(n.Then, fr)
		}
		if n.Else != nil {
			return c.execStmt(n.Else, fr)
		}
		return ctrlNext, Value{}, nil

	case *parc.WhileStmt:
		for {
			c.curPC = n.ID()
			c.curPos = n.Position()
			cond, err := c.eval(n.Cond, fr)
			if err != nil {
				return ctrlNext, Value{}, err
			}
			if !cond.Truthy() {
				return ctrlNext, Value{}, nil
			}
			ct, v, err := c.execBlock(n.Body, fr)
			if err != nil || ct == ctrlReturn {
				return ct, v, err
			}
			c.work(1)
		}

	case *parc.ForStmt:
		from, err := c.eval(n.From, fr)
		if err != nil {
			return ctrlNext, Value{}, err
		}
		to, err := c.eval(n.To, fr)
		if err != nil {
			return ctrlNext, Value{}, err
		}
		step := int64(1)
		if n.Step != nil {
			sv, err := c.eval(n.Step, fr)
			if err != nil {
				return ctrlNext, Value{}, err
			}
			step = sv.AsInt()
		}
		if step == 0 {
			return ctrlNext, Value{}, c.errf("for %s: zero step", n.Var)
		}
		lo, hi := from.AsInt(), to.AsInt()
		// Resolve the loop counter's slot: checked loops carry it; loops
		// generated by the rewriter fall back to the binding table, and
		// fresh generated names (__cicoN) live in the frame's dyn map.
		slot := n.VarSlot - 1
		if slot < 0 {
			if b, ok := fr.fn.Bindings[n.Var]; ok && !b.Array {
				slot = b.Slot
			}
		}
		for i := lo; (step > 0 && i <= hi) || (step < 0 && i >= hi); i += step {
			if slot >= 0 {
				fr.scalars[slot] = IntVal(i)
			} else {
				fr.setDyn(n.Var, IntVal(i))
			}
			ct, v, err := c.execBlock(n.Body, fr)
			if err != nil || ct == ctrlReturn {
				return ct, v, err
			}
			c.work(1)
		}
		return ctrlNext, Value{}, nil

	case *parc.BarrierStmt:
		c.flush()
		c.mach.Barrier(c.node, n.ID())
		return ctrlNext, Value{}, nil

	case *parc.LockStmt:
		id, err := c.eval(n.LockID, fr)
		if err != nil {
			return ctrlNext, Value{}, err
		}
		c.flush()
		c.mach.Lock(c.node, id.AsInt(), n.ID())
		return ctrlNext, Value{}, nil

	case *parc.UnlockStmt:
		id, err := c.eval(n.LockID, fr)
		if err != nil {
			return ctrlNext, Value{}, err
		}
		c.flush()
		c.mach.Unlock(c.node, id.AsInt(), n.ID())
		return ctrlNext, Value{}, nil

	case *parc.ReturnStmt:
		if n.Value != nil {
			v, err := c.eval(n.Value, fr)
			if err != nil {
				return ctrlNext, Value{}, err
			}
			return ctrlReturn, v, nil
		}
		return ctrlReturn, Value{}, nil

	case *parc.ExprStmt:
		_, err := c.eval(n.Call, fr)
		return ctrlNext, Value{}, err

	case *parc.PrintStmt:
		vals := make([]Value, len(n.Args))
		for i, a := range n.Args {
			v, err := c.eval(a, fr)
			if err != nil {
				return ctrlNext, Value{}, err
			}
			vals[i] = v
		}
		c.flush()
		c.mach.Print(c.node, formatPrint(n.Format, vals))
		return ctrlNext, Value{}, nil

	case *parc.CICOStmt:
		ranges, err := c.evalRangeRef(n.Target, fr)
		if err != nil {
			return ctrlNext, Value{}, err
		}
		c.flush()
		c.mach.Directive(c.node, n.Kind, ranges, n.ID())
		return ctrlNext, Value{}, nil

	case *parc.CommentStmt:
		return ctrlNext, Value{}, nil
	}
	return ctrlNext, Value{}, c.errf("cannot execute %T", s)
}

// resolveLValue returns an lvalue's resolution: the checker's static one
// when present, otherwise a dynamic lookup for nodes synthesized after
// checking. RefUnresolved with a nil decl means the name is unknown (or a
// dyn-map scalar, which the caller checks last).
func (c *Context) resolveLValue(lv *parc.LValue, fr *frame) (parc.RefKind, int, *parc.SharedDecl) {
	if lv.Ref != parc.RefUnresolved {
		return lv.Ref, lv.Slot, lv.Shared
	}
	if b, ok := fr.fn.Bindings[lv.Name]; ok {
		if b.Array {
			return parc.RefArray, b.Slot, nil
		}
		return parc.RefLocal, b.Slot, nil
	}
	if d, ok := c.prog.SharedMap[lv.Name]; ok {
		return parc.RefShared, 0, d
	}
	return parc.RefUnresolved, 0, nil
}

func (c *Context) execAssign(n *parc.AssignStmt, fr *frame) error {
	rhs, err := c.eval(n.RHS, fr)
	if err != nil {
		return err
	}
	lv := n.LHS
	if n.Op == parc.OpDiv && !rhs.Float && rhs.I == 0 {
		if !c.destIsFloat(lv, fr) {
			return c.errf("integer division by zero in /=")
		}
	}

	ref, slot, decl := c.resolveLValue(lv, fr)
	switch ref {
	case parc.RefLocal:
		// Private scalar (local, param, or loop variable).
		cur := fr.scalars[slot]
		fr.scalars[slot] = applyOp(cur, n.Op, rhs, cur.Float)
		return nil

	case parc.RefArray:
		arr := &fr.arrays[slot]
		if arr.data == nil {
			return c.errf("undefined variable %q", lv.Name)
		}
		off, err := c.offset(lv.Name, arr.dims, lv.Indices, fr)
		if err != nil {
			return err
		}
		if n.Op != parc.OpSet {
			c.privReads++
		}
		c.privWrites++
		isFloat := arr.base == parc.FloatType
		arr.data[off] = applyOp(arr.data[off], n.Op, rhs, isFloat)
		return nil

	case parc.RefShared:
		addr, err := c.sharedAddr(decl, lv.Indices, fr)
		if err != nil {
			return err
		}
		isFloat := decl.Base == parc.FloatType
		var cur Value
		if n.Op != parc.OpSet {
			// Compound assignment reads the old value first.
			c.flush()
			c.mach.Access(c.node, false, addr, c.curPC)
			cur = FromBits(c.memLoad(addr), isFloat)
		}
		out := applyOp(cur, n.Op, rhs, isFloat)
		c.flush()
		c.mach.Access(c.node, true, addr, c.curPC)
		c.memStore(addr, out.Bits())
		return nil
	}

	// Runtime-created scalar (generated loop counter).
	if cur, ok := fr.dyn[lv.Name]; ok && len(lv.Indices) == 0 {
		fr.dyn[lv.Name] = applyOp(cur, n.Op, rhs, cur.Float)
		return nil
	}
	return c.errf("undefined variable %q", lv.Name)
}

// destIsFloat reports whether an lvalue's destination has float type, so
// compound division can distinguish IEEE division from integer division.
func (c *Context) destIsFloat(lv *parc.LValue, fr *frame) bool {
	ref, slot, decl := c.resolveLValue(lv, fr)
	switch ref {
	case parc.RefLocal:
		return fr.scalars[slot].Float
	case parc.RefArray:
		return fr.arrays[slot].base == parc.FloatType
	case parc.RefShared:
		return decl.Base == parc.FloatType
	}
	if v, ok := fr.dyn[lv.Name]; ok {
		return v.Float
	}
	return false
}

// applyOp combines the current value with rhs under the assignment operator,
// coercing the result to the destination's type.
func applyOp(cur Value, op parc.AssignOp, rhs Value, destFloat bool) Value {
	var out Value
	switch op {
	case parc.OpSet:
		out = rhs
	case parc.OpAdd:
		if cur.Float || rhs.Float {
			out = FloatVal(cur.AsFloat() + rhs.AsFloat())
		} else {
			out = IntVal(cur.I + rhs.I)
		}
	case parc.OpSub:
		if cur.Float || rhs.Float {
			out = FloatVal(cur.AsFloat() - rhs.AsFloat())
		} else {
			out = IntVal(cur.I - rhs.I)
		}
	case parc.OpMul:
		if cur.Float || rhs.Float {
			out = FloatVal(cur.AsFloat() * rhs.AsFloat())
		} else {
			out = IntVal(cur.I * rhs.I)
		}
	case parc.OpDiv:
		// Integer division by zero is rejected by execAssign before the
		// value reaches here; the int branch guards against it anyway.
		if cur.Float || rhs.Float {
			out = FloatVal(cur.AsFloat() / rhs.AsFloat())
		} else if rhs.I == 0 {
			out = IntVal(0)
		} else {
			out = IntVal(cur.I / rhs.I)
		}
	}
	if destFloat {
		return FloatVal(out.AsFloat())
	}
	return IntVal(out.AsInt())
}

// offset computes the flattened element offset of an index list against
// dims, charging work and bounds-checking.
func (c *Context) offset(name string, dims []int, indices []parc.Expr, fr *frame) (int, error) {
	off := 0
	for d, ixe := range indices {
		c.work(1)
		iv, err := c.eval(ixe, fr)
		if err != nil {
			return 0, err
		}
		ix := int(iv.AsInt())
		if ix < 0 || ix >= dims[d] {
			return 0, c.errf("%s: index %d out of range [0,%d) in dimension %d", name, ix, dims[d], d)
		}
		off = off*dims[d] + ix
	}
	return off, nil
}

func (c *Context) sharedAddr(decl *parc.SharedDecl, indices []parc.Expr, fr *frame) (uint64, error) {
	off, err := c.offset(decl.Name, decl.DimSizes, indices, fr)
	if err != nil {
		return 0, err
	}
	return decl.BaseAddr + uint64(off)*parc.ElemSize, nil
}

// loadShared performs a simulated shared read of one word.
func (c *Context) loadShared(addr uint64, base parc.BaseType) Value {
	c.flush()
	c.mach.Access(c.node, false, addr, c.curPC)
	return FromBits(c.memLoad(addr), base == parc.FloatType)
}

// evalPrivIndex reads an element of a private array slot.
func (c *Context) evalPrivIndex(name string, arr *privArray, indices []parc.Expr, fr *frame) (Value, error) {
	if arr.data == nil {
		// The declaration never executed (it sits in a branch this run
		// skipped); mirror the dynamic-resolution failure message.
		return Value{}, c.errf("%q is not an array", name)
	}
	off, err := c.offset(name, arr.dims, indices, fr)
	if err != nil {
		return Value{}, err
	}
	c.privReads++
	return arr.data[off], nil
}

// evalSharedIndex reads an element of a shared array.
func (c *Context) evalSharedIndex(decl *parc.SharedDecl, indices []parc.Expr, fr *frame) (Value, error) {
	addr, err := c.sharedAddr(decl, indices, fr)
	if err != nil {
		return Value{}, err
	}
	return c.loadShared(addr, decl.Base), nil
}

func (c *Context) eval(e parc.Expr, fr *frame) (Value, error) {
	switch n := e.(type) {
	case *parc.IntLit:
		return IntVal(n.Value), nil
	case *parc.FloatLit:
		return FloatVal(n.Value), nil

	case *parc.VarRef:
		switch n.Ref {
		case parc.RefLocal:
			return fr.scalars[n.Slot], nil
		case parc.RefConst:
			return IntVal(n.Const), nil
		case parc.RefShared:
			return c.loadShared(n.Shared.BaseAddr, n.Shared.Base), nil
		}
		// Generated reference: resolve by name.
		if b, ok := fr.fn.Bindings[n.Name]; ok && !b.Array {
			return fr.scalars[b.Slot], nil
		}
		if v, ok := fr.dyn[n.Name]; ok {
			return v, nil
		}
		if v, ok := c.prog.ConstVal[n.Name]; ok {
			return IntVal(v), nil
		}
		if decl, ok := c.prog.SharedMap[n.Name]; ok {
			return c.loadShared(decl.BaseAddr, decl.Base), nil
		}
		return Value{}, c.errf("undefined name %q", n.Name)

	case *parc.IndexExpr:
		switch n.Ref {
		case parc.RefArray:
			return c.evalPrivIndex(n.Name, &fr.arrays[n.Slot], n.Indices, fr)
		case parc.RefShared:
			return c.evalSharedIndex(n.Shared, n.Indices, fr)
		}
		// Generated reference: resolve by name.
		if b, ok := fr.fn.Bindings[n.Name]; ok && b.Array {
			return c.evalPrivIndex(n.Name, &fr.arrays[b.Slot], n.Indices, fr)
		}
		decl := c.prog.SharedMap[n.Name]
		if decl == nil {
			return Value{}, c.errf("%q is not an array", n.Name)
		}
		return c.evalSharedIndex(decl, n.Indices, fr)

	case *parc.CallExpr:
		id, f := n.Builtin, n.Fn
		if id == parc.BuiltinNone && f == nil {
			// Generated call: resolve by name.
			if bid, ok := parc.BuiltinByName[n.Name]; ok {
				id = bid
			} else if f = c.prog.FuncMap[n.Name]; f == nil {
				return Value{}, c.errf("undefined function %q", n.Name)
			}
		}
		if id != parc.BuiltinNone {
			return c.evalBuiltin(n, id, fr)
		}
		args := make([]Value, len(n.Args))
		for i, a := range n.Args {
			v, err := c.eval(a, fr)
			if err != nil {
				return Value{}, err
			}
			args[i] = v
		}
		c.work(2)
		savedPC, savedPos := c.curPC, c.curPos
		v, err := c.call(f, args)
		c.curPC, c.curPos = savedPC, savedPos
		return v, err

	case *parc.UnaryExpr:
		x, err := c.eval(n.X, fr)
		if err != nil {
			return Value{}, err
		}
		c.work(1)
		switch n.Op {
		case parc.TokMinus:
			if x.Float {
				return FloatVal(-x.F), nil
			}
			return IntVal(-x.I), nil
		case parc.TokNot:
			if x.Truthy() {
				return IntVal(0), nil
			}
			return IntVal(1), nil
		}
		return Value{}, c.errf("bad unary operator")

	case *parc.BinaryExpr:
		return c.evalBinary(n, fr)
	}
	return Value{}, c.errf("cannot evaluate %T", e)
}

func boolVal(b bool) Value {
	if b {
		return IntVal(1)
	}
	return IntVal(0)
}

func (c *Context) evalBinary(n *parc.BinaryExpr, fr *frame) (Value, error) {
	// Short-circuit logical operators.
	if n.Op == parc.TokAndAnd || n.Op == parc.TokOrOr {
		x, err := c.eval(n.X, fr)
		if err != nil {
			return Value{}, err
		}
		c.work(1)
		if n.Op == parc.TokAndAnd && !x.Truthy() {
			return IntVal(0), nil
		}
		if n.Op == parc.TokOrOr && x.Truthy() {
			return IntVal(1), nil
		}
		y, err := c.eval(n.Y, fr)
		if err != nil {
			return Value{}, err
		}
		return boolVal(y.Truthy()), nil
	}

	x, err := c.eval(n.X, fr)
	if err != nil {
		return Value{}, err
	}
	y, err := c.eval(n.Y, fr)
	if err != nil {
		return Value{}, err
	}
	c.work(1)
	switch n.Op {
	case parc.TokPlus:
		if x.Float || y.Float {
			return FloatVal(x.AsFloat() + y.AsFloat()), nil
		}
		return IntVal(x.I + y.I), nil
	case parc.TokMinus:
		if x.Float || y.Float {
			return FloatVal(x.AsFloat() - y.AsFloat()), nil
		}
		return IntVal(x.I - y.I), nil
	case parc.TokStar:
		if x.Float || y.Float {
			return FloatVal(x.AsFloat() * y.AsFloat()), nil
		}
		return IntVal(x.I * y.I), nil
	case parc.TokSlash:
		if x.Float || y.Float {
			return FloatVal(x.AsFloat() / y.AsFloat()), nil
		}
		if y.I == 0 {
			return Value{}, c.errf("integer division by zero")
		}
		return IntVal(x.I / y.I), nil
	case parc.TokPercent:
		if x.Float || y.Float {
			return Value{}, c.errf("%% requires integer operands")
		}
		if y.I == 0 {
			return Value{}, c.errf("integer modulo by zero")
		}
		return IntVal(x.I % y.I), nil
	case parc.TokEq:
		return boolVal(compare(x, y) == 0), nil
	case parc.TokNe:
		return boolVal(compare(x, y) != 0), nil
	case parc.TokLt:
		return boolVal(compare(x, y) < 0), nil
	case parc.TokLe:
		return boolVal(compare(x, y) <= 0), nil
	case parc.TokGt:
		return boolVal(compare(x, y) > 0), nil
	case parc.TokGe:
		return boolVal(compare(x, y) >= 0), nil
	}
	return Value{}, c.errf("bad binary operator")
}

func compare(x, y Value) int {
	if x.Float || y.Float {
		a, b := x.AsFloat(), y.AsFloat()
		switch {
		case a < b:
			return -1
		case a > b:
			return 1
		}
		return 0
	}
	switch {
	case x.I < y.I:
		return -1
	case x.I > y.I:
		return 1
	}
	return 0
}

func (c *Context) evalBuiltin(n *parc.CallExpr, id parc.BuiltinID, fr *frame) (Value, error) {
	// Builtins take at most two arguments; keep them off the heap.
	var buf [2]Value
	args := buf[:]
	if len(n.Args) > len(buf) {
		args = make([]Value, len(n.Args))
	} else {
		args = buf[:len(n.Args)]
	}
	for i, a := range n.Args {
		v, err := c.eval(a, fr)
		if err != nil {
			return Value{}, err
		}
		args[i] = v
	}
	c.work(1)
	switch id {
	case parc.BuiltinPid:
		return IntVal(int64(c.node)), nil
	case parc.BuiltinNprocs:
		return IntVal(int64(c.nprocs)), nil
	case parc.BuiltinMin:
		if compare(args[0], args[1]) <= 0 {
			return args[0], nil
		}
		return args[1], nil
	case parc.BuiltinMax:
		if compare(args[0], args[1]) >= 0 {
			return args[0], nil
		}
		return args[1], nil
	case parc.BuiltinAbs:
		if args[0].Float {
			return FloatVal(math.Abs(args[0].F)), nil
		}
		if args[0].I < 0 {
			return IntVal(-args[0].I), nil
		}
		return args[0], nil
	case parc.BuiltinSqrt:
		return FloatVal(math.Sqrt(args[0].AsFloat())), nil
	case parc.BuiltinSin:
		return FloatVal(math.Sin(args[0].AsFloat())), nil
	case parc.BuiltinCos:
		return FloatVal(math.Cos(args[0].AsFloat())), nil
	case parc.BuiltinFloor:
		return FloatVal(math.Floor(args[0].AsFloat())), nil
	case parc.BuiltinFloat:
		return FloatVal(args[0].AsFloat()), nil
	case parc.BuiltinInt:
		return IntVal(args[0].AsInt()), nil
	case parc.BuiltinRnd:
		c.rng = c.rng*6364136223846793005 + 1442695040888963407
		return FloatVal(float64(c.rng>>11) / (1 << 53)), nil
	case parc.BuiltinRndseed:
		c.rng = uint64(args[0].AsInt())*0x9E3779B97F4A7C15 + 0xD1B54A32D192ED03
		return IntVal(0), nil
	}
	return Value{}, c.errf("unknown builtin %q", n.Name)
}

// evalRangeRef expands a CICO annotation target into contiguous address
// ranges. Indices are clamped to the array bounds: annotations must never
// affect program semantics (paper Section 4.5), so out-of-range annotation
// indices are trimmed rather than faulting.
func (c *Context) evalRangeRef(r *parc.RangeRef, fr *frame) ([]AddrRange, error) {
	decl := r.Shared
	if decl == nil {
		// Generated annotation: resolve by name.
		decl = c.prog.SharedMap[r.Name]
	}
	if decl == nil {
		return nil, c.errf("annotation target %q is not shared", r.Name)
	}
	if len(decl.DimSizes) == 0 {
		return []AddrRange{{Lo: decl.BaseAddr, Hi: decl.BaseAddr}}, nil
	}
	los := make([]int, len(r.Indices))
	his := make([]int, len(r.Indices))
	for d, ix := range r.Indices {
		lov, err := c.eval(ix.Lo, fr)
		if err != nil {
			return nil, err
		}
		lo := int(lov.AsInt())
		hi := lo
		if ix.Hi != nil {
			hiv, err := c.eval(ix.Hi, fr)
			if err != nil {
				return nil, err
			}
			hi = int(hiv.AsInt())
		}
		lo = max(lo, 0)
		hi = min(hi, decl.DimSizes[d]-1)
		if lo > hi {
			return nil, nil // empty after clamping
		}
		los[d], his[d] = lo, hi
	}
	// Cartesian product over all but the last dimension; the last dimension
	// is contiguous.
	var out []AddrRange
	idx := make([]int, len(los))
	copy(idx, los)
	last := len(los) - 1
	for {
		off := 0
		for d := 0; d < last; d++ {
			off = off*decl.DimSizes[d] + idx[d]
		}
		loOff := off*decl.DimSizes[last] + los[last]
		hiOff := off*decl.DimSizes[last] + his[last]
		out = append(out, AddrRange{
			Lo: decl.BaseAddr + uint64(loOff)*parc.ElemSize,
			Hi: decl.BaseAddr + uint64(hiOff)*parc.ElemSize,
		})
		// Advance the multi-index over dims [0, last).
		d := last - 1
		for ; d >= 0; d-- {
			idx[d]++
			if idx[d] <= his[d] {
				break
			}
			idx[d] = los[d]
		}
		if d < 0 {
			break
		}
	}
	return out, nil
}

// formatPrint renders a ParC print format with %d, %f, %g, and %% verbs.
func formatPrint(format string, args []Value) string {
	var sb strings.Builder
	ai := 0
	for i := 0; i < len(format); i++ {
		ch := format[i]
		if ch != '%' || i+1 >= len(format) {
			sb.WriteByte(ch)
			continue
		}
		i++
		verb := format[i]
		if verb == '%' {
			sb.WriteByte('%')
			continue
		}
		if ai >= len(args) {
			sb.WriteString("%!missing")
			continue
		}
		v := args[ai]
		ai++
		switch verb {
		case 'd':
			fmt.Fprintf(&sb, "%d", v.AsInt())
		case 'f':
			fmt.Fprintf(&sb, "%f", v.AsFloat())
		case 'g':
			fmt.Fprintf(&sb, "%g", v.AsFloat())
		default:
			fmt.Fprintf(&sb, "%%!%c", verb)
		}
	}
	return sb.String()
}
