package interp

import (
	"fmt"
	"math"
	"strings"

	"cachier/internal/parc"
)

// Context executes one simulated processor's SPMD instance of a ParC
// program.
type Context struct {
	prog   *parc.Program
	store  *Store
	mach   Machine
	node   int
	nprocs int

	rng     uint64
	pending uint64 // unreported local work cycles
	curPC   int    // statement ID currently executing (trace PC)
	curPos  parc.Pos
	depth   int // call depth, to catch runaway recursion

	privReads  uint64 // private-array loads (for sharing-degree statistics)
	privWrites uint64 // private-array stores
}

// PrivateAccesses returns how many private-array loads and stores this
// context performed; the simulator uses them to compute sharing degrees
// comparable to the SPLASH numbers quoted in the paper's Section 6.
func (c *Context) PrivateAccesses() (reads, writes uint64) {
	return c.privReads, c.privWrites
}

// maxCallDepth bounds recursion; ParC benchmarks are loop-based, so any
// deep recursion is almost certainly a bug in the program under test.
const maxCallDepth = 10_000

// NewContext builds an execution context for one processor.
func NewContext(prog *parc.Program, store *Store, mach Machine, node, nprocs int) *Context {
	return &Context{
		prog:   prog,
		store:  store,
		mach:   mach,
		node:   node,
		nprocs: nprocs,
		rng:    uint64(node)*0x9E3779B97F4A7C15 + 0xD1B54A32D192ED03,
	}
}

// Run executes main to completion, flushing any residual work.
func (c *Context) Run() error {
	main := c.prog.FuncMap["main"]
	if main == nil {
		return fmt.Errorf("interp: program has no main")
	}
	if _, err := c.call(main, nil); err != nil {
		return err
	}
	c.flush()
	return nil
}

func (c *Context) errf(format string, args ...any) error {
	return &RuntimeError{Node: c.node, Pos: c.curPos, PC: c.curPC, Msg: fmt.Sprintf(format, args...)}
}

func (c *Context) work(n uint64) {
	c.pending += n
	if c.pending >= workFlushLimit {
		c.flush()
	}
}

func (c *Context) flush() {
	if c.pending > 0 {
		c.mach.Work(c.node, c.pending)
		c.pending = 0
	}
}

// frame is one function activation: scalar and private-array bindings.
type frame struct {
	scalars map[string]Value
	arrays  map[string]privArray
}

type privArray struct {
	base parc.BaseType
	dims []int
	data []Value
}

func newFrame() *frame {
	return &frame{scalars: make(map[string]Value), arrays: make(map[string]privArray)}
}

type ctrl int

const (
	ctrlNext ctrl = iota
	ctrlReturn
)

func (c *Context) call(f *parc.FuncDecl, args []Value) (Value, error) {
	if c.depth >= maxCallDepth {
		return Value{}, c.errf("call depth exceeds %d (runaway recursion in %s?)", maxCallDepth, f.Name)
	}
	c.depth++
	defer func() { c.depth-- }()
	fr := newFrame()
	for i, p := range f.Params {
		fr.scalars[p.Name] = coerce(args[i], p.Base)
	}
	ct, v, err := c.execBlock(f.Body, fr)
	if err != nil {
		return Value{}, err
	}
	if ct == ctrlReturn {
		if f.Result != nil {
			return coerce(v, *f.Result), nil
		}
		return Value{}, nil
	}
	if f.Result != nil {
		// Falling off the end of a value-returning function yields the zero
		// value of the result type, as the checker cannot prove all paths
		// return.
		return coerce(Value{}, *f.Result), nil
	}
	return Value{}, nil
}

func (c *Context) execBlock(b *parc.Block, fr *frame) (ctrl, Value, error) {
	for _, s := range b.Stmts {
		ct, v, err := c.execStmt(s, fr)
		if err != nil || ct == ctrlReturn {
			return ct, v, err
		}
	}
	return ctrlNext, Value{}, nil
}

func (c *Context) execStmt(s parc.Stmt, fr *frame) (ctrl, Value, error) {
	c.curPC = s.ID()
	c.curPos = s.Position()
	c.work(1)
	switch n := s.(type) {
	case *parc.Block:
		return c.execBlock(n, fr)

	case *parc.VarDeclStmt:
		if len(n.DimSizes) > 0 {
			size := 1
			for _, d := range n.DimSizes {
				size *= d
			}
			fr.arrays[n.Name] = privArray{base: n.Base, dims: n.DimSizes, data: make([]Value, size)}
			// Zero-initialize with typed zeros.
			arr := fr.arrays[n.Name]
			for i := range arr.data {
				arr.data[i] = coerce(Value{}, n.Base)
			}
			return ctrlNext, Value{}, nil
		}
		v := coerce(Value{}, n.Base)
		if n.Init != nil {
			iv, err := c.eval(n.Init, fr)
			if err != nil {
				return ctrlNext, Value{}, err
			}
			v = coerce(iv, n.Base)
		}
		fr.scalars[n.Name] = v
		return ctrlNext, Value{}, nil

	case *parc.AssignStmt:
		return ctrlNext, Value{}, c.execAssign(n, fr)

	case *parc.IfStmt:
		cond, err := c.eval(n.Cond, fr)
		if err != nil {
			return ctrlNext, Value{}, err
		}
		if cond.Truthy() {
			return c.execBlock(n.Then, fr)
		}
		if n.Else != nil {
			return c.execStmt(n.Else, fr)
		}
		return ctrlNext, Value{}, nil

	case *parc.WhileStmt:
		for {
			c.curPC = n.ID()
			c.curPos = n.Position()
			cond, err := c.eval(n.Cond, fr)
			if err != nil {
				return ctrlNext, Value{}, err
			}
			if !cond.Truthy() {
				return ctrlNext, Value{}, nil
			}
			ct, v, err := c.execBlock(n.Body, fr)
			if err != nil || ct == ctrlReturn {
				return ct, v, err
			}
			c.work(1)
		}

	case *parc.ForStmt:
		from, err := c.eval(n.From, fr)
		if err != nil {
			return ctrlNext, Value{}, err
		}
		to, err := c.eval(n.To, fr)
		if err != nil {
			return ctrlNext, Value{}, err
		}
		step := int64(1)
		if n.Step != nil {
			sv, err := c.eval(n.Step, fr)
			if err != nil {
				return ctrlNext, Value{}, err
			}
			step = sv.AsInt()
		}
		if step == 0 {
			return ctrlNext, Value{}, c.errf("for %s: zero step", n.Var)
		}
		lo, hi := from.AsInt(), to.AsInt()
		for i := lo; (step > 0 && i <= hi) || (step < 0 && i >= hi); i += step {
			fr.scalars[n.Var] = IntVal(i)
			ct, v, err := c.execBlock(n.Body, fr)
			if err != nil || ct == ctrlReturn {
				return ct, v, err
			}
			c.work(1)
		}
		return ctrlNext, Value{}, nil

	case *parc.BarrierStmt:
		c.flush()
		c.mach.Barrier(c.node, n.ID())
		return ctrlNext, Value{}, nil

	case *parc.LockStmt:
		id, err := c.eval(n.LockID, fr)
		if err != nil {
			return ctrlNext, Value{}, err
		}
		c.flush()
		c.mach.Lock(c.node, id.AsInt(), n.ID())
		return ctrlNext, Value{}, nil

	case *parc.UnlockStmt:
		id, err := c.eval(n.LockID, fr)
		if err != nil {
			return ctrlNext, Value{}, err
		}
		c.flush()
		c.mach.Unlock(c.node, id.AsInt(), n.ID())
		return ctrlNext, Value{}, nil

	case *parc.ReturnStmt:
		if n.Value != nil {
			v, err := c.eval(n.Value, fr)
			if err != nil {
				return ctrlNext, Value{}, err
			}
			return ctrlReturn, v, nil
		}
		return ctrlReturn, Value{}, nil

	case *parc.ExprStmt:
		_, err := c.eval(n.Call, fr)
		return ctrlNext, Value{}, err

	case *parc.PrintStmt:
		vals := make([]Value, len(n.Args))
		for i, a := range n.Args {
			v, err := c.eval(a, fr)
			if err != nil {
				return ctrlNext, Value{}, err
			}
			vals[i] = v
		}
		c.flush()
		c.mach.Print(c.node, formatPrint(n.Format, vals))
		return ctrlNext, Value{}, nil

	case *parc.CICOStmt:
		ranges, err := c.evalRangeRef(n.Target, fr)
		if err != nil {
			return ctrlNext, Value{}, err
		}
		c.flush()
		c.mach.Directive(c.node, n.Kind, ranges, n.ID())
		return ctrlNext, Value{}, nil

	case *parc.CommentStmt:
		return ctrlNext, Value{}, nil
	}
	return ctrlNext, Value{}, c.errf("cannot execute %T", s)
}

func (c *Context) execAssign(n *parc.AssignStmt, fr *frame) error {
	rhs, err := c.eval(n.RHS, fr)
	if err != nil {
		return err
	}
	lv := n.LHS
	if n.Op == parc.OpDiv && !rhs.Float && rhs.I == 0 {
		if !c.destIsFloat(lv, fr) {
			return c.errf("integer division by zero in /=")
		}
	}

	// Private scalar (local, param, or loop variable).
	if cur, ok := fr.scalars[lv.Name]; ok {
		fr.scalars[lv.Name] = applyOp(cur, n.Op, rhs, cur.Float)
		return nil
	}
	// Private array.
	if arr, ok := fr.arrays[lv.Name]; ok {
		off, err := c.offset(lv.Name, arr.dims, lv.Indices, fr)
		if err != nil {
			return err
		}
		if n.Op != parc.OpSet {
			c.privReads++
		}
		c.privWrites++
		isFloat := arr.base == parc.FloatType
		arr.data[off] = applyOp(arr.data[off], n.Op, rhs, isFloat)
		return nil
	}
	// Shared variable.
	decl := c.prog.SharedMap[lv.Name]
	if decl == nil {
		return c.errf("undefined variable %q", lv.Name)
	}
	addr, err := c.sharedAddr(decl, lv.Indices, fr)
	if err != nil {
		return err
	}
	isFloat := decl.Base == parc.FloatType
	var cur Value
	if n.Op != parc.OpSet {
		// Compound assignment reads the old value first.
		c.flush()
		c.mach.Access(c.node, false, addr, c.curPC)
		cur = FromBits(c.store.Load(addr), isFloat)
	}
	out := applyOp(cur, n.Op, rhs, isFloat)
	c.flush()
	c.mach.Access(c.node, true, addr, c.curPC)
	c.store.StoreWord(addr, out.Bits())
	return nil
}

// destIsFloat reports whether an lvalue's destination has float type, so
// compound division can distinguish IEEE division from integer division.
func (c *Context) destIsFloat(lv *parc.LValue, fr *frame) bool {
	if v, ok := fr.scalars[lv.Name]; ok {
		return v.Float
	}
	if arr, ok := fr.arrays[lv.Name]; ok {
		return arr.base == parc.FloatType
	}
	if decl, ok := c.prog.SharedMap[lv.Name]; ok {
		return decl.Base == parc.FloatType
	}
	return false
}

// applyOp combines the current value with rhs under the assignment operator,
// coercing the result to the destination's type.
func applyOp(cur Value, op parc.AssignOp, rhs Value, destFloat bool) Value {
	var out Value
	switch op {
	case parc.OpSet:
		out = rhs
	case parc.OpAdd:
		out = numeric(cur, rhs, func(a, b int64) int64 { return a + b }, func(a, b float64) float64 { return a + b })
	case parc.OpSub:
		out = numeric(cur, rhs, func(a, b int64) int64 { return a - b }, func(a, b float64) float64 { return a - b })
	case parc.OpMul:
		out = numeric(cur, rhs, func(a, b int64) int64 { return a * b }, func(a, b float64) float64 { return a * b })
	case parc.OpDiv:
		// Integer division by zero is rejected by execAssign before the
		// value reaches here; the int branch guards against it anyway.
		out = numeric(cur, rhs, func(a, b int64) int64 {
			if b == 0 {
				return 0
			}
			return a / b
		}, func(a, b float64) float64 { return a / b })
	}
	if destFloat {
		return FloatVal(out.AsFloat())
	}
	return IntVal(out.AsInt())
}

func numeric(a Value, b Value, fi func(int64, int64) int64, ff func(float64, float64) float64) Value {
	if a.Float || b.Float {
		return FloatVal(ff(a.AsFloat(), b.AsFloat()))
	}
	return IntVal(fi(a.I, b.I))
}

// offset computes the flattened element offset of an index list against
// dims, charging work and bounds-checking.
func (c *Context) offset(name string, dims []int, indices []parc.Expr, fr *frame) (int, error) {
	off := 0
	for d, ixe := range indices {
		c.work(1)
		iv, err := c.eval(ixe, fr)
		if err != nil {
			return 0, err
		}
		ix := int(iv.AsInt())
		if ix < 0 || ix >= dims[d] {
			return 0, c.errf("%s: index %d out of range [0,%d) in dimension %d", name, ix, dims[d], d)
		}
		off = off*dims[d] + ix
	}
	return off, nil
}

func (c *Context) sharedAddr(decl *parc.SharedDecl, indices []parc.Expr, fr *frame) (uint64, error) {
	off, err := c.offset(decl.Name, decl.DimSizes, indices, fr)
	if err != nil {
		return 0, err
	}
	return decl.BaseAddr + uint64(off)*parc.ElemSize, nil
}

func (c *Context) eval(e parc.Expr, fr *frame) (Value, error) {
	switch n := e.(type) {
	case *parc.IntLit:
		return IntVal(n.Value), nil
	case *parc.FloatLit:
		return FloatVal(n.Value), nil

	case *parc.VarRef:
		if v, ok := fr.scalars[n.Name]; ok {
			return v, nil
		}
		if v, ok := c.prog.ConstVal[n.Name]; ok {
			return IntVal(v), nil
		}
		if decl, ok := c.prog.SharedMap[n.Name]; ok {
			// Shared scalar read.
			c.flush()
			c.mach.Access(c.node, false, decl.BaseAddr, c.curPC)
			return FromBits(c.store.Load(decl.BaseAddr), decl.Base == parc.FloatType), nil
		}
		return Value{}, c.errf("undefined name %q", n.Name)

	case *parc.IndexExpr:
		if arr, ok := fr.arrays[n.Name]; ok {
			off, err := c.offset(n.Name, arr.dims, n.Indices, fr)
			if err != nil {
				return Value{}, err
			}
			c.privReads++
			return arr.data[off], nil
		}
		decl := c.prog.SharedMap[n.Name]
		if decl == nil {
			return Value{}, c.errf("%q is not an array", n.Name)
		}
		addr, err := c.sharedAddr(decl, n.Indices, fr)
		if err != nil {
			return Value{}, err
		}
		c.flush()
		c.mach.Access(c.node, false, addr, c.curPC)
		return FromBits(c.store.Load(addr), decl.Base == parc.FloatType), nil

	case *parc.CallExpr:
		if _, isBuiltin := parc.Builtins[n.Name]; isBuiltin {
			return c.evalBuiltin(n, fr)
		}
		f := c.prog.FuncMap[n.Name]
		if f == nil {
			return Value{}, c.errf("undefined function %q", n.Name)
		}
		args := make([]Value, len(n.Args))
		for i, a := range n.Args {
			v, err := c.eval(a, fr)
			if err != nil {
				return Value{}, err
			}
			args[i] = v
		}
		c.work(2)
		savedPC, savedPos := c.curPC, c.curPos
		v, err := c.call(f, args)
		c.curPC, c.curPos = savedPC, savedPos
		return v, err

	case *parc.UnaryExpr:
		x, err := c.eval(n.X, fr)
		if err != nil {
			return Value{}, err
		}
		c.work(1)
		switch n.Op {
		case parc.TokMinus:
			if x.Float {
				return FloatVal(-x.F), nil
			}
			return IntVal(-x.I), nil
		case parc.TokNot:
			if x.Truthy() {
				return IntVal(0), nil
			}
			return IntVal(1), nil
		}
		return Value{}, c.errf("bad unary operator")

	case *parc.BinaryExpr:
		return c.evalBinary(n, fr)
	}
	return Value{}, c.errf("cannot evaluate %T", e)
}

func boolVal(b bool) Value {
	if b {
		return IntVal(1)
	}
	return IntVal(0)
}

func (c *Context) evalBinary(n *parc.BinaryExpr, fr *frame) (Value, error) {
	// Short-circuit logical operators.
	if n.Op == parc.TokAndAnd || n.Op == parc.TokOrOr {
		x, err := c.eval(n.X, fr)
		if err != nil {
			return Value{}, err
		}
		c.work(1)
		if n.Op == parc.TokAndAnd && !x.Truthy() {
			return IntVal(0), nil
		}
		if n.Op == parc.TokOrOr && x.Truthy() {
			return IntVal(1), nil
		}
		y, err := c.eval(n.Y, fr)
		if err != nil {
			return Value{}, err
		}
		return boolVal(y.Truthy()), nil
	}

	x, err := c.eval(n.X, fr)
	if err != nil {
		return Value{}, err
	}
	y, err := c.eval(n.Y, fr)
	if err != nil {
		return Value{}, err
	}
	c.work(1)
	switch n.Op {
	case parc.TokPlus:
		return numeric(x, y, func(a, b int64) int64 { return a + b }, func(a, b float64) float64 { return a + b }), nil
	case parc.TokMinus:
		return numeric(x, y, func(a, b int64) int64 { return a - b }, func(a, b float64) float64 { return a - b }), nil
	case parc.TokStar:
		return numeric(x, y, func(a, b int64) int64 { return a * b }, func(a, b float64) float64 { return a * b }), nil
	case parc.TokSlash:
		if x.Float || y.Float {
			return FloatVal(x.AsFloat() / y.AsFloat()), nil
		}
		if y.I == 0 {
			return Value{}, c.errf("integer division by zero")
		}
		return IntVal(x.I / y.I), nil
	case parc.TokPercent:
		if x.Float || y.Float {
			return Value{}, c.errf("%% requires integer operands")
		}
		if y.I == 0 {
			return Value{}, c.errf("integer modulo by zero")
		}
		return IntVal(x.I % y.I), nil
	case parc.TokEq:
		return boolVal(compare(x, y) == 0), nil
	case parc.TokNe:
		return boolVal(compare(x, y) != 0), nil
	case parc.TokLt:
		return boolVal(compare(x, y) < 0), nil
	case parc.TokLe:
		return boolVal(compare(x, y) <= 0), nil
	case parc.TokGt:
		return boolVal(compare(x, y) > 0), nil
	case parc.TokGe:
		return boolVal(compare(x, y) >= 0), nil
	}
	return Value{}, c.errf("bad binary operator")
}

func compare(x, y Value) int {
	if x.Float || y.Float {
		a, b := x.AsFloat(), y.AsFloat()
		switch {
		case a < b:
			return -1
		case a > b:
			return 1
		}
		return 0
	}
	switch {
	case x.I < y.I:
		return -1
	case x.I > y.I:
		return 1
	}
	return 0
}

func (c *Context) evalBuiltin(n *parc.CallExpr, fr *frame) (Value, error) {
	args := make([]Value, len(n.Args))
	for i, a := range n.Args {
		v, err := c.eval(a, fr)
		if err != nil {
			return Value{}, err
		}
		args[i] = v
	}
	c.work(1)
	switch n.Name {
	case "pid":
		return IntVal(int64(c.node)), nil
	case "nprocs":
		return IntVal(int64(c.nprocs)), nil
	case "min":
		if compare(args[0], args[1]) <= 0 {
			return args[0], nil
		}
		return args[1], nil
	case "max":
		if compare(args[0], args[1]) >= 0 {
			return args[0], nil
		}
		return args[1], nil
	case "abs":
		if args[0].Float {
			return FloatVal(math.Abs(args[0].F)), nil
		}
		if args[0].I < 0 {
			return IntVal(-args[0].I), nil
		}
		return args[0], nil
	case "sqrt":
		return FloatVal(math.Sqrt(args[0].AsFloat())), nil
	case "sin":
		return FloatVal(math.Sin(args[0].AsFloat())), nil
	case "cos":
		return FloatVal(math.Cos(args[0].AsFloat())), nil
	case "floor":
		return FloatVal(math.Floor(args[0].AsFloat())), nil
	case "float":
		return FloatVal(args[0].AsFloat()), nil
	case "int":
		return IntVal(args[0].AsInt()), nil
	case "rnd":
		c.rng = c.rng*6364136223846793005 + 1442695040888963407
		return FloatVal(float64(c.rng>>11) / (1 << 53)), nil
	case "rndseed":
		c.rng = uint64(args[0].AsInt())*0x9E3779B97F4A7C15 + 0xD1B54A32D192ED03
		return IntVal(0), nil
	}
	return Value{}, c.errf("unknown builtin %q", n.Name)
}

// evalRangeRef expands a CICO annotation target into contiguous address
// ranges. Indices are clamped to the array bounds: annotations must never
// affect program semantics (paper Section 4.5), so out-of-range annotation
// indices are trimmed rather than faulting.
func (c *Context) evalRangeRef(r *parc.RangeRef, fr *frame) ([]AddrRange, error) {
	decl := c.prog.SharedMap[r.Name]
	if decl == nil {
		return nil, c.errf("annotation target %q is not shared", r.Name)
	}
	if len(decl.DimSizes) == 0 {
		return []AddrRange{{Lo: decl.BaseAddr, Hi: decl.BaseAddr}}, nil
	}
	los := make([]int, len(r.Indices))
	his := make([]int, len(r.Indices))
	for d, ix := range r.Indices {
		lov, err := c.eval(ix.Lo, fr)
		if err != nil {
			return nil, err
		}
		lo := int(lov.AsInt())
		hi := lo
		if ix.Hi != nil {
			hiv, err := c.eval(ix.Hi, fr)
			if err != nil {
				return nil, err
			}
			hi = int(hiv.AsInt())
		}
		lo = max(lo, 0)
		hi = min(hi, decl.DimSizes[d]-1)
		if lo > hi {
			return nil, nil // empty after clamping
		}
		los[d], his[d] = lo, hi
	}
	// Cartesian product over all but the last dimension; the last dimension
	// is contiguous.
	var out []AddrRange
	idx := make([]int, len(los))
	copy(idx, los)
	last := len(los) - 1
	for {
		off := 0
		for d := 0; d < last; d++ {
			off = off*decl.DimSizes[d] + idx[d]
		}
		loOff := off*decl.DimSizes[last] + los[last]
		hiOff := off*decl.DimSizes[last] + his[last]
		out = append(out, AddrRange{
			Lo: decl.BaseAddr + uint64(loOff)*parc.ElemSize,
			Hi: decl.BaseAddr + uint64(hiOff)*parc.ElemSize,
		})
		// Advance the multi-index over dims [0, last).
		d := last - 1
		for ; d >= 0; d-- {
			idx[d]++
			if idx[d] <= his[d] {
				break
			}
			idx[d] = los[d]
		}
		if d < 0 {
			break
		}
	}
	return out, nil
}

// formatPrint renders a ParC print format with %d, %f, %g, and %% verbs.
func formatPrint(format string, args []Value) string {
	var sb strings.Builder
	ai := 0
	for i := 0; i < len(format); i++ {
		ch := format[i]
		if ch != '%' || i+1 >= len(format) {
			sb.WriteByte(ch)
			continue
		}
		i++
		verb := format[i]
		if verb == '%' {
			sb.WriteByte('%')
			continue
		}
		if ai >= len(args) {
			sb.WriteString("%!missing")
			continue
		}
		v := args[ai]
		ai++
		switch verb {
		case 'd':
			fmt.Fprintf(&sb, "%d", v.AsInt())
		case 'f':
			fmt.Fprintf(&sb, "%f", v.AsFloat())
		case 'g':
			fmt.Fprintf(&sb, "%g", v.AsFloat())
		default:
			fmt.Fprintf(&sb, "%%!%c", verb)
		}
	}
	return sb.String()
}
