package interp

import (
	"testing"

	"cachier/internal/memory"
	"cachier/internal/parc"
)

// poolSrc exercises every frame-pool compartment: kernel has named scalars
// (the cleared prefix), literal constants (materialized into the constant
// pool), temporaries, and a private array, and main calls it repeatedly so
// frames cycle through the per-function free-list on both the recursive VM
// and the lane stepper.
const poolSrc = `
shared float out[4];
func kernel(n int) float {
    var acc float = 0.0;
    var buf float[8];
    for i = 0 to 7 { buf[i] = float(i) * 2.5; }
    for i = 1 to n { acc += buf[i % 8] + 3.25; }
    return acc;
}
func main() {
    var t float = 0.0;
    for r = 0 to 3 { t += kernel(16); }
    out[pid()] = t;
}
`

func compileFor(t testing.TB, src string) (*parc.Program, *progCode) {
	t.Helper()
	prog := parc.MustParse(src)
	if err := parc.Check(prog); err != nil {
		t.Fatal(err)
	}
	return prog, prog.Artifact(func() any { return compileProgram(prog) }).(*progCode)
}

// checkFrameClean asserts the frame-pool reuse contract on a frame just
// handed out by acquire: the named-scalar prefix reads as zero Values, the
// constant pool still holds exactly the compiled literal values, and private
// arrays are unbound but keep their cached backing storage.
func checkFrameClean(t *testing.T, co *fnCode, fr *vmFrame) {
	t.Helper()
	for i := 0; i < co.clearRegs; i++ {
		if fr.regs[i] != (Value{}) {
			t.Errorf("%s: reg %d not cleared on reuse: %+v", co.fn.Name, i, fr.regs[i])
		}
	}
	for i, v := range co.poolVals {
		if got := fr.regs[int(co.poolBase)+i]; got != v {
			t.Errorf("%s: constant-pool reg %d corrupted: got %+v want %+v",
				co.fn.Name, int(co.poolBase)+i, got, v)
		}
	}
	for i := range fr.arrays {
		if fr.arrays[i].data != nil {
			t.Errorf("%s: private array %d still bound on reuse", co.fn.Name, i)
		}
	}
}

// TestFramePoolCleanSlate pins the vmFrame pooling contract directly:
// acquire a frame, scribble every mutable compartment, release it, and
// verify the next acquire hands the same frame back with the named-scalar
// prefix zeroed, the constant pool intact, and arrays unbound but with
// their backing capacity retained. A pooling bug here would leak one
// activation's register Values into the next and silently corrupt results,
// so this must fail before any engine-level differential does.
func TestFramePoolCleanSlate(t *testing.T) {
	prog, pcm := compileFor(t, poolSrc)
	co := pcm.fns[prog.FuncMap["kernel"]]
	if co == nil {
		t.Fatal("kernel did not compile")
	}
	if co.clearRegs == 0 || len(co.poolVals) == 0 || co.narrs == 0 {
		t.Fatalf("test program misses a pool compartment: clearRegs=%d poolVals=%d narrs=%d",
			co.clearRegs, len(co.poolVals), co.narrs)
	}
	layout, err := memory.New(prog, 4)
	if err != nil {
		t.Fatal(err)
	}
	c := NewContext(prog, NewStore(layout.TotalBytes()), &mockMachine{}, 0, 1)
	c.pools = make([][]*vmFrame, pcm.nfns)

	fr := c.acquire(co)
	for i, v := range co.poolVals {
		if got := fr.regs[int(co.poolBase)+i]; got != v {
			t.Fatalf("fresh frame constant-pool reg %d: got %+v want %+v", int(co.poolBase)+i, got, v)
		}
	}
	// Scribble the cleared prefix and the temporaries, and bind a private
	// array; the constant pool stays untouched, as in real execution (the
	// compiler never emits a write to those registers), so release is
	// entitled to preserve rather than restore it.
	for i := 0; i < co.clearRegs; i++ {
		fr.regs[i] = FloatVal(float64(i) + 0.5)
	}
	for i := int(co.poolBase) + len(co.poolVals); i < co.nregs; i++ {
		fr.regs[i] = IntVal(int64(i) * 3)
	}
	for i := range fr.arrays {
		data := make([]Value, 6)
		for j := range data {
			data[j] = IntVal(int64(j + 1))
		}
		fr.arrays[i] = privArray{base: parc.IntType, dims: []int{6}, data: data, cache: data}
	}
	c.release(co, fr)

	got := c.acquire(co)
	if got != fr {
		t.Fatal("acquire did not reuse the released frame")
	}
	checkFrameClean(t, co, got)
	for i := range got.arrays {
		if cap(got.arrays[i].cache) == 0 {
			t.Errorf("private array %d lost its cached backing storage", i)
		}
	}
}

// TestFramePoolCleanAfterRun runs the same program to completion on the
// recursive VM and on the lane stepper, then audits every frame left in
// every pool: both engines must honor the release contract on every path
// (including the lane stepper's opRet and final-flush unwinding).
func TestFramePoolCleanAfterRun(t *testing.T) {
	for _, eng := range []struct {
		name string
		lane bool
	}{{"vm", false}, {"lane", true}} {
		t.Run(eng.name, func(t *testing.T) {
			prog, pcm := compileFor(t, poolSrc)
			layout, err := memory.New(prog, 4)
			if err != nil {
				t.Fatal(err)
			}
			ctx := NewContext(prog, NewStore(layout.TotalBytes()), &mockMachine{}, 0, 1)
			if eng.lane {
				if !pcm.laneable {
					t.Fatal("program not laneable")
				}
				ctx.UseLaneVM()
			}
			if err := ctx.Run(); err != nil {
				t.Fatal(err)
			}
			audited := 0
			for _, co := range pcm.fns {
				if co == nil {
					continue
				}
				for _, fr := range ctx.pools[co.idx] {
					checkFrameClean(t, co, fr)
					audited++
				}
			}
			if audited == 0 {
				t.Fatal("no pooled frames to audit")
			}
		})
	}
}

// BenchmarkLaneStep compares the resumable lane stepper (run-to-completion
// through Run's UseLaneVM route) against the recursive VM on the same
// compute-bound program BenchmarkInterp uses, isolating the per-instruction
// cost of the explicit-stack dispatch from the simulator around it.
func BenchmarkLaneStep(b *testing.B) {
	prog := parc.MustParse(interpBenchSrc)
	if err := parc.Check(prog); err != nil {
		b.Fatal(err)
	}
	layout, err := memory.New(prog, 32)
	if err != nil {
		b.Fatal(err)
	}
	for _, eng := range []struct {
		name string
		lane bool
	}{{"vm", false}, {"lane", true}} {
		b.Run(eng.name, func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				store := NewStore(layout.TotalBytes())
				ctx := NewContext(prog, store, &mockMachine{}, 0, 1)
				if eng.lane {
					ctx.UseLaneVM()
				}
				if err := ctx.Run(); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}
