package interp

import (
	"fmt"

	"cachier/internal/parc"
)

// This file lowers checked ParC functions into the flat instruction streams
// executed by vm.go. The compiler's contract is strict observational
// equivalence with the tree-walker in interp.go: the sequence of Machine
// calls (Access/Directive/Barrier/Lock/Unlock/Work/Print), the argument of
// every one of them, and the points at which accumulated local work is
// flushed must be identical, because the simulator's schedule — and
// therefore every golden cycle count — derives from that event stream.
//
// Concretely that means:
//
//   - Every work(1) charge the tree-walker makes is replayed as a unit
//     charge: instructions carry an nwork count of pending unit charges,
//     applied one at a time before the instruction's own semantics, so the
//     512-cycle flush threshold trips at exactly the same event.
//   - Charges never migrate across a potential flush point (any shared
//     access, barrier, lock, print, or directive) or across a control-flow
//     merge; pending compile-time charges are closed into an opNop before
//     binding a jump target.
//   - Constant subscripts are folded into a precomputed offset, but the
//     per-dimension work charge and bounds check the tree-walker performs
//     are preserved (value math is folded, charge events are not).
//   - Dynamic name resolution for nodes synthesized after checking
//     (Cachier's rewriter) is resolved at compile time in the same order
//     the tree-walker resolves it at run time. The one divergence is
//     deliberate: a generated loop counter gets a synthetic register
//     instead of a frame.dyn map entry, so a read of such a counter before
//     its loop ever ran yields 0 where the tree-walker reports "undefined
//     name". The rewriter only references counters inside their own loops,
//     so no reachable Cachier output hits the difference; programs where
//     the compiler cannot prove the resolution unambiguous (a generated
//     counter name colliding with a constant or shared variable) fall back
//     to the tree-walker wholesale.
//
// Functions the compiler cannot lower are left out of the progCode and run
// on the tree-walker via Context.call; compiled callers invoke them through
// a fallback call instruction, so mixed execution is transparent.

// op is a VM opcode.
type op uint8

const (
	opNop         op = iota // hosts work charges only
	opConst                 // regs[a] = imm
	opCoerce                // regs[a] = coerce(regs[b], base(n))
	opJump                  // ip = n
	opJz                    // if !regs[a].Truthy() ip = n
	opSCAnd                 // if !regs[b].Truthy() { regs[a] = 0; ip = n }
	opSCOr                  // if regs[b].Truthy() { regs[a] = 1; ip = n }
	opTruthy                // regs[a] = boolVal(regs[b].Truthy())
	opNeg                   // regs[a] = -regs[b]
	opNot                   // regs[a] = !regs[b]
	opAdd                   // regs[a] = regs[b] + regs[c]
	opSub                   // regs[a] = regs[b] - regs[c]
	opMul                   // regs[a] = regs[b] * regs[c]
	opDiv                   // regs[a] = regs[b] / regs[c] (int /0 errors)
	opMod                   // regs[a] = regs[b] % regs[c] (int only)
	opEq                    // regs[a] = compare(regs[b], regs[c]) == 0
	opNe                    // ... != 0
	opLt                    // ... < 0
	opLe                    // ... <= 0
	opGt                    // ... > 0
	opGe                    // ... >= 0
	opBuiltin               // regs[a] = builtin n(regs[b], regs[c])
	opCall                  // regs[a] = call aux.(*callPayload) (compiled or tree)
	opRet                   // return regs[a] (a<0: fall-off-end/void)
	opForPrep               // init hidden loop state for aux.(*forPayload)
	opForCheck              // loop entry test; sets counter reg; exit to n
	opForNext               // back edge: counter += step, re-test, continue to n+1
	opAllocArr              // (re)allocate private array aux.(*allocPayload)
	opArrNil                // error if private array a never allocated (msg aux)
	opBounds                // bounds-check index regs[b] against size n
	opFail                  // unconditional runtime error aux.(*failPayload)
	opDivGuardReg           // /= guard: rhs regs[b] int-zero and !regs[a].Float errors
	opDivGuardInt           // /= guard: rhs regs[b] int-zero errors (dest statically int)
	opAsgLocal              // regs[a] = applyOp(regs[a], AssignOp(n), regs[b], cur.Float)
	opLoadArr               // regs[a] = private array element (aux *memAccess)
	opAsgArr                // private array element op= regs[b] (aux *memAccess)
	opLoadShared            // regs[a] = shared load (flush+Access; aux *memAccess)
	opAsgShared             // shared store/compound (flush+Access(+read); aux *memAccess)
	opBarrier               // flush; Barrier
	opLock                  // flush; Lock(regs[a].AsInt())
	opUnlock                // flush; Unlock(regs[a].AsInt())
	opPrint                 // flush; Print (aux *printPayload)
	opDirBegin              // reset directive clamp state (aux *dirPayload)
	opDirDim                // clamp dim c from regs[a]:regs[b]; empty → ip = n
	opDirEmit               // flush; Directive(scratch ranges)
	opDirNil                // flush; Directive(nil) — range empty after clamping

	// Fused compare-and-branch forms: evaluate the comparison and jump to n
	// when it is false, without materializing the boolean. Produced by the
	// peephole pass from a comparison whose sole consumer is the
	// immediately following opJz.
	opEqJf // if !(regs[b] == regs[c]) ip = n
	opNeJf
	opLtJf
	opLeJf
	opGtJf
	opGeJf
)

// instr is one VM instruction. pc is the enclosing statement ID (the trace
// program counter the tree-walker would have in curPC at this point), nwork
// the number of unit work charges to apply before the op's own semantics.
type instr struct {
	op      op
	nwork   uint16
	a, b, c int32 // register operands (or slot/array indices)
	n       int32 // jump target, assignment/builtin op, base type, size
	pc      int32
	imm     Value
	aux     any
}

// idxTerm is one non-constant subscript contribution to a flattened offset.
// When the term's bounds check has been folded into the access op (see
// foldBounds), size holds the dimension extent to check against and nwork
// the unit work charges that precede the check; size 0 means the check runs
// as a standalone opBounds earlier in the stream.
type idxTerm struct {
	reg    int32
	stride int64
	size   int64
	dim    int32
	nwork  uint16
}

// memAccess describes a lowered array or shared-variable access: the
// constant part of the flattened element offset plus one term per
// non-constant subscript. For private arrays arr is the frame array slot;
// for shared accesses decl carries the declaration (base address, type).
// postWork holds unit charges that follow the last folded bounds check
// (constant-subscript charges), applied after all term checks.
type memAccess struct {
	name     string
	arr      int32
	decl     *parc.SharedDecl
	constOff int64
	terms    []idxTerm
	isFloat  bool
	assignOp parc.AssignOp
	postWork uint16
}

// callPayload describes a user-function call site. code is nil when the
// callee could not be compiled; the VM then routes through the
// tree-walker's Context.call.
type callPayload struct {
	fn   *parc.FuncDecl
	code *fnCode
	args []int32
}

// forPayload carries a counted loop's register layout: from/to/step source
// registers (step < 0 means the default step of 1), the triple of hidden
// state registers at base (i, hi, step), and the counter's visible register.
type forPayload struct {
	varName        string
	from, to, step int32
	base           int32
	slot           int32
}

type allocPayload struct {
	arr  int32
	size int
	dims []int
	base parc.BaseType
}

type printPayload struct {
	format string
	args   []int32
}

// dirPayload describes a CICO directive target; los/his index the
// per-dimension clamp state scratch on the Context.
type dirPayload struct {
	kind parc.AnnKind
	decl *parc.SharedDecl
}

type boundsPayload struct {
	name string
	dim  int
}

type failPayload struct {
	msg string
}

// fnCode is one compiled function. Registers are laid out as
// [named scalars | synthetic counters | constant pool | temporaries]: the
// constant pool holds every distinct literal the body materializes, written
// once when a frame is first allocated and preserved across pooled reuse
// (release only clears the clearRegs named+synthetic prefix; temporaries
// are always written before they are read).
type fnCode struct {
	fn        *parc.FuncDecl
	idx       int // frame pool index
	ins       []instr
	nregs     int
	narrs     int
	poolBase  int32
	poolVals  []Value
	clearRegs int
}

// progCode is the compiled form of a Program, cached on the Program via
// Artifact and shared by every Context that executes it.
type progCode struct {
	fns  map[*parc.FuncDecl]*fnCode
	nfns int

	// laneable reports that the whole program runs on compiled code — main
	// compiled and no call site falls back to the tree-walker — so the
	// resumable lane stepper (lane.go) can execute it. Computed once here;
	// a non-laneable program makes NewLaneVM refuse and the lane engine
	// fall back to the sequential engine.
	laneable bool
}

// compileProgram lowers every function it can; uncompilable functions map
// to nil and run on the tree-walker.
func compileProgram(prog *parc.Program) *progCode {
	pc := &progCode{fns: make(map[*parc.FuncDecl]*fnCode, len(prog.Funcs))}
	for _, f := range prog.Funcs {
		co, err := compileFunc(prog, f)
		if err != nil {
			pc.fns[f] = nil
			continue
		}
		co.idx = pc.nfns
		pc.nfns++
		pc.fns[f] = co
	}
	// Resolve call sites now that every function has been compiled.
	for _, co := range pc.fns {
		if co == nil {
			continue
		}
		for i := range co.ins {
			if cp, ok := co.ins[i].aux.(*callPayload); ok && cp.fn != nil {
				cp.code = pc.fns[cp.fn]
			}
		}
	}
	pc.laneable = pc.fns[prog.FuncMap["main"]] != nil
	for _, co := range pc.fns {
		if co == nil || !pc.laneable {
			continue
		}
		for i := range co.ins {
			if cp, ok := co.ins[i].aux.(*callPayload); ok && cp.code == nil {
				// A tree-walker fallback call cannot suspend/resume.
				pc.laneable = false
				break
			}
		}
	}
	return pc
}

type funcCompiler struct {
	prog *parc.Program
	fn   *parc.FuncDecl

	ins     []instr
	pend    int
	curStmt int32

	sp    int32 // next free register
	maxSp int32

	syn map[string]int32 // synthetic registers for generated loop counters

	pool       map[Value]int32 // literal value -> constant-pool register
	constSeen  map[Value]bool
	constOrder []Value
	firstTemp  int32

	labels []int32 // label id -> instruction index (patched at bind time)
}

// compileFunc lowers a function in two passes: the first discovers the
// distinct literal values the body materializes, the second compiles for
// real with those values pinned in constant-pool registers, so literal
// references cost nothing in the instruction stream.
func compileFunc(prog *parc.Program, f *parc.FuncDecl) (*fnCode, error) {
	scout := &funcCompiler{prog: prog, fn: f, sp: int32(f.NumScalars)}
	if _, err := scout.compile(nil); err != nil {
		return nil, err
	}
	fc := &funcCompiler{prog: prog, fn: f, sp: int32(f.NumScalars)}
	return fc.compile(scout.constOrder)
}

func (fc *funcCompiler) compile(poolVals []Value) (*fnCode, error) {
	f := fc.fn
	fc.maxSp = fc.sp
	if err := fc.collectSyn(); err != nil {
		return nil, err
	}
	clearRegs := int(fc.sp) // named scalars + synthetic counters
	poolBase := fc.sp
	if len(poolVals) > 0 {
		fc.pool = make(map[Value]int32, len(poolVals))
		for _, v := range poolVals {
			fc.pool[v] = fc.alloc()
		}
	}
	fc.firstTemp = fc.sp
	if err := fc.block(f.Body); err != nil {
		return nil, err
	}
	// Fall-off-the-end return; hosts any trailing pending charges.
	fc.emit(instr{op: opRet, a: -1})
	fc.propagateCopies()
	fc.fuseCompares()
	for i := range fc.ins {
		if isJumpOp(fc.ins[i].op) {
			fc.ins[i].n = fc.labels[fc.ins[i].n]
		}
	}
	return &fnCode{
		fn:        f,
		ins:       fc.ins,
		nregs:     int(fc.maxSp),
		narrs:     f.NumArrays,
		poolBase:  poolBase,
		poolVals:  poolVals,
		clearRegs: clearRegs,
	}, nil
}

func isJumpOp(o op) bool {
	switch o {
	case opJump, opJz, opSCAnd, opSCOr, opForCheck, opForNext, opDirDim,
		opEqJf, opNeJf, opLtJf, opLeJf, opGtJf, opGeJf:
		return true
	}
	return false
}

// fusedOp maps a comparison opcode to its fused compare-and-branch form.
func fusedOp(o op) (op, bool) {
	switch o {
	case opEq:
		return opEqJf, true
	case opNe:
		return opNeJf, true
	case opLt:
		return opLtJf, true
	case opLe:
		return opLeJf, true
	case opGt:
		return opGtJf, true
	case opGe:
		return opGeJf, true
	}
	return o, false
}

// retargetable reports whether an op's only register effect is writing
// regs[a] (it never reads regs[a]), so its destination can be renamed.
// Machine-visible side effects (an Access from a load, a builtin's rng
// update) are untouched by renaming the destination.
func retargetable(o op) bool {
	switch o {
	case opConst, opCoerce, opTruthy, opNeg, opNot,
		opAdd, opSub, opMul, opDiv, opMod,
		opEq, opNe, opLt, opLe, opGt, opGe,
		opBuiltin, opCall, opLoadArr, opLoadShared:
		return true
	}
	return false
}

// propagateCopies folds the ubiquitous pattern
//
//	temp = <op ...>        (temp's only writer)
//	slot = temp            (plain opAsgLocal, OpSet)
//
// into a single instruction writing the slot directly. Safe because every
// expression temporary has exactly one consumer (the parent construct), so
// nothing reads temp after the dropped assignment; OpSet stores the value
// unmodified, so redirecting the producer is observationally identical. The
// assignment must host no work charges (hosted charges would migrate across
// the producer's Machine effects) and must not be a jump target (the jump
// would skip the store). Runs before label patching; removed instructions
// only require remapping label indices.
func (fc *funcCompiler) propagateCopies() {
	isTarget := make(map[int32]bool, len(fc.labels))
	for _, idx := range fc.labels {
		isTarget[idx] = true
	}
	out := fc.ins[:0]
	remap := make([]int32, len(fc.ins)+1)
	for i := 0; i < len(fc.ins); i++ {
		remap[i] = int32(len(out))
		in := fc.ins[i]
		if i > 0 && len(out) > 0 && in.op == opAsgLocal &&
			parc.AssignOp(in.n) == parc.OpSet && in.nwork == 0 &&
			in.b >= fc.firstTemp && !isTarget[int32(i)] {
			prev := &out[len(out)-1]
			// prev must be the instruction emitted immediately before the
			// assignment (nothing dropped in between shifts it: drops only
			// retarget temps to slots, which then fail the prev.a==in.b test).
			if retargetable(prev.op) && prev.a == in.b {
				prev.a = in.a
				continue
			}
		}
		out = append(out, in)
	}
	remap[len(fc.ins)] = int32(len(out))
	for l, idx := range fc.labels {
		if idx >= 0 {
			fc.labels[l] = remap[idx]
		}
	}
	fc.ins = out
}

// fuseCompares rewrites comparison + opJz pairs into single fused
// compare-and-branch instructions. A pair fuses only when the branch tests
// the register the comparison just wrote, that register is a temporary (so
// nothing else reads it), the branch is not itself a jump target, and the
// merged work charges fit; the charge order is preserved because the
// comparison's charges precede the test in both forms. Runs before label
// patching, so removed branches only require remapping label indices.
func (fc *funcCompiler) fuseCompares() {
	isTarget := make(map[int32]bool, len(fc.labels))
	for _, idx := range fc.labels {
		isTarget[idx] = true
	}
	out := fc.ins[:0]
	remap := make([]int32, len(fc.ins)+1)
	for i := 0; i < len(fc.ins); i++ {
		remap[i] = int32(len(out))
		in := fc.ins[i]
		if f, ok := fusedOp(in.op); ok && i+1 < len(fc.ins) {
			nx := fc.ins[i+1]
			if nx.op == opJz && nx.a == in.a && in.a >= fc.firstTemp &&
				!isTarget[int32(i+1)] && int(in.nwork)+int(nx.nwork) <= 0xFFFF {
				in.op = f
				in.nwork += nx.nwork
				in.n = nx.n
				remap[i+1] = int32(len(out))
				out = append(out, in)
				i++
				continue
			}
		}
		out = append(out, in)
	}
	remap[len(fc.ins)] = int32(len(out))
	for l, idx := range fc.labels {
		if idx >= 0 {
			fc.labels[l] = remap[idx]
		}
	}
	fc.ins = out
}

// errUncompilable marks constructs the compiler hands back to the
// tree-walker.
func errUncompilable(format string, args ...any) error {
	return fmt.Errorf("uncompilable: "+format, args...)
}

// collectSyn pre-assigns registers to loop counters of generated (unchecked)
// for statements, mirroring the tree-walker's frame.dyn map. A counter name
// that collides with a constant or shared variable would make the dynamic
// resolution order execution-dependent, so those functions are rejected.
func (fc *funcCompiler) collectSyn() error {
	var err error
	parc.Walk(fc.fn.Body, func(s parc.Stmt) bool {
		f, ok := s.(*parc.ForStmt)
		if !ok || f.VarSlot != 0 {
			return true
		}
		if b, ok := fc.fn.Bindings[f.Var]; ok && !b.Array {
			return true // resolves to a checked slot, no synthetic needed
		}
		if _, dup := fc.synReg(f.Var); dup {
			return true
		}
		if _, isConst := fc.prog.ConstVal[f.Var]; isConst {
			err = errUncompilable("generated counter %q shadows a constant", f.Var)
			return false
		}
		if _, isShared := fc.prog.SharedMap[f.Var]; isShared {
			err = errUncompilable("generated counter %q shadows a shared variable", f.Var)
			return false
		}
		if fc.syn == nil {
			fc.syn = make(map[string]int32)
		}
		fc.syn[f.Var] = fc.alloc()
		return true
	})
	return err
}

func (fc *funcCompiler) synReg(name string) (int32, bool) {
	r, ok := fc.syn[name]
	return r, ok
}

// constVal returns a register holding the literal value: the constant-pool
// register when one is assigned (written once per frame, no per-use
// instruction), else a freshly written temporary. Literal evaluation is
// charge-free in the tree-walker, so eliding the instruction moves no work
// charges across any observable event. On the discovery pass the value is
// recorded for the real pass's pool.
func (fc *funcCompiler) constVal(v Value) int32 {
	if r, ok := fc.pool[v]; ok {
		return r
	}
	if !fc.constSeen[v] {
		if fc.constSeen == nil {
			fc.constSeen = make(map[Value]bool)
		}
		fc.constSeen[v] = true
		fc.constOrder = append(fc.constOrder, v)
	}
	dst := fc.alloc()
	fc.emit(instr{op: opConst, a: dst, imm: v})
	return dst
}

func (fc *funcCompiler) alloc() int32 {
	r := fc.sp
	fc.sp++
	if fc.sp > fc.maxSp {
		fc.maxSp = fc.sp
	}
	return r
}

func (fc *funcCompiler) charge(n int) { fc.pend += n }

// emit appends an instruction, attaching pending work charges and the
// current statement's trace PC.
func (fc *funcCompiler) emit(in instr) int32 {
	for fc.pend > 0xFFFF {
		fc.ins = append(fc.ins, instr{op: opNop, nwork: 0xFFFF, pc: fc.curStmt})
		fc.pend -= 0xFFFF
	}
	in.nwork += uint16(fc.pend)
	fc.pend = 0
	in.pc = fc.curStmt
	fc.ins = append(fc.ins, in)
	return int32(len(fc.ins) - 1)
}

// closePending hosts any pending charges in an opNop; called before binding
// a label so charges cannot leak across a control-flow merge.
func (fc *funcCompiler) closePending() {
	if fc.pend > 0 {
		fc.emit(instr{op: opNop})
	}
}

func (fc *funcCompiler) newLabel() int32 {
	fc.labels = append(fc.labels, -1)
	return int32(len(fc.labels) - 1)
}

func (fc *funcCompiler) bind(l int32) {
	fc.closePending()
	fc.labels[l] = int32(len(fc.ins))
}

func (fc *funcCompiler) block(b *parc.Block) error {
	for _, s := range b.Stmts {
		if err := fc.stmt(s); err != nil {
			return err
		}
	}
	return nil
}

func (fc *funcCompiler) stmt(s parc.Stmt) error {
	fc.curStmt = int32(s.ID())
	fc.charge(1) // execStmt entry charge
	mark := fc.sp
	defer func() { fc.sp = mark }()

	switch n := s.(type) {
	case *parc.Block:
		return fc.block(n)

	case *parc.VarDeclStmt:
		if n.Slot == 0 {
			fc.emit(instr{op: opFail, aux: &failPayload{msg: fmt.Sprintf("declaration of %q was not checked", n.Name)}})
			return nil
		}
		if len(n.DimSizes) > 0 {
			size := 1
			for _, d := range n.DimSizes {
				size *= d
			}
			fc.emit(instr{op: opAllocArr, aux: &allocPayload{arr: int32(n.Slot - 1), size: size, dims: n.DimSizes, base: n.Base}})
			return nil
		}
		if n.Init != nil {
			r, err := fc.expr(n.Init)
			if err != nil {
				return err
			}
			fc.emit(instr{op: opCoerce, a: int32(n.Slot - 1), b: r, n: int32(n.Base)})
			return nil
		}
		fc.emit(instr{op: opConst, a: int32(n.Slot - 1), imm: coerce(Value{}, n.Base)})
		return nil

	case *parc.AssignStmt:
		return fc.assign(n)

	case *parc.IfStmt:
		r, err := fc.expr(n.Cond)
		if err != nil {
			return err
		}
		end := fc.newLabel()
		if n.Else == nil {
			fc.emit(instr{op: opJz, a: r, n: end})
			if err := fc.block(n.Then); err != nil {
				return err
			}
			fc.bind(end)
			return nil
		}
		els := fc.newLabel()
		fc.emit(instr{op: opJz, a: r, n: els})
		if err := fc.block(n.Then); err != nil {
			return err
		}
		fc.emit(instr{op: opJump, n: end})
		fc.bind(els)
		if err := fc.stmt(n.Else); err != nil {
			return err
		}
		fc.curStmt = int32(s.ID())
		fc.bind(end)
		return nil

	case *parc.WhileStmt:
		head := fc.newLabel()
		exit := fc.newLabel()
		fc.bind(head)
		r, err := fc.expr(n.Cond)
		if err != nil {
			return err
		}
		fc.emit(instr{op: opJz, a: r, n: exit})
		if err := fc.block(n.Body); err != nil {
			return err
		}
		// Per-iteration charge precedes the next condition evaluation.
		fc.curStmt = int32(s.ID())
		fc.charge(1)
		fc.emit(instr{op: opJump, n: head})
		fc.bind(exit)
		return nil

	case *parc.ForStmt:
		base := fc.alloc()
		fc.alloc()
		fc.alloc()
		rf, err := fc.expr(n.From)
		if err != nil {
			return err
		}
		rt, err := fc.expr(n.To)
		if err != nil {
			return err
		}
		rs := int32(-1)
		if n.Step != nil {
			if rs, err = fc.expr(n.Step); err != nil {
				return err
			}
		}
		slot := int32(n.VarSlot - 1)
		if slot < 0 {
			if b, ok := fc.fn.Bindings[n.Var]; ok && !b.Array {
				slot = int32(b.Slot)
			} else if r, ok := fc.synReg(n.Var); ok {
				slot = r
			} else {
				return errUncompilable("loop counter %q has no register", n.Var)
			}
		}
		fp := &forPayload{varName: n.Var, from: rf, to: rt, step: rs, base: base, slot: slot}
		fc.emit(instr{op: opForPrep, aux: fp})
		head := fc.newLabel()
		exit := fc.newLabel()
		fc.bind(head)
		fc.emit(instr{op: opForCheck, a: base, b: slot, n: exit})
		if err := fc.block(n.Body); err != nil {
			return err
		}
		fc.curStmt = int32(s.ID())
		fc.charge(1) // per-iteration charge precedes increment and re-check
		// The back edge increments, re-tests, and jumps straight to the body
		// (n resolves to the opForCheck, so n+1 is its successor) in one
		// dispatch; opForCheck runs only on loop entry. The head check hosts
		// no work charges (bind closed pending just before it was emitted),
		// so skipping it on iterations leaves charging identical.
		fc.emit(instr{op: opForNext, a: base, b: slot, n: head})
		fc.bind(exit)
		return nil

	case *parc.BarrierStmt:
		fc.emit(instr{op: opBarrier})
		return nil

	case *parc.LockStmt:
		r, err := fc.expr(n.LockID)
		if err != nil {
			return err
		}
		fc.emit(instr{op: opLock, a: r})
		return nil

	case *parc.UnlockStmt:
		r, err := fc.expr(n.LockID)
		if err != nil {
			return err
		}
		fc.emit(instr{op: opUnlock, a: r})
		return nil

	case *parc.ReturnStmt:
		if n.Value != nil {
			r, err := fc.expr(n.Value)
			if err != nil {
				return err
			}
			fc.emit(instr{op: opRet, a: r, n: 1})
			return nil
		}
		fc.emit(instr{op: opRet, a: -1, n: 1})
		return nil

	case *parc.ExprStmt:
		_, err := fc.expr(n.Call)
		return err

	case *parc.PrintStmt:
		args := make([]int32, len(n.Args))
		for i, a := range n.Args {
			r, err := fc.expr(a)
			if err != nil {
				return err
			}
			args[i] = r
		}
		fc.emit(instr{op: opPrint, aux: &printPayload{format: n.Format, args: args}})
		return nil

	case *parc.CICOStmt:
		return fc.directive(n)

	case *parc.CommentStmt:
		return nil // entry charge rolls into the next instruction
	}
	return errUncompilable("cannot compile %T", s)
}

// directive lowers a CICO statement. Dimension bounds are evaluated in
// order, and an empty-after-clamping dimension short-circuits the remaining
// evaluations exactly as the tree-walker's evalRangeRef does.
func (fc *funcCompiler) directive(n *parc.CICOStmt) error {
	r := n.Target
	decl := r.Shared
	if decl == nil {
		decl = fc.prog.SharedMap[r.Name]
	}
	if decl == nil {
		fc.emit(instr{op: opFail, aux: &failPayload{msg: fmt.Sprintf("annotation target %q is not shared", r.Name)}})
		return nil
	}
	dp := &dirPayload{kind: n.Kind, decl: decl}
	if len(decl.DimSizes) == 0 {
		fc.emit(instr{op: opDirEmit, aux: dp})
		return nil
	}
	if len(r.Indices) > len(decl.DimSizes) {
		return errUncompilable("annotation target %q has too many dimensions", r.Name)
	}
	fc.emit(instr{op: opDirBegin, aux: dp})
	empty := fc.newLabel()
	end := fc.newLabel()
	for d, ix := range r.Indices {
		lo, err := fc.expr(ix.Lo)
		if err != nil {
			return err
		}
		hi := int32(-1)
		if ix.Hi != nil {
			if hi, err = fc.expr(ix.Hi); err != nil {
				return err
			}
		}
		fc.emit(instr{op: opDirDim, a: lo, b: hi, c: int32(d), n: empty, aux: dp})
	}
	fc.emit(instr{op: opDirEmit, aux: dp})
	fc.emit(instr{op: opJump, n: end})
	fc.bind(empty)
	fc.emit(instr{op: opDirNil, aux: dp})
	fc.bind(end)
	return nil
}

// lvKind mirrors Context.resolveLValue at compile time. The extra synthetic
// case models the frame.dyn fallback.
func (fc *funcCompiler) assign(n *parc.AssignStmt) error {
	lv := n.LHS
	rhs, err := fc.expr(n.RHS)
	if err != nil {
		return err
	}

	ref, slot, decl := lv.Ref, int32(lv.Slot), lv.Shared
	synSlot := int32(-1)
	if ref == parc.RefUnresolved {
		if b, ok := fc.fn.Bindings[lv.Name]; ok {
			if b.Array {
				ref, slot = parc.RefArray, int32(b.Slot)
			} else {
				ref, slot = parc.RefLocal, int32(b.Slot)
			}
		} else if d, ok := fc.prog.SharedMap[lv.Name]; ok {
			ref, decl = parc.RefShared, d
		} else if r, ok := fc.synReg(lv.Name); ok && len(lv.Indices) == 0 {
			synSlot = r
		}
	}

	// The /= integer-zero guard runs after the RHS evaluation but before
	// any index evaluation or resolution failure, so it is emitted first.
	if n.Op == parc.OpDiv {
		switch {
		case ref == parc.RefLocal:
			fc.emit(instr{op: opDivGuardReg, a: slot, b: rhs})
		case synSlot >= 0:
			fc.emit(instr{op: opDivGuardReg, a: synSlot, b: rhs})
		case ref == parc.RefArray:
			if fc.fn.Bindings == nil {
				return errUncompilable("array assign without bindings")
			}
			if !fc.arrayIsFloat(lv, slot) {
				fc.emit(instr{op: opDivGuardInt, b: rhs})
			}
		case ref == parc.RefShared:
			if decl.Base != parc.FloatType {
				fc.emit(instr{op: opDivGuardInt, b: rhs})
			}
		default:
			// Unresolved destination: destIsFloat reports false, so the
			// guard still fires before the "undefined variable" error.
			fc.emit(instr{op: opDivGuardInt, b: rhs})
		}
	}

	switch {
	case ref == parc.RefLocal:
		fc.emit(instr{op: opAsgLocal, a: slot, b: rhs, n: int32(n.Op)})
		return nil

	case synSlot >= 0:
		fc.emit(instr{op: opAsgLocal, a: synSlot, b: rhs, n: int32(n.Op)})
		return nil

	case ref == parc.RefArray:
		arr := fc.arrayDecl(lv.Name, slot)
		if arr == nil {
			return errUncompilable("array %q has no declaration", lv.Name)
		}
		fc.emit(instr{op: opArrNil, a: slot, aux: &failPayload{msg: fmt.Sprintf("undefined variable %q", lv.Name)}})
		ma := &memAccess{name: lv.Name, arr: slot, isFloat: arr.Base == parc.FloatType, assignOp: n.Op}
		if err := fc.indices(ma, arr.DimSizes, lv.Indices); err != nil {
			return err
		}
		fc.emitAccess(instr{op: opAsgArr, b: rhs, n: int32(n.Op), aux: ma}, ma)
		return nil

	case ref == parc.RefShared:
		ma := &memAccess{name: decl.Name, decl: decl, isFloat: decl.Base == parc.FloatType, assignOp: n.Op}
		if err := fc.indices(ma, decl.DimSizes, lv.Indices); err != nil {
			return err
		}
		fc.emitAccess(instr{op: opAsgShared, b: rhs, n: int32(n.Op), aux: ma}, ma)
		return nil
	}

	fc.emit(instr{op: opFail, aux: &failPayload{msg: fmt.Sprintf("undefined variable %q", lv.Name)}})
	return nil
}

// arrayDecl finds the VarDeclStmt for a private array slot so the compiler
// can see its dimensions; the checker records it in the binding table.
func (fc *funcCompiler) arrayDecl(name string, slot int32) *parc.VarDeclStmt {
	b, ok := fc.fn.Bindings[name]
	if ok && b.Array && int32(b.Slot) == slot && b.Decl != nil {
		return b.Decl
	}
	// Fall back to scanning bindings (the name may differ only on
	// generated nodes, which always use the declared name anyway).
	for _, b := range fc.fn.Bindings {
		if b.Array && int32(b.Slot) == slot && b.Decl != nil {
			return b.Decl
		}
	}
	return nil
}

func (fc *funcCompiler) arrayIsFloat(lv *parc.LValue, slot int32) bool {
	if d := fc.arrayDecl(lv.Name, slot); d != nil {
		return d.Base == parc.FloatType
	}
	return false
}

// indices lowers a subscript list: per dimension, the tree-walker charges
// one work unit, evaluates the index, then bounds-checks it. Constant
// subscripts fold into ma.constOff; their charge and (compile-time) bounds
// check remain.
func (fc *funcCompiler) indices(ma *memAccess, dims []int, indices []parc.Expr) error {
	if len(indices) > len(dims) {
		return errUncompilable("%s: more subscripts than dimensions", ma.name)
	}
	// stride[d] over the dimensions actually subscripted: the tree-walker
	// computes off = off*dims[d] + ix over d < len(indices).
	stride := int64(1)
	strides := make([]int64, len(indices))
	for d := len(indices) - 1; d >= 0; d-- {
		strides[d] = stride
		stride *= int64(dims[d])
	}
	var boundsAt []int32 // instruction index of each dynamic term's opBounds
	for d, ixe := range indices {
		fc.charge(1)
		if k, ok := fc.constIndex(ixe); ok {
			if k < 0 || k >= int64(dims[d]) {
				fc.emit(instr{op: opFail, aux: &failPayload{
					msg: fmt.Sprintf("%s: index %d out of range [0,%d) in dimension %d", ma.name, int(k), dims[d], d),
				}})
				// Execution never passes the failure; no offset term needed.
				continue
			}
			ma.constOff += k * strides[d]
			continue
		}
		r, err := fc.expr(ixe)
		if err != nil {
			return err
		}
		bi := fc.emit(instr{op: opBounds, b: r, n: int32(dims[d]), aux: &boundsPayload{name: ma.name, dim: d}})
		boundsAt = append(boundsAt, bi)
		ma.terms = append(ma.terms, idxTerm{reg: r, stride: strides[d], dim: int32(d)})
	}
	fc.foldBounds(ma, boundsAt)
	return nil
}

// foldBounds folds the trailing run of standalone bounds-check instructions
// into the access op's terms. Only a check with no instructions between it
// and the access can move: anything in between (a later subscript whose
// evaluation emits code) could error or report a Machine event that the
// tree-walker orders after this check. Each folded term records the unit
// charges its check instruction hosted, so the access op replays the
// tree-walker's charge/check interleaving exactly; a check that is a jump
// target stays put so label indices remain valid.
func (fc *funcCompiler) foldBounds(ma *memAccess, boundsAt []int32) {
	j := int32(len(fc.ins) - 1)
	t := len(ma.terms) - 1
	for t >= 0 && boundsAt[t] == j && !fc.isLabelTarget(j) {
		in := fc.ins[j]
		ma.terms[t].size = int64(in.n)
		ma.terms[t].nwork = in.nwork
		j--
		t--
	}
	fc.ins = fc.ins[:j+1]
}

func (fc *funcCompiler) isLabelTarget(idx int32) bool {
	for _, v := range fc.labels {
		if v == idx {
			return true
		}
	}
	return false
}

// emitAccess emits a memory-access instruction. When bounds checks were
// folded into its terms, the charges the instruction itself would host
// (those following the last folded check — constant-subscript charges) move
// to ma.postWork so they are applied after the term checks, in tree order.
func (fc *funcCompiler) emitAccess(in instr, ma *memAccess) {
	folded := false
	for i := range ma.terms {
		if ma.terms[i].size > 0 {
			folded = true
			break
		}
	}
	idx := fc.emit(in)
	if folded {
		ma.postWork = fc.ins[idx].nwork
		fc.ins[idx].nwork = 0
	}
}

// constIndex reports whether a subscript expression is a charge-free
// compile-time constant (literal or named constant) that can be folded.
func (fc *funcCompiler) constIndex(e parc.Expr) (int64, bool) {
	switch x := e.(type) {
	case *parc.IntLit:
		return x.Value, true
	case *parc.FloatLit:
		return int64(x.Value), true // AsInt truncation, as the tree-walker does
	case *parc.VarRef:
		if x.Ref == parc.RefConst {
			return x.Const, true
		}
		if x.Ref == parc.RefUnresolved {
			if _, ok := fc.fn.Bindings[x.Name]; ok {
				return 0, false
			}
			if _, ok := fc.synReg(x.Name); ok {
				return 0, false
			}
			if v, ok := fc.prog.ConstVal[x.Name]; ok {
				return v, true
			}
		}
	}
	return 0, false
}

// expr compiles an expression and returns the register holding its value.
// Named scalars are returned in place (no copy); everything else lands in a
// temporary above the statement's register mark.
func (fc *funcCompiler) expr(e parc.Expr) (int32, error) {
	switch n := e.(type) {
	case *parc.IntLit:
		return fc.constVal(IntVal(n.Value)), nil

	case *parc.FloatLit:
		return fc.constVal(FloatVal(n.Value)), nil

	case *parc.VarRef:
		return fc.varRef(n)

	case *parc.IndexExpr:
		return fc.indexExpr(n)

	case *parc.CallExpr:
		return fc.callExpr(n)

	case *parc.UnaryExpr:
		x, err := fc.expr(n.X)
		if err != nil {
			return 0, err
		}
		fc.charge(1)
		dst := fc.alloc()
		switch n.Op {
		case parc.TokMinus:
			fc.emit(instr{op: opNeg, a: dst, b: x})
		case parc.TokNot:
			fc.emit(instr{op: opNot, a: dst, b: x})
		default:
			return 0, errUncompilable("bad unary operator")
		}
		return dst, nil

	case *parc.BinaryExpr:
		return fc.binary(n)
	}
	return 0, errUncompilable("cannot compile %T", e)
}

func (fc *funcCompiler) varRef(n *parc.VarRef) (int32, error) {
	switch n.Ref {
	case parc.RefLocal:
		return int32(n.Slot), nil
	case parc.RefConst:
		return fc.constVal(IntVal(n.Const)), nil
	case parc.RefShared:
		dst := fc.alloc()
		fc.emit(instr{op: opLoadShared, a: dst, aux: &memAccess{name: n.Name, decl: n.Shared, isFloat: n.Shared.Base == parc.FloatType}})
		return dst, nil
	}
	// Generated reference: mirror the tree-walker's dynamic order
	// (bindings, dyn, constants, shared).
	if b, ok := fc.fn.Bindings[n.Name]; ok && !b.Array {
		return int32(b.Slot), nil
	}
	if r, ok := fc.synReg(n.Name); ok {
		return r, nil
	}
	if v, ok := fc.prog.ConstVal[n.Name]; ok {
		return fc.constVal(IntVal(v)), nil
	}
	if decl, ok := fc.prog.SharedMap[n.Name]; ok {
		dst := fc.alloc()
		fc.emit(instr{op: opLoadShared, a: dst, aux: &memAccess{name: n.Name, decl: decl, isFloat: decl.Base == parc.FloatType}})
		return dst, nil
	}
	dst := fc.alloc()
	fc.emit(instr{op: opFail, a: dst, aux: &failPayload{msg: fmt.Sprintf("undefined name %q", n.Name)}})
	return dst, nil
}

func (fc *funcCompiler) indexExpr(n *parc.IndexExpr) (int32, error) {
	var (
		arrSlot = int32(-1)
		decl    *parc.SharedDecl
	)
	switch n.Ref {
	case parc.RefArray:
		arrSlot = int32(n.Slot)
	case parc.RefShared:
		decl = n.Shared
	default:
		if b, ok := fc.fn.Bindings[n.Name]; ok && b.Array {
			arrSlot = int32(b.Slot)
		} else if d := fc.prog.SharedMap[n.Name]; d != nil {
			decl = d
		} else {
			dst := fc.alloc()
			fc.emit(instr{op: opFail, a: dst, aux: &failPayload{msg: fmt.Sprintf("%q is not an array", n.Name)}})
			return dst, nil
		}
	}
	if arrSlot >= 0 {
		arr := fc.arrayDecl(n.Name, arrSlot)
		if arr == nil {
			return 0, errUncompilable("array %q has no declaration", n.Name)
		}
		// The tree-walker checks "never allocated" before evaluating
		// subscripts.
		fc.emit(instr{op: opArrNil, a: arrSlot, aux: &failPayload{msg: fmt.Sprintf("%q is not an array", n.Name)}})
		ma := &memAccess{name: n.Name, arr: arrSlot, isFloat: arr.Base == parc.FloatType}
		if err := fc.indices(ma, arr.DimSizes, n.Indices); err != nil {
			return 0, err
		}
		dst := fc.alloc()
		fc.emitAccess(instr{op: opLoadArr, a: dst, aux: ma}, ma)
		return dst, nil
	}
	ma := &memAccess{name: decl.Name, decl: decl, isFloat: decl.Base == parc.FloatType}
	if err := fc.indices(ma, decl.DimSizes, n.Indices); err != nil {
		return 0, err
	}
	dst := fc.alloc()
	fc.emitAccess(instr{op: opLoadShared, a: dst, aux: ma}, ma)
	return dst, nil
}

func (fc *funcCompiler) callExpr(n *parc.CallExpr) (int32, error) {
	id, f := n.Builtin, n.Fn
	if id == parc.BuiltinNone && f == nil {
		// Generated call: resolve by name, builtins first.
		if bid, ok := parc.BuiltinByName[n.Name]; ok {
			id = bid
		} else if f = fc.prog.FuncMap[n.Name]; f == nil {
			dst := fc.alloc()
			fc.emit(instr{op: opFail, a: dst, aux: &failPayload{msg: fmt.Sprintf("undefined function %q", n.Name)}})
			return dst, nil
		}
	}
	if id != parc.BuiltinNone {
		if len(n.Args) > 2 {
			return 0, errUncompilable("builtin %q with %d args", n.Name, len(n.Args))
		}
		argr := [2]int32{-1, -1}
		for i, a := range n.Args {
			r, err := fc.expr(a)
			if err != nil {
				return 0, err
			}
			argr[i] = r
		}
		fc.charge(1)
		dst := fc.alloc()
		fc.emit(instr{op: opBuiltin, a: dst, b: argr[0], c: argr[1], n: int32(id)})
		return dst, nil
	}
	args := make([]int32, len(n.Args))
	for i, a := range n.Args {
		r, err := fc.expr(a)
		if err != nil {
			return 0, err
		}
		args[i] = r
	}
	dst := fc.alloc()
	fc.emit(instr{op: opCall, a: dst, aux: &callPayload{fn: f, args: args}})
	return dst, nil
}

func (fc *funcCompiler) binary(n *parc.BinaryExpr) (int32, error) {
	if n.Op == parc.TokAndAnd || n.Op == parc.TokOrOr {
		x, err := fc.expr(n.X)
		if err != nil {
			return 0, err
		}
		fc.charge(1)
		dst := fc.alloc()
		end := fc.newLabel()
		sc := opSCAnd
		if n.Op == parc.TokOrOr {
			sc = opSCOr
		}
		fc.emit(instr{op: sc, a: dst, b: x, n: end})
		y, err := fc.expr(n.Y)
		if err != nil {
			return 0, err
		}
		fc.emit(instr{op: opTruthy, a: dst, b: y})
		fc.bind(end)
		return dst, nil
	}

	x, err := fc.expr(n.X)
	if err != nil {
		return 0, err
	}
	y, err := fc.expr(n.Y)
	if err != nil {
		return 0, err
	}
	fc.charge(1)
	var o op
	switch n.Op {
	case parc.TokPlus:
		o = opAdd
	case parc.TokMinus:
		o = opSub
	case parc.TokStar:
		o = opMul
	case parc.TokSlash:
		o = opDiv
	case parc.TokPercent:
		o = opMod
	case parc.TokEq:
		o = opEq
	case parc.TokNe:
		o = opNe
	case parc.TokLt:
		o = opLt
	case parc.TokLe:
		o = opLe
	case parc.TokGt:
		o = opGt
	case parc.TokGe:
		o = opGe
	default:
		return 0, errUncompilable("bad binary operator")
	}
	dst := fc.alloc()
	fc.emit(instr{op: o, a: dst, b: x, c: y})
	return dst, nil
}
