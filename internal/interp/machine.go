package interp

import "cachier/internal/parc"

// AddrRange is an inclusive range of element byte addresses with
// ElemSize stride; CICO directives over array slices produce one range per
// contiguous run.
type AddrRange struct {
	Lo, Hi uint64
}

// Machine is the interpreter's view of the simulated machine. The simulator
// implements it for timing and protocol modelling, and the oracle package
// implements it a second time as a pure observer (directives become no-ops),
// which is what lets the conformance harness run the same interpreter under
// both and compare results. Calls may suspend the calling processor's
// goroutine until the scheduler resumes it. All methods are invoked with the
// processor's accumulated local work already flushed.
//
// A Machine is owned by a single simulation run: implementations are not
// required to be safe for use by goroutines outside that run, and callers
// must not share one Machine between concurrent simulations.
type Machine interface {
	// Access reports a shared-data reference (one element) by node at the
	// given statement ID.
	Access(node int, write bool, addr uint64, pc int)

	// Directive reports an explicit CICO annotation execution. The ranges
	// slice is only valid for the duration of the call (the VM reuses a
	// per-context scratch buffer); implementations that retain it must
	// copy.
	Directive(node int, kind parc.AnnKind, ranges []AddrRange, pc int)

	// Barrier blocks the node until all nodes arrive.
	Barrier(node int, pc int)

	// Lock acquires and Unlock releases a numbered mutex.
	Lock(node int, id int64, pc int)
	Unlock(node int, id int64, pc int)

	// Work charges local computation cycles.
	Work(node int, cycles uint64)

	// Print delivers debug output.
	Print(node int, text string)
}

// workFlushLimit bounds how much local work accumulates before being
// reported, so that compute-only stretches still advance the node's clock
// and yield to the scheduler.
const workFlushLimit = 512
