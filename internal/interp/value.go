// Package interp executes ParC programs. Each simulated processor runs the
// SPMD entry point in its own interpreter context; every shared-memory
// reference, CICO directive, barrier, and lock operation is reported to a
// Machine (implemented by the simulator), which charges costs and schedules
// processors. Shared values live in a Store shared by all contexts; the
// simulator guarantees only one context runs at a time, so the interpreter
// needs no internal locking.
package interp

import (
	"fmt"
	"math"

	"cachier/internal/parc"
)

// Value is a ParC runtime value: an int64 or a float64.
type Value struct {
	Float bool
	I     int64
	F     float64
}

// IntVal makes an integer value.
func IntVal(i int64) Value { return Value{I: i} }

// FloatVal makes a float value.
func FloatVal(f float64) Value { return Value{Float: true, F: f} }

// AsFloat returns the value as a float64, converting ints.
func (v Value) AsFloat() float64 {
	if v.Float {
		return v.F
	}
	return float64(v.I)
}

// AsInt returns the value as an int64, truncating floats.
func (v Value) AsInt() int64 {
	if v.Float {
		return int64(v.F)
	}
	return v.I
}

// Truthy reports whether the value is nonzero.
func (v Value) Truthy() bool {
	if v.Float {
		return v.F != 0
	}
	return v.I != 0
}

// Bits returns the value's 64-bit memory representation.
func (v Value) Bits() uint64 {
	if v.Float {
		return math.Float64bits(v.F)
	}
	return uint64(v.I)
}

// FromBits decodes a 64-bit memory word as the given element type.
func FromBits(bits uint64, float bool) Value {
	if float {
		return FloatVal(math.Float64frombits(bits))
	}
	return IntVal(int64(bits))
}

func (v Value) String() string {
	if v.Float {
		return fmt.Sprintf("%g", v.F)
	}
	return fmt.Sprintf("%d", v.I)
}

// coerce converts v to the given base type (used on assignment).
func coerce(v Value, base parc.BaseType) Value {
	if base == parc.FloatType {
		return FloatVal(v.AsFloat())
	}
	return IntVal(v.AsInt())
}

// Store holds the values of all shared variables, addressed by byte address
// (element-aligned). Coherence and cost are modelled separately by the
// memory system; the Store is the simulator's "main memory + caches" value
// state, valid because the simulated machine is sequentially consistent at
// scheduler granularity.
type Store struct {
	words []uint64
}

// NewStore allocates a store covering totalBytes of address space.
func NewStore(totalBytes uint64) *Store {
	return &Store{words: make([]uint64, (totalBytes+parc.ElemSize-1)/parc.ElemSize)}
}

// Load reads the element word at addr.
func (s *Store) Load(addr uint64) uint64 { return s.words[addr/parc.ElemSize] }

// StoreWord writes the element word at addr.
func (s *Store) StoreWord(addr uint64, bits uint64) { s.words[addr/parc.ElemSize] = bits }

// Words exposes the store's backing array, one uint64 per element word
// (index addr/parc.ElemSize). The simulator's epoch-parallel engine uses it
// to build and synchronize its shadow image of shared memory; callers must
// follow the same single-active-writer discipline as Load/StoreWord.
func (s *Store) Words() []uint64 { return s.words }

// RuntimeError is an error raised during ParC execution, carrying the
// processor, source position, and statement ID where it occurred.
type RuntimeError struct {
	Node int
	Pos  parc.Pos
	PC   int
	Msg  string
}

func (e *RuntimeError) Error() string {
	if e.Pos.IsValid() {
		return fmt.Sprintf("node %d: %s: %s", e.Node, e.Pos, e.Msg)
	}
	return fmt.Sprintf("node %d: stmt %d: %s", e.Node, e.PC, e.Msg)
}
