package interp

import (
	"math"
	"testing"
	"testing/quick"

	"cachier/internal/memory"
	"cachier/internal/parc"
)

// layoutT keeps the helper signature readable.
type layoutT = memory.Layout

func newLayout(prog *parc.Program) (*layoutT, error) { return memory.New(prog, 32) }

func TestValueConversions(t *testing.T) {
	if IntVal(7).AsFloat() != 7.0 || IntVal(7).AsInt() != 7 {
		t.Error("IntVal conversions")
	}
	if FloatVal(2.9).AsInt() != 2 || FloatVal(-2.9).AsInt() != -2 {
		t.Error("float truncation toward zero")
	}
	if !IntVal(1).Truthy() || IntVal(0).Truthy() {
		t.Error("int truthiness")
	}
	if !FloatVal(0.5).Truthy() || FloatVal(0).Truthy() {
		t.Error("float truthiness")
	}
}

func TestBitsRoundTripProperty(t *testing.T) {
	fInt := func(v int64) bool {
		return FromBits(IntVal(v).Bits(), false).I == v
	}
	if err := quick.Check(fInt, nil); err != nil {
		t.Error(err)
	}
	fFloat := func(v float64) bool {
		if math.IsNaN(v) {
			return math.IsNaN(FromBits(FloatVal(v).Bits(), true).F)
		}
		return FromBits(FloatVal(v).Bits(), true).F == v
	}
	if err := quick.Check(fFloat, nil); err != nil {
		t.Error(err)
	}
}

func TestCoerce(t *testing.T) {
	if v := coerce(FloatVal(3.7), parc.IntType); v.Float || v.I != 3 {
		t.Errorf("coerce float->int: %+v", v)
	}
	if v := coerce(IntVal(3), parc.FloatType); !v.Float || v.F != 3.0 {
		t.Errorf("coerce int->float: %+v", v)
	}
}

func TestStoreAddressing(t *testing.T) {
	s := NewStore(256)
	s.StoreWord(0, 42)
	s.StoreWord(248, 99)
	if s.Load(0) != 42 || s.Load(248) != 99 {
		t.Error("store round trip")
	}
	// Element-aligned addresses within a word map to that word.
	if s.Load(0) != s.Load(0) {
		t.Error("unstable load")
	}
}

func TestRuntimeErrorFormat(t *testing.T) {
	e := &RuntimeError{Node: 3, Pos: parc.Pos{Line: 7, Col: 2}, Msg: "boom"}
	if got := e.Error(); got != "node 3: 7:2: boom" {
		t.Errorf("error = %q", got)
	}
	e2 := &RuntimeError{Node: 1, PC: 9, Msg: "x"}
	if got := e2.Error(); got != "node 1: stmt 9: x" {
		t.Errorf("error = %q", got)
	}
}

// TestInterpArithmeticMatchesGo: random integer expressions evaluate the
// same in ParC as in Go.
func TestInterpArithmeticMatchesGo(t *testing.T) {
	f := func(a, b int16, pick uint8) bool {
		x, y := int64(a), int64(b)
		var want int64
		var op string
		switch pick % 5 {
		case 0:
			op, want = "+", x+y
		case 1:
			op, want = "-", x-y
		case 2:
			op, want = "*", x*y
		case 3:
			if y == 0 {
				return true
			}
			op, want = "/", x/y
		case 4:
			if y == 0 {
				return true
			}
			op, want = "%", x%y
		}
		src := `
shared int out;
func main() {
    var a int = ` + itoa(x) + `;
    var b int = ` + itoa(y) + `;
    out = a ` + op + ` b;
}
`
		prog, err := parc.Parse(src)
		if err != nil {
			return false
		}
		_, store, layout, err := runProg(prog)
		if err != nil {
			return false
		}
		addr, _ := layout.AddrOf("out")
		return FromBits(store.Load(addr), false).I == want
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

// runProg executes a parsed program on a single mock-machine processor.
func runProg(prog *parc.Program) (*mockMachine, *Store, *layoutT, error) {
	layout, err := newLayout(prog)
	if err != nil {
		return nil, nil, nil, err
	}
	store := NewStore(layout.TotalBytes())
	m := &mockMachine{}
	err = NewContext(prog, store, m, 0, 1).Run()
	return m, store, layout, err
}

func itoa(v int64) string {
	if v < 0 {
		return "0 - " + itoa(-v)
	}
	digits := "0123456789"
	if v < 10 {
		return string(digits[v])
	}
	return itoa(v/10) + string(digits[v%10])
}
