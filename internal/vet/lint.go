package vet

import (
	"fmt"

	"cachier/internal/parc"
)

// The annotation linter replays one node's event stream against a
// per-variable checkout state machine. The protocol it checks is the CICO
// discipline from paper Section 3: a node checks out the blocks it will
// touch, uses them, and checks them back in before the next barrier; a
// shared check-out grants read-only access; a block is unusable between
// its check-in and a re-check-out.
//
// Identity across loop iterations matters: check_out(pv[i]) in iteration 3
// and a write to pv[i] in iteration 4 name different elements even though
// both abstract to the same interval. Two events are about the same
// instance only when they come from the same loop-body instance (iterCtx)
// or when neither depends on an abstract value at all (both invariant).

// annEntry is one outstanding or retired checkout region.
type annEntry struct {
	dims    []si
	shared  bool // check_out_s
	variant bool
	iterCtx int
	epoch   int
	pos     parc.Pos
}

// access is one shared access not covered by any active checkout when it
// happened, kept for the late-check-out rule.
type access struct {
	dims    []si
	write   bool
	variant bool
	iterCtx int
	pos     parc.Pos
	text    string
}

type lintVar struct {
	active    []annEntry // checked out, not yet checked in
	checkedIn []annEntry // checked in during the current epoch
	bare      []access   // uncovered accesses in the current epoch
}

func sameInstance(aVariant bool, aIter int, bVariant bool, bIter int) bool {
	if !aVariant && !bVariant {
		return true
	}
	return aIter == bIter
}

// dimsMayOverlap reports whether two per-dimension element sets can name a
// common element. Missing trailing dimensions (whole-array annotations)
// cover everything.
func dimsMayOverlap(a, b []si) bool {
	n := len(a)
	if len(b) < n {
		n = len(b)
	}
	for d := 0; d < n; d++ {
		if !a[d].overlaps(b[d]) {
			return false
		}
	}
	return true
}

// dimsCover reports whether outer covers every element of inner.
func dimsCover(outer, inner []si) bool {
	for d, o := range outer {
		if d >= len(inner) {
			// Outer constrains a dimension inner doesn't: inner spans it all.
			return false
		}
		if !o.contains(inner[d]) {
			return false
		}
	}
	return true
}

// lint replays one node's event stream through the checkout state machine.
func (v *vetter) lint(r *nodeRun) {
	vars := make(map[string]*lintVar)
	get := func(name string) *lintVar {
		lv := vars[name]
		if lv == nil {
			lv = &lintVar{}
			vars[name] = lv
		}
		return lv
	}
	flagOpen := func(name string, e annEntry, why string) {
		v.add(Finding{
			Rule: RuleMissingCI, Severity: SevInfo, Pos: e.pos, Var: name,
			Epoch: e.epoch, Nodes: [2]int{r.node, -1},
			Msg: fmt.Sprintf("%s of %s has no matching check_in before %s", coName(e.shared), name, why),
		})
	}
	for _, ev := range r.events {
		switch ev.kind {
		case evBarrier:
			// Checked-out blocks legitimately stay out across barriers —
			// the Section 2.1 whole-fit regime owns its block for the whole
			// time loop — so holding one here is only worth an advisory
			// note (the vetter dedups it to one finding per check-out).
			// Epoch-scoped state is reset.
			for name, lv := range vars {
				for _, e := range lv.active {
					flagOpen(name, e, "the barrier")
				}
				lv.checkedIn = lv.checkedIn[:0]
				lv.bare = lv.bare[:0]
			}
		case evAnn:
			v.lintAnn(r, ev, get(ev.varName))
		case evAccess:
			v.lintAccess(r, ev, get(ev.varName))
		}
	}
	for name, lv := range vars {
		for _, e := range lv.active {
			flagOpen(name, e, "the node returns")
		}
	}
}

func coName(shared bool) string {
	if shared {
		return "check_out_s"
	}
	return "check_out_x"
}

func (v *vetter) lintAnn(r *nodeRun, ev event, lv *lintVar) {
	entry := annEntry{
		dims: ev.dims, shared: ev.ann == parc.AnnCheckOutS,
		variant: ev.variant, iterCtx: ev.iterCtx, epoch: ev.epoch, pos: ev.pos,
	}
	switch ev.ann {
	case parc.AnnCheckOutX, parc.AnnCheckOutS:
		for _, a := range lv.active {
			if a.epoch == ev.epoch && dimsMayOverlap(a.dims, ev.dims) &&
				sameInstance(a.variant, a.iterCtx, ev.variant, ev.iterCtx) {
				v.add(Finding{
					Rule: RuleDoubleCO, Severity: SevWarning, Pos: ev.pos,
					Var: ev.varName, Epoch: ev.epoch, Nodes: [2]int{r.node, -1},
					Msg: fmt.Sprintf("%s overlaps a block of %s already checked out at %s",
						ev.exprText, ev.varName, posString(a.pos)),
				})
				break
			}
		}
		for _, b := range lv.bare {
			if dimsMayOverlap(b.dims, ev.dims) &&
				sameInstance(b.variant, b.iterCtx, ev.variant, ev.iterCtx) {
				v.add(Finding{
					Rule: RuleLateCO, Severity: SevWarning, Pos: ev.pos,
					Var: ev.varName, Epoch: ev.epoch, Nodes: [2]int{r.node, -1},
					Msg: fmt.Sprintf("%s of %s follows an unannotated access to %s at %s in the same epoch",
						coName(entry.shared), ev.varName, b.text, posString(b.pos)),
				})
				break
			}
		}
		lv.active = append(lv.active, entry)
	case parc.AnnCheckIn:
		lv.checkedIn = append(lv.checkedIn, entry)
		kept := lv.active[:0]
		for _, a := range lv.active {
			if !dimsCover(ev.dims, a.dims) {
				kept = append(kept, a)
			}
		}
		lv.active = kept
	// Prefetches are performance hints, not protocol obligations; the
	// simulator treats an unmatched prefetch as harmless, so the linter
	// does too.
	case parc.AnnPrefetchX, parc.AnnPrefetchS:
	}
}

func (v *vetter) lintAccess(r *nodeRun, ev event, lv *lintVar) {
	covered := false
	for _, a := range lv.active {
		if !dimsCover(a.dims, ev.dims) {
			continue
		}
		covered = true
		if ev.write && a.shared {
			v.add(Finding{
				Rule: RuleSharedW, Severity: SevWarning, Pos: ev.pos,
				Var: ev.varName, Epoch: ev.epoch, Nodes: [2]int{r.node, -1},
				Msg: fmt.Sprintf("write to %s under a shared check-out (check_out_s at %s); shared blocks are read-only",
					ev.exprText, posString(a.pos)),
			})
		}
		break
	}
	if covered {
		return
	}
	// Use-after-check-in is only certain within the same loop-body
	// instance: re-touching a block checked in by an *earlier* iteration
	// is legal under the protocol (the access re-fetches the block; slow,
	// not wrong), and Cachier's own output does it.
	for _, ci := range lv.checkedIn {
		if ci.epoch == ev.epoch && ci.iterCtx == ev.iterCtx &&
			dimsMayOverlap(ci.dims, ev.dims) {
			v.add(Finding{
				Rule: RuleUseAfterCI, Severity: SevError, Pos: ev.pos,
				Var: ev.varName, Epoch: ev.epoch, Nodes: [2]int{r.node, -1},
				Msg: fmt.Sprintf("%s is accessed after its block was checked in at %s in the same epoch; the node no longer owns it",
					ev.exprText, posString(ci.pos)),
			})
			return
		}
	}
	lv.bare = append(lv.bare, access{
		dims: ev.dims, write: ev.write, variant: ev.variant,
		iterCtx: ev.iterCtx, pos: ev.pos, text: ev.exprText,
	})
}

func posString(p parc.Pos) string {
	if !p.IsValid() {
		return "<generated>"
	}
	return p.String()
}
