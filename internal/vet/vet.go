// Package vet statically checks ParC programs for the two properties
// Cachier's correctness argument assumes but never verifies (paper Section
// 3): that the input program is data-race-free, and that its CICO
// annotations follow the check-out/check-in protocol discipline.
//
// The race detector runs the program abstractly once per node with pid()
// bound to that node's id, so pid-dependent partition arithmetic folds to
// constants, and models every shared-array access as a strided interval per
// dimension. Barriers advance an epoch counter during the abstract run;
// accesses from two different nodes in the same epoch conflict when at
// least one writes, every dimension's element sets intersect, and the nodes
// hold no common lock.
//
// The annotation linter replays each node's event stream — accesses,
// annotations, barriers in abstract program order — against a per-variable
// checkout state machine, flagging accesses after a check-in, writes under
// a shared check-out, double check-outs, late check-outs, and check-outs
// still open at a barrier or return.
package vet

import (
	"fmt"
	"sort"
	"strings"

	"cachier/internal/analysis"
	"cachier/internal/parc"
)

// Options configures an analysis run.
type Options struct {
	// Nprocs is the number of SPMD nodes to model; it should match the
	// machine size the program is written for (partition arithmetic like
	// N/nprocs() folds per node). Defaults to 4.
	Nprocs int
}

// Severity ranks findings.
type Severity int

// Severities, least to most severe.
const (
	SevInfo Severity = iota
	SevWarning
	SevError
)

func (s Severity) String() string {
	switch s {
	case SevError:
		return "error"
	case SevWarning:
		return "warning"
	}
	return "info"
}

// Finding rules.
const (
	RuleRaceWW     = "race-write-write"
	RuleRaceWR     = "race-write-read"
	RuleBarrierDiv = "barrier-divergence"
	RuleStructural = "epoch-approximation"
	RuleUseAfterCI = "use-after-check-in"
	RuleDoubleCO   = "double-check-out"
	RuleSharedW    = "write-under-check-out-s"
	RuleLateCO     = "check-out-after-use"
	RuleMissingCI  = "missing-check-in"
)

// Finding is one diagnostic produced by the analysis.
type Finding struct {
	Rule     string
	Severity Severity
	Pos      parc.Pos
	Var      string // shared variable involved, "" for structural findings
	Epoch    int    // epoch index the finding occurred in, -1 if not epochal
	Nodes    [2]int // the node pair for races, {node, -1} otherwise
	Msg      string
}

func (f Finding) String() string {
	loc := f.Pos.String()
	if !f.Pos.IsValid() {
		loc = "<generated>"
	}
	return fmt.Sprintf("%s: %s: [%s] %s", loc, f.Severity, f.Rule, f.Msg)
}

// Report is the result of one analysis run.
type Report struct {
	Findings []Finding
}

// Races returns the data-race findings.
func (r *Report) Races() []Finding { return r.filter(RuleRaceWW, RuleRaceWR) }

// LintErrors returns annotation-lint findings of Error severity; a program
// "passes the annotation lint" when this is empty.
func (r *Report) LintErrors() []Finding {
	var out []Finding
	for _, f := range r.Findings {
		if f.Severity == SevError && f.Rule != RuleRaceWW && f.Rule != RuleRaceWR {
			out = append(out, f)
		}
	}
	return out
}

// Errors returns all Error-severity findings (races included).
func (r *Report) Errors() []Finding {
	var out []Finding
	for _, f := range r.Findings {
		if f.Severity == SevError {
			out = append(out, f)
		}
	}
	return out
}

func (r *Report) filter(rules ...string) []Finding {
	var out []Finding
	for _, f := range r.Findings {
		for _, rule := range rules {
			if f.Rule == rule {
				out = append(out, f)
			}
		}
	}
	return out
}

func (r *Report) String() string {
	var b strings.Builder
	for _, f := range r.Findings {
		b.WriteString(f.String())
		b.WriteByte('\n')
	}
	return b.String()
}

// Analyze runs both engines over a checked program and returns the combined
// report. The program must have passed parc.Check (Parse guarantees this).
func Analyze(prog *parc.Program, opts Options) *Report {
	if opts.Nprocs <= 0 {
		opts.Nprocs = 4
	}
	v := &vetter{
		prog: prog,
		info: analysis.Analyze(prog),
		opts: opts,
		seen: make(map[string]bool),
	}
	for _, fn := range prog.Funcs {
		v.checkCFG(buildCFG(fn, v.info, prog.ConstVal))
	}
	main := prog.FuncMap["main"]
	runs := make([]*nodeRun, opts.Nprocs)
	for p := 0; p < opts.Nprocs; p++ {
		runs[p] = newNodeRun(v, p)
		runs[p].run(main)
	}
	v.checkAlignment(runs)
	v.findRaces(runs)
	for _, r := range runs {
		v.lint(r)
	}
	sort.SliceStable(v.findings, func(i, j int) bool {
		a, b := v.findings[i], v.findings[j]
		if a.Severity != b.Severity {
			return a.Severity > b.Severity
		}
		if a.Pos.Line != b.Pos.Line {
			return a.Pos.Line < b.Pos.Line
		}
		return a.Pos.Col < b.Pos.Col
	})
	return &Report{Findings: v.findings}
}

// AnalyzeSource parses a ParC file and vets it. The file name is stamped
// into every position so findings print file:line:col.
func AnalyzeSource(file, src string, opts Options) (*Report, error) {
	prog, err := parc.ParseFile(file, src)
	if err != nil {
		return nil, err
	}
	return Analyze(prog, opts), nil
}

// maxFindings bounds the report; a pathological program should produce a
// readable prefix, not an unbounded dump.
const maxFindings = 200

type vetter struct {
	prog     *parc.Program
	info     *analysis.Info
	opts     Options
	findings []Finding
	seen     map[string]bool // finding dedup keys
}

func (v *vetter) add(f Finding) {
	key := f.Rule + "|" + f.Pos.String() + "|" + f.Var + "|" + f.Msg
	if v.seen[key] || len(v.findings) >= maxFindings {
		return
	}
	v.seen[key] = true
	v.findings = append(v.findings, f)
}

// checkAlignment verifies every node executed the same number of barriers;
// a divergence means the program can deadlock at a barrier and also voids
// the race detector's epoch pairing, so it is an Error.
func (v *vetter) checkAlignment(runs []*nodeRun) {
	for _, r := range runs[1:] {
		if r.epoch != runs[0].epoch {
			v.add(Finding{
				Rule:     RuleBarrierDiv,
				Severity: SevError,
				Epoch:    -1,
				Nodes:    [2]int{0, r.node},
				Msg: fmt.Sprintf("node 0 executes %d barrier(s) but node %d executes %d; barrier arrival is node-dependent",
					runs[0].epoch, r.node, r.epoch),
			})
			return
		}
	}
}

// findRaces pairs shared accesses across nodes within each epoch.
func (v *vetter) findRaces(runs []*nodeRun) {
	// Bucket deduplicated accesses by (var, epoch), keeping per-node lists.
	type bucket struct {
		accs [][]event // by node
	}
	buckets := make(map[string]*bucket)
	for _, r := range runs {
		dedup := make(map[string]bool)
		for _, ev := range r.events {
			if ev.kind != evAccess {
				continue
			}
			key := fmt.Sprintf("%d|%d|%v|%s|%s", ev.stmtID, ev.epoch, ev.write, dimsString(ev.dims), ev.lockKey)
			if dedup[key] {
				continue
			}
			dedup[key] = true
			bk := fmt.Sprintf("%s@%d", ev.varName, ev.epoch)
			b := buckets[bk]
			if b == nil {
				b = &bucket{accs: make([][]event, len(runs))}
				buckets[bk] = b
			}
			b.accs[r.node] = append(b.accs[r.node], ev)
		}
	}
	keys := make([]string, 0, len(buckets))
	for k := range buckets {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	reported := make(map[string]bool)
	for _, k := range keys {
		b := buckets[k]
		for p := 0; p < len(b.accs); p++ {
			for q := p + 1; q < len(b.accs); q++ {
				for _, ea := range b.accs[p] {
					for _, eb := range b.accs[q] {
						v.checkPair(ea, eb, p, q, reported)
					}
				}
			}
		}
	}
}

func (v *vetter) checkPair(a, b event, p, q int, reported map[string]bool) {
	if !a.write && !b.write {
		return
	}
	if commonLock(a, b) {
		return
	}
	for d := range a.dims {
		if d >= len(b.dims) || !a.dims[d].overlaps(b.dims[d]) {
			return
		}
	}
	// Put a write first for the message and the finding position.
	if !a.write {
		a, b = b, a
		p, q = q, p
	}
	rule, kind := RuleRaceWR, "write-read"
	if b.write {
		rule, kind = RuleRaceWW, "write-write"
	}
	// One finding per (rule, statement pair); other node pairs hitting the
	// same source lines add nothing.
	lo, hi := a.stmtID, b.stmtID
	if lo > hi {
		lo, hi = hi, lo
	}
	rk := fmt.Sprintf("%s|%d|%d|%d", rule, lo, hi, a.epoch)
	if reported[rk] {
		return
	}
	reported[rk] = true
	bverb := "reads"
	if b.write {
		bverb = "writes"
	}
	other := ""
	if a.stmtID != b.stmtID || a.exprText != b.exprText {
		otherLoc := b.pos.String()
		if !b.pos.IsValid() {
			otherLoc = "<generated>"
		}
		other = fmt.Sprintf(" (at %s)", otherLoc)
	}
	v.add(Finding{
		Rule:     rule,
		Severity: SevError,
		Pos:      a.pos,
		Var:      a.varName,
		Epoch:    a.epoch,
		Nodes:    [2]int{p, q},
		Msg: fmt.Sprintf("possible %s data race on %s in epoch %d: node %d writes %s = elements %s, node %d %s %s = elements %s%s, no common lock",
			kind, a.varName, a.epoch, p, a.exprText, dimsString(a.dims),
			q, bverb, b.exprText, dimsString(b.dims), other),
	})
}

func commonLock(a, b event) bool {
	if a.lockKey == "" || b.lockKey == "" {
		return false
	}
	as := strings.Split(a.lockKey, ",")
	bs := strings.Split(b.lockKey, ",")
	for _, x := range as {
		for _, y := range bs {
			if x == y {
				return true
			}
		}
	}
	return false
}

// dimsString renders element sets like [0:31][1:61:2]; a scalar renders "".
func dimsString(dims []si) string {
	if len(dims) == 0 {
		return "(scalar)"
	}
	var b strings.Builder
	for _, d := range dims {
		b.WriteString(siString(d))
	}
	return b.String()
}

func siString(d si) string {
	switch {
	case d.empty():
		return "[empty]"
	case d.isConst():
		return fmt.Sprintf("[%d]", d.lo)
	}
	lo, hi := fmt.Sprint(d.lo), fmt.Sprint(d.hi)
	if d.lo <= negInf {
		lo = "-inf"
	}
	if d.hi >= posInf {
		hi = "+inf"
	}
	if d.stride > 1 {
		return fmt.Sprintf("[%s:%s:%d]", lo, hi, d.stride)
	}
	return fmt.Sprintf("[%s:%s]", lo, hi)
}
