package vet

import (
	"fmt"

	"cachier/internal/analysis"
	"cachier/internal/parc"
)

// The epoch CFG is ParC's control structure viewed through its barriers:
// because control flow is structured, each function body splits into
// straight-line segments separated by barrier statements, and the epoch a
// statement executes in is determined by how many barriers precede it. The
// checks here are the node-independent structural ones — places where the
// barrier count is data- or node-dependent, which both voids that epoch
// numbering and risks real barrier deadlock at run time.

// cfg is the barrier-segmented view of one function body.
type cfg struct {
	fn       *parc.FuncDecl
	segments [][]parc.Stmt // top-level statement runs between barriers
	barriers int           // statically known barrier executions, -1 if unknown
	findings []Finding
}

// buildCFG segments a function at its barriers and collects structural
// findings about barrier placements whose epoch structure the abstract
// interpreter can only approximate.
func buildCFG(fn *parc.FuncDecl, info *analysis.Info, consts map[string]int64) *cfg {
	c := &cfg{fn: fn}
	var seg []parc.Stmt
	for _, s := range fn.Body.Stmts {
		if _, isBar := s.(*parc.BarrierStmt); isBar {
			c.segments = append(c.segments, seg)
			seg = nil
			continue
		}
		seg = append(seg, s)
	}
	c.segments = append(c.segments, seg)
	n, known := c.countBarriers(fn.Body, consts)
	if !known {
		n = -1
	}
	c.barriers = n
	if fn.Name != "main" && info.ContainsBarrier(fn.Body) {
		c.warn(fn.Pos, "barrier inside function %q: every node must call it in lockstep or the program deadlocks", fn.Name)
	}
	return c
}

func (c *cfg) warn(pos parc.Pos, format string, args ...any) {
	c.findings = append(c.findings, Finding{
		Rule: RuleStructural, Severity: SevWarning, Pos: pos, Epoch: -1,
		Nodes: [2]int{-1, -1},
		Msg:   fmt.Sprintf(format, args...),
	})
}

// countBarriers computes how many barriers executing s runs, when that is
// statically determined, flagging the constructs that make it data-dependent.
func (c *cfg) countBarriers(s parc.Stmt, consts map[string]int64) (int, bool) {
	switch n := s.(type) {
	case *parc.Block:
		total, known := 0, true
		for _, child := range n.Stmts {
			k, ok := c.countBarriers(child, consts)
			if !ok {
				known = false
			}
			total += k
		}
		return total, known
	case *parc.BarrierStmt:
		return 1, true
	case *parc.IfStmt:
		tb, tok := c.countBarriers(n.Then, consts)
		eb, eok := 0, true
		if n.Else != nil {
			eb, eok = c.countBarriers(n.Else, consts)
		}
		if tok && eok && tb == eb {
			return tb, true
		}
		if tb > 0 || eb > 0 || !tok || !eok {
			c.warn(n.Position(), "branches of this if may execute different numbers of barriers; if the condition is node-dependent the program deadlocks")
			return maxInt(tb, eb), false
		}
		return 0, true
	case *parc.WhileStmt:
		b, _ := c.countBarriers(n.Body, consts)
		if b > 0 {
			c.warn(n.Position(), "barrier inside while loop: the iteration count, and so the epoch structure, is data-dependent")
			return 0, false
		}
		return 0, true
	case *parc.ForStmt:
		b, ok := c.countBarriers(n.Body, consts)
		if b == 0 && ok {
			return 0, true
		}
		if tc, tok := analysis.TripCount(n, consts); tok && ok {
			return int(tc) * b, true
		}
		// The abstract interpreter reports this case; it knows whether the
		// loop is actually enumerable.
		return 0, false
	}
	return 0, true
}

func maxInt(a, b int) int {
	if a > b {
		return a
	}
	return b
}

// checkCFG surfaces a CFG's structural findings through the vetter.
func (v *vetter) checkCFG(c *cfg) {
	for _, f := range c.findings {
		v.add(f)
	}
}
