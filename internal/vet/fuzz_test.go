package vet

import (
	"testing"

	"cachier/internal/parcgen"
)

// FuzzVetGenerated: for any generator seed, the analysis terminates
// without panicking and — because the generator partitions every shared
// write by node — reports nothing at all. The fixed-corpus slice of this
// property (seeds 0..199) runs in internal/conformance; fuzzing extends it
// to arbitrary seeds.
func FuzzVetGenerated(f *testing.F) {
	for seed := int64(0); seed < 16; seed++ {
		f.Add(seed)
	}
	f.Fuzz(func(t *testing.T, seed int64) {
		src := parcgen.Generate(seed)
		rep, err := AnalyzeSource("gen.parc", src, Options{Nprocs: 4})
		if err != nil {
			t.Fatalf("seed %d: generated program failed to parse: %v", seed, err)
		}
		if len(rep.Findings) != 0 {
			t.Fatalf("seed %d: generated program should vet clean:\n%s\n%s", seed, rep, src)
		}
	})
}

// FuzzVetSource: arbitrary text must never panic the analyzer. Parse
// errors are the expected outcome for junk; anything that parses gets the
// full analysis, whose only obligation here is termination.
func FuzzVetSource(f *testing.F) {
	f.Add(`shared float A[8] label "A"; func main() { A[pid()] = 1.0; barrier; }`)
	f.Add(`func main() { barrier; }`)
	f.Add(`const N = 4; shared int x label "x"; func main() { while x < N { x += 1; } barrier; }`)
	f.Add("func main() {")
	f.Fuzz(func(t *testing.T, src string) {
		rep, err := AnalyzeSource("fuzz.parc", src, Options{Nprocs: 3})
		if err != nil {
			return
		}
		_ = rep.String()
	})
}
