package vet

import (
	"strings"
	"testing"

	"cachier/internal/parc"
)

func inferProg(t *testing.T, src string) *parc.Program {
	t.Helper()
	prog, err := parc.Parse(src)
	if err != nil {
		t.Fatal(err)
	}
	if err := parc.Check(prog); err != nil {
		t.Fatal(err)
	}
	return prog
}

// TestSummarizeExactPartition pins the core contract: a concretely
// enumerable SPMD partition program yields an Exact summary whose per-node
// access streams are single-element, in program order, with the right
// epoch structure.
func TestSummarizeExactPartition(t *testing.T) {
	prog := inferProg(t, `
const N = 16;
shared float A[N] label "A";
func main() {
    var chunk int = N / nprocs();
    var lo int = pid() * chunk;
    for i = lo to lo + chunk - 1 {
        A[i] = float(i);
    }
    barrier;
    var s float = 0.0;
    for i = lo to lo + chunk - 1 {
        s = s + A[i];
    }
    barrier;
}`)
	sum, err := Summarize(prog, InferOptions{Nprocs: 4})
	if err != nil {
		t.Fatal(err)
	}
	if !sum.Exact {
		t.Fatalf("partition program should infer exactly; notes: %v", sum.Notes)
	}
	if err := sum.CheckBarrierStructure(); err != nil {
		t.Fatal(err)
	}
	for _, ns := range sum.Nodes {
		// Two barriers and the trailing program-end interval.
		if len(ns.Epochs) != 3 {
			t.Fatalf("node %d: %d epochs, want 3", ns.Node, len(ns.Epochs))
		}
		if ns.Epochs[2].BarrierID != -1 {
			t.Errorf("final epoch should end at -1, got %d", ns.Epochs[2].BarrierID)
		}
		lo := int64(ns.Node * 4)
		for ei, wantWrite := range []bool{true, false} {
			ep := ns.Epochs[ei]
			if len(ep.Accesses) != 4 {
				t.Fatalf("node %d epoch %d: %d accesses, want 4", ns.Node, ei, len(ep.Accesses))
			}
			for k, acc := range ep.Accesses {
				if acc.Var != "A" || acc.Write != wantWrite || acc.Variant {
					t.Errorf("node %d epoch %d access %d = %+v", ns.Node, ei, k, acc)
				}
				if c, ok := acc.Dims[0].Const(); !ok || c != lo+int64(k) {
					t.Errorf("node %d epoch %d access %d index = %+v, want %d",
						ns.Node, ei, k, acc.Dims[0], lo+int64(k))
				}
				if acc.Stmt == 0 {
					t.Errorf("access carries no statement ID: %+v", acc)
				}
			}
		}
	}
}

// TestSummarizeWhileEnumerated: a counted while loop is enumerated exactly,
// including its per-iteration epoch advance when it contains a barrier.
func TestSummarizeWhileEnumerated(t *testing.T) {
	prog := inferProg(t, `
shared int x label "x";
func main() {
    var w int = 0;
    while w < 3 {
        if pid() == 0 {
            x = w;
        }
        barrier;
        w = w + 1;
    }
}`)
	sum, err := Summarize(prog, InferOptions{Nprocs: 2})
	if err != nil {
		t.Fatal(err)
	}
	if !sum.Exact {
		t.Fatalf("counted while should infer exactly; notes: %v", sum.Notes)
	}
	if got := len(sum.Nodes[0].Epochs); got != 4 {
		t.Fatalf("3 barrier crossings should give 4 epochs, got %d", got)
	}
	// Node 0 writes x once per epoch 0..2; node 1 never touches it.
	for e := 0; e < 3; e++ {
		if n := len(sum.Nodes[0].Epochs[e].Accesses); n != 1 {
			t.Errorf("node 0 epoch %d: %d accesses, want 1", e, n)
		}
		if n := len(sum.Nodes[1].Epochs[e].Accesses); n != 0 {
			t.Errorf("node 1 epoch %d: %d accesses, want 0", e, n)
		}
	}
}

// TestSummarizeShortCircuit: inference must mirror the VM's short-circuit
// evaluation — a concretely false left operand suppresses the right-hand
// side's shared reads, which the race detector would have recorded.
func TestSummarizeShortCircuit(t *testing.T) {
	prog := inferProg(t, `
shared int flag label "flag";
func main() {
    if pid() == 0 && flag > 0 {
        flag = 1;
    }
    barrier;
}`)
	sum, err := Summarize(prog, InferOptions{Nprocs: 2})
	if err != nil {
		t.Fatal(err)
	}
	// Node 1: pid()==0 folds false, so the VM never reads flag.
	if n := len(sum.Nodes[1].Epochs[0].Accesses); n != 0 {
		t.Errorf("node 1 should not touch flag under short-circuit, got %d accesses", n)
	}
	// Node 0 reads flag (guard), and the guard is data-dependent, so the
	// summary must admit inexactness rather than claim the VM's stream.
	if len(sum.Nodes[0].Epochs[0].Accesses) == 0 {
		t.Error("node 0 should record the guard read of flag")
	}
	if sum.Exact {
		t.Error("data-dependent guard should mark the summary inexact")
	}
}

// TestSummarizeInexactSubscript: an input-dependent subscript widens to an
// interval and flags the summary, rather than failing.
func TestSummarizeInexactSubscript(t *testing.T) {
	prog := inferProg(t, `
const N = 8;
shared float A[N] label "A";
shared int idx label "idx";
func main() {
    var j int = idx;
    A[j] = 1.0;
    barrier;
}`)
	sum, err := Summarize(prog, InferOptions{Nprocs: 2})
	if err != nil {
		t.Fatal(err)
	}
	if sum.Exact {
		t.Fatal("input-dependent subscript should be inexact")
	}
	acc := sum.Nodes[0].Epochs[0].Accesses
	var write *InferAccess
	for i := range acc {
		if acc[i].Write {
			write = &acc[i]
		}
	}
	if write == nil {
		t.Fatal("missing write access")
	}
	if !write.Variant {
		t.Error("write should be marked variant")
	}
	els, ok := write.Dims[0].Enumerate(16)
	if !ok || len(els) == 0 || els[0] < 0 || els[len(els)-1] > 7 {
		t.Errorf("widened subscript should clamp to array bounds, got %v (ok=%v)", els, ok)
	}
	found := false
	for _, n := range sum.Notes {
		if strings.Contains(n, "subscript") {
			found = true
		}
	}
	if !found {
		t.Errorf("notes should name the widened subscript: %v", sum.Notes)
	}
}

// TestSummarizeDoesNotPerturbAnalyze: running inference must leave the
// regular analysis untouched — same findings before and after.
func TestSummarizeDoesNotPerturbAnalyze(t *testing.T) {
	src := `
shared float total label "t";
func main() {
    total = total + 1.0;
    barrier;
}`
	prog := inferProg(t, src)
	before := Analyze(prog, Options{Nprocs: 4}).String()
	if _, err := Summarize(prog, InferOptions{Nprocs: 4}); err != nil {
		t.Fatal(err)
	}
	after := Analyze(prog, Options{Nprocs: 4}).String()
	if before != after {
		t.Errorf("Summarize changed Analyze's report:\nbefore:\n%s\nafter:\n%s", before, after)
	}
	if len(Analyze(prog, Options{Nprocs: 4}).Races()) == 0 {
		t.Error("the racy fixture should still race")
	}
}

// TestIndexSetEnumerate covers the exported set type's edges.
func TestIndexSetEnumerate(t *testing.T) {
	if els, ok := (IndexSet{Lo: 2, Hi: 10, Stride: 4}).Enumerate(8); !ok || len(els) != 3 || els[2] != 10 {
		t.Errorf("strided enumerate = %v, %v", els, ok)
	}
	if _, ok := (IndexSet{Lo: negInf, Hi: 3, Stride: 1}).Enumerate(8); ok {
		t.Error("unbounded set must not enumerate")
	}
	if _, ok := (IndexSet{Lo: 0, Hi: 100, Stride: 1}).Enumerate(8); ok {
		t.Error("oversized set must not enumerate")
	}
	if els, ok := (IndexSet{Lo: 1, Hi: 0}).Enumerate(8); !ok || len(els) != 0 {
		t.Error("empty set enumerates to nothing")
	}
}
