package vet

// Strided intervals are the index domain of the race detector: the set of
// array elements a node may touch through an index expression is abstracted
// as {lo, lo+stride, ..., hi}. Keeping the stride (not just the interval)
// is what lets vet prove red/black-style partitionings disjoint — two
// stride-2 sets of opposite parity never meet even though their intervals
// overlap — via a Chinese-remainder emptiness test.

// Infinity sentinels for widened bounds. They are far from the int64 edges
// so sums of two in-range values never overflow.
const (
	negInf = -(1 << 60)
	posInf = 1 << 60
)

// si is a strided interval: the integers lo, lo+stride, ..., hi. Invariants
// after norm(): lo <= hi; stride == 0 iff lo == hi; hi lies on the stride
// grid; an infinite bound forces stride 1 (congruence information is only
// kept for finite sets). The empty set is canonically {1, 0, 0}.
type si struct {
	lo, hi, stride int64
}

var (
	siEmpty = si{1, 0, 0}
	siTop   = si{negInf, posInf, 1}
)

func siConst(c int64) si { return si{c, c, 0} }

func siRange(lo, hi, stride int64) si { return si{lo, hi, stride}.norm() }

func (a si) empty() bool   { return a.lo > a.hi }
func (a si) isConst() bool { return !a.empty() && a.lo == a.hi }

func (a si) norm() si {
	if a.lo > a.hi {
		return siEmpty
	}
	if a.lo < negInf {
		a.lo = negInf
	}
	if a.hi > posInf {
		a.hi = posInf
	}
	if a.lo == a.hi {
		a.stride = 0
		return a
	}
	if a.lo == negInf || a.hi == posInf {
		a.stride = 1
		return a
	}
	if a.stride <= 0 {
		a.stride = 1
	}
	a.hi = a.lo + (a.hi-a.lo)/a.stride*a.stride
	if a.lo == a.hi {
		a.stride = 0
	}
	return a
}

// satAdd adds with saturation at the infinity sentinels.
func satAdd(a, b int64) int64 {
	s := a + b
	if s < negInf {
		return negInf
	}
	if s > posInf {
		return posInf
	}
	return s
}

// satMul multiplies with saturation at the infinity sentinels.
func satMul(a, b int64) int64 {
	if a == 0 || b == 0 {
		return 0
	}
	s := a * b
	if s/b != a || s < negInf || s > posInf {
		if (a > 0) == (b > 0) {
			return posInf
		}
		return negInf
	}
	return s
}

func (a si) addConst(c int64) si {
	if a.empty() {
		return a
	}
	return si{satAdd(a.lo, c), satAdd(a.hi, c), a.stride}.norm()
}

// scale multiplies every element by c.
func (a si) scale(c int64) si {
	switch {
	case a.empty():
		return a
	case c == 0:
		return siConst(0)
	case c > 0:
		return si{satMul(a.lo, c), satMul(a.hi, c), satMul(a.stride, c)}.norm()
	default:
		return si{satMul(a.hi, c), satMul(a.lo, c), satMul(a.stride, -c)}.norm()
	}
}

func (a si) add(b si) si {
	if a.empty() || b.empty() {
		return siEmpty
	}
	return si{satAdd(a.lo, b.lo), satAdd(a.hi, b.hi), gcd(a.stride, b.stride)}.norm()
}

// mul is the general interval product; the congruence is dropped except in
// the constant cases, which scale handles exactly.
func (a si) mul(b si) si {
	if a.empty() || b.empty() {
		return siEmpty
	}
	if a.isConst() {
		return b.scale(a.lo)
	}
	if b.isConst() {
		return a.scale(b.lo)
	}
	p1, p2 := satMul(a.lo, b.lo), satMul(a.lo, b.hi)
	p3, p4 := satMul(a.hi, b.lo), satMul(a.hi, b.hi)
	return si{min4(p1, p2, p3, p4), max4(p1, p2, p3, p4), 1}.norm()
}

// divConst divides every element by c (Go truncated division, matching the
// interpreter). The result loses the congruence unless it divides exactly.
func (a si) divConst(c int64) si {
	if a.empty() || c == 0 {
		return siTop
	}
	if c < 0 {
		return a.divConst(-c).scale(-1)
	}
	if a.stride%c == 0 && a.lo%c == 0 {
		return si{a.lo / c, a.hi / c, a.stride / c}.norm()
	}
	// Truncated division is not monotone across zero; the four candidate
	// bounds still bracket every quotient.
	q1, q2 := a.lo/c, a.hi/c
	return si{min4(q1, q2, q1, q2), max4(q1, q2, q1, q2), 1}.norm()
}

// mod maps every element through ((x % m) + m) % m for m > 0 — the
// canonical non-negative remainder the ParC interpreter uses. The key
// precision rule: a stride-s set keeps its residue class modulo gcd(s, m),
// which is how parity survives "% 2".
func (a si) mod(m int64) si {
	if a.empty() {
		return a
	}
	if m <= 0 {
		return siTop
	}
	if a.isConst() {
		return siConst(((a.lo % m) + m) % m)
	}
	if a.lo >= 0 && a.hi < m {
		return a
	}
	g := gcd(a.stride, m)
	if g <= 1 {
		return siRange(0, m-1, 1)
	}
	r := ((a.lo % g) + g) % g
	return siRange(r, r+(m-1-r)/g*g, g)
}

// join is the least strided interval containing both sets.
func (a si) join(b si) si {
	if a.empty() {
		return b
	}
	if b.empty() {
		return a
	}
	d := a.lo - b.lo
	if d < 0 {
		d = -d
	}
	s := gcd(gcd(a.stride, b.stride), d)
	return si{minI(a.lo, b.lo), maxI(a.hi, b.hi), s}.norm()
}

// widen jumps an unstable bound straight to infinity so fixpoints converge.
func (a si) widen(b si) si {
	j := a.join(b)
	if a.empty() {
		return j
	}
	if j.lo < a.lo {
		j.lo = negInf
	}
	if j.hi > a.hi {
		j.hi = posInf
	}
	return j.norm()
}

// member reports whether v is in the set.
func (a si) member(v int64) bool {
	if a.empty() || v < a.lo || v > a.hi {
		return false
	}
	if a.stride <= 1 {
		return true
	}
	return (v-a.lo)%a.stride == 0
}

// clampMin removes elements below l, re-anchoring on the stride grid.
func (a si) clampMin(l int64) si {
	if a.empty() || l <= a.lo {
		return a
	}
	if a.stride <= 1 {
		return si{l, a.hi, a.stride}.norm()
	}
	d := l - a.lo
	lo := a.lo + (d+a.stride-1)/a.stride*a.stride
	return si{lo, a.hi, a.stride}.norm()
}

// clampMax removes elements above h.
func (a si) clampMax(h int64) si {
	if a.empty() || h >= a.hi {
		return a
	}
	return si{a.lo, h, a.stride}.norm()
}

// intersect computes the exact intersection, solving the congruence pair
// x ≡ a.lo (mod a.stride), x ≡ b.lo (mod b.stride) by the Chinese remainder
// theorem: the common elements form a stride-lcm grid, clipped to the
// interval intersection.
func (a si) intersect(b si) si {
	if a.empty() || b.empty() {
		return siEmpty
	}
	lo, hi := maxI(a.lo, b.lo), minI(a.hi, b.hi)
	if lo > hi {
		return siEmpty
	}
	if a.isConst() {
		if b.member(a.lo) {
			return a
		}
		return siEmpty
	}
	if b.isConst() {
		if a.member(b.lo) {
			return b
		}
		return siEmpty
	}
	if a.lo <= negInf || a.hi >= posInf || b.lo <= negInf || b.hi >= posInf {
		// Widened operands have stride 1; the interval intersection is exact.
		return si{lo, hi, maxI(a.stride, b.stride)}.norm()
	}
	sa, sb := maxI(a.stride, 1), maxI(b.stride, 1)
	g, p, _ := egcd(sa, sb)
	diff := b.lo - a.lo
	if diff%g != 0 {
		return siEmpty
	}
	lcm := sa / g * sb
	if lcm > posInf {
		// Degenerate strides; fall back to the interval bound (sound).
		return si{lo, hi, 1}.norm()
	}
	// x0 ≡ a.lo (mod sa) and ≡ b.lo (mod sb); normalize into [lo, lo+lcm).
	x0 := a.lo + mulMod(diff/g, mulMod(p, 1, lcm/sa), lcm/sa)*sa
	d := lo - x0
	if d > 0 {
		x0 += (d + lcm - 1) / lcm * lcm
	}
	for x0-lcm >= lo {
		x0 -= lcm
	}
	if x0 > hi {
		return siEmpty
	}
	return si{x0, hi, lcm}.norm()
}

// overlaps reports whether the two sets share an element.
func (a si) overlaps(b si) bool { return !a.intersect(b).empty() }

// contains reports whether every element of b is in a.
func (a si) contains(b si) bool {
	if b.empty() {
		return true
	}
	if a.empty() || b.lo < a.lo || b.hi > a.hi {
		return false
	}
	if b.isConst() {
		return a.member(b.lo)
	}
	if a.stride <= 1 {
		return true
	}
	return b.stride%a.stride == 0 && (b.lo-a.lo)%a.stride == 0
}

// mulMod computes (x*y) mod m without overflow for |x|,|y| <= posInf by
// pre-reducing; m here is always a small stride lcm.
func mulMod(x, y, m int64) int64 {
	if m <= 1 {
		return 0
	}
	x, y = ((x%m)+m)%m, ((y%m)+m)%m
	return x * y % m
}

func gcd(a, b int64) int64 {
	if a < 0 {
		a = -a
	}
	if b < 0 {
		b = -b
	}
	for b != 0 {
		a, b = b, a%b
	}
	return a
}

// egcd returns g = gcd(a,b) and Bézout coefficients p, q with p*a+q*b = g,
// for a, b > 0.
func egcd(a, b int64) (g, p, q int64) {
	if b == 0 {
		return a, 1, 0
	}
	g, p1, q1 := egcd(b, a%b)
	return g, q1, p1 - (a/b)*q1
}

func minI(a, b int64) int64 {
	if a < b {
		return a
	}
	return b
}

func maxI(a, b int64) int64 {
	if a > b {
		return a
	}
	return b
}

func min4(a, b, c, d int64) int64 { return minI(minI(a, b), minI(c, d)) }
func max4(a, b, c, d int64) int64 { return maxI(maxI(a, b), maxI(c, d)) }
