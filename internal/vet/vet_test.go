package vet

import (
	"strings"
	"testing"
)

func analyze(t *testing.T, src string) *Report {
	t.Helper()
	rep, err := AnalyzeSource("test.parc", src, Options{Nprocs: 4})
	if err != nil {
		t.Fatalf("parse: %v", err)
	}
	return rep
}

func wantRule(t *testing.T, rep *Report, rule string) {
	t.Helper()
	for _, f := range rep.Findings {
		if f.Rule == rule {
			return
		}
	}
	t.Fatalf("expected a %s finding, got:\n%s", rule, rep)
}

func wantNoRule(t *testing.T, rep *Report, rule string) {
	t.Helper()
	for _, f := range rep.Findings {
		if f.Rule == rule {
			t.Fatalf("unexpected %s finding:\n%s", rule, rep)
		}
	}
}

func wantClean(t *testing.T, rep *Report) {
	t.Helper()
	if len(rep.Findings) != 0 {
		t.Fatalf("expected no findings, got:\n%s", rep)
	}
}

func TestRaceCases(t *testing.T) {
	cases := []struct {
		name string
		src  string
		want []string // rules that must appear
		not  []string // rules that must not appear
	}{
		{
			name: "scalar write-write race",
			src: `
shared float total label "t";
func main() {
    total = total + 1.0;
    barrier;
}`,
			want: []string{RuleRaceWW, RuleRaceWR},
		},
		{
			name: "lock suppresses race",
			src: `
shared float total label "t";
func main() {
    lock(0);
    total = total + 1.0;
    unlock(0);
    barrier;
}`,
			not: []string{RuleRaceWW, RuleRaceWR},
		},
		{
			name: "different locks do not suppress",
			src: `
shared float total label "t";
func main() {
    lock(pid() % 2);
    total = total + 1.0;
    unlock(pid() % 2);
    barrier;
}`,
			want: []string{RuleRaceWW},
		},
		{
			name: "partitioned writes are disjoint",
			src: `
const N = 64;
shared float A[N] label "A";
func main() {
    var chunk int = N / nprocs();
    for i = pid() * chunk to pid() * chunk + chunk - 1 {
        A[i] = 1.0;
    }
    barrier;
}`,
			not: []string{RuleRaceWW, RuleRaceWR},
		},
		{
			name: "overlapping partitions race",
			src: `
const N = 64;
shared float A[N] label "A";
func main() {
    var chunk int = N / nprocs();
    for i = pid() * chunk to pid() * chunk + chunk {
        A[i] = 1.0;
    }
    barrier;
}`,
			want: []string{RuleRaceWW},
		},
		{
			name: "strided interleave is disjoint",
			src: `
const N = 64;
shared float A[N] label "A";
func main() {
    for i = pid() to N - 1 step 4 {
        A[i] = 1.0;
    }
    barrier;
}`,
			not: []string{RuleRaceWW, RuleRaceWR},
		},
		{
			name: "single-writer guard",
			src: `
shared int done label "d";
func main() {
    if pid() == 0 {
        done = 1;
    }
    barrier;
}`,
			not: []string{RuleRaceWW},
		},
		{
			name: "barrier separates write from read",
			src: `
shared int done label "d";
func main() {
    var x int;
    if pid() == 0 {
        done = 1;
    }
    barrier;
    x = done;
    print("%d", x);
}`,
			not: []string{RuleRaceWW, RuleRaceWR},
		},
		{
			name: "write-read race without barrier",
			src: `
shared int done label "d";
func main() {
    var x int;
    if pid() == 0 {
        done = 1;
    }
    x = done;
    print("%d", x);
    barrier;
}`,
			want: []string{RuleRaceWR},
		},
		{
			name: "red-black parity is disjoint",
			src: `
const N = 16;
shared float G[N][N] label "G";
func main() {
    var rows int = N / nprocs();
    var lo int = pid() * rows;
    for i = lo to lo + rows - 1 {
        for j = 0 to N - 1 {
            if (i + j) % 2 == 0 {
                G[i][j] = 1.0;
            }
        }
    }
    barrier;
    for i = lo to lo + rows - 1 {
        for j = 0 to N - 1 {
            if (i + j) % 2 == 1 {
                G[i][j] = 2.0;
            }
        }
    }
    barrier;
}`,
			not: []string{RuleRaceWW, RuleRaceWR},
		},
		{
			name: "column groups overlapping rows race",
			src: `
const N = 32;
shared float C[N][N] label "C";
func main() {
    var bs int = N / nprocs();
    var j0 int = pid() * bs;
    for i = 0 to N - 1 {
        for j = j0 to j0 + bs {
            C[i][j % N] = 0.0;
        }
    }
    barrier;
}`,
			want: []string{RuleRaceWW},
		},
		{
			name: "data-dependent index races",
			src: `
const CELLS = 32;
shared int cell[CELLS] label "cell";
shared float particles[128] label "p";
func main() {
    var c int;
    for i = pid() to 127 step 4 {
        c = int(particles[i] * 31.0);
        cell[c] = cell[c] + 1;
    }
    barrier;
}`,
			want: []string{RuleRaceWW},
		},
		{
			name: "barrier divergence",
			src: `
shared int done label "d";
func main() {
    if pid() == 0 {
        barrier;
    }
    barrier;
}`,
			want: []string{RuleBarrierDiv},
		},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			rep := analyze(t, tc.src)
			for _, rule := range tc.want {
				wantRule(t, rep, rule)
			}
			for _, rule := range tc.not {
				wantNoRule(t, rep, rule)
			}
		})
	}
}

func TestLintCases(t *testing.T) {
	cases := []struct {
		name string
		src  string
		want []string
		not  []string
	}{
		{
			name: "use after check-in",
			src: `
const N = 16;
shared float A[N] label "A";
func main() {
    var i int = pid();
    check_out_x A[i];
    A[i] = 1.0;
    check_in A[i];
    A[i] = 2.0;
    barrier;
}`,
			want: []string{RuleUseAfterCI},
		},
		{
			name: "clean checkout discipline",
			src: `
const N = 16;
shared float A[N] label "A";
func main() {
    var i int = pid();
    check_out_x A[i];
    A[i] = 1.0;
    check_in A[i];
    barrier;
}`,
			not: []string{RuleUseAfterCI, RuleDoubleCO, RuleSharedW, RuleMissingCI, RuleLateCO},
		},
		{
			name: "double check-out",
			src: `
const N = 16;
shared float A[N] label "A";
func main() {
    var i int = pid();
    check_out_x A[i];
    check_out_x A[i];
    A[i] = 1.0;
    check_in A[i];
    barrier;
}`,
			want: []string{RuleDoubleCO},
		},
		{
			name: "re-checkout after check-in is legal",
			src: `
const N = 16;
shared float A[N] label "A";
func main() {
    var i int = pid();
    check_out_x A[i];
    A[i] = 1.0;
    check_in A[i];
    check_out_x A[i];
    A[i] = 2.0;
    check_in A[i];
    barrier;
}`,
			not: []string{RuleUseAfterCI, RuleDoubleCO},
		},
		{
			name: "write under shared check-out",
			src: `
const N = 16;
shared float A[N] label "A";
func main() {
    var i int = pid();
    check_out_s A[i];
    A[i] = 1.0;
    check_in A[i];
    barrier;
}`,
			want: []string{RuleSharedW},
		},
		{
			name: "missing check-in before barrier",
			src: `
const N = 16;
shared float A[N] label "A";
func main() {
    var i int = pid();
    check_out_x A[i];
    A[i] = 1.0;
    barrier;
}`,
			want: []string{RuleMissingCI},
		},
		{
			name: "late check-out",
			src: `
const N = 16;
shared float A[N] label "A";
func main() {
    var i int = pid();
    A[i] = 1.0;
    check_out_x A[i];
    A[i] = 2.0;
    check_in A[i];
    barrier;
}`,
			want: []string{RuleLateCO},
		},
		{
			name: "per-iteration checkout in a loop",
			src: `
const N = 64;
shared float A[N] label "A";
func main() {
    for i = pid() to N - 1 step 4 {
        check_out_x A[i];
        A[i] = 1.0;
        check_in A[i];
    }
    barrier;
}`,
			not: []string{RuleUseAfterCI, RuleDoubleCO},
		},
		{
			name: "whole-array check-in covers element checkouts",
			src: `
const N = 16;
shared float A[N] label "A";
func main() {
    var i int = pid();
    check_out_x A[i];
    A[i] = 1.0;
    check_in A[0:N-1];
    barrier;
}`,
			not: []string{RuleMissingCI},
		},
		{
			name: "prefetch needs no check-in",
			src: `
const N = 16;
shared float A[N] label "A";
func main() {
    var x float;
    prefetch_s A[0:N-1];
    barrier;
    x = A[pid()];
    print("%f", x);
    barrier;
}`,
			not: []string{RuleMissingCI, RuleUseAfterCI},
		},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			rep := analyze(t, tc.src)
			for _, rule := range tc.want {
				wantRule(t, rep, rule)
			}
			for _, rule := range tc.not {
				wantNoRule(t, rep, rule)
			}
		})
	}
}

func TestCleanProgramHasNoFindings(t *testing.T) {
	rep := analyze(t, `
const N = 64;
shared float A[N] label "A";
shared float B[N] label "B";
func main() {
    var chunk int = N / nprocs();
    var lo int = pid() * chunk;
    for i = lo to lo + chunk - 1 {
        A[i] = 1.0;
    }
    barrier;
    for i = lo to lo + chunk - 1 {
        B[i] = A[i] * 2.0;
    }
    barrier;
}`)
	wantClean(t, rep)
}

func TestFindingPositions(t *testing.T) {
	rep := analyze(t, `
shared float total label "t";
func main() {
    total = total + 1.0;
    barrier;
}`)
	races := rep.Races()
	if len(races) == 0 {
		t.Fatal("expected a race")
	}
	for _, f := range races {
		if !f.Pos.IsValid() || f.Pos.File != "test.parc" {
			t.Errorf("race finding lacks a usable position: %s", f)
		}
		if !strings.Contains(f.String(), "test.parc:") {
			t.Errorf("finding does not print file:line:col: %s", f)
		}
	}
}

func TestReportString(t *testing.T) {
	rep := analyze(t, `
shared int done label "d";
func main() {
    done = 1;
    barrier;
}`)
	s := rep.String()
	if !strings.Contains(s, "race-write-write") {
		t.Fatalf("report text missing rule name:\n%s", s)
	}
}
