// Trace-free inference: the same abstract interpreter that backs the race
// detector, run in a mode that mirrors the bytecode VM instead of
// over-approximating it. Conditions short-circuit, while loops and large
// for loops are enumerated concretely, and every access records the ID of
// its enclosing statement — the "pc" a simulation trace would carry. The
// result is a per-node, per-epoch access summary precise enough for
// internal/staticanno to replay against a cache model and synthesize the
// miss trace Cachier's placement pipeline normally gets from a simulation.
//
// Where the program is not statically enumerable (data-dependent guards,
// input-dependent subscripts, call-depth or fuel limits) the summary
// degrades gracefully: the affected accesses widen to strided intervals,
// Exact turns false, and Notes records why.

package vet

import (
	"fmt"

	"cachier/internal/analysis"
	"cachier/internal/parc"
)

// InferOptions configures a trace-free inference run.
type InferOptions struct {
	// Nprocs is the number of SPMD nodes to model. Defaults to 4.
	Nprocs int
	// EnumLimit caps concrete enumeration per loop (trip count for for
	// loops, iterations for while loops). Defaults to 65536.
	EnumLimit int
	// Fuel bounds the total abstract-interpretation work per node.
	// Defaults to 8 << 20.
	Fuel int
}

// IndexSet is the set of elements one array subscript may take: the
// integers Lo, Lo+Stride, ..., Hi. Stride 0 means the single element Lo;
// an exact inference produces only single-element sets.
type IndexSet struct {
	Lo, Hi, Stride int64
}

// Empty reports whether the set contains no elements.
func (s IndexSet) Empty() bool { return s.Lo > s.Hi }

// Const returns the single element of a singleton set.
func (s IndexSet) Const() (int64, bool) {
	if !s.Empty() && s.Lo == s.Hi {
		return s.Lo, true
	}
	return 0, false
}

// Enumerate returns the elements in ascending order, or ok=false if the
// set is unbounded or larger than limit.
func (s IndexSet) Enumerate(limit int) ([]int64, bool) {
	if s.Empty() {
		return nil, true
	}
	if s.Lo <= negInf || s.Hi >= posInf {
		return nil, false
	}
	step := s.Stride
	if step <= 0 {
		step = 1
	}
	n := (s.Hi-s.Lo)/step + 1
	if n > int64(limit) {
		return nil, false
	}
	out := make([]int64, 0, n)
	for v := s.Lo; v <= s.Hi; v += step {
		out = append(out, v)
	}
	return out, true
}

// InferAccess is one shared-memory access in a node's inferred stream, in
// program order within its epoch.
type InferAccess struct {
	Var     string // shared variable name
	Write   bool
	Stmt    int        // enclosing statement's ID (the pc a trace would carry)
	Dims    []IndexSet // per-dimension element sets, clamped to array bounds
	Variant bool       // some subscript did not fold to a single element
}

// InferOp tags an entry of a node's inferred event stream. Besides shared
// accesses the stream keeps the other scheduler-visible operations — lock,
// unlock, print, local-work reports — because each is a context-switch
// point in the simulator and a faithful replay of its schedule must switch
// at the same places with the same clocks.
type InferOp int

const (
	OpAccess InferOp = iota
	OpLock
	OpUnlock
	OpPrint
	OpWork
)

// InferEvent is one scheduler-visible event in a node's stream, in program
// order within its epoch.
type InferEvent struct {
	Op     InferOp
	Access InferAccess // valid when Op == OpAccess
	Lock   int64       // lock id, when Op is OpLock or OpUnlock
	Work   uint64      // local cycles reported to the machine, when Op == OpWork
	Stmt   int         // statement ID (the access's enclosing statement for OpAccess)
}

// InferEpoch is one barrier-delimited interval of a node's stream. Accesses
// is the projection of Events onto shared accesses, kept for consumers that
// only care about the footprint.
type InferEpoch struct {
	Index     int
	BarrierID int // statement ID of the terminating barrier; -1 at program end
	Accesses  []InferAccess
	Events    []InferEvent
}

// NodeSummary is one node's inferred execution.
type NodeSummary struct {
	Node   int
	Epochs []InferEpoch
}

// Summary is the result of trace-free inference over a whole program.
type Summary struct {
	Nprocs int
	// Exact reports that every branch, loop bound, lock id, and subscript
	// folded to per-node constants: the access streams are the VM's, not an
	// over-approximation of them.
	Exact bool
	Notes []string // first few reasons Exact is false
	Nodes []NodeSummary
}

// Summarize runs the abstract interpreter in inference mode over a checked
// program and returns each node's barrier-delimited access stream. It never
// mutates the program and adds no findings to any report; the regular
// Analyze entry point is unaffected by inference mode.
func Summarize(prog *parc.Program, opts InferOptions) (*Summary, error) {
	if opts.Nprocs <= 0 {
		opts.Nprocs = 4
	}
	if opts.EnumLimit <= 0 {
		opts.EnumLimit = 65536
	}
	if opts.Fuel <= 0 {
		opts.Fuel = 8 << 20
	}
	main := prog.FuncMap["main"]
	if main == nil {
		return nil, fmt.Errorf("vet: program has no main function")
	}
	v := &vetter{
		prog: prog,
		info: analysis.Analyze(prog),
		opts: Options{Nprocs: opts.Nprocs},
		seen: make(map[string]bool),
	}
	sum := &Summary{Nprocs: opts.Nprocs, Exact: true}
	for p := 0; p < opts.Nprocs; p++ {
		r := newNodeRun(v, p)
		r.fuel = opts.Fuel
		r.infer = &inferRun{opts: opts, exact: true}
		r.run(main)
		if r.outOfGas {
			r.inexact(parc.Pos{}, "analysis budget exhausted")
		}
		ns := NodeSummary{Node: p}
		cur := InferEpoch{Index: 0, BarrierID: -1}
		for _, ev := range r.events {
			switch ev.kind {
			case evBarrier:
				cur.BarrierID = ev.stmtID
				ns.Epochs = append(ns.Epochs, cur)
				cur = InferEpoch{Index: len(ns.Epochs), BarrierID: -1}
			case evAccess:
				if ev.decl == nil {
					continue
				}
				if ev.variant {
					r.inexact(ev.pos, "subscript of %s does not fold to one element", ev.varName)
				}
				acc := InferAccess{
					Var:     ev.decl.Name,
					Write:   ev.write,
					Stmt:    ev.encStmt,
					Variant: ev.variant,
				}
				for _, d := range ev.dims {
					acc.Dims = append(acc.Dims, IndexSet{Lo: d.lo, Hi: d.hi, Stride: d.stride})
				}
				cur.Accesses = append(cur.Accesses, acc)
				cur.Events = append(cur.Events, InferEvent{Op: OpAccess, Access: acc, Stmt: ev.encStmt})
			case evLock:
				cur.Events = append(cur.Events, InferEvent{Op: OpLock, Lock: ev.lockID, Stmt: ev.stmtID})
			case evUnlock:
				cur.Events = append(cur.Events, InferEvent{Op: OpUnlock, Lock: ev.lockID, Stmt: ev.stmtID})
			case evPrint:
				cur.Events = append(cur.Events, InferEvent{Op: OpPrint, Stmt: ev.stmtID})
			case evWork:
				cur.Events = append(cur.Events, InferEvent{Op: OpWork, Work: ev.work, Stmt: ev.encStmt})
			}
		}
		ns.Epochs = append(ns.Epochs, cur)
		sum.Nodes = append(sum.Nodes, ns)
		if !r.infer.exact {
			sum.Exact = false
			for _, n := range r.infer.notes {
				if len(sum.Notes) < 16 {
					sum.Notes = append(sum.Notes, n)
				}
			}
		}
	}
	return sum, nil
}

// CheckBarrierStructure verifies every node inferred the same sequence of
// barrier statement IDs — the static analogue of the simulator's barrier
// alignment. A mismatch means the nodes' epochs cannot be paired and no
// trace can be synthesized.
func (s *Summary) CheckBarrierStructure() error {
	if len(s.Nodes) == 0 {
		return fmt.Errorf("vet: summary has no nodes")
	}
	first := s.Nodes[0].Epochs
	for _, ns := range s.Nodes[1:] {
		if len(ns.Epochs) != len(first) {
			return fmt.Errorf("vet: node 0 infers %d epoch(s) but node %d infers %d; barrier arrival is node-dependent",
				len(first), ns.Node, len(ns.Epochs))
		}
		for i := range ns.Epochs {
			if ns.Epochs[i].BarrierID != first[i].BarrierID {
				return fmt.Errorf("vet: epoch %d ends at barrier %d on node 0 but at barrier %d on node %d",
					i, first[i].BarrierID, ns.Epochs[i].BarrierID, ns.Node)
			}
		}
	}
	return nil
}
