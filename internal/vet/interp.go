package vet

import (
	"fmt"
	"sort"
	"strings"

	"cachier/internal/analysis"
	"cachier/internal/parc"
)

// The abstract interpreter runs main() once per node with pid() bound to a
// concrete id. SPMD partition arithmetic ((pid()%P)*BS, N/nprocs()*pid())
// then folds to per-node constants, and only genuine per-iteration or
// data-dependent quantities stay abstract, as strided intervals.
//
// Loops with small concrete trip counts are enumerated exactly (this is
// what keeps epoch counting precise for time-step loops containing
// barriers); other loops bind their variable to the strided interval of
// the bounds and run the body to a widened fixpoint, then once more with
// event recording on. Barrier-carrying loops that cannot be enumerated get
// two recording passes, so accesses before and after an in-loop barrier
// still meet in a shared epoch (the cross-iteration adjacency).

// Tunables. Enumeration limits trade precision for event volume; the fuel
// bounds total work on adversarial (fuzzed) inputs.
const (
	enumLimit        = 8
	barrierEnumLimit = 64
	widenAfter       = 3
	fixCap           = 40
	maxCallDepth     = 8
	maxFuel          = 400000
)

type eventKind int

const (
	evAccess eventKind = iota
	evAnn
	evBarrier
	// Scheduler-visible events recorded only in inference mode: lock
	// operations, prints, and local-work charges are context-switch points
	// in the simulator, so a faithful static replay of its schedule needs
	// them in the stream.
	evLock
	evUnlock
	evPrint
	evWork
)

// workFlushLimit mirrors the interpreter's local-work flush boundary
// (interp.workFlushLimit): pending unit charges are reported to the
// machine — a context-switch point — when they reach this many cycles.
const workFlushLimit = 512

// event is one element of a node's abstract execution stream.
type event struct {
	kind     eventKind
	varName  string
	decl     *parc.SharedDecl
	dims     []si
	write    bool         // for evAccess
	ann      parc.AnnKind // for evAnn
	lockID   int64        // for evLock/evUnlock
	work     uint64       // for evWork: local cycles reported to the machine
	lockKey  string       // canonical "0,1" of concretely held locks
	epoch    int
	pos      parc.Pos
	stmtID   int
	encStmt  int // enclosing statement's ID — the VM's pc for this access
	exprText string
	iterCtx  int  // which loop-body instance produced it
	variant  bool // dims depend on an abstract (non-constant) value
}

// aval is an abstract value: a float of unknown value, a strided-interval
// set of ints, or — transiently, within one expression or condition — an
// affine view coef*slot+off of a scalar frame slot. Affine views are never
// stored; they exist so conditions can refine the underlying slot and so
// indices like G[i][j-1] keep the slot's congruence.
type aval struct {
	isFloat bool
	aff     bool
	slot    int
	coef    int64
	off     int64
	set     si
}

func avC(c int64) aval { return aval{set: siConst(c)} }
func avInt(s si) aval  { return aval{set: s} }
func avTopInt() aval   { return aval{set: siTop} }
func avFloat() aval    { return aval{isFloat: true, set: siTop} }
func avAff(slot int, coef, off int64) aval {
	return aval{aff: true, slot: slot, coef: coef, off: off}
}

// state is one activation frame's abstract store plus path condition flags.
type state struct {
	fn   *parc.FuncDecl
	vals []aval
	dead bool // path proven unreachable
	ret  bool // function has returned on this path
}

func newState(fn *parc.FuncDecl) *state {
	st := &state{fn: fn, vals: make([]aval, fn.NumScalars)}
	// Frame slots start zeroed, matching the interpreter's zero-initialized
	// frames.
	for i := range st.vals {
		st.vals[i] = avC(0)
	}
	return st
}

func (st *state) clone() *state {
	c := *st
	c.vals = append([]aval(nil), st.vals...)
	return &c
}

func (st *state) equal(o *state) bool {
	if st.dead != o.dead || st.ret != o.ret || len(st.vals) != len(o.vals) {
		return false
	}
	for i := range st.vals {
		if st.vals[i] != o.vals[i] {
			return false
		}
	}
	return true
}

// joinState merges two path states; a finished path (returned or dead)
// contributes nothing to the continuation.
func joinState(a, b *state) *state {
	if a.dead || a.ret {
		if b.dead || b.ret {
			return a
		}
		return b
	}
	if b.dead || b.ret {
		return a
	}
	for len(a.vals) < len(b.vals) {
		a.vals = append(a.vals, avC(0))
	}
	for i := range a.vals {
		var bv aval
		if i < len(b.vals) {
			bv = b.vals[i]
		} else {
			bv = avC(0)
		}
		a.vals[i] = joinAval(a.vals[i], bv)
	}
	return a
}

func joinAval(a, b aval) aval {
	if a == b {
		return a
	}
	if a.isFloat || b.isFloat {
		return avFloat()
	}
	return avInt(a.set.join(b.set))
}

func widenState(old, next *state) *state {
	if old.dead || old.ret || next.dead || next.ret {
		return next
	}
	for i := range next.vals {
		if i >= len(old.vals) {
			break
		}
		a, b := old.vals[i], next.vals[i]
		if a == b {
			continue
		}
		if a.isFloat || b.isFloat {
			next.vals[i] = avFloat()
			continue
		}
		next.vals[i] = avInt(a.set.widen(b.set))
	}
	return next
}

type retAgg struct {
	val aval
	has bool
}

// nodeRun is the abstract execution of main() on one node.
type nodeRun struct {
	v        *vetter
	node     int
	epoch    int
	depth    int
	suppress int // >0: re-evaluation (fixpoint/refinement); no events, no epoch advance
	fuel     int
	outOfGas bool
	events   []event
	iterCtx  int
	nextIter int
	locks    map[int64]int
	lockTop  int
	rets     []*retAgg
	lockStr  string
	lockDirt bool
	curStmt  int       // enclosing statement's ID, mirroring the VM's pc stamping
	pending  uint64    // unreported local work cycles (inference mode)
	infer    *inferRun // non-nil: trace-free inference mode (see infer.go)
}

// inferRun carries the inference-mode configuration and exactness state of
// one nodeRun. In inference mode the interpreter mirrors the bytecode VM:
// conditions short-circuit, while loops and large for loops are enumerated
// concretely, and every widening or unknown branch is recorded as a reason
// the event stream is an over-approximation rather than the VM's exact
// access sequence.
type inferRun struct {
	opts  InferOptions
	exact bool
	notes []string
}

// inexact marks the inference result approximate, keeping the first few
// distinct reasons for the summary's Notes.
func (r *nodeRun) inexact(pos parc.Pos, format string, args ...any) {
	if r.infer == nil {
		return
	}
	r.infer.exact = false
	if len(r.infer.notes) >= 8 {
		return
	}
	loc := pos.String()
	if !pos.IsValid() {
		loc = "<generated>"
	}
	note := fmt.Sprintf("node %d: %s: %s", r.node, loc, fmt.Sprintf(format, args...))
	for _, n := range r.infer.notes {
		if n == note {
			return
		}
	}
	r.infer.notes = append(r.infer.notes, note)
}

func newNodeRun(v *vetter, node int) *nodeRun {
	return &nodeRun{v: v, node: node, fuel: maxFuel, locks: make(map[int64]int)}
}

func (r *nodeRun) run(main *parc.FuncDecl) {
	if main == nil {
		return
	}
	st := newState(main)
	agg := &retAgg{}
	r.rets = append(r.rets, agg)
	r.evalBlock(st, main.Body)
	r.flushWork() // mirror the interpreter's end-of-run flush of pending work
	r.rets = r.rets[:len(r.rets)-1]
	if r.outOfGas {
		r.v.add(Finding{
			Rule: RuleStructural, Severity: SevWarning, Epoch: -1,
			Nodes: [2]int{r.node, -1},
			Msg:   fmt.Sprintf("analysis budget exhausted on node %d; results may be incomplete", r.node),
		})
	}
}

func (r *nodeRun) spend() bool {
	r.fuel--
	if r.fuel <= 0 {
		r.outOfGas = true
		return true
	}
	return false
}

func (r *nodeRun) newIter() int {
	r.nextIter++
	return r.nextIter
}

func (r *nodeRun) emit(ev event) {
	if r.suppress > 0 {
		return
	}
	// The interpreter flushes pending local work before every machine call;
	// mirror that so the replay yields at the same points with the same
	// clocks. Annotation events stay out: inference runs on unannotated
	// sources, where they never reach the machine.
	if r.infer != nil && r.pending > 0 {
		switch ev.kind {
		case evAccess, evBarrier, evLock, evUnlock, evPrint:
			w := event{kind: evWork, work: r.pending, epoch: r.epoch, iterCtx: r.iterCtx, encStmt: r.curStmt}
			r.pending = 0
			r.events = append(r.events, w)
		}
	}
	ev.epoch = r.epoch
	ev.iterCtx = r.iterCtx
	ev.encStmt = r.curStmt
	r.events = append(r.events, ev)
}

// charge replays n unit work charges exactly as the VM's chargeUnits does:
// the pending counter flushes in whole workFlushLimit chunks, each flush a
// Work call (and so a context-switch point) in the simulator. Charging is
// inference-only and off during suppressed re-walks, which the concrete
// interpreter never performs.
func (r *nodeRun) charge(n uint64) {
	if r.infer == nil || r.suppress > 0 {
		return
	}
	tot := r.pending + n
	for tot >= workFlushLimit {
		r.pending = 0
		r.emit(event{kind: evWork, work: workFlushLimit})
		tot -= workFlushLimit
	}
	r.pending = tot
}

// flushWork reports any remaining pending work, mirroring the
// interpreter's end-of-run flush.
func (r *nodeRun) flushWork() {
	if r.infer == nil || r.suppress > 0 || r.pending == 0 {
		return
	}
	w := r.pending
	r.pending = 0
	r.emit(event{kind: evWork, work: w})
}

// runSnap is a rollback point for speculative concrete enumeration in
// inference mode: everything a loop-body evaluation can mutate besides the
// frame state itself.
type runSnap struct {
	st       *state
	events   int
	epoch    int
	curStmt  int
	lockTop  int
	lockStr  string
	lockDirt bool
	locks    map[int64]int
	pending  uint64
}

func (r *nodeRun) snapshot(st *state) runSnap {
	locks := make(map[int64]int, len(r.locks))
	for k, n := range r.locks {
		locks[k] = n
	}
	return runSnap{
		st: st.clone(), events: len(r.events), epoch: r.epoch,
		curStmt: r.curStmt, lockTop: r.lockTop, lockStr: r.lockStr,
		lockDirt: r.lockDirt, locks: locks, pending: r.pending,
	}
}

func (r *nodeRun) rollback(st *state, s runSnap) {
	*st = *s.st
	r.events = r.events[:s.events]
	r.epoch = s.epoch
	r.curStmt = s.curStmt
	r.lockTop = s.lockTop
	r.lockStr = s.lockStr
	r.lockDirt = s.lockDirt
	r.locks = s.locks
	r.pending = s.pending
}

func (r *nodeRun) lockKey() string {
	if !r.lockDirt {
		return r.lockStr
	}
	r.lockDirt = false
	ids := make([]int64, 0, len(r.locks))
	for id, n := range r.locks {
		if n > 0 {
			ids = append(ids, id)
		}
	}
	if len(ids) == 0 {
		r.lockStr = ""
		return ""
	}
	sort.Slice(ids, func(i, j int) bool { return ids[i] < ids[j] })
	parts := make([]string, len(ids))
	for i, id := range ids {
		parts[i] = fmt.Sprint(id)
	}
	r.lockStr = strings.Join(parts, ",")
	return r.lockStr
}

func (r *nodeRun) structural(pos parc.Pos, format string, args ...any) {
	r.v.add(Finding{
		Rule: RuleStructural, Severity: SevInfo, Pos: pos, Epoch: -1,
		Nodes: [2]int{r.node, -1},
		Msg:   fmt.Sprintf(format, args...),
	})
}

// ---- name resolution (handles generated nodes left RefUnresolved) ----

func (r *nodeRun) scalarSlot(st *state, name string) int {
	if b, ok := st.fn.Bindings[name]; ok && !b.Array {
		return b.Slot
	}
	return -1
}

func (r *nodeRun) loopSlot(st *state, n *parc.ForStmt) int {
	if n.VarSlot > 0 {
		return n.VarSlot - 1
	}
	return r.scalarSlot(st, n.Var)
}

func (r *nodeRun) load(st *state, slot int) aval {
	if slot < 0 || slot >= len(st.vals) {
		return avTopInt()
	}
	return st.vals[slot]
}

func (r *nodeRun) store(st *state, slot int, a aval) {
	if slot < 0 {
		return
	}
	for slot >= len(st.vals) {
		st.vals = append(st.vals, avC(0))
	}
	if a.aff {
		a = r.matv(st, a)
	}
	st.vals[slot] = a
}

// mat materializes an abstract value to its strided-interval set under the
// current state.
func (r *nodeRun) mat(st *state, a aval) si {
	if a.isFloat {
		return siTop
	}
	if !a.aff {
		return a.set
	}
	base := siTop
	if a.slot >= 0 && a.slot < len(st.vals) && !st.vals[a.slot].isFloat {
		base = st.vals[a.slot].set
	}
	return base.scale(a.coef).addConst(a.off)
}

func (r *nodeRun) matv(st *state, a aval) aval {
	if a.isFloat {
		return avFloat()
	}
	return avInt(r.mat(st, a))
}

func (r *nodeRun) matConst(st *state, a aval) (int64, bool) {
	s := r.mat(st, a)
	if !a.isFloat && s.isConst() {
		return s.lo, true
	}
	return 0, false
}

// ---- expressions ----

func (r *nodeRun) evalExpr(st *state, e parc.Expr) aval {
	if e == nil || r.spend() {
		return avTopInt()
	}
	switch n := e.(type) {
	case *parc.IntLit:
		return avC(n.Value)
	case *parc.FloatLit:
		return avFloat()
	case *parc.VarRef:
		return r.varRef(st, n)
	case *parc.IndexExpr:
		return r.indexExpr(st, n)
	case *parc.CallExpr:
		return r.call(st, n)
	case *parc.UnaryExpr:
		if n.Op == parc.TokMinus {
			a := r.evalExpr(st, n.X)
			r.charge(1)
			return r.negVal(st, a)
		}
		// Logical not: !x is x == 0.
		t := r.truth(st, n.X)
		r.charge(1)
		return triVal(notTri(t))
	case *parc.BinaryExpr:
		return r.binary(st, n)
	}
	return avTopInt()
}

func (r *nodeRun) varRef(st *state, n *parc.VarRef) aval {
	switch n.Ref {
	case parc.RefConst:
		return avC(n.Const)
	case parc.RefLocal:
		return r.localVal(st, n.Slot)
	case parc.RefShared:
		return r.sharedScalar(st, n.Shared, n.Position(), n.Name)
	}
	// Generated node: resolve by name.
	if c, ok := r.v.prog.ConstVal[n.Name]; ok {
		return avC(c)
	}
	if b, ok := st.fn.Bindings[n.Name]; ok && !b.Array {
		return r.localVal(st, b.Slot)
	}
	if d, ok := r.v.prog.SharedMap[n.Name]; ok && len(d.DimSizes) == 0 {
		return r.sharedScalar(st, d, n.Position(), n.Name)
	}
	return avTopInt()
}

func (r *nodeRun) localVal(st *state, slot int) aval {
	v := r.load(st, slot)
	if v.isFloat {
		return v
	}
	if v.set.isConst() {
		return v
	}
	// Non-constant int slot: hand out an affine view so conditions refine
	// the slot and index arithmetic keeps its congruence.
	return avAff(slot, 1, 0)
}

func (r *nodeRun) sharedScalar(st *state, decl *parc.SharedDecl, pos parc.Pos, name string) aval {
	r.emit(event{
		kind: evAccess, varName: name, decl: decl, write: false,
		lockKey: r.lockKey(), pos: pos, exprText: name,
	})
	if decl != nil && decl.Base == parc.IntType {
		return avTopInt()
	}
	return avFloat()
}

func (r *nodeRun) indexExpr(st *state, n *parc.IndexExpr) aval {
	decl := n.Shared
	if decl == nil && n.Ref == parc.RefUnresolved {
		decl = r.v.prog.SharedMap[n.Name]
	}
	if decl != nil {
		dims, variant, text := r.indexDims(st, decl, n.Name, n.Indices)
		r.emit(event{
			kind: evAccess, varName: n.Name, decl: decl, dims: dims,
			write: false, lockKey: r.lockKey(), pos: n.Position(),
			exprText: text, variant: variant,
		})
		if decl.Base == parc.IntType {
			return avTopInt()
		}
		return avFloat()
	}
	// Private array: evaluate indices for their side effects; the element
	// value itself is untracked.
	for _, ix := range n.Indices {
		r.charge(1)
		r.evalExpr(st, ix)
	}
	if b, ok := st.fn.Bindings[n.Name]; ok && b.Decl != nil && b.Decl.Base == parc.IntType {
		return avTopInt()
	}
	return avFloat()
}

// indexDims evaluates subscripts to per-dimension element sets, clamped to
// the array's bounds (a run that stays in bounds cannot touch elements
// outside them, and clamping keeps data-dependent Top indices readable).
func (r *nodeRun) indexDims(st *state, decl *parc.SharedDecl, name string, idxs []parc.Expr) (dims []si, variant bool, text string) {
	var b strings.Builder
	b.WriteString(name)
	for d, ix := range idxs {
		r.charge(1) // interpreter's offset() charges one unit per dimension
		a := r.evalExpr(st, ix)
		s := r.mat(st, a)
		if d < len(decl.DimSizes) {
			s = s.clampMin(0).clampMax(int64(decl.DimSizes[d]) - 1)
		}
		if !s.isConst() {
			variant = true
		}
		dims = append(dims, s)
		b.WriteByte('[')
		b.WriteString(parc.ExprString(ix))
		b.WriteByte(']')
	}
	return dims, variant, b.String()
}

func (r *nodeRun) negVal(st *state, a aval) aval {
	if a.isFloat {
		return a
	}
	if a.aff {
		return avAff(a.slot, -a.coef, -a.off)
	}
	return avInt(a.set.scale(-1))
}

func (r *nodeRun) binary(st *state, n *parc.BinaryExpr) aval {
	switch n.Op {
	case parc.TokEq, parc.TokNe, parc.TokLt, parc.TokLe, parc.TokGt, parc.TokGe,
		parc.TokAndAnd, parc.TokOrOr:
		return triVal(r.condTri(st, n))
	}
	a := r.evalExpr(st, n.X)
	b := r.evalExpr(st, n.Y)
	r.charge(1)
	return r.arith(st, n.Op, a, b)
}

func (r *nodeRun) arith(st *state, op parc.TokKind, a, b aval) aval {
	if a.isFloat || b.isFloat {
		return avFloat()
	}
	switch op {
	case parc.TokPlus:
		return r.addVal(st, a, b)
	case parc.TokMinus:
		return r.addVal(st, a, r.negVal(st, b))
	case parc.TokStar:
		if c, ok := r.matConst(st, b); ok && a.aff {
			return avAff(a.slot, a.coef*c, a.off*c).normAff()
		}
		if c, ok := r.matConst(st, a); ok && b.aff {
			return avAff(b.slot, b.coef*c, b.off*c).normAff()
		}
		return avInt(r.mat(st, a).mul(r.mat(st, b)))
	case parc.TokSlash:
		if c, ok := r.matConst(st, b); ok && c != 0 {
			return avInt(r.mat(st, a).divConst(c))
		}
		return avTopInt()
	case parc.TokPercent:
		if c, ok := r.matConst(st, b); ok && c > 0 {
			return avInt(r.mat(st, a).mod(c))
		}
		return avTopInt()
	}
	return avTopInt()
}

// normAff collapses an affine view whose coefficient vanished.
func (a aval) normAff() aval {
	if a.aff && a.coef == 0 {
		return avC(a.off)
	}
	return a
}

func (r *nodeRun) addVal(st *state, a, b aval) aval {
	if c, ok := r.matConst(st, b); ok {
		if a.aff {
			return avAff(a.slot, a.coef, a.off+c)
		}
		return avInt(a.set.addConst(c))
	}
	if c, ok := r.matConst(st, a); ok && b.aff {
		return avAff(b.slot, b.coef, b.off+c)
	}
	if a.aff && b.aff && a.slot == b.slot {
		return avAff(a.slot, a.coef+b.coef, a.off+b.off).normAff()
	}
	return avInt(r.mat(st, a).add(r.mat(st, b)))
}

var builtinByName = map[string]parc.BuiltinID{
	"pid": parc.BuiltinPid, "nprocs": parc.BuiltinNprocs,
	"min": parc.BuiltinMin, "max": parc.BuiltinMax, "abs": parc.BuiltinAbs,
	"sqrt": parc.BuiltinSqrt, "sin": parc.BuiltinSin, "cos": parc.BuiltinCos,
	"floor": parc.BuiltinFloor, "float": parc.BuiltinFloat, "int": parc.BuiltinInt,
	"rnd": parc.BuiltinRnd, "rndseed": parc.BuiltinRndseed,
}

func (r *nodeRun) call(st *state, n *parc.CallExpr) aval {
	bi, fn := n.Builtin, n.Fn
	if bi == parc.BuiltinNone && fn == nil {
		if id, ok := builtinByName[n.Name]; ok {
			bi = id
		} else {
			fn = r.v.prog.FuncMap[n.Name]
		}
	}
	if bi != parc.BuiltinNone {
		args := make([]aval, len(n.Args))
		for i, a := range n.Args {
			args[i] = r.evalExpr(st, a)
		}
		r.charge(1)
		return r.builtin(st, bi, args)
	}
	if fn == nil {
		for _, a := range n.Args {
			r.evalExpr(st, a)
		}
		return avTopInt()
	}
	args := make([]aval, len(n.Args))
	for i, a := range n.Args {
		args[i] = r.matv(st, r.evalExpr(st, a))
	}
	r.charge(2) // call overhead, as the interpreter charges at the call site
	if r.depth >= maxCallDepth {
		r.structural(n.Position(), "call depth limit reached at %s(); analysis truncated", n.Name)
		r.inexact(n.Position(), "call depth limit reached at %s()", n.Name)
		return avTopInt()
	}
	r.depth++
	fst := newState(fn)
	for i := range fn.Params {
		if i < len(args) {
			fst.vals[i] = args[i]
		}
	}
	agg := &retAgg{}
	r.rets = append(r.rets, agg)
	saveStmt := r.curStmt
	r.evalBlock(fst, fn.Body)
	// The callee's statements stamped their own IDs; accesses evaluated in
	// the caller's statement after the call must carry the caller's pc again.
	r.curStmt = saveStmt
	r.rets = r.rets[:len(r.rets)-1]
	r.depth--
	if agg.has {
		return agg.val
	}
	if fn.Result != nil && *fn.Result == parc.FloatType {
		return avFloat()
	}
	return avTopInt()
}

func (r *nodeRun) builtin(st *state, id parc.BuiltinID, args []aval) aval {
	arg := func(i int) si {
		if i < len(args) {
			return r.mat(st, args[i])
		}
		return siTop
	}
	argFloat := func(i int) bool { return i < len(args) && args[i].isFloat }
	switch id {
	case parc.BuiltinPid:
		return avC(int64(r.node))
	case parc.BuiltinNprocs:
		return avC(int64(r.v.opts.Nprocs))
	case parc.BuiltinMin:
		if argFloat(0) || argFloat(1) {
			return avFloat()
		}
		return avInt(minSI(arg(0), arg(1)))
	case parc.BuiltinMax:
		if argFloat(0) || argFloat(1) {
			return avFloat()
		}
		return avInt(maxSI(arg(0), arg(1)))
	case parc.BuiltinAbs:
		if argFloat(0) {
			return avFloat()
		}
		return avInt(absSI(arg(0)))
	case parc.BuiltinFloat, parc.BuiltinSqrt, parc.BuiltinSin, parc.BuiltinCos,
		parc.BuiltinFloor, parc.BuiltinRnd:
		return avFloat()
	case parc.BuiltinInt:
		if len(args) == 1 && !args[0].isFloat {
			return args[0]
		}
		return avTopInt()
	}
	return avTopInt()
}

// minSI and maxSI over-approximate elementwise min/max: the result lies in
// the union's congruence grid, between the pointwise bound extremes.
func minSI(a, b si) si {
	if a.empty() || b.empty() {
		return siTop
	}
	return si{minI(a.lo, b.lo), minI(a.hi, b.hi), unionStride(a, b)}.norm()
}

func maxSI(a, b si) si {
	if a.empty() || b.empty() {
		return siTop
	}
	return si{maxI(a.lo, b.lo), maxI(a.hi, b.hi), unionStride(a, b)}.norm()
}

func unionStride(a, b si) int64 {
	d := a.lo - b.lo
	if d < 0 {
		d = -d
	}
	return gcd(gcd(a.stride, b.stride), d)
}

func absSI(a si) si {
	switch {
	case a.empty():
		return siTop
	case a.lo >= 0:
		return a
	case a.hi <= 0:
		return a.scale(-1)
	default:
		return si{0, maxI(-a.lo, a.hi), 1}.norm()
	}
}

// ---- conditions ----

type tri int

const (
	triUnknown tri = iota
	triTrue
	triFalse
)

func notTri(t tri) tri {
	switch t {
	case triTrue:
		return triFalse
	case triFalse:
		return triTrue
	}
	return triUnknown
}

func triVal(t tri) aval {
	switch t {
	case triTrue:
		return avC(1)
	case triFalse:
		return avC(0)
	}
	return avInt(siRange(0, 1, 1))
}

// truth evaluates an expression as a condition (nonzero is true).
func (r *nodeRun) truth(st *state, e parc.Expr) tri {
	a := r.evalExpr(st, e)
	if a.isFloat {
		return triUnknown
	}
	s := r.mat(st, a)
	if s.isConst() {
		if s.lo != 0 {
			return triTrue
		}
		return triFalse
	}
	if !s.member(0) {
		return triTrue
	}
	return triUnknown
}

// condTri evaluates a condition to a three-valued truth, recording any
// shared reads it performs.
func (r *nodeRun) condTri(st *state, e parc.Expr) tri {
	switch n := e.(type) {
	case *parc.UnaryExpr:
		if n.Op == parc.TokNot {
			t := r.condTri(st, n.X)
			r.charge(1)
			return notTri(t)
		}
	case *parc.BinaryExpr:
		switch n.Op {
		case parc.TokAndAnd:
			ta := r.condTri(st, n.X)
			r.charge(1) // the VM charges after the left operand only
			// Inference mode mirrors the VM's short-circuit: a concrete left
			// operand decides whether the right one is evaluated (and whether
			// its shared reads happen) at all. The race detector keeps the
			// non-short-circuit over-approximation.
			if r.infer != nil {
				switch ta {
				case triFalse:
					return triFalse
				case triTrue:
					return r.condTri(st, n.Y)
				}
				r.inexact(n.Position(), "left operand of && is not concrete; both sides recorded")
			}
			tb := r.condTri(st, n.Y)
			if ta == triFalse || tb == triFalse {
				return triFalse
			}
			if ta == triTrue && tb == triTrue {
				return triTrue
			}
			return triUnknown
		case parc.TokOrOr:
			ta := r.condTri(st, n.X)
			r.charge(1) // the VM charges after the left operand only
			if r.infer != nil {
				switch ta {
				case triTrue:
					return triTrue
				case triFalse:
					return r.condTri(st, n.Y)
				}
				r.inexact(n.Position(), "left operand of || is not concrete; both sides recorded")
			}
			tb := r.condTri(st, n.Y)
			if ta == triTrue || tb == triTrue {
				return triTrue
			}
			if ta == triFalse && tb == triFalse {
				return triFalse
			}
			return triUnknown
		case parc.TokEq, parc.TokNe, parc.TokLt, parc.TokLe, parc.TokGt, parc.TokGe:
			a := r.evalExpr(st, n.X)
			b := r.evalExpr(st, n.Y)
			r.charge(1)
			if a.isFloat || b.isFloat {
				return triUnknown
			}
			return cmpTri(n.Op, r.mat(st, a), r.mat(st, b))
		}
	}
	return r.truth(st, e)
}

func cmpTri(op parc.TokKind, a, b si) tri {
	if a.empty() || b.empty() {
		return triUnknown
	}
	switch op {
	case parc.TokEq:
		if a.isConst() && b.isConst() {
			if a.lo == b.lo {
				return triTrue
			}
			return triFalse
		}
		if !a.overlaps(b) {
			return triFalse
		}
		return triUnknown
	case parc.TokNe:
		return notTri(cmpTri(parc.TokEq, a, b))
	case parc.TokLt:
		if a.hi < b.lo {
			return triTrue
		}
		if a.lo >= b.hi {
			return triFalse
		}
	case parc.TokLe:
		if a.hi <= b.lo {
			return triTrue
		}
		if a.lo > b.hi {
			return triFalse
		}
	case parc.TokGt:
		return cmpTri(parc.TokLt, b, a)
	case parc.TokGe:
		return cmpTri(parc.TokLe, b, a)
	}
	return triUnknown
}

// refine narrows st under the assumption that e evaluates to want.
// Sub-expressions are re-evaluated with events suppressed, so refinement
// never double-records accesses.
func (r *nodeRun) refine(st *state, e parc.Expr, want bool) {
	r.suppress++
	r.refine1(st, e, want)
	r.suppress--
}

func (r *nodeRun) refine1(st *state, e parc.Expr, want bool) {
	switch n := e.(type) {
	case *parc.UnaryExpr:
		if n.Op == parc.TokNot {
			r.refine1(st, n.X, !want)
		}
	case *parc.BinaryExpr:
		switch n.Op {
		case parc.TokAndAnd:
			if want {
				r.refine1(st, n.X, true)
				r.refine1(st, n.Y, true)
			}
		case parc.TokOrOr:
			if !want {
				r.refine1(st, n.X, false)
				r.refine1(st, n.Y, false)
			}
		case parc.TokEq, parc.TokNe, parc.TokLt, parc.TokLe, parc.TokGt, parc.TokGe:
			op := n.Op
			if !want {
				op = negCmp(op)
			}
			r.refineCmpExpr(st, op, n.X, n.Y)
		}
	}
}

func negCmp(op parc.TokKind) parc.TokKind {
	switch op {
	case parc.TokEq:
		return parc.TokNe
	case parc.TokNe:
		return parc.TokEq
	case parc.TokLt:
		return parc.TokGe
	case parc.TokLe:
		return parc.TokGt
	case parc.TokGt:
		return parc.TokLe
	case parc.TokGe:
		return parc.TokLt
	}
	return op
}

func flipCmp(op parc.TokKind) parc.TokKind {
	switch op {
	case parc.TokLt:
		return parc.TokGt
	case parc.TokLe:
		return parc.TokGe
	case parc.TokGt:
		return parc.TokLt
	case parc.TokGe:
		return parc.TokLe
	}
	return op
}

func (r *nodeRun) refineCmpExpr(st *state, op parc.TokKind, x, y parc.Expr) {
	// Congruence pattern: (E % m) == c refines E's slot to a residue class
	// — the rule that proves red/black sweeps disjoint.
	if op == parc.TokEq {
		if r.refineMod(st, x, y) || r.refineMod(st, y, x) {
			return
		}
	}
	a := r.evalExpr(st, x)
	b := r.evalExpr(st, y)
	if a.isFloat || b.isFloat {
		return
	}
	if a.aff {
		if c, ok := r.matConst(st, b); ok {
			r.refineCmp(st, a, op, c)
			return
		}
	}
	if b.aff {
		if c, ok := r.matConst(st, a); ok {
			r.refineCmp(st, b, flipCmp(op), c)
		}
	}
}

func (r *nodeRun) refineMod(st *state, x, y parc.Expr) bool {
	me, ok := x.(*parc.BinaryExpr)
	if !ok || me.Op != parc.TokPercent {
		return false
	}
	m, mok := r.matConst(st, r.evalExpr(st, me.Y))
	if !mok || m <= 1 {
		return false
	}
	c, cok := r.matConst(st, r.evalExpr(st, y))
	if !cok {
		return false
	}
	inner := r.evalExpr(st, me.X)
	if !inner.aff {
		return false
	}
	// Solve coef*v + off ≡ c (mod m) for v.
	coef, rhs := inner.coef, c-inner.off
	d := gcd(coef, m)
	if ((rhs%d)+d)%d != 0 {
		st.dead = true
		return true
	}
	md := m / d
	if md == 1 {
		return true // every v satisfies it; no information
	}
	cd := ((coef/d)%md + md) % md
	_, p, _ := egcd(cd, md)
	v0 := ((rhs/d%md*(((p%md)+md)%md))%md + md) % md
	cur := r.load(st, inner.slot)
	if cur.isFloat {
		return true
	}
	next := refineClass(cur.set, v0, md)
	if next.empty() {
		st.dead = true
		return true
	}
	r.store(st, inner.slot, avInt(next))
	return true
}

// refineClass intersects a set with the residue class v ≡ v0 (mod md).
// Only finite sets keep congruence information.
func refineClass(cur si, v0, md int64) si {
	if cur.empty() || cur.lo <= negInf || cur.hi >= posInf {
		return cur
	}
	lo := v0 + ceilDiv(cur.lo-v0, md)*md
	hi := v0 + floorDiv(cur.hi-v0, md)*md
	if lo > hi {
		return siEmpty
	}
	return cur.intersect(si{lo, hi, md}.norm())
}

// refineCmp narrows an affine view's slot under coef*v + off OP c.
func (r *nodeRun) refineCmp(st *state, a aval, op parc.TokKind, c int64) {
	cur := r.load(st, a.slot)
	if cur.isFloat || a.coef == 0 {
		return
	}
	set := cur.set
	K := c - a.off
	switch op {
	case parc.TokEq:
		if K%a.coef != 0 {
			st.dead = true
			return
		}
		v := K / a.coef
		if !set.member(v) {
			st.dead = true
			return
		}
		r.store(st, a.slot, avC(v))
		return
	case parc.TokNe:
		if K%a.coef != 0 {
			return
		}
		v := K / a.coef
		switch {
		case set.isConst() && set.lo == v:
			st.dead = true
		case set.lo == v:
			r.store(st, a.slot, avInt(set.clampMin(v+1)))
		case set.hi == v:
			r.store(st, a.slot, avInt(set.clampMax(v-1)))
		}
		return
	}
	var upper, strictAdj bool
	switch op {
	case parc.TokLt:
		upper, strictAdj = true, true
	case parc.TokLe:
		upper = true
	case parc.TokGt:
		strictAdj = true
	case parc.TokGe:
	default:
		return
	}
	if strictAdj {
		if upper {
			K--
		} else {
			K++
		}
	}
	// coef*v <= K (upper) or coef*v >= K (!upper); dividing by a negative
	// coef flips the direction.
	var next si
	if a.coef > 0 {
		if upper {
			next = set.clampMax(floorDiv(K, a.coef))
		} else {
			next = set.clampMin(ceilDiv(K, a.coef))
		}
	} else {
		if upper {
			next = set.clampMin(ceilDivNeg(K, a.coef))
		} else {
			next = set.clampMax(floorDivNeg(K, a.coef))
		}
	}
	if next.empty() {
		st.dead = true
		return
	}
	r.store(st, a.slot, avInt(next))
}

// floorDiv and ceilDiv implement mathematical floor/ceil division for b > 0.
func floorDiv(a, b int64) int64 {
	q := a / b
	if a%b != 0 && (a < 0) != (b < 0) {
		q--
	}
	return q
}

func ceilDiv(a, b int64) int64 {
	q := a / b
	if a%b != 0 && (a < 0) == (b < 0) {
		q++
	}
	return q
}

// ceilDivNeg computes ceil(a/b) for b < 0; floorDivNeg computes floor(a/b).
func ceilDivNeg(a, b int64) int64  { return -floorDiv(a, -b) }
func floorDivNeg(a, b int64) int64 { return -ceilDiv(a, -b) }

// ---- statements ----

func (r *nodeRun) evalStmt(st *state, s parc.Stmt) {
	if s == nil || st.dead || st.ret || r.spend() {
		return
	}
	// Mirror the VM's pc discipline: every access emitted while this
	// statement evaluates carries the statement's ID (loop back-edges reset
	// it to the loop's own ID before guard re-evaluation, as the VM does).
	r.curStmt = s.ID()
	// Statement-dispatch work charge; the interpreter's block-body walks
	// (function bodies, if-then, loop bodies) bypass dispatch and are
	// mirrored by evalBlock, which does not charge.
	r.charge(1)
	switch n := s.(type) {
	case *parc.Block:
		r.evalBlock(st, n)
	case *parc.VarDeclStmt:
		if n.Init != nil {
			v := r.evalExpr(st, n.Init)
			slot := n.Slot - 1
			if n.Slot == 0 {
				slot = r.scalarSlot(st, n.Name)
			}
			r.store(st, slot, v)
		}
	case *parc.AssignStmt:
		r.assign(st, n)
	case *parc.IfStmt:
		r.evalIf(st, n)
	case *parc.WhileStmt:
		r.evalWhile(st, n)
	case *parc.ForStmt:
		r.evalFor(st, n)
	case *parc.BarrierStmt:
		r.emit(event{kind: evBarrier, pos: n.Position(), stmtID: n.ID()})
		if r.suppress == 0 {
			r.epoch++
		}
	case *parc.LockStmt:
		r.lockOp(st, n.LockID, 1, n.ID())
	case *parc.UnlockStmt:
		r.lockOp(st, n.LockID, -1, n.ID())
	case *parc.ReturnStmt:
		if n.Value != nil {
			v := r.matv(st, r.evalExpr(st, n.Value))
			agg := r.rets[len(r.rets)-1]
			if agg.has {
				agg.val = joinAval(agg.val, v)
			} else {
				agg.val, agg.has = v, true
			}
		}
		st.ret = true
	case *parc.ExprStmt:
		r.call(st, n.Call)
	case *parc.PrintStmt:
		for _, a := range n.Args {
			r.evalExpr(st, a)
		}
		if r.infer != nil {
			r.emit(event{kind: evPrint, pos: n.Position(), stmtID: n.ID()})
		}
	case *parc.CICOStmt:
		r.cico(st, n)
	}
}

// evalBlock walks a block's statements without the dispatch charge,
// mirroring the interpreter's execBlock (used for function bodies, if-then
// arms, and loop bodies, which are entered directly rather than dispatched).
func (r *nodeRun) evalBlock(st *state, b *parc.Block) {
	if b == nil {
		return
	}
	for _, c := range b.Stmts {
		if st.dead || st.ret || r.outOfGas {
			return
		}
		r.evalStmt(st, c)
	}
}

func (r *nodeRun) lockOp(st *state, idExpr parc.Expr, delta int, stmtID int) {
	id, ok := r.matConst(st, r.evalExpr(st, idExpr))
	if r.suppress > 0 {
		return
	}
	if !ok {
		r.inexact(idExpr.Position(), "lock id is not concrete")
		r.lockTop += delta
		return
	}
	if r.infer != nil {
		kind := evLock
		if delta < 0 {
			kind = evUnlock
		}
		r.emit(event{kind: kind, lockID: id, pos: idExpr.Position(), stmtID: stmtID})
	}
	r.locks[id] += delta
	if r.locks[id] < 0 {
		r.locks[id] = 0
	}
	r.lockDirt = true
}

func (r *nodeRun) assign(st *state, n *parc.AssignStmt) {
	rhs := r.evalExpr(st, n.RHS)
	lv := n.LHS
	ref, slot, decl := lv.Ref, lv.Slot, lv.Shared
	if ref == parc.RefUnresolved {
		if d, ok := r.v.prog.SharedMap[lv.Name]; ok {
			ref, decl = parc.RefShared, d
		} else if b, ok := st.fn.Bindings[lv.Name]; ok {
			if b.Array {
				ref = parc.RefArray
			} else {
				ref, slot = parc.RefLocal, b.Slot
			}
		}
	}
	switch ref {
	case parc.RefShared:
		dims, variant, text := r.indexDims(st, decl, lv.Name, lv.Indices)
		base := event{
			varName: lv.Name, decl: decl, dims: dims, lockKey: r.lockKey(),
			pos: lv.Pos, stmtID: n.ID(), exprText: text, variant: variant,
		}
		if n.Op != parc.OpSet {
			rd := base
			rd.kind, rd.write = evAccess, false
			r.emit(rd)
		}
		wr := base
		wr.kind, wr.write = evAccess, true
		r.emit(wr)
	case parc.RefLocal:
		var nv aval
		if n.Op == parc.OpSet {
			nv = rhs
		} else {
			nv = r.arith(st, assignTok(n.Op), r.load(st, slot), rhs)
		}
		r.store(st, slot, nv)
	case parc.RefArray:
		for _, ix := range lv.Indices {
			r.charge(1)
			r.evalExpr(st, ix)
		}
	}
}

func assignTok(op parc.AssignOp) parc.TokKind {
	switch op {
	case parc.OpAdd:
		return parc.TokPlus
	case parc.OpSub:
		return parc.TokMinus
	case parc.OpMul:
		return parc.TokStar
	case parc.OpDiv:
		return parc.TokSlash
	}
	return parc.TokPlus
}

func (r *nodeRun) cico(st *state, n *parc.CICOStmt) {
	tgt := n.Target
	if tgt == nil {
		return
	}
	decl := tgt.Shared
	if decl == nil {
		decl = r.v.prog.SharedMap[tgt.Name]
	}
	if decl == nil {
		return
	}
	var dims []si
	variant := false
	for d, ix := range tgt.Indices {
		lo := r.mat(st, r.evalExpr(st, ix.Lo))
		s := lo
		stable := lo.isConst()
		if ix.Hi != nil {
			hi := r.mat(st, r.evalExpr(st, ix.Hi))
			stable = stable && hi.isConst()
			if lo.empty() || hi.empty() {
				s = siEmpty
			} else {
				s = si{lo.lo, hi.hi, 1}.norm()
			}
		}
		if d < len(decl.DimSizes) {
			s = s.clampMin(0).clampMax(int64(decl.DimSizes[d]) - 1)
		}
		if !stable {
			variant = true
		}
		dims = append(dims, s)
	}
	r.emit(event{
		kind: evAnn, ann: n.Kind, varName: tgt.Name, decl: decl, dims: dims,
		lockKey: r.lockKey(), pos: n.Position(), stmtID: n.ID(),
		exprText: parc.RangeRefString(tgt), variant: variant,
	})
}

func (r *nodeRun) evalIf(st *state, n *parc.IfStmt) {
	switch r.condTri(st, n.Cond) {
	case triTrue:
		r.evalBlock(st, n.Then)
	case triFalse:
		r.evalStmt(st, n.Else)
	default:
		r.inexact(n.Position(), "branch condition is not concrete; both arms recorded")
		thenSt := st.clone()
		r.refine(thenSt, n.Cond, true)
		if !thenSt.dead {
			r.evalBlock(thenSt, n.Then)
		}
		elseSt := st.clone()
		r.refine(elseSt, n.Cond, false)
		if !elseSt.dead && n.Else != nil {
			r.evalStmt(elseSt, n.Else)
		}
		*st = *joinState(thenSt, elseSt)
	}
}

func (r *nodeRun) evalWhile(st *state, n *parc.WhileStmt) {
	if r.infer != nil {
		if r.inferWhile(st, n) {
			return
		}
		r.inexact(n.Position(), "while guard does not stay concrete; loop approximated")
	}
	hasBar := r.v.info.ContainsBarrier(n)
	passes := 1
	if hasBar {
		// buildCFG already warned about the data-dependent epoch structure.
		passes = 2
	}
	cur := st.clone()
	r.suppress++
	for i := 0; i < fixCap; i++ {
		if r.outOfGas {
			break
		}
		if r.condTri(cur, n.Cond) == triFalse {
			break
		}
		body := cur.clone()
		r.refine(body, n.Cond, true)
		if body.dead {
			break
		}
		r.evalBlock(body, n.Body)
		next := joinState(cur.clone(), body)
		if i >= widenAfter {
			next = widenState(cur, next)
		}
		if next.equal(cur) {
			break
		}
		cur = next
	}
	r.suppress--
	r.curStmt = n.ID()          // guard reads carry the loop's pc
	t := r.condTri(cur, n.Cond) // record guard reads once
	if t != triFalse {
		save := r.iterCtx
		for p := 0; p < passes; p++ {
			body := cur.clone()
			r.refine(body, n.Cond, true)
			if body.dead {
				break
			}
			r.iterCtx = r.newIter()
			r.evalBlock(body, n.Body)
		}
		r.iterCtx = save
	}
	*st = *cur
	r.refine(st, n.Cond, false)
	st.dead = false // the abstract exit state may be vacuous; execution continues
}

// inferWhile enumerates a while loop the way the VM executes it: evaluate
// the guard (its shared reads are recorded with the loop statement's own ID,
// matching the VM's back-edge pc), run the body concretely, repeat. If any
// guard evaluation fails to fold to a constant, or the iteration cap is hit,
// the whole attempt — events, epoch count, lock state, frame — is rolled
// back and the caller falls to the abstract fixpoint. Reports success.
func (r *nodeRun) inferWhile(st *state, n *parc.WhileStmt) bool {
	snap := r.snapshot(st)
	save := r.iterCtx
	for i := 0; ; i++ {
		if i >= r.infer.opts.EnumLimit || r.outOfGas {
			r.rollback(st, snap)
			r.iterCtx = save
			return false
		}
		r.curStmt = n.ID()
		switch r.condTri(st, n.Cond) {
		case triFalse:
			r.iterCtx = save
			return true
		case triTrue:
		default:
			r.rollback(st, snap)
			r.iterCtx = save
			return false
		}
		r.iterCtx = r.newIter()
		r.evalBlock(st, n.Body)
		if st.dead || st.ret {
			r.iterCtx = save
			return true
		}
		r.charge(1) // back-edge charge, as the interpreter's loop issues after each body
	}
}

func (r *nodeRun) evalFor(st *state, n *parc.ForStmt) {
	slot := r.loopSlot(st, n)
	from := r.mat(st, r.evalExpr(st, n.From))
	to := r.mat(st, r.evalExpr(st, n.To))
	step, stepOK := int64(1), true
	if n.Step != nil {
		if s, ok := r.matConst(st, r.evalExpr(st, n.Step)); ok && s != 0 {
			step = s
		} else {
			stepOK = false
		}
	}
	hasBar := r.v.info.ContainsBarrier(n)
	if r.infer != nil {
		// Inference enumerates any loop with node-constant bounds, up to its
		// own (much larger) cap — including barrier loops: the VM needs no
		// cross-node trip agreement to execute, and a genuine divergence
		// surfaces later as a barrier-structure mismatch between the nodes'
		// summaries.
		if from.isConst() && to.isConst() && stepOK {
			trip := int64(0)
			if step > 0 && to.lo >= from.lo {
				trip = (to.lo-from.lo)/step + 1
			} else if step < 0 && from.lo >= to.lo {
				trip = (from.lo-to.lo)/(-step) + 1
			}
			if trip <= int64(r.infer.opts.EnumLimit) {
				r.enumFor(st, n, slot, from.lo, to.lo, step)
				return
			}
			r.inexact(n.Position(), "trip count %d exceeds the enumeration limit", trip)
		} else {
			r.inexact(n.Position(), "loop bounds are not node-constant; loop approximated")
		}
	}
	if hasBar {
		// Epoch alignment across nodes requires a node-independent trip
		// count, so only program-constant bounds may enumerate.
		if tc, ok := analysis.TripCount(n, r.v.prog.ConstVal); ok && tc <= barrierEnumLimit &&
			from.isConst() && to.isConst() && stepOK {
			r.enumFor(st, n, slot, from.lo, to.lo, step)
			return
		}
		r.structural(n.Position(), "cannot enumerate loop containing a barrier; epoch boundaries approximated")
		r.approxFor(st, n, slot, from, to, step, stepOK, 2)
		return
	}
	if from.isConst() && to.isConst() && stepOK {
		trip := int64(0)
		if step > 0 && to.lo >= from.lo {
			trip = (to.lo-from.lo)/step + 1
		} else if step < 0 && from.lo >= to.lo {
			trip = (from.lo-to.lo)/(-step) + 1
		}
		if trip <= enumLimit {
			r.enumFor(st, n, slot, from.lo, to.lo, step)
			return
		}
	}
	r.approxFor(st, n, slot, from, to, step, stepOK, 1)
}

func (r *nodeRun) enumFor(st *state, n *parc.ForStmt, slot int, from, to, step int64) {
	save := r.iterCtx
	v := from
	for ; (step > 0 && v <= to) || (step < 0 && v >= to); v += step {
		if st.dead || st.ret || r.outOfGas {
			break
		}
		r.store(st, slot, avC(v))
		r.iterCtx = r.newIter()
		r.evalBlock(st, n.Body)
		if !st.dead && !st.ret {
			r.charge(1) // back-edge charge, matching the interpreter's loop
		}
	}
	r.iterCtx = save
	if !st.dead && !st.ret {
		r.store(st, slot, avC(v))
	}
}

func (r *nodeRun) approxFor(st *state, n *parc.ForStmt, slot int, from, to si, step int64, stepOK bool, passes int) {
	varSI := loopVarSI(from, to, step, stepOK)
	if varSI.empty() {
		// Provably zero trips for this node.
		if !from.empty() {
			r.store(st, slot, avInt(from))
		}
		return
	}
	cur := st.clone()
	r.suppress++
	for i := 0; i < fixCap; i++ {
		if r.outOfGas {
			break
		}
		body := cur.clone()
		r.store(body, slot, avInt(varSI))
		r.evalBlock(body, n.Body)
		next := joinState(cur.clone(), body)
		if i >= widenAfter {
			next = widenState(cur, next)
		}
		if next.equal(cur) {
			break
		}
		cur = next
	}
	r.suppress--
	save := r.iterCtx
	for p := 0; p < passes; p++ {
		body := cur.clone()
		r.store(body, slot, avInt(varSI))
		if body.dead || body.ret {
			break
		}
		r.iterCtx = r.newIter()
		r.evalBlock(body, n.Body)
	}
	r.iterCtx = save
	*st = *cur
	st.dead, st.ret = false, false
	exit := varSI
	if stepOK {
		exit = varSI.join(varSI.addConst(step))
	}
	r.store(st, slot, avInt(exit))
}

// loopVarSI over-approximates the values a for-loop variable takes. The
// congruence anchor is the from bound, so stride-s partition loops stay in
// their residue class.
func loopVarSI(from, to si, step int64, stepOK bool) si {
	if from.empty() || to.empty() {
		return siTop
	}
	if !stepOK {
		return si{minI(from.lo, to.lo), maxI(from.hi, to.hi), 1}.norm()
	}
	if step > 0 {
		if to.hi < from.lo {
			return siEmpty
		}
		g := step
		if !from.isConst() {
			g = gcd(step, maxI(from.stride, 1))
		}
		return si{from.lo, to.hi, g}.norm()
	}
	// Negative step.
	if from.hi < to.lo {
		return siEmpty
	}
	if from.isConst() && to.isConst() {
		lo := from.lo - (from.lo-to.lo)/(-step)*(-step)
		return si{lo, from.lo, -step}.norm()
	}
	return si{to.lo, from.hi, 1}.norm()
}
