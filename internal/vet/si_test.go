package vet

import "testing"

// The strided-interval domain carries the race detector: if intersect or
// overlaps is wrong in either direction, vet reports phantom races or
// misses real ones. These tables pin the congruence arithmetic, with the
// CRT refinement and the degenerate/empty/widened corners called out.

func TestSINorm(t *testing.T) {
	cases := []struct {
		name string
		in   si
		want si
	}{
		{"inverted is empty", si{5, 3, 1}, siEmpty},
		{"singleton drops stride", si{4, 4, 7}, si{4, 4, 0}},
		{"hi snaps to grid", si{0, 10, 3}, si{0, 9, 3}},
		{"snap collapses to const", si{2, 4, 3}, si{2, 2, 0}},
		{"zero stride defaults to 1", si{0, 5, 0}, si{0, 5, 1}},
		{"negative stride defaults to 1", si{0, 5, -2}, si{0, 5, 1}},
		{"infinite bound forces stride 1", si{negInf, 10, 4}, si{negInf, 10, 1}},
		{"bounds clamp at sentinels", si{negInf - 5, posInf + 5, 1}, siTop},
	}
	for _, c := range cases {
		if got := c.in.norm(); got != c.want {
			t.Errorf("%s: %+v.norm() = %+v, want %+v", c.name, c.in, got, c.want)
		}
	}
}

func TestSIIntersect(t *testing.T) {
	cases := []struct {
		name string
		a, b si
		want si
	}{
		{"disjoint intervals", siRange(0, 4, 1), siRange(10, 12, 1), siEmpty},
		{"touching endpoints", siRange(0, 4, 1), siRange(4, 8, 1), siConst(4)},
		{"either empty", siEmpty, siRange(0, 9, 1), siEmpty},
		{"both empty", siEmpty, siEmpty, siEmpty},

		// Parity via CRT: evens ∩ odds over the same interval is empty —
		// this is the red/black disjointness proof.
		{"even vs odd", siRange(0, 10, 2), siRange(1, 11, 2), siEmpty},
		{"even vs even shifted", siRange(0, 10, 2), siRange(4, 20, 2), siRange(4, 10, 2)},

		// Coprime strides: 3Z ∩ 5Z = 15Z, anchored at the common element.
		{"stride 3 vs 5", siRange(0, 30, 3), siRange(0, 30, 5), siRange(0, 30, 15)},
		{"stride 3 vs 5 offset", siRange(1, 31, 3), siRange(2, 32, 5), siRange(7, 22, 15)},
		{"incompatible residues", siRange(0, 100, 4), siRange(1, 101, 2), siEmpty},

		// Non-coprime strides with a solution: x≡2 (mod 4), x≡0 (mod 6) → x≡12 (mod 12)...
		// gcd(4,6)=2 divides 0-2, lcm=12, first common element ≥ max(lo) is 6? No: 2,6,10,...∩0,6,12.. = {6,18,30}.
		{"stride 4 vs 6", siRange(2, 50, 4), siRange(0, 48, 6), siRange(6, 42, 12)},

		// Constants against grids.
		{"const on grid", siConst(6), siRange(0, 30, 3), siConst(6)},
		{"const off grid", siConst(7), siRange(0, 30, 3), siEmpty},
		{"const outside interval", siConst(33), siRange(0, 30, 3), siEmpty},
		{"grid vs const", siRange(0, 30, 3), siConst(6), siConst(6)},

		// Widened operands have stride 1; intersection is the clipped interval.
		{"widened lo", si{negInf, 10, 1}, siRange(-5, 20, 1), siRange(-5, 10, 1)},
		{"widened both", siTop, siRange(3, 9, 2), siRange(3, 9, 2)},

		// Negative anchors exercise the mod normalization in the CRT path.
		{"negative anchor parity", siRange(-10, 10, 2), siRange(-9, 9, 2), siEmpty},
		{"negative anchor match", siRange(-12, 12, 3), siRange(-6, 18, 6), siRange(-6, 12, 6)},
	}
	for _, c := range cases {
		if got := c.a.intersect(c.b); got != c.want {
			t.Errorf("%s: %+v ∩ %+v = %+v, want %+v", c.name, c.a, c.b, got, c.want)
		}
		// Intersection is symmetric up to normalization of the anchor.
		rev := c.b.intersect(c.a)
		if rev.empty() != c.want.empty() {
			t.Errorf("%s: asymmetric emptiness: %+v vs %+v", c.name, rev, c.want)
		}
	}
}

// TestSIIntersectSound cross-checks intersect against brute-force membership
// on small sets: every reported element must be in both, and no common
// element may be dropped (dropping one is a missed race).
func TestSIIntersectSound(t *testing.T) {
	grids := []si{
		siEmpty,
		siConst(0), siConst(7), siConst(-3),
		siRange(0, 24, 1), siRange(0, 24, 2), siRange(1, 25, 2),
		siRange(0, 24, 3), siRange(2, 26, 4), siRange(-12, 12, 5),
		siRange(-7, 23, 6), siRange(3, 3, 9),
	}
	for _, a := range grids {
		for _, b := range grids {
			got := a.intersect(b)
			for v := int64(-30); v <= 30; v++ {
				inBoth := a.member(v) && b.member(v)
				if inBoth != got.member(v) {
					t.Fatalf("%+v ∩ %+v = %+v: element %d membership: want %v",
						a, b, got, v, inBoth)
				}
			}
			if got.overlaps(a) != !got.empty() || a.overlaps(b) != !got.empty() {
				t.Fatalf("overlaps inconsistent for %+v, %+v", a, b)
			}
		}
	}
}

func TestSIOverlapsDegenerate(t *testing.T) {
	cases := []struct {
		name string
		a, b si
		want bool
	}{
		{"empty never overlaps", siEmpty, siTop, false},
		{"empty vs empty", siEmpty, siEmpty, false},
		{"const vs itself", siConst(5), siConst(5), true},
		{"const vs other const", siConst(5), siConst(6), false},
		{"zero-stride singleton vs grid", si{8, 8, 0}, siRange(0, 32, 8), true},
		{"un-normalized inverted operand", si{9, 2, 1}.norm(), siRange(0, 100, 1), false},
		{"top overlaps anything nonempty", siTop, siConst(-123456), true},
	}
	for _, c := range cases {
		if got := c.a.overlaps(c.b); got != c.want {
			t.Errorf("%s: %+v.overlaps(%+v) = %v, want %v", c.name, c.a, c.b, got, c.want)
		}
	}
}

func TestSIModResidue(t *testing.T) {
	cases := []struct {
		name string
		a    si
		m    int64
		want si
	}{
		{"parity survives mod 2", siRange(0, 100, 2), 2, siConst(0)},
		{"odd parity survives mod 2", siRange(1, 101, 2), 2, siConst(1)},
		{"stride 4 mod 6 keeps mod-2 class", siRange(0, 100, 4), 6, siRange(0, 4, 2)},
		{"already in range", siRange(1, 5, 2), 8, siRange(1, 5, 2)},
		{"const negative", siConst(-7), 5, siConst(3)},
		{"coprime stride loses all", siRange(0, 100, 3), 5, siRange(0, 4, 1)},
		{"negative anchor residue", siRange(-4, 96, 10), 4, siRange(0, 2, 2)},
		{"non-positive modulus is top", siRange(0, 10, 1), 0, siTop},
		{"empty stays empty", siEmpty, 7, siEmpty},
	}
	for _, c := range cases {
		if got := c.a.mod(c.m); got != c.want {
			t.Errorf("%s: %+v.mod(%d) = %+v, want %+v", c.name, c.a, c.m, got, c.want)
		}
	}
	// Soundness sweep: every concrete remainder must be a member.
	for _, a := range []si{siRange(-20, 20, 3), siRange(-19, 23, 6), siRange(2, 26, 4)} {
		for _, m := range []int64{2, 3, 4, 5, 6, 7, 12} {
			got := a.mod(m)
			for v := a.lo; v <= a.hi; v += a.stride {
				r := ((v % m) + m) % m
				if !got.member(r) {
					t.Fatalf("%+v.mod(%d) = %+v drops remainder %d of %d", a, m, got, r, v)
				}
			}
		}
	}
}

func TestSIDivConst(t *testing.T) {
	cases := []struct {
		name string
		a    si
		c    int64
		want si
	}{
		{"exact grid division", siRange(0, 24, 4), 4, siRange(0, 6, 1)},
		{"exact with larger residue stride", siRange(0, 24, 8), 4, siRange(0, 6, 2)},
		{"inexact loses stride", siRange(1, 25, 4), 4, siRange(0, 6, 1)},
		{"divide by zero is top", siRange(0, 10, 1), 0, siTop},
		{"negative divisor flips", siRange(0, 12, 4), -4, siRange(-3, 0, 1)},
		{"truncation across zero", siRange(-7, 7, 1), 2, siRange(-3, 3, 1)},
		{"const", siConst(9), 2, siConst(4)},
		{"const negative truncates toward zero", siConst(-9), 2, siConst(-4)},
	}
	for _, c := range cases {
		if got := c.a.divConst(c.c); got != c.want {
			t.Errorf("%s: %+v.divConst(%d) = %+v, want %+v", c.name, c.a, c.c, got, c.want)
		}
	}
}

func TestSIJoinWidenClamp(t *testing.T) {
	// join keeps the coarsest common congruence, including the anchor gap.
	if got := siRange(0, 8, 4).join(siRange(2, 10, 4)); got != siRange(0, 10, 2) {
		t.Errorf("join parity gap: %+v", got)
	}
	if got := siRange(0, 12, 6).join(siRange(3, 15, 6)); got != siRange(0, 15, 3) {
		t.Errorf("join residue gap: %+v", got)
	}
	if got := siEmpty.join(siRange(1, 9, 2)); got != siRange(1, 9, 2) {
		t.Errorf("join with empty: %+v", got)
	}
	if got := siConst(5).join(siConst(5)); got != siConst(5) {
		t.Errorf("join equal consts: %+v", got)
	}

	// widen jumps only the unstable bound to infinity.
	a, b := siRange(0, 10, 1), siRange(0, 20, 1)
	if got := a.widen(b); got != (si{0, posInf, 1}) {
		t.Errorf("widen hi: %+v", got)
	}
	if got := a.widen(siRange(-5, 10, 1)); got != (si{negInf, 10, 1}) {
		t.Errorf("widen lo: %+v", got)
	}
	if got := a.widen(siRange(0, 10, 1)); got != a {
		t.Errorf("widen stable: %+v", got)
	}
	if got := siEmpty.widen(b); got != b {
		t.Errorf("widen from empty: %+v", got)
	}

	// clampMin re-anchors on the stride grid; clampMax just cuts.
	if got := siRange(0, 20, 4).clampMin(5); got != siRange(8, 20, 4) {
		t.Errorf("clampMin re-anchor: %+v", got)
	}
	if got := siRange(0, 20, 4).clampMin(8); got != siRange(8, 20, 4) {
		t.Errorf("clampMin on grid: %+v", got)
	}
	if got := siRange(0, 20, 4).clampMin(21); !got.empty() {
		t.Errorf("clampMin past hi should be empty: %+v", got)
	}
	if got := siRange(0, 20, 4).clampMax(14); got != siRange(0, 12, 4) {
		t.Errorf("clampMax snaps to grid: %+v", got)
	}
	if got := siRange(0, 20, 4).clampMax(-1); !got.empty() {
		t.Errorf("clampMax below lo should be empty: %+v", got)
	}
}

func TestSIContainsMember(t *testing.T) {
	grid := siRange(0, 30, 3)
	if !grid.contains(siRange(6, 24, 6)) {
		t.Error("multiple-stride subgrid should be contained")
	}
	if grid.contains(siRange(6, 24, 4)) {
		t.Error("stride 4 is not a subgrid of stride 3")
	}
	if grid.contains(siRange(1, 28, 3)) {
		t.Error("off-anchor grid should not be contained")
	}
	if !grid.contains(siEmpty) {
		t.Error("empty is contained in everything")
	}
	if siEmpty.contains(siConst(0)) {
		t.Error("empty contains nothing")
	}
	if !siTop.contains(grid) {
		t.Error("top contains every finite set")
	}
	for _, v := range []int64{0, 3, 30} {
		if !grid.member(v) {
			t.Errorf("member(%d) should hold", v)
		}
	}
	for _, v := range []int64{-3, 1, 31} {
		if grid.member(v) {
			t.Errorf("member(%d) should not hold", v)
		}
	}
}

func TestSIScaleAddArith(t *testing.T) {
	if got := siRange(0, 10, 2).scale(-3); got != siRange(-30, 0, 6) {
		t.Errorf("negative scale: %+v", got)
	}
	if got := siRange(0, 10, 2).scale(0); got != siConst(0) {
		t.Errorf("zero scale: %+v", got)
	}
	if got := siRange(0, 6, 2).add(siRange(0, 9, 3)); got != siRange(0, 15, 1) {
		t.Errorf("add mixes strides to gcd: %+v", got)
	}
	if got := siRange(0, 6, 2).add(siConst(5)); got != siRange(5, 11, 2) {
		t.Errorf("add const keeps stride: %+v", got)
	}
	if got := siRange(0, 8, 4).add(siRange(0, 8, 4)); got != siRange(0, 16, 4) {
		t.Errorf("add same stride: %+v", got)
	}
	if got := siEmpty.add(siConst(1)); !got.empty() {
		t.Errorf("add with empty: %+v", got)
	}
	// Saturation: scaling a huge set pins at the sentinels instead of wrapping.
	big := si{negInf, posInf, 1}
	if got := big.scale(1000); got != big {
		t.Errorf("saturating scale: %+v", got)
	}
	if got := siRange(posInf/2, posInf, 1).addConst(posInf); got != (si{posInf, posInf, 0}) {
		t.Errorf("saturating addConst: %+v", got)
	}
	if got := siRange(-4, 4, 2).mul(siRange(-3, 3, 3)); got != siRange(-12, 12, 1) {
		t.Errorf("general mul brackets products: %+v", got)
	}
}
