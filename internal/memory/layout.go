// Package memory lays out a ParC program's shared variables in the simulated
// global address space and maps addresses back to variables and element
// indices. Regions are block-aligned so that false sharing can only occur
// between elements of the same array, never between unrelated variables.
//
// The labelled-region facility stands in for the paper's memory-labelling
// macro (Section 4.3): "The programmer uses a macro to label a continuous
// region of shared-memory with a name." In ParC the label is part of the
// shared declaration; unlabelled variables fall back to their declared name.
package memory

import (
	"fmt"
	"sort"

	"cachier/internal/parc"
)

// Region describes one shared variable's placement in the address space.
type Region struct {
	Name     string // declared name
	Label    string // label if given, else Name
	Base     Base   // declared element type
	BaseAddr uint64 // first byte, block-aligned
	DimSizes []int  // per-dimension element counts; empty for scalars
	Elems    int    // total element count
	Bytes    uint64 // total size in bytes
}

// Base is the element type of a region.
type Base int

// Element types.
const (
	Int Base = iota
	Float
)

// End returns the first byte past the region.
func (r *Region) End() uint64 { return r.BaseAddr + r.Bytes }

// Contains reports whether addr falls inside the region.
func (r *Region) Contains(addr uint64) bool {
	return addr >= r.BaseAddr && addr < r.End()
}

// Layout is the address-space assignment for a program's shared variables.
type Layout struct {
	BlockSize int
	Regions   []*Region
	byName    map[string]*Region
	total     uint64
}

// New computes a layout for the program's shared declarations, aligning each
// region to blockSize. It also back-fills each SharedDecl's BaseAddr.
func New(prog *parc.Program, blockSize int) (*Layout, error) {
	if blockSize <= 0 || blockSize&(blockSize-1) != 0 {
		return nil, fmt.Errorf("memory: block size %d is not a positive power of two", blockSize)
	}
	l := &Layout{
		BlockSize: blockSize,
		byName:    make(map[string]*Region),
	}
	var next uint64 = uint64(blockSize) // keep address 0 unused as a sentinel
	for _, d := range prog.Shareds {
		base := Int
		if d.Base == parc.FloatType {
			base = Float
		}
		label := d.Label
		if label == "" {
			label = d.Name
		}
		r := &Region{
			Name:     d.Name,
			Label:    label,
			Base:     base,
			BaseAddr: next,
			DimSizes: append([]int(nil), d.DimSizes...),
			Elems:    d.Size,
			Bytes:    uint64(d.Size) * parc.ElemSize,
		}
		d.BaseAddr = next
		l.Regions = append(l.Regions, r)
		l.byName[d.Name] = r
		next = alignUp(next+r.Bytes, uint64(blockSize))
	}
	l.total = next
	return l, nil
}

func alignUp(x, a uint64) uint64 { return (x + a - 1) &^ (a - 1) }

// TotalBytes returns the size of the laid-out shared address space.
func (l *Layout) TotalBytes() uint64 { return l.total }

// Region returns the region for a shared variable name, or nil.
func (l *Layout) Region(name string) *Region { return l.byName[name] }

// AddrOf returns the byte address of an element given its indices (row-major
// order, as in the paper's worked examples).
func (l *Layout) AddrOf(name string, indices ...int) (uint64, error) {
	r := l.byName[name]
	if r == nil {
		return 0, fmt.Errorf("memory: no shared variable %q", name)
	}
	return r.AddrOf(indices...)
}

// AddrOf returns the byte address of an element of the region.
func (r *Region) AddrOf(indices ...int) (uint64, error) {
	if len(indices) != len(r.DimSizes) {
		return 0, fmt.Errorf("memory: %s has rank %d, got %d indices", r.Name, len(r.DimSizes), len(indices))
	}
	off := 0
	for d, ix := range indices {
		if ix < 0 || ix >= r.DimSizes[d] {
			return 0, fmt.Errorf("memory: index %d out of range [0,%d) in dimension %d of %s",
				ix, r.DimSizes[d], d, r.Name)
		}
		off = off*r.DimSizes[d] + ix
	}
	return r.BaseAddr + uint64(off)*parc.ElemSize, nil
}

// IndexOf converts an address inside the region back to element indices.
func (r *Region) IndexOf(addr uint64) ([]int, error) {
	return r.IndexInto(addr, nil)
}

// IndexInto is IndexOf writing into buf when it has sufficient capacity, so
// callers converting many addresses can reuse one allocation. The returned
// slice aliases buf in that case.
func (r *Region) IndexInto(addr uint64, buf []int) ([]int, error) {
	if !r.Contains(addr) {
		return nil, fmt.Errorf("memory: address %#x not in region %s", addr, r.Name)
	}
	off := int((addr - r.BaseAddr) / parc.ElemSize)
	if len(r.DimSizes) == 0 {
		return nil, nil
	}
	var out []int
	if cap(buf) >= len(r.DimSizes) {
		out = buf[:len(r.DimSizes)]
	} else {
		out = make([]int, len(r.DimSizes))
	}
	for d := len(r.DimSizes) - 1; d >= 0; d-- {
		out[d] = off % r.DimSizes[d]
		off /= r.DimSizes[d]
	}
	return out, nil
}

// RegionOf returns the region containing the address, or nil for addresses
// outside every region (including padding between regions).
func (l *Layout) RegionOf(addr uint64) *Region {
	i := sort.Search(len(l.Regions), func(i int) bool {
		return l.Regions[i].End() > addr
	})
	if i >= len(l.Regions) || !l.Regions[i].Contains(addr) {
		return nil
	}
	return l.Regions[i]
}

// Resolve maps an address to its region and element indices. ok is false for
// addresses outside every region (including padding between regions).
func (l *Layout) Resolve(addr uint64) (r *Region, indices []int, ok bool) {
	r = l.RegionOf(addr)
	if r == nil {
		return nil, nil, false
	}
	ix, err := r.IndexOf(addr)
	if err != nil {
		return nil, nil, false
	}
	return r, ix, true
}

// BlockOf returns the block number containing addr.
func (l *Layout) BlockOf(addr uint64) uint64 { return addr / uint64(l.BlockSize) }

// BlockAddr returns the first byte address of a block number.
func (l *Layout) BlockAddr(block uint64) uint64 { return block * uint64(l.BlockSize) }

// ElemsPerBlock returns b, the number of array elements per cache block
// (4 with the default 32-byte blocks, as in the paper).
func (l *Layout) ElemsPerBlock() int { return l.BlockSize / parc.ElemSize }
