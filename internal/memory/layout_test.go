package memory

import (
	"testing"
	"testing/quick"

	"cachier/internal/parc"
)

func testLayout(t *testing.T) (*parc.Program, *Layout) {
	t.Helper()
	prog := parc.MustParse(`
const N = 6;
shared float A[N][N] label "matA";
shared int flags[10];
shared float x;
func main() { }
`)
	l, err := New(prog, 32)
	if err != nil {
		t.Fatal(err)
	}
	return prog, l
}

func TestLayoutAlignmentAndSizes(t *testing.T) {
	prog, l := testLayout(t)
	if len(l.Regions) != 3 {
		t.Fatalf("got %d regions", len(l.Regions))
	}
	for _, r := range l.Regions {
		if r.BaseAddr%32 != 0 {
			t.Errorf("region %s base %#x not block-aligned", r.Name, r.BaseAddr)
		}
		if r.BaseAddr == 0 {
			t.Errorf("region %s at address 0 (reserved)", r.Name)
		}
	}
	a := l.Region("A")
	if a.Bytes != 6*6*parc.ElemSize {
		t.Errorf("A bytes = %d", a.Bytes)
	}
	if a.Label != "matA" {
		t.Errorf("A label = %q", a.Label)
	}
	if f := l.Region("flags"); f.Label != "flags" {
		t.Errorf("unlabelled region label = %q", f.Label)
	}
	if prog.SharedMap["A"].BaseAddr != a.BaseAddr {
		t.Error("SharedDecl.BaseAddr not back-filled")
	}
	if x := l.Region("x"); x.Elems != 1 || len(x.DimSizes) != 0 {
		t.Errorf("scalar region: %+v", x)
	}
}

func TestRegionsDoNotOverlap(t *testing.T) {
	_, l := testLayout(t)
	for i := 1; i < len(l.Regions); i++ {
		prev, cur := l.Regions[i-1], l.Regions[i]
		if prev.End() > cur.BaseAddr {
			t.Errorf("regions %s and %s overlap", prev.Name, cur.Name)
		}
		// Block-aligned bases mean no two regions share a cache block.
		if l.BlockOf(prev.End()-1) == l.BlockOf(cur.BaseAddr) {
			t.Errorf("regions %s and %s share block %d", prev.Name, cur.Name, l.BlockOf(cur.BaseAddr))
		}
	}
}

func TestAddrOfRowMajor(t *testing.T) {
	_, l := testLayout(t)
	a := l.Region("A")
	a00, _ := l.AddrOf("A", 0, 0)
	a01, _ := l.AddrOf("A", 0, 1)
	a10, _ := l.AddrOf("A", 1, 0)
	if a00 != a.BaseAddr {
		t.Errorf("A[0][0] at %#x, base %#x", a00, a.BaseAddr)
	}
	if a01-a00 != parc.ElemSize {
		t.Errorf("row stride wrong: %d", a01-a00)
	}
	if a10-a00 != 6*parc.ElemSize {
		t.Errorf("column stride wrong: %d", a10-a00)
	}
}

func TestAddrOfErrors(t *testing.T) {
	_, l := testLayout(t)
	if _, err := l.AddrOf("nope", 0); err == nil {
		t.Error("missing variable accepted")
	}
	if _, err := l.AddrOf("A", 0); err == nil {
		t.Error("wrong rank accepted")
	}
	if _, err := l.AddrOf("A", 0, 6); err == nil {
		t.Error("out-of-range index accepted")
	}
	if _, err := l.AddrOf("A", -1, 0); err == nil {
		t.Error("negative index accepted")
	}
}

func TestResolveRoundTrip(t *testing.T) {
	_, l := testLayout(t)
	f := func(i, j uint8) bool {
		ii, jj := int(i)%6, int(j)%6
		addr, err := l.AddrOf("A", ii, jj)
		if err != nil {
			return false
		}
		r, ix, ok := l.Resolve(addr)
		return ok && r.Name == "A" && len(ix) == 2 && ix[0] == ii && ix[1] == jj
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestResolveOutsideRegions(t *testing.T) {
	_, l := testLayout(t)
	if _, _, ok := l.Resolve(0); ok {
		t.Error("address 0 resolved")
	}
	if _, _, ok := l.Resolve(l.TotalBytes() + 100); ok {
		t.Error("address past end resolved")
	}
	// Padding byte between regions (A is 288 bytes = 9 blocks exactly, so use
	// flags region end padding instead).
	flags := l.Region("flags")
	pad := flags.End()
	if x := l.Region("x"); pad < x.BaseAddr {
		if _, _, ok := l.Resolve(pad); ok {
			t.Error("padding address resolved")
		}
	}
}

func TestBlockMath(t *testing.T) {
	_, l := testLayout(t)
	if l.ElemsPerBlock() != 4 {
		t.Errorf("elements per block = %d, want 4 (paper Section 5)", l.ElemsPerBlock())
	}
	if l.BlockOf(32) != 1 || l.BlockOf(31) != 0 {
		t.Error("BlockOf wrong")
	}
	if l.BlockAddr(3) != 96 {
		t.Error("BlockAddr wrong")
	}
}

func TestBadBlockSize(t *testing.T) {
	prog := parc.MustParse(`shared int a; func main() { }`)
	for _, bs := range []int{0, -4, 24} {
		if _, err := New(prog, bs); err == nil {
			t.Errorf("block size %d accepted", bs)
		}
	}
}
