// Package testutil holds checks shared between core's property tests and the
// conformance harness: trace generation, the Section 4.1 annotation-set
// invariants, and shared-memory comparison. Everything returns errors rather
// than calling testing.T so the helpers compose inside testing/quick
// predicates and fuzz targets alike.
package testutil

import (
	"fmt"
	"math/rand"
	"testing"

	"cachier/internal/core"
	"cachier/internal/interp"
	"cachier/internal/memory"
	"cachier/internal/parc"
	"cachier/internal/trace"
)

// RandomTrace builds an arbitrary (possibly racy) multi-epoch trace: the
// annotation equations must hold for any trace, not just ones a real
// simulation can produce.
func RandomTrace(rng *rand.Rand) *trace.Trace {
	nodes := 1 + rng.Intn(4)
	b := trace.NewBuilder(nodes, 32, nil)
	epochs := 1 + rng.Intn(5)
	for e := 0; e < epochs; e++ {
		for i := 0; i < rng.Intn(30); i++ {
			b.AddMiss(trace.Kind(rng.Intn(3)), 32+uint64(rng.Intn(32))*8,
				rng.Intn(50), rng.Intn(nodes))
		}
		vt := make([]uint64, nodes)
		pc := rng.Intn(20)
		final := e == epochs-1
		if final {
			pc = -1
		}
		b.EndEpoch(pc, vt, final)
	}
	return b.Trace()
}

// CheckAnnotationSets verifies the Section 4.1 equation invariants for one
// style's computed annotations against the epoch sets they came from:
// co_x only of written addresses, co_s only of read addresses and never
// doubling a co_x, ci only of touched addresses.
func CheckAnnotationSets(epochs []*core.EpochSets, ann [][]core.AnnSets, style core.Style) error {
	for i, es := range epochs {
		for n, ns := range es.Nodes {
			a := ann[i][n]
			s := ns.S()
			for addr := range a.CoX {
				if !ns.SW[addr] {
					return fmt.Errorf("style %v epoch %d node %d: co_x of unwritten %d", style, i, n, addr)
				}
			}
			for addr := range a.CoS {
				if !ns.SR[addr] {
					return fmt.Errorf("style %v epoch %d node %d: co_s of unread %d", style, i, n, addr)
				}
				if a.CoX[addr] {
					return fmt.Errorf("style %v epoch %d node %d: %d both co_s and co_x", style, i, n, addr)
				}
			}
			for addr := range a.CI {
				if !s[addr] {
					return fmt.Errorf("style %v epoch %d node %d: ci of untouched %d", style, i, n, addr)
				}
			}
		}
	}
	return nil
}

// DiffSharedMemory compares every shared region word-for-word between two
// stores laid out by the same Layout, returning an error naming the first
// differing element. Floats are compared as raw bits: for race-free programs
// every variant executes the identical per-element operation sequence, so
// even NaN payloads must agree.
func DiffSharedMemory(layout *memory.Layout, got, want *interp.Store) error {
	for _, r := range layout.Regions {
		for off := uint64(0); off < r.Bytes; off += parc.ElemSize {
			addr := r.BaseAddr + off
			g, w := got.Load(addr), want.Load(addr)
			if g != w {
				idx, _ := r.IndexOf(addr)
				return fmt.Errorf("shared %s%v: got %#x (%v), want %#x (%v)",
					r.Name, idx,
					g, interp.FromBits(g, r.Base == memory.Float),
					w, interp.FromBits(w, r.Base == memory.Float))
			}
		}
	}
	return nil
}

// MustParse parses and checks src, failing the test on any error.
func MustParse(tb testing.TB, src string) *parc.Program {
	tb.Helper()
	prog, err := parc.Parse(src)
	if err != nil {
		tb.Fatalf("parse: %v", err)
	}
	if err := parc.Check(prog); err != nil {
		tb.Fatalf("check: %v", err)
	}
	return prog
}
