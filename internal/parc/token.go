// Package parc implements the front end for ParC, a small C-like SPMD
// shared-memory language used as the target-program representation for the
// Cachier reproduction. ParC programs have barrier-delimited epochs, shared
// arrays with optional region labels, locks, and the five CICO annotation
// statements (check_out_x, check_out_s, check_in, prefetch_x, prefetch_s).
//
// The package provides a lexer, a recursive-descent parser producing an AST
// in which every statement carries a unique ID (the simulator reports these
// IDs as "program counters" in traces), a semantic checker, and an unparser
// that regenerates source text — the mechanism Cachier uses to emit the
// annotated program.
package parc

import "fmt"

// Pos is a source position: 1-based line and column, plus the name of the
// file the source came from when it is known (ParseFile stamps it so that
// diagnostics and vet findings print as file:line:col).
type Pos struct {
	File string
	Line int
	Col  int
}

func (p Pos) String() string {
	if p.File != "" {
		return fmt.Sprintf("%s:%d:%d", p.File, p.Line, p.Col)
	}
	return fmt.Sprintf("%d:%d", p.Line, p.Col)
}

// IsValid reports whether the position has been set.
func (p Pos) IsValid() bool { return p.Line > 0 }

// TokKind enumerates lexical token kinds.
type TokKind int

// Token kinds.
const (
	TokEOF TokKind = iota
	TokIdent
	TokInt
	TokFloat
	TokString

	// Punctuation and operators.
	TokLParen   // (
	TokRParen   // )
	TokLBrace   // {
	TokRBrace   // }
	TokLBracket // [
	TokRBracket // ]
	TokComma    // ,
	TokSemi     // ;
	TokColon    // :
	TokAssign   // =
	TokPlusEq   // +=
	TokMinusEq  // -=
	TokStarEq   // *=
	TokSlashEq  // /=
	TokPlus     // +
	TokMinus    // -
	TokStar     // *
	TokSlash    // /
	TokPercent  // %
	TokEq       // ==
	TokNe       // !=
	TokLt       // <
	TokLe       // <=
	TokGt       // >
	TokGe       // >=
	TokAndAnd   // &&
	TokOrOr     // ||
	TokNot      // !

	// Keywords.
	TokConst
	TokShared
	TokLabel
	TokFunc
	TokVar
	TokIf
	TokElse
	TokWhile
	TokFor
	TokTo
	TokStep
	TokReturn
	TokBarrier
	TokLock
	TokUnlock
	TokPrint
	TokIntType
	TokFloatType
	TokCheckOutX
	TokCheckOutS
	TokCheckIn
	TokPrefetchX
	TokPrefetchS
)

var keywords = map[string]TokKind{
	"const":       TokConst,
	"shared":      TokShared,
	"label":       TokLabel,
	"func":        TokFunc,
	"var":         TokVar,
	"if":          TokIf,
	"else":        TokElse,
	"while":       TokWhile,
	"for":         TokFor,
	"to":          TokTo,
	"step":        TokStep,
	"return":      TokReturn,
	"barrier":     TokBarrier,
	"lock":        TokLock,
	"unlock":      TokUnlock,
	"print":       TokPrint,
	"int":         TokIntType,
	"float":       TokFloatType,
	"check_out_x": TokCheckOutX,
	"check_out_s": TokCheckOutS,
	"check_in":    TokCheckIn,
	"prefetch_x":  TokPrefetchX,
	"prefetch_s":  TokPrefetchS,
}

var tokNames = map[TokKind]string{
	TokEOF:       "end of file",
	TokIdent:     "identifier",
	TokInt:       "integer literal",
	TokFloat:     "float literal",
	TokString:    "string literal",
	TokLParen:    "'('",
	TokRParen:    "')'",
	TokLBrace:    "'{'",
	TokRBrace:    "'}'",
	TokLBracket:  "'['",
	TokRBracket:  "']'",
	TokComma:     "','",
	TokSemi:      "';'",
	TokColon:     "':'",
	TokAssign:    "'='",
	TokPlusEq:    "'+='",
	TokMinusEq:   "'-='",
	TokStarEq:    "'*='",
	TokSlashEq:   "'/='",
	TokPlus:      "'+'",
	TokMinus:     "'-'",
	TokStar:      "'*'",
	TokSlash:     "'/'",
	TokPercent:   "'%'",
	TokEq:        "'=='",
	TokNe:        "'!='",
	TokLt:        "'<'",
	TokLe:        "'<='",
	TokGt:        "'>'",
	TokGe:        "'>='",
	TokAndAnd:    "'&&'",
	TokOrOr:      "'||'",
	TokNot:       "'!'",
	TokConst:     "'const'",
	TokShared:    "'shared'",
	TokLabel:     "'label'",
	TokFunc:      "'func'",
	TokVar:       "'var'",
	TokIf:        "'if'",
	TokElse:      "'else'",
	TokWhile:     "'while'",
	TokFor:       "'for'",
	TokTo:        "'to'",
	TokStep:      "'step'",
	TokReturn:    "'return'",
	TokBarrier:   "'barrier'",
	TokLock:      "'lock'",
	TokUnlock:    "'unlock'",
	TokPrint:     "'print'",
	TokIntType:   "'int'",
	TokFloatType: "'float'",
	TokCheckOutX: "'check_out_x'",
	TokCheckOutS: "'check_out_s'",
	TokCheckIn:   "'check_in'",
	TokPrefetchX: "'prefetch_x'",
	TokPrefetchS: "'prefetch_s'",
}

func (k TokKind) String() string {
	if s, ok := tokNames[k]; ok {
		return s
	}
	return fmt.Sprintf("token(%d)", int(k))
}

// Token is a single lexical token.
type Token struct {
	Kind TokKind
	Pos  Pos
	Text string // raw text for idents, literals, strings (unquoted)
}

func (t Token) String() string {
	switch t.Kind {
	case TokIdent, TokInt, TokFloat:
		return t.Text
	case TokString:
		return fmt.Sprintf("%q", t.Text)
	}
	return t.Kind.String()
}
