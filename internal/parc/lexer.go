package parc

import (
	"fmt"
	"strings"
)

// Error is a front-end error with a source position.
type Error struct {
	Pos Pos
	Msg string
}

func (e *Error) Error() string {
	if e.Pos.IsValid() {
		return fmt.Sprintf("%s: %s", e.Pos, e.Msg)
	}
	return e.Msg
}

// Lexer turns ParC source text into tokens. Line comments run from "//" to
// end of line; block comments run from "/*" to "*/" (Cachier emits its data
// race and false sharing flags as block comments). Whitespace is
// insignificant.
type Lexer struct {
	src  string
	file string
	off  int
	line int
	col  int
}

// NewLexer returns a lexer over src.
func NewLexer(src string) *Lexer {
	return &Lexer{src: src, line: 1, col: 1}
}

// NewLexerFile returns a lexer over src whose token positions carry file as
// their file name.
func NewLexerFile(file, src string) *Lexer {
	return &Lexer{src: src, file: file, line: 1, col: 1}
}

func (l *Lexer) errorf(pos Pos, format string, args ...any) error {
	return &Error{Pos: pos, Msg: fmt.Sprintf(format, args...)}
}

func (l *Lexer) peek() byte {
	if l.off >= len(l.src) {
		return 0
	}
	return l.src[l.off]
}

func (l *Lexer) peek2() byte {
	if l.off+1 >= len(l.src) {
		return 0
	}
	return l.src[l.off+1]
}

func (l *Lexer) advance() byte {
	c := l.src[l.off]
	l.off++
	if c == '\n' {
		l.line++
		l.col = 1
	} else {
		l.col++
	}
	return c
}

func (l *Lexer) pos() Pos { return Pos{File: l.file, Line: l.line, Col: l.col} }

func (l *Lexer) skipSpaceAndComments() {
	for l.off < len(l.src) {
		c := l.peek()
		switch {
		case c == ' ' || c == '\t' || c == '\r' || c == '\n':
			l.advance()
		case c == '/' && l.peek2() == '/':
			for l.off < len(l.src) && l.peek() != '\n' {
				l.advance()
			}
		case c == '/' && l.peek2() == '*':
			l.advance()
			l.advance()
			for l.off < len(l.src) && !(l.peek() == '*' && l.peek2() == '/') {
				l.advance()
			}
			if l.off < len(l.src) {
				l.advance()
				l.advance()
			}
		default:
			return
		}
	}
}

func isLetter(c byte) bool {
	return c == '_' || ('a' <= c && c <= 'z') || ('A' <= c && c <= 'Z')
}

func isDigit(c byte) bool { return '0' <= c && c <= '9' }

// Next returns the next token, or an error for malformed input.
func (l *Lexer) Next() (Token, error) {
	l.skipSpaceAndComments()
	pos := l.pos()
	if l.off >= len(l.src) {
		return Token{Kind: TokEOF, Pos: pos}, nil
	}
	c := l.peek()
	switch {
	case isLetter(c):
		start := l.off
		for l.off < len(l.src) && (isLetter(l.peek()) || isDigit(l.peek())) {
			l.advance()
		}
		word := l.src[start:l.off]
		if k, ok := keywords[word]; ok {
			return Token{Kind: k, Pos: pos, Text: word}, nil
		}
		return Token{Kind: TokIdent, Pos: pos, Text: word}, nil
	case isDigit(c):
		start := l.off
		kind := TokInt
		for l.off < len(l.src) && isDigit(l.peek()) {
			l.advance()
		}
		if l.peek() == '.' && isDigit(l.peek2()) {
			kind = TokFloat
			l.advance()
			for l.off < len(l.src) && isDigit(l.peek()) {
				l.advance()
			}
		}
		if l.peek() == 'e' || l.peek() == 'E' {
			save := l.off
			l.advance()
			if l.peek() == '+' || l.peek() == '-' {
				l.advance()
			}
			if isDigit(l.peek()) {
				kind = TokFloat
				for l.off < len(l.src) && isDigit(l.peek()) {
					l.advance()
				}
			} else {
				l.off = save // not an exponent; leave 'e' for the next token
			}
		}
		return Token{Kind: kind, Pos: pos, Text: l.src[start:l.off]}, nil
	case c == '"':
		l.advance()
		var sb strings.Builder
		for {
			if l.off >= len(l.src) {
				return Token{}, l.errorf(pos, "unterminated string literal")
			}
			ch := l.advance()
			if ch == '"' {
				break
			}
			if ch == '\n' {
				return Token{}, l.errorf(pos, "newline in string literal")
			}
			if ch == '\\' {
				if l.off >= len(l.src) {
					return Token{}, l.errorf(pos, "unterminated string literal")
				}
				esc := l.advance()
				switch esc {
				case 'n':
					sb.WriteByte('\n')
				case 't':
					sb.WriteByte('\t')
				case '\\', '"':
					sb.WriteByte(esc)
				default:
					return Token{}, l.errorf(pos, "unknown escape '\\%c'", esc)
				}
				continue
			}
			sb.WriteByte(ch)
		}
		return Token{Kind: TokString, Pos: pos, Text: sb.String()}, nil
	}

	two := func(second byte, with, without TokKind) Token {
		l.advance()
		if l.peek() == second {
			l.advance()
			return Token{Kind: with, Pos: pos}
		}
		return Token{Kind: without, Pos: pos}
	}

	switch c {
	case '(':
		l.advance()
		return Token{Kind: TokLParen, Pos: pos}, nil
	case ')':
		l.advance()
		return Token{Kind: TokRParen, Pos: pos}, nil
	case '{':
		l.advance()
		return Token{Kind: TokLBrace, Pos: pos}, nil
	case '}':
		l.advance()
		return Token{Kind: TokRBrace, Pos: pos}, nil
	case '[':
		l.advance()
		return Token{Kind: TokLBracket, Pos: pos}, nil
	case ']':
		l.advance()
		return Token{Kind: TokRBracket, Pos: pos}, nil
	case ',':
		l.advance()
		return Token{Kind: TokComma, Pos: pos}, nil
	case ';':
		l.advance()
		return Token{Kind: TokSemi, Pos: pos}, nil
	case ':':
		l.advance()
		return Token{Kind: TokColon, Pos: pos}, nil
	case '=':
		return two('=', TokEq, TokAssign), nil
	case '+':
		return two('=', TokPlusEq, TokPlus), nil
	case '-':
		return two('=', TokMinusEq, TokMinus), nil
	case '*':
		return two('=', TokStarEq, TokStar), nil
	case '/':
		return two('=', TokSlashEq, TokSlash), nil
	case '%':
		l.advance()
		return Token{Kind: TokPercent, Pos: pos}, nil
	case '<':
		return two('=', TokLe, TokLt), nil
	case '>':
		return two('=', TokGe, TokGt), nil
	case '!':
		return two('=', TokNe, TokNot), nil
	case '&':
		l.advance()
		if l.peek() == '&' {
			l.advance()
			return Token{Kind: TokAndAnd, Pos: pos}, nil
		}
		return Token{}, l.errorf(pos, "unexpected '&'")
	case '|':
		l.advance()
		if l.peek() == '|' {
			l.advance()
			return Token{Kind: TokOrOr, Pos: pos}, nil
		}
		return Token{}, l.errorf(pos, "unexpected '|'")
	}
	return Token{}, l.errorf(pos, "unexpected character %q", string(c))
}

// Tokenize lexes the whole input, returning the token stream including the
// trailing EOF token.
func Tokenize(src string) ([]Token, error) {
	return TokenizeFile("", src)
}

// TokenizeFile lexes src like Tokenize, stamping file into every token
// position (and hence into any error) when it is non-empty.
func TokenizeFile(file, src string) ([]Token, error) {
	l := NewLexerFile(file, src)
	var toks []Token
	for {
		t, err := l.Next()
		if err != nil {
			return nil, err
		}
		toks = append(toks, t)
		if t.Kind == TokEOF {
			return toks, nil
		}
	}
}
