package parc

import (
	"strings"
	"testing"
)

func kinds(toks []Token) []TokKind {
	out := make([]TokKind, len(toks))
	for i, t := range toks {
		out[i] = t.Kind
	}
	return out
}

func TestTokenizeBasics(t *testing.T) {
	toks, err := Tokenize("for i = 0 to N - 1 { A[i] = i; }")
	if err != nil {
		t.Fatal(err)
	}
	want := []TokKind{
		TokFor, TokIdent, TokAssign, TokInt, TokTo, TokIdent, TokMinus, TokInt,
		TokLBrace, TokIdent, TokLBracket, TokIdent, TokRBracket, TokAssign,
		TokIdent, TokSemi, TokRBrace, TokEOF,
	}
	got := kinds(toks)
	if len(got) != len(want) {
		t.Fatalf("got %d tokens, want %d: %v", len(got), len(want), toks)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Errorf("token %d: got %s, want %s", i, got[i], want[i])
		}
	}
}

func TestTokenizeKeywords(t *testing.T) {
	src := "const shared label func var if else while for to step return barrier lock unlock print int float check_out_x check_out_s check_in prefetch_x prefetch_s"
	toks, err := Tokenize(src)
	if err != nil {
		t.Fatal(err)
	}
	want := []TokKind{
		TokConst, TokShared, TokLabel, TokFunc, TokVar, TokIf, TokElse,
		TokWhile, TokFor, TokTo, TokStep, TokReturn, TokBarrier, TokLock,
		TokUnlock, TokPrint, TokIntType, TokFloatType, TokCheckOutX,
		TokCheckOutS, TokCheckIn, TokPrefetchX, TokPrefetchS, TokEOF,
	}
	got := kinds(toks)
	for i := range want {
		if got[i] != want[i] {
			t.Errorf("token %d: got %s, want %s", i, got[i], want[i])
		}
	}
}

func TestTokenizeOperators(t *testing.T) {
	src := "== != <= >= < > && || ! = += -= *= /= + - * / % : , ;"
	toks, err := Tokenize(src)
	if err != nil {
		t.Fatal(err)
	}
	want := []TokKind{
		TokEq, TokNe, TokLe, TokGe, TokLt, TokGt, TokAndAnd, TokOrOr, TokNot,
		TokAssign, TokPlusEq, TokMinusEq, TokStarEq, TokSlashEq, TokPlus,
		TokMinus, TokStar, TokSlash, TokPercent, TokColon, TokComma, TokSemi,
		TokEOF,
	}
	got := kinds(toks)
	for i := range want {
		if got[i] != want[i] {
			t.Errorf("token %d: got %s, want %s", i, got[i], want[i])
		}
	}
}

func TestTokenizeNumbers(t *testing.T) {
	cases := []struct {
		src  string
		kind TokKind
		text string
	}{
		{"42", TokInt, "42"},
		{"0", TokInt, "0"},
		{"3.25", TokFloat, "3.25"},
		{"1e9", TokFloat, "1e9"},
		{"2.5e-3", TokFloat, "2.5e-3"},
		{"1E+4", TokFloat, "1E+4"},
	}
	for _, c := range cases {
		toks, err := Tokenize(c.src)
		if err != nil {
			t.Fatalf("%q: %v", c.src, err)
		}
		if toks[0].Kind != c.kind || toks[0].Text != c.text {
			t.Errorf("%q: got (%s, %q), want (%s, %q)", c.src, toks[0].Kind, toks[0].Text, c.kind, c.text)
		}
	}
}

func TestTokenizeNumberThenIdent(t *testing.T) {
	// "1e" without digits is the int 1 followed by identifier e.
	toks, err := Tokenize("1e")
	if err != nil {
		t.Fatal(err)
	}
	if toks[0].Kind != TokInt || toks[0].Text != "1" {
		t.Errorf("first token: got (%s, %q)", toks[0].Kind, toks[0].Text)
	}
	if toks[1].Kind != TokIdent || toks[1].Text != "e" {
		t.Errorf("second token: got (%s, %q)", toks[1].Kind, toks[1].Text)
	}
}

func TestTokenizeStrings(t *testing.T) {
	toks, err := Tokenize(`"hello \"x\"\n"`)
	if err != nil {
		t.Fatal(err)
	}
	if toks[0].Kind != TokString {
		t.Fatalf("got %s", toks[0].Kind)
	}
	if toks[0].Text != "hello \"x\"\n" {
		t.Errorf("got %q", toks[0].Text)
	}
}

func TestTokenizeComments(t *testing.T) {
	toks, err := Tokenize("x // comment to end\n// whole line\ny")
	if err != nil {
		t.Fatal(err)
	}
	if len(toks) != 3 {
		t.Fatalf("got %d tokens: %v", len(toks), toks)
	}
	if toks[0].Text != "x" || toks[1].Text != "y" {
		t.Errorf("got %v", toks)
	}
}

func TestTokenizePositions(t *testing.T) {
	toks, err := Tokenize("a\n  b")
	if err != nil {
		t.Fatal(err)
	}
	if toks[0].Pos != (Pos{Line: 1, Col: 1}) {
		t.Errorf("a at %v", toks[0].Pos)
	}
	if toks[1].Pos != (Pos{Line: 2, Col: 3}) {
		t.Errorf("b at %v", toks[1].Pos)
	}
}

func TestTokenizeErrors(t *testing.T) {
	cases := []string{`"unterminated`, `"bad \q escape"`, "@", "&x", "|x", "\"line\nbreak\""}
	for _, src := range cases {
		if _, err := Tokenize(src); err == nil {
			t.Errorf("%q: expected error", src)
		}
	}
}

func TestErrorIncludesPosition(t *testing.T) {
	_, err := Tokenize("x @")
	if err == nil {
		t.Fatal("expected error")
	}
	if !strings.Contains(err.Error(), "1:3") {
		t.Errorf("error %q does not mention position 1:3", err)
	}
}
