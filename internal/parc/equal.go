package parc

import "fmt"

// ASTEqual reports whether two programs are structurally equivalent,
// ignoring everything that does not affect meaning: statement IDs, source
// positions, checker-resolved fields, and free-standing comment statements.
// Unary minus applied to a literal is normalized to a negative literal, so a
// rewriter-built IntLit{-5} matches the parser's UnaryExpr(-, IntLit{5}).
// It returns nil when the programs are equivalent and an error locating the
// first difference otherwise; the printer/parser round trip is verified with
// exactly this relation.
func ASTEqual(a, b *Program) error {
	if len(a.Consts) != len(b.Consts) {
		return fmt.Errorf("const count %d != %d", len(a.Consts), len(b.Consts))
	}
	for i, ca := range a.Consts {
		cb := b.Consts[i]
		if ca.Name != cb.Name {
			return fmt.Errorf("const %d: name %q != %q", i, ca.Name, cb.Name)
		}
		if err := exprEqual(ca.Expr, cb.Expr); err != nil {
			return fmt.Errorf("const %s: %w", ca.Name, err)
		}
	}
	if len(a.Shareds) != len(b.Shareds) {
		return fmt.Errorf("shared count %d != %d", len(a.Shareds), len(b.Shareds))
	}
	for i, sa := range a.Shareds {
		sb := b.Shareds[i]
		switch {
		case sa.Name != sb.Name:
			return fmt.Errorf("shared %d: name %q != %q", i, sa.Name, sb.Name)
		case sa.Base != sb.Base:
			return fmt.Errorf("shared %s: base %v != %v", sa.Name, sa.Base, sb.Base)
		case sa.Label != sb.Label:
			return fmt.Errorf("shared %s: label %q != %q", sa.Name, sa.Label, sb.Label)
		case len(sa.Dims) != len(sb.Dims):
			return fmt.Errorf("shared %s: rank %d != %d", sa.Name, len(sa.Dims), len(sb.Dims))
		}
		for d := range sa.Dims {
			if err := exprEqual(sa.Dims[d], sb.Dims[d]); err != nil {
				return fmt.Errorf("shared %s dim %d: %w", sa.Name, d, err)
			}
		}
	}
	if len(a.Funcs) != len(b.Funcs) {
		return fmt.Errorf("func count %d != %d", len(a.Funcs), len(b.Funcs))
	}
	for i, fa := range a.Funcs {
		fb := b.Funcs[i]
		if fa.Name != fb.Name {
			return fmt.Errorf("func %d: name %q != %q", i, fa.Name, fb.Name)
		}
		if err := funcEqual(fa, fb); err != nil {
			return fmt.Errorf("func %s: %w", fa.Name, err)
		}
	}
	return nil
}

func funcEqual(a, b *FuncDecl) error {
	if len(a.Params) != len(b.Params) {
		return fmt.Errorf("param count %d != %d", len(a.Params), len(b.Params))
	}
	for i := range a.Params {
		if a.Params[i] != b.Params[i] {
			return fmt.Errorf("param %d: %v != %v", i, a.Params[i], b.Params[i])
		}
	}
	switch {
	case (a.Result == nil) != (b.Result == nil):
		return fmt.Errorf("result presence differs")
	case a.Result != nil && *a.Result != *b.Result:
		return fmt.Errorf("result %v != %v", *a.Result, *b.Result)
	}
	return blockEqual(a.Body, b.Body)
}

// meaningful filters out statements that carry no semantics (comments).
func meaningful(stmts []Stmt) []Stmt {
	out := make([]Stmt, 0, len(stmts))
	for _, s := range stmts {
		if _, ok := s.(*CommentStmt); ok {
			continue
		}
		out = append(out, s)
	}
	return out
}

func blockEqual(a, b *Block) error {
	sa, sb := meaningful(a.Stmts), meaningful(b.Stmts)
	if len(sa) != len(sb) {
		return fmt.Errorf("statement count %d != %d", len(sa), len(sb))
	}
	for i := range sa {
		if err := stmtEqual(sa[i], sb[i]); err != nil {
			return fmt.Errorf("stmt %d: %w", i, err)
		}
	}
	return nil
}

func stmtEqual(a, b Stmt) error {
	switch na := a.(type) {
	case *Block:
		nb, ok := b.(*Block)
		if !ok {
			return typeMismatch(a, b)
		}
		return blockEqual(na, nb)

	case *VarDeclStmt:
		nb, ok := b.(*VarDeclStmt)
		if !ok {
			return typeMismatch(a, b)
		}
		if na.Name != nb.Name || na.Base != nb.Base {
			return fmt.Errorf("var %s %v != var %s %v", na.Name, na.Base, nb.Name, nb.Base)
		}
		if err := exprsEqual(na.Dims, nb.Dims); err != nil {
			return fmt.Errorf("var %s dims: %w", na.Name, err)
		}
		return optExprEqual(na.Init, nb.Init, "var "+na.Name+" init")

	case *AssignStmt:
		nb, ok := b.(*AssignStmt)
		if !ok {
			return typeMismatch(a, b)
		}
		if na.Op != nb.Op {
			return fmt.Errorf("assign op %v != %v", na.Op, nb.Op)
		}
		if err := lvalueEqual(na.LHS, nb.LHS); err != nil {
			return err
		}
		return exprEqual(na.RHS, nb.RHS)

	case *IfStmt:
		nb, ok := b.(*IfStmt)
		if !ok {
			return typeMismatch(a, b)
		}
		if err := exprEqual(na.Cond, nb.Cond); err != nil {
			return fmt.Errorf("if cond: %w", err)
		}
		if err := blockEqual(na.Then, nb.Then); err != nil {
			return fmt.Errorf("if then: %w", err)
		}
		switch {
		case na.Else == nil && nb.Else == nil:
			return nil
		case (na.Else == nil) != (nb.Else == nil):
			return fmt.Errorf("else presence differs")
		}
		if err := stmtEqual(na.Else, nb.Else); err != nil {
			return fmt.Errorf("else: %w", err)
		}
		return nil

	case *WhileStmt:
		nb, ok := b.(*WhileStmt)
		if !ok {
			return typeMismatch(a, b)
		}
		if err := exprEqual(na.Cond, nb.Cond); err != nil {
			return fmt.Errorf("while cond: %w", err)
		}
		return blockEqual(na.Body, nb.Body)

	case *ForStmt:
		nb, ok := b.(*ForStmt)
		if !ok {
			return typeMismatch(a, b)
		}
		if na.Var != nb.Var {
			return fmt.Errorf("for var %q != %q", na.Var, nb.Var)
		}
		if err := exprEqual(na.From, nb.From); err != nil {
			return fmt.Errorf("for %s from: %w", na.Var, err)
		}
		if err := exprEqual(na.To, nb.To); err != nil {
			return fmt.Errorf("for %s to: %w", na.Var, err)
		}
		// A nil step means 1; treat an explicit literal 1 as equivalent.
		if err := optExprEqual(normStep(na.Step), normStep(nb.Step), "for "+na.Var+" step"); err != nil {
			return err
		}
		return blockEqual(na.Body, nb.Body)

	case *BarrierStmt:
		if _, ok := b.(*BarrierStmt); !ok {
			return typeMismatch(a, b)
		}
		return nil

	case *LockStmt:
		nb, ok := b.(*LockStmt)
		if !ok {
			return typeMismatch(a, b)
		}
		return exprEqual(na.LockID, nb.LockID)

	case *UnlockStmt:
		nb, ok := b.(*UnlockStmt)
		if !ok {
			return typeMismatch(a, b)
		}
		return exprEqual(na.LockID, nb.LockID)

	case *ReturnStmt:
		nb, ok := b.(*ReturnStmt)
		if !ok {
			return typeMismatch(a, b)
		}
		return optExprEqual(na.Value, nb.Value, "return value")

	case *ExprStmt:
		nb, ok := b.(*ExprStmt)
		if !ok {
			return typeMismatch(a, b)
		}
		return exprEqual(na.Call, nb.Call)

	case *PrintStmt:
		nb, ok := b.(*PrintStmt)
		if !ok {
			return typeMismatch(a, b)
		}
		if na.Format != nb.Format {
			return fmt.Errorf("print format %q != %q", na.Format, nb.Format)
		}
		return exprsEqual(na.Args, nb.Args)

	case *CICOStmt:
		nb, ok := b.(*CICOStmt)
		if !ok {
			return typeMismatch(a, b)
		}
		if na.Kind != nb.Kind {
			return fmt.Errorf("cico kind %v != %v", na.Kind, nb.Kind)
		}
		return rangeRefEqual(na.Target, nb.Target)
	}
	return fmt.Errorf("unsupported statement %T", a)
}

func typeMismatch(a, b Stmt) error {
	return fmt.Errorf("statement %T != %T", a, b)
}

// normStep maps an explicit step of literal 1 to the implicit nil step.
func normStep(e Expr) Expr {
	if lit, ok := normalizeExpr(e).(*IntLit); ok && lit.Value == 1 {
		return nil
	}
	return e
}

func lvalueEqual(a, b *LValue) error {
	if a.Name != b.Name {
		return fmt.Errorf("lvalue %q != %q", a.Name, b.Name)
	}
	if err := exprsEqual(a.Indices, b.Indices); err != nil {
		return fmt.Errorf("lvalue %s: %w", a.Name, err)
	}
	return nil
}

func rangeRefEqual(a, b *RangeRef) error {
	if a.Name != b.Name {
		return fmt.Errorf("range target %q != %q", a.Name, b.Name)
	}
	if len(a.Indices) != len(b.Indices) {
		return fmt.Errorf("range %s: rank %d != %d", a.Name, len(a.Indices), len(b.Indices))
	}
	for i := range a.Indices {
		if err := exprEqual(a.Indices[i].Lo, b.Indices[i].Lo); err != nil {
			return fmt.Errorf("range %s dim %d lo: %w", a.Name, i, err)
		}
		if err := optExprEqual(a.Indices[i].Hi, b.Indices[i].Hi, fmt.Sprintf("range %s dim %d hi", a.Name, i)); err != nil {
			return err
		}
	}
	return nil
}

func exprsEqual(a, b []Expr) error {
	if len(a) != len(b) {
		return fmt.Errorf("expression count %d != %d", len(a), len(b))
	}
	for i := range a {
		if err := exprEqual(a[i], b[i]); err != nil {
			return fmt.Errorf("expr %d: %w", i, err)
		}
	}
	return nil
}

func optExprEqual(a, b Expr, what string) error {
	switch {
	case a == nil && b == nil:
		return nil
	case (a == nil) != (b == nil):
		return fmt.Errorf("%s presence differs", what)
	}
	if err := exprEqual(a, b); err != nil {
		return fmt.Errorf("%s: %w", what, err)
	}
	return nil
}

// normalizeExpr folds unary minus over a literal into a signed literal, the
// one shape difference between parsed and rewriter-built trees.
func normalizeExpr(e Expr) Expr {
	u, ok := e.(*UnaryExpr)
	if !ok || u.Op != TokMinus {
		return e
	}
	switch lit := u.X.(type) {
	case *IntLit:
		return &IntLit{Value: -lit.Value}
	case *FloatLit:
		return &FloatLit{Value: -lit.Value}
	}
	return e
}

func exprEqual(a, b Expr) error {
	a, b = normalizeExpr(a), normalizeExpr(b)
	switch na := a.(type) {
	case *IntLit:
		nb, ok := b.(*IntLit)
		if !ok {
			return exprMismatch(a, b)
		}
		if na.Value != nb.Value {
			return fmt.Errorf("int %d != %d", na.Value, nb.Value)
		}
		return nil
	case *FloatLit:
		nb, ok := b.(*FloatLit)
		if !ok {
			return exprMismatch(a, b)
		}
		if na.Value != nb.Value {
			return fmt.Errorf("float %g != %g", na.Value, nb.Value)
		}
		return nil
	case *VarRef:
		nb, ok := b.(*VarRef)
		if !ok {
			return exprMismatch(a, b)
		}
		if na.Name != nb.Name {
			return fmt.Errorf("name %q != %q", na.Name, nb.Name)
		}
		return nil
	case *IndexExpr:
		nb, ok := b.(*IndexExpr)
		if !ok {
			return exprMismatch(a, b)
		}
		if na.Name != nb.Name {
			return fmt.Errorf("index base %q != %q", na.Name, nb.Name)
		}
		if err := exprsEqual(na.Indices, nb.Indices); err != nil {
			return fmt.Errorf("%s: %w", na.Name, err)
		}
		return nil
	case *CallExpr:
		nb, ok := b.(*CallExpr)
		if !ok {
			return exprMismatch(a, b)
		}
		if na.Name != nb.Name {
			return fmt.Errorf("call %q != %q", na.Name, nb.Name)
		}
		if err := exprsEqual(na.Args, nb.Args); err != nil {
			return fmt.Errorf("call %s: %w", na.Name, err)
		}
		return nil
	case *UnaryExpr:
		nb, ok := b.(*UnaryExpr)
		if !ok {
			return exprMismatch(a, b)
		}
		if na.Op != nb.Op {
			return fmt.Errorf("unary op %v != %v", na.Op, nb.Op)
		}
		return exprEqual(na.X, nb.X)
	case *BinaryExpr:
		nb, ok := b.(*BinaryExpr)
		if !ok {
			return exprMismatch(a, b)
		}
		if na.Op != nb.Op {
			return fmt.Errorf("binary op %v != %v", na.Op, nb.Op)
		}
		if err := exprEqual(na.X, nb.X); err != nil {
			return err
		}
		return exprEqual(na.Y, nb.Y)
	}
	return fmt.Errorf("unsupported expression %T", a)
}

func exprMismatch(a, b Expr) error {
	return fmt.Errorf("expression %T != %T", a, b)
}
