package parc

import (
	"math/rand"
	"strings"
	"testing"
	"testing/quick"
)

// genExpr builds a random expression tree over the variables a, b, c.
func genExpr(rng *rand.Rand, depth int) Expr {
	if depth <= 0 || rng.Intn(3) == 0 {
		switch rng.Intn(4) {
		case 0:
			return NewIntLit(int64(rng.Intn(100)))
		case 1:
			return &FloatLit{Value: float64(rng.Intn(100))/4 + 0.5}
		case 2:
			return NewVarRef([]string{"a", "b", "c"}[rng.Intn(3)])
		default:
			return &CallExpr{Name: "min", Args: []Expr{
				genExpr(rng, 0), genExpr(rng, 0),
			}}
		}
	}
	ops := []TokKind{TokPlus, TokMinus, TokStar, TokSlash, TokPercent,
		TokEq, TokNe, TokLt, TokLe, TokGt, TokGe, TokAndAnd, TokOrOr}
	if rng.Intn(4) == 0 {
		op := TokMinus
		if rng.Intn(2) == 0 {
			op = TokNot
		}
		return &UnaryExpr{Op: op, X: genExpr(rng, depth-1)}
	}
	return NewBinary(ops[rng.Intn(len(ops))], genExpr(rng, depth-1), genExpr(rng, depth-1))
}

// TestExprPrintParseRoundTrip: printing an expression and re-parsing it
// yields a structurally identical print — the printer emits exactly the
// parentheses precedence requires.
func TestExprPrintParseRoundTrip(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		e := genExpr(rng, 4)
		printed := ExprString(e)
		src := "func main() { var a int; var b int; var c int; var x int; x = " + printed + "; }"
		prog, err := Parse(src)
		if err != nil {
			t.Logf("printed expression does not parse: %v\n%s", err, printed)
			return false
		}
		var rhs Expr
		WalkProgram(prog, func(s Stmt) bool {
			if a, ok := s.(*AssignStmt); ok && a.LHS.Name == "x" {
				rhs = a.RHS
			}
			return true
		})
		if got := ExprString(rhs); got != printed {
			t.Logf("round trip changed expression:\n  before: %s\n  after:  %s", printed, got)
			return false
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}

// Tricky statement corpus: print must be stable (idempotent) and re-parse.
var printerCorpus = []string{
	`
const N = 4;
shared int a[N];
func main() {
    check_out_x a[0:N - 1];
    a[0] = -1;
    a[1] = -(1 + 2);
    a[2] = 3 % 2 * 4;
    a[3] = (3 + 1) % 2;
    check_in a[0:N - 1];
}
`,
	`
shared float m[2][2];
func main() {
    var i int;
    while i < 2 {
        for j = 0 to 1 {
            m[i][j] = float(i * 2 + j);
        }
        i += 1;
    }
    print("done %d", i);
}
`,
	`
func f(x int) int {
    if x <= 0 {
        return 0;
    } else if x == 1 {
        return 1;
    } else {
        return f(x - 1) + f(x - 2);
    }
}
func main() {
    var r int = f(10);
    lock(r % 4);
    unlock(r % 4);
    barrier;
}
`,
	`
shared float v[16];
func main() {
    prefetch_s v[0:15];
    prefetch_x v[3];
    var s float = 0.0;
    for i = 15 to 0 step -1 {
        s += v[i] / 2.0;
    }
}
`,
}

func TestPrintIdempotentOnCorpus(t *testing.T) {
	for i, src := range printerCorpus {
		p1, err := Parse(src)
		if err != nil {
			t.Fatalf("corpus %d: %v", i, err)
		}
		out1 := Print(p1)
		p2, err := Parse(out1)
		if err != nil {
			t.Fatalf("corpus %d: re-parse: %v\n%s", i, err, out1)
		}
		out2 := Print(p2)
		if out1 != out2 {
			t.Errorf("corpus %d: print not idempotent:\n%s\n---\n%s", i, out1, out2)
		}
	}
}

func TestBlockCommentsLex(t *testing.T) {
	src := `
func main() {
    /* block comment */
    barrier; /* trailing */
    /*** Data Race on X ***/
    /* multi
       line */
    barrier;
}
`
	prog, err := Parse(src)
	if err != nil {
		t.Fatal(err)
	}
	count := 0
	WalkProgram(prog, func(s Stmt) bool {
		if _, ok := s.(*BarrierStmt); ok {
			count++
		}
		return true
	})
	if count != 2 {
		t.Errorf("barrier count = %d", count)
	}
	// Unterminated block comments consume to EOF without panicking.
	if _, err := Parse("func main() { } /* unterminated"); err != nil {
		t.Errorf("unterminated trailing comment: %v", err)
	}
}

func TestCommentStmtPrints(t *testing.T) {
	prog := MustParse(`func main() { barrier; }`)
	cm := &CommentStmt{Text: "Data Race on C[i][j]"}
	cm.SetID(prog.NewID())
	prog.Funcs[0].Body.Stmts = append([]Stmt{cm}, prog.Funcs[0].Body.Stmts...)
	out := Print(prog)
	if !strings.Contains(out, "/*** Data Race on C[i][j] ***/") {
		t.Errorf("comment not printed:\n%s", out)
	}
	if _, err := Parse(out); err != nil {
		t.Errorf("printed comment does not re-parse: %v", err)
	}
}

func TestRangeRefString(t *testing.T) {
	prog := MustParse(`
shared float A[4][4];
func main() {
    check_out_s A[1][0:3];
}
`)
	var c *CICOStmt
	WalkProgram(prog, func(s Stmt) bool {
		if n, ok := s.(*CICOStmt); ok {
			c = n
		}
		return true
	})
	if got := RangeRefString(c.Target); got != "A[1][0:3]" {
		t.Errorf("RangeRefString = %q", got)
	}
}

func TestAnnKindStrings(t *testing.T) {
	cases := map[AnnKind]string{
		AnnCheckOutX: "check_out_x",
		AnnCheckOutS: "check_out_s",
		AnnCheckIn:   "check_in",
		AnnPrefetchX: "prefetch_x",
		AnnPrefetchS: "prefetch_s",
	}
	for k, want := range cases {
		if k.String() != want {
			t.Errorf("%v != %s", k, want)
		}
		if k.IsCheckOut() == (k == AnnCheckIn) {
			t.Errorf("%v IsCheckOut wrong", k)
		}
	}
}
