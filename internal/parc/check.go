package parc

import "fmt"

// Builtins maps builtin function names to their arities. float/int are
// conversions; rnd returns a deterministic per-processor pseudo-random float
// in [0,1); rndseed reseeds the caller's generator.
var Builtins = map[string]int{
	"pid":     0,
	"nprocs":  0,
	"min":     2,
	"max":     2,
	"abs":     1,
	"sqrt":    1,
	"sin":     1,
	"cos":     1,
	"floor":   1,
	"float":   1,
	"int":     1,
	"rnd":     0,
	"rndseed": 1,
}

// BuiltinByName maps builtin names to their identifiers; the interpreter
// dispatches on the identifier rather than the name.
var BuiltinByName = map[string]BuiltinID{
	"pid":     BuiltinPid,
	"nprocs":  BuiltinNprocs,
	"min":     BuiltinMin,
	"max":     BuiltinMax,
	"abs":     BuiltinAbs,
	"sqrt":    BuiltinSqrt,
	"sin":     BuiltinSin,
	"cos":     BuiltinCos,
	"floor":   BuiltinFloor,
	"float":   BuiltinFloat,
	"int":     BuiltinInt,
	"rnd":     BuiltinRnd,
	"rndseed": BuiltinRndseed,
}

// Check resolves and validates a parsed program: it evaluates constants and
// array dimensions, verifies name resolution and call arities, requires a
// parameterless main, and builds the Program's lookup maps (ConstVal,
// SharedMap, FuncMap, Stmts).
func Check(p *Program) error {
	c := &checker{prog: p}
	return c.run()
}

type checker struct {
	prog *Program
}

func (c *checker) errorf(pos Pos, format string, args ...any) error {
	return &Error{Pos: pos, Msg: fmt.Sprintf(format, args...)}
}

func (c *checker) run() error {
	p := c.prog
	p.ConstVal = make(map[string]int64)
	p.SharedMap = make(map[string]*SharedDecl)
	p.FuncMap = make(map[string]*FuncDecl)
	p.Stmts = make(map[int]Stmt)

	for _, d := range p.Consts {
		if _, dup := p.ConstVal[d.Name]; dup {
			return c.errorf(d.Pos, "constant %q redeclared", d.Name)
		}
		v, err := evalConstExpr(d.Expr, p.ConstVal)
		if err != nil {
			return err
		}
		d.Value = v
		p.ConstVal[d.Name] = v
	}

	for _, d := range p.Shareds {
		if _, dup := p.ConstVal[d.Name]; dup {
			return c.errorf(d.Pos, "shared %q collides with a constant", d.Name)
		}
		if _, dup := p.SharedMap[d.Name]; dup {
			return c.errorf(d.Pos, "shared %q redeclared", d.Name)
		}
		d.Size = 1
		d.DimSizes = nil
		for _, dim := range d.Dims {
			n, err := evalConstExpr(dim, p.ConstVal)
			if err != nil {
				return err
			}
			if n <= 0 {
				return c.errorf(d.Pos, "shared %q has non-positive dimension %d", d.Name, n)
			}
			d.DimSizes = append(d.DimSizes, int(n))
			d.Size *= int(n)
		}
		p.SharedMap[d.Name] = d
	}

	for _, f := range p.Funcs {
		if _, dup := p.FuncMap[f.Name]; dup {
			return c.errorf(f.Pos, "function %q redeclared", f.Name)
		}
		if _, isBuiltin := Builtins[f.Name]; isBuiltin {
			return c.errorf(f.Pos, "function %q shadows a builtin", f.Name)
		}
		p.FuncMap[f.Name] = f
	}

	main, ok := p.FuncMap["main"]
	if !ok {
		// A whole-program error has no statement to point at; anchor it at
		// the top of the file so it still prints as file:line:col.
		return c.errorf(Pos{File: p.File, Line: 1, Col: 1}, "program has no main function")
	}
	if len(main.Params) != 0 {
		return c.errorf(main.Pos, "main must take no parameters")
	}

	for _, f := range p.Funcs {
		if err := c.checkFunc(f); err != nil {
			return err
		}
	}
	return nil
}

// Name scoping: ParC scoping is function-wide for simplicity (as in the
// paper's pseudocode); redeclaring a name in the same function is an error.
// The for-loop variable is implicitly declared as a private int if not
// already declared. checkFunc assigns every name a frame slot as it goes
// (parameters first, then locals and loop variables in source order) and
// records the assignment in f.Bindings.
func (c *checker) checkFunc(f *FuncDecl) error {
	f.NumScalars, f.NumArrays = 0, 0
	f.Bindings = make(map[string]Binding)
	for _, p := range f.Params {
		if _, dup := f.Bindings[p.Name]; dup {
			return c.errorf(f.Pos, "parameter %q redeclared", p.Name)
		}
		f.Bindings[p.Name] = Binding{Slot: f.NumScalars}
		f.NumScalars++
	}
	return c.checkStmt(f.Body, f)
}

func (c *checker) record(s Stmt) { c.prog.Stmts[s.ID()] = s }

func (c *checker) checkStmt(s Stmt, fn *FuncDecl) error {
	if s == nil {
		return nil
	}
	c.record(s)
	switch n := s.(type) {
	case *Block:
		for _, child := range n.Stmts {
			if err := c.checkStmt(child, fn); err != nil {
				return err
			}
		}
	case *VarDeclStmt:
		if c.nameKind(n.Name, fn) != nameUnknown {
			return c.errorf(n.Position(), "variable %q redeclares an existing name", n.Name)
		}
		n.DimSizes = nil
		for _, dim := range n.Dims {
			v, err := evalConstExpr(dim, c.prog.ConstVal)
			if err != nil {
				return err
			}
			if v <= 0 {
				return c.errorf(n.Position(), "variable %q has non-positive dimension %d", n.Name, v)
			}
			n.DimSizes = append(n.DimSizes, int(v))
		}
		if n.Init != nil {
			if err := c.checkExpr(n.Init, fn); err != nil {
				return err
			}
		}
		if len(n.DimSizes) > 0 {
			n.Slot = fn.NumArrays + 1
			fn.Bindings[n.Name] = Binding{Decl: n, Slot: fn.NumArrays, Array: true}
			fn.NumArrays++
		} else {
			n.Slot = fn.NumScalars + 1
			fn.Bindings[n.Name] = Binding{Decl: n, Slot: fn.NumScalars}
			fn.NumScalars++
		}
	case *AssignStmt:
		if err := c.checkLValue(n.LHS, fn); err != nil {
			return err
		}
		if err := c.checkExpr(n.RHS, fn); err != nil {
			return err
		}
	case *IfStmt:
		if err := c.checkExpr(n.Cond, fn); err != nil {
			return err
		}
		if err := c.checkStmt(n.Then, fn); err != nil {
			return err
		}
		if err := c.checkStmt(n.Else, fn); err != nil {
			return err
		}
	case *WhileStmt:
		if err := c.checkExpr(n.Cond, fn); err != nil {
			return err
		}
		if err := c.checkStmt(n.Body, fn); err != nil {
			return err
		}
	case *ForStmt:
		if err := c.checkExpr(n.From, fn); err != nil {
			return err
		}
		if err := c.checkExpr(n.To, fn); err != nil {
			return err
		}
		if n.Step != nil {
			if err := c.checkExpr(n.Step, fn); err != nil {
				return err
			}
		}
		switch k := c.nameKind(n.Var, fn); k {
		case nameUnknown:
			// Implicit private int loop variable.
			n.VarSlot = fn.NumScalars + 1
			fn.Bindings[n.Var] = Binding{Slot: fn.NumScalars}
			fn.NumScalars++
		case nameLocal, nameParam:
			if b := fn.Bindings[n.Var]; b.Array {
				// The name is a private array; the loop counter is a
				// distinct hidden scalar of the same name. It cannot be
				// observed elsewhere: any bare reference to the name is
				// rejected as an unsubscripted array.
				n.VarSlot = fn.NumScalars + 1
				fn.NumScalars++
			} else {
				n.VarSlot = b.Slot + 1
			}
		default:
			return c.errorf(n.Position(), "loop variable %q must be private", n.Var)
		}
		if err := c.checkStmt(n.Body, fn); err != nil {
			return err
		}
	case *BarrierStmt, *CommentStmt:
		// nothing to check
	case *LockStmt:
		return c.checkExpr(n.LockID, fn)
	case *UnlockStmt:
		return c.checkExpr(n.LockID, fn)
	case *ReturnStmt:
		if n.Value != nil {
			return c.checkExpr(n.Value, fn)
		}
	case *ExprStmt:
		return c.checkExpr(n.Call, fn)
	case *PrintStmt:
		for _, a := range n.Args {
			if err := c.checkExpr(a, fn); err != nil {
				return err
			}
		}
	case *CICOStmt:
		return c.checkRangeRef(n.Target, fn)
	default:
		return c.errorf(s.Position(), "unknown statement type %T", s)
	}
	return nil
}

type nameKindT int

const (
	nameUnknown nameKindT = iota
	nameConst
	nameShared
	nameLocal
	nameParam
)

func (c *checker) nameKind(name string, fn *FuncDecl) nameKindT {
	if b, ok := fn.Bindings[name]; ok {
		if b.Decl == nil {
			return nameParam
		}
		return nameLocal
	}
	if _, ok := c.prog.ConstVal[name]; ok {
		return nameConst
	}
	if _, ok := c.prog.SharedMap[name]; ok {
		return nameShared
	}
	return nameUnknown
}

func (c *checker) checkLValue(lv *LValue, fn *FuncDecl) error {
	kind := c.nameKind(lv.Name, fn)
	switch kind {
	case nameUnknown:
		return c.errorf(lv.Pos, "undefined variable %q", lv.Name)
	case nameConst:
		return c.errorf(lv.Pos, "cannot assign to constant %q", lv.Name)
	}
	if err := c.checkIndexArity(lv.Pos, lv.Name, len(lv.Indices), fn); err != nil {
		return err
	}
	for _, ix := range lv.Indices {
		if err := c.checkExpr(ix, fn); err != nil {
			return err
		}
	}
	switch kind {
	case nameLocal, nameParam:
		b := fn.Bindings[lv.Name]
		if b.Array {
			lv.Ref = RefArray
		} else {
			lv.Ref = RefLocal
		}
		lv.Slot = b.Slot
	case nameShared:
		lv.Ref = RefShared
		lv.Shared = c.prog.SharedMap[lv.Name]
	}
	return nil
}

// checkIndexArity verifies the number of indices matches the declared rank.
func (c *checker) checkIndexArity(pos Pos, name string, n int, fn *FuncDecl) error {
	var rank int
	if b, ok := fn.Bindings[name]; ok && b.Decl != nil {
		rank = len(b.Decl.DimSizes)
	} else if d, ok := c.prog.SharedMap[name]; ok {
		rank = len(d.DimSizes)
	} else {
		rank = 0 // params and loop vars are scalars
	}
	if n != rank {
		return c.errorf(pos, "%q has rank %d but is indexed with %d subscript(s)", name, rank, n)
	}
	return nil
}

func (c *checker) checkRangeRef(r *RangeRef, fn *FuncDecl) error {
	d, ok := c.prog.SharedMap[r.Name]
	if !ok {
		return c.errorf(r.Pos, "CICO annotation target %q is not a shared variable", r.Name)
	}
	if len(r.Indices) != len(d.DimSizes) {
		return c.errorf(r.Pos, "%q has rank %d but annotation gives %d subscript(s)",
			r.Name, len(d.DimSizes), len(r.Indices))
	}
	for _, ix := range r.Indices {
		if err := c.checkExpr(ix.Lo, fn); err != nil {
			return err
		}
		if ix.Hi != nil {
			if err := c.checkExpr(ix.Hi, fn); err != nil {
				return err
			}
		}
	}
	r.Shared = d
	return nil
}

func (c *checker) checkExpr(e Expr, fn *FuncDecl) error {
	switch n := e.(type) {
	case *IntLit, *FloatLit:
		return nil
	case *VarRef:
		kind := c.nameKind(n.Name, fn)
		if kind == nameUnknown {
			return c.errorf(n.Position(), "undefined name %q", n.Name)
		}
		if kind == nameShared && len(c.prog.SharedMap[n.Name].DimSizes) != 0 {
			return c.errorf(n.Position(), "shared array %q used without subscripts", n.Name)
		}
		if kind == nameLocal && fn.Bindings[n.Name].Array {
			return c.errorf(n.Position(), "array %q used without subscripts", n.Name)
		}
		switch kind {
		case nameLocal, nameParam:
			n.Ref = RefLocal
			n.Slot = fn.Bindings[n.Name].Slot
		case nameConst:
			n.Ref = RefConst
			n.Const = c.prog.ConstVal[n.Name]
		case nameShared:
			n.Ref = RefShared
			n.Shared = c.prog.SharedMap[n.Name]
		}
		return nil
	case *IndexExpr:
		kind := c.nameKind(n.Name, fn)
		if kind == nameUnknown {
			return c.errorf(n.Position(), "undefined name %q", n.Name)
		}
		if kind == nameConst || kind == nameParam {
			return c.errorf(n.Position(), "%q is not an array", n.Name)
		}
		if err := c.checkIndexArity(n.Position(), n.Name, len(n.Indices), fn); err != nil {
			return err
		}
		for _, ix := range n.Indices {
			if err := c.checkExpr(ix, fn); err != nil {
				return err
			}
		}
		if kind == nameLocal {
			// The arity check guarantees a subscripted local is an array.
			n.Ref = RefArray
			n.Slot = fn.Bindings[n.Name].Slot
		} else {
			n.Ref = RefShared
			n.Shared = c.prog.SharedMap[n.Name]
		}
		return nil
	case *CallExpr:
		if arity, ok := Builtins[n.Name]; ok {
			if len(n.Args) != arity {
				return c.errorf(n.Position(), "builtin %q takes %d argument(s), got %d", n.Name, arity, len(n.Args))
			}
			n.Builtin = BuiltinByName[n.Name]
			n.Fn = nil
		} else if f, ok := c.prog.FuncMap[n.Name]; ok {
			if len(n.Args) != len(f.Params) {
				return c.errorf(n.Position(), "function %q takes %d argument(s), got %d", n.Name, len(f.Params), len(n.Args))
			}
			n.Builtin = BuiltinNone
			n.Fn = f
		} else {
			return c.errorf(n.Position(), "undefined function %q", n.Name)
		}
		for _, a := range n.Args {
			if err := c.checkExpr(a, fn); err != nil {
				return err
			}
		}
		return nil
	case *UnaryExpr:
		return c.checkExpr(n.X, fn)
	case *BinaryExpr:
		if err := c.checkExpr(n.X, fn); err != nil {
			return err
		}
		return c.checkExpr(n.Y, fn)
	}
	return c.errorf(e.Position(), "unknown expression type %T", e)
}

// evalConstExpr evaluates an integer constant expression using consts for
// name lookup.
func evalConstExpr(e Expr, consts map[string]int64) (int64, error) {
	switch n := e.(type) {
	case *IntLit:
		return n.Value, nil
	case *VarRef:
		if v, ok := consts[n.Name]; ok {
			return v, nil
		}
		return 0, &Error{Pos: n.Position(), Msg: fmt.Sprintf("%q is not a constant", n.Name)}
	case *UnaryExpr:
		if n.Op != TokMinus {
			return 0, &Error{Pos: n.Position(), Msg: "non-constant unary operator"}
		}
		v, err := evalConstExpr(n.X, consts)
		if err != nil {
			return 0, err
		}
		return -v, nil
	case *BinaryExpr:
		x, err := evalConstExpr(n.X, consts)
		if err != nil {
			return 0, err
		}
		y, err := evalConstExpr(n.Y, consts)
		if err != nil {
			return 0, err
		}
		switch n.Op {
		case TokPlus:
			return x + y, nil
		case TokMinus:
			return x - y, nil
		case TokStar:
			return x * y, nil
		case TokSlash:
			if y == 0 {
				return 0, &Error{Pos: n.Position(), Msg: "division by zero in constant expression"}
			}
			return x / y, nil
		case TokPercent:
			if y == 0 {
				return 0, &Error{Pos: n.Position(), Msg: "modulo by zero in constant expression"}
			}
			return x % y, nil
		}
		return 0, &Error{Pos: n.Position(), Msg: fmt.Sprintf("operator %s not allowed in constant expression", n.Op)}
	}
	return 0, &Error{Pos: e.Position(), Msg: "expression is not constant"}
}
