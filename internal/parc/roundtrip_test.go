package parc

import (
	"strings"
	"testing"
)

// TestQuoteRoundTrip: Quote must emit literals the lexer accepts and that
// decode back to the original bytes — including bytes (like carriage return)
// that Go's %q would escape with sequences ParC does not understand.
func TestQuoteRoundTrip(t *testing.T) {
	cases := []string{
		"",
		"plain",
		"pct %d %f %g %%",
		"tab\there",
		"newline\nhere",
		"backslash \\ quote \"",
		"carriage\rreturn",
		"bell\x07high\x80bytes",
		"mixed \t\r\n\\\" end",
	}
	for _, want := range cases {
		src := "func main() {\n    print(" + Quote(want) + ");\n}\n"
		prog, err := Parse(src)
		if err != nil {
			t.Fatalf("Quote(%q) = %s does not re-lex: %v", want, Quote(want), err)
		}
		ps, ok := prog.Funcs[0].Body.Stmts[0].(*PrintStmt)
		if !ok {
			t.Fatalf("Quote(%q): parsed to %T", want, prog.Funcs[0].Body.Stmts[0])
		}
		if ps.Format != want {
			t.Errorf("Quote round trip: got %q, want %q", ps.Format, want)
		}
	}
}

// TestPrintReparseRawControlBytes is the regression test for the printer's
// old use of %q: a raw carriage return is a legal byte inside a ParC string
// literal (and label), but %q emitted it as \r, which the lexer rejects, so
// parse -> Print -> parse failed on valid programs.
func TestPrintReparseRawControlBytes(t *testing.T) {
	src := "shared float D[8] label \"da\rta\";\n\nfunc main() {\n    print(\"x\ry\");\n    barrier;\n}\n"
	prog, err := Parse(src)
	if err != nil {
		t.Fatalf("parse: %v", err)
	}
	printed := Print(prog)
	prog2, err := Parse(printed)
	if err != nil {
		t.Fatalf("printed program does not re-parse: %v\n%s", err, printed)
	}
	if err := ASTEqual(prog, prog2); err != nil {
		t.Fatalf("round trip not equal: %v\n%s", err, printed)
	}
}

// TestASTEqualNormalizesNegativeLiterals: the parser produces
// UnaryExpr(-, Lit) while rewriters may build signed literals directly; the
// two must compare equal, and genuinely different values must not.
func TestASTEqualNormalizesNegativeLiterals(t *testing.T) {
	parsed, err := Parse("func main() {\n    var x int = -5;\n}\n")
	if err != nil {
		t.Fatal(err)
	}
	built, err := Parse("func main() {\n    var x int = 0;\n}\n")
	if err != nil {
		t.Fatal(err)
	}
	built.Funcs[0].Body.Stmts[0].(*VarDeclStmt).Init = NewIntLit(-5)
	if err := ASTEqual(parsed, built); err != nil {
		t.Errorf("UnaryExpr(-,5) should equal IntLit(-5): %v", err)
	}
	built.Funcs[0].Body.Stmts[0].(*VarDeclStmt).Init = NewIntLit(5)
	if err := ASTEqual(parsed, built); err == nil {
		t.Error("-5 compared equal to 5")
	}
}

// TestASTEqualIgnoresComments: comment statements are presentation only.
func TestASTEqualIgnoresComments(t *testing.T) {
	a, err := Parse("func main() {\n    barrier;\n}\n")
	if err != nil {
		t.Fatal(err)
	}
	b, err := Parse("func main() {\n    /*** Data Race on x ***/\n    barrier;\n}\n")
	if err != nil {
		t.Fatal(err)
	}
	if err := ASTEqual(a, b); err != nil {
		t.Errorf("comments should be ignored: %v", err)
	}
}

// TestPrintReparseEqualExamples pins the round trip on a program using every
// statement and expression form, including precedence corner cases.
func TestPrintReparseEqualExamples(t *testing.T) {
	src := `const N = 16;
const M = N * 2 - (3 + 1);

shared float A[N][4] label "A";
shared int total label "t 1";

func helper(a float, b float) float {
    if a > b && !(a < 1.0) || b != 0.0 {
        return a * (b + 1.0);
    }
    return -a / 2.0;
}

func main() {
    var per int = N / nprocs();
    var lo int = pid() * per;
    var acc float = 0.0;
    var buf float[4];
    for i = lo to lo + per - 1 step 2 {
        buf[i % 4] = float(i) * -2.5;
        A[i][0] = helper(A[i][1], buf[i % 4]) - (1.0 - 2.0 - 3.0);
        acc += A[i][0] * (2.0 / (1.0 + 1.0));
    }
    barrier;
    lock(1);
    total += int(acc) % 7 + -3;
    unlock(1);
    barrier;
    check_out_s A[0][0:3];
    while per > 0 {
        per -= 1;
    }
    check_in A[0][0:3];
    print("done %d %g\n", pid(), acc);
}
`
	prog, err := Parse(src)
	if err != nil {
		t.Fatal(err)
	}
	printed := Print(prog)
	prog2, err := Parse(printed)
	if err != nil {
		t.Fatalf("printed program does not re-parse: %v\n%s", err, printed)
	}
	if err := ASTEqual(prog, prog2); err != nil {
		t.Fatalf("round trip not equal: %v\n%s", err, printed)
	}
	// Printing is idempotent once through the printer.
	if again := Print(prog2); again != printed {
		t.Fatalf("print not idempotent:\n--- first\n%s\n--- second\n%s", printed, again)
	}
	if !strings.Contains(printed, `label "t 1"`) {
		t.Errorf("label lost: %s", printed)
	}
}
