package parc

import (
	"strings"
	"testing"
)

const miniProgram = `
const N = 16;
const P = 4;

shared float A[N][N] label "A";
shared float B[N][N] label "B";
shared int done;

func work(base int) float {
    var sum float = 0.0;
    for i = 0 to N - 1 {
        sum += A[base][i];
    }
    return sum;
}

func main() {
    var t float;
    if pid() == 0 {
        for i = 0 to N - 1 {
            for j = 0 to N - 1 step 2 {
                A[i][j] = float(i * j);
            }
        }
        done = 1;
    }
    barrier;
    check_out_s A[pid()][0:N-1];
    t = work(pid());
    check_in A[pid()][0:N-1];
    lock(0);
    B[0][0] += t;
    unlock(0);
    barrier;
    while done > 1 {
        done -= 1;
    }
    print("t=%f", t);
}
`

func TestParseMiniProgram(t *testing.T) {
	prog, err := Parse(miniProgram)
	if err != nil {
		t.Fatal(err)
	}
	if len(prog.Consts) != 2 || len(prog.Shareds) != 3 || len(prog.Funcs) != 2 {
		t.Fatalf("decl counts: %d consts, %d shareds, %d funcs",
			len(prog.Consts), len(prog.Shareds), len(prog.Funcs))
	}
	if prog.ConstVal["N"] != 16 || prog.ConstVal["P"] != 4 {
		t.Errorf("const values: %v", prog.ConstVal)
	}
	a := prog.SharedMap["A"]
	if a == nil || len(a.DimSizes) != 2 || a.DimSizes[0] != 16 || a.Size != 256 {
		t.Errorf("shared A resolved badly: %+v", a)
	}
	if a.Label != "A" {
		t.Errorf("label %q", a.Label)
	}
	d := prog.SharedMap["done"]
	if d == nil || len(d.DimSizes) != 0 || d.Size != 1 {
		t.Errorf("shared scalar done resolved badly: %+v", d)
	}
}

func TestConstsReferenceEarlierConsts(t *testing.T) {
	prog, err := Parse(`
const N = 8;
const N2 = N * N;
const HALF = N2 / 2;
func main() { }
`)
	if err != nil {
		t.Fatal(err)
	}
	if prog.ConstVal["N2"] != 64 || prog.ConstVal["HALF"] != 32 {
		t.Errorf("const values: %v", prog.ConstVal)
	}
}

func TestStatementIDsUniqueAndDense(t *testing.T) {
	prog := MustParse(miniProgram)
	seen := make(map[int]bool)
	WalkProgram(prog, func(s Stmt) bool {
		if seen[s.ID()] {
			t.Errorf("duplicate statement ID %d", s.ID())
		}
		seen[s.ID()] = true
		if s.ID() < 0 || s.ID() >= prog.NumStmts() {
			t.Errorf("statement ID %d out of range [0,%d)", s.ID(), prog.NumStmts())
		}
		return true
	})
	if len(seen) == 0 {
		t.Fatal("walk visited no statements")
	}
	for id := range seen {
		if prog.Stmts[id] == nil {
			t.Errorf("Stmts map missing ID %d", id)
		}
	}
}

func TestParsePrintRoundTrip(t *testing.T) {
	prog1 := MustParse(miniProgram)
	out1 := Print(prog1)
	prog2, err := Parse(out1)
	if err != nil {
		t.Fatalf("re-parse of printed output failed: %v\n%s", err, out1)
	}
	out2 := Print(prog2)
	if out1 != out2 {
		t.Errorf("print not idempotent:\n--- first ---\n%s\n--- second ---\n%s", out1, out2)
	}
}

func TestParseElseIfChain(t *testing.T) {
	src := `
func main() {
    var x int = 3;
    if x == 1 {
        x = 10;
    } else if x == 2 {
        x = 20;
    } else {
        x = 30;
    }
}
`
	prog, err := Parse(src)
	if err != nil {
		t.Fatal(err)
	}
	out := Print(prog)
	if !strings.Contains(out, "} else if x == 2 {") {
		t.Errorf("else-if not printed inline:\n%s", out)
	}
	if _, err := Parse(out); err != nil {
		t.Errorf("printed else-if does not re-parse: %v\n%s", err, out)
	}
}

func TestParseCICOStatements(t *testing.T) {
	src := `
const N = 8;
shared float A[N][N];
func main() {
    check_out_x A[0][0:N-1];
    prefetch_s A[1][3];
    check_in A[0][0:N-1];
}
`
	prog, err := Parse(src)
	if err != nil {
		t.Fatal(err)
	}
	var cicos []*CICOStmt
	WalkProgram(prog, func(s Stmt) bool {
		if c, ok := s.(*CICOStmt); ok {
			cicos = append(cicos, c)
		}
		return true
	})
	if len(cicos) != 3 {
		t.Fatalf("got %d CICO statements", len(cicos))
	}
	if cicos[0].Kind != AnnCheckOutX || cicos[1].Kind != AnnPrefetchS || cicos[2].Kind != AnnCheckIn {
		t.Errorf("kinds: %v %v %v", cicos[0].Kind, cicos[1].Kind, cicos[2].Kind)
	}
	if cicos[0].Target.Indices[1].Hi == nil {
		t.Error("range hi missing on check_out_x")
	}
	if cicos[1].Target.Indices[1].Hi != nil {
		t.Error("single index parsed as range")
	}
}

func TestOperatorPrecedence(t *testing.T) {
	prog := MustParse(`func main() { var x int; x = 1 + 2 * 3 - 4 / 2; }`)
	asn := findFirstAssign(prog)
	if got := ExprString(asn.RHS); got != "1 + 2 * 3 - 4 / 2" {
		t.Errorf("precedence flattened wrong: %q", got)
	}
}

func TestParenthesesPreservedWhenNeeded(t *testing.T) {
	prog := MustParse(`func main() { var x int; x = (1 + 2) * 3; }`)
	asn := findFirstAssign(prog)
	if got := ExprString(asn.RHS); got != "(1 + 2) * 3" {
		t.Errorf("needed parens dropped: %q", got)
	}
}

func findFirstAssign(p *Program) *AssignStmt {
	var out *AssignStmt
	WalkProgram(p, func(s Stmt) bool {
		if a, ok := s.(*AssignStmt); ok && out == nil {
			out = a
		}
		return out == nil
	})
	return out
}

func TestParseErrors(t *testing.T) {
	cases := []struct {
		name string
		src  string
	}{
		{"no main", `func helper() { }`},
		{"main with params", `func main(x int) { }`},
		{"undefined var", `func main() { x = 1; }`},
		{"assign to const", `const N = 1; func main() { N = 2; }`},
		{"bad rank", `shared float A[4][4]; func main() { A[0] = 1.0; }`},
		{"scalar indexed", `func main() { var x int; x[0] = 1; }`},
		{"undefined func", `func main() { foo(); }`},
		{"builtin arity", `func main() { var x int; x = min(1); }`},
		{"func arity", `func f(a int) { } func main() { f(1, 2); }`},
		{"redeclared local", `func main() { var x int; var x float; }`},
		{"redeclared const", `const N = 1; const N = 2; func main() { }`},
		{"cico non-shared", `func main() { var x int; check_in x; }`},
		{"cico rank", `shared float A[4][4]; func main() { check_in A[0]; }`},
		{"shadow builtin", `func min(a int, b int) int { return a; } func main() { }`},
		{"array initializer", `func main() { var a int[4] = 3; }`},
		{"zero dim", `shared float A[0]; func main() { }`},
		{"missing semi", `func main() { barrier }`},
		{"stray token", `func main() { } ;`},
		{"shared array without subscript", `shared float A[4]; func main() { var x float; x = A; }`},
		{"const using non-const", `shared int s; const N = s + 1; func main() { }`},
	}
	for _, c := range cases {
		if _, err := Parse(c.src); err == nil {
			t.Errorf("%s: expected parse/check error", c.name)
		}
	}
}

func TestLoopVarImplicitlyDeclared(t *testing.T) {
	if _, err := Parse(`func main() { for i = 0 to 3 { } for i = 0 to 5 { } }`); err != nil {
		t.Fatalf("reusing loop variable should be fine: %v", err)
	}
}

func TestNegativeStepLoopParses(t *testing.T) {
	prog := MustParse(`func main() { for i = 10 to 0 step -2 { } }`)
	var fs *ForStmt
	WalkProgram(prog, func(s Stmt) bool {
		if f, ok := s.(*ForStmt); ok {
			fs = f
		}
		return true
	})
	if fs == nil || fs.Step == nil {
		t.Fatal("for statement or step missing")
	}
	if got := ExprString(fs.Step); got != "-2" {
		t.Errorf("step printed as %q", got)
	}
}
