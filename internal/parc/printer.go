package parc

import (
	"fmt"
	"strings"
)

// Print unparses a program back to ParC source text. Cachier emits annotated
// programs through this printer; the output re-parses to an equivalent
// program (modulo statement IDs and positions).
func Print(p *Program) string {
	pr := &printer{}
	for _, d := range p.Consts {
		pr.printf("const %s = %s;\n", d.Name, ExprString(d.Expr))
	}
	if len(p.Consts) > 0 {
		pr.nl()
	}
	for _, d := range p.Shareds {
		pr.printf("shared %s %s", d.Base, d.Name)
		for _, dim := range d.Dims {
			pr.printf("[%s]", ExprString(dim))
		}
		if d.Label != "" {
			pr.printf(" label %s", Quote(d.Label))
		}
		pr.printf(";\n")
	}
	if len(p.Shareds) > 0 {
		pr.nl()
	}
	for i, f := range p.Funcs {
		if i > 0 {
			pr.nl()
		}
		pr.printFunc(f)
	}
	return pr.sb.String()
}

type printer struct {
	sb     strings.Builder
	indent int
}

func (pr *printer) printf(format string, args ...any) {
	fmt.Fprintf(&pr.sb, format, args...)
}

func (pr *printer) nl() { pr.sb.WriteByte('\n') }

func (pr *printer) line(format string, args ...any) {
	pr.sb.WriteString(strings.Repeat("    ", pr.indent))
	pr.printf(format, args...)
	pr.nl()
}

func (pr *printer) printFunc(f *FuncDecl) {
	var params []string
	for _, p := range f.Params {
		params = append(params, fmt.Sprintf("%s %s", p.Name, p.Base))
	}
	sig := fmt.Sprintf("func %s(%s)", f.Name, strings.Join(params, ", "))
	if f.Result != nil {
		sig += " " + f.Result.String()
	}
	pr.line("%s {", sig)
	pr.indent++
	for _, s := range f.Body.Stmts {
		pr.printStmt(s)
	}
	pr.indent--
	pr.line("}")
}

func (pr *printer) printStmt(s Stmt) {
	switch n := s.(type) {
	case *Block:
		pr.line("{")
		pr.indent++
		for _, c := range n.Stmts {
			pr.printStmt(c)
		}
		pr.indent--
		pr.line("}")
	case *VarDeclStmt:
		dims := ""
		for _, d := range n.Dims {
			dims += fmt.Sprintf("[%s]", ExprString(d))
		}
		if n.Init != nil {
			pr.line("var %s %s%s = %s;", n.Name, n.Base, dims, ExprString(n.Init))
		} else {
			pr.line("var %s %s%s;", n.Name, n.Base, dims)
		}
	case *AssignStmt:
		pr.line("%s %s %s;", lvalueString(n.LHS), n.Op, ExprString(n.RHS))
	case *IfStmt:
		pr.printIf(n, "if")
	case *WhileStmt:
		pr.line("while %s {", ExprString(n.Cond))
		pr.indent++
		for _, c := range n.Body.Stmts {
			pr.printStmt(c)
		}
		pr.indent--
		pr.line("}")
	case *ForStmt:
		head := fmt.Sprintf("for %s = %s to %s", n.Var, ExprString(n.From), ExprString(n.To))
		if n.Step != nil {
			head += " step " + ExprString(n.Step)
		}
		pr.line("%s {", head)
		pr.indent++
		for _, c := range n.Body.Stmts {
			pr.printStmt(c)
		}
		pr.indent--
		pr.line("}")
	case *BarrierStmt:
		pr.line("barrier;")
	case *LockStmt:
		pr.line("lock(%s);", ExprString(n.LockID))
	case *UnlockStmt:
		pr.line("unlock(%s);", ExprString(n.LockID))
	case *ReturnStmt:
		if n.Value != nil {
			pr.line("return %s;", ExprString(n.Value))
		} else {
			pr.line("return;")
		}
	case *ExprStmt:
		pr.line("%s;", ExprString(n.Call))
	case *PrintStmt:
		args := make([]string, 0, len(n.Args)+1)
		args = append(args, Quote(n.Format))
		for _, a := range n.Args {
			args = append(args, ExprString(a))
		}
		pr.line("print(%s);", strings.Join(args, ", "))
	case *CICOStmt:
		pr.line("%s %s;", n.Kind, RangeRefString(n.Target))
	case *CommentStmt:
		pr.line("/*** %s ***/", n.Text)
	default:
		pr.line("/* unprintable statement %T */", s)
	}
}

func (pr *printer) printIf(n *IfStmt, kw string) {
	pr.line("%s %s {", kw, ExprString(n.Cond))
	pr.indent++
	for _, c := range n.Then.Stmts {
		pr.printStmt(c)
	}
	pr.indent--
	switch e := n.Else.(type) {
	case nil:
		pr.line("}")
	case *IfStmt:
		pr.sb.WriteString(strings.Repeat("    ", pr.indent))
		pr.printf("} else ")
		// Print the else-if chain inline: emit "if cond {" without indent
		// prefix, then its body.
		pr.printElseIf(e)
	case *Block:
		pr.line("} else {")
		pr.indent++
		for _, c := range e.Stmts {
			pr.printStmt(c)
		}
		pr.indent--
		pr.line("}")
	}
}

func (pr *printer) printElseIf(n *IfStmt) {
	pr.printf("if %s {", ExprString(n.Cond))
	pr.nl()
	pr.indent++
	for _, c := range n.Then.Stmts {
		pr.printStmt(c)
	}
	pr.indent--
	switch e := n.Else.(type) {
	case nil:
		pr.line("}")
	case *IfStmt:
		pr.sb.WriteString(strings.Repeat("    ", pr.indent))
		pr.printf("} else ")
		pr.printElseIf(e)
	case *Block:
		pr.line("} else {")
		pr.indent++
		for _, c := range e.Stmts {
			pr.printStmt(c)
		}
		pr.indent--
		pr.line("}")
	}
}

// Quote renders s as a ParC string literal. It must emit only the escape
// sequences the lexer understands (\n, \t, \\, \") and pass every other byte
// through raw: Go's %q would produce escapes like \r or \x00 that ParC's
// lexer rejects, even though the raw bytes themselves are legal inside a
// ParC string literal. (Found by the conformance round-trip harness.)
func Quote(s string) string {
	var sb strings.Builder
	sb.Grow(len(s) + 2)
	sb.WriteByte('"')
	for i := 0; i < len(s); i++ {
		switch c := s[i]; c {
		case '\n':
			sb.WriteString(`\n`)
		case '\t':
			sb.WriteString(`\t`)
		case '\\':
			sb.WriteString(`\\`)
		case '"':
			sb.WriteString(`\"`)
		default:
			sb.WriteByte(c)
		}
	}
	sb.WriteByte('"')
	return sb.String()
}

func lvalueString(lv *LValue) string {
	s := lv.Name
	for _, ix := range lv.Indices {
		s += fmt.Sprintf("[%s]", ExprString(ix))
	}
	return s
}

// RangeRefString renders an annotation target such as B[k][lo:hi].
func RangeRefString(r *RangeRef) string {
	s := r.Name
	for _, ix := range r.Indices {
		if ix.Hi != nil {
			s += fmt.Sprintf("[%s:%s]", ExprString(ix.Lo), ExprString(ix.Hi))
		} else {
			s += fmt.Sprintf("[%s]", ExprString(ix.Lo))
		}
	}
	return s
}

var opText = map[TokKind]string{
	TokPlus:    "+",
	TokMinus:   "-",
	TokStar:    "*",
	TokSlash:   "/",
	TokPercent: "%",
	TokEq:      "==",
	TokNe:      "!=",
	TokLt:      "<",
	TokLe:      "<=",
	TokGt:      ">",
	TokGe:      ">=",
	TokAndAnd:  "&&",
	TokOrOr:    "||",
	TokNot:     "!",
}

// ExprString renders an expression as source text, parenthesizing only where
// precedence requires.
func ExprString(e Expr) string {
	return exprString(e, 0)
}

func exprString(e Expr, parentPrec int) string {
	switch n := e.(type) {
	case *IntLit:
		return fmt.Sprintf("%d", n.Value)
	case *FloatLit:
		s := fmt.Sprintf("%g", n.Value)
		if !strings.ContainsAny(s, ".eE") {
			s += ".0"
		}
		return s
	case *VarRef:
		return n.Name
	case *IndexExpr:
		s := n.Name
		for _, ix := range n.Indices {
			s += fmt.Sprintf("[%s]", exprString(ix, 0))
		}
		return s
	case *CallExpr:
		args := make([]string, len(n.Args))
		for i, a := range n.Args {
			args[i] = exprString(a, 0)
		}
		return fmt.Sprintf("%s(%s)", n.Name, strings.Join(args, ", "))
	case *UnaryExpr:
		const unaryPrec = 7
		s := opText[n.Op] + exprString(n.X, unaryPrec)
		if parentPrec > unaryPrec {
			return "(" + s + ")"
		}
		return s
	case *BinaryExpr:
		prec := binPrec[n.Op]
		s := fmt.Sprintf("%s %s %s",
			exprString(n.X, prec), opText[n.Op], exprString(n.Y, prec+1))
		if prec < parentPrec {
			return "(" + s + ")"
		}
		return s
	}
	return fmt.Sprintf("/* %T */", e)
}
