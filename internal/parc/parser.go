package parc

import "fmt"

// Parser is a recursive-descent parser for ParC.
type Parser struct {
	toks []Token
	pos  int
	prog *Program
}

// Parse parses a complete ParC program and runs the semantic checker.
func Parse(src string) (*Program, error) {
	return ParseFile("", src)
}

// ParseFile parses src like Parse, recording file as the source file name:
// every statement position, checker diagnostic, and downstream vet finding
// then prints as file:line:col.
func ParseFile(file, src string) (*Program, error) {
	toks, err := TokenizeFile(file, src)
	if err != nil {
		return nil, err
	}
	p := &Parser{toks: toks, prog: &Program{File: file}}
	if err := p.parseProgram(); err != nil {
		return nil, err
	}
	if err := Check(p.prog); err != nil {
		return nil, err
	}
	return p.prog, nil
}

// MustParse parses src and panics on error; for tests and embedded
// benchmark sources that are known to be valid.
func MustParse(src string) *Program {
	prog, err := Parse(src)
	if err != nil {
		panic(fmt.Sprintf("parc.MustParse: %v", err))
	}
	return prog
}

func (p *Parser) cur() Token  { return p.toks[p.pos] }
func (p *Parser) next() Token { t := p.toks[p.pos]; p.pos++; return t }

func (p *Parser) at(k TokKind) bool { return p.cur().Kind == k }

func (p *Parser) accept(k TokKind) bool {
	if p.at(k) {
		p.pos++
		return true
	}
	return false
}

func (p *Parser) expect(k TokKind) (Token, error) {
	t := p.cur()
	if t.Kind != k {
		return t, &Error{Pos: t.Pos, Msg: fmt.Sprintf("expected %s, found %s", k, t)}
	}
	p.pos++
	return t, nil
}

func (p *Parser) errorf(pos Pos, format string, args ...any) error {
	return &Error{Pos: pos, Msg: fmt.Sprintf(format, args...)}
}

func (p *Parser) parseProgram() error {
	for !p.at(TokEOF) {
		switch p.cur().Kind {
		case TokConst:
			d, err := p.parseConstDecl()
			if err != nil {
				return err
			}
			p.prog.Consts = append(p.prog.Consts, d)
		case TokShared:
			d, err := p.parseSharedDecl()
			if err != nil {
				return err
			}
			p.prog.Shareds = append(p.prog.Shareds, d)
		case TokFunc:
			d, err := p.parseFuncDecl()
			if err != nil {
				return err
			}
			p.prog.Funcs = append(p.prog.Funcs, d)
		default:
			return p.errorf(p.cur().Pos, "expected declaration, found %s", p.cur())
		}
	}
	return nil
}

func (p *Parser) parseConstDecl() (*ConstDecl, error) {
	kw, _ := p.expect(TokConst)
	name, err := p.expect(TokIdent)
	if err != nil {
		return nil, err
	}
	if _, err := p.expect(TokAssign); err != nil {
		return nil, err
	}
	// Constant expressions are evaluated during Check, so that constants may
	// reference earlier constants.
	expr, err := p.parseExpr()
	if err != nil {
		return nil, err
	}
	if _, err := p.expect(TokSemi); err != nil {
		return nil, err
	}
	return &ConstDecl{Pos: kw.Pos, Name: name.Text, Expr: expr}, nil
}

func (p *Parser) parseBaseType() (BaseType, error) {
	switch {
	case p.accept(TokIntType):
		return IntType, nil
	case p.accept(TokFloatType):
		return FloatType, nil
	}
	return 0, p.errorf(p.cur().Pos, "expected type, found %s", p.cur())
}

func (p *Parser) parseSharedDecl() (*SharedDecl, error) {
	kw, _ := p.expect(TokShared)
	base, err := p.parseBaseType()
	if err != nil {
		return nil, err
	}
	name, err := p.expect(TokIdent)
	if err != nil {
		return nil, err
	}
	d := &SharedDecl{Pos: kw.Pos, Name: name.Text, Base: base}
	for p.accept(TokLBracket) {
		dim, err := p.parseExpr()
		if err != nil {
			return nil, err
		}
		if _, err := p.expect(TokRBracket); err != nil {
			return nil, err
		}
		d.Dims = append(d.Dims, dim)
	}
	if p.accept(TokLabel) {
		s, err := p.expect(TokString)
		if err != nil {
			return nil, err
		}
		d.Label = s.Text
	}
	if _, err := p.expect(TokSemi); err != nil {
		return nil, err
	}
	return d, nil
}

func (p *Parser) parseFuncDecl() (*FuncDecl, error) {
	kw, _ := p.expect(TokFunc)
	name, err := p.expect(TokIdent)
	if err != nil {
		return nil, err
	}
	if _, err := p.expect(TokLParen); err != nil {
		return nil, err
	}
	f := &FuncDecl{Pos: kw.Pos, Name: name.Text}
	for !p.at(TokRParen) {
		if len(f.Params) > 0 {
			if _, err := p.expect(TokComma); err != nil {
				return nil, err
			}
		}
		pn, err := p.expect(TokIdent)
		if err != nil {
			return nil, err
		}
		bt, err := p.parseBaseType()
		if err != nil {
			return nil, err
		}
		f.Params = append(f.Params, Param{Name: pn.Text, Base: bt})
	}
	p.next() // ')'
	if p.at(TokIntType) || p.at(TokFloatType) {
		bt, _ := p.parseBaseType()
		f.Result = &bt
	}
	body, err := p.parseBlock()
	if err != nil {
		return nil, err
	}
	f.Body = body
	return f, nil
}

func (p *Parser) parseBlock() (*Block, error) {
	lb, err := p.expect(TokLBrace)
	if err != nil {
		return nil, err
	}
	b := &Block{stmtInfo: stmtInfo{id: p.prog.NewID(), pos: lb.Pos}}
	for !p.at(TokRBrace) {
		if p.at(TokEOF) {
			return nil, p.errorf(lb.Pos, "unclosed block")
		}
		s, err := p.parseStmt()
		if err != nil {
			return nil, err
		}
		b.Stmts = append(b.Stmts, s)
	}
	p.next() // '}'
	return b, nil
}

func (p *Parser) parseStmt() (Stmt, error) {
	t := p.cur()
	switch t.Kind {
	case TokLBrace:
		return p.parseBlock()
	case TokVar:
		return p.parseVarDecl()
	case TokIf:
		return p.parseIf()
	case TokWhile:
		return p.parseWhile()
	case TokFor:
		return p.parseFor()
	case TokBarrier:
		p.next()
		if _, err := p.expect(TokSemi); err != nil {
			return nil, err
		}
		return &BarrierStmt{stmtInfo{id: p.prog.NewID(), pos: t.Pos}}, nil
	case TokLock, TokUnlock:
		p.next()
		if _, err := p.expect(TokLParen); err != nil {
			return nil, err
		}
		e, err := p.parseExpr()
		if err != nil {
			return nil, err
		}
		if _, err := p.expect(TokRParen); err != nil {
			return nil, err
		}
		if _, err := p.expect(TokSemi); err != nil {
			return nil, err
		}
		info := stmtInfo{id: p.prog.NewID(), pos: t.Pos}
		if t.Kind == TokLock {
			return &LockStmt{stmtInfo: info, LockID: e}, nil
		}
		return &UnlockStmt{stmtInfo: info, LockID: e}, nil
	case TokReturn:
		p.next()
		r := &ReturnStmt{stmtInfo: stmtInfo{id: p.prog.NewID(), pos: t.Pos}}
		if !p.at(TokSemi) {
			e, err := p.parseExpr()
			if err != nil {
				return nil, err
			}
			r.Value = e
		}
		if _, err := p.expect(TokSemi); err != nil {
			return nil, err
		}
		return r, nil
	case TokPrint:
		return p.parsePrint()
	case TokCheckOutX, TokCheckOutS, TokCheckIn, TokPrefetchX, TokPrefetchS:
		return p.parseCICO()
	case TokIdent:
		return p.parseAssignOrCall()
	}
	return nil, p.errorf(t.Pos, "expected statement, found %s", t)
}

func (p *Parser) parseVarDecl() (Stmt, error) {
	kw, _ := p.expect(TokVar)
	name, err := p.expect(TokIdent)
	if err != nil {
		return nil, err
	}
	base, err := p.parseBaseType()
	if err != nil {
		return nil, err
	}
	d := &VarDeclStmt{stmtInfo: stmtInfo{id: p.prog.NewID(), pos: kw.Pos}, Name: name.Text, Base: base}
	for p.accept(TokLBracket) {
		dim, err := p.parseExpr()
		if err != nil {
			return nil, err
		}
		if _, err := p.expect(TokRBracket); err != nil {
			return nil, err
		}
		d.Dims = append(d.Dims, dim)
	}
	if p.accept(TokAssign) {
		if len(d.Dims) > 0 {
			return nil, p.errorf(kw.Pos, "array variable %q cannot have an initializer", d.Name)
		}
		e, err := p.parseExpr()
		if err != nil {
			return nil, err
		}
		d.Init = e
	}
	if _, err := p.expect(TokSemi); err != nil {
		return nil, err
	}
	return d, nil
}

func (p *Parser) parseIf() (Stmt, error) {
	kw, _ := p.expect(TokIf)
	cond, err := p.parseExpr()
	if err != nil {
		return nil, err
	}
	s := &IfStmt{stmtInfo: stmtInfo{id: p.prog.NewID(), pos: kw.Pos}, Cond: cond}
	s.Then, err = p.parseBlock()
	if err != nil {
		return nil, err
	}
	if p.accept(TokElse) {
		if p.at(TokIf) {
			s.Else, err = p.parseIf()
		} else {
			s.Else, err = p.parseBlock()
		}
		if err != nil {
			return nil, err
		}
	}
	return s, nil
}

func (p *Parser) parseWhile() (Stmt, error) {
	kw, _ := p.expect(TokWhile)
	cond, err := p.parseExpr()
	if err != nil {
		return nil, err
	}
	// Allocate the statement's ID before parsing the body so that IDs are
	// ordered outer-before-inner, as elsewhere.
	s := &WhileStmt{stmtInfo: stmtInfo{id: p.prog.NewID(), pos: kw.Pos}, Cond: cond}
	s.Body, err = p.parseBlock()
	if err != nil {
		return nil, err
	}
	return s, nil
}

func (p *Parser) parseFor() (Stmt, error) {
	kw, _ := p.expect(TokFor)
	name, err := p.expect(TokIdent)
	if err != nil {
		return nil, err
	}
	if _, err := p.expect(TokAssign); err != nil {
		return nil, err
	}
	from, err := p.parseExpr()
	if err != nil {
		return nil, err
	}
	if _, err := p.expect(TokTo); err != nil {
		return nil, err
	}
	to, err := p.parseExpr()
	if err != nil {
		return nil, err
	}
	s := &ForStmt{stmtInfo: stmtInfo{id: p.prog.NewID(), pos: kw.Pos}, Var: name.Text, From: from, To: to}
	if p.accept(TokStep) {
		s.Step, err = p.parseExpr()
		if err != nil {
			return nil, err
		}
	}
	s.Body, err = p.parseBlock()
	if err != nil {
		return nil, err
	}
	return s, nil
}

func (p *Parser) parsePrint() (Stmt, error) {
	kw, _ := p.expect(TokPrint)
	if _, err := p.expect(TokLParen); err != nil {
		return nil, err
	}
	f, err := p.expect(TokString)
	if err != nil {
		return nil, err
	}
	s := &PrintStmt{stmtInfo: stmtInfo{id: p.prog.NewID(), pos: kw.Pos}, Format: f.Text}
	for p.accept(TokComma) {
		e, err := p.parseExpr()
		if err != nil {
			return nil, err
		}
		s.Args = append(s.Args, e)
	}
	if _, err := p.expect(TokRParen); err != nil {
		return nil, err
	}
	if _, err := p.expect(TokSemi); err != nil {
		return nil, err
	}
	return s, nil
}

func (p *Parser) parseCICO() (Stmt, error) {
	t := p.next()
	var kind AnnKind
	switch t.Kind {
	case TokCheckOutX:
		kind = AnnCheckOutX
	case TokCheckOutS:
		kind = AnnCheckOutS
	case TokCheckIn:
		kind = AnnCheckIn
	case TokPrefetchX:
		kind = AnnPrefetchX
	case TokPrefetchS:
		kind = AnnPrefetchS
	}
	ref, err := p.parseRangeRef()
	if err != nil {
		return nil, err
	}
	if _, err := p.expect(TokSemi); err != nil {
		return nil, err
	}
	return &CICOStmt{stmtInfo: stmtInfo{id: p.prog.NewID(), pos: t.Pos}, Kind: kind, Target: ref}, nil
}

func (p *Parser) parseRangeRef() (*RangeRef, error) {
	name, err := p.expect(TokIdent)
	if err != nil {
		return nil, err
	}
	ref := &RangeRef{Pos: name.Pos, Name: name.Text}
	for p.accept(TokLBracket) {
		lo, err := p.parseExpr()
		if err != nil {
			return nil, err
		}
		idx := RangeIndex{Lo: lo}
		if p.accept(TokColon) {
			idx.Hi, err = p.parseExpr()
			if err != nil {
				return nil, err
			}
		}
		if _, err := p.expect(TokRBracket); err != nil {
			return nil, err
		}
		ref.Indices = append(ref.Indices, idx)
	}
	return ref, nil
}

func (p *Parser) parseAssignOrCall() (Stmt, error) {
	name := p.next() // identifier
	if p.at(TokLParen) {
		call, err := p.parseCallTail(name)
		if err != nil {
			return nil, err
		}
		if _, err := p.expect(TokSemi); err != nil {
			return nil, err
		}
		return &ExprStmt{stmtInfo: stmtInfo{id: p.prog.NewID(), pos: name.Pos}, Call: call}, nil
	}
	lv := &LValue{Pos: name.Pos, Name: name.Text}
	for p.accept(TokLBracket) {
		e, err := p.parseExpr()
		if err != nil {
			return nil, err
		}
		if _, err := p.expect(TokRBracket); err != nil {
			return nil, err
		}
		lv.Indices = append(lv.Indices, e)
	}
	var op AssignOp
	switch p.cur().Kind {
	case TokAssign:
		op = OpSet
	case TokPlusEq:
		op = OpAdd
	case TokMinusEq:
		op = OpSub
	case TokStarEq:
		op = OpMul
	case TokSlashEq:
		op = OpDiv
	default:
		return nil, p.errorf(p.cur().Pos, "expected assignment operator, found %s", p.cur())
	}
	p.next()
	rhs, err := p.parseExpr()
	if err != nil {
		return nil, err
	}
	if _, err := p.expect(TokSemi); err != nil {
		return nil, err
	}
	return &AssignStmt{stmtInfo: stmtInfo{id: p.prog.NewID(), pos: name.Pos}, LHS: lv, Op: op, RHS: rhs}, nil
}

func (p *Parser) parseCallTail(name Token) (*CallExpr, error) {
	if _, err := p.expect(TokLParen); err != nil {
		return nil, err
	}
	call := &CallExpr{exprInfo: exprInfo{pos: name.Pos}, Name: name.Text}
	for !p.at(TokRParen) {
		if len(call.Args) > 0 {
			if _, err := p.expect(TokComma); err != nil {
				return nil, err
			}
		}
		e, err := p.parseExpr()
		if err != nil {
			return nil, err
		}
		call.Args = append(call.Args, e)
	}
	p.next() // ')'
	return call, nil
}

// Expression parsing with precedence climbing.

var binPrec = map[TokKind]int{
	TokOrOr:    1,
	TokAndAnd:  2,
	TokEq:      3,
	TokNe:      3,
	TokLt:      4,
	TokLe:      4,
	TokGt:      4,
	TokGe:      4,
	TokPlus:    5,
	TokMinus:   5,
	TokStar:    6,
	TokSlash:   6,
	TokPercent: 6,
}

func (p *Parser) parseExpr() (Expr, error) { return p.parseBinary(1) }

func (p *Parser) parseBinary(minPrec int) (Expr, error) {
	lhs, err := p.parseUnary()
	if err != nil {
		return nil, err
	}
	for {
		prec, ok := binPrec[p.cur().Kind]
		if !ok || prec < minPrec {
			return lhs, nil
		}
		op := p.next()
		rhs, err := p.parseBinary(prec + 1)
		if err != nil {
			return nil, err
		}
		lhs = &BinaryExpr{exprInfo: exprInfo{pos: op.Pos}, Op: op.Kind, X: lhs, Y: rhs}
	}
}

func (p *Parser) parseUnary() (Expr, error) {
	t := p.cur()
	if t.Kind == TokMinus || t.Kind == TokNot {
		p.next()
		x, err := p.parseUnary()
		if err != nil {
			return nil, err
		}
		return &UnaryExpr{exprInfo: exprInfo{pos: t.Pos}, Op: t.Kind, X: x}, nil
	}
	return p.parsePrimary()
}

func (p *Parser) parsePrimary() (Expr, error) {
	t := p.cur()
	switch t.Kind {
	case TokInt:
		p.next()
		var v int64
		if _, err := fmt.Sscanf(t.Text, "%d", &v); err != nil {
			return nil, p.errorf(t.Pos, "bad integer literal %q", t.Text)
		}
		return &IntLit{exprInfo: exprInfo{pos: t.Pos}, Value: v}, nil
	case TokFloat:
		p.next()
		var v float64
		if _, err := fmt.Sscanf(t.Text, "%g", &v); err != nil {
			return nil, p.errorf(t.Pos, "bad float literal %q", t.Text)
		}
		return &FloatLit{exprInfo: exprInfo{pos: t.Pos}, Value: v}, nil
	case TokLParen:
		p.next()
		e, err := p.parseExpr()
		if err != nil {
			return nil, err
		}
		if _, err := p.expect(TokRParen); err != nil {
			return nil, err
		}
		return e, nil
	case TokIntType, TokFloatType:
		// Conversion calls: int(x), float(x). The type keywords double as
		// builtin conversion functions.
		p.next()
		name := Token{Kind: TokIdent, Pos: t.Pos, Text: "int"}
		if t.Kind == TokFloatType {
			name.Text = "float"
		}
		return p.parseCallTail(name)
	case TokIdent:
		p.next()
		if p.at(TokLParen) {
			return p.parseCallTail(t)
		}
		if p.at(TokLBracket) {
			ix := &IndexExpr{exprInfo: exprInfo{pos: t.Pos}, Name: t.Text}
			for p.accept(TokLBracket) {
				e, err := p.parseExpr()
				if err != nil {
					return nil, err
				}
				if _, err := p.expect(TokRBracket); err != nil {
					return nil, err
				}
				ix.Indices = append(ix.Indices, e)
			}
			return ix, nil
		}
		return &VarRef{exprInfo: exprInfo{pos: t.Pos}, Name: t.Text}, nil
	}
	return nil, p.errorf(t.Pos, "expected expression, found %s", t)
}
