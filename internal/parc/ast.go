package parc

import "sync"

// BaseType is a ParC scalar element type.
type BaseType int

// Base types.
const (
	IntType BaseType = iota
	FloatType
)

func (b BaseType) String() string {
	if b == IntType {
		return "int"
	}
	return "float"
}

// ElemSize is the size in bytes of every ParC array element (both int and
// float). With the simulator's 32-byte cache blocks this yields b = 4
// elements per block, matching the paper's Section 5 example.
const ElemSize = 8

// AnnKind identifies one of the five CICO annotations of the model
// (Larus et al. [13]): check-out exclusive, check-out shared, check-in,
// prefetch-exclusive, and prefetch-shared.
type AnnKind int

// CICO annotation kinds.
const (
	AnnCheckOutX AnnKind = iota
	AnnCheckOutS
	AnnCheckIn
	AnnPrefetchX
	AnnPrefetchS
)

func (k AnnKind) String() string {
	switch k {
	case AnnCheckOutX:
		return "check_out_x"
	case AnnCheckOutS:
		return "check_out_s"
	case AnnCheckIn:
		return "check_in"
	case AnnPrefetchX:
		return "prefetch_x"
	case AnnPrefetchS:
		return "prefetch_s"
	}
	return "cico(?)"
}

// IsCheckOut reports whether the annotation acquires a block (check-out or
// prefetch) rather than releasing one.
func (k AnnKind) IsCheckOut() bool { return k != AnnCheckIn }

// Program is a parsed ParC compilation unit. Statement IDs are unique within
// a Program and dense in [0, NumStmts); the simulator reports them as trace
// program counters.
type Program struct {
	File    string // source file name when parsed with ParseFile, else ""
	Consts  []*ConstDecl
	Shareds []*SharedDecl
	Funcs   []*FuncDecl

	nextID int

	// Filled in by Check:
	ConstVal  map[string]int64
	SharedMap map[string]*SharedDecl
	FuncMap   map[string]*FuncDecl
	Stmts     map[int]Stmt // statement ID -> statement

	artifactMu  sync.Mutex
	artifact    any
	artifactIDs int
}

// Artifact returns a per-Program derived artifact, building it on first use
// and rebuilding it if statement IDs have been allocated since (the rewriter
// assigns NewID to every statement it inserts, so structural growth
// invalidates the cache). The parc package has no opinion about the value;
// the interpreter uses it to cache compiled bytecode across the many
// contexts and runs that execute one parsed Program. Safe for concurrent
// use; mutating a Program without allocating IDs after its first execution
// is not supported.
func (p *Program) Artifact(build func() any) any {
	p.artifactMu.Lock()
	defer p.artifactMu.Unlock()
	if p.artifact == nil || p.artifactIDs != p.nextID {
		p.artifact = build()
		p.artifactIDs = p.nextID
	}
	return p.artifact
}

// NumStmts returns the number of statement IDs allocated so far; valid IDs
// are 0..NumStmts-1.
func (p *Program) NumStmts() int { return p.nextID }

// NewID allocates a fresh statement ID. The parser uses it for every parsed
// statement; Cachier's rewriter uses it for generated statements.
func (p *Program) NewID() int {
	id := p.nextID
	p.nextID++
	return id
}

// ConstDecl is a named integer constant: const N = 256; The initializer may
// reference previously declared constants and is evaluated by Check.
type ConstDecl struct {
	Pos   Pos
	Name  string
	Expr  Expr
	Value int64 // resolved by Check
}

// SharedDecl declares a shared array (or scalar, when Dims is empty) living
// in the simulated global address space:
//
//	shared float A[256][256] label "A";
//
// The optional label names the region for Cachier's address-to-variable
// mapping, standing in for the paper's memory-labelling macro.
type SharedDecl struct {
	Pos   Pos
	Name  string
	Base  BaseType
	Dims  []Expr // constant expressions
	Label string // "" if unlabelled

	// Resolved by Check:
	DimSizes []int  // evaluated Dims (len 0 for scalars)
	Size     int    // total element count
	BaseAddr uint64 // assigned by memory layout, in bytes
}

// Param is a function parameter.
type Param struct {
	Name string
	Base BaseType
}

// RefKind classifies what a name reference resolved to. Check fills it in
// for every reference in a parsed program; nodes synthesized afterwards
// (Cachier's rewriter builds annotation statements into an already-checked
// AST) keep the zero value RefUnresolved and are resolved by name at run
// time instead.
type RefKind uint8

// Reference kinds.
const (
	RefUnresolved RefKind = iota // resolve dynamically (generated node)
	RefLocal                     // private scalar: Slot indexes the frame's scalars
	RefArray                     // private array: Slot indexes the frame's arrays
	RefShared                    // shared variable: Shared points at the declaration
	RefConst                     // named constant: Const holds the value
)

// Binding records where a function-local name lives at run time: a slot in
// the activation frame's scalar or array storage. Check builds one per
// parameter, local, and loop variable; the interpreter consults the table
// to resolve generated references that carry no static resolution.
type Binding struct {
	Decl  *VarDeclStmt // nil for parameters and implicit loop variables
	Slot  int
	Array bool
}

// BuiltinID identifies a builtin function. BuiltinNone marks a call that is
// not a builtin (a user function, or a generated node pending dynamic
// lookup).
type BuiltinID uint8

// Builtin identifiers.
const (
	BuiltinNone BuiltinID = iota
	BuiltinPid
	BuiltinNprocs
	BuiltinMin
	BuiltinMax
	BuiltinAbs
	BuiltinSqrt
	BuiltinSin
	BuiltinCos
	BuiltinFloor
	BuiltinFloat
	BuiltinInt
	BuiltinRnd
	BuiltinRndseed
)

// FuncDecl is a function definition. The function named "main" is the SPMD
// entry point executed by every processor.
type FuncDecl struct {
	Pos    Pos
	Name   string
	Params []Param
	Result *BaseType // nil for void
	Body   *Block

	// Resolved by Check. Parameters occupy scalar slots 0..len(Params)-1
	// in declaration order; locals and loop variables follow. ParC scoping
	// is function-wide with no shadowing, so every name has exactly one
	// slot for the whole body.
	NumScalars int
	NumArrays  int
	Bindings   map[string]Binding
}

// Stmt is a ParC statement. Every statement has a unique ID within its
// Program and a source position (zero for generated statements).
type Stmt interface {
	ID() int
	Position() Pos
	stmtNode()
}

type stmtInfo struct {
	id  int
	pos Pos
}

func (s *stmtInfo) ID() int       { return s.id }
func (s *stmtInfo) Position() Pos { return s.pos }
func (s *stmtInfo) stmtNode()     {}

// SetID assigns the statement's unique ID. Tools that synthesize statements
// after parsing (Cachier's rewriter) allocate IDs with Program.NewID and
// attach them here.
func (s *stmtInfo) SetID(id int) { s.id = id }

// Block is a braced statement list.
type Block struct {
	stmtInfo
	Stmts []Stmt
}

// VarDeclStmt declares a processor-private variable, optionally with
// initializer (scalars only): var t float = 0.0; var buf float[64];
type VarDeclStmt struct {
	stmtInfo
	Name string
	Base BaseType
	Dims []Expr // nil for scalars; constant expressions
	Init Expr   // nil unless scalar with initializer

	DimSizes []int // resolved by Check
	Slot     int   // frame slot + 1, resolved by Check; 0 means unresolved
}

// AssignOp is the operator of an assignment statement.
type AssignOp int

// Assignment operators.
const (
	OpSet AssignOp = iota // =
	OpAdd                 // +=
	OpSub                 // -=
	OpMul                 // *=
	OpDiv                 // /=
)

func (op AssignOp) String() string {
	switch op {
	case OpSet:
		return "="
	case OpAdd:
		return "+="
	case OpSub:
		return "-="
	case OpMul:
		return "*="
	case OpDiv:
		return "/="
	}
	return "?="
}

// AssignStmt assigns to a scalar variable or array element.
type AssignStmt struct {
	stmtInfo
	LHS *LValue
	Op  AssignOp
	RHS Expr
}

// LValue is an assignable reference: a bare name or an indexed array.
type LValue struct {
	Pos     Pos
	Name    string
	Indices []Expr // nil for scalars

	// Resolved by Check (RefLocal, RefArray, or RefShared; constants are
	// rejected as assignment targets).
	Ref    RefKind
	Slot   int
	Shared *SharedDecl
}

// IfStmt is a conditional. Else is nil, a *Block, or an *IfStmt (else-if).
type IfStmt struct {
	stmtInfo
	Cond Expr
	Then *Block
	Else Stmt
}

// WhileStmt loops while Cond is nonzero.
type WhileStmt struct {
	stmtInfo
	Cond Expr
	Body *Block
}

// ForStmt is the counted loop "for i = lo to hi [step s] { ... }". The bound
// is inclusive, following the paper's pseudocode. Step defaults to 1 and may
// be negative (then the loop runs while i >= hi).
type ForStmt struct {
	stmtInfo
	Var  string
	From Expr
	To   Expr
	Step Expr // nil means 1
	Body *Block

	// VarSlot is the loop variable's scalar frame slot + 1, resolved by
	// Check; 0 means unresolved (generated loops look the name up at run
	// time).
	VarSlot int
}

// BarrierStmt is a global barrier; it delimits epochs.
type BarrierStmt struct {
	stmtInfo
}

// LockStmt acquires the lock numbered by its expression.
type LockStmt struct {
	stmtInfo
	LockID Expr
}

// UnlockStmt releases the lock numbered by its expression.
type UnlockStmt struct {
	stmtInfo
	LockID Expr
}

// ReturnStmt returns from the current function; Value is nil for void.
type ReturnStmt struct {
	stmtInfo
	Value Expr
}

// ExprStmt is a call used as a statement.
type ExprStmt struct {
	stmtInfo
	Call *CallExpr
}

// PrintStmt emits formatted debug output: print("x=%d", x);
// Verbs: %d (int), %f (float), %g (float, compact).
type PrintStmt struct {
	stmtInfo
	Format string
	Args   []Expr
}

// CICOStmt is one of the five CICO annotation statements applied to an
// address range of a shared array, e.g. check_out_s B[k][lo:hi];
// CICO statements never change program semantics (paper Section 1).
type CICOStmt struct {
	stmtInfo
	Kind   AnnKind
	Target *RangeRef
}

// CommentStmt is a free-standing comment line; Cachier uses it to flag data
// races and false sharing next to the offending reference (Section 4.3).
type CommentStmt struct {
	stmtInfo
	Text string // without the comment delimiters
}

// RangeRef names a shared array region: each dimension is either a single
// index or an inclusive lo:hi range.
type RangeRef struct {
	Pos     Pos
	Name    string
	Indices []RangeIndex

	Shared *SharedDecl // resolved by Check; nil on generated nodes
}

// RangeIndex is one dimension of a RangeRef. Hi is nil for a single index.
type RangeIndex struct {
	Lo Expr
	Hi Expr
}

// Expr is a ParC expression.
type Expr interface {
	Position() Pos
	exprNode()
}

type exprInfo struct{ pos Pos }

func (e *exprInfo) Position() Pos { return e.pos }
func (e *exprInfo) exprNode()     {}

// IntLit is an integer literal.
type IntLit struct {
	exprInfo
	Value int64
}

// FloatLit is a floating-point literal.
type FloatLit struct {
	exprInfo
	Value float64
}

// VarRef names a constant, parameter, local, or shared scalar.
type VarRef struct {
	exprInfo
	Name string

	// Resolved by Check (RefLocal, RefConst, or RefShared).
	Ref    RefKind
	Slot   int
	Shared *SharedDecl
	Const  int64
}

// IndexExpr reads an element of a (shared or private) array.
type IndexExpr struct {
	exprInfo
	Name    string
	Indices []Expr

	// Resolved by Check (RefArray or RefShared).
	Ref    RefKind
	Slot   int
	Shared *SharedDecl
}

// CallExpr calls a user function or builtin (pid, nprocs, min, max, abs,
// sqrt, sin, cos, floor, float, int, rnd, rndseed).
type CallExpr struct {
	exprInfo
	Name string
	Args []Expr

	// Resolved by Check: exactly one of Builtin/Fn is set for checked
	// calls; both zero on generated nodes (resolved by name at run time).
	Builtin BuiltinID
	Fn      *FuncDecl
}

// UnaryExpr applies unary minus or logical not.
type UnaryExpr struct {
	exprInfo
	Op TokKind // TokMinus or TokNot
	X  Expr
}

// BinaryExpr applies a binary operator.
type BinaryExpr struct {
	exprInfo
	Op   TokKind
	X, Y Expr
}

// Constructors used by Cachier's rewriter for generated nodes. Generated
// nodes carry a zero position.

// NewIntLit builds an integer literal expression.
func NewIntLit(v int64) *IntLit { return &IntLit{Value: v} }

// NewVarRef builds a variable reference expression.
func NewVarRef(name string) *VarRef { return &VarRef{Name: name} }

// NewBinary builds a binary expression.
func NewBinary(op TokKind, x, y Expr) *BinaryExpr { return &BinaryExpr{Op: op, X: x, Y: y} }

// Walk calls fn for every statement in the subtree rooted at s, in source
// order, recursing into nested blocks. If fn returns false the subtree below
// that statement is skipped.
func Walk(s Stmt, fn func(Stmt) bool) {
	if s == nil || !fn(s) {
		return
	}
	switch n := s.(type) {
	case *Block:
		for _, c := range n.Stmts {
			Walk(c, fn)
		}
	case *IfStmt:
		Walk(n.Then, fn)
		Walk(n.Else, fn)
	case *WhileStmt:
		Walk(n.Body, fn)
	case *ForStmt:
		Walk(n.Body, fn)
	}
}

// WalkProgram walks every function body in the program.
func WalkProgram(p *Program, fn func(Stmt) bool) {
	for _, f := range p.Funcs {
		Walk(f.Body, fn)
	}
}
