package parc

import (
	"testing"
)

// TestCheckerErrorMessages pins the checker's diagnostics end to end:
// every error must render as file:line:col followed by the message, with
// the position pointing at the offending token, so downstream tools
// (cachier, parcvet) print locations a user can click through to.
func TestCheckerErrorMessages(t *testing.T) {
	cases := []struct {
		name string
		src  string
		want string
	}{
		{
			name: "no main function",
			src:  `const N = 4;`,
			want: `test.parc:1:1: program has no main function`,
		},
		{
			name: "redeclared constant",
			src: `const N = 4;
const N = 8;
func main() { barrier; }`,
			want: `test.parc:2:1: constant "N" redeclared`,
		},
		{
			name: "shared collides with constant",
			src: `const N = 4;
shared float N label "N";
func main() { barrier; }`,
			want: `test.parc:2:1: shared "N" collides with a constant`,
		},
		{
			name: "non-positive shared dimension",
			src: `shared float A[0] label "A";
func main() { barrier; }`,
			want: `test.parc:1:1: shared "A" has non-positive dimension 0`,
		},
		{
			name: "main takes parameters",
			src:  `func main(x int) { barrier; }`,
			want: `test.parc:1:1: main must take no parameters`,
		},
		{
			name: "undefined variable assignment",
			src: `func main() {
    y = 1;
}`,
			want: `test.parc:2:5: undefined variable "y"`,
		},
		{
			name: "assignment to constant",
			src: `const N = 4;
func main() {
    N = 5;
}`,
			want: `test.parc:3:5: cannot assign to constant "N"`,
		},
		{
			name: "undefined name in expression",
			src: `func main() {
    var x int = q + 1;
}`,
			want: `test.parc:2:17: undefined name "q"`,
		},
		{
			name: "wrong rank",
			src: `shared float A[4][4] label "A";
func main() {
    A[1] = 0.0;
}`,
			want: `test.parc:3:5: "A" has rank 2 but is indexed with 1 subscript(s)`,
		},
		{
			name: "annotation target not shared",
			src: `func main() {
    var x int;
    check_out_x x;
}`,
			want: `test.parc:3:17: CICO annotation target "x" is not a shared variable`,
		},
		{
			name: "builtin arity",
			src: `func main() {
    var x int = min(1);
}`,
			want: `test.parc:2:17: builtin "min" takes 2 argument(s), got 1`,
		},
		{
			name: "undefined function",
			src: `func main() {
    var x int = nothere(3);
}`,
			want: `test.parc:2:17: undefined function "nothere"`,
		},
		{
			name: "shared array without subscripts",
			src: `shared float A[4] label "A";
func main() {
    var x float = A;
}`,
			want: `test.parc:3:19: shared array "A" used without subscripts`,
		},
		{
			name: "private loop variable required",
			src: `shared int i label "i";
func main() {
    for i = 0 to 3 {
        barrier;
    }
}`,
			want: `test.parc:3:5: loop variable "i" must be private`,
		},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			_, err := ParseFile("test.parc", tc.src)
			if err == nil {
				t.Fatalf("expected a checker error")
			}
			if got := err.Error(); got != tc.want {
				t.Errorf("error message:\n got %q\nwant %q", got, tc.want)
			}
		})
	}
}

// TestCheckerErrorsWithoutFile: positions from the plain Parse entry point
// render as line:col with no file prefix.
func TestCheckerErrorsWithoutFile(t *testing.T) {
	_, err := Parse(`func main() {
    y = 1;
}`)
	if err == nil {
		t.Fatal("expected an error")
	}
	if got, want := err.Error(), `2:5: undefined variable "y"`; got != want {
		t.Errorf("error message:\n got %q\nwant %q", got, want)
	}
}
