// Package parcgen generates random, well-formed, guaranteed-terminating ParC
// programs for differential testing. Every generated program is
// schedule-independent at the element level: within each barrier-delimited
// epoch, each shared array element is written by at most one processor, every
// cross-processor read targets data last written in an EARLIER epoch, and the
// only same-epoch multi-writer location is a lock-protected integer reduction
// cell (integer addition commutes, so the final value is interleaving-free).
// Block-level false sharing, in contrast, is produced on purpose — 1-D
// partition boundaries straddle cache blocks — because that is exactly the
// conflict class Cachier must flag and pin without changing semantics.
//
// The generator's only obligations are determinism (same seed, same source)
// and termination (every loop has static bounds or a strictly advancing
// counter); the conformance harness supplies the oracle that checks the rest.
package parcgen

import (
	"fmt"
	"math/rand"
	"strings"
)

// Config bounds the generated programs.
type Config struct {
	// Nodes is the processor count the program partitions for; the array
	// extent N is always a multiple of it.
	Nodes int
	// MaxArrays bounds the shared array count (at least 1 is generated).
	MaxArrays int
	// MaxPhases bounds the barrier-delimited compute phases (at least 1).
	MaxPhases int
}

// DefaultConfig is sized for fast conformance runs: small machine, small
// arrays, a handful of epochs.
func DefaultConfig() Config {
	return Config{Nodes: 4, MaxArrays: 3, MaxPhases: 4}
}

// Generate returns the seed's program under the default configuration.
func Generate(seed int64) string {
	return GenerateConfig(seed, DefaultConfig())
}

// GenerateConfig returns a deterministic pseudo-random ParC program.
func GenerateConfig(seed int64, cfg Config) string {
	if cfg.Nodes <= 0 {
		cfg.Nodes = 4
	}
	if cfg.MaxArrays <= 0 {
		cfg.MaxArrays = 3
	}
	if cfg.MaxPhases <= 0 {
		cfg.MaxPhases = 4
	}
	g := &gen{rng: rand.New(rand.NewSource(seed)), cfg: cfg}
	g.emit()
	return g.sb.String()
}

type arrayInfo struct {
	name    string
	isFloat bool
	twoD    bool
	cols    int // 2-D column count
}

type gen struct {
	rng *rand.Rand
	cfg Config
	sb  strings.Builder

	n         int // array extent N
	arrays    []arrayInfo
	hasTotal  bool // shared int reduction cell present
	hasMixf   bool // float helper emitted
	hasClampi bool // int helper emitted
}

func (g *gen) pf(format string, args ...any) {
	fmt.Fprintf(&g.sb, format, args...)
}

// chance flips a biased coin: true with probability num/den.
func (g *gen) chance(num, den int) bool { return g.rng.Intn(den) < num }

func (g *gen) emit() {
	g.n = g.cfg.Nodes * (4 + 2*g.rng.Intn(3)) // e.g. 16, 24, 32 for 4 nodes
	g.pf("const N = %d;\n\n", g.n)

	nArrays := 1 + g.rng.Intn(g.cfg.MaxArrays)
	for a := 0; a < nArrays; a++ {
		ai := arrayInfo{
			name:    fmt.Sprintf("D%d", a),
			isFloat: g.chance(2, 3),
			twoD:    g.chance(1, 4),
			cols:    4,
		}
		g.arrays = append(g.arrays, ai)
		base := "int"
		if ai.isFloat {
			base = "float"
		}
		label := ai.name
		// Occasionally use a label the old %q printer mangled (raw control
		// bytes are legal in ParC strings; see parc.Quote).
		switch {
		case g.chance(1, 8):
			label = ai.name + "\tt"
		case g.chance(1, 12):
			label = ai.name + "\rr"
		}
		if ai.twoD {
			g.pf("shared %s %s[N][%d] label %s;\n", base, ai.name, ai.cols, quote(label))
		} else {
			g.pf("shared %s %s[N] label %s;\n", base, ai.name, quote(label))
		}
	}
	g.hasTotal = g.chance(1, 2)
	if g.hasTotal {
		g.pf("shared int total label \"total\";\n")
	}
	g.pf("\n")

	g.hasMixf = g.chance(1, 2)
	if g.hasMixf {
		g.pf("func mixf(a float, b float) float {\n    return a * 0.5 + b * 0.25;\n}\n\n")
	}
	g.hasClampi = g.chance(1, 3)
	if g.hasClampi {
		g.pf("func clampi(a int) int {\n    if a < 0 {\n        return -a;\n    }\n    return a %% 97;\n}\n\n")
	}

	g.pf("func main() {\n")
	g.pf("    var per int = N / nprocs();\n")
	g.pf("    var lo int = pid() * per;\n")
	g.pf("    var hi int = lo + per - 1;\n")

	// Initialization epoch: every node fills its own rows of every array with
	// a deterministic function of the index (occasionally the node-seeded
	// rnd(), whose per-node sequence is program-order deterministic).
	for a := range g.arrays {
		g.emitInit(a)
	}
	g.pf("    barrier;\n")

	phases := 1 + g.rng.Intn(g.cfg.MaxPhases)
	for ph := 0; ph < phases; ph++ {
		g.emitPhase(ph)
	}
	g.pf("}\n")
}

func quote(s string) string {
	var sb strings.Builder
	sb.WriteByte('"')
	for i := 0; i < len(s); i++ {
		switch c := s[i]; c {
		case '\n':
			sb.WriteString(`\n`)
		case '\t':
			sb.WriteString(`\t`)
		case '\\':
			sb.WriteString(`\\`)
		case '"':
			sb.WriteString(`\"`)
		default:
			sb.WriteByte(c)
		}
	}
	sb.WriteByte('"')
	return sb.String()
}

func (g *gen) emitInit(a int) {
	ai := g.arrays[a]
	var rhs string
	switch {
	case ai.isFloat && g.chance(1, 3):
		rhs = "rnd() + 0.5"
	case ai.isFloat:
		rhs = fmt.Sprintf("float(i * %d + %d) * 0.25", 1+g.rng.Intn(5), g.rng.Intn(7))
	default:
		rhs = fmt.Sprintf("i * %d %% %d + pid()", 1+g.rng.Intn(5), 5+g.rng.Intn(13))
	}
	if ai.twoD {
		inner := rhs
		if strings.Contains(inner, "i *") {
			inner = strings.Replace(inner, "i *", fmt.Sprintf("(i * %d + j) *", ai.cols), 1)
		}
		g.pf("    for i = lo to hi {\n        for j = 0 to %d {\n            %s[i][j] = %s;\n        }\n    }\n",
			ai.cols-1, ai.name, inner)
	} else {
		g.pf("    for i = lo to hi {\n        %s[i] = %s;\n    }\n", ai.name, rhs)
	}
}

// emitPhase writes one barrier-delimited epoch.
func (g *gen) emitPhase(ph int) {
	kind := g.rng.Intn(6)
	if kind == 5 && !g.hasTotal {
		kind = g.rng.Intn(5)
	}
	switch kind {
	case 0, 1: // plain own-partition update (the common case, so weighted)
		g.emitUpdate(ph, "")
	case 2: // strided or reversed traversal
		if g.chance(1, 2) {
			g.emitUpdate(ph, "step 2")
		} else {
			g.emitUpdate(ph, "reverse")
		}
	case 3: // while-loop traversal with an explicit advancing counter
		g.emitWhileUpdate(ph)
	case 4: // whole-array read into a private accumulator, then own-cell write
		g.emitAccumulate(ph)
	case 5: // lock-protected commutative integer reduction
		g.emitReduction(ph)
	}
	if g.chance(1, 3) {
		g.emitPrint(ph)
	}
	g.pf("    barrier;\n")
}

// target picks the array this phase writes; every other array is stable this
// epoch and may be read at arbitrary indices.
func (g *gen) target() int { return g.rng.Intn(len(g.arrays)) }

// assignOp picks an assignment operator (compound ops read the target cell,
// which is owned by the writer, so they stay race-free).
func (g *gen) assignOp(isFloat bool) string {
	ops := []string{"=", "=", "+=", "-=", "*="}
	if !isFloat {
		ops = []string{"=", "=", "+=", "-="}
	}
	return ops[g.rng.Intn(len(ops))]
}

func (g *gen) emitUpdate(ph int, variant string) {
	t := g.target()
	ai := g.arrays[t]
	head := "for i = lo to hi"
	switch variant {
	case "step 2":
		head = "for i = lo to hi step 2"
	case "reverse":
		head = "for i = hi to lo step -1"
	}
	if g.chance(1, 5) {
		// pid-dependent split: both branches still write only own cells.
		g.pf("    if pid() %% 2 == 0 {\n")
		g.pf("        %s {\n            %s\n        }\n", head, g.writeStmt(t, "i"))
		g.pf("    } else {\n")
		g.pf("        %s {\n            %s\n        }\n", head, g.writeStmt(t, "i"))
		g.pf("    }\n")
		return
	}
	if ai.twoD && g.chance(1, 2) {
		g.pf("    %s {\n        for j = 0 to %d {\n            %s\n        }\n    }\n",
			head, ai.cols-1, g.writeStmt2D(t, "i", "j"))
		return
	}
	g.pf("    %s {\n        %s\n    }\n", head, g.writeStmt(t, "i"))
}

func (g *gen) emitWhileUpdate(ph int) {
	t := g.target()
	v := fmt.Sprintf("w%d", ph)
	g.pf("    var %s int = lo;\n", v)
	g.pf("    while %s <= hi {\n        %s\n        %s += 1;\n    }\n",
		v, g.writeStmt(t, v), v)
}

func (g *gen) emitAccumulate(ph int) {
	t := g.target()
	ai := g.arrays[t]
	// Read a STABLE array (not the phase's write target) end to end; with a
	// single array the accumulator reads only the node's own partition.
	src := -1
	for a := range g.arrays {
		if a != t {
			src = a
			break
		}
	}
	acc := fmt.Sprintf("acc%d", ph)
	k := fmt.Sprintf("k%d", ph)
	g.pf("    var %s float = 0.0;\n", acc)
	if src >= 0 {
		g.pf("    for %s = 0 to N - 1 {\n        %s += %s;\n    }\n", k, acc, g.readAs(src, k, true))
	} else {
		// Only one array exists, so it is also this phase's write target:
		// reads must stay inside the node's own partition (k itself), never
		// safeIndex, which may roam into a neighbour's concurrently-written
		// cells.
		own := g.read(t, k, true)
		if !ai.isFloat {
			own = "float(" + own + ")"
		}
		g.pf("    for %s = lo to hi {\n        %s += %s;\n    }\n", k, acc, own)
	}
	if ai.twoD {
		g.pf("    %s[lo][%d] = %s * 0.125;\n", ai.name, g.rng.Intn(ai.cols), acc)
	} else if ai.isFloat {
		g.pf("    %s[lo] = %s * 0.125;\n", ai.name, acc)
	} else {
		g.pf("    %s[lo] = int(%s) %% 1024;\n", ai.name, acc)
	}
}

func (g *gen) emitReduction(ph int) {
	// Integer addition commutes and locks serialize the updates, so the final
	// cell value is independent of node interleaving.
	id := g.rng.Intn(2)
	g.pf("    lock(%d);\n", id)
	g.pf("    total += %s;\n", g.intExpr(1, -1, ""))
	g.pf("    unlock(%d);\n", id)
}

func (g *gen) emitPrint(ph int) {
	formats := []string{
		"p%d v%d",
		"p%d\tv%d",
		"phase %d node %d",
		"x %% %d n%d",
	}
	f := formats[g.rng.Intn(len(formats))]
	g.pf("    print(%s, %d, pid());\n", quote(f), ph)
}

// --- expression generation ---
//
// Expressions never divide or take modulo by anything but a positive literal,
// so no generated program can fault; float special values (Inf/NaN) are
// allowed, since every variant performs the identical per-element operation
// sequence and therefore produces identical bits.

// safeIndex returns an index expression guaranteed in [0, N).
func (g *gen) safeIndex(loopVar string) string {
	if loopVar == "" || g.chance(1, 4) {
		switch g.rng.Intn(3) {
		case 0:
			return fmt.Sprintf("%d", g.rng.Intn(g.n))
		case 1:
			return "lo"
		default:
			return "hi"
		}
	}
	switch g.rng.Intn(3) {
	case 0:
		return loopVar
	case 1:
		return fmt.Sprintf("(%s + %d) %% N", loopVar, 1+g.rng.Intn(g.n))
	default:
		return fmt.Sprintf("(%s * %d + %d) %% N", loopVar, 2+g.rng.Intn(3), g.rng.Intn(g.n))
	}
}

// readAs returns a float-valued (or int-coerced) read of array a. ownOnly
// restricts the index to the loop variable itself (the caller's own cell).
func (g *gen) read(a int, loopVar string, ownOnly bool) string {
	ai := g.arrays[a]
	ix := loopVar
	if !ownOnly {
		ix = g.safeIndex(loopVar)
	}
	if ix == "" {
		ix = "lo"
	}
	if ai.twoD {
		return fmt.Sprintf("%s[%s][%d]", ai.name, ix, g.rng.Intn(ai.cols))
	}
	return fmt.Sprintf("%s[%s]", ai.name, ix)
}

// readAs wraps read with a conversion so the result has the requested type.
func (g *gen) readAs(a int, loopVar string, wantFloat bool) string {
	r := g.read(a, loopVar, false)
	if wantFloat && !g.arrays[a].isFloat {
		return "float(" + r + ")"
	}
	if !wantFloat && g.arrays[a].isFloat {
		return "int(" + r + ")"
	}
	return r
}

// writeStmt builds "<target>[ix] op= <rhs>;" for a 1-D or fixed-column 2-D
// write of the caller's own cell.
func (g *gen) writeStmt(t int, loopVar string) string {
	ai := g.arrays[t]
	lhs := fmt.Sprintf("%s[%s]", ai.name, loopVar)
	if ai.twoD {
		lhs = fmt.Sprintf("%s[%s][%d]", ai.name, loopVar, g.rng.Intn(ai.cols))
	}
	return fmt.Sprintf("%s %s %s;", lhs, g.assignOp(ai.isFloat), g.rhs(t, loopVar))
}

func (g *gen) writeStmt2D(t int, rowVar, colVar string) string {
	ai := g.arrays[t]
	lhs := fmt.Sprintf("%s[%s][%s]", ai.name, rowVar, colVar)
	return fmt.Sprintf("%s %s %s;", lhs, g.assignOp(ai.isFloat), g.rhs(t, rowVar))
}

// rhs builds the phase's right-hand side: reads of the target stay on the
// caller's own row; reads of every other (stable) array roam freely.
func (g *gen) rhs(t int, loopVar string) string {
	if g.arrays[t].isFloat {
		return g.floatExpr(2, t, loopVar)
	}
	return g.intExpr(2, t, loopVar)
}

func (g *gen) floatExpr(depth, t int, loopVar string) string {
	if depth <= 0 || g.chance(1, 4) {
		return g.floatAtom(t, loopVar)
	}
	x := g.floatExpr(depth-1, t, loopVar)
	y := g.floatExpr(depth-1, t, loopVar)
	switch g.rng.Intn(8) {
	case 0:
		return fmt.Sprintf("(%s + %s)", x, y)
	case 1:
		return fmt.Sprintf("(%s - %s)", x, y)
	case 2:
		return fmt.Sprintf("(%s * %s)", x, y)
	case 3:
		return fmt.Sprintf("(%s / %d.0)", x, 2+g.rng.Intn(7))
	case 4:
		return fmt.Sprintf("min(%s, %s)", x, y)
	case 5:
		return fmt.Sprintf("abs(%s)", x)
	case 6:
		if g.hasMixf {
			return fmt.Sprintf("mixf(%s, %s)", x, y)
		}
		return fmt.Sprintf("max(%s, %s)", x, y)
	default:
		if g.chance(1, 3) {
			return fmt.Sprintf("sqrt(abs(%s))", x)
		}
		return fmt.Sprintf("(%s * 0.5 + %s * 0.25)", x, y)
	}
}

func (g *gen) floatAtom(t int, loopVar string) string {
	switch g.rng.Intn(5) {
	case 0:
		return fmt.Sprintf("%d.%d", g.rng.Intn(4), 25*(1+g.rng.Intn(3)))
	case 1:
		if loopVar != "" {
			return fmt.Sprintf("float(%s)", loopVar)
		}
		return "float(pid())"
	case 2:
		if t >= 0 && loopVar != "" {
			// Own cell of the write target: race-free self-reference.
			r := g.read(t, loopVar, true)
			if !g.arrays[t].isFloat {
				r = "float(" + r + ")"
			}
			return r
		}
		fallthrough
	default:
		a := g.stableArray(t)
		if a < 0 {
			return "1.5"
		}
		return g.readAs(a, loopVar, true)
	}
}

func (g *gen) intExpr(depth, t int, loopVar string) string {
	if depth <= 0 || g.chance(1, 4) {
		return g.intAtom(t, loopVar)
	}
	x := g.intExpr(depth-1, t, loopVar)
	y := g.intExpr(depth-1, t, loopVar)
	switch g.rng.Intn(7) {
	case 0:
		return fmt.Sprintf("(%s + %s)", x, y)
	case 1:
		return fmt.Sprintf("(%s - %s)", x, y)
	case 2:
		return fmt.Sprintf("(%s * %d)", x, 1+g.rng.Intn(4))
	case 3:
		return fmt.Sprintf("(%s %% %d)", x, 3+g.rng.Intn(17))
	case 4:
		return fmt.Sprintf("(%s / %d)", x, 2+g.rng.Intn(5))
	case 5:
		if g.hasClampi {
			return fmt.Sprintf("clampi(%s)", x)
		}
		return fmt.Sprintf("max(%s, %s)", x, y)
	default:
		return fmt.Sprintf("min(%s, %s)", x, y)
	}
}

func (g *gen) intAtom(t int, loopVar string) string {
	switch g.rng.Intn(5) {
	case 0:
		return fmt.Sprintf("%d", 1+g.rng.Intn(16))
	case 1:
		if loopVar != "" {
			return loopVar
		}
		return "pid()"
	case 2:
		return []string{"pid()", "nprocs()", "per", "lo", "hi"}[g.rng.Intn(5)]
	case 3:
		if t >= 0 && loopVar != "" {
			r := g.read(t, loopVar, true)
			if g.arrays[t].isFloat {
				r = "int(" + r + ")"
			}
			return r
		}
		fallthrough
	default:
		a := g.stableArray(t)
		if a < 0 {
			return "7"
		}
		return g.readAs(a, loopVar, false)
	}
}

// stableArray picks an array other than the current write target (any array
// when t is -1, e.g. in a reduction epoch where no array is written).
func (g *gen) stableArray(t int) int {
	candidates := make([]int, 0, len(g.arrays))
	for a := range g.arrays {
		if a != t {
			candidates = append(candidates, a)
		}
	}
	if len(candidates) == 0 {
		return -1
	}
	return candidates[g.rng.Intn(len(candidates))]
}
