package parcgen

import (
	"testing"

	"cachier/internal/parc"
)

// TestGenerateDeterministic: the generator is a pure function of its seed.
func TestGenerateDeterministic(t *testing.T) {
	for seed := int64(0); seed < 50; seed++ {
		if Generate(seed) != Generate(seed) {
			t.Fatalf("seed %d: two calls disagree", seed)
		}
	}
	if Generate(1) == Generate(2) {
		t.Fatal("seeds 1 and 2 generated identical programs")
	}
}

// TestGenerateParsesAndChecks: every generated program is well-formed ParC.
func TestGenerateParsesAndChecks(t *testing.T) {
	for seed := int64(0); seed < 200; seed++ {
		src := Generate(seed)
		prog, err := parc.Parse(src)
		if err != nil {
			t.Fatalf("seed %d does not parse: %v\n%s", seed, err, src)
		}
		if err := parc.Check(prog); err != nil {
			t.Fatalf("seed %d does not check: %v\n%s", seed, err, src)
		}
	}
}

// TestGenerateRoundTrips: parse -> Print -> parse yields an equal AST for
// every generated program (the satellite-1 printer contract).
func TestGenerateRoundTrips(t *testing.T) {
	for seed := int64(0); seed < 200; seed++ {
		src := Generate(seed)
		prog, err := parc.Parse(src)
		if err != nil {
			t.Fatalf("seed %d: %v", seed, err)
		}
		printed := parc.Print(prog)
		prog2, err := parc.Parse(printed)
		if err != nil {
			t.Fatalf("seed %d: printed output does not re-parse: %v\n%s", seed, err, printed)
		}
		if err := parc.ASTEqual(prog, prog2); err != nil {
			t.Fatalf("seed %d: round trip not equal: %v", seed, err)
		}
	}
}
