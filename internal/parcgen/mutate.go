package parcgen

import (
	"fmt"
	"math/rand"
	"strconv"

	"cachier/internal/parc"
)

// Mutate applies one deterministic semantic mutation to a valid ParC source
// text: it picks an integer literal (seeded choice), perturbs its value, and
// returns the mutated source — which still parses and checks, but denotes a
// different program. It returns "" when no literal can be perturbed without
// breaking the front end (a program with no integer literals at all).
//
// The serving layer's cache-key property tests use this as the "semantic
// change" generator: any Mutate result whose AST differs from the original
// must change the content hash, while formatting-only rewrites must not.
func Mutate(src string, seed int64) string {
	toks, err := parc.Tokenize(src)
	if err != nil {
		return ""
	}
	var ints []parc.Token
	for _, t := range toks {
		if t.Kind == parc.TokInt {
			ints = append(ints, t)
		}
	}
	if len(ints) == 0 {
		return ""
	}
	lineOff := lineOffsets(src)
	rng := rand.New(rand.NewSource(seed))
	// Try literals in a seeded rotation until one yields a program the
	// front end still accepts (e.g. bumping an array bound past a
	// partition constraint is rejected and skipped).
	start := rng.Intn(len(ints))
	for i := 0; i < len(ints); i++ {
		t := ints[(start+i)%len(ints)]
		v, err := strconv.ParseInt(t.Text, 10, 64)
		if err != nil {
			continue
		}
		off := lineOff[t.Pos.Line-1] + t.Pos.Col - 1
		if off < 0 || off+len(t.Text) > len(src) || src[off:off+len(t.Text)] != t.Text {
			continue
		}
		mutated := src[:off] + fmt.Sprint(v+1) + src[off+len(t.Text):]
		prog, err := parc.Parse(mutated)
		if err != nil {
			continue
		}
		if err := parc.Check(prog); err != nil {
			continue
		}
		return mutated
	}
	return ""
}

// lineOffsets returns the byte offset of each line start (1-based lines map
// to index line-1).
func lineOffsets(src string) []int {
	offs := []int{0}
	for i := 0; i < len(src); i++ {
		if src[i] == '\n' {
			offs = append(offs, i+1)
		}
	}
	// Guard a trailing position past the last newline.
	offs = append(offs, len(src))
	return offs
}
