package core

import (
	"fmt"

	"cachier/internal/analysis"
	"cachier/internal/parc"
)

// groupCtx carries a static epoch group's boundary anchors: where "start of
// epoch" and "end of epoch" placements go. Anchors live in main, where the
// program model's barriers are (Section 3.1).
type groupCtx struct {
	startAnchor parc.Stmt
	startWhere  whereKind
	endAnchor   parc.Stmt
	endWhere    whereKind
}

// groupContext derives the boundary anchors for a group of dynamic epochs
// ending at barrier PC endPC, whose first member is dynamic epoch index
// first.
func (pl *planner) groupContext(epochs []*EpochSets, g []int) groupCtx {
	main := pl.prog.FuncMap["main"]
	ctx := groupCtx{}
	if main == nil || len(main.Body.Stmts) == 0 {
		return ctx
	}
	endPC := epochs[g[0]].BarrierPC
	if endPC >= 0 {
		if s, ok := pl.prog.Stmts[endPC].(*parc.BarrierStmt); ok {
			ctx.endAnchor, ctx.endWhere = s, whereBefore
		}
	}
	if ctx.endAnchor == nil {
		// Final epoch: anchor at the last statement of main.
		ctx.endAnchor, ctx.endWhere = main.Body.Stmts[len(main.Body.Stmts)-1], whereAfter
	}
	first := g[0]
	if first > 0 {
		prevPC := epochs[first-1].BarrierPC
		if s, ok := pl.prog.Stmts[prevPC].(*parc.BarrierStmt); ok {
			ctx.startAnchor, ctx.startWhere = s, whereAfter
		}
	}
	if ctx.startAnchor == nil {
		// First epoch: anchor at the first statement of main.
		ctx.startAnchor, ctx.startWhere = main.Body.Stmts[0], whereBefore
	}
	return ctx
}

// dynamicRef reports whether a reference's subscripts are unstructured: some
// subscript is neither a constant nor affine in an enclosing for-loop
// variable. Such references (tree-node indices, particle cells) execute with
// data-dependent addresses; pinning an annotation at the reference would
// re-execute it on every visit, so placement falls back to the epoch
// boundary (Section 4.2's epoch-relative placement).
func (pl *planner) dynamicRef(ref analysis.Ref) bool {
	loops := pl.info.Loops(ref.Stmt.ID())
	for _, ix := range ref.Indices {
		if _, ok := analysis.ConstExpr(ix, pl.prog.ConstVal); ok {
			continue
		}
		structured := false
		for _, l := range loops {
			if analysis.MentionsVar(ix, l.Var) {
				if _, _, ok := analysis.AffineInVar(ix, l.Var); ok {
					structured = true
				}
				break
			}
		}
		if !structured {
			return true
		}
	}
	return false
}

// executesRepeatedly reports whether the site runs more than once per epoch:
// it is inside a loop, or in a function other than main (functions are
// called from loops in practice; one extra boundary annotation is harmless
// otherwise).
func (pl *planner) executesRepeatedly(site parc.Stmt) bool {
	if len(pl.info.Loops(site.ID())) > 0 {
		return true
	}
	f := pl.info.Func(site.ID())
	return f != nil && f.Name != "main"
}

// soleNode returns the only node with addresses in the work, or -1 if more
// than one node participates.
func soleNode(w *siteWork) int {
	sole := -1
	for n, set := range w.perNode {
		if len(set) == 0 {
			continue
		}
		if sole >= 0 {
			return -1
		}
		sole = n
	}
	return sole
}

// maxRelocatedTargets caps how many range statements a relocated annotation
// may expand to before being over-approximated by a single covering range.
const maxRelocatedTargets = 64

// literalTargets converts an address set into ranged references with literal
// index bounds, coalescing maximal contiguous element runs. Supports ranks
// 0 through 2 (all benchmark arrays); contiguous runs that span rows split
// into at most three references.
func (pl *planner) literalTargets(varName string, set AddrSet) []*parc.RangeRef {
	region := pl.layout.Region(varName)
	if region == nil || len(set) == 0 {
		return nil
	}
	if len(region.DimSizes) == 0 {
		return []*parc.RangeRef{{Name: varName}}
	}
	// Coalesce at cache-block granularity: the trace records only the first
	// missing element of each block, so element-level runs would fragment
	// into per-block singletons. Directives operate on whole blocks anyway.
	addrs := set.Sorted()
	bs := uint64(pl.layout.BlockSize)
	elemsPerBlock := pl.layout.ElemsPerBlock()
	lastElem := region.Elems - 1
	var runs [][2]int // element offset ranges, inclusive
	startBlock := addrs[0] / bs
	prevBlock := startBlock
	flush := func() {
		lo := int((startBlock*bs - region.BaseAddr) / parc.ElemSize)
		hi := lo + int(prevBlock-startBlock)*elemsPerBlock + elemsPerBlock - 1
		if lo < 0 {
			lo = 0
		}
		if hi > lastElem {
			hi = lastElem
		}
		runs = append(runs, [2]int{lo, hi})
	}
	for _, a := range addrs[1:] {
		b := a / bs
		if b <= prevBlock+1 {
			if b > prevBlock {
				prevBlock = b
			}
			continue
		}
		flush()
		startBlock, prevBlock = b, b
	}
	flush()

	var out []*parc.RangeRef
	emit1 := func(lo, hi int) {
		out = append(out, &parc.RangeRef{Name: varName, Indices: []parc.RangeIndex{
			{Lo: parc.NewIntLit(int64(lo)), Hi: parc.NewIntLit(int64(hi))},
		}})
	}
	emit2 := func(r0, r1, c0, c1 int) {
		out = append(out, &parc.RangeRef{Name: varName, Indices: []parc.RangeIndex{
			{Lo: parc.NewIntLit(int64(r0)), Hi: parc.NewIntLit(int64(r1))},
			{Lo: parc.NewIntLit(int64(c0)), Hi: parc.NewIntLit(int64(c1))},
		}})
	}
	for _, run := range runs {
		switch len(region.DimSizes) {
		case 1:
			emit1(run[0], run[1])
		case 2:
			cols := region.DimSizes[1]
			r0, c0 := run[0]/cols, run[0]%cols
			r1, c1 := run[1]/cols, run[1]%cols
			switch {
			case r0 == r1:
				emit2(r0, r0, c0, c1)
			case c0 == 0 && c1 == cols-1:
				emit2(r0, r1, 0, cols-1)
			default:
				emit2(r0, r0, c0, cols-1)
				if r0+1 <= r1-1 {
					emit2(r0+1, r1-1, 0, cols-1)
				}
				emit2(r1, r1, 0, c1)
			}
		default:
			// Rank > 2: over-approximate with the full array.
			var idx []parc.RangeIndex
			for _, d := range region.DimSizes {
				idx = append(idx, parc.RangeIndex{Lo: parc.NewIntLit(0), Hi: parc.NewIntLit(int64(d - 1))})
			}
			return []*parc.RangeRef{{Name: varName, Indices: idx}}
		}
	}
	if len(out) > maxRelocatedTargets {
		// Over-approximate: one covering range per dimension.
		lo := int((addrs[0] - region.BaseAddr) / parc.ElemSize)
		hi := int((addrs[len(addrs)-1] - region.BaseAddr) / parc.ElemSize)
		switch len(region.DimSizes) {
		case 1:
			out = nil
			emit1(lo, hi)
		case 2:
			cols := region.DimSizes[1]
			out = nil
			emit2(lo/cols, hi/cols, 0, cols-1)
		}
	}
	return out
}

// placeRelocated emits an epoch-boundary annotation for work whose
// reference sites are unstructured: check-outs at the epoch start,
// check-ins at the epoch end, over literal ranges of the traced addresses,
// wrapped in an "if pid() == n" guard when a single node owns the work.
func (pl *planner) placeRelocated(kind parc.AnnKind, w *siteWork, ctx groupCtx) {
	anchor, where := ctx.startAnchor, ctx.startWhere
	if kind == parc.AnnCheckIn {
		anchor, where = ctx.endAnchor, ctx.endWhere
	}
	if anchor == nil {
		return
	}
	// Epoch-boundary bulk annotations use the covering span of the traced
	// addresses rather than the exact fragmented set: the exact set is an
	// artifact of one input (which tree nodes a walk visited, which cells
	// particles hit), and under-covering on another input leaves stale
	// sharers that defeat the annotation's purpose. Over-covering only
	// costs cheap wasted directives.
	span := make(AddrSet)
	addrs := w.merged.Sorted()
	span[addrs[0]] = true
	span[addrs[len(addrs)-1]] = true
	lo, hi := addrs[0], addrs[len(addrs)-1]
	for a := lo; a <= hi; a += parc.ElemSize {
		span[a] = true
	}
	targets := pl.literalTargets(w.varName, span)
	if len(targets) == 0 {
		return
	}
	node := soleNode(w)
	var descr string
	for _, t := range targets {
		descr += parc.RangeRefString(t) + ";"
	}
	key := fmt.Sprintf("%d|%d|%s|reloc:%d:%s", anchor.ID(), where, kind, node, descr)
	if _, dup := pl.insertions[key]; dup {
		return
	}
	var stmts []parc.Stmt
	for _, t := range targets {
		st := &parc.CICOStmt{Kind: kind, Target: t}
		setStmtID(pl.prog, st)
		stmts = append(stmts, st)
	}
	if node >= 0 {
		body := &parc.Block{Stmts: stmts}
		guard := &parc.IfStmt{
			Cond: parc.NewBinary(parc.TokEq,
				&parc.CallExpr{Name: "pid"}, parc.NewIntLit(int64(node))),
			Then: body,
		}
		setStmtID(pl.prog, body)
		setStmtID(pl.prog, guard)
		stmts = []parc.Stmt{guard}
	}
	pl.insertions[key] = &insertion{
		anchorID: anchor.ID(),
		where:    where,
		stmts:    stmts,
		sortKey:  key,
	}
}
