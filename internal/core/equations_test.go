package core

import (
	"testing"

	"cachier/internal/trace"
)

// Figure 4 reconstruction (E7). Four variables in distinct cache blocks:
//
//	a=32, b=64, c=96, d=128 (32-byte blocks)
//
// Epoch 0 (the paper's epoch i-1, the program's first epoch):
//
//	P0: write a, write b, read d        P1: read a   -> data race on a
//
// Epoch 1 (epoch i):
//
//	P0: read c, read a, read d, write b P1: idle
//
// Epoch 2 (epoch i+1):
//
//	P0: read a, write b                 P1: write c
//
// Section 4.1's stated results:
//
//	Programmer epoch i:   co_s(c), co_s(a), ci(c), ci(d)
//	Performance epoch i:  ci(c)
//	Programmer epoch i-1: co_x(a), co_x(b), co_s(d), ci(a)
//	Performance epoch i-1: ci(a)
const (
	aAddr = uint64(32)
	bAddr = uint64(64)
	cAddr = uint64(96)
	dAddr = uint64(128)
)

func figure4Trace() *trace.Trace {
	b := trace.NewBuilder(2, 32, nil)
	// Epoch 0 (i-1)
	b.AddMiss(trace.WriteMiss, aAddr, 10, 0)
	b.AddMiss(trace.WriteMiss, bAddr, 11, 0)
	b.AddMiss(trace.ReadMiss, dAddr, 12, 0)
	b.AddMiss(trace.ReadMiss, aAddr, 13, 1)
	b.EndEpoch(100, []uint64{50, 50}, false)
	// Epoch 1 (i)
	b.AddMiss(trace.ReadMiss, cAddr, 20, 0)
	b.AddMiss(trace.ReadMiss, aAddr, 21, 0)
	b.AddMiss(trace.ReadMiss, dAddr, 22, 0)
	b.AddMiss(trace.WriteMiss, bAddr, 23, 0)
	b.EndEpoch(100, []uint64{90, 90}, false)
	// Epoch 2 (i+1)
	b.AddMiss(trace.ReadMiss, aAddr, 30, 0)
	b.AddMiss(trace.WriteMiss, bAddr, 31, 0)
	b.AddMiss(trace.WriteMiss, cAddr, 32, 1)
	b.EndEpoch(-1, []uint64{130, 130}, true)
	return b.Trace()
}

func setEq(t *testing.T, name string, got AddrSet, want ...uint64) {
	t.Helper()
	if len(got) != len(want) {
		t.Errorf("%s = %v, want %v", name, got.Sorted(), want)
		return
	}
	for _, a := range want {
		if !got[a] {
			t.Errorf("%s = %v, want %v", name, got.Sorted(), want)
			return
		}
	}
}

func TestFigure4ProgrammerCICO(t *testing.T) {
	epochs := ProcessTrace(figure4Trace())
	conflicts := FindAllConflicts(epochs, 32)
	ann := ComputeAnnotations(epochs, conflicts, StyleProgrammer)

	// Epoch i-1 (index 0), node 0: co_x(a), co_x(b), co_s(d), ci(a).
	e0 := ann[0][0]
	setEq(t, "epoch i-1 co_x", e0.CoX, aAddr, bAddr)
	setEq(t, "epoch i-1 co_s", e0.CoS, dAddr)
	setEq(t, "epoch i-1 ci", e0.CI, aAddr)

	// Epoch i (index 1), node 0: co_s(c), co_s(a), ci(c), ci(d); no co_x.
	e1 := ann[1][0]
	setEq(t, "epoch i co_x", e1.CoX)
	setEq(t, "epoch i co_s", e1.CoS, aAddr, cAddr)
	setEq(t, "epoch i ci", e1.CI, cAddr, dAddr)
}

func TestFigure4PerformanceCICO(t *testing.T) {
	epochs := ProcessTrace(figure4Trace())
	conflicts := FindAllConflicts(epochs, 32)
	ann := ComputeAnnotations(epochs, conflicts, StylePerformance)

	// Epoch i-1: just ci(a) (the data race makes the check-in necessary).
	e0 := ann[0][0]
	setEq(t, "perf epoch i-1 co_x", e0.CoX)
	setEq(t, "perf epoch i-1 co_s", e0.CoS)
	setEq(t, "perf epoch i-1 ci", e0.CI, aAddr)

	// Epoch i: just ci(c).
	e1 := ann[1][0]
	setEq(t, "perf epoch i co_x", e1.CoX)
	setEq(t, "perf epoch i co_s", e1.CoS)
	setEq(t, "perf epoch i ci", e1.CI, cAddr)
}

func TestFigure4RaceDetected(t *testing.T) {
	epochs := ProcessTrace(figure4Trace())
	conflicts := FindAllConflicts(epochs, 32)
	if !conflicts[0].Race[aAddr] {
		t.Error("race on a in epoch i-1 not detected")
	}
	if conflicts[1].Race[aAddr] {
		t.Error("phantom race on a in epoch i")
	}
	for i, c := range conflicts {
		if len(c.FalseShare) != 0 {
			t.Errorf("epoch %d: phantom false sharing %v", i, c.FalseShare.Sorted())
		}
	}
}

func TestProcessTraceFoldsWriteFaults(t *testing.T) {
	b := trace.NewBuilder(1, 32, nil)
	b.AddMiss(trace.ReadMiss, aAddr, 1, 0)
	b.AddMiss(trace.WriteFault, aAddr, 2, 0)
	b.AddMiss(trace.ReadMiss, bAddr, 3, 0)
	b.EndEpoch(-1, []uint64{10}, true)
	epochs := ProcessTrace(b.Trace())
	ns := epochs[0].Nodes[0]
	setEq(t, "SR", ns.SR, bAddr) // a removed: its fault folded into SW
	setEq(t, "SW", ns.SW, aAddr)
	setEq(t, "WF", ns.WF, aAddr)
	if len(ns.PCs[aAddr]) != 2 {
		t.Errorf("PCs = %v", ns.PCs[aAddr])
	}
}

func TestFalseSharingDetection(t *testing.T) {
	// Nodes write different elements of one block.
	b := trace.NewBuilder(2, 32, nil)
	b.AddMiss(trace.WriteMiss, 32, 1, 0)
	b.AddMiss(trace.WriteMiss, 40, 2, 1)
	// Another block read by both nodes at different addresses: no write, so
	// no false sharing under the write-required interpretation.
	b.AddMiss(trace.ReadMiss, 64, 3, 0)
	b.AddMiss(trace.ReadMiss, 72, 4, 1)
	// Same-address contention only: race, not false sharing.
	b.AddMiss(trace.WriteMiss, 96, 5, 0)
	b.AddMiss(trace.ReadMiss, 96, 6, 1)
	b.EndEpoch(-1, []uint64{10, 10}, true)
	epochs := ProcessTrace(b.Trace())
	c := FindConflicts(epochs[0], 32)
	setEq(t, "false sharing", c.FalseShare, 32, 40)
	setEq(t, "races", c.Race, 96)
}

func TestFalseSharingAsymmetric(t *testing.T) {
	// Node 0 touches both elements, node 1 only one: both addresses still
	// falsely share with respect to the other node's accesses.
	b := trace.NewBuilder(2, 32, nil)
	b.AddMiss(trace.WriteMiss, 32, 1, 0)
	b.AddMiss(trace.ReadMiss, 40, 2, 0)
	b.AddMiss(trace.ReadMiss, 40, 3, 1)
	b.EndEpoch(-1, []uint64{10, 10}, true)
	epochs := ProcessTrace(b.Trace())
	c := FindConflicts(epochs[0], 32)
	if !c.FalseShare[32] || !c.FalseShare[40] {
		t.Errorf("false sharing = %v", c.FalseShare.Sorted())
	}
	// 40 is touched by both nodes but never written; only the block is
	// written. It is false sharing, not a race.
	if c.Race[40] || c.Race[32] {
		t.Errorf("races = %v", c.Race.Sorted())
	}
}

func TestAddrSetOps(t *testing.T) {
	s := AddrSet{1: true, 2: true, 3: true}
	u := AddrSet{3: true, 4: true}
	setEq(t, "minus", s.Minus(u), 1, 2)
	setEq(t, "intersect", s.Intersect(u), 3)
	setEq(t, "union", s.Union(u), 1, 2, 3, 4)
	setEq(t, "filter", s.Filter(func(a uint64) bool { return a%2 == 1 }), 1, 3)
	cl := s.Clone()
	delete(cl, 1)
	if !s[1] {
		t.Error("clone aliases original")
	}
	got := s.Sorted()
	if len(got) != 3 || got[0] != 1 || got[2] != 3 {
		t.Errorf("sorted = %v", got)
	}
}

func TestCheckInSuppressedWhenReusedNextEpoch(t *testing.T) {
	// P0 writes x in both epochs; Programmer CICO must not check x in at
	// the end of epoch 0 (it is reused), modelling the cache across the
	// epoch boundary.
	b := trace.NewBuilder(1, 32, nil)
	b.AddMiss(trace.WriteMiss, aAddr, 1, 0)
	b.EndEpoch(5, []uint64{10}, false)
	b.AddMiss(trace.WriteMiss, aAddr, 2, 0)
	b.EndEpoch(-1, []uint64{20}, true)
	epochs := ProcessTrace(b.Trace())
	conflicts := FindAllConflicts(epochs, 32)
	ann := ComputeAnnotations(epochs, conflicts, StyleProgrammer)
	setEq(t, "epoch 0 ci", ann[0][0].CI)
	setEq(t, "epoch 0 co_x", ann[0][0].CoX, aAddr)
	// And epoch 1 needs no fresh check-out: it was checked out in epoch 0.
	setEq(t, "epoch 1 co_x", ann[1][0].CoX)
	setEq(t, "epoch 1 ci", ann[1][0].CI, aAddr)
}
