package core

import (
	"fmt"
	"sort"

	"cachier/internal/analysis"
	"cachier/internal/parc"
)

// applyInsertions edits the program's AST in place, inserting the planned
// statements around their anchors, and returns the number of statements
// inserted.
func applyInsertions(prog *parc.Program, info *analysis.Info, plan []*insertion) (int, error) {
	type blockEdits struct {
		block      *parc.Block
		before     map[int][]*insertion // anchor ID -> insertions
		after      map[int][]*insertion
		blockStart []*insertion
	}
	edits := make(map[*parc.Block]*blockEdits)
	editFor := func(b *parc.Block) *blockEdits {
		e := edits[b]
		if e == nil {
			e = &blockEdits{
				block:  b,
				before: make(map[int][]*insertion),
				after:  make(map[int][]*insertion),
			}
			edits[b] = e
		}
		return e
	}

	for _, ins := range plan {
		// An anchor may itself not be a direct block child (an else-if in a
		// chain, whose parent is the outer if); climb to the nearest
		// ancestor that is. Inserting around the whole chain is safe:
		// annotations never change semantics.
		aid := ins.anchorID
		for {
			if _, _, ok := info.Block(aid); ok {
				break
			}
			p := info.Parent(aid)
			if p == nil {
				return 0, fmt.Errorf("core: anchor statement %d has no enclosing block", ins.anchorID)
			}
			aid = p.ID()
		}
		ins.anchorID = aid
		b, _, _ := info.Block(aid)
		e := editFor(b)
		switch ins.where {
		case whereBefore:
			e.before[ins.anchorID] = append(e.before[ins.anchorID], ins)
		case whereAfter:
			e.after[ins.anchorID] = append(e.after[ins.anchorID], ins)
		case whereBlockStart:
			e.blockStart = append(e.blockStart, ins)
		}
	}

	inserted := 0
	// Deterministic block order.
	blocks := make([]*parc.Block, 0, len(edits))
	for b := range edits {
		blocks = append(blocks, b)
	}
	sort.Slice(blocks, func(i, j int) bool { return blocks[i].ID() < blocks[j].ID() })

	pl := &planner{prog: prog, info: info} // for introducedBefore during positioning

	for _, b := range blocks {
		e := edits[b]
		// Compute each blockStart insertion's position: the earliest index
		// not after its anchor at which every mentioned local name is
		// already introduced.
		startAt := make(map[int][]*insertion) // index -> insertions
		for _, ins := range e.blockStart {
			anchorIdx := indexOf(b, ins.anchorID, info)
			// The insertion must stay in the anchor's epoch: never move it
			// before a statement that contains a barrier.
			floor := 0
			for p := 0; p < anchorIdx; p++ {
				if info.ContainsBarrier(b.Stmts[p]) {
					floor = p + 1
				}
			}
			pos := anchorIdx
			names := mentionedLocals(prog, ins.stmts)
			for p := floor; p <= anchorIdx; p++ {
				okHere := true
				for name := range names {
					if !pl.introducedBefore(name, b.Stmts[p].ID()) {
						okHere = false
						break
					}
				}
				if okHere {
					pos = p
					break
				}
			}
			startAt[pos] = append(startAt[pos], ins)
		}
		var out []parc.Stmt
		for i, s := range b.Stmts {
			for _, ins := range sortIns(startAt[i]) {
				out = append(out, ins.stmts...)
				inserted += len(ins.stmts)
			}
			for _, ins := range sortIns(e.before[s.ID()]) {
				out = append(out, ins.stmts...)
				inserted += len(ins.stmts)
			}
			out = append(out, s)
			for _, ins := range sortIns(e.after[s.ID()]) {
				out = append(out, ins.stmts...)
				inserted += len(ins.stmts)
			}
		}
		b.Stmts = out
	}
	return inserted, nil
}

func sortIns(list []*insertion) []*insertion {
	sort.Slice(list, func(i, j int) bool { return list[i].sortKey < list[j].sortKey })
	return list
}

// indexOf locates the anchor's index within its block; the anchor may be a
// nested statement, in which case its top-level ancestor within b is used.
func indexOf(b *parc.Block, anchorID int, info *analysis.Info) int {
	for {
		pb, idx, ok := info.Block(anchorID)
		if !ok {
			return 0
		}
		if pb == b {
			return idx
		}
		parent := info.Parent(anchorID)
		if parent == nil {
			return 0
		}
		anchorID = parent.ID()
		_ = idx
	}
}

// mentionedLocals collects the non-constant, non-shared names referenced by
// the inserted statements (generated loop variables excluded: they are
// introduced by the insertion itself).
func mentionedLocals(prog *parc.Program, stmts []parc.Stmt) map[string]bool {
	names := make(map[string]bool)
	introduced := make(map[string]bool)
	var visitExpr func(parc.Expr)
	visitExpr = func(e parc.Expr) {
		switch n := e.(type) {
		case nil:
		case *parc.VarRef:
			names[n.Name] = true
		case *parc.IndexExpr:
			names[n.Name] = true
			for _, ix := range n.Indices {
				visitExpr(ix)
			}
		case *parc.CallExpr:
			for _, a := range n.Args {
				visitExpr(a)
			}
		case *parc.UnaryExpr:
			visitExpr(n.X)
		case *parc.BinaryExpr:
			visitExpr(n.X)
			visitExpr(n.Y)
		}
	}
	for _, s := range stmts {
		parc.Walk(s, func(st parc.Stmt) bool {
			switch n := st.(type) {
			case *parc.ForStmt:
				introduced[n.Var] = true
				visitExpr(n.From)
				visitExpr(n.To)
				visitExpr(n.Step)
			case *parc.CICOStmt:
				for _, ri := range n.Target.Indices {
					visitExpr(ri.Lo)
					visitExpr(ri.Hi)
				}
			}
			return true
		})
	}
	for name := range names {
		if introduced[name] {
			delete(names, name)
			continue
		}
		if _, ok := prog.ConstVal[name]; ok {
			delete(names, name)
			continue
		}
		if _, ok := prog.SharedMap[name]; ok {
			delete(names, name)
		}
	}
	return names
}
