package core

import (
	"fmt"
	"sort"
	"strings"

	"cachier/internal/cico"
	"cachier/internal/memory"
)

// VarCost is one shared variable's annotation volume within a static epoch,
// in cache blocks, summed over nodes and dynamic instances.
type VarCost struct {
	CoXBlocks uint64
	CoSBlocks uint64
	CIBlocks  uint64
}

// EpochCost summarizes one static epoch (all dynamic executions of the code
// region ending at one barrier).
type EpochCost struct {
	BarrierPC int
	Instances int // how many times the epoch executed
	Vars      map[string]VarCost
}

// CostReport is the CICO cost model's output (paper Section 2): the
// communication a program performs, measured in cache blocks checked out
// and in, attributed to variables and epochs. Programmers use it to find
// the communication bottleneck the way Section 5 finds the result-matrix
// race in the matrix multiply.
type CostReport struct {
	Epochs []EpochCost

	TotalCoX uint64
	TotalCoS uint64
	TotalCI  uint64

	// ModelCost applies the CICO cost model's per-block weights.
	ModelCost uint64
}

// buildCostReport derives the report from the annotation sets (blocks are
// deduplicated per node within each dynamic epoch, matching how a cache
// moves data).
func buildCostReport(epochs []*EpochSets, ann [][]AnnSets, layout *memory.Layout) *CostReport {
	rep := &CostReport{}
	byPC := make(map[int]*EpochCost)
	blockSize := uint64(layout.BlockSize)

	countBlocks := func(set AddrSet) map[string]uint64 {
		perVarBlocks := make(map[string]map[uint64]bool)
		for addr := range set {
			region, _, ok := layout.Resolve(addr)
			if !ok {
				continue
			}
			m := perVarBlocks[region.Name]
			if m == nil {
				m = make(map[uint64]bool)
				perVarBlocks[region.Name] = m
			}
			m[addr/blockSize] = true
		}
		out := make(map[string]uint64, len(perVarBlocks))
		for v, blocks := range perVarBlocks {
			out[v] = uint64(len(blocks))
		}
		return out
	}

	for i, es := range epochs {
		ec := byPC[es.BarrierPC]
		if ec == nil {
			ec = &EpochCost{BarrierPC: es.BarrierPC, Vars: make(map[string]VarCost)}
			byPC[es.BarrierPC] = ec
			rep.Epochs = append(rep.Epochs, EpochCost{})
		}
		ec.Instances++
		for n := range es.Nodes {
			a := ann[i][n]
			for v, blocks := range countBlocks(a.CoX) {
				vc := ec.Vars[v]
				vc.CoXBlocks += blocks
				ec.Vars[v] = vc
				rep.TotalCoX += blocks
			}
			for v, blocks := range countBlocks(a.CoS) {
				vc := ec.Vars[v]
				vc.CoSBlocks += blocks
				ec.Vars[v] = vc
				rep.TotalCoS += blocks
			}
			for v, blocks := range countBlocks(a.CI) {
				vc := ec.Vars[v]
				vc.CIBlocks += blocks
				ec.Vars[v] = vc
				rep.TotalCI += blocks
			}
		}
	}
	// Preserve first-occurrence epoch order.
	rep.Epochs = rep.Epochs[:0]
	seen := make(map[int]bool)
	for _, es := range epochs {
		if !seen[es.BarrierPC] {
			seen[es.BarrierPC] = true
			rep.Epochs = append(rep.Epochs, *byPC[es.BarrierPC])
		}
	}
	rep.ModelCost = cico.DefaultCosts().ProgramCost(rep.TotalCoX+rep.TotalCoS, rep.TotalCI)
	return rep
}

// String renders the report as a table, variables sorted by check-out
// volume so the communication bottleneck tops each epoch.
func (r *CostReport) String() string {
	var sb strings.Builder
	fmt.Fprintf(&sb, "CICO communication cost (cache blocks; %d epochs)\n", len(r.Epochs))
	for i, ec := range r.Epochs {
		fmt.Fprintf(&sb, "epoch %d (barrier pc %d, executed %dx):\n", i, ec.BarrierPC, ec.Instances)
		type row struct {
			name string
			vc   VarCost
		}
		var rows []row
		for v, vc := range ec.Vars {
			rows = append(rows, row{v, vc})
		}
		sort.Slice(rows, func(a, b int) bool {
			ta := rows[a].vc.CoXBlocks + rows[a].vc.CoSBlocks
			tb := rows[b].vc.CoXBlocks + rows[b].vc.CoSBlocks
			if ta != tb {
				return ta > tb
			}
			return rows[a].name < rows[b].name
		})
		for _, rw := range rows {
			fmt.Fprintf(&sb, "  %-14s co_x %-8d co_s %-8d ci %d\n",
				rw.name, rw.vc.CoXBlocks, rw.vc.CoSBlocks, rw.vc.CIBlocks)
		}
	}
	fmt.Fprintf(&sb, "total: %d checked out exclusive, %d shared, %d checked in (model cost %d)\n",
		r.TotalCoX, r.TotalCoS, r.TotalCI, r.ModelCost)
	return sb.String()
}
