package core

import (
	"strings"
	"testing"

	"cachier/internal/sim"
	"cachier/internal/trace"
)

// traceWithSeed traces the collapse-style program under a given seed marker
// by varying which half of the array the conditional touches.
const multiSrc = `
const N = 64;
const MODE = @;
shared float A[N] label "A";
func main() {
    if pid() == 0 {
        if MODE == 0 {
            for i = 0 to 31 {
                A[i] = 1.0;
            }
        } else {
            for i = 32 to 63 {
                A[i] = 2.0;
            }
        }
    }
}
`

func multiTrace(t *testing.T, mode string) (string, *trace.Trace) {
	t.Helper()
	src := strings.Replace(multiSrc, "@", mode, 1)
	cfg := sim.DefaultConfig()
	cfg.Nodes = 2
	cfg.Mode = sim.ModeTrace
	res, err := sim.Run(mustParse(t, src), cfg)
	if err != nil {
		t.Fatal(err)
	}
	return src, res.Trace
}

func TestAnnotateMultiUnionsBehaviours(t *testing.T) {
	// The two inputs exercise disjoint halves of A; the training set must
	// produce annotations covering both, where a single trace covers one.
	src0, tr0 := multiTrace(t, "0")
	_, tr1 := multiTrace(t, "1")
	// Both traces come from structurally identical sources (only the MODE
	// constant differs), so statement IDs align; annotate the MODE=0 text.
	single, err := Annotate(src0, tr0, DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	multi, err := AnnotateMulti(src0, []*trace.Trace{tr0, tr1}, DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(single.Source, "check_in A") {
		t.Fatalf("single-trace annotation missing:\n%s", single.Source)
	}
	if multi.Annotations <= single.Annotations {
		t.Errorf("training set produced %d annotations, single trace %d — no union visible",
			multi.Annotations, single.Annotations)
	}
	// The multi-trace result must cover the second half too.
	if !strings.Contains(multi.Source, "= 2.0;") {
		t.Fatal("source mangled")
	}
	secondLoop := multi.Source[strings.Index(multi.Source, "for i = 32 to 63"):]
	if !strings.Contains(secondLoop, "check_in A") {
		t.Errorf("second behaviour not annotated:\n%s", multi.Source)
	}
	// And it must still run.
	cfg := sim.DefaultConfig()
	cfg.Nodes = 2
	if _, err := sim.Run(mustParse(t, multi.Source), cfg); err != nil {
		t.Errorf("multi-annotated program failed: %v", err)
	}
}

func TestAnnotateMultiValidation(t *testing.T) {
	if _, err := AnnotateMulti("func main() { }", nil, DefaultOptions()); err == nil {
		t.Error("empty trace set accepted")
	}
	src, tr0 := multiTrace(t, "0")
	bad := &trace.Trace{Nodes: 2, BlockSize: 64}
	if _, err := AnnotateMulti(src, []*trace.Trace{tr0, bad}, DefaultOptions()); err == nil {
		t.Error("mismatched block sizes accepted")
	}
}

func TestAnnotateMultiSingleEqualsAnnotate(t *testing.T) {
	src, tr := multiTrace(t, "0")
	a, err := Annotate(src, tr, DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	m, err := AnnotateMulti(src, []*trace.Trace{tr}, DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	if a.Source != m.Source {
		t.Errorf("single-trace AnnotateMulti differs from Annotate:\n%s\n---\n%s", a.Source, m.Source)
	}
}
