package core

import (
	"fmt"
	"sort"
	"strings"

	"cachier/internal/analysis"
	"cachier/internal/memory"
	"cachier/internal/parc"
)

// whereKind says where an insertion goes relative to its anchor statement.
type whereKind int

const (
	whereBefore whereKind = iota
	whereAfter
	whereBlockStart // earliest valid position in the anchor's block
)

// insertion is one planned AST edit.
type insertion struct {
	anchorID int
	where    whereKind
	stmts    []parc.Stmt
	sortKey  string // deterministic ordering and dedup key
}

// planner builds the insertion plan for one program + trace.
type planner struct {
	prog   *parc.Program
	info   *analysis.Info
	layout *memory.Layout
	opts   Options

	insertions map[string]*insertion // keyed by sortKey
	flags      map[string]bool       // race/false-sharing comment dedup
	reports    []ConflictReport

	// Per-group state set by planGroup: the epochs under consideration and
	// a cache of per-variable index spans, used to size hoisted footprints.
	curEpochs  []*EpochSets
	curGroup   []int
	groupSpans map[string][]uint64
}

// ConflictReport describes a data race or false-sharing instance found in
// the trace, mapped back to source (Section 4.3: Cachier "flags data races
// and false sharing, to enable the programmer to use locks ... or pad the
// relevant data structures").
type ConflictReport struct {
	Kind  string // "data race" or "false sharing"
	Var   string
	Epoch int      // first dynamic epoch observed
	Pos   parc.Pos // a referencing statement's position
	Addrs int      // how many distinct addresses were involved
}

// siteWork is the annotation work attributed to one (site, variable) pair
// within a static epoch: which addresses each node needs annotated.
type siteWork struct {
	site    parc.Stmt
	varName string
	perNode []AddrSet
	merged  AddrSet
}

func newPlanner(prog *parc.Program, info *analysis.Info, layout *memory.Layout, opts Options) *planner {
	return &planner{
		prog:       prog,
		info:       info,
		layout:     layout,
		opts:       opts,
		insertions: make(map[string]*insertion),
		flags:      make(map[string]bool),
	}
}

// budget returns the per-variable footprint limit for hoisting decisions.
func (pl *planner) budget() uint64 {
	frac := pl.opts.CacheFraction
	if frac <= 0 || frac > 1 {
		frac = 0.5
	}
	return uint64(float64(pl.opts.CacheSize) * frac)
}

// refFor finds the static reference in stmt matching varName; write selects
// among read/write references when both exist.
func (pl *planner) refFor(stmt parc.Stmt, varName string, write bool) (analysis.Ref, bool) {
	var fallback analysis.Ref
	found := false
	for _, r := range pl.info.Refs(stmt.ID()) {
		if r.Var != varName {
			continue
		}
		if r.Write == write {
			return r, true
		}
		fallback = r
		found = true
	}
	return fallback, found
}

// attribute groups annotation addresses by (reference site, variable). get
// returns the address set for one (epoch, node) plus an optional membership
// predicate applied while iterating (so callers never materialize filtered
// copies). For check-outs each address is attributed to its earliest
// referencing statement, for check-ins (pickMax) the latest. With spread,
// conflicted addresses are attributed to every referencing statement so each
// reference gets a pinned annotation.
func (pl *planner) attribute(epochs []*EpochSets, group []int, get func(e, n int) (AddrSet, func(uint64) bool),
	pickMax, spread bool) []*siteWork {

	type key struct {
		site int
		v    string
	}
	work := make(map[key]*siteWork)
	record := func(es *EpochSets, n int, site int, region string, addr uint64) {
		stmt := pl.prog.Stmts[site]
		if stmt == nil {
			return
		}
		k := key{site: site, v: region}
		w := work[k]
		if w == nil {
			w = &siteWork{
				site:    stmt,
				varName: region,
				perNode: make([]AddrSet, len(es.Nodes)),
				merged:  make(AddrSet),
			}
			work[k] = w
		}
		if w.perNode[n] == nil {
			w.perNode[n] = make(AddrSet)
		}
		w.perNode[n][addr] = true
		w.merged[addr] = true
	}
	for _, ei := range group {
		es := epochs[ei]
		for n, ns := range es.Nodes {
			set, keep := get(ei, n)
			for addr := range set {
				if keep != nil && !keep(addr) {
					continue
				}
				region := pl.layout.RegionOf(addr)
				if region == nil {
					continue
				}
				ids := ns.PCs[addr]
				if len(ids) == 0 {
					continue
				}
				if spread {
					for _, id := range ids {
						record(es, n, id, region.Name, addr)
					}
					continue
				}
				best := ids[0]
				for _, id := range ids[1:] {
					if (pickMax && id > best) || (!pickMax && id < best) {
						best = id
					}
				}
				record(es, n, best, region.Name, addr)
			}
		}
	}
	out := make([]*siteWork, 0, len(work))
	for _, w := range work {
		out = append(out, w)
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].site.ID() != out[j].site.ID() {
			return out[i].site.ID() < out[j].site.ID()
		}
		return out[i].varName < out[j].varName
	})
	return out
}

// lastRefSite pushes a check-in's site forward to the last statement in the
// same function that statically references the variable, provided no barrier
// lies between them (the statement is still in the same epoch region). The
// trace only records misses; later references that hit in cache — typically
// because an earlier miss brought their whole block in — are invisible
// dynamically, so a check-in placed at the last *miss* PC could strip the
// block from under a later reuse. This is one of the places Cachier's
// static information refines the dynamic information (Section 4.2: check-in
// annotations "as close to the end of an epoch as possible").
func (pl *planner) lastRefSite(varName string, from parc.Stmt) parc.Stmt {
	f := pl.info.Func(from.ID())
	if f == nil {
		return from
	}
	// The epoch region extends to the first barrier after the site.
	limit := int(^uint(0) >> 1)
	parc.Walk(f.Body, func(s parc.Stmt) bool {
		if _, isBarrier := s.(*parc.BarrierStmt); isBarrier && s.ID() > from.ID() && s.ID() < limit {
			limit = s.ID()
		}
		return true
	})
	best := from
	parc.Walk(f.Body, func(s parc.Stmt) bool {
		if s.ID() <= best.ID() || s.ID() >= limit {
			return true
		}
		for _, r := range pl.info.Refs(s.ID()) {
			if r.Var == varName {
				best = s
				break
			}
		}
		return true
	})
	return best
}

// hoist climbs the loop nest around a reference site, returning the anchor
// statement to place annotations around and the loops hoisted over
// (innermost first). The climb stops at barriers, non-unit or non-constant
// steps, non-affine subscripts, scope violations, and the cache budget
// (Section 4.2's "as close to the beginning of an epoch as possible under
// the cache size constraints").
func (pl *planner) hoist(w *siteWork, ref analysis.Ref) (anchor parc.Stmt, hoisted []*parc.ForStmt) {
	anchor = w.site
	loops := pl.info.Loops(w.site.ID())
	decl := pl.prog.SharedMap[w.varName]
	// Size footprints from the variable's whole per-node access span in
	// this epoch group, not just this work item's addresses: the emitted
	// range uses the loop bounds, which cover everything the node touches,
	// even when this particular reference site only accounted for a few of
	// the misses.
	spans := pl.spansFor(w.varName)
	if spans == nil {
		spans = pl.dimSpans(w, decl)
	}

	for k := len(loops) - 1; k >= 0; k-- {
		l := loops[k]
		if pl.info.ContainsBarrier(l) {
			break
		}
		if !unitStep(l, pl.prog.ConstVal) {
			break
		}
		affineOK := true
		for _, ix := range ref.Indices {
			if analysis.MentionsVar(ix, l.Var) {
				if _, _, ok := analysis.AffineInVar(ix, l.Var); !ok {
					affineOK = false
					break
				}
			}
		}
		if !affineOK {
			break
		}
		candidate := append(hoisted, l)
		if pl.footprint(ref, decl, candidate, spans) > pl.budget() {
			break
		}
		if !pl.scopeOK(ref, l, candidate) {
			break
		}
		hoisted = candidate
		anchor = l
	}
	return anchor, hoisted
}

// unitStep reports whether the loop's step is statically +1 or -1.
func unitStep(l *parc.ForStmt, consts map[string]int64) bool {
	if l.Step == nil {
		return true
	}
	v, ok := analysis.ConstExpr(l.Step, consts)
	return ok && (v == 1 || v == -1)
}

// spansFor returns, per dimension, the maximum single-node index span of
// the variable's accesses within the current epoch group, or nil outside a
// group context.
func (pl *planner) spansFor(varName string) []uint64 {
	if pl.curEpochs == nil {
		return nil
	}
	if s, ok := pl.groupSpans[varName]; ok {
		return s
	}
	region := pl.layout.Region(varName)
	if region == nil || len(region.DimSizes) == 0 {
		pl.groupSpans[varName] = nil
		return nil
	}
	nd := len(region.DimSizes)
	spans := make([]uint64, nd)
	ixBuf := make([]int, nd)
	for _, ei := range pl.curGroup {
		for _, ns := range pl.curEpochs[ei].Nodes {
			lo := make([]int, nd)
			hi := make([]int, nd)
			first := true
			// Scan S = SW ∪ SR without materializing the union; an address
			// in both sets is folded twice, which min/max absorbs.
			scan := func(addr uint64) {
				if !region.Contains(addr) {
					return
				}
				ix, err := region.IndexInto(addr, ixBuf)
				if err != nil {
					return
				}
				for d := 0; d < nd; d++ {
					if first || ix[d] < lo[d] {
						lo[d] = ix[d]
					}
					if first || ix[d] > hi[d] {
						hi[d] = ix[d]
					}
				}
				first = false
			}
			for addr := range ns.SW {
				scan(addr)
			}
			for addr := range ns.SR {
				scan(addr)
			}
			if first {
				continue
			}
			for d := 0; d < nd; d++ {
				if s := uint64(hi[d] - lo[d] + 1); s > spans[d] {
					spans[d] = s
				}
			}
		}
	}
	for d := range spans {
		if spans[d] == 0 {
			spans[d] = 1
		}
	}
	pl.groupSpans[varName] = spans
	return spans
}

// dimSpans returns, per dimension, the maximum per-node index span observed
// in the work's addresses; used to size footprints when loop bounds are not
// statically constant (e.g. pid-dependent).
func (pl *planner) dimSpans(w *siteWork, decl *parc.SharedDecl) []uint64 {
	nd := len(decl.DimSizes)
	if nd == 0 {
		return nil
	}
	spans := make([]uint64, nd)
	ixBuf := make([]int, nd)
	for _, set := range w.perNode {
		if len(set) == 0 {
			continue
		}
		lo := make([]int, nd)
		hi := make([]int, nd)
		first := true
		region := pl.layout.Region(decl.Name)
		for addr := range set {
			ix, err := region.IndexInto(addr, ixBuf)
			if err != nil {
				continue
			}
			for d := 0; d < nd; d++ {
				if first || ix[d] < lo[d] {
					lo[d] = ix[d]
				}
				if first || ix[d] > hi[d] {
					hi[d] = ix[d]
				}
			}
			first = false
		}
		if first {
			continue
		}
		for d := 0; d < nd; d++ {
			if s := uint64(hi[d] - lo[d] + 1); s > spans[d] {
				spans[d] = s
			}
		}
	}
	for d := range spans {
		if spans[d] == 0 {
			spans[d] = 1
		}
	}
	return spans
}

// footprint estimates the bytes covered by an annotation hoisted over the
// given loops: the product over dimensions of the covered index-range sizes.
// A dimension covered by a hoisted loop contributes that loop's trip count
// (static bounds) or the observed per-node span; uncovered dimensions
// contribute one element.
func (pl *planner) footprint(ref analysis.Ref, decl *parc.SharedDecl, hoisted []*parc.ForStmt, spans []uint64) uint64 {
	if len(decl.DimSizes) == 0 {
		return parc.ElemSize
	}
	total := uint64(parc.ElemSize)
	for d, ix := range ref.Indices {
		size := uint64(1)
		for _, l := range hoisted {
			if analysis.MentionsVar(ix, l.Var) {
				if tc, ok := analysis.TripCount(l, pl.prog.ConstVal); ok {
					size = tc
				} else if d < len(spans) {
					size = spans[d]
				} else {
					size = uint64(decl.DimSizes[d])
				}
				break
			}
		}
		total *= size
	}
	return total
}

// scopeOK verifies that an annotation placed before the hoist target would
// only mention names already introduced at that point: constants, shared
// variables, loop variables of loops still enclosing the anchor, and locals
// declared (by statement ID order) before the anchor.
func (pl *planner) scopeOK(ref analysis.Ref, anchor *parc.ForStmt, hoisted []*parc.ForStmt) bool {
	hoistedVars := make(map[string]bool, len(hoisted))
	for _, l := range hoisted {
		hoistedVars[l.Var] = true
	}
	ok := true
	var checkExpr func(e parc.Expr)
	checkName := func(name string) {
		if !ok {
			return
		}
		if _, isConst := pl.prog.ConstVal[name]; isConst {
			return
		}
		if _, isShared := pl.prog.SharedMap[name]; isShared {
			return
		}
		if hoistedVars[name] {
			// Will be substituted by the loop's bounds; the bounds
			// themselves are checked via the loop's From/To below.
			return
		}
		// A local or loop variable: it must be introduced before the anchor
		// (function-wide scope, textual order = statement ID order).
		if !pl.introducedBefore(name, anchor.ID()) {
			ok = false
		}
	}
	checkExpr = func(e parc.Expr) {
		switch n := e.(type) {
		case nil:
		case *parc.VarRef:
			checkName(n.Name)
		case *parc.IndexExpr:
			checkName(n.Name)
			for _, ix := range n.Indices {
				checkExpr(ix)
			}
		case *parc.CallExpr:
			for _, a := range n.Args {
				checkExpr(a)
			}
		case *parc.UnaryExpr:
			checkExpr(n.X)
		case *parc.BinaryExpr:
			checkExpr(n.X)
			checkExpr(n.Y)
		}
	}
	for _, ix := range ref.Indices {
		checkExpr(ix)
	}
	for _, l := range hoisted {
		checkExpr(l.From)
		checkExpr(l.To)
	}
	return ok
}

// introducedBefore reports whether a local name is introduced by a
// statement with ID < limit in the same function as limit's statement.
func (pl *planner) introducedBefore(name string, limit int) bool {
	f := pl.info.Func(limit)
	if f == nil {
		return false
	}
	for _, p := range f.Params {
		if p.Name == name {
			return true
		}
	}
	found := false
	parc.Walk(f.Body, func(s parc.Stmt) bool {
		if found {
			return false
		}
		switch n := s.(type) {
		case *parc.VarDeclStmt:
			if n.Name == name && n.ID() < limit {
				found = true
			}
		case *parc.ForStmt:
			if n.Var == name && n.ID() < limit {
				found = true
			}
		}
		return !found
	})
	return found
}

// substVar returns a copy of the expression with every reference to name
// replaced by repl. Used for software-pipelined prefetches, which rewrite
// the enclosing loop's induction variable to its next iteration's value.
func substVar(e parc.Expr, name string, repl parc.Expr) parc.Expr {
	switch n := e.(type) {
	case nil:
		return nil
	case *parc.IntLit, *parc.FloatLit:
		return e
	case *parc.VarRef:
		if n.Name == name {
			return repl
		}
		return e
	case *parc.IndexExpr:
		out := &parc.IndexExpr{Name: n.Name}
		for _, ix := range n.Indices {
			out.Indices = append(out.Indices, substVar(ix, name, repl))
		}
		return out
	case *parc.CallExpr:
		out := &parc.CallExpr{Name: n.Name}
		for _, a := range n.Args {
			out.Args = append(out.Args, substVar(a, name, repl))
		}
		return out
	case *parc.UnaryExpr:
		return &parc.UnaryExpr{Op: n.Op, X: substVar(n.X, name, repl)}
	case *parc.BinaryExpr:
		return parc.NewBinary(n.Op, substVar(n.X, name, repl), substVar(n.Y, name, repl))
	}
	return e
}

// pipelineTarget rewrites a target's indices for the next iteration of loop
// m: every use of m's induction variable becomes (var + step).
func pipelineTarget(t *parc.RangeRef, m *parc.ForStmt, consts map[string]int64) *parc.RangeRef {
	step := int64(1)
	if m.Step != nil {
		if v, ok := analysis.ConstExpr(m.Step, consts); ok {
			step = v
		}
	}
	next := parc.NewBinary(parc.TokPlus, parc.NewVarRef(m.Var), parc.NewIntLit(step))
	if step < 0 {
		next = parc.NewBinary(parc.TokMinus, parc.NewVarRef(m.Var), parc.NewIntLit(-step))
	}
	out := &parc.RangeRef{Name: t.Name}
	for _, ri := range t.Indices {
		out.Indices = append(out.Indices, parc.RangeIndex{
			Lo: substVar(ri.Lo, m.Var, next),
			Hi: substVar(ri.Hi, m.Var, next),
		})
	}
	return out
}

// targetFor builds the annotation's RangeRef for a hoisted placement: each
// dimension covered by a hoisted loop becomes a lo:hi range derived from the
// loop bounds (shifted by the affine offset); other dimensions keep the
// reference's index expression.
func (pl *planner) targetFor(ref analysis.Ref, hoisted []*parc.ForStmt) *parc.RangeRef {
	out := &parc.RangeRef{Name: ref.Var}
	for _, ix := range ref.Indices {
		ri := parc.RangeIndex{Lo: ix}
		for _, l := range hoisted {
			if !analysis.MentionsVar(ix, l.Var) {
				continue
			}
			off, neg, okAff := analysis.AffineInVar(ix, l.Var)
			if !okAff {
				continue // unreachable: hoist() verified affinity
			}
			lo, hi := l.From, l.To
			if l.Step != nil {
				if v, ok := analysis.ConstExpr(l.Step, pl.prog.ConstVal); ok && v < 0 {
					lo, hi = hi, lo
				}
			}
			ri = parc.RangeIndex{Lo: shift(lo, off, neg), Hi: shift(hi, off, neg)}
			break
		}
		out.Indices = append(out.Indices, ri)
	}
	return out
}

// shift applies an affine offset to a bound expression: e+off or e-off.
func shift(e parc.Expr, off parc.Expr, neg bool) parc.Expr {
	if off == nil {
		return e
	}
	op := parc.TokPlus
	if neg {
		op = parc.TokMinus
	}
	return parc.NewBinary(op, e, off)
}

// singleTarget builds a RangeRef naming exactly the reference's element.
func singleTarget(ref analysis.Ref) *parc.RangeRef {
	out := &parc.RangeRef{Name: ref.Var}
	for _, ix := range ref.Indices {
		out.Indices = append(out.Indices, parc.RangeIndex{Lo: ix})
	}
	return out
}

// addInsertion registers a planned edit, deduplicating by key.
func (pl *planner) addInsertion(kind parc.AnnKind, anchor parc.Stmt, where whereKind, target *parc.RangeRef) {
	key := fmt.Sprintf("%d|%d|%s|%s", anchor.ID(), where, kind, parc.RangeRefString(target))
	if _, dup := pl.insertions[key]; dup {
		return
	}
	if target != nil && target.Shared == nil {
		// Resolve the generated target against the shared declarations now;
		// the interpreter otherwise re-derives exactly this binding on every
		// execution of the directive.
		target.Shared = pl.prog.SharedMap[target.Name]
	}
	st := &parc.CICOStmt{Kind: kind, Target: target}
	setStmtID(pl.prog, st)
	pl.insertions[key] = &insertion{
		anchorID: anchor.ID(),
		where:    where,
		stmts:    []parc.Stmt{st},
		sortKey:  key,
	}
}

// addGeneratedLoop registers a generated annotation loop (Section 4.3's
// "generating new loops" presentation), e.g.
//
//	for __cico0 = 2 to 14 step 2 { check_out_x A[__cico0]; }
func (pl *planner) addGeneratedLoop(kind parc.AnnKind, anchor parc.Stmt, where whereKind,
	varName string, lo, hi, step int64) {

	key := fmt.Sprintf("%d|%d|%s|gen:%s:%d:%d:%d", anchor.ID(), where, kind, varName, lo, hi, step)
	if _, dup := pl.insertions[key]; dup {
		return
	}
	iv := fmt.Sprintf("__cico%d", len(pl.insertions))
	ivRef := parc.NewVarRef(iv)
	cico := &parc.CICOStmt{Kind: kind, Target: &parc.RangeRef{
		Name:    varName,
		Indices: []parc.RangeIndex{{Lo: ivRef}},
		Shared:  pl.prog.SharedMap[varName],
	}}
	body := &parc.Block{Stmts: []parc.Stmt{cico}}
	loop := &parc.ForStmt{
		Var:  iv,
		From: parc.NewIntLit(lo),
		To:   parc.NewIntLit(hi),
		Step: parc.NewIntLit(step),
		Body: body,
	}
	// Bind the counter into the enclosing function's frame at rewrite time,
	// exactly as Check would have: the name is fresh (derived from the
	// insertion count) and ParC scoping is function-wide, so extending the
	// frame by one scalar slot is always sound. The mutated AST then executes
	// the loop through the ordinary slot path — the interpreter's dynamic
	// name fallback and the bytecode compiler's synthetic-register machinery
	// remain only for ASTs rewritten by other tools.
	if fn := pl.info.Func(anchor.ID()); fn != nil {
		if _, exists := fn.Bindings[iv]; !exists {
			if fn.Bindings == nil {
				fn.Bindings = make(map[string]parc.Binding)
			}
			slot := fn.NumScalars
			fn.NumScalars++
			fn.Bindings[iv] = parc.Binding{Slot: slot}
			loop.VarSlot = slot + 1
			ivRef.Ref = parc.RefLocal
			ivRef.Slot = slot
		}
	}
	setStmtID(pl.prog, loop)
	setStmtID(pl.prog, body)
	setStmtID(pl.prog, cico)
	pl.insertions[key] = &insertion{
		anchorID: anchor.ID(),
		where:    where,
		stmts:    []parc.Stmt{loop},
		sortKey:  key,
	}
}

// addFlag inserts a data race / false sharing comment before the reference
// and records it in the report.
func (pl *planner) addFlag(kind string, w *siteWork, ref analysis.Ref, epoch int) {
	text := fmt.Sprintf("%s on %s", titleCase(kind), parc.RangeRefString(singleTarget(ref)))
	key := fmt.Sprintf("%d|flag|%s", w.site.ID(), text)
	if !pl.flags[key] {
		pl.flags[key] = true
		cm := &parc.CommentStmt{Text: text}
		setStmtID(pl.prog, cm)
		ins := &insertion{
			anchorID: w.site.ID(),
			where:    whereBefore,
			stmts:    []parc.Stmt{cm},
			sortKey:  key,
		}
		pl.insertions[key] = ins
		pl.reports = append(pl.reports, ConflictReport{
			Kind:  kind,
			Var:   w.varName,
			Epoch: epoch,
			Pos:   w.site.Position(),
			Addrs: len(w.merged),
		})
	}
}

func titleCase(s string) string {
	words := strings.Fields(s)
	for i, w := range words {
		words[i] = strings.ToUpper(w[:1]) + w[1:]
	}
	return strings.Join(words, " ")
}

// setStmtID assigns a fresh program-unique ID to a generated statement.
func setStmtID(prog *parc.Program, s parc.Stmt) {
	type idSetter interface{ SetID(int) }
	if set, ok := s.(idSetter); ok {
		set.SetID(prog.NewID())
	}
}

// sortedInsertions returns the plan in deterministic order.
func (pl *planner) sortedInsertions() []*insertion {
	out := make([]*insertion, 0, len(pl.insertions))
	for _, ins := range pl.insertions {
		out = append(out, ins)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].sortKey < out[j].sortKey })
	return out
}

// progression checks whether the sorted element indices form an arithmetic
// progression, returning (lo, hi, step).
func progression(indices []int64) (lo, hi, step int64, ok bool) {
	if len(indices) < 2 {
		return 0, 0, 0, false
	}
	step = indices[1] - indices[0]
	if step <= 1 {
		return 0, 0, 0, false
	}
	for i := 2; i < len(indices); i++ {
		if indices[i]-indices[i-1] != step {
			return 0, 0, 0, false
		}
	}
	return indices[0], indices[len(indices)-1], step, true
}
