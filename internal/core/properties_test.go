package core_test

import (
	"math/rand"
	"testing"
	"testing/quick"

	"cachier/internal/core"
	"cachier/internal/testutil"
)

// TestEquationInvariants: for any trace and both styles, the Section 4.1
// equations only ever annotate addresses the node actually touched, keep
// co_x within the write set, co_s within the read set, and never check the
// same address out both shared and exclusive for one node in one epoch.
// The checks themselves live in testutil so the conformance harness applies
// the identical invariants to real simulation traces.
func TestEquationInvariants(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		tr := testutil.RandomTrace(rng)
		epochs := core.ProcessTrace(tr)
		conflicts := core.FindAllConflicts(epochs, tr.BlockSize)
		for _, style := range []core.Style{core.StyleProgrammer, core.StylePerformance} {
			ann := core.ComputeAnnotations(epochs, conflicts, style)
			if err := testutil.CheckAnnotationSets(epochs, ann, style); err != nil {
				t.Log(err)
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 150}); err != nil {
		t.Error(err)
	}
}

// TestPerformanceSubsetOfProgrammer: Performance CICO's check-outs are a
// subset of Programmer CICO's — it only strips annotations Dir1SW makes
// redundant, never adds new ones (Section 4.1).
func TestPerformanceCoXSubset(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		tr := testutil.RandomTrace(rng)
		epochs := core.ProcessTrace(tr)
		conflicts := core.FindAllConflicts(epochs, tr.BlockSize)
		prog := core.ComputeAnnotations(epochs, conflicts, core.StyleProgrammer)
		perf := core.ComputeAnnotations(epochs, conflicts, core.StylePerformance)
		for i := range epochs {
			for n := range epochs[i].Nodes {
				for addr := range perf[i][n].CoX {
					if !prog[i][n].CoX[addr] {
						t.Logf("epoch %d node %d: performance co_x %d not in programmer set", i, n, addr)
						return false
					}
				}
				if len(perf[i][n].CoS) != 0 {
					t.Logf("epoch %d node %d: performance co_s not empty", i, n)
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 150}); err != nil {
		t.Error(err)
	}
}

// TestConflictSymmetry: race and false-sharing detection do not depend on
// miss ordering within an epoch (the trace has no such ordering).
func TestConflictOrderIndependence(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		tr := testutil.RandomTrace(rng)
		epochs1 := core.ProcessTrace(tr)
		// Shuffle each epoch's misses and re-process.
		for i := range tr.Epochs {
			ms := tr.Epochs[i].Misses
			rng.Shuffle(len(ms), func(a, b int) { ms[a], ms[b] = ms[b], ms[a] })
		}
		epochs2 := core.ProcessTrace(tr)
		c1 := core.FindAllConflicts(epochs1, tr.BlockSize)
		c2 := core.FindAllConflicts(epochs2, tr.BlockSize)
		for i := range c1 {
			if len(c1[i].Race) != len(c2[i].Race) || len(c1[i].FalseShare) != len(c2[i].FalseShare) {
				return false
			}
			for a := range c1[i].Race {
				if !c2[i].Race[a] {
					return false
				}
			}
			for a := range c1[i].FalseShare {
				if !c2[i].FalseShare[a] {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Error(err)
	}
}
