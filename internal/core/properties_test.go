package core

import (
	"math/rand"
	"testing"
	"testing/quick"

	"cachier/internal/trace"
)

// randomTrace builds an arbitrary (possibly racy) multi-epoch trace.
func randomTrace(rng *rand.Rand) *trace.Trace {
	nodes := 1 + rng.Intn(4)
	b := trace.NewBuilder(nodes, 32, nil)
	epochs := 1 + rng.Intn(5)
	for e := 0; e < epochs; e++ {
		for i := 0; i < rng.Intn(30); i++ {
			b.AddMiss(trace.Kind(rng.Intn(3)), 32+uint64(rng.Intn(32))*8,
				rng.Intn(50), rng.Intn(nodes))
		}
		vt := make([]uint64, nodes)
		pc := rng.Intn(20)
		final := e == epochs-1
		if final {
			pc = -1
		}
		b.EndEpoch(pc, vt, final)
	}
	return b.Trace()
}

// TestEquationInvariants: for any trace and both styles, the Section 4.1
// equations only ever annotate addresses the node actually touched, keep
// co_x within the write set, co_s within the read set, and never check the
// same address out both shared and exclusive for one node in one epoch.
func TestEquationInvariants(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		tr := randomTrace(rng)
		epochs := ProcessTrace(tr)
		conflicts := FindAllConflicts(epochs, tr.BlockSize)
		for _, style := range []Style{StyleProgrammer, StylePerformance} {
			ann := ComputeAnnotations(epochs, conflicts, style)
			for i, es := range epochs {
				for n, ns := range es.Nodes {
					a := ann[i][n]
					s := ns.S()
					for addr := range a.CoX {
						if !ns.SW[addr] {
							t.Logf("style %v epoch %d node %d: co_x of unwritten %d", style, i, n, addr)
							return false
						}
					}
					for addr := range a.CoS {
						if !ns.SR[addr] {
							t.Logf("style %v epoch %d node %d: co_s of unread %d", style, i, n, addr)
							return false
						}
						if a.CoX[addr] {
							t.Logf("style %v epoch %d node %d: %d both co_s and co_x", style, i, n, addr)
							return false
						}
					}
					for addr := range a.CI {
						if !s[addr] {
							t.Logf("style %v epoch %d node %d: ci of untouched %d", style, i, n, addr)
							return false
						}
					}
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 150}); err != nil {
		t.Error(err)
	}
}

// TestPerformanceSubsetOfProgrammer: Performance CICO's check-outs are a
// subset of Programmer CICO's — it only strips annotations Dir1SW makes
// redundant, never adds new ones (Section 4.1).
func TestPerformanceCoXSubset(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		tr := randomTrace(rng)
		epochs := ProcessTrace(tr)
		conflicts := FindAllConflicts(epochs, tr.BlockSize)
		prog := ComputeAnnotations(epochs, conflicts, StyleProgrammer)
		perf := ComputeAnnotations(epochs, conflicts, StylePerformance)
		for i := range epochs {
			for n := range epochs[i].Nodes {
				for addr := range perf[i][n].CoX {
					if !prog[i][n].CoX[addr] {
						t.Logf("epoch %d node %d: performance co_x %d not in programmer set", i, n, addr)
						return false
					}
				}
				if len(perf[i][n].CoS) != 0 {
					t.Logf("epoch %d node %d: performance co_s not empty", i, n)
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 150}); err != nil {
		t.Error(err)
	}
}

// TestConflictSymmetry: race and false-sharing detection do not depend on
// miss ordering within an epoch (the trace has no such ordering).
func TestConflictOrderIndependence(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		tr := randomTrace(rng)
		epochs1 := ProcessTrace(tr)
		// Shuffle each epoch's misses and re-process.
		for i := range tr.Epochs {
			ms := tr.Epochs[i].Misses
			rng.Shuffle(len(ms), func(a, b int) { ms[a], ms[b] = ms[b], ms[a] })
		}
		epochs2 := ProcessTrace(tr)
		c1 := FindAllConflicts(epochs1, tr.BlockSize)
		c2 := FindAllConflicts(epochs2, tr.BlockSize)
		for i := range c1 {
			if len(c1[i].Race) != len(c2[i].Race) || len(c1[i].FalseShare) != len(c2[i].FalseShare) {
				return false
			}
			for a := range c1[i].Race {
				if !c2[i].Race[a] {
					return false
				}
			}
			for a := range c1[i].FalseShare {
				if !c2[i].FalseShare[a] {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Error(err)
	}
}

func TestGroupEpochs(t *testing.T) {
	mk := func(pcs ...int) []*EpochSets {
		var out []*EpochSets
		for i, pc := range pcs {
			out = append(out, &EpochSets{Index: i, BarrierPC: pc})
		}
		return out
	}
	groups := groupEpochs(mk(5, 9, 5, 9, -1))
	if len(groups) != 3 {
		t.Fatalf("groups = %v", groups)
	}
	if len(groups[0]) != 2 || groups[0][0] != 0 || groups[0][1] != 2 {
		t.Errorf("group 0 = %v", groups[0])
	}
	if len(groups[2]) != 1 || groups[2][0] != 4 {
		t.Errorf("final group = %v", groups[2])
	}
}
