package core

// Conflicts holds one epoch's data races and false sharing (the DRFS and FS
// predicates of Section 4.1).
type Conflicts struct {
	// Race marks addresses involved in a potential data race: two or more
	// processors accessed the address within the epoch and at least one
	// access was a write. (The trace keeps no ordering within an epoch, so
	// any such pattern is a potential race.)
	Race AddrSet

	// FalseShare marks addresses involved in false sharing: two or more
	// processors accessed different addresses of the same cache block, and
	// the block was written. The write requirement is an interpretation
	// choice — read-only co-residency causes no coherence traffic under
	// Dir1SW, and treating it as false sharing would pin nearly every
	// shared read to its reference site.
	FalseShare AddrSet
}

// DRFS reports whether the address is in a data race or false sharing.
func (c *Conflicts) DRFS(a uint64) bool { return c.Race[a] || c.FalseShare[a] }

// FS reports whether the address is involved in false sharing.
func (c *Conflicts) FS(a uint64) bool { return c.FalseShare[a] }

// FindConflicts computes the epoch's conflicts for the given block size.
func FindConflicts(es *EpochSets, blockSize int) *Conflicts {
	c := &Conflicts{Race: make(AddrSet), FalseShare: make(AddrSet)}

	// Data races: same address, >= 2 nodes, >= 1 write.
	for addr, nodes := range es.Touched {
		if nodes.Multi() && es.Written[addr] {
			c.Race[addr] = true
		}
	}

	// False sharing: group addresses by block; within a written block, an
	// address falsely shares if some other node touched a different address
	// of the block.
	type blockInfo struct {
		addrs   []uint64
		written bool
	}
	blocks := make(map[uint64]*blockInfo)
	bs := uint64(blockSize)
	for addr := range es.Touched {
		b := addr / bs
		bi := blocks[b]
		if bi == nil {
			bi = &blockInfo{}
			blocks[b] = bi
		}
		bi.addrs = append(bi.addrs, addr)
		if es.Written[addr] {
			bi.written = true
		}
	}
	for _, bi := range blocks {
		if !bi.written || len(bi.addrs) < 2 {
			continue
		}
		// A pair of distinct addresses in the block exhibits false sharing
		// when some node touches one and a different node touches the other;
		// both addresses are then involved. (Same-address contention alone
		// is a race, not false sharing.)
		for i, a := range bi.addrs {
			for _, b := range bi.addrs[i+1:] {
				if crossNode(es.Touched[a], es.Touched[b]) {
					c.FalseShare[a] = true
					c.FalseShare[b] = true
				}
			}
		}
	}
	return c
}

// crossNode reports whether the two addresses' toucher sets conflict only
// through distinct addresses: some node n touches the first and a different
// node m touches the second, and the pair's contention is not already
// same-address contention (both touching both), which is a race rather than
// false sharing.
//
// For the nonempty sets trace processing produces this reduces to set
// inequality: if some node is in one set but not the other, pairing it with
// any member of the other set satisfies the predicate (the missing
// membership falsifies the both-touch-both exclusion); if the sets are
// identical, every cross pair (n, m) has both nodes touching both
// addresses, which the exclusion rejects.
func crossNode(ta, tb NodeBits) bool {
	return !ta.Equal(tb)
}

// FindAllConflicts runs conflict detection over every epoch.
func FindAllConflicts(epochs []*EpochSets, blockSize int) []*Conflicts {
	out := make([]*Conflicts, len(epochs))
	for i, es := range epochs {
		out[i] = FindConflicts(es, blockSize)
	}
	return out
}
