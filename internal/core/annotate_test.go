package core

import (
	"strings"
	"testing"

	"cachier/internal/sim"
)

// matMulSrc is the paper's Section 4.4 "unconventional" matrix multiply:
// each processor owns a block of B (rows Lkp:Ukp x columns Ljp:Ujp), A is
// read-shared, and C is read-write shared with a data race on its elements.
// N=16, P=2 (4 processors), so each processor's B block is 8x8.
const matMulSrc = `
const N = 16;
const P = 2;
const BS = N / P;

shared float A[N][N] label "A";
shared float B[N][N] label "B";
shared float C[N][N] label "C";

func main() {
    var lkp int = (pid() / P) * BS;
    var ukp int = lkp + BS - 1;
    var ljp int = (pid() % P) * BS;
    var ujp int = ljp + BS - 1;
    var t float;
    if pid() == 0 {
        for i = 0 to N - 1 {
            for j = 0 to N - 1 {
                A[i][j] = rnd();
                B[i][j] = rnd();
                C[i][j] = 0.0;
            }
        }
    }
    barrier;
    for i = 0 to N - 1 {
        for k = lkp to ukp {
            t = A[i][k];
            for j = ljp to ujp {
                C[i][j] = C[i][j] + t * B[k][j];
            }
        }
    }
    barrier;
}
`

func traceOf(t *testing.T, src string, nodes int) *simTrace {
	t.Helper()
	cfg := sim.DefaultConfig()
	cfg.Nodes = nodes
	cfg.Mode = sim.ModeTrace
	prog := mustParse(t, src)
	res, err := sim.Run(prog, cfg)
	if err != nil {
		t.Fatalf("trace run: %v", err)
	}
	return &simTrace{res: res}
}

type simTrace struct{ res *sim.Result }

func annotate(t *testing.T, src string, nodes int, opts Options) *Result {
	t.Helper()
	tr := traceOf(t, src, nodes)
	out, err := Annotate(src, tr.res.Trace, opts)
	if err != nil {
		t.Fatalf("annotate: %v", err)
	}
	return out
}

func TestMatMulProgrammerCICO(t *testing.T) {
	opts := DefaultOptions()
	opts.Style = StyleProgrammer
	opts.CacheSize = 512 // paper regime: rows fit, processor blocks do not
	res := annotate(t, matMulSrc, 4, opts)
	src := res.Source

	// C is involved in a data race: its check-out-exclusive and check-in
	// are pinned immediately around the update, with a flag (Section 4.4).
	mustContainInOrder(t, src,
		"check_out_x C[i][j];",
		"/*** Data Race on C[i][j] ***/",
		"C[i][j] = C[i][j] + t * B[k][j];",
		"check_in C[i][j];",
	)
	// B is checked out shared as a row slice, hoisted above the j loop but
	// not above the k loop (its 8x8 block exceeds the cache budget), and
	// checked back in after the j loop.
	mustContainInOrder(t, src,
		"check_out_s B[k][ljp:ujp];",
		"for j = ljp to ujp {",
		"}",
		"check_in B[k][ljp:ujp];",
	)
	// A is checked out shared near its reference, inside the i loop.
	if !strings.Contains(src, "check_out_s A[i]") {
		t.Errorf("A not checked out shared:\n%s", src)
	}
	if res.Annotations == 0 {
		t.Error("no annotations inserted")
	}
	// The race on C is reported.
	foundRace := false
	for _, r := range res.Reports {
		if r.Kind == "data race" && r.Var == "C" {
			foundRace = true
		}
	}
	if !foundRace {
		t.Errorf("race on C not reported: %+v", res.Reports)
	}
}

func TestMatMulPerformanceCICO(t *testing.T) {
	opts := DefaultOptions()
	opts.Style = StylePerformance
	opts.CacheSize = 512
	res := annotate(t, matMulSrc, 4, opts)
	src := res.Source

	// Performance CICO omits all check_out_s: Dir1SW checks out implicitly
	// on read misses (Section 4.4).
	if strings.Contains(src, "check_out_s") {
		t.Errorf("performance CICO contains check_out_s:\n%s", src)
	}
	// The check-out exclusive for C remains (it write-faults), pinned with
	// the race flag, and C is checked in right after the reference.
	mustContainInOrder(t, src,
		"check_out_x C[i][j];",
		"/*** Data Race on C[i][j] ***/",
		"C[i][j] = C[i][j] + t * B[k][j];",
		"check_in C[i][j];",
	)
	// Matrices are checked in after one processor initializes them
	// (Section 6: "part of the improvement arises from checking-in these
	// matrices after initialization").
	init := src[:strings.Index(src, "barrier;")]
	if !strings.Contains(init, "check_in A[i]") || !strings.Contains(init, "check_in B[i]") {
		t.Errorf("initialization epoch not checked in:\n%s", src)
	}
	// A and B get no check-ins in the compute epoch: not write shared.
	compute := src[strings.Index(src, "barrier;"):]
	if strings.Contains(compute, "check_in A[") || strings.Contains(compute, "check_in B[") {
		t.Errorf("read-only matrices checked in during compute epoch:\n%s", compute)
	}
}

// raceFreeMM partitions the output matrix: each processor computes its own
// columns of C completely, so the result is schedule-independent.
const raceFreeMM = `
const N = 16;
const PROCS = 4;
const COLS = N / PROCS;

shared float A[N][N] label "A";
shared float B[N][N] label "B";
shared float C[N][N] label "C";

func main() {
    var lj int = pid() * COLS;
    var uj int = lj + COLS - 1;
    if pid() == 0 {
        for i = 0 to N - 1 {
            for j = 0 to N - 1 {
                A[i][j] = rnd();
                B[i][j] = rnd();
            }
        }
    }
    barrier;
    for i = 0 to N - 1 {
        for j = lj to uj {
            var acc float = 0.0;
            for k = 0 to N - 1 {
                acc += A[i][k] * B[k][j];
            }
            C[i][j] = acc;
        }
    }
    barrier;
}
`

func TestAnnotatedProgramSemanticsUnchanged(t *testing.T) {
	// CICO annotations must not affect results (Section 4.5). The target is
	// race-free, so its output is schedule-independent and must match
	// exactly between annotated and unannotated runs. (The Section 4.4
	// matrix multiply is deliberately racy, so its results legitimately
	// depend on timing — even trace collection can change them, Section 3.3.)
	res := annotate(t, raceFreeMM, 4, DefaultOptions())

	cfg := sim.DefaultConfig()
	cfg.Nodes = 4
	base, err := sim.Run(mustParse(t, raceFreeMM), cfg)
	if err != nil {
		t.Fatal(err)
	}
	ann, err := sim.Run(mustParse(t, res.Source), cfg)
	if err != nil {
		t.Fatalf("annotated program failed: %v\n%s", err, res.Source)
	}
	for i := 0; i < 16; i++ {
		for j := 0; j < 16; j++ {
			a1, _ := base.Layout.AddrOf("C", i, j)
			a2, _ := ann.Layout.AddrOf("C", i, j)
			if base.Store.Load(a1) != ann.Store.Load(a2) {
				t.Fatalf("C[%d][%d] differs between annotated and unannotated runs", i, j)
			}
		}
	}
}

// matMulScaled is the Section 4.4 matrix multiply at the scale used for the
// performance comparison: 16 processors (P=4), a 32x32 matrix.
const matMulScaled = `
const N = 32;
const P = 4;
const BS = N / P;

shared float A[N][N] label "A";
shared float B[N][N] label "B";
shared float C[N][N] label "C";

func main() {
    var lkp int = (pid() / P) * BS;
    var ukp int = lkp + BS - 1;
    var ljp int = (pid() % P) * BS;
    var ujp int = ljp + BS - 1;
    var t float;
    if pid() == 0 {
        for i = 0 to N - 1 {
            for j = 0 to N - 1 {
                A[i][j] = rnd();
                B[i][j] = rnd();
                C[i][j] = 0.0;
            }
        }
    }
    barrier;
    for i = 0 to N - 1 {
        for k = lkp to ukp {
            t = A[i][k];
            for j = ljp to ujp {
                C[i][j] = C[i][j] + t * B[k][j];
            }
        }
    }
    barrier;
}
`

func TestAnnotationsImprovePerformance(t *testing.T) {
	// The headline claim, in miniature: the Cachier-annotated matrix
	// multiply beats the unannotated version under Dir1SW at the paper's
	// kind of scale (where trapped upgrades broadcast invalidations).
	res := annotate(t, matMulScaled, 16, DefaultOptions())

	cfg := sim.DefaultConfig()
	cfg.Nodes = 16
	base, err := sim.Run(mustParse(t, matMulScaled), cfg)
	if err != nil {
		t.Fatal(err)
	}
	ann, err := sim.Run(mustParse(t, res.Source), cfg)
	if err != nil {
		t.Fatal(err)
	}
	if ann.Stats.WriteFaults >= base.Stats.WriteFaults {
		t.Errorf("write faults not reduced: %d -> %d", base.Stats.WriteFaults, ann.Stats.WriteFaults)
	}
	if ann.Cycles >= base.Cycles {
		t.Errorf("annotated slower: %d -> %d cycles", base.Cycles, ann.Cycles)
	}
}

// Section 4.3's loop-collapsing example (E8), at cache-block granularity
// (blocks hold 4 elements, so the paper's stride-2 example is widened to
// stride 8 = 2 blocks): a strided loop writes every other block, then a full
// loop writes everything. Cachier keeps a per-element annotation inside the
// strided loop (its step blocks hoisting), generates a new strided loop to
// check out the blocks the first loop did not touch, and generates a
// check-in loop covering every touched block after the second loop.
const collapseSrc = `
const N = 64;
shared float A[N] label "A";

func main() {
    if pid() == 0 {
        for i = 0 to 56 step 8 {
            A[i] = 1.0;
        }
        for i = 0 to 63 {
            A[i] = 2.0;
        }
    }
}
`

func TestLoopCollapsePresentation(t *testing.T) {
	opts := DefaultOptions()
	opts.Style = StyleProgrammer
	res := annotate(t, collapseSrc, 2, opts)
	src := res.Source

	// Per-element annotation stays inside the strided loop.
	mustContainInOrder(t, src,
		"for i = 0 to 56 step 8 {",
		"check_out_x A[i];",
		"A[i] = 1.0;",
	)
	// A generated loop checks out the other blocks' elements (4, 12, ...,
	// 60) before the second loop.
	mustContainInOrder(t, src,
		"for __cico",
		"= 4 to 60 step 8 {",
		"check_out_x A[__cico",
		"for i = 0 to 63 {",
	)
	// A generated check-in loop covering every touched block (one element
	// per block: 0, 4, ..., 60) follows the second loop.
	idx := strings.LastIndex(src, "A[i] = 2.0;")
	if idx < 0 {
		t.Fatalf("program body missing:\n%s", src)
	}
	tail := src[idx:]
	mustContainInOrder(t, tail,
		"= 0 to 60 step 4 {",
		"check_in A[__cico",
	)
	// No check-in inside the first loop: the blocks are reused by the
	// second loop (static refinement of the miss-PC placement).
	first := src[strings.Index(src, "for i = 0 to 56 step 8 {"):strings.Index(src, "for i = 0 to 63 {")]
	if strings.Contains(first, "check_in") {
		t.Errorf("premature check-in inside the first loop:\n%s", src)
	}
	// The second loop's body itself needs no check-out.
	second := src[strings.Index(src, "for i = 0 to 63 {"):]
	body := second[:strings.Index(second, "}")]
	if strings.Contains(body, "check_out") {
		t.Errorf("second loop body has a redundant check-out:\n%s", src)
	}
}

func TestAnnotateRejectsMismatchedTrace(t *testing.T) {
	tr := traceOf(t, matMulSrc, 4)
	otherSrc := `
shared float X[8] label "X";
func main() { X[0] = 1.0; }
`
	if _, err := Annotate(otherSrc, tr.res.Trace, DefaultOptions()); err == nil {
		t.Error("mismatched trace accepted")
	}
}

func TestAnnotateIdempotentKeys(t *testing.T) {
	// Epochs executed multiple times (time-step loops around barriers) must
	// not duplicate annotations.
	src := `
const N = 32;
shared float A[N] label "A";
func main() {
    var steps int = 3;
    var s int = 0;
    while s < steps {
        A[pid() * 8] = float(s);
        barrier;
        s += 1;
    }
}
`
	res := annotate(t, src, 4, DefaultOptions())
	if n := strings.Count(res.Source, "check_in A[pid() * 8];"); n > 1 {
		t.Errorf("duplicated annotation (%d copies):\n%s", n, res.Source)
	}
}
