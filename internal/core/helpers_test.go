package core

import (
	"strings"
	"testing"

	"cachier/internal/parc"
)

func mustParse(t *testing.T, src string) *parc.Program {
	t.Helper()
	prog, err := parc.Parse(src)
	if err != nil {
		t.Fatalf("parse: %v", err)
	}
	return prog
}

// mustContainInOrder asserts that the needles occur in src in the given
// order.
func mustContainInOrder(t *testing.T, src string, needles ...string) {
	t.Helper()
	rest := src
	for _, n := range needles {
		i := strings.Index(rest, n)
		if i < 0 {
			t.Fatalf("missing %q (in order) in:\n%s", n, src)
		}
		rest = rest[i+len(n):]
	}
}
