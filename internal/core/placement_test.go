package core

import (
	"strings"
	"testing"

	"cachier/internal/analysis"
	"cachier/internal/memory"
	"cachier/internal/parc"
)

func newTestPlanner(t *testing.T, src string, cacheSize int) *planner {
	t.Helper()
	prog := mustParse(t, src)
	layout, err := memory.New(prog, 32)
	if err != nil {
		t.Fatal(err)
	}
	opts := DefaultOptions()
	if cacheSize > 0 {
		opts.CacheSize = cacheSize
	}
	return newPlanner(prog, analysis.Analyze(prog), layout, opts)
}

func TestProgression(t *testing.T) {
	cases := []struct {
		in           []int64
		lo, hi, step int64
		ok           bool
	}{
		{[]int64{2, 4, 6, 8}, 2, 8, 2, true},
		{[]int64{1, 9, 17}, 1, 17, 8, true},
		{[]int64{1, 2, 3}, 0, 0, 0, false}, // unit stride: use a range
		{[]int64{5}, 0, 0, 0, false},       // single element
		{[]int64{1, 3, 6}, 0, 0, 0, false}, // irregular
		{[]int64{4, 2}, 0, 0, 0, false},    // not ascending
		{[]int64{0, 4, 8, 13}, 0, 0, 0, false},
	}
	for _, c := range cases {
		lo, hi, step, ok := progression(c.in)
		if ok != c.ok || (ok && (lo != c.lo || hi != c.hi || step != c.step)) {
			t.Errorf("progression(%v) = %d,%d,%d,%v want %d,%d,%d,%v",
				c.in, lo, hi, step, ok, c.lo, c.hi, c.step, c.ok)
		}
	}
}

func TestTripCount(t *testing.T) {
	prog := mustParse(t, `
const N = 10;
func main() {
    for i = 0 to N - 1 { }
    for j = 10 to 1 step -3 { }
    for k = 5 to 4 { }
    for l = 0 to nprocs() { }
}
`)
	var loops []*parc.ForStmt
	parc.WalkProgram(prog, func(s parc.Stmt) bool {
		if f, ok := s.(*parc.ForStmt); ok {
			loops = append(loops, f)
		}
		return true
	})
	if n, ok := analysis.TripCount(loops[0], prog.ConstVal); !ok || n != 10 {
		t.Errorf("i loop: %d, %v", n, ok)
	}
	if n, ok := analysis.TripCount(loops[1], prog.ConstVal); !ok || n != 4 {
		t.Errorf("j loop (10,7,4,1): %d, %v", n, ok)
	}
	if n, ok := analysis.TripCount(loops[2], prog.ConstVal); !ok || n != 0 {
		t.Errorf("empty loop: %d, %v", n, ok)
	}
	if _, ok := analysis.TripCount(loops[3], prog.ConstVal); ok {
		t.Error("non-constant bound evaluated")
	}
}

func TestUnitStep(t *testing.T) {
	prog := mustParse(t, `
func main() {
    for a = 0 to 3 { }
    for b = 3 to 0 step -1 { }
    for c = 0 to 8 step 2 { }
}
`)
	var loops []*parc.ForStmt
	parc.WalkProgram(prog, func(s parc.Stmt) bool {
		if f, ok := s.(*parc.ForStmt); ok {
			loops = append(loops, f)
		}
		return true
	})
	if !unitStep(loops[0], prog.ConstVal) || !unitStep(loops[1], prog.ConstVal) {
		t.Error("unit steps rejected")
	}
	if unitStep(loops[2], prog.ConstVal) {
		t.Error("stride-2 accepted as unit")
	}
}

const hoistSrc = `
const N = 16;
shared float A[N][N] label "A";
func main() {
    var t float;
    for i = 0 to N - 1 {
        for j = 0 to N - 1 {
            t = A[i][j];
        }
        barrier;
    }
}
`

func TestHoistStopsAtBarrierLoop(t *testing.T) {
	// The i loop contains a barrier, so hoisting must stop at the j level.
	pl := newTestPlanner(t, hoistSrc, 0)
	var site parc.Stmt
	parc.WalkProgram(pl.prog, func(s parc.Stmt) bool {
		if a, ok := s.(*parc.AssignStmt); ok && a.LHS.Name == "t" {
			site = s
		}
		return true
	})
	ref, ok := pl.refFor(site, "A", false)
	if !ok {
		t.Fatal("no ref")
	}
	w := &siteWork{site: site, varName: "A", perNode: make([]AddrSet, 1), merged: AddrSet{}}
	anchor, hoisted := pl.hoist(w, ref)
	if len(hoisted) != 1 || hoisted[0].Var != "j" {
		t.Fatalf("hoisted %d loops", len(hoisted))
	}
	if f, ok := anchor.(*parc.ForStmt); !ok || f.Var != "j" {
		t.Errorf("anchor = %T", anchor)
	}
}

func TestHoistRespectsCacheBudget(t *testing.T) {
	src := `
const N = 16;
shared float A[N][N] label "A";
func main() {
    var t float;
    for i = 0 to N - 1 {
        for j = 0 to N - 1 {
            t = A[i][j];
        }
    }
}
`
	var site parc.Stmt
	find := func(pl *planner) {
		site = nil
		parc.WalkProgram(pl.prog, func(s parc.Stmt) bool {
			if a, ok := s.(*parc.AssignStmt); ok && a.LHS.Name == "t" {
				site = s
			}
			return true
		})
	}
	// Big cache: hoist above both loops.
	big := newTestPlanner(t, src, 1<<20)
	find(big)
	ref, _ := big.refFor(site, "A", false)
	w := &siteWork{site: site, varName: "A", perNode: make([]AddrSet, 1), merged: AddrSet{}}
	_, hoisted := big.hoist(w, ref)
	if len(hoisted) != 2 {
		t.Errorf("big cache hoisted %d loops, want 2", len(hoisted))
	}
	// Tiny cache: a full row (16*8=128B) exceeds budget 0.5*128=64B; no
	// hoisting at all.
	tiny := newTestPlanner(t, src, 128)
	find(tiny)
	ref, _ = tiny.refFor(site, "A", false)
	w = &siteWork{site: site, varName: "A", perNode: make([]AddrSet, 1), merged: AddrSet{}}
	_, hoisted = tiny.hoist(w, ref)
	if len(hoisted) != 0 {
		t.Errorf("tiny cache hoisted %d loops, want 0", len(hoisted))
	}
}

func TestDynamicRef(t *testing.T) {
	src := `
const N = 16;
shared float A[N] label "A";
func main() {
    var c int = 3;
    for i = 0 to N - 1 {
        A[i] = 1.0;          // structured
        A[i + 1] = 2.0;      // structured (affine)
        A[c] = 3.0;          // constant-ish local: dynamic
        A[i * 2] = 4.0;      // non-affine: dynamic
        A[5] = 5.0;          // constant literal: structured
    }
}
`
	pl := newTestPlanner(t, src, 0)
	var refs []analysis.Ref
	parc.WalkProgram(pl.prog, func(s parc.Stmt) bool {
		if a, ok := s.(*parc.AssignStmt); ok && a.LHS.Name == "A" {
			r, _ := pl.refFor(s, "A", true)
			refs = append(refs, r)
		}
		return true
	})
	want := []bool{false, false, true, true, false}
	for i, r := range refs {
		if got := pl.dynamicRef(r); got != want[i] {
			t.Errorf("ref %d: dynamicRef = %v, want %v", i, got, want[i])
		}
	}
}

func TestLiteralTargets(t *testing.T) {
	src := `
shared float V[64] label "V";
shared float M[8][8] label "M";
shared int s label "s";
func main() { }
`
	pl := newTestPlanner(t, src, 0)
	v := pl.layout.Region("V")
	m := pl.layout.Region("M")

	addrOf := func(r *memory.Region, ix ...int) uint64 {
		a, err := r.AddrOf(ix...)
		if err != nil {
			t.Fatal(err)
		}
		return a
	}
	render := func(ts []*parc.RangeRef) string {
		var parts []string
		for _, t := range ts {
			parts = append(parts, parc.RangeRefString(t))
		}
		return strings.Join(parts, " ")
	}

	// 1-D: block-coalesced single run.
	set := AddrSet{addrOf(v, 0): true, addrOf(v, 4): true, addrOf(v, 8): true}
	if got := render(pl.literalTargets("V", set)); got != "V[0:11]" {
		t.Errorf("1-D coalesced: %q", got)
	}
	// 1-D: two runs with a block gap.
	set = AddrSet{addrOf(v, 0): true, addrOf(v, 32): true}
	if got := render(pl.literalTargets("V", set)); got != "V[0:3] V[32:35]" {
		t.Errorf("1-D gapped: %q", got)
	}
	// 2-D: run within one row.
	set = AddrSet{addrOf(m, 2, 0): true, addrOf(m, 2, 4): true}
	if got := render(pl.literalTargets("M", set)); got != "M[2:2][0:7]" {
		t.Errorf("2-D one row: %q", got)
	}
	// 2-D: full-row crossing run.
	set = AddrSet{}
	for i := 1; i <= 3; i++ {
		for j := 0; j < 8; j += 4 {
			set[addrOf(m, i, j)] = true
		}
	}
	if got := render(pl.literalTargets("M", set)); got != "M[1:3][0:7]" {
		t.Errorf("2-D full rows: %q", got)
	}
	// Scalar.
	if got := render(pl.literalTargets("s", AddrSet{pl.layout.Region("s").BaseAddr: true})); got != "s" {
		t.Errorf("scalar: %q", got)
	}
	// Empty set and unknown variable.
	if pl.literalTargets("V", AddrSet{}) != nil {
		t.Error("empty set produced targets")
	}
	if pl.literalTargets("nope", AddrSet{1: true}) != nil {
		t.Error("unknown variable produced targets")
	}
}

func TestSubstVarAndPipelineTarget(t *testing.T) {
	prog := mustParse(t, `
shared float B[16][16];
func main() {
    var lj int = 0;
    for k = 0 to 15 {
        check_out_s B[k][lj:lj + 3];
    }
}
`)
	var c *parc.CICOStmt
	var loop *parc.ForStmt
	parc.WalkProgram(prog, func(s parc.Stmt) bool {
		switch n := s.(type) {
		case *parc.CICOStmt:
			c = n
		case *parc.ForStmt:
			loop = n
		}
		return true
	})
	next := pipelineTarget(c.Target, loop, prog.ConstVal)
	if got := parc.RangeRefString(next); got != "B[k + 1][lj:lj + 3]" {
		t.Errorf("pipelined target = %q", got)
	}
	// Negative step pipelines downward.
	prog2 := mustParse(t, `
shared float B[16][16];
func main() {
    for k = 15 to 0 step -1 {
        check_out_s B[k][0:3];
    }
}
`)
	parc.WalkProgram(prog2, func(s parc.Stmt) bool {
		switch n := s.(type) {
		case *parc.CICOStmt:
			c = n
		case *parc.ForStmt:
			loop = n
		}
		return true
	})
	next = pipelineTarget(c.Target, loop, prog2.ConstVal)
	if got := parc.RangeRefString(next); got != "B[k - 1][0:3]" {
		t.Errorf("downward pipelined target = %q", got)
	}
}

func TestLastRefSite(t *testing.T) {
	src := `
const N = 8;
shared float A[N] label "A";
func main() {
    A[0] = 1.0;          // site 1
    A[1] = 2.0;          // site 2 (last before barrier)
    barrier;
    A[2] = 3.0;          // different epoch: must not be reached
}
`
	pl := newTestPlanner(t, src, 0)
	var sites []parc.Stmt
	parc.WalkProgram(pl.prog, func(s parc.Stmt) bool {
		if a, ok := s.(*parc.AssignStmt); ok && a.LHS.Name == "A" {
			sites = append(sites, s)
		}
		return true
	})
	got := pl.lastRefSite("A", sites[0])
	if got != sites[1] {
		t.Errorf("lastRefSite stopped at ID %d, want %d", got.ID(), sites[1].ID())
	}
	// From the post-barrier site there is nothing later.
	if got := pl.lastRefSite("A", sites[2]); got != sites[2] {
		t.Errorf("post-barrier site moved to %d", got.ID())
	}
}

func TestSoleNode(t *testing.T) {
	w := &siteWork{perNode: []AddrSet{nil, {1: true}, nil}}
	if got := soleNode(w); got != 1 {
		t.Errorf("soleNode = %d", got)
	}
	w.perNode[2] = AddrSet{2: true}
	if got := soleNode(w); got != -1 {
		t.Errorf("multi-node soleNode = %d", got)
	}
	if got := soleNode(&siteWork{perNode: []AddrSet{nil, nil}}); got != -1 {
		t.Errorf("empty soleNode = %d", got)
	}
}
