// Package core implements Cachier, the paper's contribution: a tool that
// automatically inserts CICO annotations into shared-memory programs by
// combining dynamic information (a barrier-flushed miss trace from one
// execution) with static information (the program's AST, loop structure, and
// labelled shared regions).
//
// The pipeline mirrors Section 4 of the paper:
//
//  1. Trace processing (this file): fold shared write faults out of the
//     read-miss sets and into the write sets, producing per-epoch, per-node
//     SR/SW/S address sets, plus address-to-PC attribution.
//  2. Conflict detection (conflicts.go): find data races and false sharing
//     per epoch (the DRFS and FS functions of Section 4.1).
//  3. Annotation equations (equations.go): compute the Programmer or
//     Performance CICO sets co_x, co_s, ci per epoch and node.
//  4. Placement (placement.go): map addresses to variables and reference
//     sites, hoist annotations through loop levels under cache-size
//     constraints, and pin conflicted addresses next to their references.
//  5. Presentation and rewriting (rewrite.go): render annotations as ranged
//     CICO statements or generated loops, insert them into the AST, flag
//     races and false sharing, and unparse the annotated program.
package core

import (
	"math/bits"
	"sort"

	"cachier/internal/trace"
)

// AddrSet is a set of element byte addresses.
type AddrSet map[uint64]bool

// Clone returns a copy of the set.
func (s AddrSet) Clone() AddrSet {
	out := make(AddrSet, len(s))
	for a := range s {
		out[a] = true
	}
	return out
}

// Minus returns s - t.
func (s AddrSet) Minus(t AddrSet) AddrSet {
	out := make(AddrSet, len(s))
	for a := range s {
		if !t[a] {
			out[a] = true
		}
	}
	return out
}

// Intersect returns s ∩ t.
func (s AddrSet) Intersect(t AddrSet) AddrSet {
	n := len(s)
	if len(t) < n {
		n = len(t)
	}
	out := make(AddrSet, n)
	for a := range s {
		if t[a] {
			out[a] = true
		}
	}
	return out
}

// Union returns s ∪ t.
func (s AddrSet) Union(t AddrSet) AddrSet {
	out := make(AddrSet, len(s)+len(t))
	for a := range s {
		out[a] = true
	}
	for a := range t {
		out[a] = true
	}
	return out
}

// Filter returns the subset of s for which keep is true.
func (s AddrSet) Filter(keep func(uint64) bool) AddrSet {
	out := make(AddrSet, len(s))
	for a := range s {
		if keep(a) {
			out[a] = true
		}
	}
	return out
}

// Sorted returns the addresses in ascending order.
func (s AddrSet) Sorted() []uint64 {
	out := make([]uint64, 0, len(s))
	for a := range s {
		out = append(out, a)
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}

// NodeSets are one node's processed miss sets for one epoch, after the
// paper's trace processing: SW = shared write misses + shared write faults,
// SR = shared read misses - shared write faults.
type NodeSets struct {
	SR AddrSet // shared read set
	SW AddrSet // shared write set
	WF AddrSet // the write-fault subset of SW (read-then-written locations)

	// PCs maps each address to the statement IDs whose misses touched it
	// this epoch, for attributing annotations to reference sites.
	PCs map[uint64][]int
}

// S returns the node's full access set SW ∪ SR.
func (n *NodeSets) S() AddrSet { return n.SW.Union(n.SR) }

// NodeBits is a set of node ids. Ids below 64 — every machine the paper
// studies — live in an inline bitmask, so building the per-address toucher
// sets during trace processing allocates nothing; larger ids spill to an
// overflow word slice and stay correct.
type NodeBits struct {
	lo uint64   // nodes 0..63
	hi []uint64 // node 64+w*64+b is bit b of word w; nil until needed
}

// with returns the set with node n added.
func (s NodeBits) with(n int) NodeBits {
	if n < 64 {
		s.lo |= 1 << uint(n)
		return s
	}
	w := (n - 64) / 64
	for len(s.hi) <= w {
		s.hi = append(s.hi, 0)
	}
	s.hi[w] |= 1 << uint((n-64)%64)
	return s
}

// Has reports whether node n is in the set.
func (s NodeBits) Has(n int) bool {
	if n < 64 {
		return s.lo&(1<<uint(n)) != 0
	}
	w := (n - 64) / 64
	return w < len(s.hi) && s.hi[w]&(1<<uint((n-64)%64)) != 0
}

// Count returns the number of nodes in the set.
func (s NodeBits) Count() int {
	c := bits.OnesCount64(s.lo)
	for _, w := range s.hi {
		c += bits.OnesCount64(w)
	}
	return c
}

// Multi reports whether the set has at least two members.
func (s NodeBits) Multi() bool {
	if s.lo&(s.lo-1) != 0 {
		return true
	}
	return s.Count() >= 2
}

// Equal reports whether the two sets have the same members.
func (s NodeBits) Equal(o NodeBits) bool {
	if s.lo != o.lo {
		return false
	}
	// Trailing zero words don't affect membership.
	a, b := s.hi, o.hi
	for len(a) > 0 && a[len(a)-1] == 0 {
		a = a[:len(a)-1]
	}
	for len(b) > 0 && b[len(b)-1] == 0 {
		b = b[:len(b)-1]
	}
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

// EpochSets is one epoch's processed trace data.
type EpochSets struct {
	Index     int
	BarrierPC int
	Nodes     []*NodeSets

	// Touched maps each address to the set of nodes that accessed it, and
	// Written marks addresses written by at least one node; conflict
	// detection consumes these.
	Touched map[uint64]NodeBits
	Written AddrSet

	// AllSW is the union of SW over nodes; the Performance check-in
	// equation's "written by some processor in the next epoch" term uses
	// the next epoch's AllSW.
	AllSW AddrSet
}

// ProcessTrace turns a raw trace into per-epoch, per-node sets
// (Section 4's first phase).
func ProcessTrace(tr *trace.Trace) []*EpochSets {
	out := make([]*EpochSets, 0, len(tr.Epochs))
	// Map size hints are adaptive: each epoch's maps are presized to the
	// previous epoch's final counts. Successive epochs of the same program
	// have similar footprints, so the hints are near-exact — growth
	// rehashes disappear without the fixed-hint failure mode (tried:
	// misses/4 per epoch map, misses/nodes per node map) of zeroing large
	// never-filled buckets for the many epochs with few or no misses.
	var lastES *EpochSets
	for _, ep := range tr.Epochs {
		es := &EpochSets{
			Index:     ep.Index,
			BarrierPC: ep.BarrierPC,
		}
		if lastES != nil {
			es.Touched = make(map[uint64]NodeBits, len(lastES.Touched))
			es.Written = make(AddrSet, len(lastES.Written))
		} else {
			es.Touched = make(map[uint64]NodeBits)
			es.Written = make(AddrSet)
		}
		// AllSW = ∪ SW over nodes, and every SW insertion below also inserts
		// into Written (and vice versa), so the union is Written itself. Both
		// fields are read-only after this function; aliasing is safe.
		es.AllSW = es.Written
		for n := 0; n < tr.Nodes; n++ {
			ns := &NodeSets{}
			if lastES != nil {
				ln := lastES.Nodes[n]
				ns.SR = make(AddrSet, len(ln.SR))
				ns.SW = make(AddrSet, len(ln.SW))
				ns.WF = make(AddrSet, len(ln.WF))
				ns.PCs = make(map[uint64][]int, len(ln.PCs))
			} else {
				ns.SR = make(AddrSet)
				ns.SW = make(AddrSet)
				ns.WF = make(AddrSet)
				ns.PCs = make(map[uint64][]int)
			}
			es.Nodes = append(es.Nodes, ns)
		}
		for _, m := range ep.Misses {
			ns := es.Nodes[m.Node]
			switch m.Kind {
			case trace.ReadMiss:
				ns.SR[m.Addr] = true
			case trace.WriteMiss:
				ns.SW[m.Addr] = true
				es.Written[m.Addr] = true
			case trace.WriteFault:
				// Fold write faults into SW and remember them separately:
				// these are the read-then-written locations an explicit
				// check_out_x exists to optimize.
				ns.SW[m.Addr] = true
				ns.WF[m.Addr] = true
				es.Written[m.Addr] = true
			}
			ns.PCs[m.Addr] = append(ns.PCs[m.Addr], m.PC)
			es.Touched[m.Addr] = es.Touched[m.Addr].with(m.Node)
		}
		// Remove write-faulted addresses from the read sets (the fault
		// implies the read already brought the block in; the location's
		// governing access is the write).
		for _, ns := range es.Nodes {
			for a := range ns.WF {
				delete(ns.SR, a)
			}
		}
		out = append(out, es)
		lastES = es
	}
	return out
}
