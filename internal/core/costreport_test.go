package core

import (
	"strings"
	"testing"

	"cachier/internal/memory"
	"cachier/internal/parc"
)

func mustLayout(t *testing.T, prog *parc.Program) *memory.Layout {
	t.Helper()
	l, err := memory.New(prog, 32)
	if err != nil {
		t.Fatal(err)
	}
	return l
}

func TestCostReportFromFigure4(t *testing.T) {
	tr := figure4Trace()
	epochs := ProcessTrace(tr)
	conflicts := FindAllConflicts(epochs, 32)
	ann := ComputeAnnotations(epochs, conflicts, StyleProgrammer)
	// Figure 4's addresses are not inside any labelled region of a real
	// layout, so build a layout that covers them.
	prog := mustParse(t, `
shared float abcd[16] label "abcd";
func main() { }
`)
	layout := mustLayout(t, prog)
	rep := buildCostReport(epochs, ann, layout)
	// Programmer totals: epoch0 co_x {a,b} co_s {d} ci {a} (node0) plus
	// node1's co_s{a} ci{a}; epoch1 co_s {c,a} ci {c,d}; epoch2 co_x … all
	// within the abcd region (addresses 32..159 map into it).
	if rep.TotalCoX == 0 || rep.TotalCoS == 0 || rep.TotalCI == 0 {
		t.Errorf("empty totals: %+v", rep)
	}
	if rep.ModelCost == 0 {
		t.Error("zero model cost")
	}
	out := rep.String()
	if !strings.Contains(out, "abcd") {
		t.Errorf("report does not attribute to the labelled variable:\n%s", out)
	}
	if len(rep.Epochs) != 2 {
		// Epochs 0 and 1 share no barrier PC with epoch 2? barrier PCs: 100,
		// 100, -1 -> two static epochs.
		t.Errorf("static epochs = %d, want 2", len(rep.Epochs))
	}
	if rep.Epochs[0].Instances != 2 {
		t.Errorf("first static epoch instances = %d, want 2", rep.Epochs[0].Instances)
	}
}

func TestCostReportOnMatMul(t *testing.T) {
	res := annotate(t, matMulSrc, 4, DefaultOptions())
	if res.Cost == nil {
		t.Fatal("no cost report")
	}
	// The compute epoch's communication is dominated by matrix C — the
	// Section 5 bottleneck the report is meant to expose.
	var computeVars map[string]VarCost
	for _, ec := range res.Cost.Epochs {
		if _, ok := ec.Vars["C"]; ok && len(ec.Vars) >= 1 && ec.Vars["C"].CoXBlocks > 0 {
			computeVars = ec.Vars
		}
	}
	if computeVars == nil {
		t.Fatalf("no epoch with C check-outs:\n%s", res.Cost.String())
	}
	c := computeVars["C"]
	for v, vc := range computeVars {
		if v == "C" {
			continue
		}
		if vc.CoXBlocks > c.CoXBlocks {
			t.Errorf("%s out-communicates C (%d > %d co_x blocks)", v, vc.CoXBlocks, c.CoXBlocks)
		}
	}
	if !strings.Contains(res.Cost.String(), "total:") {
		t.Error("summary line missing")
	}
}
