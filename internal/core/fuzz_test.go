package core

import (
	"fmt"
	"math/rand"
	"strings"
	"testing"

	"cachier/internal/sim"
)

// genRaceFreeProgram builds a random SPMD program with no data races: each
// phase writes only the caller's own partition of one array, reads anything
// written in *earlier* phases (separated by barriers) plus its own cells of
// the currently-written array, and phases are barrier-delimited.
func genRaceFreeProgram(rng *rand.Rand) string {
	nArrays := 1 + rng.Intn(3)
	n := 32 + 16*rng.Intn(3) // 32, 48, 64; divisible by 4 nodes
	var sb strings.Builder
	fmt.Fprintf(&sb, "const N = %d;\n", n)
	names := make([]string, nArrays)
	twoD := make([]bool, nArrays)
	for a := 0; a < nArrays; a++ {
		names[a] = fmt.Sprintf("D%d", a)
		twoD[a] = rng.Intn(3) == 0
		if twoD[a] {
			fmt.Fprintf(&sb, "shared float %s[N][4] label %q;\n", names[a], names[a])
		} else {
			fmt.Fprintf(&sb, "shared float %s[N] label %q;\n", names[a], names[a])
		}
	}
	sb.WriteString(`
func main() {
    var per int = N / nprocs();
    var lo int = pid() * per;
    var hi int = lo + per - 1;
    if pid() == 0 {
        rndseed(7);
`)
	for a := 0; a < nArrays; a++ {
		if twoD[a] {
			fmt.Fprintf(&sb, `        for i = 0 to N - 1 {
            for j = 0 to 3 {
                %s[i][j] = rnd() + 0.5;
            }
        }
`, names[a])
		} else {
			fmt.Fprintf(&sb, `        for i = 0 to N - 1 {
            %s[i] = rnd() + 0.5;
        }
`, names[a])
		}
	}
	sb.WriteString("    }\n    barrier;\n")

	// readCell emits a read of array r at a random safe index expression.
	readCell := func(r int, ownOnly bool) string {
		var ix string
		switch {
		case ownOnly:
			ix = "i"
		case rng.Intn(2) == 0:
			ix = fmt.Sprintf("(i + %d) %% N", rng.Intn(n))
		default:
			ix = fmt.Sprintf("%d", rng.Intn(n))
		}
		if twoD[r] {
			return fmt.Sprintf("%s[%s][%d]", names[r], ix, rng.Intn(4))
		}
		return fmt.Sprintf("%s[%s]", names[r], ix)
	}

	phases := 1 + rng.Intn(3)
	for ph := 0; ph < phases; ph++ {
		target := rng.Intn(nArrays)
		// Build a random right-hand side from safe reads.
		terms := []string{readCell(target, true)}
		for k := 0; k < 1+rng.Intn(3); k++ {
			r := rng.Intn(nArrays)
			terms = append(terms, readCell(r, r == target))
		}
		rhs := strings.Join(terms, []string{" + ", " * ", " - "}[rng.Intn(3)])
		lhs := names[target] + "[i]"
		if twoD[target] {
			lhs = fmt.Sprintf("%s[i][%d]", names[target], rng.Intn(4))
		}
		fmt.Fprintf(&sb, `    for i = lo to hi {
        %s = (%s) * 0.5;
    }
    barrier;
`, lhs, rhs)
	}
	sb.WriteString("}\n")
	return sb.String()
}

// TestAnnotateFuzzRaceFree: for random race-free programs, every annotation
// style must (a) produce a program that re-parses (checked inside Annotate),
// (b) run without errors, and (c) leave every shared value bit-identical to
// the unannotated run.
func TestAnnotateFuzzRaceFree(t *testing.T) {
	if testing.Short() {
		t.Skip("simulation-heavy")
	}
	rng := rand.New(rand.NewSource(20260706))
	cfg := sim.DefaultConfig()
	cfg.Nodes = 4
	traceCfg := cfg
	traceCfg.Mode = sim.ModeTrace

	for round := 0; round < 12; round++ {
		src := genRaceFreeProgram(rng)
		prog := mustParse(t, src)
		traced, err := sim.Run(prog, traceCfg)
		if err != nil {
			t.Fatalf("round %d: trace: %v\n%s", round, err, src)
		}
		base, err := sim.Run(mustParse(t, src), cfg)
		if err != nil {
			t.Fatalf("round %d: base: %v\n%s", round, err, src)
		}
		for _, opts := range []Options{
			{Style: StylePerformance, CacheSize: 256 * 1024},
			{Style: StylePerformance, CacheSize: 512},
			{Style: StylePerformance, CacheSize: 256 * 1024, Prefetch: true},
			{Style: StyleProgrammer, CacheSize: 256 * 1024},
			{Style: StyleProgrammer, CacheSize: 1024},
		} {
			ann, err := Annotate(src, traced.Trace, opts)
			if err != nil {
				t.Fatalf("round %d (%v): annotate: %v\n%s", round, opts.Style, err, src)
			}
			res, err := sim.Run(mustParse(t, ann.Source), cfg)
			if err != nil {
				t.Fatalf("round %d (%v): annotated run: %v\n%s", round, opts.Style, err, ann.Source)
			}
			for _, region := range base.Layout.Regions {
				for off := uint64(0); off < region.Bytes; off += 8 {
					addr := region.BaseAddr + off
					if base.Store.Load(addr) != res.Store.Load(addr) {
						t.Fatalf("round %d (%v, cache %d): %s+%d differs\nprogram:\n%s\nannotated:\n%s",
							round, opts.Style, opts.CacheSize, region.Name, off, src, ann.Source)
					}
				}
			}
		}
	}
}
