package core

// Style selects which annotation set Cachier produces (Section 4.1):
// Programmer CICO exposes all communication for reasoning; Performance CICO
// keeps only the annotations that help Dir1SW (which already performs
// implicit check-outs on misses).
type Style int

// Annotation styles.
const (
	StyleProgrammer Style = iota
	StylePerformance
)

func (s Style) String() string {
	if s == StyleProgrammer {
		return "programmer"
	}
	return "performance"
}

// AnnSets are the annotation address sets for one node in one epoch.
type AnnSets struct {
	CoX AddrSet // check_out_x
	CoS AddrSet // check_out_s
	CI  AddrSet // check_in
}

// ciLookahead is how many epochs ahead the Performance check-in equation
// looks for the "will be written by some processor" condition. The paper
// uses a single epoch; phase-structured programs (build / compute / update,
// like Barnes) rewrite read-shared data two epochs after the readers, so
// the reproduction extends the window. Self-writes are excluded at every
// distance: checking in data the same node is about to rewrite would only
// force a refetch.
const ciLookahead = 2

// ComputeAnnotations evaluates the Section 4.1 equations for every epoch and
// node. epochs and conflicts must be parallel slices (one entry per epoch).
//
// Programmer CICO:
//
//	co_x[i] = !DRFS{SW_i - SW_{i-1}} + DRFS{SW_i}
//	co_s[i] = !FS{SR_i - SR_{i-1}}  + FS{SR_i}
//	ci[i]   = !DRFS{S_i - S_{i+1}}  + DRFS{S_i}
//
// Performance CICO:
//
//	co_x[i] = !DRFS{WF_i - SW_{i-1}} + DRFS{WF_i}
//	co_s[i] = {}
//	ci[i]   = !DRFS{SW_i - SW_{i+1}} + !DRFS{SR_i ∩ SW_{i+1}^any} + DRFS{S_i}
//
// where sets are per-node except SW_{i+1}^any, the union over all nodes
// ("written by some processor in the next epoch").
func ComputeAnnotations(epochs []*EpochSets, conflicts []*Conflicts, style Style) [][]AnnSets {
	out := make([][]AnnSets, len(epochs))
	for i, es := range epochs {
		cf := conflicts[i]
		out[i] = make([]AnnSets, len(es.Nodes))
		for n, ns := range es.Nodes {
			var prevSW AddrSet = AddrSet{}
			var prevSR AddrSet = AddrSet{}
			if i > 0 {
				prevSW = epochs[i-1].Nodes[n].SW
				prevSR = epochs[i-1].Nodes[n].SR
			}
			var nextS AddrSet = AddrSet{}
			var nextSW AddrSet = AddrSet{}
			if i+1 < len(epochs) {
				nextS = epochs[i+1].Nodes[n].S()
				nextSW = epochs[i+1].Nodes[n].SW
			}
			// futureRead collects SR_i addresses some OTHER processor
			// writes within the lookahead window, stopping a given address
			// once this node touches it again before the write.
			futureRead := func() AddrSet {
				out := make(AddrSet)
				selfTouched := make(AddrSet)
				for k := 1; k <= ciLookahead && i+k < len(epochs); k++ {
					ek := epochs[i+k]
					for addr := range ns.SR {
						if out[addr] || selfTouched[addr] {
							continue
						}
						if ek.AllSW[addr] && !ek.Nodes[n].SW[addr] {
							out[addr] = true
						}
					}
					for addr := range ek.Nodes[n].S() {
						selfTouched[addr] = true
					}
				}
				return out
			}

			a := AnnSets{}
			switch style {
			case StyleProgrammer:
				a.CoX = ns.SW.Minus(prevSW).Filter(not(cf.DRFS)).
					Union(ns.SW.Filter(cf.DRFS))
				a.CoS = ns.SR.Minus(prevSR).Filter(not(cf.FS)).
					Union(ns.SR.Filter(cf.FS)).
					Minus(a.CoX) // an exclusive check-out subsumes a shared one
				a.CI = ns.S().Minus(nextS).Filter(not(cf.DRFS)).
					Union(ns.S().Filter(cf.DRFS))
			case StylePerformance:
				a.CoX = ns.WF.Minus(prevSW).Filter(not(cf.DRFS)).
					Union(ns.WF.Filter(cf.DRFS))
				a.CoS = make(AddrSet)
				a.CI = ns.SW.Minus(nextSW).Filter(not(cf.DRFS)).
					Union(futureRead().Filter(not(cf.DRFS))).
					Union(ns.S().Filter(cf.DRFS))
			}
			out[i][n] = a
		}
	}
	return out
}

func not(f func(uint64) bool) func(uint64) bool {
	return func(a uint64) bool { return !f(a) }
}
