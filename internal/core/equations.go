package core

// Style selects which annotation set Cachier produces (Section 4.1):
// Programmer CICO exposes all communication for reasoning; Performance CICO
// keeps only the annotations that help Dir1SW (which already performs
// implicit check-outs on misses).
type Style int

// Annotation styles.
const (
	StyleProgrammer Style = iota
	StylePerformance
)

func (s Style) String() string {
	if s == StyleProgrammer {
		return "programmer"
	}
	return "performance"
}

// AnnSets are the annotation address sets for one node in one epoch.
type AnnSets struct {
	CoX AddrSet // check_out_x
	CoS AddrSet // check_out_s
	CI  AddrSet // check_in
}

// ciLookahead is how many epochs ahead the Performance check-in equation
// looks for the "will be written by some processor" condition. The paper
// uses a single epoch; phase-structured programs (build / compute / update,
// like Barnes) rewrite read-shared data two epochs after the readers, so
// the reproduction extends the window. Self-writes are excluded at every
// distance: checking in data the same node is about to rewrite would only
// force a refetch.
const ciLookahead = 2

// ComputeAnnotations evaluates the Section 4.1 equations for every epoch and
// node. epochs and conflicts must be parallel slices (one entry per epoch).
//
// Programmer CICO:
//
//	co_x[i] = !DRFS{SW_i - SW_{i-1}} + DRFS{SW_i}
//	co_s[i] = !FS{SR_i - SR_{i-1}}  + FS{SR_i}
//	ci[i]   = !DRFS{S_i - S_{i+1}}  + DRFS{S_i}
//
// Performance CICO:
//
//	co_x[i] = !DRFS{WF_i - SW_{i-1}} + DRFS{WF_i}
//	co_s[i] = {}
//	ci[i]   = !DRFS{SW_i - SW_{i+1}} + !DRFS{SR_i ∩ SW_{i+1}^any} + DRFS{S_i}
//
// where sets are per-node except SW_{i+1}^any, the union over all nodes
// ("written by some processor in the next epoch").
//
// The set expressions are evaluated as fused single passes over the source
// sets instead of chained Minus/Filter/Union calls: each equation of the form
// X.Minus(P).Filter(¬C) ∪ X.Filter(C) is the set {a ∈ X : C(a) ∨ a ∉ P}
// (absorption), which one loop builds with no intermediate maps. The
// annotation phase runs once per style per program and the chained form
// dominated its profile.
func ComputeAnnotations(epochs []*EpochSets, conflicts []*Conflicts, style Style) [][]AnnSets {
	out := make([][]AnnSets, len(epochs))
	// Scratch sets for futureRead, reused across every epoch/node: clear()
	// keeps the grown buckets, so after warmup the lookahead never rehashes.
	frScratch := make(AddrSet)
	selfScratch := make(AddrSet)
	for i, es := range epochs {
		cf := conflicts[i]
		out[i] = make([]AnnSets, len(es.Nodes))
		for n, ns := range es.Nodes {
			// Neighbouring-epoch sets; nil (no such epoch) reads as empty.
			var prevSW, prevSR, nextSW, nextSR AddrSet
			if i > 0 {
				prevSW = epochs[i-1].Nodes[n].SW
				prevSR = epochs[i-1].Nodes[n].SR
			}
			if i+1 < len(epochs) {
				nextSW = epochs[i+1].Nodes[n].SW
				nextSR = epochs[i+1].Nodes[n].SR
			}
			// futureRead collects SR_i addresses some OTHER processor
			// writes within the lookahead window, stopping a given address
			// once this node touches it again before the write. The
			// returned set is the shared scratch — valid only until the
			// next call.
			futureRead := func() AddrSet {
				fr, selfTouched := frScratch, selfScratch
				clear(fr)
				selfFilled := false
				for k := 1; k <= ciLookahead && i+k < len(epochs); k++ {
					ekn := epochs[i+k].Nodes[n]
					for addr := range ns.SR {
						if fr[addr] || (selfFilled && selfTouched[addr]) {
							continue
						}
						if epochs[i+k].AllSW[addr] && !ekn.SW[addr] {
							fr[addr] = true
						}
					}
					// S of the intermediate epoch; only needed if another
					// lookahead round will consult it.
					if k < ciLookahead && i+k+1 < len(epochs) {
						if !selfFilled {
							clear(selfTouched)
							selfFilled = true
						}
						for addr := range ekn.SW {
							selfTouched[addr] = true
						}
						for addr := range ekn.SR {
							selfTouched[addr] = true
						}
					}
				}
				return fr
			}

			a := AnnSets{}
			switch style {
			case StyleProgrammer:
				// Output sets are presized to their source-set bounds: the
				// predicates pass most addresses, so the hint is near-exact
				// and growth rehashes disappear from the profile.
				a.CoX = make(AddrSet, len(ns.SW))
				for addr := range ns.SW {
					if cf.DRFS(addr) || !prevSW[addr] {
						a.CoX[addr] = true
					}
				}
				// An exclusive check-out subsumes a shared one.
				a.CoS = make(AddrSet, len(ns.SR))
				for addr := range ns.SR {
					if (cf.FS(addr) || !prevSR[addr]) && !a.CoX[addr] {
						a.CoS[addr] = true
					}
				}
				// ci over S = SW ∪ SR, with next-epoch S membership tested
				// against its two halves.
				a.CI = make(AddrSet, len(ns.SW)+len(ns.SR))
				ci := func(addr uint64) {
					if cf.DRFS(addr) || !(nextSW[addr] || nextSR[addr]) {
						a.CI[addr] = true
					}
				}
				for addr := range ns.SW {
					ci(addr)
				}
				for addr := range ns.SR {
					if !ns.SW[addr] {
						ci(addr)
					}
				}
			case StylePerformance:
				a.CoX = make(AddrSet, len(ns.WF))
				for addr := range ns.WF {
					if cf.DRFS(addr) || !prevSW[addr] {
						a.CoX[addr] = true
					}
				}
				a.CoS = make(AddrSet)
				// The SW loop also covers S.Filter(DRFS) for written
				// addresses; the SR loop adds the read-only DRFS remainder.
				a.CI = make(AddrSet, len(ns.SW))
				for addr := range ns.SW {
					if cf.DRFS(addr) || !nextSW[addr] {
						a.CI[addr] = true
					}
				}
				for addr := range futureRead() {
					if !cf.DRFS(addr) {
						a.CI[addr] = true
					}
				}
				for addr := range ns.SR {
					if cf.DRFS(addr) {
						a.CI[addr] = true
					}
				}
			}
			out[i][n] = a
		}
	}
	return out
}

func not(f func(uint64) bool) func(uint64) bool {
	return func(a uint64) bool { return !f(a) }
}
