package core

import "testing"

// TestGroupEpochs exercises the unexported dynamic-epoch grouping directly,
// so it stays in-package while the exported property tests live in core_test.
func TestGroupEpochs(t *testing.T) {
	mk := func(pcs ...int) []*EpochSets {
		var out []*EpochSets
		for i, pc := range pcs {
			out = append(out, &EpochSets{Index: i, BarrierPC: pc})
		}
		return out
	}
	groups := groupEpochs(mk(5, 9, 5, 9, -1))
	if len(groups) != 3 {
		t.Fatalf("groups = %v", groups)
	}
	if len(groups[0]) != 2 || groups[0][0] != 0 || groups[0][1] != 2 {
		t.Errorf("group 0 = %v", groups[0])
	}
	if len(groups[2]) != 1 || groups[2][0] != 4 {
		t.Errorf("final group = %v", groups[2])
	}
}
