package core

import (
	"fmt"
	"sort"

	"cachier/internal/analysis"
	"cachier/internal/memory"
	"cachier/internal/parc"
	"cachier/internal/trace"
)

// Options configures Cachier.
type Options struct {
	// Style selects Programmer or Performance CICO (Section 4.1).
	Style Style

	// Prefetch additionally inserts prefetch_x/prefetch_s annotations,
	// hoisted to the start of the enclosing block so their latency overlaps
	// preceding computation. Only Performance CICO runs use prefetch, as in
	// the paper's evaluation.
	Prefetch bool

	// CacheSize is the target machine's per-node cache capacity in bytes
	// (placement models the finite cache; Section 4.2). Defaults to 256 KB.
	CacheSize int

	// CacheFraction is the fraction of the cache one hoisted annotation's
	// footprint may occupy before placement descends a loop level.
	// Defaults to 0.5.
	CacheFraction float64
}

// DefaultOptions returns Performance CICO for the paper's machine.
func DefaultOptions() Options {
	return Options{Style: StylePerformance, CacheSize: 256 * 1024, CacheFraction: 0.5}
}

// Result is an annotation run's output.
type Result struct {
	Source      string // annotated program text
	Program     *parc.Program
	Reports     []ConflictReport // data races and false sharing found
	Annotations int              // statements inserted
	Cost        *CostReport      // the CICO cost model's communication summary
}

// Annotate runs the full Cachier pipeline: parse the unannotated program,
// process the trace, compute the annotation sets, place them using static
// program information, rewrite the AST, and unparse. The trace must come
// from a simulation of the same source text (statement IDs must agree).
func Annotate(src string, tr *trace.Trace, opts Options) (*Result, error) {
	if opts.CacheSize <= 0 {
		opts.CacheSize = 256 * 1024
	}
	prog, err := parc.Parse(src)
	if err != nil {
		return nil, fmt.Errorf("core: parsing target program: %w", err)
	}
	if tr.BlockSize <= 0 {
		return nil, fmt.Errorf("core: trace has no block size")
	}
	layout, err := memory.New(prog, tr.BlockSize)
	if err != nil {
		return nil, err
	}
	if err := checkLabels(layout, tr); err != nil {
		return nil, err
	}
	info := analysis.Analyze(prog)

	epochs := ProcessTrace(tr)
	conflicts := FindAllConflicts(epochs, tr.BlockSize)
	ann := ComputeAnnotations(epochs, conflicts, opts.Style)
	// Prefetch-shared candidates come from the Programmer-style read sets
	// even in Performance mode.
	var readAnn [][]AnnSets
	if opts.Prefetch && opts.Style == StylePerformance {
		readAnn = ComputeAnnotations(epochs, conflicts, StyleProgrammer)
	}

	pl := newPlanner(prog, info, layout, opts)
	for _, g := range groupEpochs(epochs) {
		pl.planGroup(g, epochs, conflicts, ann, readAnn)
	}

	inserted, err := applyInsertions(prog, info, pl.sortedInsertions())
	if err != nil {
		return nil, err
	}
	out := parc.Print(prog)
	// The annotated program must remain a valid ParC program; re-parse as a
	// self-check (annotations never change semantics, Section 4.5).
	if _, err := parc.Parse(out); err != nil {
		return nil, fmt.Errorf("core: internal error: annotated program does not re-parse: %w\n%s", err, out)
	}
	sort.Slice(pl.reports, func(i, j int) bool {
		if pl.reports[i].Epoch != pl.reports[j].Epoch {
			return pl.reports[i].Epoch < pl.reports[j].Epoch
		}
		return pl.reports[i].Var < pl.reports[j].Var
	})
	return &Result{
		Source:      out,
		Program:     prog,
		Reports:     pl.reports,
		Annotations: inserted,
		Cost:        buildCostReport(epochs, ann, layout),
	}, nil
}

// AnnotateMulti runs Cachier with a training SET of traces rather than a
// single execution — the alternative Section 4.5 discusses ("The
// alternative would have been to use a training set rather than a single
// input data set"). Every trace must come from the same source text.
// Annotation sets are computed per trace and merged during placement
// (duplicate annotations collapse), so the result covers the union of the
// observed behaviours. The returned cost report and conflict list describe
// the first trace.
func AnnotateMulti(src string, traces []*trace.Trace, opts Options) (*Result, error) {
	if len(traces) == 0 {
		return nil, fmt.Errorf("core: AnnotateMulti needs at least one trace")
	}
	if opts.CacheSize <= 0 {
		opts.CacheSize = 256 * 1024
	}
	prog, err := parc.Parse(src)
	if err != nil {
		return nil, fmt.Errorf("core: parsing target program: %w", err)
	}
	layout, err := memory.New(prog, traces[0].BlockSize)
	if err != nil {
		return nil, err
	}
	info := analysis.Analyze(prog)
	pl := newPlanner(prog, info, layout, opts)

	var firstEpochs []*EpochSets
	var firstAnn [][]AnnSets
	for ti, tr := range traces {
		if tr.BlockSize != traces[0].BlockSize {
			return nil, fmt.Errorf("core: trace %d has block size %d, first has %d",
				ti, tr.BlockSize, traces[0].BlockSize)
		}
		if err := checkLabels(layout, tr); err != nil {
			return nil, err
		}
		epochs := ProcessTrace(tr)
		conflicts := FindAllConflicts(epochs, tr.BlockSize)
		ann := ComputeAnnotations(epochs, conflicts, opts.Style)
		var readAnn [][]AnnSets
		if opts.Prefetch && opts.Style == StylePerformance {
			readAnn = ComputeAnnotations(epochs, conflicts, StyleProgrammer)
		}
		for _, g := range groupEpochs(epochs) {
			pl.planGroup(g, epochs, conflicts, ann, readAnn)
		}
		if ti == 0 {
			firstEpochs, firstAnn = epochs, ann
		}
	}

	inserted, err := applyInsertions(prog, info, pl.sortedInsertions())
	if err != nil {
		return nil, err
	}
	out := parc.Print(prog)
	if _, err := parc.Parse(out); err != nil {
		return nil, fmt.Errorf("core: internal error: annotated program does not re-parse: %w\n%s", err, out)
	}
	sort.Slice(pl.reports, func(i, j int) bool {
		if pl.reports[i].Epoch != pl.reports[j].Epoch {
			return pl.reports[i].Epoch < pl.reports[j].Epoch
		}
		return pl.reports[i].Var < pl.reports[j].Var
	})
	return &Result{
		Source:      out,
		Program:     prog,
		Reports:     pl.reports,
		Annotations: inserted,
		Cost:        buildCostReport(firstEpochs, firstAnn, layout),
	}, nil
}

// checkLabels cross-checks the trace's labelled regions against the
// program's layout, catching trace/program mismatches early.
func checkLabels(layout *memory.Layout, tr *trace.Trace) error {
	byBase := make(map[uint64]string)
	for _, r := range layout.Regions {
		byBase[r.BaseAddr] = r.Label
	}
	for _, l := range tr.Labels {
		if name, ok := byBase[l.Base]; !ok || name != l.Name {
			return fmt.Errorf("core: trace label %q at base %d does not match the program's layout (trace from a different program?)", l.Name, l.Base)
		}
	}
	return nil
}

// groupEpochs groups dynamic epoch indices by their ending barrier PC, so a
// loop-executed epoch is annotated once (Section 4.3's duplicate
// suppression). Groups are ordered by first occurrence.
func groupEpochs(epochs []*EpochSets) [][]int {
	byPC := make(map[int]int) // barrier PC -> group index
	var out [][]int
	for i, es := range epochs {
		gi, ok := byPC[es.BarrierPC]
		if !ok {
			gi = len(out)
			byPC[es.BarrierPC] = gi
			out = append(out, nil)
		}
		out[gi] = append(out[gi], i)
	}
	return out
}

// planGroup plans all insertions for one static epoch (a group of dynamic
// epochs sharing a barrier PC).
func (pl *planner) planGroup(g []int, epochs []*EpochSets, conflicts []*Conflicts,
	ann [][]AnnSets, readAnn [][]AnnSets) {

	nonDRFS := func(pick func(a AnnSets) AddrSet) func(e, n int) (AddrSet, func(uint64) bool) {
		return func(e, n int) (AddrSet, func(uint64) bool) {
			return pick(ann[e][n]), not(conflicts[e].DRFS)
		}
	}
	onlyDRFS := func(pick func(a AnnSets) AddrSet) func(e, n int) (AddrSet, func(uint64) bool) {
		return func(e, n int) (AddrSet, func(uint64) bool) {
			return pick(ann[e][n]), conflicts[e].DRFS
		}
	}
	cox := func(a AnnSets) AddrSet { return a.CoX }
	cos := func(a AnnSets) AddrSet { return a.CoS }
	ci := func(a AnnSets) AddrSet { return a.CI }

	ctx := pl.groupContext(epochs, g)
	pl.curEpochs, pl.curGroup = epochs, g
	pl.groupSpans = make(map[string][]uint64)
	defer func() { pl.curEpochs, pl.curGroup, pl.groupSpans = nil, nil, nil }()

	// Hoisted placements for unconflicted locations.
	for _, w := range pl.attribute(epochs, g, nonDRFS(cox), false, false) {
		pl.placeHoisted(parc.AnnCheckOutX, w, whereBefore, true, ctx)
	}
	for _, w := range pl.attribute(epochs, g, nonDRFS(cos), false, false) {
		pl.placeHoisted(parc.AnnCheckOutS, w, whereBefore, false, ctx)
	}
	for _, w := range pl.pushCheckIns(pl.attribute(epochs, g, nonDRFS(ci), true, false)) {
		pl.placeHoisted(parc.AnnCheckIn, w, whereAfter, false, ctx)
	}

	// Pinned placements for conflicted locations: immediately around every
	// referencing statement, with a race / false-sharing flag.
	for _, w := range pl.attribute(epochs, g, onlyDRFS(cox), false, true) {
		pl.placePinned(parc.AnnCheckOutX, w, whereBefore, true, epochs, conflicts, g)
	}
	for _, w := range pl.attribute(epochs, g, onlyDRFS(cos), false, true) {
		pl.placePinned(parc.AnnCheckOutS, w, whereBefore, false, epochs, conflicts, g)
	}
	for _, w := range pl.attribute(epochs, g, onlyDRFS(ci), true, true) {
		pl.placePinned(parc.AnnCheckIn, w, whereAfter, false, epochs, conflicts, g)
	}

	// Prefetches: issue early (block start) for unconflicted check-outs and
	// for the read sets a Programmer run would check out shared.
	if pl.opts.Prefetch && pl.opts.Style == StylePerformance {
		// A group's annotation executes on every dynamic instance of the
		// epoch, so an address is prefetchable only if nothing writes it
		// within the lookahead window of ANY instance: passing the filter
		// only on the final iteration (after which nothing writes anything)
		// must not license a prefetch that runs on every iteration.
		writtenSoon := make(AddrSet)
		for _, e := range g {
			for k := 0; k <= ciLookahead && e+k < len(epochs); k++ {
				for a := range epochs[e+k].AllSW {
					writtenSoon[a] = true
				}
			}
		}
		// An exclusive prefetch of a block some other node reads during the
		// same epoch (a boundary block read as a stencil neighbour) would
		// be snatched back before the write, making the fault worse, not
		// better — prefetch only privately-written blocks early.
		coxPrefetchable := func(e, n int) (AddrSet, func(uint64) bool) {
			return ann[e][n].CoX, func(a uint64) bool {
				if conflicts[e].DRFS(a) {
					return false
				}
				for _, ge := range g {
					for m, other := range epochs[ge].Nodes {
						if m != n && (other.SR[a] || other.SW[a]) {
							return false
						}
					}
				}
				return true
			}
		}
		for _, w := range pl.attribute(epochs, g, coxPrefetchable, false, false) {
			pl.placePrefetch(parc.AnnPrefetchX, w, true)
		}
		if readAnn != nil {
			// Prefetch shared only what nobody is about to write: a shared
			// prefetch of data the owner writes this epoch or the next just
			// creates a copy to invalidate.
			nonDRFSRead := func(e, n int) (AddrSet, func(uint64) bool) {
				return readAnn[e][n].CoS, func(a uint64) bool {
					return !conflicts[e].DRFS(a) && !writtenSoon[a]
				}
			}
			for _, w := range pl.attribute(epochs, g, nonDRFSRead, false, false) {
				pl.placePrefetch(parc.AnnPrefetchS, w, false)
			}
		}
	}
}

// pushCheckIns moves each check-in work item to the last statement in its
// epoch region that statically references the variable, merging items that
// land on the same site.
func (pl *planner) pushCheckIns(works []*siteWork) []*siteWork {
	type key struct {
		site int
		v    string
	}
	merged := make(map[key]*siteWork)
	var order []key
	for _, w := range works {
		site := pl.lastRefSite(w.varName, w.site)
		k := key{site: site.ID(), v: w.varName}
		m := merged[k]
		if m == nil {
			m = &siteWork{
				site:    site,
				varName: w.varName,
				perNode: make([]AddrSet, len(w.perNode)),
				merged:  make(AddrSet),
			}
			merged[k] = m
			order = append(order, k)
		}
		for n, set := range w.perNode {
			if len(set) == 0 {
				continue
			}
			if m.perNode[n] == nil {
				m.perNode[n] = make(AddrSet)
			}
			for a := range set {
				m.perNode[n][a] = true
				m.merged[a] = true
			}
		}
	}
	out := make([]*siteWork, 0, len(merged))
	for _, k := range order {
		out = append(out, merged[k])
	}
	return out
}

// placeHoisted emits a hoisted (or generated-loop) annotation for
// unconflicted work; work anchored at unstructured, repeatedly-executing
// references is relocated to the epoch boundary instead.
func (pl *planner) placeHoisted(kind parc.AnnKind, w *siteWork, where whereKind, wantWrite bool, ctx groupCtx) {
	ref, ok := pl.refFor(w.site, w.varName, wantWrite)
	if !ok {
		return
	}
	anchor, hoisted := pl.hoist(w, ref)
	if len(hoisted) == 0 && pl.dynamicRef(ref) && pl.executesRepeatedly(w.site) {
		pl.placeRelocated(kind, w, ctx)
		return
	}
	if lo, hi, step, genOK := pl.generatedLoop(w, ref, hoisted); genOK {
		pl.addGeneratedLoop(kind, anchor, where, w.varName, lo, hi, step)
		return
	}
	pl.addInsertion(kind, anchor, where, pl.targetFor(ref, hoisted))
}

// generatedLoop decides whether the needed address set is better presented
// as a generated strided loop (Section 4.3): the variable is 1-D, every
// node needs the same set, the set is an arithmetic progression with stride
// greater than one, and a hoisted range would over-cover it.
func (pl *planner) generatedLoop(w *siteWork, ref analysis.Ref, hoisted []*parc.ForStmt) (lo, hi, step int64, ok bool) {
	if len(hoisted) == 0 {
		return 0, 0, 0, false
	}
	decl := pl.prog.SharedMap[w.varName]
	if decl == nil || len(decl.DimSizes) != 1 {
		return 0, 0, 0, false
	}
	for _, set := range w.perNode {
		if len(set) != 0 && len(set) != len(w.merged) {
			return 0, 0, 0, false // node-dependent sets
		}
	}
	region := pl.layout.Region(w.varName)
	indices := make([]int64, 0, len(w.merged))
	ixBuf := make([]int, len(decl.DimSizes))
	for _, addr := range w.merged.Sorted() {
		ix, err := region.IndexInto(addr, ixBuf)
		if err != nil {
			return 0, 0, 0, false
		}
		indices = append(indices, int64(ix[0]))
	}
	return progression(indices)
}

// placePinned emits an annotation immediately around the reference and
// flags the conflict.
func (pl *planner) placePinned(kind parc.AnnKind, w *siteWork, where whereKind, wantWrite bool,
	epochs []*EpochSets, conflicts []*Conflicts, g []int) {

	ref, ok := pl.refFor(w.site, w.varName, wantWrite)
	if !ok {
		return
	}
	pl.addInsertion(kind, w.site, where, singleTarget(ref))

	var isRace, isFS bool
	for _, ei := range g {
		for addr := range w.merged {
			if conflicts[ei].Race[addr] {
				isRace = true
			}
			if conflicts[ei].FalseShare[addr] {
				isFS = true
			}
		}
	}
	if isRace {
		pl.addFlag("data race", w, ref, epochs[g[0]].Index)
	}
	if isFS {
		pl.addFlag("false sharing", w, ref, epochs[g[0]].Index)
	}
}

// placePrefetch emits a prefetch at the start of the anchor's enclosing
// block, covering the same range the check-out would.
func (pl *planner) placePrefetch(kind parc.AnnKind, w *siteWork, wantWrite bool) {
	ref, ok := pl.refFor(w.site, w.varName, wantWrite)
	if !ok {
		return
	}
	if pl.dynamicRef(ref) {
		return // data-dependent addresses: nothing useful to prefetch early
	}
	// The symbolic annotation executes on every node; if only a few nodes
	// actually needed these blocks (edge processors reading a frame row),
	// the others would prefetch data that is about to be written.
	participants := 0
	for _, set := range w.perNode {
		if len(set) > 0 {
			participants++
		}
	}
	if 2*participants < len(w.perNode) {
		return
	}
	anchor, hoisted := pl.hoist(w, ref)
	if _, _, _, genOK := pl.generatedLoop(w, ref, hoisted); genOK {
		return // strided sets are not worth prefetching block by block
	}
	// A check-out placed next to its use may over-cover harmlessly, but an
	// early prefetch of blocks that did not actually need fetching steals
	// them from writers; require the hoisted range to roughly match the
	// traced set before prefetching.
	decl := pl.prog.SharedMap[w.varName]
	spans := pl.dimSpans(w, decl)
	coveredBlocks := pl.footprint(ref, decl, hoisted, spans) / uint64(pl.layout.BlockSize)
	// The symbolic range is executed by every node with its own bounds, so
	// it must match the smallest per-node need, not just the largest: one
	// node legitimately covering a frame row must not make every other node
	// prefetch blocks that are about to be written.
	neededBlocks := ^uint64(0)
	for _, set := range w.perNode {
		if len(set) == 0 {
			continue
		}
		blocks := make(map[uint64]bool)
		for a := range set {
			blocks[pl.layout.BlockOf(a)] = true
		}
		if n := uint64(len(blocks)); n < neededBlocks {
			neededBlocks = n
		}
	}
	if coveredBlocks > 2*neededBlocks {
		return
	}
	target := pl.targetFor(ref, hoisted)

	// Software-pipelined prefetch: when the annotation sits inside an
	// enclosing loop whose induction variable appears in the reference,
	// prefetch the NEXT iteration's range at the current iteration's start,
	// overlapping the transfer with this iteration's computation (the
	// placement the paper faults the hand annotators for getting wrong).
	// The final iteration's overshoot is clamped harmlessly — annotations
	// never affect semantics.
	loops := pl.info.Loops(anchor.ID())
	if len(loops) > 0 {
		m := loops[len(loops)-1]
		affine := false
		for _, ix := range ref.Indices {
			if analysis.MentionsVar(ix, m.Var) {
				if _, _, ok := analysis.AffineInVar(ix, m.Var); ok {
					affine = true
				}
				break
			}
		}
		if affine && unitStep(m, pl.prog.ConstVal) {
			pl.addInsertion(kind, anchor, whereBefore, pipelineTarget(target, m, pl.prog.ConstVal))
			return
		}
	}
	pl.addInsertionAt(kind, anchor, whereBlockStart, target)
}

// addInsertionAt is addInsertion for whereBlockStart placements.
func (pl *planner) addInsertionAt(kind parc.AnnKind, anchor parc.Stmt, where whereKind, target *parc.RangeRef) {
	pl.addInsertion(kind, anchor, where, target)
}
